// Incomplete medical records: certain, possible and approximate answers.
//
// A hospital merges intake records from two systems. Some patients appear
// under unresolved aliases (unknown identities), and the intake system
// records allergies and prescriptions. Safety questions about this data
// have three useful readings, all implemented by this library:
//
//   * certain answers  — provable in every completion of the data
//                         (what you may act on),
//   * possible answers — true in at least one completion
//                         (what you must not rule out),
//   * approximate      — the §5 polynomial algorithm: a sound subset of
//                         the certain answers, instant to compute.
//
// The example also persists the database in the lqdb text format and
// reloads it, as a deployment would.
#include <cstdio>
#include <string>

#include "lqdb/approx/approx.h"
#include "lqdb/cwdb/cw_database.h"
#include "lqdb/cwdb/ph.h"
#include "lqdb/eval/answer.h"
#include "lqdb/exact/exact.h"
#include "lqdb/io/text_format.h"
#include "lqdb/logic/parser.h"
#include "lqdb/logic/printer.h"

using namespace lqdb;

namespace {

constexpr const char* kDatabase = R"(# merged intake records
# Patient X arrived unconscious; "J. Doe" is an unresolved alias.
unknown PatientX JDoe
known Alice Bob Carla
known Penicillin Ibuprofen Statin

fact ALLERGIC(Alice, Penicillin)
fact ALLERGIC(PatientX, Ibuprofen)
fact PRESCRIBED(Bob, Penicillin)
fact PRESCRIBED(Carla, Statin)
fact PRESCRIBED(JDoe, Penicillin)

# The lab has ruled out that Patient X is Bob (blood type mismatch).
distinct PatientX Bob
# J. Doe signed a form Carla also signed that day — different handwriting.
distinct JDoe Carla
# The logic is untyped (as in the paper), so nothing else stops an alias
# from denoting a *drug*; record that the aliases are people.
distinct PatientX Penicillin
distinct PatientX Ibuprofen
distinct PatientX Statin
distinct JDoe Penicillin
distinct JDoe Ibuprofen
distinct JDoe Statin
)";

void Banner(const char* text) { std::printf("\n=== %s ===\n", text); }

void AskAllWays(CwDatabase* lb, const std::string& text) {
  auto q = ParseQuery(lb->mutable_vocab(), text);
  if (!q.ok()) {
    std::printf("parse error: %s\n", q.status().ToString().c_str());
    return;
  }
  PhysicalDatabase ph1 = MakePh1(*lb);
  ExactEvaluator exact(lb);
  auto certain = exact.Answer(q.value());
  auto possible = exact.PossibleAnswer(q.value());
  auto approx = ApproxEvaluator::Make(lb);
  auto sound = approx.value()->Answer(q.value());
  std::printf("query: %s\n", text.c_str());
  std::printf("  certain:  %s\n",
              AnswerToString(ph1, certain.value()).c_str());
  std::printf("  approx:   %s\n",
              AnswerToString(ph1, sound.value()).c_str());
  std::printf("  possible: %s\n",
              AnswerToString(ph1, possible.value()).c_str());
}

}  // namespace

int main() {
  auto loaded = ParseCwDatabase(kDatabase);
  if (!loaded.ok()) {
    std::printf("load error: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  CwDatabase& lb = *loaded.value();
  std::printf("loaded %zu constants (%zu unresolved), %zu facts, "
              "%zu explicit axioms\n",
              lb.num_constants(), lb.UnknownConstants().size(), lb.NumFacts(),
              lb.explicit_distinct().size());

  Banner("Who was prescribed something they are allergic to?");
  // JDoe got Penicillin; if JDoe is Alice, that's a conflict. Not certain,
  // but very much possible — the possible answer is the safety alarm.
  AskAllWays(&lb, "(p) . exists d. PRESCRIBED(p, d) & ALLERGIC(p, d)");

  Banner("Who can safely receive Penicillin (provably not allergic)?");
  AskAllWays(&lb, "(p) . (exists d. PRESCRIBED(p, d)) & "
                  "!ALLERGIC(p, Penicillin)");

  Banner("Could Patient X be J. Doe?");
  AskAllWays(&lb, "PatientX = JDoe");

  Banner("Round-trip through the text format");
  std::string serialized = SerializeCwDatabase(lb);
  auto again = ParseCwDatabase(serialized);
  std::printf("serialize/parse stable: %s\n",
              (again.ok() && SerializeCwDatabase(*again.value()) ==
                                 serialized)
                  ? "yes"
                  : "NO");
  return 0;
}
