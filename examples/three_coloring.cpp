// Graph 3-coloring as logical query evaluation (Theorem 5(2)).
//
// The co-NP-hardness proof of the paper is constructive: a graph G maps to
// a CW logical database LB (vertex constants with unknown identities, color
// constants 1,2,3) and a *fixed* Boolean query φ such that
//
//     G is 3-colorable  iff  LB ⊭_f φ.
//
// This example runs the reduction on classic graphs, cross-checks against a
// direct backtracking solver, and — when the graph is colorable — decodes a
// 3-coloring out of the Theorem 1 counterexample certificate.
#include <cstdio>
#include <string>
#include <vector>

#include "lqdb/exact/exact.h"
#include "lqdb/logic/printer.h"
#include "lqdb/reductions/coloring.h"
#include "lqdb/reductions/graph.h"

using namespace lqdb;

namespace {

void Solve(const std::string& name, const Graph& g) {
  auto red = BuildColoringReduction(g);
  if (!red.ok()) {
    std::printf("%s: %s\n", name.c_str(), red.status().ToString().c_str());
    return;
  }
  ExactEvaluator exact(&red->lb);
  std::optional<Counterexample> cex;
  auto certain = exact.Contains(red->query, {}, &cex);
  if (!certain.ok()) {
    std::printf("%s: %s\n", name.c_str(),
                certain.status().ToString().c_str());
    return;
  }
  const bool colorable_by_logic = !certain.value();
  const bool colorable_by_solver = IsKColorable(g, 3);
  std::printf("%-12s %2d vertices %3zu edges | query %-11s => %-17s | "
              "solver: %s%s\n",
              name.c_str(), g.num_vertices(), g.num_edges(),
              certain.value() ? "CERTAIN" : "not certain",
              colorable_by_logic ? "3-colorable" : "not 3-colorable",
              colorable_by_solver ? "3-colorable" : "not 3-colorable",
              colorable_by_logic == colorable_by_solver ? "" : "  MISMATCH!");

  if (colorable_by_logic && cex.has_value()) {
    // The refuting mapping h collapses each vertex constant onto one of the
    // color constants 1, 2, 3 (ids 0, 1, 2) — read the coloring off h.
    std::printf("             coloring from the certificate:");
    for (int v = 0; v < g.num_vertices(); ++v) {
      ConstId cv = red->lb.vocab().FindConstant("c" + std::to_string(v));
      std::printf(" %d:%s", v,
                  red->lb.vocab().ConstantName(cex->h[cv]).c_str());
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  std::printf("Reduction query: () . (forall y. M(y)) -> exists z. "
              "R(z, z)\n\n");
  Solve("K3", CompleteGraph(3));
  Solve("K4", CompleteGraph(4));
  Solve("C4", CycleGraph(4));
  Solve("C5", CycleGraph(5));
  Solve("C7", CycleGraph(7));
  Solve("K33", CompleteBipartiteGraph(3, 3));
  Solve("Petersen", PetersenGraph());
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Solve("G(6,.6)#" + std::to_string(seed), RandomGraph(6, 0.6, seed));
  }
  return 0;
}
