// Deploying a logical database on a standard relational system (§5).
//
// The paper closes with a practical recipe: store Ph₂(LB) as ordinary
// tables, compile Q to Q̂, and implement NE as a *virtual* relation
//
//     NE(x, y) ≡ NE'(x, y) ∨ (¬U(x) ∧ ¬U(y) ∧ ¬(x = y))
//
// so that the stored footprint is O(|U| + |NE'|) instead of O(|C|²). This
// example shows the whole pipeline: the relational-algebra plan, the SQL a
// stock RDBMS would run, and the storage gap between materialized and
// virtual NE.
#include <cstdio>

#include "lqdb/approx/approx.h"
#include "lqdb/cwdb/cw_database.h"
#include "lqdb/cwdb/ph.h"
#include "lqdb/eval/answer.h"
#include "lqdb/logic/parser.h"
#include "lqdb/logic/printer.h"
#include "lqdb/ra/compiler.h"
#include "lqdb/ra/executor.h"
#include "lqdb/ra/sql.h"
#include "lqdb/util/table.h"

using namespace lqdb;

int main() {
  // A registry of mostly-known customers with a couple of unresolved
  // duplicate records (classic entity-resolution nulls).
  CwDatabase lb;
  ConstId dup1 = lb.AddUnknownConstant("Dup1");
  ConstId dup2 = lb.AddUnknownConstant("Dup2");
  for (int i = 0; i < 6; ++i) {
    lb.AddKnownConstant("Cust" + std::to_string(i));
  }
  PredId vip = lb.AddPredicate("VIP", 1).value();
  (void)lb.AddFact(vip, {dup1});
  (void)lb.AddFact("VIP", {"Cust0"});
  // The two duplicate records are known to be different people, and Dup2
  // has been ruled out against the first two customers.
  (void)lb.AddDistinct(dup1, dup2);
  (void)lb.AddDistinct("Dup2", "Cust0");
  (void)lb.AddDistinct("Dup2", "Cust1");

  // --- Storage: virtual vs materialized NE. --------------------------------
  TablePrinter storage({"representation", "stored NE tuples"});
  storage.AddRow({"virtual  (U + NE')",
                  std::to_string(2 * lb.explicit_distinct().size())});
  storage.AddRow({"materialized (all pairs)",
                  std::to_string(2 * lb.CountDistinctPairs())});
  std::printf("%s\n", storage.ToString().c_str());

  // --- Compile a query with negation down to relational algebra. ----------
  ApproxOptions options;
  options.engine = ApproxEngine::kRelationalAlgebra;
  auto approx = ApproxEvaluator::Make(&lb, options);
  auto q = ParseQuery(lb.mutable_vocab(), "(x) . !VIP(x)");
  auto tq = approx.value()->Transform(q.value());
  std::printf("Q  = %s\nQ^ = %s\n\n",
              PrintQuery(lb.vocab(), q.value()).c_str(),
              PrintQuery(lb.vocab(), tq->query).c_str());

  RaCompiler compiler(&lb.vocab());
  auto plan = compiler.Compile(tq->query);
  std::printf("relational-algebra plan:\n%s\n",
              plan.value()->ToString(lb.vocab()).c_str());
  std::printf("equivalent SQL (alpha_VIP as a materialized view):\n%s\n\n",
              EmitSql(lb.vocab(), plan.value()).c_str());

  auto answer = approx.value()->Answer(q.value());
  PhysicalDatabase ph1 = MakePh1(lb);
  std::printf("certainly not VIP: %s\n",
              AnswerToString(ph1, answer.value()).c_str());
  std::printf("(Dup2 is provably distinct from both VIP records, so it is "
              "certainly not a\n VIP. Every known customer Cust1..Cust5 "
              "*might* be the unresolved VIP record\n Dup1, so none of them "
              "can be soundly reported.)\n");
  return 0;
}
