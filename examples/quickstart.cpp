// Quickstart: a closed-world logical database with an unknown value.
//
// Builds the employee/department database of §2.1 of "Querying Logical
// Databases" (Vardi, PODS'85/JCSS'86), prints the implied first-order
// theory, and answers queries three ways:
//   1. exact certain answers (Theorem 1, co-NP in general),
//   2. the sound polynomial-time approximation of §5,
//   3. physically, over Ph₁(LB), to show what naive evaluation gets wrong.
#include <cstdio>

#include "lqdb/approx/approx.h"
#include "lqdb/cwdb/cw_database.h"
#include "lqdb/cwdb/ph.h"
#include "lqdb/cwdb/theory.h"
#include "lqdb/eval/answer.h"
#include "lqdb/eval/evaluator.h"
#include "lqdb/exact/exact.h"
#include "lqdb/logic/parser.h"
#include "lqdb/logic/printer.h"

using namespace lqdb;

int main() {
  // --- Build the database: facts + one unknown value. --------------------
  CwDatabase lb;
  // Eve's department is a null: declare it unknown *before* it appears in
  // facts (facts intern their constants as known values).
  ConstId eves_dept = lb.AddUnknownConstant("EvesDept");

  if (auto s = lb.AddFact("EMP_DEPT", {"Ann", "Toys"}); !s.ok()) return 1;
  if (auto s = lb.AddFact("EMP_DEPT", {"Bob", "Books"}); !s.ok()) return 1;
  if (auto s = lb.AddFact("DEPT_MGR", {"Toys", "Carol"}); !s.ok()) return 1;
  if (auto s = lb.AddFact("DEPT_MGR", {"Books", "Dan"}); !s.ok()) return 1;
  ConstId eve = lb.AddKnownConstant("Eve");
  PredId emp_dept = lb.vocab().FindPredicate("EMP_DEPT");
  if (auto s = lb.AddFact(emp_dept, {eve, eves_dept}); !s.ok()) return 1;

  std::printf("=== The stored database ===\n%s\n",
              MakePh1(lb).ToString().c_str());

  // --- The theory T that this database *is* (§2.2). -----------------------
  Theory theory = TheoryOf(&lb);
  std::printf("=== The implied first-order theory T ===\n%s\n",
              PrintTheory(lb.vocab(), theory).c_str());

  // --- Query: who manages whom? -------------------------------------------
  auto query = ParseQuery(
      lb.mutable_vocab(),
      "(x1, x2) . exists y. EMP_DEPT(x1, y) & DEPT_MGR(y, x2)");
  if (!query.ok()) {
    std::printf("parse error: %s\n", query.status().ToString().c_str());
    return 1;
  }
  std::printf("=== Query ===\n%s\n\n",
              PrintQuery(lb.vocab(), query.value()).c_str());

  PhysicalDatabase ph1 = MakePh1(lb);

  // 1. Naive: treat the stored tuples as a physical database.
  Evaluator physical(&ph1);
  auto physical_answer = physical.Answer(query.value());
  std::printf("physical answer over Ph1(LB):  %s\n",
              AnswerToString(ph1, physical_answer.value()).c_str());

  // 2. Exact certain answers (Theorem 1).
  ExactEvaluator exact(&lb);
  auto exact_answer = exact.Answer(query.value());
  std::printf("exact certain answers Q(LB):   %s\n",
              AnswerToString(ph1, exact_answer.value()).c_str());

  // 3. The §5 approximation: sound, polynomial, complete here because the
  //    query is positive (Theorem 13).
  auto approx = ApproxEvaluator::Make(&lb);
  auto approx_answer = approx.value()->Answer(query.value());
  std::printf("approximate answers A(Q, LB):  %s\n\n",
              AnswerToString(ph1, approx_answer.value()).c_str());

  // The punchline: physical evaluation *hallucinates* nothing here (the
  // query is positive), but on a negative query it over-claims:
  auto negative = ParseQuery(lb.mutable_vocab(),
                             "(x) . !EMP_DEPT(Eve, x)");
  Evaluator physical2(&ph1);
  ExactEvaluator exact2(&lb);
  auto approx2 = ApproxEvaluator::Make(&lb);
  std::printf("negative query %s\n",
              PrintQuery(lb.vocab(), negative.value()).c_str());
  std::printf("  physical (wrong, treats the null as a literal): %s\n",
              AnswerToString(ph1, physical2.Answer(negative.value()).value())
                  .c_str());
  std::printf("  exact certain answers:                          %s\n",
              AnswerToString(ph1, exact2.Answer(negative.value()).value())
                  .c_str());
  std::printf("  sound approximation:                            %s\n",
              AnswerToString(
                  ph1, approx2.value()->Answer(negative.value()).value())
                  .c_str());
  return 0;
}
