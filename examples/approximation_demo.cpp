// The §5 approximation algorithm, end to end.
//
// Shows the query transform Q → Q̂ (including the O(k log k) Lemma 10
// disagreement formula in its full syntactic glory), then measures how much
// of the exact answer the approximation recovers as the number of unknown
// values grows — sound always (Theorem 11), complete at zero unknowns
// (Theorem 12) and for positive queries (Theorem 13).
#include <cstdio>

#include "lqdb/approx/approx.h"
#include "lqdb/cwdb/cw_database.h"
#include "lqdb/cwdb/ph.h"
#include "lqdb/exact/exact.h"
#include "lqdb/logic/parser.h"
#include "lqdb/logic/printer.h"
#include "lqdb/util/rng.h"
#include "lqdb/util/table.h"

using namespace lqdb;

namespace {

/// A parts/suppliers world with `unknowns` anonymous suppliers.
CwDatabase MakeWorld(int known_suppliers, int unknowns, uint64_t seed) {
  Rng rng(seed);
  CwDatabase lb;
  for (int i = 0; i < unknowns; ++i) {
    lb.AddUnknownConstant("Anon" + std::to_string(i));
  }
  for (int i = 0; i < known_suppliers; ++i) {
    lb.AddKnownConstant("S" + std::to_string(i));
  }
  PredId supplies = lb.AddPredicate("SUPPLIES", 2).value();
  PredId local = lb.AddPredicate("LOCAL", 1).value();
  ConstId widget = lb.AddKnownConstant("Widget");
  ConstId gadget = lb.AddKnownConstant("Gadget");
  const size_t n = lb.num_constants();
  for (size_t c = 0; c + 2 < n; ++c) {
    if (rng.Chance(0.5)) {
      (void)lb.AddFact(supplies, {static_cast<ConstId>(c), widget});
    }
    if (rng.Chance(0.3)) {
      (void)lb.AddFact(supplies, {static_cast<ConstId>(c), gadget});
    }
    if (rng.Chance(0.5)) {
      (void)lb.AddFact(local, {static_cast<ConstId>(c)});
    }
  }
  return lb;
}

}  // namespace

int main() {
  // --- Part 1: the transform, made visible. -------------------------------
  {
    CwDatabase lb = MakeWorld(2, 1, 7);
    auto ph2 = MakePh2(&lb, Ph2Options{});
    QueryTransformer transformer(lb.mutable_vocab(), ph2->ne);
    auto q = ParseQuery(lb.mutable_vocab(),
                        "(x) . LOCAL(x) & !SUPPLIES(x, Gadget)");
    std::printf("Q  = %s\n\n", PrintQuery(lb.vocab(), q.value()).c_str());

    TransformOptions virt;
    auto tq1 = transformer.Transform(q.value(), virt);
    std::printf("Q^ (virtual alpha atoms, Theorem 14's polynomial "
                "evaluation):\n  %s\n\n",
                PrintQuery(lb.vocab(), tq1->query).c_str());

    TransformOptions syn;
    syn.alpha_mode = AlphaMode::kSyntactic;
    auto tq2 = transformer.Transform(q.value(), syn);
    std::printf("Q^ (full Lemma 10 formula, %zu AST nodes):\n  %s\n\n",
                FormulaSize(tq2->query.body()),
                PrintQuery(lb.vocab(), tq2->query).c_str());
  }

  // --- Part 2: recall as unknowns grow. ------------------------------------
  std::printf("Recall of the approximation on a NON-positive query\n");
  std::printf("  Q = (x) . LOCAL(x) & !SUPPLIES(x, Gadget)\n");
  TablePrinter table({"unknowns", "|Q(LB)| exact", "|A(Q,LB)| approx",
                      "recall", "sound?"});
  for (int unknowns = 0; unknowns <= 4; ++unknowns) {
    CwDatabase lb = MakeWorld(4, unknowns, 42 + unknowns);
    auto q = ParseQuery(lb.mutable_vocab(),
                        "(x) . LOCAL(x) & !SUPPLIES(x, Gadget)");
    ExactEvaluator exact(&lb);
    auto exact_answer = exact.Answer(q.value());
    auto approx = ApproxEvaluator::Make(&lb);
    auto approx_answer = approx.value()->Answer(q.value());
    double recall =
        exact_answer->empty()
            ? 1.0
            : static_cast<double>(approx_answer->size()) /
                  static_cast<double>(exact_answer->size());
    table.AddRow({std::to_string(unknowns),
                  std::to_string(exact_answer->size()),
                  std::to_string(approx_answer->size()),
                  FormatDouble(recall, 2),
                  approx_answer->IsSubsetOf(*exact_answer) ? "yes" : "NO"});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Theorem 12: recall is 1.00 at unknowns = 0.\n");
  std::printf("Theorem 11: the 'sound?' column never says NO.\n\n");

  // --- Part 3: positive queries are exact regardless of unknowns. ----------
  std::printf("Recall on the POSITIVE query (x) . exists p. "
              "SUPPLIES(x, p)\n");
  TablePrinter table2({"unknowns", "exact", "approx", "recall"});
  for (int unknowns = 0; unknowns <= 4; ++unknowns) {
    CwDatabase lb = MakeWorld(4, unknowns, 42 + unknowns);
    auto q = ParseQuery(lb.mutable_vocab(),
                        "(x) . exists p. SUPPLIES(x, p)");
    ExactEvaluator exact(&lb);
    auto exact_answer = exact.Answer(q.value());
    auto approx = ApproxEvaluator::Make(&lb);
    auto approx_answer = approx.value()->Answer(q.value());
    double recall =
        exact_answer->empty()
            ? 1.0
            : static_cast<double>(approx_answer->size()) /
                  static_cast<double>(exact_answer->size());
    table2.AddRow({std::to_string(unknowns),
                   std::to_string(exact_answer->size()),
                   std::to_string(approx_answer->size()),
                   FormatDouble(recall, 2)});
  }
  std::printf("%s\n", table2.ToString().c_str());
  std::printf("Theorem 13: recall is 1.00 on every row.\n");
  return 0;
}
