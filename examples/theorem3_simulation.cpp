// Theorem 3, executed: the hidden second-order quantification.
//
// The paper's point in §3.2 is structural, not practical: CW query
// semantics secretly contains a universal second-order quantifier. This
// example makes it concrete — it builds Q' for a tiny database, prints it
// (behold the ∀H ∀P' prefix), evaluates it with the brute-force
// second-order evaluator, and checks Q'(Ph₂(LB)) = Q(LB).
//
// It also shows certain vs *possible* answers side by side (a library
// extension): the gap between the two relations is exactly the information
// the unknown values withhold.
#include <cstdio>

#include "lqdb/cwdb/cw_database.h"
#include "lqdb/cwdb/ph.h"
#include "lqdb/cwdb/simulation.h"
#include "lqdb/eval/answer.h"
#include "lqdb/eval/evaluator.h"
#include "lqdb/exact/exact.h"
#include "lqdb/logic/parser.h"
#include "lqdb/logic/printer.h"

using namespace lqdb;

int main() {
  CwDatabase lb;
  lb.AddUnknownConstant("Mystery");
  if (!lb.AddFact("T", {"Soc", "Pla"}).ok()) return 1;

  auto ph2 = MakePh2(&lb, Ph2Options{});
  if (!ph2.ok()) return 1;

  auto q = ParseQuery(lb.mutable_vocab(), "(x) . !T(x, Pla)");
  if (!q.ok()) return 1;
  std::printf("Q  = %s\n\n", PrintQuery(lb.vocab(), q.value()).c_str());

  auto sim = BuildPreciseSimulation(&lb, ph2->ne, q.value());
  if (!sim.ok()) {
    std::printf("simulation failed: %s\n", sim.status().ToString().c_str());
    return 1;
  }
  std::printf("Q' = %s\n\n(%zu AST nodes; note the universal second-order "
              "prefix)\n\n",
              PrintQuery(lb.vocab(), sim->query).c_str(),
              FormulaSize(sim->query.body()));

  // Evaluate both sides of Theorem 3's identity.
  ExactEvaluator exact(&lb);
  auto lhs = exact.Answer(q.value());
  EvalOptions so_opts;
  so_opts.max_so_tuple_space = 16;
  Evaluator so_eval(&ph2->db, so_opts);
  auto rhs = so_eval.Answer(sim->query);
  if (!lhs.ok() || !rhs.ok()) {
    std::printf("evaluation failed: %s / %s\n",
                lhs.status().ToString().c_str(),
                rhs.status().ToString().c_str());
    return 1;
  }
  PhysicalDatabase ph1 = MakePh1(lb);
  std::printf("Q(LB)        = %s\n",
              AnswerToString(ph1, lhs.value()).c_str());
  std::printf("Q'(Ph2(LB))  = %s\n", AnswerToString(ph1,
                                                    rhs.value()).c_str());
  std::printf("Theorem 3 identity holds: %s\n\n",
              lhs.value() == rhs.value() ? "yes" : "NO");

  // Bonus: certain vs possible answers for the same query.
  auto possible = exact.PossibleAnswer(q.value());
  std::printf("certain answers:  %s\n",
              AnswerToString(ph1, lhs.value()).c_str());
  std::printf("possible answers: %s\n",
              AnswerToString(ph1, possible.value()).c_str());
  std::printf("(!T(Soc, Pla) holds in no world — it contradicts a stored "
              "fact; !T(Pla, Pla)\n holds in every world; Mystery might be "
              "Soc, so !T(Mystery, Pla) is possible\n but not certain.)\n");
  return 0;
}
