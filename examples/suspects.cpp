// The Jack-the-Ripper example: reasoning with unknown identities.
//
// §2.2 of the paper motivates uniqueness axioms with: "we may not have the
// axiom ¬(Jack the Ripper = Benjamin D'Israeli), since we do not know the
// identity of Jack the Ripper." This example builds that world, shows which
// (in)equalities are certain, and exhibits Theorem 1 counterexample
// certificates — the model of the theory that refutes a non-answer.
#include <cstdio>
#include <string>

#include "lqdb/approx/approx.h"
#include "lqdb/cwdb/cw_database.h"
#include "lqdb/cwdb/mapping.h"
#include "lqdb/cwdb/ph.h"
#include "lqdb/eval/answer.h"
#include "lqdb/exact/exact.h"
#include "lqdb/logic/parser.h"
#include "lqdb/logic/printer.h"

using namespace lqdb;

namespace {

void Ask(CwDatabase* lb, const std::string& text) {
  auto query = ParseQuery(lb->mutable_vocab(), text);
  if (!query.ok()) {
    std::printf("  parse error: %s\n", query.status().ToString().c_str());
    return;
  }
  ExactEvaluator exact(lb);
  std::optional<Counterexample> cex;
  auto result = exact.Contains(query.value(), {}, &cex);
  if (!result.ok()) {
    std::printf("  error: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("  %-55s -> %s\n", text.c_str(),
              result.value() ? "CERTAIN" : "not certain");
  if (!result.value() && cex.has_value()) {
    std::printf("    refuting world: ");
    for (ConstId c = 0; c < lb->num_constants(); ++c) {
      if (cex->h[c] != c) {
        std::printf("%s=%s ", lb->vocab().ConstantName(c).c_str(),
                    lb->vocab().ConstantName(cex->h[c]).c_str());
      }
    }
    std::printf("(all others themselves)\n");
  }
}

}  // namespace

int main() {
  CwDatabase lb;
  ConstId jack = lb.AddUnknownConstant("JackTheRipper");
  lb.AddKnownConstant("Disraeli");
  lb.AddKnownConstant("Victoria");
  lb.AddKnownConstant("Gladstone");

  PredId murderer = lb.AddPredicate("MURDERER", 1).value();
  PredId in_london = lb.AddPredicate("IN_LONDON", 1).value();
  if (!lb.AddFact(murderer, {jack}).ok()) return 1;
  if (!lb.AddFact("IN_LONDON", {"JackTheRipper"}).ok()) return 1;
  if (!lb.AddFact("IN_LONDON", {"Disraeli"}).ok()) return 1;
  if (!lb.AddFact("IN_LONDON", {"Gladstone"}).ok()) return 1;
  (void)in_london;
  // The Queen, at least, is above suspicion.
  if (!lb.AddDistinct("JackTheRipper", "Victoria").ok()) return 1;

  std::printf("Facts: MURDERER(JackTheRipper); IN_LONDON(Jack, Disraeli, "
              "Gladstone)\n");
  std::printf("Uniqueness: Jack != Victoria, plus all pairs of known "
              "people\n\n");

  std::printf("Identity questions (Theorem 1, with certificates):\n");
  Ask(&lb, "JackTheRipper = Disraeli");
  Ask(&lb, "JackTheRipper != Disraeli");
  Ask(&lb, "JackTheRipper != Victoria");
  Ask(&lb, "Disraeli != Victoria");
  std::printf("\nClosed-world consequences:\n");
  Ask(&lb, "exists x. MURDERER(x) & IN_LONDON(x)");
  Ask(&lb, "!MURDERER(Victoria)");
  Ask(&lb, "!MURDERER(Disraeli)");
  Ask(&lb, "forall x. MURDERER(x) -> IN_LONDON(x)");
  Ask(&lb, "forall x. MURDERER(x) -> x != Victoria");

  // Who is provably innocent? Sound approximation vs exact answers.
  auto query = ParseQuery(lb.mutable_vocab(), "(x) . !MURDERER(x)");
  ExactEvaluator exact(&lb);
  auto exact_answer = exact.Answer(query.value());
  auto approx = ApproxEvaluator::Make(&lb);
  auto approx_answer = approx.value()->Answer(query.value());
  PhysicalDatabase ph1 = MakePh1(lb);
  std::printf("\nProvably innocent, exact:       %s\n",
              AnswerToString(ph1, exact_answer.value()).c_str());
  std::printf("Provably innocent, approximate: %s\n",
              AnswerToString(ph1, approx_answer.value()).c_str());
  std::printf("(Disraeli and Gladstone stay off both lists: either might "
              "be Jack.)\n");
  return 0;
}
