#ifndef LQDB_SERVICE_RESULT_CACHE_H_
#define LQDB_SERVICE_RESULT_CACHE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "lqdb/logic/vocabulary.h"
#include "lqdb/relational/relation.h"
#include "lqdb/util/annotations.h"

namespace lqdb {

/// Counters of one result cache (monotone).
struct ResultCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  /// Stale entries discovered (and dropped) at lookup time.
  uint64_t invalidations = 0;
  /// Entries currently stored.
  uint64_t entries = 0;
};

/// Cross-execution answer cache of the service layer: maps (engine, engine
/// options, query identity) — the caller-built string key — to a finished
/// answer relation, validated against the database's change epochs at
/// lookup time.
///
/// Versioning: the service stamps every entry with the database version it
/// was computed at and tracks, per relation, the version of the last update
/// touching it (plus one global epoch for changes that can affect *every*
/// query, i.e. growth of the constant set — the Theorem 1 answer
/// quantifies over all of `C`). An entry is valid iff it is newer than the
/// global epoch and newer than the last update of every relation in its
/// read set; a query's answer provably cannot depend on updates to
/// relations it never reads (`BoundQuery::predicates()`), which is what
/// makes this intersection rule exact rather than a heuristic.
///
/// Invalidation is lazy: updates only bump version counters, and a stale
/// entry is dropped when a lookup trips over it. The cache never returns a
/// stale answer; `invalidations` counts the drops.
///
/// Thread-safe; all operations take one internal mutex (the service calls
/// them while already holding its database lock in shared mode, so the
/// critical sections must be short — they are: a hash lookup plus a
/// relation copy).
class ResultCache {
 public:
  static constexpr size_t kDefaultMaxEntries = 4096;

  explicit ResultCache(size_t max_entries = kDefaultMaxEntries)
      : max_entries_(max_entries) {}

  /// The cached answer for `key` if present and still valid against the
  /// epochs; drops the entry (and counts an invalidation) when stale.
  std::optional<Relation> Lookup(const std::string& key,
                                 uint64_t global_change,
                                 const std::vector<uint64_t>& pred_change);

  /// Records an answer computed at `version` reading `reads`. First writer
  /// wins; the cache saturates at `max_entries` (an insert into a full
  /// cache is dropped — a degenerate workload cannot balloon memory).
  void Insert(const std::string& key, const Relation& answer,
              uint64_t version, std::vector<PredId> reads);

  ResultCacheStats stats() const;

 private:
  struct Entry {
    Relation answer;
    uint64_t version;
    std::vector<PredId> reads;
  };

  bool IsValid(const Entry& entry, uint64_t global_change,
               const std::vector<uint64_t>& pred_change) const;

  size_t max_entries_;
  mutable Mutex mu_;
  std::unordered_map<std::string, Entry> entries_ GUARDED_BY(mu_);
  uint64_t hits_ GUARDED_BY(mu_) = 0;
  uint64_t misses_ GUARDED_BY(mu_) = 0;
  uint64_t invalidations_ GUARDED_BY(mu_) = 0;
};

}  // namespace lqdb

#endif  // LQDB_SERVICE_RESULT_CACHE_H_
