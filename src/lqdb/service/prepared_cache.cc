#include "lqdb/service/prepared_cache.h"

#include <utility>

namespace lqdb {

Result<std::shared_ptr<PreparedQuery>> PreparedQuery::Make(
    std::string text, std::string engine, std::string options_key,
    Query query) {
  // The binding borrows the query by address, so the query must reach its
  // final storage (inside the heap-pinned PreparedQuery) before Bind runs.
  std::shared_ptr<PreparedQuery> out(new PreparedQuery(
      std::move(text), std::move(engine), std::move(options_key),
      std::move(query)));
  LQDB_ASSIGN_OR_RETURN(BoundQuery bound, BoundQuery::Bind(out->query_));
  out->bound_.emplace(std::move(bound));
  return out;
}

PreparedCache::PreparedCache(size_t num_shards) {
  if (num_shards == 0) num_shards = 1;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::shared_ptr<PreparedQuery> PreparedCache::Find(
    const std::string& engine, const std::string& options_key,
    const std::string& text, PreparedHandle* handle) const {
  const std::string key = KeyOf(engine, options_key, text);
  const Shard& shard = *shards_[ShardOf(key)];
  MutexLock lock(shard.mu);
  auto it = shard.by_key.find(key);
  if (it == shard.by_key.end()) return nullptr;
  *handle = it->second;
  return shard.by_handle.at(it->second);
}

std::shared_ptr<PreparedQuery> PreparedCache::Insert(
    std::shared_ptr<PreparedQuery> entry, PreparedHandle* handle,
    bool* inserted) {
  const std::string key =
      KeyOf(entry->engine(), entry->options_key(), entry->text());
  const size_t index = ShardOf(key);
  Shard& shard = *shards_[index];
  MutexLock lock(shard.mu);
  auto [it, fresh] = shard.by_key.emplace(key, PreparedHandle{0});
  if (!fresh) {
    // Lost the publish race; the earlier winner keeps the handle so every
    // holder of it sees one statement identity.
    if (inserted != nullptr) *inserted = false;
    *handle = it->second;
    return shard.by_handle.at(it->second);
  }
  const PreparedHandle h = EncodeHandle(index, shard.next++);
  it->second = h;
  shard.by_handle.emplace(h, entry);
  if (inserted != nullptr) *inserted = true;
  *handle = h;
  return entry;
}

std::shared_ptr<PreparedQuery> PreparedCache::Resolve(PreparedHandle handle)
    const {
  if (handle == 0) return nullptr;
  const Shard& shard = *shards_[(handle - 1) % shards_.size()];
  MutexLock lock(shard.mu);
  auto it = shard.by_handle.find(handle);
  return it == shard.by_handle.end() ? nullptr : it->second;
}

size_t PreparedCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    total += shard->by_handle.size();
  }
  return total;
}

}  // namespace lqdb
