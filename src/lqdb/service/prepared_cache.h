#ifndef LQDB_SERVICE_PREPARED_CACHE_H_
#define LQDB_SERVICE_PREPARED_CACHE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "lqdb/eval/bound_query.h"
#include "lqdb/util/annotations.h"
#include "lqdb/logic/query.h"
#include "lqdb/util/result.h"

namespace lqdb {

/// Opaque identifier of a cached prepared query. 0 is never a valid handle,
/// so it doubles as "not prepared".
using PreparedHandle = uint64_t;

/// A query prepared once and executed many times: the parsed `Query`
/// pinned on the heap, its `BoundQuery` binding (which borrows the query by
/// address, hence the pinning — a `PreparedQuery` is never copied or moved
/// after `Make`), and, when the body is in the compilable first-order
/// fragment, the RA plan cached inside the binding. Immutable after
/// preparation, so any number of sessions may execute one concurrently.
class PreparedQuery {
 public:
  /// Binds `query` in place. `text` is the source text; `engine` the engine
  /// name and `options_key` the engine-options fingerprint
  /// (`EngineOptionsFingerprint`) the statement was prepared under — all
  /// three are the cache key: a statement prepared under one options
  /// profile (join-order cap, evaluation budgets) must not be served to a
  /// session running a different one.
  static Result<std::shared_ptr<PreparedQuery>> Make(std::string text,
                                                     std::string engine,
                                                     std::string options_key,
                                                     Query query);

  const std::string& text() const { return text_; }
  const std::string& engine() const { return engine_; }
  const std::string& options_key() const { return options_key_; }
  const Query& query() const { return query_; }
  const BoundQuery& bound() const { return *bound_; }

  /// For the preparing thread only, before the entry is published to the
  /// cache (to run `CompileRaPlan`); immutable afterwards.
  BoundQuery* mutable_bound() { return &*bound_; }

 private:
  PreparedQuery(std::string text, std::string engine, std::string options_key,
                Query query)
      : text_(std::move(text)),
        engine_(std::move(engine)),
        options_key_(std::move(options_key)),
        query_(std::move(query)) {}

  std::string text_;
  std::string engine_;
  std::string options_key_;
  Query query_;
  std::optional<BoundQuery> bound_;
};

/// A mutex-sharded map from (engine, query text) to prepared statements,
/// shared by every session of a `Service`: N sessions replaying the same
/// query pay parse + bind + RA-compile once. Handles are dense per shard
/// and stable for the cache's lifetime (nothing is ever evicted — prepared
/// statements are small and the key space is the set of distinct query
/// texts a workload actually runs).
///
/// Thread-safe. Insertion is first-writer-wins: when two sessions prepare
/// the same text concurrently, both end up with the same handle and entry,
/// and the loser's duplicate is dropped.
class PreparedCache {
 public:
  explicit PreparedCache(size_t num_shards = 8);

  /// Looks up a prepared statement; returns it (filling `*handle`) or null.
  std::shared_ptr<PreparedQuery> Find(const std::string& engine,
                                      const std::string& options_key,
                                      const std::string& text,
                                      PreparedHandle* handle) const;

  /// Publishes `entry` under its (engine, text) key. Returns the cached
  /// entry — `entry` itself when this call won, the earlier winner
  /// otherwise — and fills `*handle` with its handle. `*inserted` (when
  /// non-null) reports whether this call published.
  std::shared_ptr<PreparedQuery> Insert(std::shared_ptr<PreparedQuery> entry,
                                        PreparedHandle* handle,
                                        bool* inserted = nullptr);

  /// The statement behind a handle; null for 0, unknown, or foreign
  /// handles.
  std::shared_ptr<PreparedQuery> Resolve(PreparedHandle handle) const;

  /// Number of cached statements (sums shard sizes; a snapshot under
  /// concurrent insertion).
  size_t size() const;

 private:
  struct Shard {
    mutable Mutex mu;
    /// engine + '\n' + options key + '\n' + text → handle (engine names
    /// and options keys contain no newline).
    std::unordered_map<std::string, PreparedHandle> by_key GUARDED_BY(mu);
    std::unordered_map<PreparedHandle, std::shared_ptr<PreparedQuery>>
        by_handle GUARDED_BY(mu);
    uint64_t next GUARDED_BY(mu) = 0;  // shard-local dense counter
  };

  static std::string KeyOf(const std::string& engine,
                           const std::string& options_key,
                           const std::string& text) {
    return engine + '\n' + options_key + '\n' + text;
  }
  size_t ShardOf(const std::string& key) const {
    return std::hash<std::string>{}(key) % shards_.size();
  }
  /// Handles interleave across shards (`raw * num_shards + shard + 1`) so a
  /// handle alone identifies its shard and 0 stays invalid.
  PreparedHandle EncodeHandle(size_t shard, uint64_t raw) const {
    return raw * shards_.size() + shard + 1;
  }

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace lqdb

#endif  // LQDB_SERVICE_PREPARED_CACHE_H_
