#include "lqdb/service/result_cache.h"

#include <utility>

namespace lqdb {

bool ResultCache::IsValid(const Entry& entry, uint64_t global_change,
                          const std::vector<uint64_t>& pred_change) const {
  if (entry.version < global_change) return false;
  for (PredId p : entry.reads) {
    // A predicate beyond the vector was never updated.
    if (p < pred_change.size() && entry.version < pred_change[p]) {
      return false;
    }
  }
  return true;
}

std::optional<Relation> ResultCache::Lookup(
    const std::string& key, uint64_t global_change,
    const std::vector<uint64_t>& pred_change) {
  MutexLock lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  if (!IsValid(it->second, global_change, pred_change)) {
    entries_.erase(it);
    ++invalidations_;
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second.answer;
}

void ResultCache::Insert(const std::string& key, const Relation& answer,
                         uint64_t version, std::vector<PredId> reads) {
  MutexLock lock(mu_);
  if (entries_.count(key) > 0) return;  // first writer wins
  if (entries_.size() >= max_entries_) return;
  entries_.emplace(key, Entry{answer, version, std::move(reads)});
}

ResultCacheStats ResultCache::stats() const {
  MutexLock lock(mu_);
  ResultCacheStats out;
  out.hits = hits_;
  out.misses = misses_;
  out.invalidations = invalidations_;
  out.entries = entries_.size();
  return out;
}

}  // namespace lqdb
