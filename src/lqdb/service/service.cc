#include "lqdb/service/service.h"

#include <string_view>
#include <utility>

#include "lqdb/logic/parser.h"
#include "lqdb/ra/compiler.h"

namespace lqdb {

namespace {

/// Join-ordering statistics for the prepare-time RA compile; mirrors the
/// ra-exact engine's view (image cardinalities are bounded by the logical
/// database's fact counts and `|C|`). The session's join-order cap shapes
/// the compiled plan, so it must flow into the prepare-time compile just
/// as it does into the ra-exact engine's own plan cache.
RaCardinalities StatsFor(const CwDatabase& lb, const EngineOptions& options) {
  RaCardinalities stats;
  stats.domain_size = static_cast<double>(lb.num_constants());
  stats.relation_sizes.assign(lb.vocab().num_predicates(), 0.0);
  for (PredId p : lb.PredicatesWithFacts()) {
    stats.relation_sizes[p] = static_cast<double>(lb.facts(p).size());
  }
  stats.dp_join_cap = options.exact.ra_dp_join_cap;
  return stats;
}

}  // namespace

std::string EngineOptionsFingerprint(const EngineOptions& options) {
  // Everything here either changes an answer outright (the approximation
  // knobs select different sound approximations in principle) or flips an
  // execution between an answer and `ResourceExhausted` (the budgets), or
  // shapes the compiled plan cached inside the prepared statement (the
  // join-order cap). Deliberately absent: `threads` (answers are
  // bit-identical across thread counts — a candidate's membership is a
  // property of the mapping space, not the traversal) and the kernel-memo
  // toggle (memo-on ≡ memo-off is pinned by the differential suite).
  std::string key;
  key += "emm=" + std::to_string(options.exact.max_mappings);
  key += ";cap=" + std::to_string(options.exact.ra_dp_join_cap);
  key += ";eso=" + std::to_string(options.exact.eval.max_so_tuple_space);
  key += ";bmm=" + std::to_string(options.brute.max_mappings);
  key += ";bso=" + std::to_string(options.brute.eval.max_so_tuple_space);
  key += ";aam=" + std::to_string(static_cast<int>(options.approx.alpha_mode));
  key += ";aen=" + std::to_string(static_cast<int>(options.approx.engine));
  key += ";ane=" + std::to_string(options.approx.materialize_ne ? 1 : 0);
  key += ";aso=" + std::to_string(options.approx.eval.max_so_tuple_space);
  return key;
}

Service::Service(CwDatabase* db, ServiceOptions options)
    : db_(db),
      options_(options),
      cache_(options.cache_shards),
      pool_(options.threads > 0 ? options.threads
                                : ThreadPool::DefaultThreads()) {}

Result<std::shared_ptr<Session>> Service::OpenSession(SessionOptions options) {
  LQDB_ASSIGN_OR_RETURN(
      EngineCapabilities caps,
      EngineRegistry::Global().CapabilitiesOf(options.engine));
  sessions_opened_.fetch_add(1, std::memory_order_relaxed);
  return std::shared_ptr<Session>(
      new Session(this, std::move(options), caps));
}

ServiceStats Service::stats() const {
  ServiceStats out;
  out.prepares = prepares_.load();
  out.cache_hits = cache_hits_.load();
  out.cache_misses = cache_misses_.load();
  out.executions = executions_.load();
  out.async_executions = async_executions_.load();
  out.cancelled = cancelled_.load();
  out.cached_queries = cache_.size();
  out.sessions_opened = sessions_opened_.load();
  out.asserts = asserts_.load();
  out.retracts = retracts_.load();
  out.memo_row_hits = memo_row_hits_.load();
  out.memo_row_misses = memo_row_misses_.load();
  out.memo_images_skipped = memo_images_skipped_.load();
  const ResultCacheStats rc = results_.stats();
  out.result_hits = rc.hits;
  out.result_misses = rc.misses;
  out.result_invalidations = rc.invalidations;
  out.cached_results = rc.entries;
  {
    ReaderLock db_lock(db_mu_);
    out.db_version = db_version_;
  }
  return out;
}

uint64_t Service::db_version() const {
  ReaderLock db_lock(db_mu_);
  return db_version_;
}

void Service::BumpVersionLocked(PredId pred, bool constants_grew) {
  ++db_version_;
  if (pred >= pred_change_.size()) pred_change_.resize(pred + 1, 0);
  pred_change_[pred] = db_version_;
  if (constants_grew) global_change_ = db_version_;
}

Status Service::Assert(const std::string& pred,
                       const std::vector<std::string>& names) {
  WriterLock db_lock(db_mu_);
  const size_t constants_before = db_->num_constants();
  std::vector<std::string_view> views(names.begin(), names.end());
  LQDB_RETURN_IF_ERROR(db_->AddFact(pred, views));
  const PredId p = db_->vocab().FindPredicate(pred);
  BumpVersionLocked(p, db_->num_constants() != constants_before);
  asserts_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status Service::Retract(const std::string& pred,
                        const std::vector<std::string>& names) {
  WriterLock db_lock(db_mu_);
  const PredId p = db_->vocab().FindPredicate(pred);
  if (p == Vocabulary::kNotFound) {
    return Status::NotFound("unknown predicate '" + pred + "'");
  }
  Tuple tuple;
  tuple.reserve(names.size());
  for (const std::string& name : names) {
    const ConstId c = db_->vocab().FindConstant(name);
    if (c == Vocabulary::kNotFound) {
      return Status::NotFound("unknown constant '" + name + "'");
    }
    tuple.push_back(c);
  }
  LQDB_RETURN_IF_ERROR(db_->RemoveFact(p, tuple));
  // Retraction never shrinks `C` (constants are permanent — domain closure
  // still ranges over every interned name), so only `pred`'s epoch moves.
  BumpVersionLocked(p, /*constants_grew=*/false);
  retracts_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Result<std::shared_ptr<PreparedQuery>> Service::PrepareInternal(
    const std::string& engine, const EngineOptions& engine_options,
    const std::string& text, PreparedInfo* info) {
  prepares_.fetch_add(1, std::memory_order_relaxed);
  const std::string options_key = EngineOptionsFingerprint(engine_options);
  PreparedHandle handle = 0;
  if (std::shared_ptr<PreparedQuery> hit =
          cache_.Find(engine, options_key, text, &handle)) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    info->handle = handle;
    info->cache_hit = true;
    return hit;
  }
  cache_misses_.fetch_add(1, std::memory_order_relaxed);

  std::shared_ptr<PreparedQuery> entry;
  {
    // Exclusive: parsing interns constants/predicates into the shared
    // vocabulary, and the compiler reads the fact counts.
    WriterLock db_lock(db_mu_);
    const size_t constants_before = db_->num_constants();
    LQDB_ASSIGN_OR_RETURN(Query query,
                          ParseQuery(db_->mutable_vocab(), text));
    if (db_->num_constants() != constants_before) {
      // Parsing interned a constant the database had never seen: `C` grew,
      // and every Theorem 1 answer quantifies over all of `C`, so every
      // cached result is potentially stale.
      ++db_version_;
      global_change_ = db_version_;
    }
    LQDB_ASSIGN_OR_RETURN(
        entry,
        PreparedQuery::Make(text, engine, options_key, std::move(query)));
    // Compile once at prepare time regardless of engine: ra-exact executes
    // the plan, and the other engines ignore it. A failed compile (second
    // order) is cached inside the binding as "use the fallback".
    const RaCardinalities stats = StatsFor(*db_, engine_options);
    Status compile = entry->mutable_bound()->CompileRaPlan(db_->vocab(),
                                                           &stats);
    (void)compile;
  }

  bool inserted = false;
  entry = cache_.Insert(std::move(entry), &handle, &inserted);
  info->handle = handle;
  info->cache_hit = false;  // this caller paid the parse+compile
  return entry;
}

Result<PreparedInfo> Session::Prepare(const std::string& text) {
  PreparedInfo info;
  LQDB_RETURN_IF_ERROR(service_
                           ->PrepareInternal(options_.engine,
                                             options_.engine_options, text,
                                             &info)
                           .status());
  prepares_.fetch_add(1, std::memory_order_relaxed);
  if (info.cache_hit) cache_hits_.fetch_add(1, std::memory_order_relaxed);
  return info;
}

Result<Relation> Session::Execute(PreparedHandle handle) {
  std::shared_ptr<PreparedQuery> pq = service_->cache_.Resolve(handle);
  if (pq == nullptr) {
    return Status::NotFound("no prepared query with handle " +
                            std::to_string(handle));
  }
  return Run(*pq, /*possible=*/false);
}

Result<Relation> Session::ExecutePossible(PreparedHandle handle) {
  std::shared_ptr<PreparedQuery> pq = service_->cache_.Resolve(handle);
  if (pq == nullptr) {
    return Status::NotFound("no prepared query with handle " +
                            std::to_string(handle));
  }
  return Run(*pq, /*possible=*/true);
}

Result<Relation> Session::Query(const std::string& text) {
  LQDB_ASSIGN_OR_RETURN(PreparedInfo info, Prepare(text));
  return Execute(info.handle);
}

Status Session::EnsureEngine() {
  if (engine_ready_.load(std::memory_order_acquire)) return Status::OK();
  // Lock order: database before session execution mutex, everywhere.
  WriterLock db_lock(service_->db_mu_);
  MutexLock exec_lock(exec_mu_);
  if (engine_ready_.load(std::memory_order_relaxed)) return Status::OK();
  LQDB_ASSIGN_OR_RETURN(engine_, EngineRegistry::Global().Create(
                                     options_.engine, service_->db_,
                                     options_.engine_options));
  engine_ready_.store(true, std::memory_order_release);
  return Status::OK();
}

Result<Relation> Session::Run(const PreparedQuery& pq, bool possible) {
  if (caps_.mutates_database) {
    // A mutating engine (approx) writes the vocabulary at construction and
    // snapshots Ph₂, so it runs exclusively and is rebuilt per execution —
    // never answering from a snapshot that predates a later prepare. Its
    // answers are never result-cached: the construction itself moves the
    // database (NE/α predicates), so "same database version" does not mean
    // "same inputs" across engine rebuilds.
    WriterLock db_lock(service_->db_mu_);
    MutexLock exec_lock(exec_mu_);
    const size_t constants_before = service_->db_->num_constants();
    LQDB_ASSIGN_OR_RETURN(std::unique_ptr<QueryEngine> engine,
                          EngineRegistry::Global().Create(
                              options_.engine, service_->db_,
                              options_.engine_options));
    Result<Relation> out = RunLocked(engine.get(), pq, possible);
    if (service_->db_->num_constants() != constants_before) {
      // Engine construction interned new constants; raise the global epoch
      // while still holding the exclusive lock.
      ++service_->db_version_;
      service_->global_change_ = service_->db_version_;
    }
    return out;
  }
  LQDB_RETURN_IF_ERROR(EnsureEngine());
  ReaderLock db_lock(service_->db_mu_);
  MutexLock exec_lock(exec_mu_);
  const bool cacheable = options_.use_result_cache;
  std::string key;
  if (cacheable) {
    // Keyed like the prepared-statement cache plus the answer mode; valid
    // only while nothing the query reads has changed (checked against the
    // change epochs, which the shared lock holds still).
    key = options_.engine + '\n' + options_key_ + '\n' +
          (possible ? "P\n" : "C\n") + pq.text();
    std::optional<Relation> hit = service_->results_.Lookup(
        key, service_->global_change_, service_->pred_change_);
    if (hit.has_value()) {
      arena_.Reset();
      last_trace_ = ExecutionTrace{};
      last_trace_.query =
          arena_.CopyString(pq.text().c_str(), pq.text().size());
      last_trace_.engine = arena_.CopyString(options_.engine.c_str(),
                                             options_.engine.size());
      last_trace_.possible = possible;
      last_trace_.ok = true;
      last_trace_.cached = true;
      executions_.fetch_add(1, std::memory_order_relaxed);
      service_->executions_.fetch_add(1, std::memory_order_relaxed);
      return std::move(*hit);
    }
  }
  Result<Relation> out = RunLocked(engine_.get(), pq, possible);
  if (cacheable && out.ok()) {
    // Still under the shared lock, so the epochs cannot have moved since
    // the engine read the database: the entry's version is exact.
    service_->results_.Insert(key, *out, service_->db_version_,
                              pq.bound().predicates());
  }
  return out;
}

Result<Relation> Session::RunLocked(QueryEngine* engine,
                                    const PreparedQuery& pq, bool possible) {
  // The previous query's scratch (trace strings) dies here, so a
  // long-lived session stays at one warm arena block.
  arena_.Reset();
  last_trace_ = ExecutionTrace{};
  last_trace_.query = arena_.CopyString(pq.text().c_str(), pq.text().size());
  // The engine that actually ran: a handle prepared on another session may
  // carry a different engine tag, but it executes on *this* session's.
  last_trace_.engine = arena_.CopyString(options_.engine.c_str(),
                                         options_.engine.size());
  last_trace_.possible = possible;

  Result<Relation> out = possible ? engine->PossibleAnswerBound(pq.bound())
                                  : engine->AnswerBound(pq.bound());

  last_trace_.mappings_examined = engine->last_mappings_examined();
  last_trace_.memo = engine->last_memo_counters();
  service_->memo_row_hits_.fetch_add(last_trace_.memo.row_hits,
                                     std::memory_order_relaxed);
  service_->memo_row_misses_.fetch_add(last_trace_.memo.row_misses,
                                       std::memory_order_relaxed);
  service_->memo_images_skipped_.fetch_add(last_trace_.memo.images_skipped,
                                           std::memory_order_relaxed);
  last_trace_.ok = out.ok();
  executions_.fetch_add(1, std::memory_order_relaxed);
  service_->executions_.fetch_add(1, std::memory_order_relaxed);
  return out;
}

Result<AsyncExecution> Session::ExecuteAsync(PreparedHandle handle,
                                             bool possible) {
  std::shared_ptr<PreparedQuery> pq = service_->cache_.Resolve(handle);
  if (pq == nullptr) {
    return Status::NotFound("no prepared query with handle " +
                            std::to_string(handle));
  }
  if (in_flight_.fetch_add(1, std::memory_order_acq_rel) + 1 >
      options_.max_in_flight) {
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    return Status::ResourceExhausted(
        "session has " + std::to_string(options_.max_in_flight) +
        " executions in flight");
  }
  auto cancel = std::make_shared<std::atomic<bool>>(false);
  // The task owns a shared_ptr to the session, so a session dropped by its
  // client stays alive until its queued executions drain.
  std::shared_ptr<Session> self = shared_from_this();
  AsyncExecution out;
  out.cancel = cancel;
  out.result =
      service_->pool_.Async([self, pq, possible, cancel]() -> Result<Relation> {
        struct SlotGuard {
          Session* s;
          ~SlotGuard() { s->in_flight_.fetch_sub(1, std::memory_order_acq_rel); }
        } guard{self.get()};
        if (cancel->load()) {
          self->cancelled_.fetch_add(1, std::memory_order_relaxed);
          self->service_->cancelled_.fetch_add(1, std::memory_order_relaxed);
          return Status::Cancelled("execution cancelled before it started");
        }
        self->service_->async_executions_.fetch_add(1,
                                                    std::memory_order_relaxed);
        return self->Run(*pq, possible);
      });
  return out;
}

}  // namespace lqdb
