#include "lqdb/service/service.h"

#include <utility>

#include "lqdb/logic/parser.h"
#include "lqdb/ra/compiler.h"

namespace lqdb {

namespace {

/// Join-ordering statistics for the prepare-time RA compile; mirrors the
/// ra-exact engine's view (image cardinalities are bounded by the logical
/// database's fact counts and `|C|`).
RaCardinalities StatsFor(const CwDatabase& lb) {
  RaCardinalities stats;
  stats.domain_size = static_cast<double>(lb.num_constants());
  stats.relation_sizes.assign(lb.vocab().num_predicates(), 0.0);
  for (PredId p : lb.PredicatesWithFacts()) {
    stats.relation_sizes[p] = static_cast<double>(lb.facts(p).size());
  }
  return stats;
}

}  // namespace

Service::Service(CwDatabase* db, ServiceOptions options)
    : db_(db),
      options_(options),
      cache_(options.cache_shards),
      pool_(options.threads > 0 ? options.threads
                                : ThreadPool::DefaultThreads()) {}

Result<std::shared_ptr<Session>> Service::OpenSession(SessionOptions options) {
  LQDB_ASSIGN_OR_RETURN(
      EngineCapabilities caps,
      EngineRegistry::Global().CapabilitiesOf(options.engine));
  sessions_opened_.fetch_add(1, std::memory_order_relaxed);
  return std::shared_ptr<Session>(
      new Session(this, std::move(options), caps));
}

ServiceStats Service::stats() const {
  ServiceStats out;
  out.prepares = prepares_.load();
  out.cache_hits = cache_hits_.load();
  out.cache_misses = cache_misses_.load();
  out.executions = executions_.load();
  out.async_executions = async_executions_.load();
  out.cancelled = cancelled_.load();
  out.cached_queries = cache_.size();
  out.sessions_opened = sessions_opened_.load();
  return out;
}

Result<std::shared_ptr<PreparedQuery>> Service::PrepareInternal(
    const std::string& engine, const std::string& text, PreparedInfo* info) {
  prepares_.fetch_add(1, std::memory_order_relaxed);
  PreparedHandle handle = 0;
  if (std::shared_ptr<PreparedQuery> hit = cache_.Find(engine, text,
                                                       &handle)) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    info->handle = handle;
    info->cache_hit = true;
    return hit;
  }
  cache_misses_.fetch_add(1, std::memory_order_relaxed);

  std::shared_ptr<PreparedQuery> entry;
  {
    // Exclusive: parsing interns constants/predicates into the shared
    // vocabulary, and the compiler reads the fact counts.
    std::unique_lock<std::shared_mutex> db_lock(db_mu_);
    LQDB_ASSIGN_OR_RETURN(Query query,
                          ParseQuery(db_->mutable_vocab(), text));
    LQDB_ASSIGN_OR_RETURN(
        entry, PreparedQuery::Make(text, engine, std::move(query)));
    // Compile once at prepare time regardless of engine: ra-exact executes
    // the plan, and the other engines ignore it. A failed compile (second
    // order) is cached inside the binding as "use the fallback".
    const RaCardinalities stats = StatsFor(*db_);
    Status compile = entry->mutable_bound()->CompileRaPlan(db_->vocab(),
                                                           &stats);
    (void)compile;
  }

  bool inserted = false;
  entry = cache_.Insert(std::move(entry), &handle, &inserted);
  info->handle = handle;
  info->cache_hit = false;  // this caller paid the parse+compile
  return entry;
}

Result<PreparedInfo> Session::Prepare(const std::string& text) {
  PreparedInfo info;
  LQDB_RETURN_IF_ERROR(
      service_->PrepareInternal(options_.engine, text, &info).status());
  prepares_.fetch_add(1, std::memory_order_relaxed);
  if (info.cache_hit) cache_hits_.fetch_add(1, std::memory_order_relaxed);
  return info;
}

Result<Relation> Session::Execute(PreparedHandle handle) {
  std::shared_ptr<PreparedQuery> pq = service_->cache_.Resolve(handle);
  if (pq == nullptr) {
    return Status::NotFound("no prepared query with handle " +
                            std::to_string(handle));
  }
  return Run(*pq, /*possible=*/false);
}

Result<Relation> Session::ExecutePossible(PreparedHandle handle) {
  std::shared_ptr<PreparedQuery> pq = service_->cache_.Resolve(handle);
  if (pq == nullptr) {
    return Status::NotFound("no prepared query with handle " +
                            std::to_string(handle));
  }
  return Run(*pq, /*possible=*/true);
}

Result<Relation> Session::Query(const std::string& text) {
  LQDB_ASSIGN_OR_RETURN(PreparedInfo info, Prepare(text));
  return Execute(info.handle);
}

Status Session::EnsureEngine() {
  if (engine_ready_.load(std::memory_order_acquire)) return Status::OK();
  // Lock order: database before session execution mutex, everywhere.
  std::unique_lock<std::shared_mutex> db_lock(service_->db_mu_);
  std::lock_guard<std::mutex> exec_lock(exec_mu_);
  if (engine_ready_.load(std::memory_order_relaxed)) return Status::OK();
  LQDB_ASSIGN_OR_RETURN(engine_, EngineRegistry::Global().Create(
                                     options_.engine, service_->db_,
                                     options_.engine_options));
  engine_ready_.store(true, std::memory_order_release);
  return Status::OK();
}

Result<Relation> Session::Run(const PreparedQuery& pq, bool possible) {
  if (caps_.mutates_database) {
    // A mutating engine (approx) writes the vocabulary at construction and
    // snapshots Ph₂, so it runs exclusively and is rebuilt per execution —
    // never answering from a snapshot that predates a later prepare.
    std::unique_lock<std::shared_mutex> db_lock(service_->db_mu_);
    std::lock_guard<std::mutex> exec_lock(exec_mu_);
    LQDB_ASSIGN_OR_RETURN(std::unique_ptr<QueryEngine> engine,
                          EngineRegistry::Global().Create(
                              options_.engine, service_->db_,
                              options_.engine_options));
    return RunLocked(engine.get(), pq, possible);
  }
  LQDB_RETURN_IF_ERROR(EnsureEngine());
  std::shared_lock<std::shared_mutex> db_lock(service_->db_mu_);
  std::lock_guard<std::mutex> exec_lock(exec_mu_);
  return RunLocked(engine_.get(), pq, possible);
}

Result<Relation> Session::RunLocked(QueryEngine* engine,
                                    const PreparedQuery& pq, bool possible) {
  // The previous query's scratch (trace strings) dies here, so a
  // long-lived session stays at one warm arena block.
  arena_.Reset();
  last_trace_ = ExecutionTrace{};
  last_trace_.query = arena_.CopyString(pq.text().c_str(), pq.text().size());
  // The engine that actually ran: a handle prepared on another session may
  // carry a different engine tag, but it executes on *this* session's.
  last_trace_.engine = arena_.CopyString(options_.engine.c_str(),
                                         options_.engine.size());
  last_trace_.possible = possible;

  Result<Relation> out = possible ? engine->PossibleAnswerBound(pq.bound())
                                  : engine->AnswerBound(pq.bound());

  last_trace_.mappings_examined = engine->last_mappings_examined();
  last_trace_.ok = out.ok();
  executions_.fetch_add(1, std::memory_order_relaxed);
  service_->executions_.fetch_add(1, std::memory_order_relaxed);
  return out;
}

Result<AsyncExecution> Session::ExecuteAsync(PreparedHandle handle,
                                             bool possible) {
  std::shared_ptr<PreparedQuery> pq = service_->cache_.Resolve(handle);
  if (pq == nullptr) {
    return Status::NotFound("no prepared query with handle " +
                            std::to_string(handle));
  }
  if (in_flight_.fetch_add(1, std::memory_order_acq_rel) + 1 >
      options_.max_in_flight) {
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    return Status::ResourceExhausted(
        "session has " + std::to_string(options_.max_in_flight) +
        " executions in flight");
  }
  auto cancel = std::make_shared<std::atomic<bool>>(false);
  // The task owns a shared_ptr to the session, so a session dropped by its
  // client stays alive until its queued executions drain.
  std::shared_ptr<Session> self = shared_from_this();
  AsyncExecution out;
  out.cancel = cancel;
  out.result =
      service_->pool_.Async([self, pq, possible, cancel]() -> Result<Relation> {
        struct SlotGuard {
          Session* s;
          ~SlotGuard() { s->in_flight_.fetch_sub(1, std::memory_order_acq_rel); }
        } guard{self.get()};
        if (cancel->load()) {
          self->cancelled_.fetch_add(1, std::memory_order_relaxed);
          self->service_->cancelled_.fetch_add(1, std::memory_order_relaxed);
          return Status::Cancelled("execution cancelled before it started");
        }
        self->service_->async_executions_.fetch_add(1,
                                                    std::memory_order_relaxed);
        return self->Run(*pq, possible);
      });
  return out;
}

}  // namespace lqdb
