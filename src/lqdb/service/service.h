#ifndef LQDB_SERVICE_SERVICE_H_
#define LQDB_SERVICE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "lqdb/cwdb/cw_database.h"
#include "lqdb/engine/engine.h"
#include "lqdb/relational/relation.h"
#include "lqdb/service/prepared_cache.h"
#include "lqdb/service/result_cache.h"
#include "lqdb/util/annotations.h"
#include "lqdb/util/arena.h"
#include "lqdb/util/result.h"
#include "lqdb/util/thread_pool.h"

namespace lqdb {

class Service;
class Session;

struct ServiceOptions {
  /// Worker threads of the shared async executor; 0 means hardware
  /// concurrency.
  int threads = 0;
  /// Mutex shards of the prepared-query cache.
  size_t cache_shards = 8;
};

/// Service-wide counters, all monotone since construction (except
/// `cached_results`/`cached_queries`, which are current sizes).
struct ServiceStats {
  uint64_t prepares = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t executions = 0;
  uint64_t async_executions = 0;
  uint64_t cancelled = 0;
  size_t cached_queries = 0;
  size_t sessions_opened = 0;
  /// Single-fact updates applied (`Service::Assert` / `Service::Retract`).
  uint64_t asserts = 0;
  uint64_t retracts = 0;
  /// Database version: bumped by every applied update.
  uint64_t db_version = 0;
  /// Result-cache traffic (see `ResultCache`).
  uint64_t result_hits = 0;
  uint64_t result_misses = 0;
  uint64_t result_invalidations = 0;
  size_t cached_results = 0;
  /// Kernel-memo traffic aggregated over every execution the service ran
  /// (see `KernelMemoCounters`).
  uint64_t memo_row_hits = 0;
  uint64_t memo_row_misses = 0;
  uint64_t memo_images_skipped = 0;
};

struct SessionOptions {
  /// Registry name of the engine this session evaluates with.
  std::string engine = "exact";
  /// Construction knobs forwarded to the engine factory.
  EngineOptions engine_options;
  /// Cap on queued-or-running `ExecuteAsync` calls per session; one more
  /// fails with `ResourceExhausted` until a slot frees up.
  int max_in_flight = 4;
  /// Serve (and feed) the service's cross-execution result cache. Answers
  /// are identical either way — the cache never returns a stale result —
  /// so the toggle exists for A/B runs (`set memo off` in the shell
  /// disables both reuse levels).
  bool use_result_cache = true;
};

/// Fingerprint of every `EngineOptions` field that can change an answer
/// (or the answer-vs-error outcome) — the options part of the prepared-
/// statement and result-cache keys. Fields that provably cannot change
/// answers (thread count, the kernel memo toggle) are deliberately
/// excluded so sessions differing only in them share cache entries.
std::string EngineOptionsFingerprint(const EngineOptions& options);

/// Outcome of preparing a query on a session.
struct PreparedInfo {
  PreparedHandle handle = 0;
  /// Whether the statement came from the shared cache (no parse, bind or
  /// RA-compile ran).
  bool cache_hit = false;
};

/// What the session's most recent execution did. The strings live in the
/// session's per-query arena: valid until the next execution begins.
struct ExecutionTrace {
  const char* query = nullptr;
  const char* engine = nullptr;
  uint64_t mappings_examined = 0;
  bool possible = false;
  bool ok = false;
  /// Served from the result cache (no engine ran; `mappings_examined` and
  /// `memo` are zero).
  bool cached = false;
  /// The engine's kernel-memo counters for this execution.
  KernelMemoCounters memo;
};

/// A ticket for one in-flight `ExecuteAsync`. `Cancel` is best-effort: it
/// withdraws the execution only if no worker has started it yet (the task
/// then resolves to `StatusCode::kCancelled`); once running, the execution
/// completes normally.
struct AsyncExecution {
  std::future<Result<Relation>> result;
  std::shared_ptr<std::atomic<bool>> cancel;

  void Cancel() { cancel->store(true); }
};

/// One client's conversation with a `Service`: an engine choice plus
/// per-session options, a lazily built engine instance, a per-query
/// scratch arena reset when each execution completes, and execution
/// counters. Sessions are the unit of concurrency — any number may execute
/// simultaneously against the shared database, while calls *within* one
/// session serialize on its execution mutex (engines keep per-call state
/// such as `last_mappings_examined` and are not internally thread-safe).
///
/// Obtained from `Service::OpenSession` and kept alive by `shared_ptr`;
/// async executions extend the session's lifetime until they finish, but
/// sessions must not outlive their service.
class Session : public std::enable_shared_from_this<Session> {
 public:
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Parses, binds and RA-compiles `text` — or returns the cached
  /// statement when any session already prepared it for this engine.
  Result<PreparedInfo> Prepare(const std::string& text);

  /// Runs a prepared statement on this session's engine; `NotFound` for a
  /// handle the service never issued.
  Result<Relation> Execute(PreparedHandle handle);

  /// As `Execute` for the possible answer (tuples holding in at least one
  /// model); `Unimplemented` when the engine does not support it.
  Result<Relation> ExecutePossible(PreparedHandle handle);

  /// One-shot convenience: `Prepare` + `Execute`.
  Result<Relation> Query(const std::string& text);

  /// Schedules the execution on the service's shared pool and returns a
  /// future plus a cancellation flag. At most `max_in_flight` per session;
  /// the next call fails with `ResourceExhausted`.
  Result<AsyncExecution> ExecuteAsync(PreparedHandle handle,
                                      bool possible = false);

  const SessionOptions& options() const { return options_; }
  const EngineCapabilities& capabilities() const { return caps_; }

  /// Counters for this session only.
  uint64_t executions() const { return executions_.load(); }
  uint64_t prepares() const { return prepares_.load(); }
  uint64_t cache_hits() const { return cache_hits_.load(); }
  uint64_t cancelled() const { return cancelled_.load(); }
  int in_flight() const { return in_flight_.load(); }

  /// The most recent execution's trace. Stable only while no execution is
  /// running on this session (single-threaded clients like the shell) —
  /// which is why this read is exempt from the lock contract on
  /// `last_trace_` rather than taking `exec_mu_`.
  const ExecutionTrace& last_trace() const NO_THREAD_SAFETY_ANALYSIS {
    return last_trace_;
  }

 private:
  friend class Service;

  Session(Service* service, SessionOptions options, EngineCapabilities caps)
      : service_(service),
        options_(std::move(options)),
        options_key_(EngineOptionsFingerprint(options_.engine_options)),
        caps_(caps) {}

  /// Builds the engine on first use. Two-phase so the fast path is one
  /// acquire load: creation happens under the database lock (factories may
  /// read the database) and the session's execution mutex, and the ready
  /// flag is published last.
  Status EnsureEngine();

  /// Locks (database shared or, for a mutating engine, exclusive — always
  /// *before* the execution mutex) and runs one execution.
  Result<Relation> Run(const PreparedQuery& pq, bool possible);
  Result<Relation> RunLocked(QueryEngine* engine, const PreparedQuery& pq,
                             bool possible) REQUIRES(exec_mu_)
      REQUIRES_SHARED(service_->db_mu_);

  Service* service_;
  SessionOptions options_;
  /// `EngineOptionsFingerprint` of this session's engine options, computed
  /// once — part of every prepared-statement and result-cache key.
  std::string options_key_;
  EngineCapabilities caps_;

  /// Serializes executions within this session; always acquired after the
  /// service's database lock.
  Mutex exec_mu_;
  std::unique_ptr<QueryEngine> engine_ GUARDED_BY(exec_mu_);
  std::atomic<bool> engine_ready_{false};

  /// Per-query scratch, reset when each execution completes (deeb's
  /// arena-per-query model).
  MemArena arena_ GUARDED_BY(exec_mu_);
  ExecutionTrace last_trace_ GUARDED_BY(exec_mu_);

  std::atomic<int> in_flight_{0};
  std::atomic<uint64_t> executions_{0};
  std::atomic<uint64_t> prepares_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cancelled_{0};
};

/// The query service: many concurrent sessions over one logical database,
/// sharing a prepared-statement cache and an async executor pool.
///
/// Thread-safety contract. The database is logically immutable while the
/// service exists, but two operations physically write it and are
/// serialized behind an internal reader/writer lock: preparing a new
/// statement (parsing interns names into the vocabulary) and running an
/// engine whose capabilities say `mutates_database` (the §5 approximation
/// interns NE/α predicates — such engines also run exclusively and are
/// rebuilt per execution so they never answer from a stale snapshot).
/// Everything else — cache hits, executions on non-mutating engines —
/// proceeds under a shared lock, so N sessions executing prepared
/// statements never contend beyond the engines' own work.
///
/// The service must outlive its sessions; its destructor drains the pool,
/// so pending async executions finish (or resolve as cancelled) first.
class Service {
 public:
  /// Borrows `db`, which must outlive the service. The database should not
  /// be touched directly while the service exists.
  explicit Service(CwDatabase* db, ServiceOptions options = {});

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Creates a session; fails (`NotFound`) for an unregistered engine
  /// name. Engine construction itself is deferred to the first execution.
  Result<std::shared_ptr<Session>> OpenSession(SessionOptions options = {});

  /// Applies a single-fact update behind the writer lock, interning new
  /// constant names as *known* constants (`Assert`) or removing a stored
  /// fact (`Retract`; `NotFound` when the predicate or fact is unknown).
  /// Either bumps the database version and the updated relation's change
  /// epoch, so dependent cached results go stale — and, when an `Assert`
  /// grows the constant set, the global epoch, since the Theorem 1 answer
  /// of *every* query quantifies over all of `C`.
  Status Assert(const std::string& pred,
                const std::vector<std::string>& names);
  Status Retract(const std::string& pred,
                 const std::vector<std::string>& names);

  const CwDatabase& db() const { return *db_; }
  int threads() const { return pool_.num_threads(); }

  /// The current database version (updates applied since construction).
  uint64_t db_version() const;

  ServiceStats stats() const;

 private:
  friend class Session;

  /// The shared prepare path (see `Session::Prepare`).
  Result<std::shared_ptr<PreparedQuery>> PrepareInternal(
      const std::string& engine, const EngineOptions& engine_options,
      const std::string& text, PreparedInfo* info);

  /// Bumps the change epochs after a write to `pred` under the exclusive
  /// database lock; `constants_grew` additionally raises the global epoch.
  void BumpVersionLocked(PredId pred, bool constants_grew) REQUIRES(db_mu_);

  CwDatabase* db_;
  ServiceOptions options_;

  /// Guards the database: shared for executions, exclusive for parsing,
  /// updates and mutating engines. Acquired before any session's
  /// `exec_mu_`.
  mutable SharedMutex db_mu_;

  PreparedCache cache_;
  ResultCache results_;

  /// Change epochs (written under the exclusive lock, read under shared):
  /// `db_version_` counts applied updates; `global_change_` /
  /// `pred_change_[p]` record the version *after* the last change
  /// affecting every query / queries reading `p`.
  uint64_t db_version_ GUARDED_BY(db_mu_) = 0;
  uint64_t global_change_ GUARDED_BY(db_mu_) = 0;
  std::vector<uint64_t> pred_change_ GUARDED_BY(db_mu_);

  std::atomic<uint64_t> asserts_{0};
  std::atomic<uint64_t> retracts_{0};
  std::atomic<uint64_t> memo_row_hits_{0};
  std::atomic<uint64_t> memo_row_misses_{0};
  std::atomic<uint64_t> memo_images_skipped_{0};
  std::atomic<uint64_t> prepares_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
  std::atomic<uint64_t> executions_{0};
  std::atomic<uint64_t> async_executions_{0};
  std::atomic<uint64_t> cancelled_{0};
  std::atomic<size_t> sessions_opened_{0};

  /// Declared last: destroyed first, draining queued async executions
  /// while the cache and counters above are still alive.
  ThreadPool pool_;
};

}  // namespace lqdb

#endif  // LQDB_SERVICE_SERVICE_H_
