#include "lqdb/cwdb/mapping.h"

#include <cassert>
#include <numeric>

namespace lqdb {

ConstMapping IdentityMapping(size_t n) {
  ConstMapping h(n);
  std::iota(h.begin(), h.end(), 0);
  return h;
}

bool RespectsUniqueness(const CwDatabase& lb, const ConstMapping& h) {
  assert(h.size() == lb.num_constants());
  for (const auto& [a, b] : lb.AllDistinctPairs()) {
    if (h[a] == h[b]) return false;
  }
  return true;
}

PhysicalDatabase ApplyMapping(const CwDatabase& lb, const ConstMapping& h) {
  assert(h.size() == lb.num_constants());
  PhysicalDatabase db(&lb.vocab());
  for (ConstId c = 0; c < h.size(); ++c) db.AddDomainValue(h[c]);
  for (ConstId c = 0; c < h.size(); ++c) {
    Status s = db.SetConstant(c, h[c]);
    assert(s.ok());
    (void)s;
  }
  for (PredId p : lb.PredicatesWithFacts()) {
    for (const Tuple& t : lb.facts(p).tuples()) {
      Tuple image(t.size());
      for (size_t i = 0; i < t.size(); ++i) image[i] = h[t[i]];
      Status s = db.AddTuple(p, std::move(image));
      assert(s.ok());
      (void)s;
    }
  }
  return db;
}

namespace {

/// Backtracking enumeration of NE-avoiding partitions via restricted-growth
/// assignment: constant i joins an existing block (when no member conflicts)
/// or opens a new one.
class PartitionWalker {
 public:
  PartitionWalker(const CwDatabase& lb, const MappingVisitor* visit)
      : lb_(lb), visit_(visit), n_(lb.num_constants()), h_(n_, 0) {}

  uint64_t Run() {
    if (n_ == 0) return 0;
    Recurse(0);
    return count_;
  }

 private:
  /// Returns false when the walk should stop.
  bool Recurse(ConstId i) {
    if (i == n_) {
      ++count_;
      if (visit_ != nullptr && !(*visit_)(h_)) return false;
      return true;
    }
    // Index-based iteration: deeper recursion levels push/pop blocks on the
    // same vector, so references and iterators into it do not survive the
    // recursive call. The push/pop pairs are balanced, so `blocks_[bi]` is
    // valid again once the call returns.
    const size_t num_existing = blocks_.size();
    for (size_t bi = 0; bi < num_existing; ++bi) {
      bool conflict = false;
      for (ConstId member : blocks_[bi]) {
        if (lb_.AreDistinct(member, i)) {
          conflict = true;
          break;
        }
      }
      if (conflict) continue;
      blocks_[bi].push_back(i);
      h_[i] = blocks_[bi][0];
      bool cont = Recurse(i + 1);
      blocks_[bi].pop_back();
      if (!cont) return false;
    }
    blocks_.push_back({i});
    h_[i] = i;
    bool cont = Recurse(i + 1);
    blocks_.pop_back();
    return cont;
  }

  const CwDatabase& lb_;
  const MappingVisitor* visit_;
  const ConstId n_;
  ConstMapping h_;
  std::vector<std::vector<ConstId>> blocks_;
  uint64_t count_ = 0;
};

}  // namespace

uint64_t ForEachCanonicalMapping(const CwDatabase& lb,
                                 const MappingVisitor& visit) {
  PartitionWalker walker(lb, &visit);
  return walker.Run();
}

uint64_t CountCanonicalMappings(const CwDatabase& lb) {
  PartitionWalker walker(lb, nullptr);
  return walker.Run();
}

uint64_t ForEachMapping(const CwDatabase& lb, const MappingVisitor& visit) {
  const size_t n = lb.num_constants();
  if (n == 0) return 0;
  // Hoist the uniqueness pairs out of the |C|^|C| loop.
  const std::vector<std::pair<ConstId, ConstId>> pairs =
      lb.AllDistinctPairs();
  ConstMapping h(n, 0);
  uint64_t visited = 0;
  while (true) {
    bool respects = true;
    for (const auto& [a, b] : pairs) {
      if (h[a] == h[b]) {
        respects = false;
        break;
      }
    }
    if (respects) {
      ++visited;
      if (!visit(h)) return visited;
    }
    // Odometer increment over C^C.
    size_t pos = 0;
    while (pos < n && ++h[pos] == n) {
      h[pos] = 0;
      ++pos;
    }
    if (pos == n) break;
  }
  return visited;
}

}  // namespace lqdb
