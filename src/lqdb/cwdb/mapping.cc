#include "lqdb/cwdb/mapping.h"

#include <cassert>
#include <numeric>

namespace lqdb {

ConstMapping IdentityMapping(size_t n) {
  ConstMapping h(n);
  std::iota(h.begin(), h.end(), 0);
  return h;
}

bool RespectsUniqueness(const CwDatabase& lb, const ConstMapping& h) {
  assert(h.size() == lb.num_constants());
  for (const auto& [a, b] : lb.AllDistinctPairs()) {
    if (h[a] == h[b]) return false;
  }
  return true;
}

void ApplyMappingInto(const CwDatabase& lb, const ConstMapping& h,
                      PhysicalDatabase* scratch) {
  assert(h.size() == lb.num_constants());
  assert(&scratch->vocab() == &lb.vocab());
  scratch->Clear();
  for (ConstId c = 0; c < h.size(); ++c) scratch->AddDomainValue(h[c]);
  for (ConstId c = 0; c < h.size(); ++c) {
    Status s = scratch->SetConstant(c, h[c]);
    assert(s.ok());
    (void)s;
  }
  for (PredId p : lb.PredicatesWithFacts()) {
    for (const Tuple& t : lb.facts(p).tuples()) {
      Tuple image(t.size());
      for (size_t i = 0; i < t.size(); ++i) image[i] = h[t[i]];
      Status s = scratch->AddTuple(p, std::move(image));
      assert(s.ok());
      (void)s;
    }
  }
}

PhysicalDatabase ApplyMapping(const CwDatabase& lb, const ConstMapping& h) {
  PhysicalDatabase db(&lb.vocab());
  ApplyMappingInto(lb, h, &db);
  return db;
}

namespace {

/// Backtracking enumeration of NE-avoiding partitions via restricted-growth
/// strings: constant i joins an existing block (when no member conflicts)
/// or opens a new one. A walk may be rooted at an RGS prefix, in which case
/// it visits exactly the partitions extending that prefix — the unit of
/// work behind `SplitCanonicalMappingSpace`. A walk may also carry a
/// *budget*: after visiting that many partitions it stops and reports the
/// untaken branches of its recursion stack as disjoint ranges — the unit of
/// work behind `ForEachCanonicalMappingChunk`.
class PartitionWalker {
 public:
  PartitionWalker(const CwDatabase& lb, const MappingVisitor* visit,
                  uint64_t budget = 0,
                  std::vector<MappingRange>* remainder = nullptr)
      : lb_(lb),
        visit_(visit),
        budget_(budget),
        remainder_(remainder),
        n_(lb.num_constants()),
        h_(n_, 0) {}

  /// Walks the whole space.
  uint64_t Run() {
    if (n_ == 0) return 0;
    Recurse(0);
    return count_;
  }

  /// Walks the completions of `prefix`. The prefix must be a valid
  /// NE-avoiding restricted-growth string over the first
  /// `prefix.size()` constants (as produced by
  /// `SplitCanonicalMappingSpace`).
  uint64_t RunFrom(const std::vector<ConstId>& prefix) {
    if (n_ == 0) return 0;
    assert(prefix.size() <= n_);
    rgs_ = prefix;
    for (ConstId i = 0; i < prefix.size(); ++i) {
      const ConstId block = prefix[i];
      assert(block <= blocks_.size());
      if (block == blocks_.size()) {
        blocks_.push_back({i});
      } else {
        blocks_[block].push_back(i);
      }
      h_[i] = blocks_[block][0];
    }
    Recurse(static_cast<ConstId>(prefix.size()));
    return count_;
  }

 private:
  /// Returns false when the walk should stop (visitor abort or budget).
  bool Recurse(ConstId i) {
    if (i == n_) {
      ++count_;
      if (visit_ != nullptr && !(*visit_)(h_)) {
        visitor_stopped_ = true;
        return false;
      }
      if (budget_ != 0 && count_ >= budget_) return false;
      return true;
    }
    // Index-based iteration: deeper recursion levels push/pop blocks on the
    // same vector, so references and iterators into it do not survive the
    // recursive call. The push/pop pairs are balanced, so `blocks_[bi]` is
    // valid again once the call returns. `bi == num_existing` is the
    // open-a-new-block branch.
    bool cont = true;
    const size_t num_existing = blocks_.size();
    for (size_t bi = 0; bi <= num_existing; ++bi) {
      bool conflict = false;
      if (bi < num_existing) {
        for (ConstId member : blocks_[bi]) {
          if (lb_.AreDistinct(member, i)) {
            conflict = true;
            break;
          }
        }
      }
      if (conflict) continue;
      if (!cont) {
        // The budget ran out somewhere below an earlier sibling: donate
        // this untaken branch as a range instead of walking it.
        if (!visitor_stopped_ && remainder_ != nullptr) {
          MappingRange rest;
          rest.rgs = rgs_;
          rest.rgs.push_back(static_cast<ConstId>(bi));
          remainder_->push_back(std::move(rest));
        }
        continue;
      }
      if (bi < num_existing) {
        blocks_[bi].push_back(i);
        h_[i] = blocks_[bi][0];
      } else {
        blocks_.push_back({i});
        h_[i] = i;
      }
      rgs_.push_back(static_cast<ConstId>(bi));
      cont = Recurse(i + 1);
      rgs_.pop_back();
      if (bi < num_existing) {
        blocks_[bi].pop_back();
      } else {
        blocks_.pop_back();
      }
    }
    return cont;
  }

  const CwDatabase& lb_;
  const MappingVisitor* visit_;
  const uint64_t budget_;
  std::vector<MappingRange>* remainder_;
  const ConstId n_;
  ConstMapping h_;
  std::vector<ConstId> rgs_;
  std::vector<std::vector<ConstId>> blocks_;
  uint64_t count_ = 0;
  bool visitor_stopped_ = false;
};

}  // namespace

std::vector<MappingRange> SplitCanonicalMappingSpace(const CwDatabase& lb,
                                                     size_t min_ranges) {
  const ConstId n = static_cast<ConstId>(lb.num_constants());
  if (n == 0) return {};
  std::vector<MappingRange> ranges = {MappingRange{}};
  // Deepen the shared prefix one constant at a time: each round replaces
  // every prefix of depth d with its valid depth-(d+1) children — the same
  // join-or-open-block step the walker takes, so the children partition
  // the parent exactly.
  for (ConstId depth = 0; depth < n && ranges.size() < min_ranges; ++depth) {
    std::vector<MappingRange> next;
    next.reserve(ranges.size() * 2);
    for (const MappingRange& range : ranges) {
      // Reconstruct the block membership of this prefix.
      std::vector<std::vector<ConstId>> blocks;
      for (ConstId i = 0; i < range.rgs.size(); ++i) {
        if (range.rgs[i] == blocks.size()) blocks.push_back({});
        blocks[range.rgs[i]].push_back(i);
      }
      const ConstId c = depth;  // the constant being assigned this round
      for (ConstId bi = 0; bi <= blocks.size(); ++bi) {
        bool conflict = false;
        if (bi < blocks.size()) {
          for (ConstId member : blocks[bi]) {
            if (lb.AreDistinct(member, c)) {
              conflict = true;
              break;
            }
          }
        }
        if (conflict) continue;
        MappingRange child = range;
        child.rgs.push_back(bi);
        next.push_back(std::move(child));
      }
    }
    ranges = std::move(next);
  }
  return ranges;
}

uint64_t ForEachCanonicalMappingInRange(const CwDatabase& lb,
                                        const MappingRange& range,
                                        const MappingVisitor& visit) {
  PartitionWalker walker(lb, &visit);
  return walker.RunFrom(range.rgs);
}

uint64_t ForEachCanonicalMappingChunk(const CwDatabase& lb,
                                      const MappingRange& range,
                                      uint64_t budget,
                                      const MappingVisitor& visit,
                                      std::vector<MappingRange>* remainder) {
  PartitionWalker walker(lb, &visit, budget, remainder);
  return walker.RunFrom(range.rgs);
}

uint64_t ForEachCanonicalMapping(const CwDatabase& lb,
                                 const MappingVisitor& visit) {
  PartitionWalker walker(lb, &visit);
  return walker.Run();
}

uint64_t CountCanonicalMappings(const CwDatabase& lb) {
  PartitionWalker walker(lb, nullptr);
  return walker.Run();
}

uint64_t ForEachMapping(const CwDatabase& lb, const MappingVisitor& visit) {
  const size_t n = lb.num_constants();
  if (n == 0) return 0;
  // Hoist the uniqueness pairs out of the |C|^|C| loop.
  const std::vector<std::pair<ConstId, ConstId>> pairs =
      lb.AllDistinctPairs();
  ConstMapping h(n, 0);
  uint64_t visited = 0;
  while (true) {
    bool respects = true;
    for (const auto& [a, b] : pairs) {
      if (h[a] == h[b]) {
        respects = false;
        break;
      }
    }
    if (respects) {
      ++visited;
      if (!visit(h)) return visited;
    }
    // Odometer increment over C^C.
    size_t pos = 0;
    while (pos < n && ++h[pos] == n) {
      h[pos] = 0;
      ++pos;
    }
    if (pos == n) break;
  }
  return visited;
}

}  // namespace lqdb
