#ifndef LQDB_CWDB_SIMULATION_H_
#define LQDB_CWDB_SIMULATION_H_

#include "lqdb/cwdb/cw_database.h"
#include "lqdb/cwdb/ph.h"
#include "lqdb/logic/query.h"
#include "lqdb/util/result.h"

namespace lqdb {

/// The *precise* simulation of §3.2 (Theorem 3): for every query `Q` over
/// `L` there is a second-order query `Q'` over `L' = L ∪ {NE}` with
///
///     Q(LB) = Q'(Ph₂(LB)).
///
/// `Q'` universally quantifies a binary predicate variable `H`
/// (representing a mapping h : C → C) and one primed copy `P'` per
/// predicate `P` occurring in the query (representing h(I(P))):
///
///     Q' = (z) . ∀H ∀P'₁ ... ∀P'ₘ ( ρ ∧ θ → ψ )
///
/// where ρ forces `H` to be a total functional relation that never merges
/// NE-related values (h respects T), θ forces each `P'ᵢ` to be the H-image
/// of `Pᵢ`, and ψ = ∃x₁..xₖ (H(z₁,x₁) ∧ ... ∧ H(zₖ,xₖ) ∧ φ') with φ' the
/// query body over the primed predicates.
///
/// Two details the paper leaves implicit are made explicit here (and
/// validated against `ExactEvaluator` in tests; see DESIGN.md):
///   * **Constants**: `h(Ph₁)` interprets a constant `c` as `h(c)`, while
///     `Ph₂` interprets it as `c` itself, so ψ also binds one image
///     variable `w_c` with `H(c, w_c)` per constant of φ and φ' speaks
///     about the images. (The paper's bare `P ↦ P'` substitution is the
///     special case of constant-free queries.)
///   * **Quantifier relativization**: the domain of `h(Ph₁)` is `h(C)`,
///     not `C`, so every quantifier of φ' is relativized to H's image:
///     ∀y χ ⇒ ∀y (∃s H(s,y) → χ), ∃y χ ⇒ ∃y (∃s H(s,y) ∧ χ).
///
/// The paper is explicit that this is *not* a practical evaluation route —
/// it exists to expose the second-order universal quantification hidden in
/// CW query semantics. Accordingly the construction is exercised on tiny
/// databases (the SO evaluator enumerates 2^(|C|²) interpretations of H).
struct PreciseSimulation {
  Query query;  ///< Q', a Σ-free ∀-prefixed second-order query over L'.
};

/// Builds Q' for `query` against the vocabulary of `lb` (which must
/// already contain `NE`, i.e. `MakePh2` was called). Only the predicates
/// occurring in the query body receive primed copies — predicates the
/// query never mentions cannot influence ψ, so quantifying their images
/// would only enlarge the search space.
Result<PreciseSimulation> BuildPreciseSimulation(CwDatabase* lb, PredId ne,
                                                 const Query& query);

}  // namespace lqdb

#endif  // LQDB_CWDB_SIMULATION_H_
