#ifndef LQDB_CWDB_PH_H_
#define LQDB_CWDB_PH_H_

#include "lqdb/cwdb/cw_database.h"
#include "lqdb/eval/evaluator.h"
#include "lqdb/relational/database.h"
#include "lqdb/util/result.h"

namespace lqdb {

/// `Ph₁(LB)` (§3.1): the physical database whose domain is the constant set
/// `C`, whose constants are interpreted as themselves, and whose relations
/// hold exactly the atomic facts. The returned database borrows the
/// database's vocabulary, which must outlive it (and must not be moved).
PhysicalDatabase MakePh1(const CwDatabase& lb);

/// Name of the inequality predicate added by `MakePh2`.
inline constexpr const char* kNePredicateName = "NE";

struct Ph2Options {
  /// When true, the `NE` relation is materialized with every uniqueness
  /// pair in both orientations — up to quadratic in |C|. When false, the
  /// relation is left empty and membership must be answered by a
  /// `VirtualNeProvider` (the §5 closing-remark implementation).
  bool materialize_ne = true;
};

struct Ph2 {
  PhysicalDatabase db;
  PredId ne;  ///< Id of the `NE` predicate in the (extended) vocabulary.
};

/// `Ph₂(LB)` (§3.2/§5): `Ph₁` over the vocabulary `L'` extended with the
/// binary predicate `NE` that records the uniqueness axioms. Mutates the
/// vocabulary of `lb` (declaring `NE` as an auxiliary predicate).
Result<Ph2> MakePh2(CwDatabase* lb, const Ph2Options& options = {});

/// Decides `NE(x, y)` directly from the stored known/unknown partition and
/// explicit pairs, in O(log #explicit) per probe and O(U + NE') storage:
///
///   NE(x, y) ≡ NE'(x, y) ∨ (¬U(x) ∧ ¬U(y) ∧ ¬(x = y))
///
/// Precondition: attached to databases whose domain values are the constant
/// ids of `lb` (true for `Ph₂` and all mapping images).
class VirtualNeProvider : public VirtualRelationProvider {
 public:
  VirtualNeProvider(const CwDatabase* lb, PredId ne) : lb_(lb), ne_(ne) {}

  bool Provides(PredId pred) const override { return pred == ne_; }

  bool Contains(PredId pred, const Tuple& args) const override {
    (void)pred;
    return lb_->AreDistinct(args[0], args[1]);
  }

 private:
  const CwDatabase* lb_;
  PredId ne_;
};

}  // namespace lqdb

#endif  // LQDB_CWDB_PH_H_
