#ifndef LQDB_CWDB_THEORY_H_
#define LQDB_CWDB_THEORY_H_

#include <string>
#include <vector>

#include "lqdb/cwdb/cw_database.h"
#include "lqdb/logic/formula.h"

namespace lqdb {

/// The first-order theory `T` of a CW logical database, with the five §2.2
/// component groups made explicit. `CwDatabase` stores only facts and
/// uniqueness axioms; this struct materializes the rest.
struct Theory {
  std::vector<FormulaPtr> atomic_facts;
  std::vector<FormulaPtr> uniqueness;      ///< ¬(ci = cj) sentences.
  FormulaPtr domain_closure;               ///< ∀x (x=c1 ∨ ... ∨ x=cn).
  std::vector<FormulaPtr> completion;      ///< One per schema predicate.

  /// All sentences of `T`, in the order fact / uniqueness / closure /
  /// completion.
  std::vector<FormulaPtr> AllSentences() const;
};

/// Materializes the theory of `lb`. Mutates only the vocabulary (interning
/// the quantified variables used by the closure/completion axioms).
Theory TheoryOf(CwDatabase* lb);

/// Pretty-prints the theory one sentence per line, with group headers.
std::string PrintTheory(const Vocabulary& vocab, const Theory& theory);

}  // namespace lqdb

#endif  // LQDB_CWDB_THEORY_H_
