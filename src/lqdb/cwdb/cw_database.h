#ifndef LQDB_CWDB_CW_DATABASE_H_
#define LQDB_CWDB_CW_DATABASE_H_

#include <map>
#include <set>
#include <string_view>
#include <utility>
#include <vector>

#include "lqdb/logic/vocabulary.h"
#include "lqdb/relational/relation.h"
#include "lqdb/util/result.h"

namespace lqdb {

/// A *closed-world logical database* `LB = (L, T)` in the sense of §2.2 of
/// the paper — Reiter's extended relational theory without types. The
/// stored state is exactly what the paper says suffices:
///
///   1. the **atomic fact axioms** (one tuple per fact), and
///   2. the **uniqueness axioms** `¬(ci = cj)`;
///
/// the **domain closure axiom** and the per-predicate **completion axioms**
/// are determined by these and are emitted on demand by `TheoryOf()`.
///
/// Uniqueness axioms are represented in the virtual-`NE` style of the §5
/// closing remark: each constant is either *known* or *unknown* (the unary
/// relation `U`), all known constants are implicitly pairwise distinct, and
/// explicit distinct pairs (`NE'`) record whatever is known about unknown
/// values. A database with no unknown constants is *fully specified*.
class CwDatabase {
 public:
  CwDatabase() = default;

  // Not copyable (examples/benches pass it by reference); movable.
  CwDatabase(const CwDatabase&) = delete;
  CwDatabase& operator=(const CwDatabase&) = delete;
  CwDatabase(CwDatabase&&) = default;
  CwDatabase& operator=(CwDatabase&&) = default;

  const Vocabulary& vocab() const { return vocab_; }
  /// Mutable access for query building against this database's vocabulary.
  Vocabulary* mutable_vocab() { return &vocab_; }

  /// Adds a constant whose identity is fully known: implicitly distinct
  /// from every other known constant (idempotent; upgrades an unknown
  /// constant of the same name to known).
  ConstId AddKnownConstant(std::string_view name);

  /// Adds a constant with *unknown* identity (a null in Reiter's sense): it
  /// carries no implicit uniqueness axioms. Idempotent; never downgrades a
  /// known constant.
  ConstId AddUnknownConstant(std::string_view name);

  /// Constants interned directly into the vocabulary (e.g. by the query
  /// parser) without going through Add{Known,Unknown}Constant count as
  /// unknown — the conservative default: no uniqueness axioms.
  bool IsKnown(ConstId c) const { return c < known_.size() && known_[c]; }

  /// The unknown constants (the paper's unary relation `U`).
  std::vector<ConstId> UnknownConstants() const;

  /// Declares a schema predicate.
  Result<PredId> AddPredicate(std::string_view name, int arity);

  /// Adds an atomic fact axiom `P(c1, ..., ck)`.
  Status AddFact(PredId pred, Tuple constants);

  /// Convenience: adds the fact by name, interning missing constants as
  /// *known* constants.
  Status AddFact(std::string_view pred, std::vector<std::string_view> names);

  /// Removes an atomic fact axiom; `NotFound` when the predicate is unknown
  /// or the fact is not stored. Constants are never removed — dropping the
  /// last fact about a constant does not shrink `C` (the domain-closure
  /// axiom still ranges over it).
  Status RemoveFact(PredId pred, const Tuple& constants);

  /// Adds an explicit uniqueness axiom `¬(a = b)` (the `NE'` relation).
  /// Rejected when `a == b` (the theory would be inconsistent).
  Status AddDistinct(ConstId a, ConstId b);
  Status AddDistinct(std::string_view a, std::string_view b);

  /// True iff `¬(a = b)` is a uniqueness axiom (explicitly stored, or
  /// implicit between two known constants).
  bool AreDistinct(ConstId a, ConstId b) const;

  /// The explicitly stored pairs, normalized with first < second.
  const std::set<std::pair<ConstId, ConstId>>& explicit_distinct() const {
    return explicit_distinct_;
  }

  /// All uniqueness axioms, materialized (quadratic in the number of known
  /// constants — see bench E6 for why the virtual form is preferable).
  std::vector<std::pair<ConstId, ConstId>> AllDistinctPairs() const;

  /// Number of uniqueness axioms without materializing them.
  size_t CountDistinctPairs() const;

  /// §2.2: fully specified iff every pair of distinct constant symbols has
  /// a uniqueness axiom.
  bool IsFullySpecified() const;

  /// The atomic facts of `pred` (empty relation when none).
  const Relation& facts(PredId pred) const;

  /// Predicates that have at least one stored fact.
  std::vector<PredId> PredicatesWithFacts() const;

  size_t num_constants() const { return vocab_.num_constants(); }

  /// Total number of stored atomic facts.
  size_t NumFacts() const;

  /// Sanity checks: nonempty constant set (physical models need a nonempty
  /// domain) and in-range fact tuples.
  Status Validate() const;

 private:
  ConstId InternConstant(std::string_view name, bool known);

  Vocabulary vocab_;
  std::vector<bool> known_;  // indexed by ConstId
  std::set<std::pair<ConstId, ConstId>> explicit_distinct_;
  std::map<PredId, Relation> facts_;
};

}  // namespace lqdb

#endif  // LQDB_CWDB_CW_DATABASE_H_
