#include "lqdb/cwdb/theory.h"

#include "lqdb/logic/printer.h"

namespace lqdb {

std::vector<FormulaPtr> Theory::AllSentences() const {
  std::vector<FormulaPtr> out;
  out.insert(out.end(), atomic_facts.begin(), atomic_facts.end());
  out.insert(out.end(), uniqueness.begin(), uniqueness.end());
  if (domain_closure != nullptr) out.push_back(domain_closure);
  out.insert(out.end(), completion.begin(), completion.end());
  return out;
}

Theory TheoryOf(CwDatabase* lb) {
  Theory theory;
  Vocabulary* vocab = lb->mutable_vocab();
  const ConstId n = static_cast<ConstId>(vocab->num_constants());

  // (1) Atomic fact axioms.
  for (PredId p : lb->PredicatesWithFacts()) {
    for (const Tuple& t : lb->facts(p).SortedTuples()) {
      TermList args;
      args.reserve(t.size());
      for (Value v : t) args.push_back(Term::Constant(v));
      theory.atomic_facts.push_back(Formula::Atom(p, std::move(args)));
    }
  }

  // (2) Uniqueness axioms ¬(ci = cj).
  for (const auto& [a, b] : lb->AllDistinctPairs()) {
    theory.uniqueness.push_back(Formula::Not(
        Formula::Equals(Term::Constant(a), Term::Constant(b))));
  }

  // (3) Domain closure axiom (∀x)(x = c1 ∨ ... ∨ x = cn).
  VarId x = vocab->AddVariable("x");
  std::vector<FormulaPtr> cases;
  cases.reserve(n);
  for (ConstId c = 0; c < n; ++c) {
    cases.push_back(
        Formula::Equals(Term::Variable(x), Term::Constant(c)));
  }
  theory.domain_closure = Formula::Forall(x, Formula::Or(std::move(cases)));

  // (4) Completion axioms, one per schema predicate.
  for (PredId p : vocab->SchemaPredicates()) {
    const int arity = vocab->PredicateArity(p);
    std::vector<VarId> xs;
    TermList args;
    for (int i = 0; i < arity; ++i) {
      VarId v = vocab->AddVariable("x" + std::to_string(i + 1));
      xs.push_back(v);
      args.push_back(Term::Variable(v));
    }
    FormulaPtr head = Formula::Atom(p, args);
    const Relation& facts = lb->facts(p);
    FormulaPtr axiom;
    if (facts.empty()) {
      // (∀x)(¬P(x)).
      axiom = Formula::Forall(xs, Formula::Not(std::move(head)));
    } else {
      std::vector<FormulaPtr> cases_p;
      for (const Tuple& t : facts.SortedTuples()) {
        std::vector<FormulaPtr> eqs;
        for (int i = 0; i < arity; ++i) {
          eqs.push_back(Formula::Equals(Term::Variable(xs[i]),
                                        Term::Constant(t[i])));
        }
        cases_p.push_back(Formula::And(std::move(eqs)));
      }
      axiom = Formula::Forall(
          xs, Formula::Implies(std::move(head),
                               Formula::Or(std::move(cases_p))));
    }
    theory.completion.push_back(std::move(axiom));
  }
  return theory;
}

std::string PrintTheory(const Vocabulary& vocab, const Theory& theory) {
  std::string out;
  auto section = [&out, &vocab](const std::string& title,
                                const std::vector<FormulaPtr>& fs) {
    out += "-- " + title + "\n";
    for (const auto& f : fs) {
      out += PrintFormula(vocab, f);
      out += "\n";
    }
  };
  section("atomic fact axioms", theory.atomic_facts);
  section("uniqueness axioms", theory.uniqueness);
  out += "-- domain closure axiom\n";
  if (theory.domain_closure != nullptr) {
    out += PrintFormula(vocab, theory.domain_closure);
    out += "\n";
  }
  section("completion axioms", theory.completion);
  return out;
}

}  // namespace lqdb
