#ifndef LQDB_CWDB_MAPPING_H_
#define LQDB_CWDB_MAPPING_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "lqdb/cwdb/cw_database.h"
#include "lqdb/relational/database.h"

namespace lqdb {

/// A mapping `h : C → C`, stored as `h[c] = image of constant c`.
using ConstMapping = std::vector<ConstId>;

/// The identity mapping on `n` constants.
ConstMapping IdentityMapping(size_t n);

/// True iff `h` *respects* the theory of `lb` (§3.1): `h(ci) != h(cj)` for
/// every uniqueness axiom `¬(ci = cj)`.
bool RespectsUniqueness(const CwDatabase& lb, const ConstMapping& h);

/// Builds `h(Ph₁(LB))` (§3.1): domain `h(C)`, constants interpreted by
/// `I(c) = h(c)`, and each relation the `h`-image of the facts.
PhysicalDatabase ApplyMapping(const CwDatabase& lb, const ConstMapping& h);

/// Visitor over mappings; return false to stop the enumeration.
using MappingVisitor = std::function<bool(const ConstMapping&)>;

/// Enumerates one canonical representative per *kernel partition* of the
/// mappings `h : C → C` that respect the uniqueness axioms. Two mappings
/// with the same kernel (the same "which constants are merged" partition)
/// produce isomorphic image databases, and first-/second-order satisfaction
/// is isomorphism-invariant, so Theorem 1 only needs one representative per
/// NE-avoiding partition. The canonical representative maps every constant
/// to the least constant of its block.
///
/// Returns the number of mappings visited (complete count when no visitor
/// stopped the walk).
uint64_t ForEachCanonicalMapping(const CwDatabase& lb,
                                 const MappingVisitor& visit);

/// Enumerates *all* `|C|^|C|` mappings, filtering to those respecting the
/// uniqueness axioms — the literal Theorem 1 quantification, exponentially
/// redundant. Kept for cross-validation (tests) and the E7 ablation bench.
/// Returns the number of respecting mappings visited.
uint64_t ForEachMapping(const CwDatabase& lb, const MappingVisitor& visit);

/// Number of NE-avoiding partitions (canonical mappings) without visiting
/// the image databases. With no uniqueness axioms this is the Bell number
/// B(|C|).
uint64_t CountCanonicalMappings(const CwDatabase& lb);

}  // namespace lqdb

#endif  // LQDB_CWDB_MAPPING_H_
