#ifndef LQDB_CWDB_MAPPING_H_
#define LQDB_CWDB_MAPPING_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "lqdb/cwdb/cw_database.h"
#include "lqdb/relational/database.h"

namespace lqdb {

/// A mapping `h : C → C`, stored as `h[c] = image of constant c`.
using ConstMapping = std::vector<ConstId>;

/// The identity mapping on `n` constants.
ConstMapping IdentityMapping(size_t n);

/// True iff `h` *respects* the theory of `lb` (§3.1): `h(ci) != h(cj)` for
/// every uniqueness axiom `¬(ci = cj)`.
bool RespectsUniqueness(const CwDatabase& lb, const ConstMapping& h);

/// Builds `h(Ph₁(LB))` (§3.1): domain `h(C)`, constants interpreted by
/// `I(c) = h(c)`, and each relation the `h`-image of the facts.
PhysicalDatabase ApplyMapping(const CwDatabase& lb, const ConstMapping& h);

/// `ApplyMapping` into a caller-owned scratch database, reusing its
/// hash-table and relation capacity across calls — the enumeration hot
/// loops build one image per mapping, and rebuilding the containers from
/// scratch dominates the per-mapping cost. `scratch` must have been
/// constructed against `lb.vocab()` (the same vocabulary object).
void ApplyMappingInto(const CwDatabase& lb, const ConstMapping& h,
                      PhysicalDatabase* scratch);

/// Visitor over mappings; return false to stop the enumeration.
using MappingVisitor = std::function<bool(const ConstMapping&)>;

/// A contiguous slice of the canonical-mapping space, identified by a
/// *restricted-growth-string prefix*: `rgs[i]` is the block index of
/// constant `i` for `i < rgs.size()`, with the usual RGS constraint
/// `rgs[i] ≤ 1 + max(rgs[0..i-1])` (and `rgs[0] = 0`). The range covers
/// every NE-avoiding partition extending that prefix. Ranges produced by
/// `SplitCanonicalMappingSpace` are pairwise disjoint and jointly cover the
/// whole space, so they can be walked by independent workers.
struct MappingRange {
  std::vector<ConstId> rgs;
};

/// Partitions the canonical-mapping space of `lb` into at least
/// `min_ranges` independent ranges when possible (the space may have fewer
/// partitions than that, in which case every range holds one partition).
/// Deepens the shared RGS prefix one constant at a time until the prefix
/// count reaches `min_ranges`, so ranges stay coarse enough to amortize
/// per-range dispatch. With `min_ranges ≤ 1` returns the single full range.
std::vector<MappingRange> SplitCanonicalMappingSpace(const CwDatabase& lb,
                                                     size_t min_ranges);

/// Enumerates the canonical representatives of one range (see
/// `ForEachCanonicalMapping` for what "canonical" means). Returns the
/// number of mappings visited in the range.
uint64_t ForEachCanonicalMappingInRange(const CwDatabase& lb,
                                        const MappingRange& range,
                                        const MappingVisitor& visit);

/// Chunked enumeration of one range for work-stealing schedulers: visits at
/// most `budget` partitions of `range` (0 = unlimited), then hands the
/// *unvisited remainder* of the range back by appending pairwise-disjoint
/// ranges to `*remainder` — the untaken sibling branches of the walk's
/// recursion stack, at most one per constant per level. A worker can thus
/// chew a bounded chunk of an arbitrarily skewed range and donate the rest
/// to a shared queue, bounding serialization at `budget` mappings without
/// ever materializing the (Bell-number-sized) full split. Returns the
/// number visited in this chunk; the remainder is left untouched when the
/// range was exhausted within budget, and also when the visitor stopped the
/// walk (an early exit abandons the whole enumeration, so there is nothing
/// to donate).
uint64_t ForEachCanonicalMappingChunk(const CwDatabase& lb,
                                      const MappingRange& range,
                                      uint64_t budget,
                                      const MappingVisitor& visit,
                                      std::vector<MappingRange>* remainder);

/// Enumerates one canonical representative per *kernel partition* of the
/// mappings `h : C → C` that respect the uniqueness axioms. Two mappings
/// with the same kernel (the same "which constants are merged" partition)
/// produce isomorphic image databases, and first-/second-order satisfaction
/// is isomorphism-invariant, so Theorem 1 only needs one representative per
/// NE-avoiding partition. The canonical representative maps every constant
/// to the least constant of its block.
///
/// Returns the number of mappings visited (complete count when no visitor
/// stopped the walk). Equivalent to walking the single range
/// `SplitCanonicalMappingSpace(lb, 1)`.
uint64_t ForEachCanonicalMapping(const CwDatabase& lb,
                                 const MappingVisitor& visit);

/// Enumerates *all* `|C|^|C|` mappings, filtering to those respecting the
/// uniqueness axioms — the literal Theorem 1 quantification, exponentially
/// redundant. Kept for cross-validation (tests) and the E7 ablation bench.
/// Returns the number of respecting mappings visited.
uint64_t ForEachMapping(const CwDatabase& lb, const MappingVisitor& visit);

/// Number of NE-avoiding partitions (canonical mappings) without visiting
/// the image databases. With no uniqueness axioms this is the Bell number
/// B(|C|).
uint64_t CountCanonicalMappings(const CwDatabase& lb);

}  // namespace lqdb

#endif  // LQDB_CWDB_MAPPING_H_
