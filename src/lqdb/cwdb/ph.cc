#include "lqdb/cwdb/ph.h"

namespace lqdb {

PhysicalDatabase MakePh1(const CwDatabase& lb) {
  PhysicalDatabase db(&lb.vocab());
  db.InterpretConstantsAsThemselves();
  for (PredId p : lb.PredicatesWithFacts()) {
    for (const Tuple& t : lb.facts(p).tuples()) {
      Status s = db.AddTuple(p, t);
      (void)s;  // facts were validated on insertion into the CwDatabase
    }
  }
  return db;
}

Result<Ph2> MakePh2(CwDatabase* lb, const Ph2Options& options) {
  LQDB_RETURN_IF_ERROR(lb->Validate());
  LQDB_ASSIGN_OR_RETURN(
      PredId ne, lb->mutable_vocab()->AddAuxiliaryPredicate(
                     kNePredicateName, 2));
  PhysicalDatabase db = MakePh1(*lb);
  if (options.materialize_ne) {
    for (const auto& [a, b] : lb->AllDistinctPairs()) {
      LQDB_RETURN_IF_ERROR(db.AddTuple(ne, {a, b}));
      LQDB_RETURN_IF_ERROR(db.AddTuple(ne, {b, a}));
    }
  }
  return Ph2{std::move(db), ne};
}

}  // namespace lqdb
