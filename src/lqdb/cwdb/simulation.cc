#include "lqdb/cwdb/simulation.h"

#include <map>
#include <string>
#include <vector>

#include "lqdb/logic/substitute.h"

namespace lqdb {

namespace {

/// ρ = ρ1 ∧ ρ2 ∧ ρ3 (the paper's p): H is total, functional, and maps
/// NE-related sources to distinct targets.
FormulaPtr BuildRho(Vocabulary* vocab, PredId h, PredId ne) {
  VarId x = vocab->FreshVariable("sx");
  VarId y = vocab->FreshVariable("sy");
  VarId z = vocab->FreshVariable("sz");
  VarId u = vocab->FreshVariable("su");
  VarId v = vocab->FreshVariable("sv");
  Term tx = Term::Variable(x), ty = Term::Variable(y),
       tz = Term::Variable(z), tu = Term::Variable(u),
       tv = Term::Variable(v);

  // ρ1: ∀x ∃y H(x, y).
  FormulaPtr rho1 =
      Formula::Forall(x, Formula::Exists(y, Formula::Atom(h, {tx, ty})));
  // ρ2: ∀x y z (H(x, y) ∧ H(x, z) → y = z).
  FormulaPtr rho2 = Formula::Forall(
      {x, y, z},
      Formula::Implies(Formula::And(Formula::Atom(h, {tx, ty}),
                                    Formula::Atom(h, {tx, tz})),
                       Formula::Equals(ty, tz)));
  // ρ3: ∀x y u v (NE(x, y) ∧ H(x, u) ∧ H(y, v) → ¬(u = v)).
  FormulaPtr rho3 = Formula::Forall(
      {x, y, u, v},
      Formula::Implies(
          Formula::And({Formula::Atom(ne, {tx, ty}),
                        Formula::Atom(h, {tx, tu}),
                        Formula::Atom(h, {ty, tv})}),
          Formula::Not(Formula::Equals(tu, tv))));
  return Formula::And({std::move(rho1), std::move(rho2), std::move(rho3)});
}

/// θᵢ: P'ᵢ is exactly the H-image of Pᵢ.
FormulaPtr BuildTheta(Vocabulary* vocab, PredId h, PredId pred,
                      PredId primed) {
  const int n = vocab->PredicateArity(pred);
  std::vector<VarId> ys, us;
  TermList y_terms, u_terms;
  for (int i = 0; i < n; ++i) {
    VarId y = vocab->FreshVariable("ty" + std::to_string(i + 1));
    VarId u = vocab->FreshVariable("tu" + std::to_string(i + 1));
    ys.push_back(y);
    us.push_back(u);
    y_terms.push_back(Term::Variable(y));
    u_terms.push_back(Term::Variable(u));
  }
  std::vector<FormulaPtr> h_links;
  for (int i = 0; i < n; ++i) {
    h_links.push_back(Formula::Atom(h, {y_terms[i], u_terms[i]}));
  }

  // Forward: ∀y ∀u (P(y) ∧ H(y1,u1) ∧ ... → P'(u)).
  std::vector<FormulaPtr> fwd_premises = h_links;
  fwd_premises.insert(fwd_premises.begin(), Formula::Atom(pred, y_terms));
  std::vector<VarId> all_vars = ys;
  all_vars.insert(all_vars.end(), us.begin(), us.end());
  FormulaPtr forward = Formula::Forall(
      all_vars, Formula::Implies(Formula::And(std::move(fwd_premises)),
                                 Formula::Atom(primed, u_terms)));

  // Backward: ∀u (P'(u) → ∃y (P(y) ∧ H(y1,u1) ∧ ...)).
  std::vector<FormulaPtr> bwd_body = h_links;
  bwd_body.insert(bwd_body.begin(), Formula::Atom(pred, y_terms));
  FormulaPtr backward = Formula::Forall(
      us, Formula::Implies(
              Formula::Atom(primed, u_terms),
              Formula::Exists(ys, Formula::And(std::move(bwd_body)))));
  return Formula::And(std::move(forward), std::move(backward));
}

/// Relativizes every first-order quantifier of `f` to the image of `h`:
/// ∀y χ becomes ∀y (∃s H(s, y) → χ) and ∃y χ becomes ∃y (∃s H(s, y) ∧ χ).
/// This is what makes evaluating φ' over Ph₂ (domain C) agree with
/// evaluating φ over h(Ph₁) (domain h(C)) — see the header for why the
/// paper's bare substitution needs this.
FormulaPtr RelativizeToImage(Vocabulary* vocab, PredId h,
                             const FormulaPtr& f) {
  switch (f->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
    case FormulaKind::kEquals:
    case FormulaKind::kAtom:
      return f;
    case FormulaKind::kNot:
      return Formula::Not(RelativizeToImage(vocab, h, f->child()));
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      std::vector<FormulaPtr> parts;
      parts.reserve(f->num_children());
      for (const auto& c : f->children()) {
        parts.push_back(RelativizeToImage(vocab, h, c));
      }
      return f->kind() == FormulaKind::kAnd ? Formula::And(std::move(parts))
                                            : Formula::Or(std::move(parts));
    }
    case FormulaKind::kImplies:
      return Formula::Implies(RelativizeToImage(vocab, h, f->child(0)),
                              RelativizeToImage(vocab, h, f->child(1)));
    case FormulaKind::kIff:
      return Formula::Iff(RelativizeToImage(vocab, h, f->child(0)),
                          RelativizeToImage(vocab, h, f->child(1)));
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      FormulaPtr body = RelativizeToImage(vocab, h, f->child());
      VarId s = vocab->FreshVariable("src");
      FormulaPtr in_image = Formula::Exists(
          s, Formula::Atom(h, {Term::Variable(s),
                               Term::Variable(f->var())}));
      if (f->kind() == FormulaKind::kExists) {
        return Formula::Exists(
            f->var(), Formula::And(std::move(in_image), std::move(body)));
      }
      return Formula::Forall(
          f->var(),
          Formula::Implies(std::move(in_image), std::move(body)));
    }
    case FormulaKind::kExistsPred:
      return Formula::ExistsPred(f->pred(),
                                 RelativizeToImage(vocab, h, f->child()));
    case FormulaKind::kForallPred:
      return Formula::ForallPred(f->pred(),
                                 RelativizeToImage(vocab, h, f->child()));
  }
  return f;
}

/// Replaces every occurrence of a mapped constant by its image variable.
FormulaPtr ReplaceConstantTerms(const FormulaPtr& f,
                                const std::map<ConstId, VarId>& map) {
  auto map_term = [&map](const Term& t) {
    if (t.is_constant()) {
      auto it = map.find(t.constant());
      if (it != map.end()) return Term::Variable(it->second);
    }
    return t;
  };
  switch (f->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return f;
    case FormulaKind::kEquals:
      return Formula::Equals(map_term(f->terms()[0]),
                             map_term(f->terms()[1]));
    case FormulaKind::kAtom: {
      TermList args;
      args.reserve(f->terms().size());
      for (const Term& t : f->terms()) args.push_back(map_term(t));
      return Formula::Atom(f->pred(), std::move(args));
    }
    default: {
      std::vector<FormulaPtr> parts;
      parts.reserve(f->num_children());
      for (const auto& c : f->children()) {
        parts.push_back(ReplaceConstantTerms(c, map));
      }
      switch (f->kind()) {
        case FormulaKind::kNot:
          return Formula::Not(std::move(parts[0]));
        case FormulaKind::kAnd:
          return Formula::And(std::move(parts));
        case FormulaKind::kOr:
          return Formula::Or(std::move(parts));
        case FormulaKind::kImplies:
          return Formula::Implies(std::move(parts[0]), std::move(parts[1]));
        case FormulaKind::kIff:
          return Formula::Iff(std::move(parts[0]), std::move(parts[1]));
        case FormulaKind::kExists:
          return Formula::Exists(f->var(), std::move(parts[0]));
        case FormulaKind::kForall:
          return Formula::Forall(f->var(), std::move(parts[0]));
        case FormulaKind::kExistsPred:
          return Formula::ExistsPred(f->pred(), std::move(parts[0]));
        case FormulaKind::kForallPred:
          return Formula::ForallPred(f->pred(), std::move(parts[0]));
        default:
          return f;
      }
    }
  }
}

}  // namespace

Result<PreciseSimulation> BuildPreciseSimulation(CwDatabase* lb, PredId ne,
                                                 const Query& query) {
  Vocabulary* vocab = lb->mutable_vocab();
  if (ne >= vocab->num_predicates() ||
      vocab->PredicateArity(ne) != 2) {
    return Status::InvalidArgument("ne must be the binary NE predicate");
  }

  // The predicates of L occurring (free) in the query body get primed
  // copies; second-order quantified predicate variables keep their own
  // quantifiers and are not remapped.
  std::map<PredId, PredId> primed;
  for (PredId p : FreePredicates(query.body())) {
    if (p == ne) {
      return Status::InvalidArgument(
          "queries must be over L; 'NE' belongs to L'");
    }
    if (vocab->IsAuxiliary(p)) {
      return Status::InvalidArgument(
          "query mentions auxiliary predicate '" + vocab->PredicateName(p) +
          "' outside a second-order binder");
    }
    LQDB_ASSIGN_OR_RETURN(
        PredId pp, vocab->AddAuxiliaryPredicate(
                       "__primed_" + vocab->PredicateName(p),
                       vocab->PredicateArity(p)));
    primed.emplace(p, pp);
  }
  LQDB_ASSIGN_OR_RETURN(PredId h, vocab->AddAuxiliaryPredicate("__H", 2));

  FormulaPtr rho = BuildRho(vocab, h, ne);
  std::vector<FormulaPtr> thetas;
  for (const auto& [p, pp] : primed) {
    thetas.push_back(BuildTheta(vocab, h, p, pp));
  }
  FormulaPtr theta = Formula::And(std::move(thetas));

  // ψ = ∃x1..xk ∃w_c... (H(z1,x1) ∧ ... ∧ H(c, w_c) ∧ ... ∧ φ''); the
  // query's own head variables serve as the z's. Everything φ talks about
  // — free variables *and constants* — is routed through H, and its
  // quantifiers are relativized to H's image, so that φ'' over Ph₂
  // evaluates exactly like φ over h(Ph₁) (see the header).
  FormulaPtr phi_primed = ReplacePredicates(query.body(), primed);
  std::vector<VarId> xs;
  std::vector<FormulaPtr> links;
  Substitution head_to_image;
  for (size_t i = 0; i < query.arity(); ++i) {
    VarId x = vocab->FreshVariable("img" + std::to_string(i + 1));
    xs.push_back(x);
    links.push_back(Formula::Atom(
        h, {Term::Variable(query.head()[i]), Term::Variable(x)}));
    head_to_image.insert_or_assign(query.head()[i], Term::Variable(x));
  }
  std::map<ConstId, VarId> const_to_image;
  for (ConstId c : ConstantsOf(phi_primed)) {
    VarId w = vocab->FreshVariable("imgc");
    const_to_image.emplace(c, w);
    xs.push_back(w);
    links.push_back(
        Formula::Atom(h, {Term::Constant(c), Term::Variable(w)}));
  }
  FormulaPtr phi_at_image = Substitute(
      vocab, ReplaceConstantTerms(phi_primed, const_to_image),
      head_to_image);
  phi_at_image = RelativizeToImage(vocab, h, phi_at_image);
  links.push_back(std::move(phi_at_image));
  FormulaPtr psi = Formula::Exists(xs, Formula::And(std::move(links)));

  FormulaPtr matrix = Formula::Implies(
      Formula::And(std::move(rho), std::move(theta)), std::move(psi));
  std::vector<PredId> quantified;
  quantified.push_back(h);
  for (const auto& [p, pp] : primed) {
    (void)p;
    quantified.push_back(pp);
  }
  FormulaPtr body = Formula::ForallPred(quantified, std::move(matrix));

  LQDB_ASSIGN_OR_RETURN(Query q_prime,
                        Query::Make(query.head(), std::move(body)));
  return PreciseSimulation{std::move(q_prime)};
}

}  // namespace lqdb
