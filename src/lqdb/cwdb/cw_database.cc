#include "lqdb/cwdb/cw_database.h"

#include <cassert>
#include <string>

namespace lqdb {

ConstId CwDatabase::InternConstant(std::string_view name, bool known) {
  ConstId c = vocab_.AddConstant(name);
  if (c >= known_.size()) known_.resize(c + 1, false);
  if (known) known_[c] = true;
  return c;
}

ConstId CwDatabase::AddKnownConstant(std::string_view name) {
  return InternConstant(name, /*known=*/true);
}

ConstId CwDatabase::AddUnknownConstant(std::string_view name) {
  return InternConstant(name, /*known=*/false);
}

std::vector<ConstId> CwDatabase::UnknownConstants() const {
  std::vector<ConstId> out;
  for (ConstId c = 0; c < vocab_.num_constants(); ++c) {
    if (!IsKnown(c)) out.push_back(c);
  }
  return out;
}

Result<PredId> CwDatabase::AddPredicate(std::string_view name, int arity) {
  return vocab_.AddPredicate(name, arity);
}

Status CwDatabase::AddFact(PredId pred, Tuple constants) {
  if (pred >= vocab_.num_predicates()) {
    return Status::NotFound("unknown predicate id");
  }
  int arity = vocab_.PredicateArity(pred);
  if (static_cast<int>(constants.size()) != arity) {
    return Status::InvalidArgument("fact arity mismatch for '" +
                                   vocab_.PredicateName(pred) + "'");
  }
  for (Value v : constants) {
    if (v >= vocab_.num_constants()) {
      return Status::InvalidArgument("fact references unknown constant id");
    }
  }
  auto it = facts_.find(pred);
  if (it == facts_.end()) it = facts_.emplace(pred, Relation(arity)).first;
  it->second.Insert(std::move(constants));
  return Status::OK();
}

Status CwDatabase::AddFact(std::string_view pred,
                           std::vector<std::string_view> names) {
  LQDB_ASSIGN_OR_RETURN(
      PredId p, vocab_.AddPredicate(pred, static_cast<int>(names.size())));
  Tuple t;
  t.reserve(names.size());
  for (std::string_view n : names) {
    // New names intern as known constants; existing constants keep their
    // declared status (facts about an unknown value must not silently
    // manufacture uniqueness axioms for it).
    ConstId c = vocab_.FindConstant(n);
    t.push_back(c != Vocabulary::kNotFound ? c : AddKnownConstant(n));
  }
  return AddFact(p, std::move(t));
}

Status CwDatabase::RemoveFact(PredId pred, const Tuple& constants) {
  if (pred >= vocab_.num_predicates()) {
    return Status::NotFound("unknown predicate id");
  }
  auto it = facts_.find(pred);
  if (it == facts_.end() || !it->second.Erase(constants)) {
    return Status::NotFound("fact is not stored");
  }
  return Status::OK();
}

Status CwDatabase::AddDistinct(ConstId a, ConstId b) {
  if (a >= vocab_.num_constants() || b >= vocab_.num_constants()) {
    return Status::NotFound("unknown constant id in uniqueness axiom");
  }
  if (a == b) {
    return Status::InvalidArgument(
        "uniqueness axiom not(" + vocab_.ConstantName(a) + " = " +
        vocab_.ConstantName(a) + ") would make the theory inconsistent");
  }
  explicit_distinct_.insert({std::min(a, b), std::max(a, b)});
  return Status::OK();
}

Status CwDatabase::AddDistinct(std::string_view a, std::string_view b) {
  ConstId ca = vocab_.FindConstant(a);
  ConstId cb = vocab_.FindConstant(b);
  if (ca == Vocabulary::kNotFound || cb == Vocabulary::kNotFound) {
    return Status::NotFound("uniqueness axiom references unknown constant");
  }
  return AddDistinct(ca, cb);
}

bool CwDatabase::AreDistinct(ConstId a, ConstId b) const {
  if (a == b) return false;
  if (IsKnown(a) && IsKnown(b)) return true;
  return explicit_distinct_.count({std::min(a, b), std::max(a, b)}) > 0;
}

std::vector<std::pair<ConstId, ConstId>> CwDatabase::AllDistinctPairs() const {
  std::vector<std::pair<ConstId, ConstId>> out;
  const ConstId n = static_cast<ConstId>(vocab_.num_constants());
  for (ConstId a = 0; a < n; ++a) {
    for (ConstId b = a + 1; b < n; ++b) {
      if (AreDistinct(a, b)) out.push_back({a, b});
    }
  }
  return out;
}

size_t CwDatabase::CountDistinctPairs() const {
  size_t known_count = 0;
  for (ConstId c = 0; c < vocab_.num_constants(); ++c) {
    if (IsKnown(c)) ++known_count;
  }
  size_t count = known_count * (known_count - 1) / 2;
  // Explicit pairs between two known constants are already counted.
  for (const auto& [a, b] : explicit_distinct_) {
    if (!(IsKnown(a) && IsKnown(b))) ++count;
  }
  return count;
}

bool CwDatabase::IsFullySpecified() const {
  const ConstId n = static_cast<ConstId>(vocab_.num_constants());
  for (ConstId u : UnknownConstants()) {
    for (ConstId c = 0; c < n; ++c) {
      if (c != u && !AreDistinct(u, c)) return false;
    }
  }
  return true;
}

const Relation& CwDatabase::facts(PredId pred) const {
  auto it = facts_.find(pred);
  if (it != facts_.end()) return it->second;
  static thread_local std::map<int, Relation> empty_by_arity;
  int arity = vocab_.PredicateArity(pred);
  auto eit = empty_by_arity.find(arity);
  if (eit == empty_by_arity.end()) {
    eit = empty_by_arity.emplace(arity, Relation(arity)).first;
  }
  return eit->second;
}

std::vector<PredId> CwDatabase::PredicatesWithFacts() const {
  std::vector<PredId> out;
  for (const auto& [pred, rel] : facts_) {
    if (!rel.empty()) out.push_back(pred);
  }
  return out;
}

size_t CwDatabase::NumFacts() const {
  size_t n = 0;
  for (const auto& [pred, rel] : facts_) {
    (void)pred;
    n += rel.size();
  }
  return n;
}

Status CwDatabase::Validate() const {
  if (vocab_.num_constants() == 0) {
    return Status::FailedPrecondition(
        "a CW logical database needs at least one constant (models must "
        "have a nonempty domain)");
  }
  return Status::OK();
}

}  // namespace lqdb
