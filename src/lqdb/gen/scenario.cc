#include "lqdb/gen/scenario.h"

#include <string>
#include <utility>
#include <vector>

#include "lqdb/util/rng.h"

namespace lqdb {

std::unique_ptr<CwDatabase> MakeScenario(uint64_t seed,
                                         const ScenarioParams& params) {
  Rng rng(seed);
  auto lb = std::make_unique<CwDatabase>();
  std::vector<ConstId> known;
  std::vector<ConstId> unknown;
  for (int i = 0; i < params.num_known; ++i) {
    known.push_back(lb->AddKnownConstant("k" + std::to_string(i)));
  }
  for (int i = 0; i < params.num_unknown; ++i) {
    unknown.push_back(lb->AddUnknownConstant("u" + std::to_string(i)));
  }
  auto pick = [&]() -> ConstId {
    if (!unknown.empty() && rng.Chance(params.unknown_ref_rate)) {
      return unknown[rng.Below(unknown.size())];
    }
    return known[rng.Below(known.size())];
  };
  std::vector<std::pair<PredId, int>> preds;  // (id, arity)
  for (int i = 0; i < params.num_unary; ++i) {
    preds.emplace_back(lb->AddPredicate("P" + std::to_string(i), 1).value(),
                       1);
  }
  for (int i = 0; i < params.num_binary; ++i) {
    preds.emplace_back(lb->AddPredicate("R" + std::to_string(i), 2).value(),
                       2);
  }
  for (const auto& [pred, arity] : preds) {
    for (int f = 0; f < params.facts_per_relation; ++f) {
      Tuple t;
      for (int j = 0; j < arity; ++j) t.push_back(pick());
      (void)lb->AddFact(pred, std::move(t));  // duplicates collapse
    }
  }
  // Explicit uniqueness axioms on pairs touching unknowns, mirroring the
  // differential generator so the mapping space is a quotient, not full
  // Bell mass.
  const ConstId n = static_cast<ConstId>(lb->num_constants());
  for (ConstId a = 0; a < n; ++a) {
    for (ConstId b = a + 1; b < n; ++b) {
      if (lb->IsKnown(a) && lb->IsKnown(b)) continue;
      if (rng.Chance(params.distinct_pair_rate)) {
        (void)lb->AddDistinct(a, b);
      }
    }
  }
  return lb;
}

std::vector<std::string> ScenarioQueryPool(const ScenarioParams& params) {
  std::vector<std::string> pool;
  if (params.num_unary >= 1) {
    pool.push_back("(x) . P0(x)");
  }
  if (params.num_binary >= 1) {
    pool.push_back("(x) . exists y. R0(x, y)");
  }
  if (params.num_unary >= 1 && params.num_binary >= 1) {
    // Guarded universal: the per-image check is a join + anti-join.
    pool.push_back("(x) . forall y. R0(x, y) -> P0(y)");
    // Two-hop chain ending in a unary filter.
    pool.push_back("(x) . exists y. exists z. R0(x, y) & R0(y, z) & P0(z)");
  }
  if (params.num_binary >= 2) {
    // Three-join chain with a binary head — the row the join-order DP and
    // the semijoin reduction both get to attack.
    pool.push_back(
        "(x, w) . exists y. exists z. R0(x, y) & R1(y, z) & R0(z, w)");
  }
  if (params.num_unary >= 2 && params.num_binary >= 2) {
    // Wide conjunction: five positive conjuncts over four relations.
    pool.push_back(
        "(x) . exists y. exists z. "
        "P0(x) & R0(x, y) & R1(y, z) & P1(z) & R0(z, x)");
  }
  return pool;
}

}  // namespace lqdb
