#ifndef LQDB_GEN_SCENARIO_H_
#define LQDB_GEN_SCENARIO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lqdb/cwdb/cw_database.h"

namespace lqdb {

/// Parameters for generated large-world scenarios.
///
/// The differential corpus in tests/differential works at toy scale (≤ 8
/// constants, ≤ 8 facts) because its oracle enumerates models. This
/// generator targets the opposite regime: worlds one to two orders of
/// magnitude bigger in *relational* volume (constants and facts) while
/// keeping the number of unknown constants — and hence the canonical-
/// mapping count, which is exponential in it (Theorem 5) — small. That is
/// exactly the shape where the per-image inner loop dominates end-to-end
/// time and the compiled RA path has room to win.
struct ScenarioParams {
  /// Known constants `k0..`; the image domain scales with this.
  int num_known = 64;
  /// Unknown constants `u0..`; keep small — mappings grow as Bell-like
  /// numbers in this.
  int num_unknown = 2;
  /// Unary predicates `P0..` and binary predicates `R0..`.
  int num_unary = 2;
  int num_binary = 2;
  /// Facts generated per relation (duplicates collapse, so actual table
  /// sizes come out slightly below this).
  int facts_per_relation = 256;
  /// Probability that a fact argument references an unknown constant
  /// rather than a known one — the knob for how much of the relational
  /// volume is incomplete information.
  double unknown_ref_rate = 0.1;
  /// Probability of an explicit pairwise-distinct axiom on each pair
  /// touching an unknown (prunes the mapping space).
  double distinct_pair_rate = 0.05;
};

/// Builds a scenario database. Deterministic in `(seed, params)`; the
/// constant and predicate names are fixed (`k<i>`, `u<i>`, `P<i>`, `R<i>`)
/// so query text written against one seed parses against every seed.
std::unique_ptr<CwDatabase> MakeScenario(uint64_t seed,
                                         const ScenarioParams& params);

/// Join-heavy query texts over the scenario schema, from a bare unary scan
/// up to multi-join chains — the E10 workload. Only emits queries whose
/// predicates exist under `params`.
std::vector<std::string> ScenarioQueryPool(const ScenarioParams& params);

}  // namespace lqdb

#endif  // LQDB_GEN_SCENARIO_H_
