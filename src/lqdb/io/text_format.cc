#include "lqdb/io/text_format.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <vector>

#include "lqdb/util/parse.h"

namespace lqdb {

namespace {

/// Splits a line into whitespace-separated words, dropping `#` comments.
std::vector<std::string> Words(std::string_view line) {
  std::vector<std::string> out;
  std::string current;
  for (char c : line) {
    if (c == '#') break;
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!current.empty()) out.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) out.push_back(std::move(current));
  return out;
}

Status Err(int line_no, const std::string& what) {
  return Status::InvalidArgument("line " + std::to_string(line_no) + ": " +
                                 what);
}

bool IsIdentifier(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
      return false;
    }
  }
  return true;
}

/// Parses `NAME(arg, arg, ...)` (spaces already stripped by joining).
Status ParseFactTerm(const std::string& term, std::string* pred,
                     std::vector<std::string>* args, int line_no) {
  size_t open = term.find('(');
  if (open == std::string::npos || term.back() != ')') {
    return Err(line_no, "expected fact of the form PRED(c1, c2, ...)");
  }
  *pred = term.substr(0, open);
  if (!IsIdentifier(*pred)) return Err(line_no, "bad predicate name");
  std::string inner = term.substr(open + 1, term.size() - open - 2);
  std::string current;
  for (char c : inner) {
    if (c == ',') {
      if (current.empty()) return Err(line_no, "empty fact argument");
      args->push_back(std::move(current));
      current.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      current += c;
    }
  }
  if (!current.empty()) args->push_back(std::move(current));
  for (const std::string& a : *args) {
    if (!IsIdentifier(a)) return Err(line_no, "bad constant name '" + a + "'");
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<CwDatabase>> ParseCwDatabase(std::string_view text) {
  auto lb = std::make_unique<CwDatabase>();
  std::istringstream stream{std::string(text)};
  std::string line;
  int line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    std::vector<std::string> words = Words(line);
    if (words.empty()) continue;
    const std::string& keyword = words[0];

    if (keyword == "known" || keyword == "unknown") {
      if (words.size() < 2) {
        return Err(line_no, "'" + keyword + "' needs constant names");
      }
      for (size_t i = 1; i < words.size(); ++i) {
        if (!IsIdentifier(words[i])) {
          return Err(line_no, "bad constant name '" + words[i] + "'");
        }
        if (keyword == "known") {
          lb->AddKnownConstant(words[i]);
        } else {
          if (lb->vocab().FindConstant(words[i]) != Vocabulary::kNotFound &&
              lb->IsKnown(lb->vocab().FindConstant(words[i]))) {
            return Err(line_no, "constant '" + words[i] +
                                    "' was already declared known");
          }
          lb->AddUnknownConstant(words[i]);
        }
      }
      continue;
    }

    if (keyword == "predicate") {
      if (words.size() != 2) {
        return Err(line_no, "'predicate' needs exactly NAME/ARITY");
      }
      size_t slash = words[1].find('/');
      if (slash == std::string::npos) {
        return Err(line_no, "'predicate' needs NAME/ARITY");
      }
      std::string name = words[1].substr(0, slash);
      // Strict parse: std::stoi's prefix parsing read "P/2x" as arity 2
      // and threw (rather than erred) on out-of-range arities.
      int arity = 0;
      if (!ParseStrictInt(std::string_view(words[1]).substr(slash + 1),
                          &arity)) {
        return Err(line_no, "bad arity in '" + words[1] + "'");
      }
      if (!IsIdentifier(name)) return Err(line_no, "bad predicate name");
      auto p = lb->AddPredicate(name, arity);
      if (!p.ok()) return Err(line_no, p.status().message());
      continue;
    }

    if (keyword == "fact") {
      if (words.size() < 2) return Err(line_no, "'fact' needs an atom");
      // Re-join so `fact P(a, b)` survives the whitespace split.
      std::string joined;
      for (size_t i = 1; i < words.size(); ++i) joined += words[i];
      std::string pred;
      std::vector<std::string> args;
      LQDB_RETURN_IF_ERROR(ParseFactTerm(joined, &pred, &args, line_no));
      std::vector<std::string_view> views(args.begin(), args.end());
      Status s = lb->AddFact(pred, views);
      if (!s.ok()) return Err(line_no, s.message());
      continue;
    }

    if (keyword == "distinct") {
      if (words.size() != 3) {
        return Err(line_no, "'distinct' needs exactly two constants");
      }
      // Constants may appear here before any fact mentions them; intern
      // missing ones as unknown (a known constant would not need an
      // explicit axiom).
      for (int i = 1; i <= 2; ++i) {
        if (lb->vocab().FindConstant(words[i]) == Vocabulary::kNotFound) {
          lb->AddUnknownConstant(words[i]);
        }
      }
      Status s = lb->AddDistinct(words[1], words[2]);
      if (!s.ok()) return Err(line_no, s.message());
      continue;
    }

    return Err(line_no, "unknown directive '" + keyword + "'");
  }
  return lb;
}

Result<std::unique_ptr<CwDatabase>> LoadCwDatabase(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseCwDatabase(buffer.str());
}

std::string SerializeCwDatabase(const CwDatabase& lb) {
  const Vocabulary& vocab = lb.vocab();
  std::string out = "# CW logical database (lqdb text format)\n";

  std::string known_line, unknown_line;
  for (ConstId c = 0; c < vocab.num_constants(); ++c) {
    std::string& line = lb.IsKnown(c) ? known_line : unknown_line;
    line += " ";
    line += vocab.ConstantName(c);
  }
  if (!unknown_line.empty()) out += "unknown" + unknown_line + "\n";
  if (!known_line.empty()) out += "known" + known_line + "\n";

  for (PredId p : vocab.SchemaPredicates()) {
    out += "predicate " + vocab.PredicateName(p) + "/" +
           std::to_string(vocab.PredicateArity(p)) + "\n";
  }
  // Order facts and axioms by *names*, not ids, so that serialization is
  // canonical: re-parsing permutes constant ids (declarations come first),
  // but Serialize(Parse(Serialize(lb))) == Serialize(lb).
  std::vector<std::string> fact_lines;
  for (PredId p : lb.PredicatesWithFacts()) {
    for (const Tuple& t : lb.facts(p).tuples()) {
      std::string line = "fact " + vocab.PredicateName(p) + "(";
      for (size_t i = 0; i < t.size(); ++i) {
        if (i > 0) line += ", ";
        line += vocab.ConstantName(t[i]);
      }
      line += ")\n";
      fact_lines.push_back(std::move(line));
    }
  }
  std::sort(fact_lines.begin(), fact_lines.end());
  for (const std::string& line : fact_lines) out += line;

  std::vector<std::string> axiom_lines;
  for (const auto& [a, b] : lb.explicit_distinct()) {
    std::string na = vocab.ConstantName(a);
    std::string nb = vocab.ConstantName(b);
    if (nb < na) std::swap(na, nb);
    axiom_lines.push_back("distinct " + na + " " + nb + "\n");
  }
  std::sort(axiom_lines.begin(), axiom_lines.end());
  for (const std::string& line : axiom_lines) out += line;
  return out;
}

Status SaveCwDatabase(const CwDatabase& lb, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot write '" + path + "'");
  out << SerializeCwDatabase(lb);
  return out.good() ? Status::OK()
                    : Status::Internal("write to '" + path + "' failed");
}

}  // namespace lqdb
