#ifndef LQDB_IO_TEXT_FORMAT_H_
#define LQDB_IO_TEXT_FORMAT_H_

#include <memory>
#include <string>
#include <string_view>

#include "lqdb/cwdb/cw_database.h"
#include "lqdb/util/result.h"

namespace lqdb {

/// A line-oriented declarative text format for CW logical databases —
/// exactly the state §2.2 says needs storing (facts + uniqueness axioms,
/// with the known/unknown split of the §5 virtual-NE representation):
///
///     # comment
///     known Socrates Plato          # constants with fully known identity
///     unknown JackTheRipper         # null values
///     predicate TEACHES/2           # optional; facts declare implicitly
///     fact TEACHES(Socrates, Plato)
///     distinct JackTheRipper Victoria   # explicit axiom ¬(c1 = c2)
///
/// Constants first mentioned inside a `fact` line are interned as *known*;
/// declare nulls with `unknown` before (or after — status upgrades never
/// happen implicitly) using them in facts.
Result<std::unique_ptr<CwDatabase>> ParseCwDatabase(std::string_view text);

/// Loads a database from a file on disk.
Result<std::unique_ptr<CwDatabase>> LoadCwDatabase(const std::string& path);

/// Serializes `lb` in the same format; `ParseCwDatabase(Serialize(lb))`
/// round-trips (same constants/status, facts and explicit axioms).
std::string SerializeCwDatabase(const CwDatabase& lb);

/// Writes `lb` to a file on disk.
Status SaveCwDatabase(const CwDatabase& lb, const std::string& path);

}  // namespace lqdb

#endif  // LQDB_IO_TEXT_FORMAT_H_
