#ifndef LQDB_EVAL_KERNEL_MEMO_H_
#define LQDB_EVAL_KERNEL_MEMO_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "lqdb/cwdb/cw_database.h"
#include "lqdb/cwdb/mapping.h"
#include "lqdb/relational/tuple.h"
#include "lqdb/util/annotations.h"

namespace lqdb {

/// Kernel-class verdict memoization for the Theorem 1 sweeps.
///
/// Each mapping `h : C → C` determines an image database up to the
/// *partition* of `C` into merge classes (the kernel of `h`); but for a
/// fixed query the verdict of a candidate under `h` depends on even less.
/// Two mappings yield isomorphic images — with the query constants
/// interpreted compatibly — whenever their kernel blocks can be matched so
/// that corresponding blocks (1) contain exactly the same *query-relevant*
/// constants and (2) contain the same number of constants from each
/// *interchangeability class* of the remaining constants, where `a ~ b`
/// iff the transposition `(a b)` maps the fact set onto itself. Isomorphic
/// images give identical verdicts to correspondingly relabeled candidates,
/// so signature-equivalent mappings are evaluated once and their verdicts
/// reused — including across the non-canonical mappings of the brute
/// engine, whose enumeration is exponentially redundant in exactly this
/// sense.
///
/// Note the naive signature — "restriction of the kernel to query constants
/// plus block sizes" — is UNSOUND: with facts `P(c), Q(d)` and a spare
/// constant `e`, the partitions `{c,d},{e}` and `{c,e},{d}` agree on block
/// sizes and on the (empty) query-constant restriction, yet merge different
/// facts. Interchangeability classes are what make block shapes
/// transferable: a block may be summarized by *how many* constants it takes
/// from a class only when any member of the class could stand in for any
/// other. Constants that appear in no fact always form one big class (any
/// permutation of them fixes the facts), which is where the compression
/// comes from on sparse databases.
///
/// The known/unknown split and the explicit distinct pairs are deliberately
/// *not* part of the signature: uniqueness axioms only gate which mappings
/// are enumerated, never the structure of an image, and every memoized
/// verdict is keyed under mappings the enumeration actually visited.

/// Counters of one memoized sweep (monotone per `KernelMemo`).
struct KernelMemoCounters {
  /// Candidate verdicts served from the table / computed fresh.
  uint64_t row_hits = 0;
  uint64_t row_misses = 0;
  /// Mappings whose swept candidates all hit, so the image database was
  /// never even built.
  uint64_t images_skipped = 0;
  /// Distinct signatures interned.
  uint64_t signatures = 0;

  KernelMemoCounters& operator+=(const KernelMemoCounters& o) {
    row_hits += o.row_hits;
    row_misses += o.row_misses;
    images_skipped += o.images_skipped;
    signatures += o.signatures;
    return *this;
  }
};

/// Reusable per-thread buffers for `KernelSignatureContext::SignatureOf`.
struct KernelSignatureScratch {
  /// The encoded signature of the most recent mapping.
  std::string sig;
  /// image value → rank of its block in the signature's canonical block
  /// order; relabeling candidate rows through this makes rows comparable
  /// across signature-equivalent mappings.
  std::vector<Value> relabel;

  // Internal scratch.
  std::vector<int32_t> block_of_value;
  std::vector<Value> value_of_block;
  std::vector<std::vector<int32_t>> blocks;
  std::vector<uint32_t> order;
};

/// Immutable per-(database, query) signature machinery: assigns every
/// constant a code — a unique negative code for each *pinned* constant (the
/// ones the query body mentions, whose identity the verdict may depend on)
/// and a shared class id for every interchangeability class of the rest —
/// and turns a mapping into the canonical multiset-of-blocks encoding
/// described above. Safe to share across threads once constructed.
class KernelSignatureContext {
 public:
  /// Transposition checks are budgeted by fact-tuple visits; on exhaustion
  /// the remaining unclassified constants become singleton classes, which
  /// is sound (signatures just discriminate more, so the memo hits less).
  static constexpr uint64_t kDefaultWorkBudget = 4'000'000;

  KernelSignatureContext(const CwDatabase& lb,
                         const std::vector<ConstId>& pinned,
                         uint64_t work_budget = kDefaultWorkBudget);

  /// Number of interchangeability classes among the unpinned constants.
  size_t num_classes() const { return num_classes_; }

  /// Fills `s->sig` (the signature) and `s->relabel` (image value → block
  /// rank) for `h`, which must map the full constant space `[0, n)`.
  void SignatureOf(const ConstMapping& h, KernelSignatureScratch* s) const;

  /// The code of one constant (negative: pinned; else its class id).
  int32_t code_of(ConstId c) const { return code_of_[c]; }

 private:
  std::vector<int32_t> code_of_;
  size_t num_classes_ = 0;
};

/// A concurrent (signature, relabeled candidate row) → verdict table,
/// shared by every worker of one engine call. Reads are lock-free (the
/// parallel engine's workers look up rows for every mapping); writes
/// serialize on a mutex and publish append-only nodes with release stores,
/// so the table never moves or frees a node while readers walk it. The
/// table saturates at `max_entries` (stops inserting, never evicts): a
/// degenerate workload cannot balloon memory, only lose hits.
class KernelMemo {
 public:
  static constexpr size_t kDefaultMaxEntries = size_t{1} << 22;

  explicit KernelMemo(bool enabled,
                      size_t max_entries = kDefaultMaxEntries);

  bool enabled() const { return enabled_; }

  /// Interns a signature, returning its dense id.
  uint32_t InternSignature(const std::string& sig);

  /// Verdict of a relabeled row under a signature: 1 (true), 0 (false) or
  /// -1 (unknown). Lock-free.
  int LookupRow(uint32_t sig_id, const Value* row, size_t arity) const;

  /// Records a verdict (first writer wins; duplicates are dropped).
  void InsertRow(uint32_t sig_id, const Value* row, size_t arity,
                 bool verdict);

  void CountLookups(uint64_t hits, uint64_t misses) {
    hits_.fetch_add(hits, std::memory_order_relaxed);
    misses_.fetch_add(misses, std::memory_order_relaxed);
  }
  void CountImageSkipped() {
    images_skipped_.fetch_add(1, std::memory_order_relaxed);
  }

  KernelMemoCounters counters() const;

 private:
  struct Node {
    Node* next;
    uint64_t hash;
    uint32_t sig_id;
    uint32_t arity;
    bool verdict;
    std::vector<Value> row;
  };

  static uint64_t HashRow(uint32_t sig_id, const Value* row, size_t arity);

  static constexpr size_t kBuckets = size_t{1} << 14;  // power of two

  bool enabled_;
  size_t max_entries_;
  /// Deliberately unguarded: bucket heads are read lock-free with acquire
  /// loads; only the publishing store (under `write_mu_`) writes them.
  std::vector<std::atomic<Node*>> buckets_;

  mutable Mutex write_mu_;
  /// Stable addresses; grows under `write_mu_` only, but published nodes
  /// are read lock-free through `buckets_`.
  std::deque<Node> nodes_ GUARDED_BY(write_mu_);
  std::atomic<size_t> size_{0};

  mutable Mutex sig_mu_;
  std::unordered_map<std::string, uint32_t> sig_ids_ GUARDED_BY(sig_mu_);

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> images_skipped_{0};
};

}  // namespace lqdb

#endif  // LQDB_EVAL_KERNEL_MEMO_H_
