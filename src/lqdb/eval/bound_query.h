#ifndef LQDB_EVAL_BOUND_QUERY_H_
#define LQDB_EVAL_BOUND_QUERY_H_

#include <vector>

#include "lqdb/logic/query.h"
#include "lqdb/ra/plan.h"
#include "lqdb/util/result.h"

namespace lqdb {

struct RaCardinalities;  // ra/compiler.h

/// A query pre-resolved for repeated evaluation. `Evaluator::SatisfiesWith`
/// redoes three pieces of work on every call that depend only on the query,
/// not on the database state: computing the body's free variables, walking
/// the body for the constants whose interpretation must be checked, and
/// walking it again for second-order quantifiers. The Theorem 1 engines
/// call the evaluator once per candidate per canonical mapping, so that
/// per-call overhead dominates their inner loop. Binding the query once
/// hoists all of it, and `Evaluator::SatisfiesBatch` then sweeps a whole
/// candidate set against one image database with the residual per-candidate
/// cost reduced to writing head values into the evaluator's flat
/// environment and walking the formula.
///
/// Borrows the query; the query must outlive the binding.
class BoundQuery {
 public:
  /// Pre-resolves `query`. Fails on a null body or a free variable of the
  /// body missing from the head — impossible for a `Query::Make`-validated
  /// query, but checked here because the batched path skips the per-call
  /// free-variable check.
  static Result<BoundQuery> Bind(const Query& query);

  const Query& query() const { return *query_; }
  const std::vector<VarId>& head() const { return query_->head(); }
  size_t arity() const { return query_->arity(); }

  /// Constants mentioned anywhere in the body (cached `ConstantsOf`).
  const std::vector<ConstId>& constants() const { return constants_; }

  /// Predicates bound by a second-order quantifier somewhere in the body;
  /// empty for first-order queries, letting the evaluator skip the
  /// feasibility walk entirely.
  const std::vector<PredId>& so_predicates() const { return so_predicates_; }

  /// Predicates occurring as atoms anywhere in the body, sorted — the
  /// query's read set. An update to any other relation cannot change this
  /// query's answer (second-order quantified relation variables range over
  /// all extensions regardless of the stored facts), which is what lets the
  /// service's result cache invalidate by intersection with the updated
  /// relations.
  const std::vector<PredId>& predicates() const { return predicates_; }

  /// Compiles the query to a relational-algebra plan over `vocab` (see
  /// `RaCompiler`), caching the outcome in the binding: later calls return
  /// the first status without recompiling. On failure — `Unimplemented`
  /// for second-order bodies — `ra_plan()` stays null, and callers fall
  /// back to the batched evaluator path. `stats` (optional) drives the
  /// compiler's join ordering.
  Status CompileRaPlan(const Vocabulary& vocab,
                       const RaCardinalities* stats = nullptr);

  /// Seeds the plan slot from an external cache; the plan must have been
  /// compiled from this binding's query (same query identity).
  void set_ra_plan(PlanPtr plan);

  /// Marks the query as known non-compilable without paying for a compile
  /// (the cached-failure twin of `set_ra_plan`).
  void set_ra_uncompilable(Status why);

  /// The compiled plan; null when compilation has not run or failed.
  const PlanPtr& ra_plan() const { return ra_plan_; }

  /// Whether a compilation outcome (success or cached failure) is recorded;
  /// a prepared statement with `ra_attempted()` carries everything the
  /// ra-exact engine needs, so it can skip its own plan-cache lookup.
  bool ra_attempted() const { return ra_attempted_; }

 private:
  explicit BoundQuery(const Query* query) : query_(query) {}

  const Query* query_;
  std::vector<ConstId> constants_;
  std::vector<PredId> so_predicates_;
  std::vector<PredId> predicates_;
  PlanPtr ra_plan_;
  bool ra_attempted_ = false;
  Status ra_status_;
};

}  // namespace lqdb

#endif  // LQDB_EVAL_BOUND_QUERY_H_
