#ifndef LQDB_EVAL_BOUND_QUERY_H_
#define LQDB_EVAL_BOUND_QUERY_H_

#include <vector>

#include "lqdb/logic/query.h"
#include "lqdb/util/result.h"

namespace lqdb {

/// A query pre-resolved for repeated evaluation. `Evaluator::SatisfiesWith`
/// redoes three pieces of work on every call that depend only on the query,
/// not on the database state: computing the body's free variables, walking
/// the body for the constants whose interpretation must be checked, and
/// walking it again for second-order quantifiers. The Theorem 1 engines
/// call the evaluator once per candidate per canonical mapping, so that
/// per-call overhead dominates their inner loop. Binding the query once
/// hoists all of it, and `Evaluator::SatisfiesBatch` then sweeps a whole
/// candidate set against one image database with the residual per-candidate
/// cost reduced to writing head values into the evaluator's flat
/// environment and walking the formula.
///
/// Borrows the query; the query must outlive the binding.
class BoundQuery {
 public:
  /// Pre-resolves `query`. Fails on a null body or a free variable of the
  /// body missing from the head — impossible for a `Query::Make`-validated
  /// query, but checked here because the batched path skips the per-call
  /// free-variable check.
  static Result<BoundQuery> Bind(const Query& query);

  const Query& query() const { return *query_; }
  const std::vector<VarId>& head() const { return query_->head(); }
  size_t arity() const { return query_->arity(); }

  /// Constants mentioned anywhere in the body (cached `ConstantsOf`).
  const std::vector<ConstId>& constants() const { return constants_; }

  /// Predicates bound by a second-order quantifier somewhere in the body;
  /// empty for first-order queries, letting the evaluator skip the
  /// feasibility walk entirely.
  const std::vector<PredId>& so_predicates() const { return so_predicates_; }

 private:
  explicit BoundQuery(const Query* query) : query_(query) {}

  const Query* query_;
  std::vector<ConstId> constants_;
  std::vector<PredId> so_predicates_;
};

}  // namespace lqdb

#endif  // LQDB_EVAL_BOUND_QUERY_H_
