#ifndef LQDB_EVAL_EVALUATOR_H_
#define LQDB_EVAL_EVALUATOR_H_

#include <map>
#include <vector>

#include "lqdb/eval/bound_query.h"
#include "lqdb/logic/formula.h"
#include "lqdb/logic/query.h"
#include "lqdb/relational/database.h"
#include "lqdb/util/result.h"

namespace lqdb {

/// Supplies computed (non-materialized) extensions for selected predicates.
/// The approximation algorithm (§5) uses this for the virtual `NE` relation
/// and for the α_P disagreement predicates of Lemma 10, which are decided in
/// polynomial time instead of being stored (Theorem 14).
class VirtualRelationProvider {
 public:
  virtual ~VirtualRelationProvider() = default;

  /// True when this provider interprets `pred`.
  virtual bool Provides(PredId pred) const = 0;

  /// Membership test for a fully ground argument tuple.
  virtual bool Contains(PredId pred, const Tuple& args) const = 0;
};

struct EvalOptions {
  /// Upper bound on |D|^arity for a second-order quantifier: quantifying
  /// over the subsets of a tuple space larger than this fails with
  /// `ResourceExhausted` instead of looping for 2^|space| steps.
  size_t max_so_tuple_space = 24;
};

/// Model-checking evaluator over a physical database, implementing the
/// semantic notion of truth of §2.1: first-order quantifiers range over the
/// database domain, equality is identity, and second-order quantifiers range
/// over all relations of the appropriate arity on the domain.
///
/// Predicate interpretation is resolved in order: a second-order binding in
/// scope, then the virtual provider (if any), then the stored relation
/// (empty when absent).
class Evaluator {
 public:
  explicit Evaluator(const PhysicalDatabase* db, EvalOptions options = {});

  /// Attaches a provider for virtual predicates; pass nullptr to detach.
  /// The provider must outlive the evaluator.
  void set_virtual_provider(const VirtualRelationProvider* provider) {
    provider_ = provider;
  }

  /// Truth of a sentence (no free variables).
  Result<bool> Satisfies(const FormulaPtr& sentence);

  /// Truth of `f` under the given assignment of its free variables.
  Result<bool> SatisfiesWith(const FormulaPtr& f,
                             const std::map<VarId, Value>& binding);

  /// Batched `SatisfiesWith` against the current database state: the
  /// per-call validation (database, interpreted constants, second-order
  /// feasibility) runs once, then the body of `bound` is evaluated under
  /// each row of `values` — a flat `count × bound.arity()` buffer assigning
  /// `values[k * arity + i]` to head variable `i` of row `k`. On success
  /// `(*out)[k]` is the verdict for row `k`; `out` is resized to `count`
  /// and can be reused across calls to keep hot loops allocation-free.
  Status SatisfiesBatch(const BoundQuery& bound, const Value* values,
                        size_t count, std::vector<char>* out);

  /// The answer `Q(PB)`: all assignments of the head variables (drawn from
  /// the domain) that satisfy the body. For a Boolean query the result has
  /// arity 0 and contains the empty tuple iff the sentence is true.
  Result<Relation> Answer(const Query& query);

 private:
  static constexpr Value kUnbound = UINT32_MAX;

  Status CheckSoFeasible(const FormulaPtr& f) const;
  Status CheckSoPredFeasible(PredId pred) const;
  void EnsureEnvCapacity();
  bool Eval(const Formula* f);
  bool EvalSoQuantifier(const Formula* f);
  Value Resolve(const Term& t) const;

  const PhysicalDatabase* db_;
  EvalOptions options_;
  const VirtualRelationProvider* provider_ = nullptr;
  std::vector<Value> env_;
  std::map<PredId, Relation> so_env_;
};

}  // namespace lqdb

#endif  // LQDB_EVAL_EVALUATOR_H_
