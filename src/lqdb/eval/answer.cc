#include "lqdb/eval/answer.h"

#include <cassert>

namespace lqdb {

bool BooleanAnswer(const Relation& answer) {
  assert(answer.arity() == 0);
  return !answer.empty();
}

std::string AnswerToString(const PhysicalDatabase& db,
                           const Relation& answer) {
  std::string out = "{";
  bool first = true;
  for (const Tuple& t : answer.SortedTuples()) {
    if (!first) out += ", ";
    first = false;
    out += TupleToString(t, [&db](Value v) { return db.ValueName(v); });
  }
  out += "}";
  return out;
}

}  // namespace lqdb
