#include "lqdb/eval/evaluator.h"

#include <cassert>

namespace lqdb {

Evaluator::Evaluator(const PhysicalDatabase* db, EvalOptions options)
    : db_(db), options_(options) {
  EnsureEnvCapacity();
}

void Evaluator::EnsureEnvCapacity() {
  size_t need = db_->vocab().num_variables();
  if (env_.size() < need) env_.resize(need, kUnbound);
}

Status Evaluator::CheckSoPredFeasible(PredId pred) const {
  int arity = db_->vocab().PredicateArity(pred);
  double space = 1.0;
  for (int i = 0; i < arity; ++i) {
    space *= static_cast<double>(db_->domain_size());
  }
  if (space > static_cast<double>(options_.max_so_tuple_space)) {
    return Status::ResourceExhausted(
        "second-order quantifier over predicate '" +
        db_->vocab().PredicateName(pred) + "' spans " +
        std::to_string(space) + " tuples; limit is " +
        std::to_string(options_.max_so_tuple_space));
  }
  return Status::OK();
}

Status Evaluator::CheckSoFeasible(const FormulaPtr& f) const {
  if (f->is_second_order_quantifier()) {
    LQDB_RETURN_IF_ERROR(CheckSoPredFeasible(f->pred()));
  }
  for (const auto& c : f->children()) {
    LQDB_RETURN_IF_ERROR(CheckSoFeasible(c));
  }
  return Status::OK();
}

Result<bool> Evaluator::Satisfies(const FormulaPtr& sentence) {
  return SatisfiesWith(sentence, {});
}

namespace {

/// Every constant mentioned by a formula must be interpreted by the
/// database — constants interned into the vocabulary *after* the database
/// was built (e.g. by parsing a later query) have no assigned value. One
/// helper serves both the per-call formula walk (`SatisfiesWith`) and the
/// cached constant list of the batched path, so their errors stay
/// identical.
Status CheckConstantInterpreted(const PhysicalDatabase& db, ConstId c) {
  if (!db.HasConstantValue(c)) {
    return Status::FailedPrecondition(
        "constant '" + db.vocab().ConstantName(c) +
        "' has no interpretation in this database (was it added after "
        "the database was built?)");
  }
  return Status::OK();
}

Status CheckConstantsInterpreted(const PhysicalDatabase& db,
                                 const FormulaPtr& f) {
  for (ConstId c : ConstantsOf(f)) {
    LQDB_RETURN_IF_ERROR(CheckConstantInterpreted(db, c));
  }
  return Status::OK();
}

}  // namespace

Result<bool> Evaluator::SatisfiesWith(const FormulaPtr& f,
                                      const std::map<VarId, Value>& binding) {
  if (f == nullptr) return Status::InvalidArgument("null formula");
  LQDB_RETURN_IF_ERROR(db_->Validate());
  LQDB_RETURN_IF_ERROR(CheckConstantsInterpreted(*db_, f));
  LQDB_RETURN_IF_ERROR(CheckSoFeasible(f));
  for (VarId v : FreeVariables(f)) {
    if (binding.count(v) == 0) {
      return Status::InvalidArgument("free variable '" +
                                     db_->vocab().VariableName(v) +
                                     "' is not bound");
    }
  }
  EnsureEnvCapacity();
  for (const auto& [v, val] : binding) {
    if (v >= env_.size()) env_.resize(v + 1, kUnbound);
    env_[v] = val;
  }
  bool result = Eval(f.get());
  for (const auto& [v, val] : binding) {
    (void)val;
    env_[v] = kUnbound;
  }
  return result;
}

Status Evaluator::SatisfiesBatch(const BoundQuery& bound, const Value* values,
                                 size_t count, std::vector<char>* out) {
  LQDB_RETURN_IF_ERROR(db_->Validate());
  for (ConstId c : bound.constants()) {
    LQDB_RETURN_IF_ERROR(CheckConstantInterpreted(*db_, c));
  }
  for (PredId pred : bound.so_predicates()) {
    LQDB_RETURN_IF_ERROR(CheckSoPredFeasible(pred));
  }
  EnsureEnvCapacity();
  const std::vector<VarId>& head = bound.head();
  for (VarId v : head) {
    if (v >= env_.size()) env_.resize(v + 1, kUnbound);
  }
  const size_t arity = head.size();
  const Formula* body = bound.query().body().get();
  out->resize(count);
  for (size_t k = 0; k < count; ++k) {
    const Value* row = values + k * arity;
    for (size_t i = 0; i < arity; ++i) env_[head[i]] = row[i];
    (*out)[k] = Eval(body) ? 1 : 0;
  }
  for (VarId v : head) env_[v] = kUnbound;
  return Status::OK();
}

Result<Relation> Evaluator::Answer(const Query& query) {
  LQDB_RETURN_IF_ERROR(db_->Validate());
  LQDB_RETURN_IF_ERROR(CheckConstantsInterpreted(*db_, query.body()));
  LQDB_RETURN_IF_ERROR(CheckSoFeasible(query.body()));
  EnsureEnvCapacity();
  for (VarId v : query.head()) {
    if (v >= env_.size()) env_.resize(v + 1, kUnbound);
  }

  const std::vector<Value>& domain = db_->domain();
  const size_t arity = query.arity();
  Relation answer(static_cast<int>(arity));

  // Odometer over domain^arity.
  std::vector<size_t> idx(arity, 0);
  while (true) {
    for (size_t i = 0; i < arity; ++i) env_[query.head()[i]] = domain[idx[i]];
    if (Eval(query.body().get())) {
      Tuple t(arity);
      for (size_t i = 0; i < arity; ++i) t[i] = domain[idx[i]];
      answer.Insert(std::move(t));
    }
    size_t pos = 0;
    while (pos < arity && ++idx[pos] == domain.size()) {
      idx[pos] = 0;
      ++pos;
    }
    if (pos == arity) break;
    if (arity == 0) break;
  }
  for (VarId v : query.head()) env_[v] = kUnbound;
  return answer;
}

Value Evaluator::Resolve(const Term& t) const {
  if (t.is_constant()) return db_->ConstantValue(t.constant());
  assert(t.var() < env_.size() && env_[t.var()] != kUnbound &&
         "unbound variable during evaluation");
  return env_[t.var()];
}

bool Evaluator::Eval(const Formula* f) {
  switch (f->kind()) {
    case FormulaKind::kTrue:
      return true;
    case FormulaKind::kFalse:
      return false;
    case FormulaKind::kEquals:
      return Resolve(f->terms()[0]) == Resolve(f->terms()[1]);
    case FormulaKind::kAtom: {
      Tuple args(f->terms().size());
      for (size_t i = 0; i < f->terms().size(); ++i) {
        args[i] = Resolve(f->terms()[i]);
      }
      auto so_it = so_env_.find(f->pred());
      if (so_it != so_env_.end()) return so_it->second.Contains(args);
      if (provider_ != nullptr && provider_->Provides(f->pred())) {
        return provider_->Contains(f->pred(), args);
      }
      return db_->relation(f->pred()).Contains(args);
    }
    case FormulaKind::kNot:
      return !Eval(f->child().get());
    case FormulaKind::kAnd:
      for (const auto& c : f->children()) {
        if (!Eval(c.get())) return false;
      }
      return true;
    case FormulaKind::kOr:
      for (const auto& c : f->children()) {
        if (Eval(c.get())) return true;
      }
      return false;
    case FormulaKind::kImplies:
      return !Eval(f->child(0).get()) || Eval(f->child(1).get());
    case FormulaKind::kIff:
      return Eval(f->child(0).get()) == Eval(f->child(1).get());
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      const bool is_exists = f->kind() == FormulaKind::kExists;
      VarId v = f->var();
      if (v >= env_.size()) env_.resize(v + 1, kUnbound);
      Value saved = env_[v];
      bool result = !is_exists;
      for (Value d : db_->domain()) {
        env_[v] = d;
        bool sub = Eval(f->child().get());
        if (sub == is_exists) {
          result = is_exists;
          break;
        }
      }
      env_[v] = saved;
      return result;
    }
    case FormulaKind::kExistsPred:
    case FormulaKind::kForallPred:
      return EvalSoQuantifier(f);
  }
  assert(false && "unreachable");
  return false;
}

bool Evaluator::EvalSoQuantifier(const Formula* f) {
  const bool is_exists = f->kind() == FormulaKind::kExistsPred;
  const PredId pred = f->pred();
  const int arity = db_->vocab().PredicateArity(pred);

  // Materialize the tuple space D^arity (feasibility pre-checked).
  std::vector<Tuple> space;
  std::vector<size_t> idx(arity, 0);
  const std::vector<Value>& domain = db_->domain();
  while (true) {
    Tuple t(arity);
    for (int i = 0; i < arity; ++i) t[i] = domain[idx[i]];
    space.push_back(std::move(t));
    int pos = 0;
    while (pos < arity && ++idx[pos] == domain.size()) {
      idx[pos] = 0;
      ++pos;
    }
    if (pos == arity) break;
    if (arity == 0) break;
  }
  assert(space.size() <= 63 && "SO tuple space too large (pre-check failed)");

  // Shadow any outer binding of the same predicate variable.
  auto prev = so_env_.find(pred);
  bool had_prev = prev != so_env_.end();
  Relation saved = had_prev ? prev->second : Relation(arity);

  bool result = !is_exists;
  const uint64_t limit = 1ull << space.size();
  for (uint64_t mask = 0; mask < limit; ++mask) {
    Relation rel(arity);
    for (size_t i = 0; i < space.size(); ++i) {
      if (mask & (1ull << i)) rel.Insert(space[i]);
    }
    so_env_.insert_or_assign(pred, std::move(rel));
    bool sub = Eval(f->child().get());
    if (sub == is_exists) {
      result = is_exists;
      break;
    }
  }
  if (had_prev) {
    so_env_.insert_or_assign(pred, std::move(saved));
  } else {
    so_env_.erase(pred);
  }
  return result;
}

}  // namespace lqdb
