#include "lqdb/eval/bound_query.h"

#include <algorithm>
#include <set>
#include <utility>

#include "lqdb/logic/formula.h"
#include "lqdb/ra/compiler.h"

namespace lqdb {

namespace {

void CollectSoPredicates(const FormulaPtr& f, std::set<PredId>* out) {
  if (f->is_second_order_quantifier()) out->insert(f->pred());
  for (const auto& c : f->children()) CollectSoPredicates(c, out);
}

void CollectAtomPredicates(const FormulaPtr& f, std::set<PredId>* out) {
  if (f->kind() == FormulaKind::kAtom) out->insert(f->pred());
  for (const auto& c : f->children()) CollectAtomPredicates(c, out);
}

}  // namespace

Result<BoundQuery> BoundQuery::Bind(const Query& query) {
  if (query.body() == nullptr) {
    return Status::InvalidArgument("null formula");
  }
  for (VarId v : FreeVariables(query.body())) {
    if (std::find(query.head().begin(), query.head().end(), v) ==
        query.head().end()) {
      return Status::InvalidArgument(
          "free variable of the query body is not in the head");
    }
  }
  BoundQuery bound(&query);
  const std::set<ConstId> constants = ConstantsOf(query.body());
  bound.constants_.assign(constants.begin(), constants.end());
  std::set<PredId> so_preds;
  CollectSoPredicates(query.body(), &so_preds);
  bound.so_predicates_.assign(so_preds.begin(), so_preds.end());
  std::set<PredId> preds;
  CollectAtomPredicates(query.body(), &preds);
  bound.predicates_.assign(preds.begin(), preds.end());
  return bound;
}

Status BoundQuery::CompileRaPlan(const Vocabulary& vocab,
                                 const RaCardinalities* stats) {
  if (ra_attempted_) return ra_status_;
  ra_attempted_ = true;
  RaCompiler compiler(&vocab, stats == nullptr ? RaCardinalities() : *stats);
  Result<PlanPtr> plan = compiler.Compile(*query_);
  if (plan.ok()) {
    ra_plan_ = std::move(plan).value();
  } else {
    ra_status_ = plan.status();
  }
  return ra_status_;
}

void BoundQuery::set_ra_plan(PlanPtr plan) {
  ra_plan_ = std::move(plan);
  ra_attempted_ = true;
  ra_status_ = Status::OK();
}

void BoundQuery::set_ra_uncompilable(Status why) {
  ra_plan_ = nullptr;
  ra_attempted_ = true;
  ra_status_ = std::move(why);
}

}  // namespace lqdb
