#include "lqdb/eval/kernel_memo.h"

#include <algorithm>
#include <cstring>

namespace lqdb {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v;
  h *= kFnvPrime;
  return h;
}

/// Whether the transposition `(a b)` maps the fact set onto itself. Scans
/// every fact once, charging the budget per tuple visited; `*exhausted`
/// rises (and the check conservatively fails) when the budget runs dry.
bool SwapIsAutomorphism(const CwDatabase& lb,
                        const std::vector<PredId>& preds, ConstId a,
                        ConstId b, uint64_t* budget, bool* exhausted) {
  Tuple swapped;
  for (PredId p : preds) {
    const Relation& rel = lb.facts(p);
    for (const Tuple& t : rel.tuples()) {
      if (*budget == 0) {
        *exhausted = true;
        return false;
      }
      --*budget;
      bool touches = false;
      for (Value v : t) {
        if (v == a || v == b) {
          touches = true;
          break;
        }
      }
      if (!touches) continue;
      swapped = t;
      for (Value& v : swapped) {
        if (v == a) {
          v = b;
        } else if (v == b) {
          v = a;
        }
      }
      if (!rel.Contains(swapped)) return false;
    }
  }
  return true;
}

}  // namespace

KernelSignatureContext::KernelSignatureContext(
    const CwDatabase& lb, const std::vector<ConstId>& pinned,
    uint64_t work_budget) {
  const size_t n = lb.num_constants();
  code_of_.assign(n, 0);
  std::vector<bool> is_pinned(n, false);
  for (ConstId c : pinned) {
    if (c < n) is_pinned[c] = true;
  }

  // Cheap per-constant profile: a commutative hash over the facts the
  // constant appears in, with its own occurrences masked. Equal profiles
  // are necessary (not sufficient) for interchangeability, so profiles
  // only bucket the exact pairwise checks below — a hash collision merges
  // buckets, never classes.
  const std::vector<PredId> preds = lb.PredicatesWithFacts();
  std::vector<uint64_t> profile(n, 0);
  std::vector<uint32_t> occurrences(n, 0);
  const Value kSelf = static_cast<Value>(n);
  for (PredId p : preds) {
    for (const Tuple& t : lb.facts(p).tuples()) {
      for (size_t i = 0; i < t.size(); ++i) {
        const Value c = t[i];
        if (c >= n || is_pinned[c]) continue;
        bool seen = false;
        for (size_t j = 0; j < i; ++j) {
          if (t[j] == c) {
            seen = true;
            break;
          }
        }
        if (seen) continue;  // one profile term per (tuple, constant)
        uint64_t h = Mix(kFnvOffset, p);
        for (Value v : t) h = Mix(h, v == c ? kSelf : v);
        profile[c] += h | 1;  // commutative; |1 keeps zero meaning "no facts"
        ++occurrences[c];
      }
    }
  }

  for (ConstId c = 0; c < n; ++c) {
    if (is_pinned[c]) code_of_[c] = -static_cast<int32_t>(c) - 1;
  }

  // Fast path: constants in no fact are mutually interchangeable (any
  // permutation of them fixes the fact set vacuously) — one class, no
  // pairwise checks. On the sparse generated worlds this is the bulk of C.
  int32_t no_fact_class = -1;
  std::unordered_map<uint64_t, std::vector<ConstId>> buckets;
  for (ConstId c = 0; c < n; ++c) {
    if (is_pinned[c]) continue;
    if (occurrences[c] == 0) {
      if (no_fact_class < 0) {
        no_fact_class = static_cast<int32_t>(num_classes_++);
      }
      code_of_[c] = no_fact_class;
    } else {
      buckets[profile[c]].push_back(c);
    }
  }

  // Within a bucket, join a constant to the first class whose
  // representative it swaps with; interchangeability is transitive (the
  // verified transpositions generate the full symmetric group on each
  // class, and fact automorphisms are closed under composition), so
  // rep-checks suffice.
  uint64_t budget = work_budget;
  bool exhausted = false;
  for (auto& [hash, members] : buckets) {
    (void)hash;
    std::sort(members.begin(), members.end());
    std::vector<std::pair<ConstId, int32_t>> reps;
    for (ConstId c : members) {
      int32_t cls = -1;
      if (!exhausted) {
        for (const auto& [rep, id] : reps) {
          if (SwapIsAutomorphism(lb, preds, c, rep, &budget, &exhausted)) {
            cls = id;
            break;
          }
          if (exhausted) break;
        }
      }
      if (cls < 0) {
        cls = static_cast<int32_t>(num_classes_++);
        reps.push_back({c, cls});
      }
      code_of_[c] = cls;
    }
  }
}

void KernelSignatureContext::SignatureOf(const ConstMapping& h,
                                         KernelSignatureScratch* s) const {
  const size_t n = code_of_.size();
  s->block_of_value.assign(n, -1);
  s->value_of_block.clear();
  size_t num_blocks = 0;
  for (ConstId c = 0; c < n; ++c) {
    const Value v = h[c];
    int32_t b = s->block_of_value[v];
    if (b < 0) {
      b = static_cast<int32_t>(num_blocks++);
      s->block_of_value[v] = b;
      s->value_of_block.push_back(v);
      if (s->blocks.size() < num_blocks) s->blocks.emplace_back();
      s->blocks[b].clear();
    }
    s->blocks[b].push_back(code_of_[c]);
  }
  for (size_t b = 0; b < num_blocks; ++b) {
    std::sort(s->blocks[b].begin(), s->blocks[b].end());
  }
  // Canonical block order: lexicographic on the sorted member codes. Blocks
  // with equal descriptors are symmetric (their members draw from the same
  // classes in the same multiplicities), so ties may break arbitrarily.
  s->order.resize(num_blocks);
  for (size_t b = 0; b < num_blocks; ++b) {
    s->order[b] = static_cast<uint32_t>(b);
  }
  std::sort(s->order.begin(), s->order.end(),
            [s](uint32_t a, uint32_t b) { return s->blocks[a] < s->blocks[b]; });

  s->sig.clear();
  s->relabel.assign(n, 0);
  for (size_t rank = 0; rank < num_blocks; ++rank) {
    const uint32_t b = s->order[rank];
    const std::vector<int32_t>& codes = s->blocks[b];
    const uint32_t len = static_cast<uint32_t>(codes.size());
    s->sig.append(reinterpret_cast<const char*>(&len), sizeof(len));
    s->sig.append(reinterpret_cast<const char*>(codes.data()),
                  codes.size() * sizeof(int32_t));
    s->relabel[s->value_of_block[b]] = static_cast<Value>(rank);
  }
}

KernelMemo::KernelMemo(bool enabled, size_t max_entries)
    : enabled_(enabled),
      max_entries_(max_entries),
      buckets_(enabled ? kBuckets : 1) {
  for (auto& head : buckets_) head.store(nullptr, std::memory_order_relaxed);
}

uint32_t KernelMemo::InternSignature(const std::string& sig) {
  MutexLock lock(sig_mu_);
  auto [it, fresh] =
      sig_ids_.emplace(sig, static_cast<uint32_t>(sig_ids_.size()));
  (void)fresh;
  return it->second;
}

uint64_t KernelMemo::HashRow(uint32_t sig_id, const Value* row,
                             size_t arity) {
  uint64_t h = Mix(kFnvOffset, sig_id);
  for (size_t i = 0; i < arity; ++i) h = Mix(h, row[i]);
  return h;
}

int KernelMemo::LookupRow(uint32_t sig_id, const Value* row,
                          size_t arity) const {
  if (!enabled_) return -1;
  const uint64_t hash = HashRow(sig_id, row, arity);
  const Node* node =
      buckets_[hash & (buckets_.size() - 1)].load(std::memory_order_acquire);
  for (; node != nullptr; node = node->next) {
    if (node->hash == hash && node->sig_id == sig_id &&
        node->arity == arity &&
        std::memcmp(node->row.data(), row, arity * sizeof(Value)) == 0) {
      return node->verdict ? 1 : 0;
    }
  }
  return -1;
}

void KernelMemo::InsertRow(uint32_t sig_id, const Value* row, size_t arity,
                           bool verdict) {
  if (!enabled_) return;
  const uint64_t hash = HashRow(sig_id, row, arity);
  std::atomic<Node*>& head = buckets_[hash & (buckets_.size() - 1)];
  MutexLock lock(write_mu_);
  for (Node* node = head.load(std::memory_order_relaxed); node != nullptr;
       node = node->next) {
    if (node->hash == hash && node->sig_id == sig_id &&
        node->arity == arity &&
        std::memcmp(node->row.data(), row, arity * sizeof(Value)) == 0) {
      return;  // first writer wins
    }
  }
  if (size_.load(std::memory_order_relaxed) >= max_entries_) return;
  nodes_.emplace_back();
  Node& node = nodes_.back();
  node.hash = hash;
  node.sig_id = sig_id;
  node.arity = static_cast<uint32_t>(arity);
  node.verdict = verdict;
  node.row.assign(row, row + arity);
  node.next = head.load(std::memory_order_relaxed);
  // Every field above is written before the publish, and `next` never
  // changes afterwards (nodes only prepend), so a reader that acquires the
  // head sees a fully initialized chain.
  head.store(&node, std::memory_order_release);
  size_.fetch_add(1, std::memory_order_relaxed);
}

KernelMemoCounters KernelMemo::counters() const {
  KernelMemoCounters out;
  out.row_hits = hits_.load(std::memory_order_relaxed);
  out.row_misses = misses_.load(std::memory_order_relaxed);
  out.images_skipped = images_skipped_.load(std::memory_order_relaxed);
  {
    MutexLock lock(sig_mu_);
    out.signatures = sig_ids_.size();
  }
  return out;
}

}  // namespace lqdb
