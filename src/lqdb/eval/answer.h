#ifndef LQDB_EVAL_ANSWER_H_
#define LQDB_EVAL_ANSWER_H_

#include <string>

#include "lqdb/relational/database.h"
#include "lqdb/relational/relation.h"

namespace lqdb {

/// Interprets an arity-0 answer relation as a Boolean: true iff it contains
/// the empty tuple. Precondition: `answer.arity() == 0`.
bool BooleanAnswer(const Relation& answer);

/// Renders an answer relation as `{(a, b), (c, d)}` in deterministic
/// (lexicographic) order, naming values via `db.ValueName`.
std::string AnswerToString(const PhysicalDatabase& db, const Relation& answer);

}  // namespace lqdb

#endif  // LQDB_EVAL_ANSWER_H_
