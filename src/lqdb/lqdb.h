#ifndef LQDB_LQDB_H_
#define LQDB_LQDB_H_

/// Umbrella header: the public API of lqdb, the implementation of
/// "Querying Logical Databases" (Vardi, PODS'85 / JCSS'86).
///
/// Typical usage:
///
///   #include "lqdb/lqdb.h"
///
///   lqdb::CwDatabase lb;                      // §2.2 model
///   lb.AddUnknownConstant("Jack");            // a null
///   lb.AddFact("MURDERER", {"Jack"});
///   lb.AddDistinct("Jack", "Victoria");
///
///   auto q = lqdb::ParseQuery(lb.mutable_vocab(), "(x) . !MURDERER(x)");
///
///   lqdb::ExactEvaluator exact(&lb);          // Theorem 1 (co-NP)
///   auto certain = exact.Answer(*q);
///
///   auto approx = lqdb::ApproxEvaluator::Make(&lb);  // §5 (polynomial)
///   auto sound = (*approx)->Answer(*q);

#include "lqdb/approx/alpha.h"
#include "lqdb/approx/approx.h"
#include "lqdb/approx/transform.h"
#include "lqdb/cwdb/cw_database.h"
#include "lqdb/cwdb/mapping.h"
#include "lqdb/cwdb/ph.h"
#include "lqdb/cwdb/simulation.h"
#include "lqdb/cwdb/theory.h"
#include "lqdb/engine/engine.h"
#include "lqdb/eval/answer.h"
#include "lqdb/eval/evaluator.h"
#include "lqdb/exact/brute.h"
#include "lqdb/exact/exact.h"
#include "lqdb/exact/parallel.h"
#include "lqdb/io/text_format.h"
#include "lqdb/logic/builder.h"
#include "lqdb/logic/classify.h"
#include "lqdb/logic/formula.h"
#include "lqdb/logic/nnf.h"
#include "lqdb/logic/parser.h"
#include "lqdb/logic/prenex.h"
#include "lqdb/logic/printer.h"
#include "lqdb/logic/query.h"
#include "lqdb/logic/substitute.h"
#include "lqdb/logic/term.h"
#include "lqdb/logic/vocabulary.h"
#include "lqdb/ra/compiler.h"
#include "lqdb/ra/executor.h"
#include "lqdb/ra/plan.h"
#include "lqdb/ra/sql.h"
#include "lqdb/reductions/coloring.h"
#include "lqdb/reductions/graph.h"
#include "lqdb/reductions/qbf.h"
#include "lqdb/reductions/qbf_reduction.h"
#include "lqdb/reductions/so_reduction.h"
#include "lqdb/relational/database.h"
#include "lqdb/relational/relation.h"
#include "lqdb/relational/tuple.h"
#include "lqdb/util/result.h"
#include "lqdb/util/status.h"

#endif  // LQDB_LQDB_H_
