#include "lqdb/relational/relation.h"

#include <algorithm>

namespace lqdb {

std::vector<Tuple> Relation::SortedTuples() const {
  std::vector<Tuple> out(tuples_.begin(), tuples_.end());
  std::sort(out.begin(), out.end());
  return out;
}

bool Relation::IsSubsetOf(const Relation& other) const {
  if (arity_ != other.arity_) return false;
  for (const Tuple& t : tuples_) {
    if (!other.Contains(t)) return false;
  }
  return true;
}

}  // namespace lqdb
