#ifndef LQDB_RELATIONAL_DATABASE_H_
#define LQDB_RELATIONAL_DATABASE_H_

#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lqdb/logic/vocabulary.h"
#include "lqdb/relational/relation.h"
#include "lqdb/util/result.h"

namespace lqdb {

/// A *physical database* `(L, I)` in the sense of §2.1: a finite
/// interpretation of a relational vocabulary — a nonempty finite domain, an
/// assignment of a domain value to every constant symbol, and a relation of
/// the right arity for every interpreted predicate symbol. Equality is
/// interpreted as identity on the domain and is built into the evaluator.
///
/// Predicates without an explicit relation are interpreted as empty — this
/// matches the closed-world completion axiom for factless predicates and
/// lets formulas over extended vocabularies (§3.2) evaluate directly.
class PhysicalDatabase {
 public:
  /// The database borrows `vocab`, which must outlive it.
  explicit PhysicalDatabase(const Vocabulary* vocab) : vocab_(vocab) {}

  const Vocabulary& vocab() const { return *vocab_; }

  /// Adds `v` to the domain (idempotent).
  void AddDomainValue(Value v) {
    if (domain_set_.insert(v).second) domain_.push_back(v);
  }

  /// Empties the domain, the constant assignment and every relation while
  /// keeping container capacity, so the database can serve as reusable
  /// scratch in per-mapping hot loops (see `ApplyMappingInto`). Stored
  /// relations stay present but empty — semantically identical to absent
  /// ones under the closed-world reading of `relation()`.
  void Clear();

  /// Domain values in insertion order.
  const std::vector<Value>& domain() const { return domain_; }
  bool InDomain(Value v) const { return domain_set_.count(v) > 0; }
  size_t domain_size() const { return domain_.size(); }

  /// Assigns constant symbol `c` to domain value `v` (which must already be
  /// in the domain).
  Status SetConstant(ConstId c, Value v);

  /// Interprets every constant symbol of the vocabulary as "itself" and puts
  /// all constants in the domain — the identity interpretation used by the
  /// Ph₁/Ph₂ constructions.
  void InterpretConstantsAsThemselves();

  /// The value assigned to `c`. Precondition: `c` was assigned.
  Value ConstantValue(ConstId c) const;
  bool HasConstantValue(ConstId c) const {
    return constants_.count(c) > 0;
  }

  /// Adds tuple `t` to the relation of `pred`, creating the relation on
  /// first use. All values must be in the domain and the tuple arity must
  /// match the predicate arity.
  Status AddTuple(PredId pred, Tuple t);

  /// Replaces the relation of `pred` wholesale (arity checked).
  Status SetRelation(PredId pred, Relation rel);

  /// The relation of `pred`, or an empty relation of the right arity when
  /// no tuple was ever added.
  const Relation& relation(PredId pred) const;

  bool HasRelation(PredId pred) const { return relations_.count(pred) > 0; }

  /// Ids of predicates with a stored (possibly empty) relation.
  std::vector<PredId> StoredPredicates() const;

  /// Validates the structural invariant §2.1 requires of every finite
  /// interpretation: a nonempty domain. Totality of the constant
  /// assignment is enforced per formula by the evaluator (see
  /// `Evaluator::SatisfiesWith`), so that interning new constants into the
  /// shared vocabulary does not retroactively invalidate the database.
  Status Validate() const;

  /// Human-readable dump (for examples and debugging).
  std::string ToString() const;

  /// Name of a domain value: the constant name when the value lies in the
  /// constant-id space, else `d<value>`.
  std::string ValueName(Value v) const;

 private:
  const Vocabulary* vocab_;
  std::vector<Value> domain_;
  std::unordered_set<Value> domain_set_;
  std::unordered_map<ConstId, Value> constants_;
  std::map<PredId, Relation> relations_;
};

}  // namespace lqdb

#endif  // LQDB_RELATIONAL_DATABASE_H_
