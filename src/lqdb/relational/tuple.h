#ifndef LQDB_RELATIONAL_TUPLE_H_
#define LQDB_RELATIONAL_TUPLE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace lqdb {

/// A domain element of a finite interpretation. By convention, values are
/// drawn from the constant-id space of the governing `Vocabulary` (the
/// paper's constructions Ph₁/Ph₂ take the domain to be the set `C` of
/// constant symbols, and quotient images map constants to constants), but
/// any dense uint32 id works.
using Value = uint32_t;

/// A database tuple: a fixed-length vector of domain values.
using Tuple = std::vector<Value>;

struct TupleHash {
  size_t operator()(const Tuple& t) const {
    // FNV-1a over the value words.
    size_t h = 1469598103934665603ull;
    for (Value v : t) {
      h ^= v;
      h *= 1099511628211ull;
    }
    return h;
  }
};

/// Renders a tuple as `(a, b, c)` using `name(value)` for each component.
std::string TupleToString(const Tuple& t,
                          const std::function<std::string(Value)>& name);

}  // namespace lqdb

#endif  // LQDB_RELATIONAL_TUPLE_H_
