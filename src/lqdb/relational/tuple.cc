#include "lqdb/relational/tuple.h"

namespace lqdb {

std::string TupleToString(const Tuple& t,
                          const std::function<std::string(Value)>& name) {
  std::string out = "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) out += ", ";
    out += name(t[i]);
  }
  out += ")";
  return out;
}

}  // namespace lqdb
