#ifndef LQDB_RELATIONAL_RELATION_H_
#define LQDB_RELATIONAL_RELATION_H_

#include <cassert>
#include <unordered_set>
#include <vector>

#include "lqdb/relational/tuple.h"

namespace lqdb {

/// A finite relation of fixed arity: a duplicate-free set of tuples.
class Relation {
 public:
  using TupleSet = std::unordered_set<Tuple, TupleHash>;

  explicit Relation(int arity) : arity_(arity) { assert(arity >= 0); }

  int arity() const { return arity_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// Inserts `t`; returns true when the tuple was not already present.
  /// Precondition: `t.size() == arity()`.
  bool Insert(Tuple t) {
    assert(static_cast<int>(t.size()) == arity_);
    return tuples_.insert(std::move(t)).second;
  }

  bool Contains(const Tuple& t) const { return tuples_.count(t) > 0; }

  /// Removes `t`; returns true when the tuple was present.
  bool Erase(const Tuple& t) { return tuples_.erase(t) > 0; }

  /// Removes every tuple but keeps the hash-table capacity, so a relation
  /// used as enumeration scratch does not reallocate its buckets per use.
  void Clear() { tuples_.clear(); }

  const TupleSet& tuples() const { return tuples_; }

  bool operator==(const Relation& other) const {
    return arity_ == other.arity_ && tuples_ == other.tuples_;
  }
  bool operator!=(const Relation& other) const { return !(*this == other); }

  /// Returns the tuples in lexicographic order (for deterministic output).
  std::vector<Tuple> SortedTuples() const;

  /// True iff every tuple of this relation is in `other`.
  bool IsSubsetOf(const Relation& other) const;

 private:
  int arity_;
  TupleSet tuples_;
};

}  // namespace lqdb

#endif  // LQDB_RELATIONAL_RELATION_H_
