#include "lqdb/relational/database.h"

#include <cassert>

namespace lqdb {

void PhysicalDatabase::Clear() {
  domain_.clear();
  domain_set_.clear();
  constants_.clear();
  for (auto& [pred, rel] : relations_) {
    (void)pred;
    rel.Clear();
  }
}

Status PhysicalDatabase::SetConstant(ConstId c, Value v) {
  if (!InDomain(v)) {
    return Status::InvalidArgument(
        "constant must be assigned a value inside the domain");
  }
  constants_[c] = v;
  return Status::OK();
}

void PhysicalDatabase::InterpretConstantsAsThemselves() {
  for (ConstId c = 0; c < vocab_->num_constants(); ++c) {
    AddDomainValue(c);
    constants_[c] = c;
  }
}

Value PhysicalDatabase::ConstantValue(ConstId c) const {
  auto it = constants_.find(c);
  assert(it != constants_.end() && "constant has no assigned value");
  return it->second;
}

Status PhysicalDatabase::AddTuple(PredId pred, Tuple t) {
  if (pred >= vocab_->num_predicates()) {
    return Status::NotFound("unknown predicate id");
  }
  int arity = vocab_->PredicateArity(pred);
  if (static_cast<int>(t.size()) != arity) {
    return Status::InvalidArgument(
        "tuple arity does not match predicate '" +
        vocab_->PredicateName(pred) + "'");
  }
  for (Value v : t) {
    if (!InDomain(v)) {
      return Status::InvalidArgument("tuple value outside the domain");
    }
  }
  auto it = relations_.find(pred);
  if (it == relations_.end()) {
    it = relations_.emplace(pred, Relation(arity)).first;
  }
  it->second.Insert(std::move(t));
  return Status::OK();
}

Status PhysicalDatabase::SetRelation(PredId pred, Relation rel) {
  if (pred >= vocab_->num_predicates()) {
    return Status::NotFound("unknown predicate id");
  }
  if (rel.arity() != vocab_->PredicateArity(pred)) {
    return Status::InvalidArgument("relation arity mismatch for '" +
                                   vocab_->PredicateName(pred) + "'");
  }
  relations_.insert_or_assign(pred, std::move(rel));
  return Status::OK();
}

const Relation& PhysicalDatabase::relation(PredId pred) const {
  auto it = relations_.find(pred);
  if (it != relations_.end()) return it->second;
  // Factless predicates are empty under the closed-world completion.
  static thread_local std::map<int, Relation> empty_by_arity;
  int arity = vocab_->PredicateArity(pred);
  auto eit = empty_by_arity.find(arity);
  if (eit == empty_by_arity.end()) {
    eit = empty_by_arity.emplace(arity, Relation(arity)).first;
  }
  return eit->second;
}

std::vector<PredId> PhysicalDatabase::StoredPredicates() const {
  std::vector<PredId> out;
  out.reserve(relations_.size());
  for (const auto& [pred, rel] : relations_) {
    (void)rel;
    out.push_back(pred);
  }
  return out;
}

Status PhysicalDatabase::Validate() const {
  if (domain_.empty()) {
    return Status::FailedPrecondition("domain must be nonempty");
  }
  // Note: constants interned into the shared vocabulary *after* this
  // database was built (e.g. while parsing a later query) may legitimately
  // lack a value here; the evaluator rejects formulas that mention an
  // uninterpreted constant at evaluation time instead.
  return Status::OK();
}

std::string PhysicalDatabase::ValueName(Value v) const {
  if (v < vocab_->num_constants()) return vocab_->ConstantName(v);
  return "d" + std::to_string(v);
}

std::string PhysicalDatabase::ToString() const {
  std::string out = "domain = {";
  for (size_t i = 0; i < domain_.size(); ++i) {
    if (i > 0) out += ", ";
    out += ValueName(domain_[i]);
  }
  out += "}\n";
  for (const auto& [pred, rel] : relations_) {
    out += vocab_->PredicateName(pred);
    out += " = {";
    bool first = true;
    for (const Tuple& t : rel.SortedTuples()) {
      if (!first) out += ", ";
      first = false;
      out += TupleToString(t, [this](Value v) { return ValueName(v); });
    }
    out += "}\n";
  }
  return out;
}

}  // namespace lqdb
