#include "lqdb/logic/parser.h"

#include <cctype>
#include <string>
#include <vector>

#include "lqdb/util/parse.h"

namespace lqdb {

namespace {

enum class TokKind {
  kEnd,
  kIdent,
  kLParen,
  kRParen,
  kComma,
  kDot,
  kSlash,
  kEq,
  kNeq,
  kNot,
  kAnd,
  kOr,
  kImplies,
  kIff,
};

struct Token {
  TokKind kind;
  std::string text;
  size_t pos;
};

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    size_t i = 0;
    while (i < input_.size()) {
      char c = input_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      size_t start = i;
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        size_t j = i;
        while (j < input_.size() &&
               (std::isalnum(static_cast<unsigned char>(input_[j])) ||
                input_[j] == '_' || input_[j] == '\'')) {
          ++j;
        }
        out.push_back({TokKind::kIdent,
                       std::string(input_.substr(i, j - i)), start});
        i = j;
        continue;
      }
      switch (c) {
        case '(': out.push_back({TokKind::kLParen, "(", start}); ++i; break;
        case ')': out.push_back({TokKind::kRParen, ")", start}); ++i; break;
        case ',': out.push_back({TokKind::kComma, ",", start}); ++i; break;
        case '.': out.push_back({TokKind::kDot, ".", start}); ++i; break;
        case '/': out.push_back({TokKind::kSlash, "/", start}); ++i; break;
        case '=': out.push_back({TokKind::kEq, "=", start}); ++i; break;
        case '&': out.push_back({TokKind::kAnd, "&", start}); ++i; break;
        case '|': out.push_back({TokKind::kOr, "|", start}); ++i; break;
        case '!':
          if (i + 1 < input_.size() && input_[i + 1] == '=') {
            out.push_back({TokKind::kNeq, "!=", start});
            i += 2;
          } else {
            out.push_back({TokKind::kNot, "!", start});
            ++i;
          }
          break;
        case '-':
          if (i + 1 < input_.size() && input_[i + 1] == '>') {
            out.push_back({TokKind::kImplies, "->", start});
            i += 2;
            break;
          }
          return Err(start, "unexpected '-'");
        case '<':
          if (i + 2 < input_.size() && input_[i + 1] == '-' &&
              input_[i + 2] == '>') {
            out.push_back({TokKind::kIff, "<->", start});
            i += 3;
            break;
          }
          return Err(start, "unexpected '<'");
        default:
          return Err(start, std::string("unexpected character '") + c + "'");
      }
    }
    out.push_back({TokKind::kEnd, "", input_.size()});
    return out;
  }

 private:
  Status Err(size_t pos, const std::string& what) {
    return Status::InvalidArgument(what + " at offset " + std::to_string(pos));
  }

  std::string_view input_;
};

class Parser {
 public:
  Parser(Vocabulary* vocab, std::vector<Token> tokens)
      : vocab_(vocab), tokens_(std::move(tokens)) {}

  Result<FormulaPtr> ParseFormulaTop() {
    LQDB_ASSIGN_OR_RETURN(FormulaPtr f, ParseIff());
    LQDB_RETURN_IF_ERROR(Expect(TokKind::kEnd, "end of input"));
    return f;
  }

  Result<Query> ParseQueryTop() {
    // Heads look like `( ident* ) .`: distinguish from a parenthesized
    // formula by scanning ahead for the closing paren followed by a dot.
    if (Peek().kind == TokKind::kLParen && LooksLikeHead()) {
      Advance();  // '('
      std::vector<VarId> head;
      if (Peek().kind != TokKind::kRParen) {
        while (true) {
          if (Peek().kind != TokKind::kIdent) {
            return Status::InvalidArgument(
                "expected variable name in query head at offset " +
                std::to_string(Peek().pos));
          }
          if (vocab_->FindConstant(Peek().text) != Vocabulary::kNotFound) {
            return Status::InvalidArgument(
                "query head variable '" + Peek().text +
                "' shadows a constant symbol");
          }
          head.push_back(vocab_->AddVariable(Peek().text));
          Advance();
          if (Peek().kind == TokKind::kComma) {
            Advance();
            continue;
          }
          break;
        }
      }
      LQDB_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
      LQDB_RETURN_IF_ERROR(Expect(TokKind::kDot, "'.'"));
      LQDB_ASSIGN_OR_RETURN(FormulaPtr body, ParseIff());
      LQDB_RETURN_IF_ERROR(Expect(TokKind::kEnd, "end of input"));
      return Query::Make(std::move(head), std::move(body));
    }
    LQDB_ASSIGN_OR_RETURN(FormulaPtr body, ParseIff());
    LQDB_RETURN_IF_ERROR(Expect(TokKind::kEnd, "end of input"));
    return Query::Boolean(std::move(body));
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() { ++pos_; }

  Status Expect(TokKind kind, const std::string& what) {
    if (Peek().kind != kind) {
      return Status::InvalidArgument("expected " + what + " at offset " +
                                     std::to_string(Peek().pos) + ", found '" +
                                     Peek().text + "'");
    }
    Advance();
    return Status::OK();
  }

  /// True when the token stream starts `( [ident [, ident]*] ) .`
  bool LooksLikeHead() const {
    size_t i = pos_ + 1;
    if (i < tokens_.size() && tokens_[i].kind == TokKind::kRParen) {
      return i + 1 < tokens_.size() && tokens_[i + 1].kind == TokKind::kDot;
    }
    while (i + 1 < tokens_.size() && tokens_[i].kind == TokKind::kIdent) {
      if (tokens_[i + 1].kind == TokKind::kComma) {
        i += 2;
        continue;
      }
      if (tokens_[i + 1].kind == TokKind::kRParen) {
        return i + 2 < tokens_.size() && tokens_[i + 2].kind == TokKind::kDot;
      }
      return false;
    }
    return false;
  }

  Result<FormulaPtr> ParseIff() {
    LQDB_ASSIGN_OR_RETURN(FormulaPtr lhs, ParseImplies());
    while (Peek().kind == TokKind::kIff) {
      Advance();
      LQDB_ASSIGN_OR_RETURN(FormulaPtr rhs, ParseImplies());
      lhs = Formula::Iff(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<FormulaPtr> ParseImplies() {
    LQDB_ASSIGN_OR_RETURN(FormulaPtr lhs, ParseOr());
    if (Peek().kind == TokKind::kImplies) {
      Advance();
      LQDB_ASSIGN_OR_RETURN(FormulaPtr rhs, ParseImplies());
      return Formula::Implies(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<FormulaPtr> ParseOr() {
    LQDB_ASSIGN_OR_RETURN(FormulaPtr lhs, ParseAnd());
    std::vector<FormulaPtr> parts;
    parts.push_back(std::move(lhs));
    while (Peek().kind == TokKind::kOr) {
      Advance();
      LQDB_ASSIGN_OR_RETURN(FormulaPtr rhs, ParseAnd());
      parts.push_back(std::move(rhs));
    }
    return parts.size() == 1 ? parts[0] : Formula::Or(std::move(parts));
  }

  Result<FormulaPtr> ParseAnd() {
    LQDB_ASSIGN_OR_RETURN(FormulaPtr lhs, ParseUnary());
    std::vector<FormulaPtr> parts;
    parts.push_back(std::move(lhs));
    while (Peek().kind == TokKind::kAnd) {
      Advance();
      LQDB_ASSIGN_OR_RETURN(FormulaPtr rhs, ParseUnary());
      parts.push_back(std::move(rhs));
    }
    return parts.size() == 1 ? parts[0] : Formula::And(std::move(parts));
  }

  Result<FormulaPtr> ParseUnary() {
    if (Peek().kind == TokKind::kNot) {
      Advance();
      LQDB_ASSIGN_OR_RETURN(FormulaPtr inner, ParseUnary());
      return Formula::Not(std::move(inner));
    }
    const std::string& word = Peek().text;
    if (Peek().kind == TokKind::kIdent &&
        (word == "exists" || word == "forall")) {
      bool is_exists = word == "exists";
      Advance();
      std::vector<VarId> vars;
      while (Peek().kind == TokKind::kIdent) {
        if (vocab_->FindConstant(Peek().text) != Vocabulary::kNotFound) {
          return Status::InvalidArgument(
              "quantified variable '" + Peek().text +
              "' shadows a constant symbol");
        }
        vars.push_back(vocab_->AddVariable(Peek().text));
        Advance();
      }
      if (vars.empty()) {
        return Status::InvalidArgument(
            "quantifier with no variables at offset " +
            std::to_string(Peek().pos));
      }
      LQDB_RETURN_IF_ERROR(Expect(TokKind::kDot, "'.' after quantifier"));
      LQDB_ASSIGN_OR_RETURN(FormulaPtr body, ParseIff());
      return is_exists ? Formula::Exists(vars, std::move(body))
                       : Formula::Forall(vars, std::move(body));
    }
    if (Peek().kind == TokKind::kIdent &&
        (word == "exists2" || word == "forall2")) {
      bool is_exists = word == "exists2";
      Advance();
      std::vector<PredId> preds;
      while (Peek().kind == TokKind::kIdent) {
        std::string name = Peek().text;
        Advance();
        LQDB_RETURN_IF_ERROR(
            Expect(TokKind::kSlash, "'/' and arity after predicate variable"));
        if (Peek().kind != TokKind::kIdent || !IsNumber(Peek().text)) {
          return Status::InvalidArgument(
              "expected arity after '/' at offset " +
              std::to_string(Peek().pos));
        }
        // Strict parse: std::stoi would throw (the library is
        // exception-free) on an arity beyond int range.
        int arity = 0;
        if (!ParseStrictInt(Peek().text, &arity)) {
          return Status::InvalidArgument(
              "arity out of range at offset " + std::to_string(Peek().pos));
        }
        Advance();
        LQDB_ASSIGN_OR_RETURN(PredId p,
                              vocab_->AddAuxiliaryPredicate(name, arity));
        preds.push_back(p);
      }
      if (preds.empty()) {
        return Status::InvalidArgument(
            "second-order quantifier with no predicate variables at offset " +
            std::to_string(Peek().pos));
      }
      LQDB_RETURN_IF_ERROR(Expect(TokKind::kDot, "'.' after quantifier"));
      LQDB_ASSIGN_OR_RETURN(FormulaPtr body, ParseIff());
      return is_exists ? Formula::ExistsPred(preds, std::move(body))
                       : Formula::ForallPred(preds, std::move(body));
    }
    return ParsePrimary();
  }

  Result<FormulaPtr> ParsePrimary() {
    const Token& tok = Peek();
    if (tok.kind == TokKind::kLParen) {
      Advance();
      LQDB_ASSIGN_OR_RETURN(FormulaPtr inner, ParseIff());
      LQDB_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
      // A parenthesized formula may still be an equality's left side only
      // when it was a term — terms are never parenthesized in this grammar,
      // so we are done.
      return inner;
    }
    if (tok.kind != TokKind::kIdent) {
      return Status::InvalidArgument("expected formula at offset " +
                                     std::to_string(tok.pos) + ", found '" +
                                     tok.text + "'");
    }
    if (tok.text == "true") {
      Advance();
      return Formula::True();
    }
    if (tok.text == "false") {
      Advance();
      return Formula::False();
    }
    // Atom `P(t, ...)` or equality `t = t` / `t != t`.
    std::string name = tok.text;
    Advance();
    if (Peek().kind == TokKind::kLParen) {
      Advance();
      TermList args;
      if (Peek().kind != TokKind::kRParen) {
        while (true) {
          LQDB_ASSIGN_OR_RETURN(Term t, ParseTerm());
          args.push_back(t);
          if (Peek().kind == TokKind::kComma) {
            Advance();
            continue;
          }
          break;
        }
      }
      LQDB_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
      LQDB_ASSIGN_OR_RETURN(
          PredId p, vocab_->AddAuxiliaryPredicate(
                        name, static_cast<int>(args.size())));
      return Formula::Atom(p, std::move(args));
    }
    Term lhs = ResolveTerm(name);
    if (Peek().kind == TokKind::kEq || Peek().kind == TokKind::kNeq) {
      bool negated = Peek().kind == TokKind::kNeq;
      Advance();
      LQDB_ASSIGN_OR_RETURN(Term rhs, ParseTerm());
      FormulaPtr eq = Formula::Equals(lhs, rhs);
      return negated ? Formula::Not(std::move(eq)) : eq;
    }
    return Status::InvalidArgument(
        "expected '(' (atom) or '='/'!=' (equality) after '" + name +
        "' at offset " + std::to_string(Peek().pos));
  }

  Result<Term> ParseTerm() {
    if (Peek().kind != TokKind::kIdent) {
      return Status::InvalidArgument("expected term at offset " +
                                     std::to_string(Peek().pos) + ", found '" +
                                     Peek().text + "'");
    }
    Term t = ResolveTerm(Peek().text);
    Advance();
    return t;
  }

  /// Resolution order: known constant, known variable, case heuristic.
  Term ResolveTerm(const std::string& name) {
    ConstId c = vocab_->FindConstant(name);
    if (c != Vocabulary::kNotFound) return Term::Constant(c);
    VarId v = vocab_->FindVariable(name);
    if (v != Vocabulary::kNotFound) return Term::Variable(v);
    char first = name[0];
    if (std::islower(static_cast<unsigned char>(first))) {
      return Term::Variable(vocab_->AddVariable(name));
    }
    return Term::Constant(vocab_->AddConstant(name));
  }

  static bool IsNumber(const std::string& s) {
    for (char c : s) {
      if (!std::isdigit(static_cast<unsigned char>(c))) return false;
    }
    return !s.empty();
  }

  Vocabulary* vocab_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<FormulaPtr> ParseFormula(Vocabulary* vocab, std::string_view text) {
  LQDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lexer(text).Tokenize());
  return Parser(vocab, std::move(tokens)).ParseFormulaTop();
}

Result<Query> ParseQuery(Vocabulary* vocab, std::string_view text) {
  LQDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lexer(text).Tokenize());
  return Parser(vocab, std::move(tokens)).ParseQueryTop();
}

}  // namespace lqdb
