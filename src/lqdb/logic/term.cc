// Term is header-only; this translation unit exists so the build exposes a
// stable object for the module and to host any future out-of-line helpers.
#include "lqdb/logic/term.h"
