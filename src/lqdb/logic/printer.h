#ifndef LQDB_LOGIC_PRINTER_H_
#define LQDB_LOGIC_PRINTER_H_

#include <string>

#include "lqdb/logic/formula.h"
#include "lqdb/logic/vocabulary.h"

namespace lqdb {

/// Renders `f` in the concrete syntax accepted by `ParseFormula`:
///
///   true  false  P(x, Alice)  x = y  x != y  !phi
///   phi & psi   phi | psi   phi -> psi   phi <-> psi
///   exists x y. phi    forall x. phi
///   exists2 P/2. phi   forall2 Q/1. phi
///
/// Operator precedence, loosest to tightest: <->, ->, |, &, prefix (!,
/// quantifiers). Quantifier bodies extend as far right as possible.
/// Printing uses minimal parentheses; `Print(Parse(s))` round-trips.
std::string PrintFormula(const Vocabulary& vocab, const FormulaPtr& f);

/// Renders a term (variable or constant name).
std::string PrintTerm(const Vocabulary& vocab, const Term& t);

}  // namespace lqdb

#endif  // LQDB_LOGIC_PRINTER_H_
