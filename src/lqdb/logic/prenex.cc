#include "lqdb/logic/prenex.h"

#include <utility>
#include <vector>

#include "lqdb/logic/nnf.h"
#include "lqdb/logic/substitute.h"

namespace lqdb {

namespace {

struct PrefixEntry {
  bool existential;
  VarId var;
};

struct PrenexParts {
  std::vector<PrefixEntry> prefix;
  FormulaPtr matrix;
};

/// Hoists quantifiers out of an NNF formula. Every quantifier binds a
/// variable that has been renamed to a fresh symbol, so hoisting through
/// conjunction/disjunction needs no further capture analysis.
Result<PrenexParts> Hoist(Vocabulary* vocab, const FormulaPtr& f) {
  switch (f->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
    case FormulaKind::kEquals:
    case FormulaKind::kAtom:
      return PrenexParts{{}, f};
    case FormulaKind::kNot:
      // NNF: the child is atomic.
      return PrenexParts{{}, f};
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      PrenexParts out;
      std::vector<FormulaPtr> matrices;
      for (const auto& c : f->children()) {
        LQDB_ASSIGN_OR_RETURN(PrenexParts part, Hoist(vocab, c));
        out.prefix.insert(out.prefix.end(), part.prefix.begin(),
                          part.prefix.end());
        matrices.push_back(std::move(part.matrix));
      }
      out.matrix = f->kind() == FormulaKind::kAnd
                       ? Formula::And(std::move(matrices))
                       : Formula::Or(std::move(matrices));
      return out;
    }
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      // Rename the bound variable to a fresh one, then recurse.
      VarId fresh = vocab->FreshVariable(vocab->VariableName(f->var()));
      Substitution rename{{f->var(), Term::Variable(fresh)}};
      FormulaPtr body = Substitute(vocab, f->child(), rename);
      LQDB_ASSIGN_OR_RETURN(PrenexParts part, Hoist(vocab, body));
      part.prefix.insert(
          part.prefix.begin(),
          PrefixEntry{f->kind() == FormulaKind::kExists, fresh});
      return part;
    }
    case FormulaKind::kImplies:
    case FormulaKind::kIff:
      return Status::Internal("implication survived NNF conversion");
    case FormulaKind::kExistsPred:
    case FormulaKind::kForallPred:
      return Status::Unimplemented(
          "prenexing second-order quantifiers is not supported");
  }
  return Status::Internal("unknown formula kind");
}

}  // namespace

Result<FormulaPtr> ToPrenex(Vocabulary* vocab, const FormulaPtr& f) {
  if (f == nullptr) return Status::InvalidArgument("null formula");
  if (!IsFirstOrder(f)) {
    return Status::Unimplemented(
        "prenexing second-order quantifiers is not supported");
  }
  FormulaPtr nnf = ToNnf(f);
  LQDB_ASSIGN_OR_RETURN(PrenexParts parts, Hoist(vocab, nnf));
  FormulaPtr out = std::move(parts.matrix);
  for (auto it = parts.prefix.rbegin(); it != parts.prefix.rend(); ++it) {
    out = it->existential ? Formula::Exists(it->var, std::move(out))
                          : Formula::Forall(it->var, std::move(out));
  }
  return out;
}

}  // namespace lqdb
