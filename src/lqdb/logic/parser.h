#ifndef LQDB_LOGIC_PARSER_H_
#define LQDB_LOGIC_PARSER_H_

#include <string_view>

#include "lqdb/logic/formula.h"
#include "lqdb/logic/query.h"
#include "lqdb/logic/vocabulary.h"
#include "lqdb/util/result.h"

namespace lqdb {

/// Parses a formula in the concrete syntax of `PrintFormula`:
///
///   formula  := iff
///   iff      := implies ("<->" implies)*
///   implies  := or ("->" implies)?              (right associative)
///   or       := and ("|" and)*
///   and      := unary ("&" unary)*
///   unary    := "!" unary | quantifier | primary
///   quantifier := ("exists"|"forall") ident+ "." iff
///               | ("exists2"|"forall2") (ident "/" nat)+ "." iff
///   primary  := "true" | "false" | "(" iff ")"
///             | ident "(" terms? ")"            (atom)
///             | term ("=" | "!=") term          (equality)
///
/// Term identifiers resolve against `vocab`: a name already interned as a
/// constant parses as that constant; otherwise a name already interned as a
/// variable parses as that variable; otherwise names beginning with a
/// lowercase letter become variables and all other names (uppercase or
/// digit-initial) become constants. New predicates are declared as
/// auxiliary symbols with the arity at first use.
Result<FormulaPtr> ParseFormula(Vocabulary* vocab, std::string_view text);

/// Parses `(x, y) . φ` (head required to list all free variables) or a bare
/// sentence, which parses as the Boolean query `() . φ`.
Result<Query> ParseQuery(Vocabulary* vocab, std::string_view text);

}  // namespace lqdb

#endif  // LQDB_LOGIC_PARSER_H_
