#include "lqdb/logic/builder.h"

#include <cassert>
#include <vector>

namespace lqdb {

FormulaPtr FormulaBuilder::Atom(std::string_view pred, TermList args) {
  Result<PredId> id =
      vocab_->AddAuxiliaryPredicate(pred, static_cast<int>(args.size()));
  assert(id.ok() && "predicate used with inconsistent arity");
  // If the predicate was already declared non-auxiliary it stays that way:
  // AddAuxiliaryPredicate only sets the flag on first declaration.
  return Formula::Atom(id.value(), std::move(args));
}

FormulaPtr FormulaBuilder::Exists(std::initializer_list<std::string_view> vars,
                                  FormulaPtr body) {
  std::vector<VarId> ids;
  for (std::string_view v : vars) ids.push_back(vocab_->AddVariable(v));
  return Formula::Exists(ids, std::move(body));
}

FormulaPtr FormulaBuilder::Forall(std::initializer_list<std::string_view> vars,
                                  FormulaPtr body) {
  std::vector<VarId> ids;
  for (std::string_view v : vars) ids.push_back(vocab_->AddVariable(v));
  return Formula::Forall(ids, std::move(body));
}

FormulaPtr FormulaBuilder::ExistsPred(std::string_view pred, int arity,
                                      FormulaPtr body) {
  Result<PredId> id = vocab_->AddAuxiliaryPredicate(pred, arity);
  assert(id.ok() && "predicate used with inconsistent arity");
  return Formula::ExistsPred(id.value(), std::move(body));
}

FormulaPtr FormulaBuilder::ForallPred(std::string_view pred, int arity,
                                      FormulaPtr body) {
  Result<PredId> id = vocab_->AddAuxiliaryPredicate(pred, arity);
  assert(id.ok() && "predicate used with inconsistent arity");
  return Formula::ForallPred(id.value(), std::move(body));
}

}  // namespace lqdb
