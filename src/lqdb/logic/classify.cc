#include "lqdb/logic/classify.h"

#include <cassert>

namespace lqdb {

namespace {

/// Returns true when every atomic subformula of `f` appears only positively,
/// given that `f` itself sits under `positive` polarity. For `<->` (which
/// exposes both polarities of both sides) the children must be positive
/// under both polarities, which only holds for atom-free subformulas.
bool Positive(const FormulaPtr& f, bool positive) {
  switch (f->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return true;
    case FormulaKind::kEquals:
    case FormulaKind::kAtom:
      return positive;
    case FormulaKind::kNot:
      return Positive(f->child(), !positive);
    case FormulaKind::kImplies:
      return Positive(f->child(0), !positive) && Positive(f->child(1), positive);
    case FormulaKind::kIff:
      return Positive(f->child(0), true) && Positive(f->child(0), false) &&
             Positive(f->child(1), true) && Positive(f->child(1), false);
    default:
      for (const auto& c : f->children()) {
        if (!Positive(c, positive)) return false;
      }
      return true;
  }
}

bool HasFoQuantifier(const FormulaPtr& f) {
  if (f->kind() == FormulaKind::kExists || f->kind() == FormulaKind::kForall) {
    return true;
  }
  for (const auto& c : f->children()) {
    if (HasFoQuantifier(c)) return true;
  }
  return false;
}

bool HasSoQuantifier(const FormulaPtr& f) {
  if (f->is_second_order_quantifier()) return true;
  for (const auto& c : f->children()) {
    if (HasSoQuantifier(c)) return true;
  }
  return false;
}

}  // namespace

bool IsPositive(const FormulaPtr& f) { return Positive(f, true); }

bool IsPositive(const Query& query) { return IsPositive(query.body()); }

PrefixShape ClassifyFoPrefix(const FormulaPtr& f) {
  PrefixShape shape;
  const Formula* cur = f.get();
  bool first = true;
  bool last_existential = false;
  while (cur->kind() == FormulaKind::kExists ||
         cur->kind() == FormulaKind::kForall) {
    bool existential = cur->kind() == FormulaKind::kExists;
    if (first) {
      shape.starts_existential = existential;
      shape.blocks = 1;
      first = false;
    } else if (existential != last_existential) {
      ++shape.blocks;
    }
    last_existential = existential;
    cur = cur->child().get();
  }
  // The matrix must be quantifier-free for prenex shape.
  FormulaPtr matrix(f, cur);  // aliasing: shares ownership with f
  shape.prenex = !HasFoQuantifier(matrix);
  return shape;
}

PrefixShape ClassifySoPrefix(const FormulaPtr& f) {
  PrefixShape shape;
  const Formula* cur = f.get();
  bool first = true;
  bool last_existential = false;
  while (cur->is_second_order_quantifier()) {
    bool existential = cur->kind() == FormulaKind::kExistsPred;
    if (first) {
      shape.starts_existential = existential;
      shape.blocks = 1;
      first = false;
    } else if (existential != last_existential) {
      ++shape.blocks;
    }
    last_existential = existential;
    cur = cur->child().get();
  }
  FormulaPtr matrix(f, cur);  // aliasing: shares ownership with f
  shape.prenex = !HasSoQuantifier(matrix);
  return shape;
}

bool InSigmaFoK(const FormulaPtr& f, int k) {
  if (!IsFirstOrder(f)) return false;
  PrefixShape shape = ClassifyFoPrefix(f);
  if (!shape.prenex) return false;
  if (shape.blocks == 0) return true;
  if (shape.blocks > k) return false;
  // With exactly k blocks the prefix must start existentially; with fewer
  // blocks either polarity embeds into Σₖ.
  return shape.blocks < k || shape.starts_existential;
}

bool InSigmaSoK(const FormulaPtr& f, int k) {
  PrefixShape shape = ClassifySoPrefix(f);
  if (!shape.prenex) return false;  // SO quantifiers under the prefix
  if (shape.blocks == 0) return true;
  if (shape.blocks > k) return false;
  return shape.blocks < k || shape.starts_existential;
}

}  // namespace lqdb
