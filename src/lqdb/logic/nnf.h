#ifndef LQDB_LOGIC_NNF_H_
#define LQDB_LOGIC_NNF_H_

#include "lqdb/logic/formula.h"

namespace lqdb {

/// Converts `f` to negation normal form: `->` and `<->` are eliminated and
/// negations are pushed down so that `kNot` nodes appear only directly above
/// `kAtom`/`kEquals` leaves. This is "pushing all negations in Q down to the
/// atomic formulas" as in §5 of the paper — the first step of the
/// approximate-query transform.
///
/// `<->` is expanded to `(a ∧ b) ∨ (¬a ∧ ¬b)`, which duplicates subtrees;
/// deeply nested `<->` chains grow exponentially (inherent to NNF).
FormulaPtr ToNnf(const FormulaPtr& f);

/// True iff every `kNot` node in `f` wraps an atom or an equality and no
/// `kImplies`/`kIff` node occurs.
bool IsNnf(const FormulaPtr& f);

}  // namespace lqdb

#endif  // LQDB_LOGIC_NNF_H_
