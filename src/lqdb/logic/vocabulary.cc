#include "lqdb/logic/vocabulary.h"

#include <string>

namespace lqdb {

Result<PredId> Vocabulary::AddPredicateImpl(std::string_view name, int arity,
                                            bool auxiliary) {
  if (arity < 0) {
    return Status::InvalidArgument("predicate arity must be non-negative");
  }
  uint32_t existing = predicate_names_.Find(name);
  if (existing != Interner::kNotFound) {
    if (arities_[existing] != arity) {
      return Status::AlreadyExists(
          "predicate '" + std::string(name) + "' already declared with arity " +
          std::to_string(arities_[existing]));
    }
    // Declaring a predicate as part of the schema upgrades an earlier
    // auxiliary declaration; the reverse never downgrades.
    if (!auxiliary) auxiliary_[existing] = false;
    return existing;
  }
  PredId id = predicate_names_.Intern(name);
  arities_.push_back(arity);
  auxiliary_.push_back(auxiliary);
  return id;
}

VarId Vocabulary::FreshVariable(std::string_view hint) {
  std::string base(hint);
  if (variables_.Find(base) == Interner::kNotFound) {
    return variables_.Intern(base);
  }
  for (int i = 0;; ++i) {
    std::string candidate = base + "_" + std::to_string(i);
    if (variables_.Find(candidate) == Interner::kNotFound) {
      return variables_.Intern(candidate);
    }
  }
}

std::vector<PredId> Vocabulary::SchemaPredicates() const {
  std::vector<PredId> out;
  for (PredId p = 0; p < predicate_names_.size(); ++p) {
    if (!auxiliary_[p]) out.push_back(p);
  }
  return out;
}

}  // namespace lqdb
