#include "lqdb/logic/printer.h"

#include <cassert>

namespace lqdb {

namespace {

// Binding strength; higher binds tighter. A child is parenthesized when its
// level is strictly looser than the context requires.
enum Level : int {
  kLevelIff = 0,
  kLevelImplies = 1,
  kLevelOr = 2,
  kLevelAnd = 3,
  kLevelPrefix = 4,  // !, quantifiers
  kLevelAtom = 5,
};

int LevelOf(const FormulaPtr& f) {
  switch (f->kind()) {
    case FormulaKind::kIff: return kLevelIff;
    case FormulaKind::kImplies: return kLevelImplies;
    case FormulaKind::kOr: return kLevelOr;
    case FormulaKind::kAnd: return kLevelAnd;
    case FormulaKind::kNot:
    case FormulaKind::kExists:
    case FormulaKind::kForall:
    case FormulaKind::kExistsPred:
    case FormulaKind::kForallPred:
      return kLevelPrefix;
    default:
      return kLevelAtom;
  }
}

/// True when the rightmost printed element of `f` is a quantifier body,
/// which extends "as far right as possible" when reparsed. Such nodes need
/// parentheses whenever more text follows them in the same expression.
bool RightOpen(const FormulaPtr& f) {
  switch (f->kind()) {
    case FormulaKind::kExists:
    case FormulaKind::kForall:
    case FormulaKind::kExistsPred:
    case FormulaKind::kForallPred:
      return true;
    case FormulaKind::kNot:
      // `x != y` sugar is closed; `!φ` inherits φ's openness.
      if (f->child()->kind() == FormulaKind::kEquals) return false;
      return RightOpen(f->child());
    default:
      return false;
  }
}

/// Renders `f` assuming the context requires binding strength `min_level`.
/// `tail` is true when nothing follows the node inside the current
/// parenthesization context — only then may a right-open node omit parens.
void Render(const Vocabulary& vocab, const FormulaPtr& f, int min_level,
            bool tail, std::string* out) {
  const bool parens =
      LevelOf(f) < min_level || (!tail && RightOpen(f));
  if (parens) {
    *out += "(";
    tail = true;  // the closing paren seals the node
  }
  switch (f->kind()) {
    case FormulaKind::kTrue:
      *out += "true";
      break;
    case FormulaKind::kFalse:
      *out += "false";
      break;
    case FormulaKind::kEquals:
      *out += PrintTerm(vocab, f->terms()[0]);
      *out += " = ";
      *out += PrintTerm(vocab, f->terms()[1]);
      break;
    case FormulaKind::kAtom: {
      *out += vocab.PredicateName(f->pred());
      *out += "(";
      for (size_t i = 0; i < f->terms().size(); ++i) {
        if (i > 0) *out += ", ";
        *out += PrintTerm(vocab, f->terms()[i]);
      }
      *out += ")";
      break;
    }
    case FormulaKind::kNot: {
      // `x != y` sugar for negated equality.
      const FormulaPtr& inner = f->child();
      if (inner->kind() == FormulaKind::kEquals) {
        *out += PrintTerm(vocab, inner->terms()[0]);
        *out += " != ";
        *out += PrintTerm(vocab, inner->terms()[1]);
        break;
      }
      *out += "!";
      Render(vocab, inner, kLevelPrefix, tail, out);
      break;
    }
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      const bool is_and = f->kind() == FormulaKind::kAnd;
      const int self = is_and ? kLevelAnd : kLevelOr;
      for (size_t i = 0; i < f->num_children(); ++i) {
        if (i > 0) *out += is_and ? " & " : " | ";
        const bool last = i + 1 == f->num_children();
        Render(vocab, f->child(i), self + 1, tail && last, out);
      }
      break;
    }
    case FormulaKind::kImplies:
      // Right-associative.
      Render(vocab, f->child(0), kLevelImplies + 1, /*tail=*/false, out);
      *out += " -> ";
      Render(vocab, f->child(1), kLevelImplies, tail, out);
      break;
    case FormulaKind::kIff:
      Render(vocab, f->child(0), kLevelIff + 1, /*tail=*/false, out);
      *out += " <-> ";
      Render(vocab, f->child(1), kLevelIff + 1, tail, out);
      break;
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      *out += f->kind() == FormulaKind::kExists ? "exists" : "forall";
      // Collapse a run of same-kind first-order quantifiers.
      const Formula* cur = f.get();
      while (true) {
        *out += " ";
        *out += vocab.VariableName(cur->var());
        const Formula* body = cur->child().get();
        if (body->kind() == cur->kind()) {
          cur = body;
        } else {
          break;
        }
      }
      *out += ". ";
      Render(vocab, cur->child(), kLevelIff, /*tail=*/true, out);
      break;
    }
    case FormulaKind::kExistsPred:
    case FormulaKind::kForallPred: {
      *out += f->kind() == FormulaKind::kExistsPred ? "exists2" : "forall2";
      const Formula* cur = f.get();
      while (true) {
        *out += " ";
        *out += vocab.PredicateName(cur->pred());
        *out += "/";
        *out += std::to_string(vocab.PredicateArity(cur->pred()));
        const Formula* body = cur->child().get();
        if (body->kind() == cur->kind()) {
          cur = body;
        } else {
          break;
        }
      }
      *out += ". ";
      Render(vocab, cur->child(), kLevelIff, /*tail=*/true, out);
      break;
    }
  }
  if (parens) *out += ")";
}

}  // namespace

std::string PrintTerm(const Vocabulary& vocab, const Term& t) {
  if (t.is_variable()) return vocab.VariableName(t.var());
  return vocab.ConstantName(t.constant());
}

std::string PrintFormula(const Vocabulary& vocab, const FormulaPtr& f) {
  assert(f != nullptr);
  std::string out;
  Render(vocab, f, kLevelIff, /*tail=*/true, &out);
  return out;
}

}  // namespace lqdb
