#include "lqdb/logic/nnf.h"

#include <cassert>
#include <vector>

namespace lqdb {

namespace {

/// Rewrites `f` under the given polarity: the result is equivalent to `f`
/// when `positive`, and to `¬f` otherwise.
FormulaPtr Nnf(const FormulaPtr& f, bool positive) {
  switch (f->kind()) {
    case FormulaKind::kTrue:
      return positive ? Formula::True() : Formula::False();
    case FormulaKind::kFalse:
      return positive ? Formula::False() : Formula::True();
    case FormulaKind::kEquals:
    case FormulaKind::kAtom:
      return positive ? f : Formula::Not(f);
    case FormulaKind::kNot:
      return Nnf(f->child(), !positive);
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      const bool conjunctive = (f->kind() == FormulaKind::kAnd) == positive;
      std::vector<FormulaPtr> parts;
      parts.reserve(f->num_children());
      for (const auto& c : f->children()) parts.push_back(Nnf(c, positive));
      return conjunctive ? Formula::And(std::move(parts))
                         : Formula::Or(std::move(parts));
    }
    case FormulaKind::kImplies: {
      // a -> b  ==  ¬a ∨ b;  ¬(a -> b)  ==  a ∧ ¬b.
      if (positive) {
        return Formula::Or(Nnf(f->child(0), false), Nnf(f->child(1), true));
      }
      return Formula::And(Nnf(f->child(0), true), Nnf(f->child(1), false));
    }
    case FormulaKind::kIff: {
      // a <-> b  ==  (a ∧ b) ∨ (¬a ∧ ¬b);  negated: (a ∧ ¬b) ∨ (¬a ∧ b).
      FormulaPtr a_pos = Nnf(f->child(0), true);
      FormulaPtr a_neg = Nnf(f->child(0), false);
      FormulaPtr b_pos = Nnf(f->child(1), true);
      FormulaPtr b_neg = Nnf(f->child(1), false);
      if (positive) {
        return Formula::Or(Formula::And(a_pos, b_pos),
                           Formula::And(a_neg, b_neg));
      }
      return Formula::Or(Formula::And(a_pos, b_neg),
                         Formula::And(a_neg, b_pos));
    }
    case FormulaKind::kExists:
      return positive ? Formula::Exists(f->var(), Nnf(f->child(), true))
                      : Formula::Forall(f->var(), Nnf(f->child(), false));
    case FormulaKind::kForall:
      return positive ? Formula::Forall(f->var(), Nnf(f->child(), true))
                      : Formula::Exists(f->var(), Nnf(f->child(), false));
    case FormulaKind::kExistsPred:
      return positive ? Formula::ExistsPred(f->pred(), Nnf(f->child(), true))
                      : Formula::ForallPred(f->pred(), Nnf(f->child(), false));
    case FormulaKind::kForallPred:
      return positive ? Formula::ForallPred(f->pred(), Nnf(f->child(), true))
                      : Formula::ExistsPred(f->pred(), Nnf(f->child(), false));
  }
  assert(false && "unreachable");
  return nullptr;
}

}  // namespace

FormulaPtr ToNnf(const FormulaPtr& f) { return Nnf(f, /*positive=*/true); }

bool IsNnf(const FormulaPtr& f) {
  switch (f->kind()) {
    case FormulaKind::kImplies:
    case FormulaKind::kIff:
      return false;
    case FormulaKind::kNot:
      return f->child()->is_literal_target();
    default:
      for (const auto& c : f->children()) {
        if (!IsNnf(c)) return false;
      }
      return true;
  }
}

}  // namespace lqdb
