#ifndef LQDB_LOGIC_CLASSIFY_H_
#define LQDB_LOGIC_CLASSIFY_H_

#include "lqdb/logic/formula.h"
#include "lqdb/logic/query.h"

namespace lqdb {

/// True iff `f` is *positive*: every atomic subformula (atom or equality) is
/// governed by an even number of negations, counting the implicit negations
/// introduced by `->` antecedents and by `<->`. Equivalently, the NNF of `f`
/// contains no negation. Theorem 13 of the paper: the approximation
/// algorithm is complete for positive queries.
bool IsPositive(const FormulaPtr& f);

/// True iff the query body is positive.
bool IsPositive(const Query& query);

/// Shape of a quantifier prefix.
struct PrefixShape {
  /// Everything below the analyzed prefix is free of the analyzed kind of
  /// quantifier (first-order for `ClassifyFoPrefix`, second-order for
  /// `ClassifySoPrefix`).
  bool prenex = false;
  /// Number of alternating quantifier blocks in the prefix (0 when there is
  /// no quantifier of the analyzed kind).
  int blocks = 0;
  /// True when the first block is existential (meaningless if blocks == 0).
  bool starts_existential = false;
};

/// Analyzes the leading first-order quantifier prefix of `f`.
PrefixShape ClassifyFoPrefix(const FormulaPtr& f);

/// Analyzes the leading second-order quantifier prefix of `f`.
PrefixShape ClassifySoPrefix(const FormulaPtr& f);

/// True iff `f` is a prenex first-order formula in Σₖ^E — at most `k`
/// alternating quantifier blocks starting existentially (paper §4,
/// Theorems 6–7). Formulas with fewer blocks qualify.
bool InSigmaFoK(const FormulaPtr& f, int k);

/// True iff `f` is in Σ¹ₖ — a leading second-order prefix of at most `k`
/// alternating blocks starting existentially over a first-order matrix
/// (paper §4, Theorems 8–9).
bool InSigmaSoK(const FormulaPtr& f, int k);

}  // namespace lqdb

#endif  // LQDB_LOGIC_CLASSIFY_H_
