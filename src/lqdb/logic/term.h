#ifndef LQDB_LOGIC_TERM_H_
#define LQDB_LOGIC_TERM_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "lqdb/logic/vocabulary.h"

namespace lqdb {

/// A term of a relational vocabulary: an individual variable or a constant
/// symbol. (Relational vocabularies have no function symbols, §2.1.)
class Term {
 public:
  enum class Kind : uint8_t { kVariable, kConstant };

  static Term Variable(VarId v) { return Term(Kind::kVariable, v); }
  static Term Constant(ConstId c) { return Term(Kind::kConstant, c); }

  Kind kind() const { return kind_; }
  bool is_variable() const { return kind_ == Kind::kVariable; }
  bool is_constant() const { return kind_ == Kind::kConstant; }

  /// The variable id; precondition: `is_variable()`.
  VarId var() const { return id_; }
  /// The constant id; precondition: `is_constant()`.
  ConstId constant() const { return id_; }

  bool operator==(const Term& other) const {
    return kind_ == other.kind_ && id_ == other.id_;
  }
  bool operator!=(const Term& other) const { return !(*this == other); }
  bool operator<(const Term& other) const {
    if (kind_ != other.kind_) return kind_ < other.kind_;
    return id_ < other.id_;
  }

 private:
  Term(Kind kind, uint32_t id) : kind_(kind), id_(id) {}

  Kind kind_;
  uint32_t id_;
};

using TermList = std::vector<Term>;

}  // namespace lqdb

template <>
struct std::hash<lqdb::Term> {
  size_t operator()(const lqdb::Term& t) const {
    size_t h = t.is_variable() ? 0x9e3779b97f4a7c15ull : 0xc2b2ae3d27d4eb4full;
    uint32_t id = t.is_variable() ? t.var() : t.constant();
    return h ^ (std::hash<uint32_t>()(id) + (h << 6) + (h >> 2));
  }
};

#endif  // LQDB_LOGIC_TERM_H_
