#ifndef LQDB_LOGIC_QUERY_H_
#define LQDB_LOGIC_QUERY_H_

#include <string>
#include <vector>

#include "lqdb/logic/formula.h"
#include "lqdb/logic/vocabulary.h"
#include "lqdb/util/result.h"

namespace lqdb {

/// A query `(x1, ..., xk) . φ` in the sense of §2.1: a sequence of distinct
/// head variables containing all free variables of the body `φ`. A query
/// with an empty head and a sentence body is a *Boolean* query.
class Query {
 public:
  /// Validates that head variables are distinct and cover the free
  /// variables of `body`.
  static Result<Query> Make(std::vector<VarId> head, FormulaPtr body);

  /// A Boolean query `() . φ`; fails if `body` has free variables.
  static Result<Query> Boolean(FormulaPtr body) {
    return Make({}, std::move(body));
  }

  const std::vector<VarId>& head() const { return head_; }
  const FormulaPtr& body() const { return body_; }
  size_t arity() const { return head_.size(); }
  bool is_boolean() const { return head_.empty(); }

 private:
  Query(std::vector<VarId> head, FormulaPtr body)
      : head_(std::move(head)), body_(std::move(body)) {}

  std::vector<VarId> head_;
  FormulaPtr body_;
};

/// Renders a query as `(x, y) . φ` in the parseable concrete syntax.
std::string PrintQuery(const Vocabulary& vocab, const Query& query);

}  // namespace lqdb

#endif  // LQDB_LOGIC_QUERY_H_
