#ifndef LQDB_LOGIC_PRENEX_H_
#define LQDB_LOGIC_PRENEX_H_

#include "lqdb/logic/formula.h"
#include "lqdb/logic/vocabulary.h"
#include "lqdb/util/result.h"

namespace lqdb {

/// Converts a first-order formula to *prenex normal form*: a (possibly
/// empty) quantifier prefix over a quantifier-free matrix, logically
/// equivalent to the input over every interpretation.
///
/// The classes Σₖ of §4 (Theorems 6–7) are defined for prenex queries;
/// this transform makes an arbitrary first-order query classifiable by
/// `ClassifyFoPrefix` / `InSigmaFoK`.
///
/// Implementation: the formula is first brought to NNF (eliminating `->`
/// and `<->`), every bound variable is renamed to a fresh one, and
/// quantifiers are hoisted through ∧/∨ left to right. The result's prefix
/// order follows the left-to-right occurrence order of the quantifiers —
/// no prefix-minimization is attempted.
///
/// Fails with `Unimplemented` for formulas containing second-order
/// quantifiers.
Result<FormulaPtr> ToPrenex(Vocabulary* vocab, const FormulaPtr& f);

}  // namespace lqdb

#endif  // LQDB_LOGIC_PRENEX_H_
