#ifndef LQDB_LOGIC_FORMULA_H_
#define LQDB_LOGIC_FORMULA_H_

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "lqdb/logic/term.h"

namespace lqdb {

/// Node discriminator for `Formula`.
enum class FormulaKind : uint8_t {
  kTrue,        ///< The constant true.
  kFalse,       ///< The constant false.
  kEquals,      ///< t1 = t2.
  kAtom,        ///< P(t1, ..., tk).
  kNot,         ///< ¬φ.
  kAnd,         ///< φ1 ∧ ... ∧ φn (n-ary, n ≥ 2 after construction).
  kOr,          ///< φ1 ∨ ... ∨ φn.
  kImplies,     ///< φ → ψ.
  kIff,         ///< φ ↔ ψ.
  kExists,      ///< ∃x φ (first-order).
  kForall,      ///< ∀x φ (first-order).
  kExistsPred,  ///< ∃P φ (second-order, P a predicate variable).
  kForallPred,  ///< ∀P φ (second-order).
};

class Formula;
/// Formulas are immutable and shared; sub-formulas may appear in several
/// trees (the transforms in approx/ exploit this heavily).
using FormulaPtr = std::shared_ptr<const Formula>;

/// An abstract-syntax node of first- or second-order relational logic over
/// some `Vocabulary`. Nodes refer to symbols only by id, so a formula is
/// meaningful relative to the vocabulary it was built against.
///
/// Construction goes through the static factories, which perform light
/// normalization: n-ary ∧/∨ are flattened, and the 0-/1-ary cases collapse
/// to `True()`/`False()`/the sole child.
class Formula {
 public:
  static FormulaPtr True();
  static FormulaPtr False();
  static FormulaPtr Equals(Term lhs, Term rhs);
  static FormulaPtr Atom(PredId pred, TermList args);
  static FormulaPtr Not(FormulaPtr f);
  static FormulaPtr And(std::vector<FormulaPtr> fs);
  static FormulaPtr Or(std::vector<FormulaPtr> fs);
  static FormulaPtr And(FormulaPtr a, FormulaPtr b);
  static FormulaPtr Or(FormulaPtr a, FormulaPtr b);
  static FormulaPtr Implies(FormulaPtr lhs, FormulaPtr rhs);
  static FormulaPtr Iff(FormulaPtr lhs, FormulaPtr rhs);
  static FormulaPtr Exists(VarId var, FormulaPtr body);
  static FormulaPtr Forall(VarId var, FormulaPtr body);
  /// Sugar: nest one first-order quantifier per variable, left-to-right.
  static FormulaPtr Exists(const std::vector<VarId>& vars, FormulaPtr body);
  static FormulaPtr Forall(const std::vector<VarId>& vars, FormulaPtr body);
  static FormulaPtr ExistsPred(PredId pred, FormulaPtr body);
  static FormulaPtr ForallPred(PredId pred, FormulaPtr body);
  static FormulaPtr ExistsPred(const std::vector<PredId>& preds,
                               FormulaPtr body);
  static FormulaPtr ForallPred(const std::vector<PredId>& preds,
                               FormulaPtr body);

  FormulaKind kind() const { return kind_; }

  /// Terms of a `kEquals` (exactly two) or `kAtom` node.
  const TermList& terms() const { return terms_; }
  /// Predicate id of a `kAtom`, `kExistsPred` or `kForallPred` node.
  PredId pred() const { return pred_; }
  /// Bound variable of a `kExists`/`kForall` node.
  VarId var() const { return var_; }

  const std::vector<FormulaPtr>& children() const { return children_; }
  const FormulaPtr& child(size_t i = 0) const { return children_[i]; }
  size_t num_children() const { return children_.size(); }

  bool is_quantifier() const {
    return kind_ == FormulaKind::kExists || kind_ == FormulaKind::kForall ||
           kind_ == FormulaKind::kExistsPred ||
           kind_ == FormulaKind::kForallPred;
  }
  bool is_second_order_quantifier() const {
    return kind_ == FormulaKind::kExistsPred ||
           kind_ == FormulaKind::kForallPred;
  }
  bool is_literal_target() const {
    return kind_ == FormulaKind::kEquals || kind_ == FormulaKind::kAtom;
  }

 protected:
  explicit Formula(FormulaKind kind) : kind_(kind), pred_(0), var_(0) {}

 private:
  FormulaKind kind_;
  PredId pred_;
  VarId var_;
  TermList terms_;
  std::vector<FormulaPtr> children_;
};

/// Structural equality (same shape, same symbol ids). Bound variables are
/// *not* matched up to renaming.
bool StructurallyEqual(const FormulaPtr& a, const FormulaPtr& b);

/// The set of variables with a free occurrence in `f`.
std::set<VarId> FreeVariables(const FormulaPtr& f);

/// The set of predicate symbols occurring in `f` that are not bound by an
/// enclosing second-order quantifier.
std::set<PredId> FreePredicates(const FormulaPtr& f);

/// The set of constant symbols occurring anywhere in `f`.
std::set<ConstId> ConstantsOf(const FormulaPtr& f);

/// Number of AST nodes (used to verify the O(k log k) bound of Lemma 10).
size_t FormulaSize(const FormulaPtr& f);

/// True iff `f` contains no second-order quantifier.
bool IsFirstOrder(const FormulaPtr& f);

}  // namespace lqdb

#endif  // LQDB_LOGIC_FORMULA_H_
