#ifndef LQDB_LOGIC_VOCABULARY_H_
#define LQDB_LOGIC_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "lqdb/util/interner.h"
#include "lqdb/util/result.h"
#include "lqdb/util/status.h"

namespace lqdb {

/// Dense id of a constant symbol within a vocabulary.
using ConstId = uint32_t;
/// Dense id of a predicate symbol within a vocabulary.
using PredId = uint32_t;
/// Dense id of an individual variable within a vocabulary.
using VarId = uint32_t;

/// A relational vocabulary `L` in the sense of §2.1 of the paper: finitely
/// many constant symbols and finitely many predicate symbols with fixed
/// arities (equality is built into the logic and is not listed here), plus
/// an interning table for individual variables used by formulas over `L`.
///
/// Predicate symbols may be marked *auxiliary*: they belong to the extended
/// languages of §3.2/§5 (e.g. `NE`, `H`, the primed copies `P'`) or serve as
/// second-order quantified predicate variables, and are not part of the
/// stored database schema.
class Vocabulary {
 public:
  static constexpr uint32_t kNotFound = Interner::kNotFound;

  /// Interns a constant symbol, returning its id (idempotent).
  ConstId AddConstant(std::string_view name) {
    return constants_.Intern(name);
  }

  /// Adds a predicate symbol with the given arity. Fails with
  /// `AlreadyExists` if the name is taken with a different arity; re-adding
  /// with the same arity returns the existing id.
  Result<PredId> AddPredicate(std::string_view name, int arity) {
    return AddPredicateImpl(name, arity, /*auxiliary=*/false);
  }

  /// Adds an auxiliary predicate symbol (see class comment).
  Result<PredId> AddAuxiliaryPredicate(std::string_view name, int arity) {
    return AddPredicateImpl(name, arity, /*auxiliary=*/true);
  }

  /// Interns a variable name, returning its id (idempotent).
  VarId AddVariable(std::string_view name) { return variables_.Intern(name); }

  /// Returns a variable id whose name does not clash with any existing
  /// variable; `hint` seeds the generated name.
  VarId FreshVariable(std::string_view hint);

  ConstId FindConstant(std::string_view name) const {
    return constants_.Find(name);
  }
  PredId FindPredicate(std::string_view name) const {
    return predicate_names_.Find(name);
  }
  VarId FindVariable(std::string_view name) const {
    return variables_.Find(name);
  }

  const std::string& ConstantName(ConstId id) const {
    return constants_.NameOf(id);
  }
  const std::string& PredicateName(PredId id) const {
    return predicate_names_.NameOf(id);
  }
  const std::string& VariableName(VarId id) const {
    return variables_.NameOf(id);
  }

  int PredicateArity(PredId id) const { return arities_[id]; }
  bool IsAuxiliary(PredId id) const { return auxiliary_[id]; }

  size_t num_constants() const { return constants_.size(); }
  size_t num_predicates() const { return predicate_names_.size(); }
  size_t num_variables() const { return variables_.size(); }

  /// All non-auxiliary predicate ids, in id order (the schema of `L`).
  std::vector<PredId> SchemaPredicates() const;

 private:
  Result<PredId> AddPredicateImpl(std::string_view name, int arity,
                                  bool auxiliary);

  Interner constants_;
  Interner predicate_names_;
  Interner variables_;
  std::vector<int> arities_;       // indexed by PredId
  std::vector<bool> auxiliary_;    // indexed by PredId
};

}  // namespace lqdb

#endif  // LQDB_LOGIC_VOCABULARY_H_
