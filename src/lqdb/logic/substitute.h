#ifndef LQDB_LOGIC_SUBSTITUTE_H_
#define LQDB_LOGIC_SUBSTITUTE_H_

#include <map>

#include "lqdb/logic/formula.h"
#include "lqdb/logic/vocabulary.h"

namespace lqdb {

/// A simultaneous substitution of terms for variables.
using Substitution = std::map<VarId, Term>;

/// Replaces free occurrences of each mapped variable in `f` by its term,
/// renaming bound variables (with fresh names interned into `vocab`) where
/// needed to avoid variable capture.
FormulaPtr Substitute(Vocabulary* vocab, const FormulaPtr& f,
                      const Substitution& subst);

/// Applies `subst` to a single term.
Term SubstituteTerm(const Term& t, const Substitution& subst);

/// Replaces every atom `P(t...)` whose predicate is mapped by `map` with
/// `map[P](t...)` (arity must agree). Second-order quantifiers *binding* a
/// mapped predicate shadow the replacement inside their scope, mirroring
/// variable shadowing in `Substitute`.
FormulaPtr ReplacePredicates(const FormulaPtr& f,
                             const std::map<PredId, PredId>& map);

}  // namespace lqdb

#endif  // LQDB_LOGIC_SUBSTITUTE_H_
