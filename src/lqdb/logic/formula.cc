#include "lqdb/logic/formula.h"

#include <cassert>

namespace lqdb {

namespace {

// Formula's constructor is protected so clients must go through the
// factories; this local subclass reopens it for this translation unit only.
std::shared_ptr<Formula> NewNode(FormulaKind kind) {
  struct Helper : Formula {
    explicit Helper(FormulaKind k) : Formula(k) {}
  };
  return std::make_shared<Helper>(kind);
}

}  // namespace

FormulaPtr Formula::True() {
  static const FormulaPtr kTrue = NewNode(FormulaKind::kTrue);
  return kTrue;
}

FormulaPtr Formula::False() {
  static const FormulaPtr kFalse = NewNode(FormulaKind::kFalse);
  return kFalse;
}

FormulaPtr Formula::Equals(Term lhs, Term rhs) {
  auto node = NewNode(FormulaKind::kEquals);
  node->terms_ = {lhs, rhs};
  return node;
}

FormulaPtr Formula::Atom(PredId pred, TermList args) {
  auto node = NewNode(FormulaKind::kAtom);
  node->pred_ = pred;
  node->terms_ = std::move(args);
  return node;
}

FormulaPtr Formula::Not(FormulaPtr f) {
  assert(f != nullptr);
  auto node = NewNode(FormulaKind::kNot);
  node->children_ = {std::move(f)};
  return node;
}

FormulaPtr Formula::And(std::vector<FormulaPtr> fs) {
  std::vector<FormulaPtr> flat;
  for (auto& f : fs) {
    assert(f != nullptr);
    if (f->kind() == FormulaKind::kTrue) continue;
    if (f->kind() == FormulaKind::kAnd) {
      flat.insert(flat.end(), f->children().begin(), f->children().end());
    } else {
      flat.push_back(std::move(f));
    }
  }
  if (flat.empty()) return True();
  if (flat.size() == 1) return flat[0];
  auto node = NewNode(FormulaKind::kAnd);
  node->children_ = std::move(flat);
  return node;
}

FormulaPtr Formula::Or(std::vector<FormulaPtr> fs) {
  std::vector<FormulaPtr> flat;
  for (auto& f : fs) {
    assert(f != nullptr);
    if (f->kind() == FormulaKind::kFalse) continue;
    if (f->kind() == FormulaKind::kOr) {
      flat.insert(flat.end(), f->children().begin(), f->children().end());
    } else {
      flat.push_back(std::move(f));
    }
  }
  if (flat.empty()) return False();
  if (flat.size() == 1) return flat[0];
  auto node = NewNode(FormulaKind::kOr);
  node->children_ = std::move(flat);
  return node;
}

FormulaPtr Formula::And(FormulaPtr a, FormulaPtr b) {
  std::vector<FormulaPtr> fs;
  fs.push_back(std::move(a));
  fs.push_back(std::move(b));
  return And(std::move(fs));
}

FormulaPtr Formula::Or(FormulaPtr a, FormulaPtr b) {
  std::vector<FormulaPtr> fs;
  fs.push_back(std::move(a));
  fs.push_back(std::move(b));
  return Or(std::move(fs));
}

FormulaPtr Formula::Implies(FormulaPtr lhs, FormulaPtr rhs) {
  assert(lhs != nullptr && rhs != nullptr);
  auto node = NewNode(FormulaKind::kImplies);
  node->children_ = {std::move(lhs), std::move(rhs)};
  return node;
}

FormulaPtr Formula::Iff(FormulaPtr lhs, FormulaPtr rhs) {
  assert(lhs != nullptr && rhs != nullptr);
  auto node = NewNode(FormulaKind::kIff);
  node->children_ = {std::move(lhs), std::move(rhs)};
  return node;
}

FormulaPtr Formula::Exists(VarId var, FormulaPtr body) {
  assert(body != nullptr);
  auto node = NewNode(FormulaKind::kExists);
  node->var_ = var;
  node->children_ = {std::move(body)};
  return node;
}

FormulaPtr Formula::Forall(VarId var, FormulaPtr body) {
  assert(body != nullptr);
  auto node = NewNode(FormulaKind::kForall);
  node->var_ = var;
  node->children_ = {std::move(body)};
  return node;
}

FormulaPtr Formula::Exists(const std::vector<VarId>& vars, FormulaPtr body) {
  for (auto it = vars.rbegin(); it != vars.rend(); ++it) {
    body = Exists(*it, std::move(body));
  }
  return body;
}

FormulaPtr Formula::Forall(const std::vector<VarId>& vars, FormulaPtr body) {
  for (auto it = vars.rbegin(); it != vars.rend(); ++it) {
    body = Forall(*it, std::move(body));
  }
  return body;
}

FormulaPtr Formula::ExistsPred(PredId pred, FormulaPtr body) {
  assert(body != nullptr);
  auto node = NewNode(FormulaKind::kExistsPred);
  node->pred_ = pred;
  node->children_ = {std::move(body)};
  return node;
}

FormulaPtr Formula::ForallPred(PredId pred, FormulaPtr body) {
  assert(body != nullptr);
  auto node = NewNode(FormulaKind::kForallPred);
  node->pred_ = pred;
  node->children_ = {std::move(body)};
  return node;
}

FormulaPtr Formula::ExistsPred(const std::vector<PredId>& preds,
                               FormulaPtr body) {
  for (auto it = preds.rbegin(); it != preds.rend(); ++it) {
    body = ExistsPred(*it, std::move(body));
  }
  return body;
}

FormulaPtr Formula::ForallPred(const std::vector<PredId>& preds,
                               FormulaPtr body) {
  for (auto it = preds.rbegin(); it != preds.rend(); ++it) {
    body = ForallPred(*it, std::move(body));
  }
  return body;
}

bool StructurallyEqual(const FormulaPtr& a, const FormulaPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->kind() != b->kind()) return false;
  switch (a->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return true;
    case FormulaKind::kEquals:
      return a->terms() == b->terms();
    case FormulaKind::kAtom:
      return a->pred() == b->pred() && a->terms() == b->terms();
    case FormulaKind::kExists:
    case FormulaKind::kForall:
      if (a->var() != b->var()) return false;
      break;
    case FormulaKind::kExistsPred:
    case FormulaKind::kForallPred:
      if (a->pred() != b->pred()) return false;
      break;
    default:
      break;
  }
  if (a->num_children() != b->num_children()) return false;
  for (size_t i = 0; i < a->num_children(); ++i) {
    if (!StructurallyEqual(a->child(i), b->child(i))) return false;
  }
  return true;
}

namespace {

void CollectFreeVariables(const FormulaPtr& f, std::set<VarId>* bound,
                          std::set<VarId>* out) {
  switch (f->kind()) {
    case FormulaKind::kEquals:
    case FormulaKind::kAtom:
      for (const Term& t : f->terms()) {
        if (t.is_variable() && bound->count(t.var()) == 0) {
          out->insert(t.var());
        }
      }
      return;
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      bool was_bound = bound->count(f->var()) > 0;
      bound->insert(f->var());
      CollectFreeVariables(f->child(), bound, out);
      if (!was_bound) bound->erase(f->var());
      return;
    }
    default:
      for (const auto& c : f->children()) CollectFreeVariables(c, bound, out);
      return;
  }
}

void CollectFreePredicates(const FormulaPtr& f, std::set<PredId>* bound,
                           std::set<PredId>* out) {
  switch (f->kind()) {
    case FormulaKind::kAtom:
      if (bound->count(f->pred()) == 0) out->insert(f->pred());
      return;
    case FormulaKind::kExistsPred:
    case FormulaKind::kForallPred: {
      bool was_bound = bound->count(f->pred()) > 0;
      bound->insert(f->pred());
      CollectFreePredicates(f->child(), bound, out);
      if (!was_bound) bound->erase(f->pred());
      return;
    }
    default:
      for (const auto& c : f->children()) CollectFreePredicates(c, bound, out);
      return;
  }
}

}  // namespace

std::set<VarId> FreeVariables(const FormulaPtr& f) {
  std::set<VarId> bound, out;
  CollectFreeVariables(f, &bound, &out);
  return out;
}

std::set<PredId> FreePredicates(const FormulaPtr& f) {
  std::set<PredId> bound, out;
  CollectFreePredicates(f, &bound, &out);
  return out;
}

std::set<ConstId> ConstantsOf(const FormulaPtr& f) {
  std::set<ConstId> out;
  std::vector<const Formula*> stack = {f.get()};
  while (!stack.empty()) {
    const Formula* cur = stack.back();
    stack.pop_back();
    for (const Term& t : cur->terms()) {
      if (t.is_constant()) out.insert(t.constant());
    }
    for (const auto& c : cur->children()) stack.push_back(c.get());
  }
  return out;
}

size_t FormulaSize(const FormulaPtr& f) {
  size_t n = 1;
  for (const auto& c : f->children()) n += FormulaSize(c);
  return n;
}

bool IsFirstOrder(const FormulaPtr& f) {
  if (f->is_second_order_quantifier()) return false;
  for (const auto& c : f->children()) {
    if (!IsFirstOrder(c)) return false;
  }
  return true;
}

}  // namespace lqdb
