#include "lqdb/logic/query.h"

#include <set>

#include "lqdb/logic/printer.h"

namespace lqdb {

Result<Query> Query::Make(std::vector<VarId> head, FormulaPtr body) {
  if (body == nullptr) {
    return Status::InvalidArgument("query body must not be null");
  }
  std::set<VarId> seen;
  for (VarId v : head) {
    if (!seen.insert(v).second) {
      return Status::InvalidArgument("query head variables must be distinct");
    }
  }
  for (VarId v : FreeVariables(body)) {
    if (seen.count(v) == 0) {
      return Status::InvalidArgument(
          "free variable of the query body is missing from the head");
    }
  }
  return Query(std::move(head), std::move(body));
}

std::string PrintQuery(const Vocabulary& vocab, const Query& query) {
  std::string out = "(";
  for (size_t i = 0; i < query.head().size(); ++i) {
    if (i > 0) out += ", ";
    out += vocab.VariableName(query.head()[i]);
  }
  out += ") . ";
  out += PrintFormula(vocab, query.body());
  return out;
}

}  // namespace lqdb
