#ifndef LQDB_LOGIC_BUILDER_H_
#define LQDB_LOGIC_BUILDER_H_

#include <string_view>

#include "lqdb/logic/formula.h"
#include "lqdb/logic/vocabulary.h"

namespace lqdb {

/// Ergonomic facade for constructing formulas by symbol *name* against a
/// vocabulary. Intended for tests, examples and internal transforms where
/// inputs are trusted; misuse (e.g. arity mismatch) trips an assertion.
/// Untrusted textual input should go through `ParseFormula` instead, which
/// reports errors as `Status`.
class FormulaBuilder {
 public:
  /// The builder borrows `vocab` and interns any new names into it.
  explicit FormulaBuilder(Vocabulary* vocab) : vocab_(vocab) {}

  /// A variable term named `name` (interned on first use).
  Term V(std::string_view name) {
    return Term::Variable(vocab_->AddVariable(name));
  }
  /// A constant term named `name` (interned on first use).
  Term C(std::string_view name) {
    return Term::Constant(vocab_->AddConstant(name));
  }
  VarId Var(std::string_view name) { return vocab_->AddVariable(name); }

  /// P(args...); declares `pred` with arity = args.size() on first use and
  /// asserts the arity matches on later uses.
  FormulaPtr Atom(std::string_view pred, TermList args);

  FormulaPtr Eq(Term lhs, Term rhs) { return Formula::Equals(lhs, rhs); }
  /// Sugar for ¬(lhs = rhs).
  FormulaPtr Neq(Term lhs, Term rhs) {
    return Formula::Not(Formula::Equals(lhs, rhs));
  }

  FormulaPtr Not(FormulaPtr f) { return Formula::Not(std::move(f)); }
  FormulaPtr And(std::vector<FormulaPtr> fs) {
    return Formula::And(std::move(fs));
  }
  FormulaPtr Or(std::vector<FormulaPtr> fs) {
    return Formula::Or(std::move(fs));
  }
  FormulaPtr Implies(FormulaPtr a, FormulaPtr b) {
    return Formula::Implies(std::move(a), std::move(b));
  }
  FormulaPtr Iff(FormulaPtr a, FormulaPtr b) {
    return Formula::Iff(std::move(a), std::move(b));
  }

  FormulaPtr Exists(std::string_view var, FormulaPtr body) {
    return Formula::Exists(vocab_->AddVariable(var), std::move(body));
  }
  FormulaPtr Forall(std::string_view var, FormulaPtr body) {
    return Formula::Forall(vocab_->AddVariable(var), std::move(body));
  }
  FormulaPtr Exists(std::initializer_list<std::string_view> vars,
                    FormulaPtr body);
  FormulaPtr Forall(std::initializer_list<std::string_view> vars,
                    FormulaPtr body);

  /// Second-order quantification over predicate variable `pred` of `arity`.
  FormulaPtr ExistsPred(std::string_view pred, int arity, FormulaPtr body);
  FormulaPtr ForallPred(std::string_view pred, int arity, FormulaPtr body);

  Vocabulary* vocab() { return vocab_; }

 private:
  Vocabulary* vocab_;
};

}  // namespace lqdb

#endif  // LQDB_LOGIC_BUILDER_H_
