#include "lqdb/logic/substitute.h"

#include <cassert>
#include <vector>

namespace lqdb {

Term SubstituteTerm(const Term& t, const Substitution& subst) {
  if (t.is_variable()) {
    auto it = subst.find(t.var());
    if (it != subst.end()) return it->second;
  }
  return t;
}

namespace {

FormulaPtr SubstituteImpl(Vocabulary* vocab, const FormulaPtr& f,
                          const Substitution& subst) {
  if (subst.empty()) return f;
  switch (f->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return f;
    case FormulaKind::kEquals:
      return Formula::Equals(SubstituteTerm(f->terms()[0], subst),
                             SubstituteTerm(f->terms()[1], subst));
    case FormulaKind::kAtom: {
      TermList args;
      args.reserve(f->terms().size());
      for (const Term& t : f->terms()) args.push_back(SubstituteTerm(t, subst));
      return Formula::Atom(f->pred(), std::move(args));
    }
    case FormulaKind::kNot:
      return Formula::Not(SubstituteImpl(vocab, f->child(), subst));
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      std::vector<FormulaPtr> parts;
      parts.reserve(f->num_children());
      for (const auto& c : f->children()) {
        parts.push_back(SubstituteImpl(vocab, c, subst));
      }
      return f->kind() == FormulaKind::kAnd ? Formula::And(std::move(parts))
                                            : Formula::Or(std::move(parts));
    }
    case FormulaKind::kImplies:
      return Formula::Implies(SubstituteImpl(vocab, f->child(0), subst),
                              SubstituteImpl(vocab, f->child(1), subst));
    case FormulaKind::kIff:
      return Formula::Iff(SubstituteImpl(vocab, f->child(0), subst),
                          SubstituteImpl(vocab, f->child(1), subst));
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      VarId bound = f->var();
      Substitution inner = subst;
      inner.erase(bound);
      // Rename the bound variable if any replacement term mentions it.
      bool capture = false;
      for (const auto& [from, to] : inner) {
        (void)from;
        if (to.is_variable() && to.var() == bound) {
          capture = true;
          break;
        }
      }
      FormulaPtr body = f->child();
      if (capture) {
        VarId fresh = vocab->FreshVariable(vocab->VariableName(bound));
        Substitution rename{{bound, Term::Variable(fresh)}};
        body = SubstituteImpl(vocab, body, rename);
        bound = fresh;
      }
      FormulaPtr new_body =
          inner.empty() ? body : SubstituteImpl(vocab, body, inner);
      return f->kind() == FormulaKind::kExists
                 ? Formula::Exists(bound, std::move(new_body))
                 : Formula::Forall(bound, std::move(new_body));
    }
    case FormulaKind::kExistsPred:
      return Formula::ExistsPred(f->pred(),
                                 SubstituteImpl(vocab, f->child(), subst));
    case FormulaKind::kForallPred:
      return Formula::ForallPred(f->pred(),
                                 SubstituteImpl(vocab, f->child(), subst));
  }
  assert(false && "unreachable");
  return nullptr;
}

}  // namespace

FormulaPtr Substitute(Vocabulary* vocab, const FormulaPtr& f,
                      const Substitution& subst) {
  return SubstituteImpl(vocab, f, subst);
}

FormulaPtr ReplacePredicates(const FormulaPtr& f,
                             const std::map<PredId, PredId>& map) {
  if (map.empty()) return f;
  switch (f->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
    case FormulaKind::kEquals:
      return f;
    case FormulaKind::kAtom: {
      auto it = map.find(f->pred());
      if (it == map.end()) return f;
      return Formula::Atom(it->second, f->terms());
    }
    case FormulaKind::kNot:
      return Formula::Not(ReplacePredicates(f->child(), map));
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      std::vector<FormulaPtr> parts;
      parts.reserve(f->num_children());
      for (const auto& c : f->children()) {
        parts.push_back(ReplacePredicates(c, map));
      }
      return f->kind() == FormulaKind::kAnd ? Formula::And(std::move(parts))
                                            : Formula::Or(std::move(parts));
    }
    case FormulaKind::kImplies:
      return Formula::Implies(ReplacePredicates(f->child(0), map),
                              ReplacePredicates(f->child(1), map));
    case FormulaKind::kIff:
      return Formula::Iff(ReplacePredicates(f->child(0), map),
                          ReplacePredicates(f->child(1), map));
    case FormulaKind::kExists:
      return Formula::Exists(f->var(), ReplacePredicates(f->child(), map));
    case FormulaKind::kForall:
      return Formula::Forall(f->var(), ReplacePredicates(f->child(), map));
    case FormulaKind::kExistsPred:
    case FormulaKind::kForallPred: {
      // A second-order binder shadows replacement of the bound predicate.
      std::map<PredId, PredId> inner = map;
      inner.erase(f->pred());
      FormulaPtr body = ReplacePredicates(f->child(), inner);
      return f->kind() == FormulaKind::kExistsPred
                 ? Formula::ExistsPred(f->pred(), std::move(body))
                 : Formula::ForallPred(f->pred(), std::move(body));
    }
  }
  assert(false && "unreachable");
  return nullptr;
}

}  // namespace lqdb
