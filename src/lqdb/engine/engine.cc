#include "lqdb/engine/engine.h"

namespace lqdb {

Result<Relation> QueryEngine::PossibleAnswer(const Query& query) {
  (void)query;
  return Status::Unimplemented("engine '" + name() +
                               "' does not answer possibility queries");
}

Result<Relation> QueryEngine::AnswerBound(const BoundQuery& bound) {
  return Answer(bound.query());
}

Result<Relation> QueryEngine::PossibleAnswerBound(const BoundQuery& bound) {
  return PossibleAnswer(bound.query());
}

EngineRegistry& EngineRegistry::Global() {
  static EngineRegistry* registry = [] {
    auto* r = new EngineRegistry();
    RegisterBuiltinEngines(r);
    return r;
  }();
  return *registry;
}

Status EngineRegistry::Register(std::string name,
                                EngineCapabilities capabilities,
                                EngineFactory factory) {
  if (name.empty()) {
    return Status::InvalidArgument("engine name must be nonempty");
  }
  if (factory == nullptr) {
    return Status::InvalidArgument("engine factory must be callable");
  }
  auto [it, inserted] = entries_.emplace(
      std::move(name), Entry{capabilities, std::move(factory)});
  if (!inserted) {
    return Status::AlreadyExists("engine '" + it->first +
                                 "' is already registered");
  }
  return Status::OK();
}

bool EngineRegistry::Has(std::string_view name) const {
  return entries_.find(name) != entries_.end();
}

std::vector<std::string> EngineRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    (void)entry;
    names.push_back(name);
  }
  return names;  // std::map iterates in sorted order
}

Result<EngineCapabilities> EngineRegistry::CapabilitiesOf(
    std::string_view name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("no engine named '" + std::string(name) + "'");
  }
  return it->second.capabilities;
}

Result<std::unique_ptr<QueryEngine>> EngineRegistry::Create(
    std::string_view name, CwDatabase* lb,
    const EngineOptions& options) const {
  if (lb == nullptr) {
    return Status::InvalidArgument("database must be non-null");
  }
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    std::string known;
    for (const std::string& n : Names()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    return Status::NotFound("no engine named '" + std::string(name) +
                            "' (registered: " + known + ")");
  }
  return it->second.factory(lb, options);
}

}  // namespace lqdb
