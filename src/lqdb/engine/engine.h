#ifndef LQDB_ENGINE_ENGINE_H_
#define LQDB_ENGINE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "lqdb/approx/approx.h"
#include "lqdb/cwdb/cw_database.h"
#include "lqdb/eval/bound_query.h"
#include "lqdb/exact/brute.h"
#include "lqdb/exact/exact.h"
#include "lqdb/exact/parallel.h"
#include "lqdb/logic/query.h"
#include "lqdb/relational/relation.h"
#include "lqdb/util/result.h"

namespace lqdb {

/// What a query engine promises about its answers, relative to the certain
/// answer `Q(LB)` of §2.1. The differential harness derives its agreement
/// obligations from these flags: two `sound && complete` engines must agree
/// exactly; a sound engine's answer must be ⊆ every exact engine's.
struct EngineCapabilities {
  /// Every returned tuple is in the certain answer (no false positives).
  bool sound = false;
  /// Every certain-answer tuple is returned (no false negatives).
  bool complete = false;
  /// Polynomial data complexity (the §5 approximation; Theorem 14) as
  /// opposed to the co-NP Theorem 1 enumeration.
  bool polynomial = false;
  /// `PossibleAnswer` is implemented.
  bool supports_possible = false;
  /// Constructing (or running) the engine mutates the database — the §5
  /// approximation interns `NE` and α predicates and snapshots `Ph₂` at
  /// construction. The service layer serializes such engines behind an
  /// exclusive database lock and rebuilds them per execution so they never
  /// answer from a stale snapshot.
  bool mutates_database = false;

  /// Sound and complete: computes exactly `Q(LB)`.
  bool exact() const { return sound && complete; }
};

/// Per-engine construction knobs, a superset of every builtin engine's
/// options — each factory picks out what it understands. Keeping one bag
/// (instead of per-engine variants) is what lets the shell, the benches and
/// the differential harness configure any engine by name.
struct EngineOptions {
  ExactOptions exact;
  BruteOptions brute;
  ApproxOptions approx;
  /// Worker threads for parallel engines; 0 means hardware concurrency.
  int threads = 0;
};

/// A query evaluation strategy over one CW logical database. Engines are
/// created per database via `EngineRegistry::Create` and borrow the
/// database, which must outlive them.
class QueryEngine {
 public:
  virtual ~QueryEngine() = default;

  /// The registry key this engine was created under.
  virtual const std::string& name() const = 0;

  virtual const EngineCapabilities& capabilities() const = 0;

  /// The engine's answer to `query` — a relation over the constants `C`.
  virtual Result<Relation> Answer(const Query& query) = 0;

  /// `Answer` over a pre-bound query — the prepared-statement path used by
  /// the service layer. The binding (and the query it borrows) must outlive
  /// the call and is only read. The default re-enters `Answer` on the
  /// underlying query; Theorem 1 engines override it to skip re-binding
  /// (and, for ra-exact, re-compiling).
  virtual Result<Relation> AnswerBound(const BoundQuery& bound);

  /// `PossibleAnswer` over a pre-bound query (see `AnswerBound`).
  virtual Result<Relation> PossibleAnswerBound(const BoundQuery& bound);

  /// Membership of one candidate tuple in the engine's answer.
  virtual Result<bool> Contains(const Query& query,
                                const Tuple& candidate) = 0;

  /// Tuples holding in at least one model of the theory. `Unimplemented`
  /// unless `capabilities().supports_possible`.
  virtual Result<Relation> PossibleAnswer(const Query& query);

  /// Mappings examined by the most recent call for Theorem 1 engines; 0
  /// for engines that do not enumerate mappings.
  virtual uint64_t last_mappings_examined() const { return 0; }

  /// Kernel-memo counters of the most recent call (eval/kernel_memo.h);
  /// zeros for engines without memoization or with the memo disabled.
  virtual KernelMemoCounters last_memo_counters() const { return {}; }
};

/// Builds an engine over `lb`. Factories may mutate the database's
/// vocabulary (the §5 approximation extends it with `NE` and α predicates)
/// and may fail (e.g. on queries the configuration cannot support).
using EngineFactory = std::function<Result<std::unique_ptr<QueryEngine>>(
    CwDatabase* lb, const EngineOptions& options)>;

/// A string-keyed registry of engine factories. The builtin engines
/// ("brute", "exact", "parallel-exact", "ra-exact", "approx", "physical")
/// are registered on first access of `Global()`; libraries and tests may
/// register more — a registered engine is automatically reachable from the
/// shell (`set engine NAME`), the benches and the differential harness.
class EngineRegistry {
 public:
  /// The process-wide registry, with builtins pre-registered. Thread-safe
  /// to read after initialization; registration is not synchronized and
  /// should happen at startup.
  static EngineRegistry& Global();

  /// Registers a factory under `name`; fails with `AlreadyExists` when the
  /// key is taken.
  Status Register(std::string name, EngineCapabilities capabilities,
                  EngineFactory factory);

  bool Has(std::string_view name) const;

  /// Registered names in sorted order.
  std::vector<std::string> Names() const;

  /// Capability flags of a registered engine (without building one).
  Result<EngineCapabilities> CapabilitiesOf(std::string_view name) const;

  /// Instantiates the named engine over `lb`; `NotFound` for unknown names.
  Result<std::unique_ptr<QueryEngine>> Create(
      std::string_view name, CwDatabase* lb,
      const EngineOptions& options = {}) const;

 private:
  struct Entry {
    EngineCapabilities capabilities;
    EngineFactory factory;
  };
  std::map<std::string, Entry, std::less<>> entries_;
};

/// Registers the builtin engines into `registry` (idempotent per registry;
/// called by `EngineRegistry::Global()`):
///
///   - "brute"          — all mappings `h : C → C` (Theorem 1 literally)
///   - "exact"          — canonical kernel-partition enumeration
///   - "parallel-exact" — canonical enumeration fanned across threads
///   - "ra-exact"       — canonical enumeration with the per-image check
///                        compiled to a cached relational-algebra plan
///                        (first-order fragment; falls back to the batched
///                        evaluator for second-order queries)
///   - "approx"         — the §5 sound polynomial approximation
///   - "physical"       — naive evaluation over `Ph₁` (ignores nulls;
///                        neither sound nor complete — a baseline)
void RegisterBuiltinEngines(EngineRegistry* registry);

}  // namespace lqdb

#endif  // LQDB_ENGINE_ENGINE_H_
