// The builtin engine adapters: thin QueryEngine shims over the concrete
// evaluators, so every evaluation strategy in the library is reachable
// through one string-keyed API (shell, benches, differential harness).
#include <utility>

#include "lqdb/cwdb/ph.h"
#include "lqdb/engine/engine.h"
#include "lqdb/eval/evaluator.h"
#include "lqdb/exact/ra_exact.h"

namespace lqdb {
namespace {

/// Common name/capability plumbing for the adapters below.
class EngineBase : public QueryEngine {
 public:
  EngineBase(std::string name, EngineCapabilities capabilities)
      : name_(std::move(name)), capabilities_(capabilities) {}

  const std::string& name() const override { return name_; }
  const EngineCapabilities& capabilities() const override {
    return capabilities_;
  }

 private:
  std::string name_;
  EngineCapabilities capabilities_;
};

class BruteEngine : public EngineBase {
 public:
  BruteEngine(std::string name, EngineCapabilities caps, const CwDatabase* lb,
              const BruteOptions& options)
      : EngineBase(std::move(name), caps), impl_(lb, options) {}

  Result<Relation> Answer(const Query& query) override {
    return impl_.Answer(query);
  }
  Result<bool> Contains(const Query& query, const Tuple& candidate) override {
    return impl_.Contains(query, candidate);
  }
  uint64_t last_mappings_examined() const override {
    return impl_.last_mappings_examined();
  }
  KernelMemoCounters last_memo_counters() const override {
    return impl_.last_memo_counters();
  }

 private:
  BruteForceEvaluator impl_;
};

class ExactEngine : public EngineBase {
 public:
  ExactEngine(std::string name, EngineCapabilities caps, const CwDatabase* lb,
              const ExactOptions& options)
      : EngineBase(std::move(name), caps), impl_(lb, options) {}

  Result<Relation> Answer(const Query& query) override {
    return impl_.Answer(query);
  }
  Result<Relation> AnswerBound(const BoundQuery& bound) override {
    return impl_.AnswerBound(bound);
  }
  Result<bool> Contains(const Query& query, const Tuple& candidate) override {
    return impl_.Contains(query, candidate);
  }
  Result<Relation> PossibleAnswer(const Query& query) override {
    return impl_.PossibleAnswer(query);
  }
  Result<Relation> PossibleAnswerBound(const BoundQuery& bound) override {
    return impl_.PossibleAnswerBound(bound);
  }
  uint64_t last_mappings_examined() const override {
    return impl_.last_mappings_examined();
  }
  KernelMemoCounters last_memo_counters() const override {
    return impl_.last_memo_counters();
  }

 private:
  ExactEvaluator impl_;
};

class ParallelExactEngine : public EngineBase {
 public:
  ParallelExactEngine(std::string name, EngineCapabilities caps,
                      const CwDatabase* lb,
                      const ParallelExactOptions& options)
      : EngineBase(std::move(name), caps), impl_(lb, options) {}

  Result<Relation> Answer(const Query& query) override {
    return impl_.Answer(query);
  }
  Result<Relation> AnswerBound(const BoundQuery& bound) override {
    return impl_.AnswerBound(bound);
  }
  Result<bool> Contains(const Query& query, const Tuple& candidate) override {
    return impl_.Contains(query, candidate);
  }
  Result<Relation> PossibleAnswer(const Query& query) override {
    return impl_.PossibleAnswer(query);
  }
  Result<Relation> PossibleAnswerBound(const BoundQuery& bound) override {
    return impl_.PossibleAnswerBound(bound);
  }
  uint64_t last_mappings_examined() const override {
    return impl_.last_mappings_examined();
  }
  KernelMemoCounters last_memo_counters() const override {
    return impl_.last_memo_counters();
  }

 private:
  ParallelExactEvaluator impl_;
};

class RaExactEngine : public EngineBase {
 public:
  RaExactEngine(std::string name, EngineCapabilities caps,
                const CwDatabase* lb, const ExactOptions& options)
      : EngineBase(std::move(name), caps), impl_(lb, options) {}

  Result<Relation> Answer(const Query& query) override {
    return impl_.Answer(query);
  }
  Result<Relation> AnswerBound(const BoundQuery& bound) override {
    return impl_.AnswerBound(bound);
  }
  Result<bool> Contains(const Query& query, const Tuple& candidate) override {
    return impl_.Contains(query, candidate);
  }
  Result<Relation> PossibleAnswer(const Query& query) override {
    return impl_.PossibleAnswer(query);
  }
  Result<Relation> PossibleAnswerBound(const BoundQuery& bound) override {
    return impl_.PossibleAnswerBound(bound);
  }
  uint64_t last_mappings_examined() const override {
    return impl_.last_mappings_examined();
  }
  KernelMemoCounters last_memo_counters() const override {
    return impl_.last_memo_counters();
  }

 private:
  RaExactEvaluator impl_;
};

class ApproxQueryEngine : public EngineBase {
 public:
  ApproxQueryEngine(std::string name, EngineCapabilities caps,
                    std::unique_ptr<ApproxEvaluator> impl)
      : EngineBase(std::move(name), caps), impl_(std::move(impl)) {}

  Result<Relation> Answer(const Query& query) override {
    return impl_->Answer(query);
  }
  Result<bool> Contains(const Query& query, const Tuple& candidate) override {
    return impl_->Contains(query, candidate);
  }

 private:
  std::unique_ptr<ApproxEvaluator> impl_;
};

/// Naive evaluation over `Ph₁(LB)`: treats every null as a distinct fresh
/// value, so it is neither sound nor complete in the presence of unknowns —
/// registered as the baseline the paper's §1 example warns about. `Ph₁` is
/// rebuilt per call so constants interned after engine creation (e.g. while
/// parsing the query) are interpreted.
class PhysicalEngine : public EngineBase {
 public:
  PhysicalEngine(std::string name, EngineCapabilities caps,
                 const CwDatabase* lb, const EvalOptions& options)
      : EngineBase(std::move(name), caps), lb_(lb), options_(options) {}

  Result<Relation> Answer(const Query& query) override {
    PhysicalDatabase ph1 = MakePh1(*lb_);
    Evaluator eval(&ph1, options_);
    return eval.Answer(query);
  }

  Result<bool> Contains(const Query& query, const Tuple& candidate) override {
    if (candidate.size() != query.arity()) {
      return Status::InvalidArgument("candidate arity does not match query");
    }
    LQDB_ASSIGN_OR_RETURN(BoundQuery bound, BoundQuery::Bind(query));
    PhysicalDatabase ph1 = MakePh1(*lb_);
    Evaluator eval(&ph1, options_);
    std::vector<char> verdicts;
    LQDB_RETURN_IF_ERROR(
        eval.SatisfiesBatch(bound, candidate.data(), 1, &verdicts));
    return verdicts[0] != 0;
  }

 private:
  const CwDatabase* lb_;
  EvalOptions options_;
};

}  // namespace

void RegisterBuiltinEngines(EngineRegistry* registry) {
  auto must_register = [registry](std::string name, EngineCapabilities caps,
                                  EngineFactory factory) {
    Status s = registry->Register(std::move(name), caps, std::move(factory));
    (void)s;  // only fails on duplicate registration, which is idempotent
  };

  {
    EngineCapabilities caps;
    caps.sound = true;
    caps.complete = true;
    must_register(
        "brute", caps,
        [caps](CwDatabase* lb, const EngineOptions& options)
            -> Result<std::unique_ptr<QueryEngine>> {
          return std::unique_ptr<QueryEngine>(
              new BruteEngine("brute", caps, lb, options.brute));
        });
  }
  {
    EngineCapabilities caps;
    caps.sound = true;
    caps.complete = true;
    caps.supports_possible = true;
    // "exact" routes to the compiled-RA engine: same Theorem 1 semantics,
    // same answers bit-for-bit (the differential suite pins this on every
    // instance), but the per-image check is a cached relational-algebra
    // plan instead of the batched Tarskian sweep — measured 1.5–10x faster
    // on the E10 large-world join rows. Queries outside the compilable
    // first-order fragment silently take the evaluator fallback inside
    // `RaExactEvaluator`, so coverage is unchanged.
    must_register(
        "exact", caps,
        [caps](CwDatabase* lb, const EngineOptions& options)
            -> Result<std::unique_ptr<QueryEngine>> {
          return std::unique_ptr<QueryEngine>(
              new RaExactEngine("exact", caps, lb, options.exact));
        });
    // The batched Tarskian sweep under its explicit name, so benches and
    // ablations can compare against it regardless of what "exact" resolves
    // to (see the E10 rows and README "Engines").
    must_register(
        "batched-exact", caps,
        [caps](CwDatabase* lb, const EngineOptions& options)
            -> Result<std::unique_ptr<QueryEngine>> {
          return std::unique_ptr<QueryEngine>(
              new ExactEngine("batched-exact", caps, lb, options.exact));
        });
    must_register(
        "parallel-exact", caps,
        [caps](CwDatabase* lb, const EngineOptions& options)
            -> Result<std::unique_ptr<QueryEngine>> {
          ParallelExactOptions parallel;
          parallel.base = options.exact;
          parallel.threads = options.threads;
          return std::unique_ptr<QueryEngine>(new ParallelExactEngine(
              "parallel-exact", caps, lb, parallel));
        });
    must_register(
        "ra-exact", caps,
        [caps](CwDatabase* lb, const EngineOptions& options)
            -> Result<std::unique_ptr<QueryEngine>> {
          return std::unique_ptr<QueryEngine>(
              new RaExactEngine("ra-exact", caps, lb, options.exact));
        });
  }
  {
    EngineCapabilities caps;
    caps.sound = true;
    caps.polynomial = true;
    caps.mutates_database = true;  // interns NE/α and snapshots Ph₂ in Make
    must_register(
        "approx", caps,
        [caps](CwDatabase* lb, const EngineOptions& options)
            -> Result<std::unique_ptr<QueryEngine>> {
          auto impl = ApproxEvaluator::Make(lb, options.approx);
          if (!impl.ok()) return impl.status();
          return std::unique_ptr<QueryEngine>(
              new ApproxQueryEngine("approx", caps, std::move(impl).value()));
        });
  }
  {
    EngineCapabilities caps;
    caps.polynomial = true;
    must_register(
        "physical", caps,
        [caps](CwDatabase* lb, const EngineOptions& options)
            -> Result<std::unique_ptr<QueryEngine>> {
          return std::unique_ptr<QueryEngine>(new PhysicalEngine(
              "physical", caps, lb, options.exact.eval));
        });
  }
}

}  // namespace lqdb
