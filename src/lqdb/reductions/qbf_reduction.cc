#include "lqdb/reductions/qbf_reduction.h"

#include <string>

#include "lqdb/logic/builder.h"

namespace lqdb {

namespace {

/// Translates the matrix: x_{0,j} ↦ N_{j+1}(1); x_{b,j} (b ≥ 1) ↦ M(y_b_j).
Result<FormulaPtr> TranslateMatrix(const BoolExpr& e, FormulaBuilder* b) {
  switch (e.kind()) {
    case BoolExpr::Kind::kVar: {
      const QbfVar v = e.var();
      if (v.block == 0) {
        return b->Atom("N" + std::to_string(v.index + 1), {b->C("1")});
      }
      return b->Atom("M", {b->V("y" + std::to_string(v.block) + "_" +
                                std::to_string(v.index))});
    }
    case BoolExpr::Kind::kNot: {
      LQDB_ASSIGN_OR_RETURN(FormulaPtr inner,
                            TranslateMatrix(*e.children()[0], b));
      return Formula::Not(std::move(inner));
    }
    case BoolExpr::Kind::kAnd:
    case BoolExpr::Kind::kOr: {
      std::vector<FormulaPtr> parts;
      for (const auto& c : e.children()) {
        LQDB_ASSIGN_OR_RETURN(FormulaPtr part, TranslateMatrix(*c, b));
        parts.push_back(std::move(part));
      }
      return e.kind() == BoolExpr::Kind::kAnd
                 ? Formula::And(std::move(parts))
                 : Formula::Or(std::move(parts));
    }
  }
  return Status::Internal("unknown BoolExpr kind");
}

}  // namespace

Result<QbfReduction> BuildQbfReduction(const Qbf& qbf) {
  if (qbf.num_blocks() < 1) {
    return Status::InvalidArgument("QBF needs at least one block");
  }
  if (qbf.matrix == nullptr) {
    return Status::InvalidArgument("QBF matrix must not be null");
  }

  CwDatabase lb;
  // Known constants 0, 1: the construction's only uniqueness axiom
  // ¬(0 = 1) comes from their mutual distinctness.
  lb.AddKnownConstant("0");
  ConstId one = lb.AddKnownConstant("1");

  LQDB_ASSIGN_OR_RETURN(PredId m_pred, lb.AddPredicate("M", 1));
  LQDB_RETURN_IF_ERROR(lb.AddFact(m_pred, {one}));

  // Outermost (universal) block: N_j(c_j) facts over unknown constants.
  const int m1 = qbf.block_sizes[0];
  for (int j = 1; j <= m1; ++j) {
    LQDB_ASSIGN_OR_RETURN(PredId nj,
                          lb.AddPredicate("N" + std::to_string(j), 1));
    ConstId cj = lb.AddUnknownConstant("C" + std::to_string(j));
    LQDB_RETURN_IF_ERROR(lb.AddFact(nj, {cj}));
  }

  FormulaBuilder b(lb.mutable_vocab());
  LQDB_ASSIGN_OR_RETURN(FormulaPtr chi, TranslateMatrix(*qbf.matrix, &b));

  // Quantifier prefix for blocks 1..k (0-based), innermost first. Block
  // b (0-based) is existential in σ iff b is odd — matching the source
  // formula, whose even blocks are universal and whose block 0 is simulated
  // by the mapping quantification.
  FormulaPtr sigma = std::move(chi);
  for (int block = qbf.num_blocks() - 1; block >= 1; --block) {
    std::vector<VarId> vars;
    for (int j = 0; j < qbf.block_sizes[block]; ++j) {
      vars.push_back(b.Var("y" + std::to_string(block) + "_" +
                           std::to_string(j)));
    }
    const bool existential = block % 2 == 1;
    sigma = existential ? Formula::Exists(vars, std::move(sigma))
                        : Formula::Forall(vars, std::move(sigma));
  }

  LQDB_ASSIGN_OR_RETURN(Query query, Query::Boolean(std::move(sigma)));
  return QbfReduction{std::move(lb), std::move(query)};
}

}  // namespace lqdb
