#ifndef LQDB_REDUCTIONS_GRAPH_H_
#define LQDB_REDUCTIONS_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <set>
#include <utility>
#include <vector>

namespace lqdb {

/// A simple undirected graph on vertices 0..num_vertices-1, used by the
/// Theorem 5(2) reduction from graph 3-colorability.
class Graph {
 public:
  explicit Graph(int num_vertices) : num_vertices_(num_vertices) {}

  int num_vertices() const { return num_vertices_; }
  size_t num_edges() const { return edges_.size(); }

  /// Adds the undirected edge {u, v}; self-loops and duplicates are kept
  /// out. Precondition: vertices in range.
  void AddEdge(int u, int v);

  bool HasEdge(int u, int v) const;

  /// Normalized edge list (u < v), in insertion-independent sorted order.
  const std::set<std::pair<int, int>>& edges() const { return edges_; }

 private:
  int num_vertices_;
  std::set<std::pair<int, int>> edges_;
};

/// The n-cycle (3-colorable iff n != some parity cases: odd cycles need 3
/// colors, even cycles 2; all cycles with n >= 3 are 3-colorable).
Graph CycleGraph(int n);

/// The complete graph K_n (3-colorable iff n <= 3).
Graph CompleteGraph(int n);

/// The Petersen graph (3-chromatic).
Graph PetersenGraph();

/// Complete bipartite K_{a,b} (2-colorable).
Graph CompleteBipartiteGraph(int a, int b);

/// Erdős–Rényi G(n, p) with a deterministic seed.
Graph RandomGraph(int n, double p, uint64_t seed);

}  // namespace lqdb

#endif  // LQDB_REDUCTIONS_GRAPH_H_
