#ifndef LQDB_REDUCTIONS_QBF_REDUCTION_H_
#define LQDB_REDUCTIONS_QBF_REDUCTION_H_

#include "lqdb/cwdb/cw_database.h"
#include "lqdb/logic/query.h"
#include "lqdb/reductions/qbf.h"
#include "lqdb/util/result.h"

namespace lqdb {

/// The Theorem 7 logspace reduction from the Πᵖₖ₊₁-complete set B_{k+1} of
/// true QBFs to evaluation of Σₖ first-order queries over CW logical
/// databases:
///
///   - vocabulary: unary `M`, `N_1..N_{m1}`; known constants `0`, `1`
///     (supplying the single uniqueness axiom ¬(0 = 1)) and unknown
///     constants `c_1..c_{m1}`;
///   - facts: `M(1)` and `N_j(c_j)`;
///   - query: σ = (∃y_{2,*})(∀y_{3,*})...(Q y_{k+1,*}) χ, where χ replaces
///     the outermost-block variable x_{1,j} by `N_j(1)` and x_{i,j} (i ≥ 2)
///     by `M(y_{i,j})`.
///
/// The universal quantification over mappings h (Theorem 1) simulates the
/// leading ∀-block — `N_j(1)` holds in h(Ph₁) iff h(c_j) = h(1) — and the
/// first-order quantifiers simulate the remaining blocks, since `M(y)`
/// holds iff y = h(1) and the domain always has a non-h(1) element (h(0)).
///
/// The QBF is true  iff  T ⊨_f σ  iff  () ∈ Q(LB).
struct QbfReduction {
  CwDatabase lb;
  Query query;
};

/// Builds the reduction. Requires at least one block; the first block is
/// universal (B_{k+1} convention).
Result<QbfReduction> BuildQbfReduction(const Qbf& qbf);

}  // namespace lqdb

#endif  // LQDB_REDUCTIONS_QBF_REDUCTION_H_
