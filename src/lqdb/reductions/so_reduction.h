#ifndef LQDB_REDUCTIONS_SO_REDUCTION_H_
#define LQDB_REDUCTIONS_SO_REDUCTION_H_

#include "lqdb/cwdb/cw_database.h"
#include "lqdb/logic/query.h"
#include "lqdb/reductions/qbf.h"
#include "lqdb/util/result.h"

namespace lqdb {

/// The Theorem 9 reduction from 3CNF B_{k+1} to evaluation of Σ¹ₖ
/// second-order queries over CW logical databases — this is the data-
/// complexity hardness construction, so the *query* depends only on k and
/// the clause shapes while the *database* encodes the instance:
///
///   - vocabulary: unary `N_1`, ternary relations `R^{pqr}_{ijl}` (one per
///     distinct block-triple/polarity-triple clause shape), known constant
///     `1`, constants `c_{i,j}` per variable x_{i,j} (unknown for the
///     outermost block i = 1, known otherwise);
///   - facts: `N_1(1)` and, per clause over variables x_{i,a}, x_{j,b},
///     x_{l,d}, the tuple `R^{pqr}_{ijl}(c_{i,a}, c_{j,b}, c_{l,d})`;
///   - query: σ = ∃N_2 ∀N_3 ... Q N_{k+1} . ξ, where ξ conjoins, per clause
///     shape, (∀xyz)(R^{pqr}_{ijl}(x,y,z) → lit_p N_i(x) ∨ lit_q N_j(y) ∨
///     lit_r N_l(z)).
///
/// Mapping quantification (Theorem 1) simulates the outer ∀-block via
/// h(c_{1,j}) = h(1); the second-order quantifiers simulate the remaining
/// blocks.
///
/// Deviation from the paper, documented in DESIGN.md: the paper's
/// uniqueness axioms cover exactly the pairs among levels ≥ 2; making those
/// constants *known* here additionally separates them from `1`. The extra
/// axioms only exclude mappings that neither direction of the proof needs,
/// so the reduction's answer is unchanged (cross-validated against the QBF
/// solver in tests).
///
/// The QBF is true  iff  T ⊨_f σ  iff  () ∈ Q(LB).
struct SoReduction {
  CwDatabase lb;
  Query query;
};

Result<SoReduction> BuildSoReduction(const Qbf3Cnf& qbf);

}  // namespace lqdb

#endif  // LQDB_REDUCTIONS_SO_REDUCTION_H_
