#include "lqdb/reductions/so_reduction.h"

#include <array>
#include <map>
#include <string>

#include "lqdb/logic/builder.h"

namespace lqdb {

namespace {

std::string ConstName(const QbfVar& v) {
  // 1-based like the paper's c_{i,j}.
  return "C" + std::to_string(v.block + 1) + "_" + std::to_string(v.index + 1);
}

std::string PredName(int i, int j, int l, bool p, bool q, bool r) {
  return "R" + std::to_string(i) + "_" + std::to_string(j) + "_" +
         std::to_string(l) + "_" + std::to_string(p ? 1 : 0) +
         std::to_string(q ? 1 : 0) + std::to_string(r ? 1 : 0);
}

}  // namespace

Result<SoReduction> BuildSoReduction(const Qbf3Cnf& qbf) {
  if (qbf.num_blocks() < 1) {
    return Status::InvalidArgument("QBF needs at least one block");
  }

  CwDatabase lb;
  ConstId one = lb.AddKnownConstant("1");

  // Variable constants: unknown for the outermost (∀, h-simulated) block,
  // known (pairwise distinct) for all inner blocks.
  for (int block = 0; block < qbf.num_blocks(); ++block) {
    for (int j = 0; j < qbf.block_sizes[block]; ++j) {
      const std::string name = ConstName(QbfVar{block, j});
      if (block == 0) {
        lb.AddUnknownConstant(name);
      } else {
        lb.AddKnownConstant(name);
      }
    }
  }

  LQDB_ASSIGN_OR_RETURN(PredId n1, lb.AddPredicate("NB1", 1));
  LQDB_RETURN_IF_ERROR(lb.AddFact(n1, {one}));

  // One ternary predicate per clause *shape*; one fact per clause.
  std::map<std::string, PredId> shape_preds;
  for (const Cnf3Clause& clause : qbf.clauses) {
    const std::string name =
        PredName(clause[0].var.block + 1, clause[1].var.block + 1,
                 clause[2].var.block + 1, clause[0].positive,
                 clause[1].positive, clause[2].positive);
    auto it = shape_preds.find(name);
    if (it == shape_preds.end()) {
      LQDB_ASSIGN_OR_RETURN(PredId p, lb.AddPredicate(name, 3));
      it = shape_preds.emplace(name, p).first;
    }
    Tuple fact;
    for (const Cnf3Literal& lit : clause) {
      fact.push_back(lb.vocab().FindConstant(ConstName(lit.var)));
    }
    LQDB_RETURN_IF_ERROR(lb.AddFact(it->second, std::move(fact)));
  }

  // Second-order predicate variables NB2..NB{k+1} (NB_i holds the "true"
  // variables of block i).
  FormulaBuilder b(lb.mutable_vocab());
  auto block_pred_name = [](int block /*0-based*/) {
    return "NB" + std::to_string(block + 1);
  };

  // ξ: per clause shape, ∀xyz (R(x,y,z) → lit1 NB_i(x) ∨ lit2 NB_j(y) ∨
  // lit3 NB_l(z)). Build from the clauses (deduplicated by shape).
  std::map<std::string, FormulaPtr> shape_axioms;
  for (const Cnf3Clause& clause : qbf.clauses) {
    const std::string name =
        PredName(clause[0].var.block + 1, clause[1].var.block + 1,
                 clause[2].var.block + 1, clause[0].positive,
                 clause[1].positive, clause[2].positive);
    if (shape_axioms.count(name) > 0) continue;
    Term x = b.V("sx"), y = b.V("sy"), z = b.V("sz");
    const std::array<Term, 3> args = {x, y, z};
    std::vector<FormulaPtr> lits;
    for (int t = 0; t < 3; ++t) {
      FormulaPtr atom = b.Atom(block_pred_name(clause[t].var.block),
                               {args[t]});
      lits.push_back(clause[t].positive ? atom
                                        : Formula::Not(std::move(atom)));
    }
    FormulaPtr body = Formula::Implies(
        b.Atom(name, {x, y, z}), Formula::Or(std::move(lits)));
    shape_axioms[name] = b.Forall(
        {"sx", "sy", "sz"}, std::move(body));
  }
  std::vector<FormulaPtr> xi_parts;
  for (auto& [name, axiom] : shape_axioms) {
    (void)name;
    xi_parts.push_back(std::move(axiom));
  }
  FormulaPtr xi = xi_parts.empty() ? Formula::True()
                                   : Formula::And(std::move(xi_parts));

  // SO prefix ∃NB2 ∀NB3 ... over blocks 1..k (0-based), innermost first.
  FormulaPtr sigma = std::move(xi);
  for (int block = qbf.num_blocks() - 1; block >= 1; --block) {
    const bool existential = block % 2 == 1;
    sigma = existential
                ? b.ExistsPred(block_pred_name(block), 1, std::move(sigma))
                : b.ForallPred(block_pred_name(block), 1, std::move(sigma));
  }

  LQDB_ASSIGN_OR_RETURN(Query query, Query::Boolean(std::move(sigma)));
  return SoReduction{std::move(lb), std::move(query)};
}

}  // namespace lqdb
