#ifndef LQDB_REDUCTIONS_QBF_H_
#define LQDB_REDUCTIONS_QBF_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lqdb/util/rng.h"

namespace lqdb {

/// A propositional variable of a QBF in the paper's block notation:
/// `x_{block, index}` with 0-based block and index. Block b is universally
/// quantified when b is even (blocks alternate ∀, ∃, ∀, ... — formulas of
/// B_{k+1} start with a universal block, §4).
struct QbfVar {
  int block;
  int index;
};

/// A quantifier-free Boolean formula over `QbfVar`s.
class BoolExpr;
using BoolExprPtr = std::shared_ptr<const BoolExpr>;

class BoolExpr {
 public:
  enum class Kind { kVar, kNot, kAnd, kOr };

  static BoolExprPtr Var(QbfVar v);
  static BoolExprPtr Not(BoolExprPtr e);
  static BoolExprPtr And(std::vector<BoolExprPtr> es);
  static BoolExprPtr Or(std::vector<BoolExprPtr> es);

  Kind kind() const { return kind_; }
  QbfVar var() const { return var_; }
  const std::vector<BoolExprPtr>& children() const { return children_; }

  /// Evaluates under `assignment[block][index]`.
  bool Eval(const std::vector<std::vector<bool>>& assignment) const;

  std::string ToString() const;

 protected:
  explicit BoolExpr(Kind kind) : kind_(kind), var_{0, 0} {}

 private:
  Kind kind_;
  QbfVar var_;
  std::vector<BoolExprPtr> children_;
};

/// A quantified Boolean formula in the B_{k+1} shape of [St77] / §4:
/// alternating blocks of variables starting with ∀, over an arbitrary
/// quantifier-free matrix.
struct Qbf {
  /// block_sizes[b] = number of variables in block b; blocks alternate
  /// ∀ (b even), ∃ (b odd).
  std::vector<int> block_sizes;
  BoolExprPtr matrix;

  int num_blocks() const { return static_cast<int>(block_sizes.size()); }
  /// k such that this formula belongs to B_{k+1} (i.e. num_blocks - 1).
  int k() const { return num_blocks() - 1; }
};

/// Direct recursive decision of a QBF (exponential; the independent
/// baseline for the Theorem 7 / Theorem 9 reductions).
bool EvalQbf(const Qbf& qbf);

/// A literal of a 3CNF clause: variable plus polarity.
struct Cnf3Literal {
  QbfVar var;
  bool positive;
};

/// A clause with exactly three literals.
using Cnf3Clause = std::array<Cnf3Literal, 3>;

/// The 3CNF-matrix QBFs used by Theorem 9 ("we assume w.l.o.g. that ψ is in
/// conjunctive normal form and every conjunct is a disjunction of three
/// variables").
struct Qbf3Cnf {
  std::vector<int> block_sizes;  ///< Same block convention as `Qbf`.
  std::vector<Cnf3Clause> clauses;

  int num_blocks() const { return static_cast<int>(block_sizes.size()); }
  int k() const { return num_blocks() - 1; }

  /// The equivalent general-matrix QBF (for solving with `EvalQbf`).
  Qbf ToQbf() const;
};

/// Random QBF with the given block sizes and a random matrix of roughly
/// `matrix_size` connectives. Deterministic in `seed`.
Qbf RandomQbf(const std::vector<int>& block_sizes, int matrix_size,
              uint64_t seed);

/// Random 3CNF QBF with `num_clauses` clauses. Deterministic in `seed`.
Qbf3Cnf RandomQbf3Cnf(const std::vector<int>& block_sizes, int num_clauses,
                      uint64_t seed);

}  // namespace lqdb

#endif  // LQDB_REDUCTIONS_QBF_H_
