#include "lqdb/reductions/qbf.h"

#include <array>
#include <cassert>

namespace lqdb {

namespace {

std::shared_ptr<BoolExpr> NewExpr(BoolExpr::Kind kind) {
  struct Helper : BoolExpr {
    explicit Helper(Kind k) : BoolExpr(k) {}
  };
  return std::make_shared<Helper>(kind);
}

}  // namespace

BoolExprPtr BoolExpr::Var(QbfVar v) {
  auto node = NewExpr(Kind::kVar);
  node->var_ = v;
  return node;
}

BoolExprPtr BoolExpr::Not(BoolExprPtr e) {
  auto node = NewExpr(Kind::kNot);
  node->children_ = {std::move(e)};
  return node;
}

BoolExprPtr BoolExpr::And(std::vector<BoolExprPtr> es) {
  assert(!es.empty());
  if (es.size() == 1) return es[0];
  auto node = NewExpr(Kind::kAnd);
  node->children_ = std::move(es);
  return node;
}

BoolExprPtr BoolExpr::Or(std::vector<BoolExprPtr> es) {
  assert(!es.empty());
  if (es.size() == 1) return es[0];
  auto node = NewExpr(Kind::kOr);
  node->children_ = std::move(es);
  return node;
}

bool BoolExpr::Eval(const std::vector<std::vector<bool>>& assignment) const {
  switch (kind_) {
    case Kind::kVar:
      return assignment[var_.block][var_.index];
    case Kind::kNot:
      return !children_[0]->Eval(assignment);
    case Kind::kAnd:
      for (const auto& c : children_) {
        if (!c->Eval(assignment)) return false;
      }
      return true;
    case Kind::kOr:
      for (const auto& c : children_) {
        if (c->Eval(assignment)) return true;
      }
      return false;
  }
  assert(false && "unreachable");
  return false;
}

std::string BoolExpr::ToString() const {
  switch (kind_) {
    case Kind::kVar:
      return "x" + std::to_string(var_.block) + "_" +
             std::to_string(var_.index);
    case Kind::kNot:
      return "!" + children_[0]->ToString();
    case Kind::kAnd:
    case Kind::kOr: {
      std::string sep = kind_ == Kind::kAnd ? " & " : " | ";
      std::string out = "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += sep;
        out += children_[i]->ToString();
      }
      return out + ")";
    }
  }
  return "";
}

namespace {

bool EvalBlocks(const Qbf& qbf, int block,
                std::vector<std::vector<bool>>* assignment) {
  if (block == qbf.num_blocks()) return qbf.matrix->Eval(*assignment);
  const int m = qbf.block_sizes[block];
  const bool universal = block % 2 == 0;
  const uint64_t limit = 1ull << m;
  for (uint64_t mask = 0; mask < limit; ++mask) {
    for (int i = 0; i < m; ++i) {
      (*assignment)[block][i] = (mask >> i) & 1;
    }
    bool sub = EvalBlocks(qbf, block + 1, assignment);
    if (universal && !sub) return false;
    if (!universal && sub) return true;
  }
  return universal;
}

}  // namespace

bool EvalQbf(const Qbf& qbf) {
  assert(qbf.matrix != nullptr);
  std::vector<std::vector<bool>> assignment;
  for (int m : qbf.block_sizes) {
    assert(m >= 0 && m < 63);
    assignment.emplace_back(m, false);
  }
  return EvalBlocks(qbf, 0, &assignment);
}

Qbf Qbf3Cnf::ToQbf() const {
  std::vector<BoolExprPtr> conjuncts;
  for (const Cnf3Clause& clause : clauses) {
    std::vector<BoolExprPtr> lits;
    for (const Cnf3Literal& lit : clause) {
      BoolExprPtr v = BoolExpr::Var(lit.var);
      lits.push_back(lit.positive ? v : BoolExpr::Not(v));
    }
    conjuncts.push_back(BoolExpr::Or(std::move(lits)));
  }
  Qbf out;
  out.block_sizes = block_sizes;
  out.matrix = conjuncts.empty()
                   ? BoolExpr::Or({BoolExpr::Var({0, 0}),
                                   BoolExpr::Not(BoolExpr::Var({0, 0}))})
                   : BoolExpr::And(std::move(conjuncts));
  return out;
}

namespace {

QbfVar RandomVar(const std::vector<int>& block_sizes, Rng* rng) {
  while (true) {
    int block = static_cast<int>(rng->Below(block_sizes.size()));
    if (block_sizes[block] == 0) continue;
    return QbfVar{block, static_cast<int>(rng->Below(block_sizes[block]))};
  }
}

BoolExprPtr RandomExpr(const std::vector<int>& block_sizes, int size,
                       Rng* rng) {
  if (size <= 1) {
    BoolExprPtr v = BoolExpr::Var(RandomVar(block_sizes, rng));
    return rng->Chance(0.5) ? v : BoolExpr::Not(std::move(v));
  }
  int left = 1 + static_cast<int>(rng->Below(static_cast<uint64_t>(size - 1)));
  BoolExprPtr a = RandomExpr(block_sizes, left, rng);
  BoolExprPtr b = RandomExpr(block_sizes, size - left, rng);
  if (rng->Chance(0.5)) return BoolExpr::And({std::move(a), std::move(b)});
  return BoolExpr::Or({std::move(a), std::move(b)});
}

}  // namespace

Qbf RandomQbf(const std::vector<int>& block_sizes, int matrix_size,
              uint64_t seed) {
  Rng rng(seed);
  Qbf out;
  out.block_sizes = block_sizes;
  out.matrix = RandomExpr(block_sizes, matrix_size, &rng);
  return out;
}

Qbf3Cnf RandomQbf3Cnf(const std::vector<int>& block_sizes, int num_clauses,
                      uint64_t seed) {
  Rng rng(seed);
  Qbf3Cnf out;
  out.block_sizes = block_sizes;
  for (int i = 0; i < num_clauses; ++i) {
    Cnf3Clause clause;
    for (int j = 0; j < 3; ++j) {
      clause[j] = Cnf3Literal{RandomVar(block_sizes, &rng), rng.Chance(0.5)};
    }
    out.clauses.push_back(clause);
  }
  return out;
}

}  // namespace lqdb
