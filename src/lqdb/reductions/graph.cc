#include "lqdb/reductions/graph.h"

#include <cassert>

#include "lqdb/util/rng.h"

namespace lqdb {

void Graph::AddEdge(int u, int v) {
  assert(u >= 0 && u < num_vertices_ && v >= 0 && v < num_vertices_);
  if (u == v) return;
  if (u > v) std::swap(u, v);
  edges_.insert({u, v});
}

bool Graph::HasEdge(int u, int v) const {
  if (u > v) std::swap(u, v);
  return edges_.count({u, v}) > 0;
}

Graph CycleGraph(int n) {
  Graph g(n);
  for (int i = 0; i < n; ++i) g.AddEdge(i, (i + 1) % n);
  return g;
}

Graph CompleteGraph(int n) {
  Graph g(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) g.AddEdge(i, j);
  }
  return g;
}

Graph PetersenGraph() {
  Graph g(10);
  // Outer 5-cycle 0..4, inner pentagram 5..9, spokes i -- i+5.
  for (int i = 0; i < 5; ++i) {
    g.AddEdge(i, (i + 1) % 5);
    g.AddEdge(5 + i, 5 + (i + 2) % 5);
    g.AddEdge(i, 5 + i);
  }
  return g;
}

Graph CompleteBipartiteGraph(int a, int b) {
  Graph g(a + b);
  for (int i = 0; i < a; ++i) {
    for (int j = 0; j < b; ++j) g.AddEdge(i, a + j);
  }
  return g;
}

Graph RandomGraph(int n, double p, uint64_t seed) {
  Graph g(n);
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (rng.Chance(p)) g.AddEdge(i, j);
    }
  }
  return g;
}

}  // namespace lqdb
