#ifndef LQDB_REDUCTIONS_COLORING_H_
#define LQDB_REDUCTIONS_COLORING_H_

#include <optional>
#include <vector>

#include "lqdb/cwdb/cw_database.h"
#include "lqdb/logic/query.h"
#include "lqdb/reductions/graph.h"
#include "lqdb/util/result.h"

namespace lqdb {

/// Direct backtracking k-coloring decision procedure (the independent
/// baseline the Theorem 5(2) reduction is validated against). When
/// `coloring` is non-null and the graph is colorable, it receives a witness
/// assignment vertex → color in [0, k).
bool IsKColorable(const Graph& g, int k, std::vector<int>* coloring = nullptr);

/// The Theorem 5(2) logspace reduction from graph 3-colorability to
/// first-order query evaluation over a CW logical database:
///
///   - vocabulary: binary `R`, unary `M`, a constant `c_v` per vertex
///     (unknown identity) and known constants `1`, `2`, `3`;
///   - facts: `M(1)`, `M(2)`, `M(3)` and `R(c_u, c_v)` per edge;
///   - uniqueness axioms: exactly ¬(1=2), ¬(1=3), ¬(2=3);
///   - query: `() . (forall y. M(y)) -> (exists z. R(z, z))`.
///
/// G is 3-colorable  iff  LB ⊭_f φ  iff  () ∉ Q(LB): a 3-coloring is a
/// mapping `h` collapsing every vertex constant onto {1,2,3} with no edge
/// mapped to a self-loop, which is exactly a countermodel of φ.
struct ColoringReduction {
  CwDatabase lb;
  Query query;
};

/// Builds the reduction for `g`. The returned struct owns its database;
/// the query's symbol ids refer to `lb.vocab()`.
Result<ColoringReduction> BuildColoringReduction(const Graph& g);

}  // namespace lqdb

#endif  // LQDB_REDUCTIONS_COLORING_H_
