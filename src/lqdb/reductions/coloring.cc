#include "lqdb/reductions/coloring.h"

#include <string>

#include "lqdb/logic/builder.h"

namespace lqdb {

namespace {

bool ColorVertex(const Graph& g, int v, int k, std::vector<int>* colors) {
  if (v == g.num_vertices()) return true;
  for (int c = 0; c < k; ++c) {
    bool ok = true;
    for (int u = 0; u < v && ok; ++u) {
      if ((*colors)[u] == c && g.HasEdge(u, v)) ok = false;
    }
    if (!ok) continue;
    (*colors)[v] = c;
    if (ColorVertex(g, v + 1, k, colors)) return true;
  }
  (*colors)[v] = -1;
  return false;
}

}  // namespace

bool IsKColorable(const Graph& g, int k, std::vector<int>* coloring) {
  std::vector<int> colors(g.num_vertices(), -1);
  if (!ColorVertex(g, 0, k, &colors)) return false;
  if (coloring != nullptr) *coloring = std::move(colors);
  return true;
}

Result<ColoringReduction> BuildColoringReduction(const Graph& g) {
  CwDatabase lb;
  // Known color constants 1, 2, 3 — their mutual distinctness supplies the
  // three uniqueness axioms of the construction.
  ConstId one = lb.AddKnownConstant("1");
  lb.AddKnownConstant("2");
  lb.AddKnownConstant("3");
  (void)one;

  LQDB_ASSIGN_OR_RETURN(PredId m, lb.AddPredicate("M", 1));
  LQDB_ASSIGN_OR_RETURN(PredId r, lb.AddPredicate("R", 2));
  for (const char* color : {"1", "2", "3"}) {
    LQDB_RETURN_IF_ERROR(
        lb.AddFact(m, {lb.AddKnownConstant(color)}));
  }

  // One unknown constant per vertex; no uniqueness axioms for them.
  std::vector<ConstId> vertex_consts;
  vertex_consts.reserve(g.num_vertices());
  for (int v = 0; v < g.num_vertices(); ++v) {
    vertex_consts.push_back(
        lb.AddUnknownConstant("c" + std::to_string(v)));
  }
  for (const auto& [u, v] : g.edges()) {
    LQDB_RETURN_IF_ERROR(
        lb.AddFact(r, {vertex_consts[u], vertex_consts[v]}));
  }

  // φ = (∀y M(y)) → (∃z R(z, z)).
  FormulaBuilder b(lb.mutable_vocab());
  FormulaPtr phi =
      b.Implies(b.Forall("y", b.Atom("M", {b.V("y")})),
                b.Exists("z", b.Atom("R", {b.V("z"), b.V("z")})));
  LQDB_ASSIGN_OR_RETURN(Query query, Query::Boolean(std::move(phi)));
  return ColoringReduction{std::move(lb), std::move(query)};
}

}  // namespace lqdb
