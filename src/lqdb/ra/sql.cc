#include "lqdb/ra/sql.h"

#include <cassert>

namespace lqdb {

namespace {

class SqlEmitter {
 public:
  explicit SqlEmitter(const Vocabulary& vocab) : vocab_(vocab) {}

  std::string Emit(const Plan& plan) {
    switch (plan.kind()) {
      case PlanKind::kScan: return EmitScan(plan);
      case PlanKind::kConstTuples: return EmitConstTuples(plan);
      case PlanKind::kConstCompare: return EmitConstCompare(plan);
      case PlanKind::kDomainScan:
        return "SELECT v AS " + Attr(plan.schema()[0]) + " FROM dom";
      case PlanKind::kEqDomain:
        return "SELECT v AS " + Attr(plan.schema()[0]) + ", v AS " +
               Attr(plan.schema()[1]) + " FROM dom";
      case PlanKind::kJoin: return EmitJoin(plan);
      case PlanKind::kAntiJoin: return EmitSemi(plan, /*anti=*/true);
      case PlanKind::kSemiJoin: return EmitSemi(plan, /*anti=*/false);
      case PlanKind::kUnion: return EmitUnion(plan);
      case PlanKind::kProject: return EmitProject(plan);
      case PlanKind::kParam:
        // Runtime-bound tables have no stored SQL form; emit a named
        // placeholder relation so the statement shape stays readable.
        return "SELECT " + SelectList(plan.schema(), "") + " FROM param";
    }
    assert(false && "unreachable");
    return "";
  }

 private:
  std::string Attr(VarId v) const {
    // Variable names are identifier-shaped by construction (parser/builder
    // intern identifiers; fresh variables append _<n>).
    return vocab_.VariableName(v);
  }

  std::string Lit(ConstId c) const {
    std::string out = "'";
    for (char ch : vocab_.ConstantName(c)) {
      // Escape by doubling: emit one extra quote *in addition to* the
      // character itself (appending "''" here would triple it).
      if (ch == '\'') out += '\'';
      out += ch;
    }
    out += "'";
    return out;
  }

  std::string Alias() { return "t" + std::to_string(counter_++); }

  std::string SelectList(const std::vector<VarId>& schema,
                         const std::string& qualifier) const {
    if (schema.empty()) return "1 AS one";
    std::string out;
    for (size_t i = 0; i < schema.size(); ++i) {
      if (i > 0) out += ", ";
      if (!qualifier.empty()) out += qualifier + ".";
      out += Attr(schema[i]);
    }
    return out;
  }

  std::string EmitScan(const Plan& plan) {
    const std::string table = vocab_.PredicateName(plan.pred());
    std::string alias = Alias();
    std::string select = "SELECT DISTINCT ";
    std::string where;
    std::vector<std::pair<VarId, size_t>> first_pos;
    auto find_first = [&first_pos](VarId v) -> int {
      for (const auto& [var, pos] : first_pos) {
        if (var == v) return static_cast<int>(pos);
      }
      return -1;
    };
    std::string cols;
    for (size_t i = 0; i < plan.scan_columns().size(); ++i) {
      const Term& t = plan.scan_columns()[i];
      std::string col = alias + ".c" + std::to_string(i);
      if (t.is_constant()) {
        if (!where.empty()) where += " AND ";
        where += col + " = " + Lit(t.constant());
        continue;
      }
      int prior = find_first(t.var());
      if (prior < 0) {
        first_pos.emplace_back(t.var(), i);
        if (!cols.empty()) cols += ", ";
        cols += col + " AS " + Attr(t.var());
      } else {
        if (!where.empty()) where += " AND ";
        where += col + " = " + alias + ".c" + std::to_string(prior);
      }
    }
    if (cols.empty()) cols = "1 AS one";
    select += cols + " FROM " + table + " " + alias;
    if (!where.empty()) select += " WHERE " + where;
    return select;
  }

  std::string EmitConstTuples(const Plan& plan) {
    if (plan.rows().empty()) {
      // The empty relation over this schema. Columns borrow dom's `v` so
      // the statement stays valid SQL — selecting bare attribute names here
      // would reference columns that exist in no table.
      std::string cols;
      for (VarId v : plan.schema()) {
        if (!cols.empty()) cols += ", ";
        cols += "v AS " + Attr(v);
      }
      if (cols.empty()) cols = "1 AS one";
      return "SELECT " + cols + " FROM dom WHERE 1=0";
    }
    std::string values;
    for (size_t r = 0; r < plan.rows().size(); ++r) {
      if (r > 0) values += ", ";
      values += "(";
      if (plan.rows()[r].empty()) values += "1";
      for (size_t i = 0; i < plan.rows()[r].size(); ++i) {
        if (i > 0) values += ", ";
        values += Lit(plan.rows()[r][i]);
      }
      values += ")";
    }
    std::string alias = Alias();
    std::string col_names;
    if (plan.schema().empty()) {
      col_names = "one";
    } else {
      for (size_t i = 0; i < plan.schema().size(); ++i) {
        if (i > 0) col_names += ", ";
        col_names += Attr(plan.schema()[i]);
      }
    }
    return "SELECT DISTINCT * FROM (VALUES " + values + ") AS " + alias + "(" +
           col_names + ")";
  }

  std::string EmitConstCompare(const Plan& plan) {
    return "SELECT 1 AS one WHERE " + Lit(plan.compare_lhs()) + " = " +
           Lit(plan.compare_rhs());
  }

  std::string EmitJoin(const Plan& plan) {
    std::string l = Alias();
    std::string r = Alias();
    std::string on;
    for (VarId v : plan.left()->schema()) {
      for (VarId w : plan.right()->schema()) {
        if (v == w) {
          if (!on.empty()) on += " AND ";
          on += l + "." + Attr(v) + " = " + r + "." + Attr(v);
        }
      }
    }
    std::string cols;
    for (size_t i = 0; i < plan.schema().size(); ++i) {
      VarId v = plan.schema()[i];
      bool from_left = false;
      for (VarId w : plan.left()->schema()) {
        if (w == v) from_left = true;
      }
      if (i > 0) cols += ", ";
      cols += (from_left ? l : r) + "." + Attr(v);
    }
    if (cols.empty()) cols = "1 AS one";
    std::string join_kw = on.empty() ? " CROSS JOIN " : " JOIN ";
    // Emit children left-to-right in separate statements: inside one
    // expression the evaluation order of the two Emit calls (and hence the
    // alias numbering) would be unspecified.
    std::string left_sql = Emit(*plan.left());
    std::string right_sql = Emit(*plan.right());
    std::string stmt = "SELECT DISTINCT " + cols + " FROM (" + left_sql +
                       ") " + l + join_kw + "(" + right_sql + ") " + r;
    if (!on.empty()) stmt += " ON " + on;
    return stmt;
  }

  /// Anti- and semijoin share the correlated-subquery shape; only the
  /// EXISTS polarity differs.
  std::string EmitSemi(const Plan& plan, bool anti) {
    std::string l = Alias();
    std::string r = Alias();
    std::string corr;
    for (VarId v : plan.left()->schema()) {
      for (VarId w : plan.right()->schema()) {
        if (v == w) {
          if (!corr.empty()) corr += " AND ";
          corr += r + "." + Attr(v) + " = " + l + "." + Attr(v);
        }
      }
    }
    // Children left-to-right in separate statements (see EmitJoin).
    std::string left_sql = Emit(*plan.left());
    std::string right_sql = Emit(*plan.right());
    std::string stmt = "SELECT " + SelectList(plan.schema(), l) + " FROM (" +
                       left_sql + ") " + l + " WHERE " +
                       (anti ? "NOT EXISTS" : "EXISTS") +
                       " (SELECT 1 FROM (" + right_sql + ") " + r;
    if (!corr.empty()) stmt += " WHERE " + corr;
    stmt += ")";
    return stmt;
  }

  std::string EmitUnion(const Plan& plan) {
    // SQL UNION matches columns by *position*, but `Plan::Union` only
    // requires equal attribute *sets* — when the right child's column order
    // differs, wrap it in a reordering SELECT so positions line up with the
    // left child.
    std::string stmt = Emit(*plan.left()) + "\nUNION\n";
    if (plan.right()->schema() == plan.left()->schema()) {
      stmt += Emit(*plan.right());
    } else {
      std::string r = Alias();
      stmt += "SELECT " + SelectList(plan.left()->schema(), r) + " FROM (" +
              Emit(*plan.right()) + ") " + r;
    }
    return stmt;
  }

  std::string EmitProject(const Plan& plan) {
    std::string alias = Alias();
    return "SELECT DISTINCT " + SelectList(plan.schema(), alias) + " FROM (" +
           Emit(*plan.child()) + ") " + alias;
  }

  const Vocabulary& vocab_;
  int counter_ = 0;
};

}  // namespace

std::string EmitSql(const Vocabulary& vocab, const PlanPtr& plan) {
  assert(plan != nullptr);
  return SqlEmitter(vocab).Emit(*plan);
}

}  // namespace lqdb
