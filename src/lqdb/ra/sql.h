#ifndef LQDB_RA_SQL_H_
#define LQDB_RA_SQL_H_

#include <string>

#include "lqdb/ra/plan.h"

namespace lqdb {

/// Renders a relational-algebra plan as a SQL SELECT statement, to document
/// how the compiled queries of §5 would run on an off-the-shelf relational
/// DBMS. Conventions: every predicate `P` of arity k is a table `P(c0, ...,
/// c{k-1})`; the active domain is a one-column table `dom(v)`; attributes
/// are named after their query variables. Arity-0 intermediates carry a
/// constant `one` column (SQL has no zero-column tables).
///
/// The output is illustrative, standard SQL; this library executes plans
/// with `RaExecutor` rather than shipping them to an external engine.
std::string EmitSql(const Vocabulary& vocab, const PlanPtr& plan);

}  // namespace lqdb

#endif  // LQDB_RA_SQL_H_
