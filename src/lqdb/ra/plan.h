#ifndef LQDB_RA_PLAN_H_
#define LQDB_RA_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "lqdb/logic/term.h"
#include "lqdb/logic/vocabulary.h"
#include "lqdb/util/result.h"

namespace lqdb {

/// Relational-algebra operator kinds. Attributes are named by `VarId` (the
/// query variable that a column carries), which makes natural join "join on
/// shared variables" — the textbook translation of conjunction.
enum class PlanKind {
  kScan,         ///< Stored relation with constant filters / repeated vars.
  kConstTuples,  ///< Literal rows of constant symbols.
  kConstCompare, ///< Arity-0: one row iff two constants denote equal values.
  kDomainScan,   ///< One attribute ranging over the database domain.
  kEqDomain,     ///< Two attributes, rows {(d, d) : d in domain}.
  kJoin,         ///< Natural join (Cartesian product when no shared attr).
  kAntiJoin,     ///< Left rows with no right match on the shared attributes.
  kSemiJoin,     ///< Left rows with some right match on the shared attributes.
  kUnion,        ///< Set union; both sides must carry the same attribute set.
  kProject,      ///< Duplicate-eliminating projection / column reorder.
  kParam,        ///< Runtime-bound rows (`RaExecutor::BindParam`).
};

class Plan;
using PlanPtr = std::shared_ptr<const Plan>;

/// An immutable relational-algebra plan node. Construction goes through the
/// validating factories, which compute the output schema.
class Plan {
 public:
  /// `P(t1, ..., tk)`: columns holding constants become selections, repeated
  /// variables become equality filters; the schema lists the distinct
  /// variables in order of first occurrence.
  static Result<PlanPtr> Scan(const Vocabulary& vocab, PredId pred,
                              TermList columns);

  /// Literal rows; every row must have `schema.size()` constants.
  static Result<PlanPtr> ConstTuples(std::vector<VarId> schema,
                                     std::vector<std::vector<ConstId>> rows);

  /// Arity-0 relation holding one row iff `lhs` and `rhs` are interpreted as
  /// the same domain value.
  static PlanPtr ConstCompare(ConstId lhs, ConstId rhs);

  static PlanPtr DomainScan(VarId attr);

  static Result<PlanPtr> EqDomain(VarId lhs, VarId rhs);

  static Result<PlanPtr> Join(PlanPtr left, PlanPtr right);

  static Result<PlanPtr> AntiJoin(PlanPtr left, PlanPtr right);

  /// Keeps the left rows with at least one right match on the shared
  /// attributes (the reducer of a semijoin reduction); schema = left's.
  static Result<PlanPtr> SemiJoin(PlanPtr left, PlanPtr right);

  /// A table whose rows are supplied at execution time via
  /// `RaExecutor::BindParam`, keyed by node identity. The semijoin
  /// reduction uses one per query to stream the surviving candidate set of
  /// the Theorem 1 loop into the plan.
  static Result<PlanPtr> Param(std::vector<VarId> schema);

  /// Requires equal attribute sets (any order).
  static Result<PlanPtr> Union(PlanPtr left, PlanPtr right);

  /// `attrs` must be distinct and a subset of the child's schema; the output
  /// columns follow `attrs` order.
  static Result<PlanPtr> Project(PlanPtr child, std::vector<VarId> attrs);

  PlanKind kind() const { return kind_; }
  const std::vector<VarId>& schema() const { return schema_; }
  PredId pred() const { return pred_; }
  const TermList& scan_columns() const { return scan_columns_; }
  const std::vector<std::vector<ConstId>>& rows() const { return rows_; }
  ConstId compare_lhs() const { return compare_lhs_; }
  ConstId compare_rhs() const { return compare_rhs_; }
  const PlanPtr& left() const { return children_[0]; }
  const PlanPtr& right() const { return children_[1]; }
  /// Sole child of a unary node.
  const PlanPtr& child() const { return children_[0]; }
  const std::vector<PlanPtr>& children() const { return children_; }

  /// Indented operator-tree dump for debugging and tests.
  std::string ToString(const Vocabulary& vocab) const;

  /// The one-line label of this node alone (no children, no newline) —
  /// the building block of `ToString` and of annotated plan dumps
  /// (`RaCompiler::AnnotatePlan`, shell `explain`).
  std::string NodeLabel(const Vocabulary& vocab) const;

  /// Total number of operator nodes, counting a shared subtree once per
  /// reference (the plan viewed as a tree).
  size_t NumNodes() const;

  /// Number of distinct operator nodes (the plan viewed as a DAG). Compiled
  /// plans share subplans — `↔`/`∀` reference each compiled child from two
  /// branches — so this is the measure of compiled-plan size and of the
  /// work a memoizing executor performs.
  size_t NumUniqueNodes() const;

 protected:
  explicit Plan(PlanKind kind) : kind_(kind) {}

 private:
  /// Test-only backdoor (tests/ra_validate_test.cc): corrupts constructed
  /// nodes to prove the static validator rejects shapes the factories
  /// refuse to build. Never used by library code.
  friend struct PlanTestPeer;

  void AppendTo(const Vocabulary& vocab, int indent, std::string* out) const;

  PlanKind kind_;
  std::vector<VarId> schema_;
  PredId pred_ = 0;
  TermList scan_columns_;
  std::vector<std::vector<ConstId>> rows_;
  ConstId compare_lhs_ = 0;
  ConstId compare_rhs_ = 0;
  std::vector<PlanPtr> children_;
};

}  // namespace lqdb

#endif  // LQDB_RA_PLAN_H_
