#include "lqdb/ra/compiler.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <limits>
#include <map>
#include <set>
#include <utility>

namespace lqdb {

Result<PlanPtr> RaCompiler::Compile(const Query& query) {
  LQDB_ASSIGN_OR_RETURN(PlanPtr plan, CompileFormula(query.body()));
  std::set<VarId> head(query.head().begin(), query.head().end());
  LQDB_ASSIGN_OR_RETURN(plan, PadTo(std::move(plan), head));
  return Plan::Project(std::move(plan), query.head());
}

Result<PlanPtr> RaCompiler::CompileFormula(const FormulaPtr& f) {
  if (f == nullptr) return Status::InvalidArgument("null formula");
  switch (f->kind()) {
    case FormulaKind::kTrue:
      return Unit();
    case FormulaKind::kFalse:
      return Plan::ConstTuples({}, {});
    case FormulaKind::kEquals:
      return CompileEquals(f);
    case FormulaKind::kAtom:
      return Plan::Scan(*vocab_, f->pred(), f->terms());
    case FormulaKind::kNot:
      return CompileNot(f);
    case FormulaKind::kAnd:
      return CompileAnd(f);
    case FormulaKind::kOr:
      return CompileOr(f);
    case FormulaKind::kImplies:
      return CompileImplies(f);
    case FormulaKind::kIff:
      return CompileIff(f);
    case FormulaKind::kExists:
      return CompileExists(f);
    case FormulaKind::kForall:
      return CompileForall(f);
    case FormulaKind::kExistsPred:
    case FormulaKind::kForallPred:
      return Status::Unimplemented(
          "second-order quantification cannot be compiled to relational "
          "algebra");
  }
  return Status::Internal("unknown formula kind");
}

Result<PlanPtr> RaCompiler::CompileEquals(const FormulaPtr& f) {
  const Term& lhs = f->terms()[0];
  const Term& rhs = f->terms()[1];
  if (lhs.is_variable() && rhs.is_variable()) {
    if (lhs.var() == rhs.var()) return Plan::DomainScan(lhs.var());
    return Plan::EqDomain(lhs.var(), rhs.var());
  }
  if (lhs.is_variable()) {
    return Plan::ConstTuples({lhs.var()}, {{rhs.constant()}});
  }
  if (rhs.is_variable()) {
    return Plan::ConstTuples({rhs.var()}, {{lhs.constant()}});
  }
  return Plan::ConstCompare(lhs.constant(), rhs.constant());
}

double RaCompiler::Estimate(const PlanPtr& plan) {
  auto it = estimate_cache_.find(plan);
  if (it != estimate_cache_.end()) return it->second;
  const double domain = std::max(1.0, stats_.domain_size);
  double est = 1.0;
  switch (plan->kind()) {
    case PlanKind::kScan: {
      est = stats_.RelationSize(plan->pred());
      // Every constant filter and repeated-variable filter keeps roughly a
      // 1/|domain| fraction of the stored rows.
      std::set<VarId> seen;
      for (const Term& t : plan->scan_columns()) {
        if (t.is_constant() || !seen.insert(t.var()).second) est /= domain;
      }
      break;
    }
    case PlanKind::kConstTuples:
      est = static_cast<double>(plan->rows().size());
      break;
    case PlanKind::kConstCompare:
      est = 0.5;  // one row or none
      break;
    case PlanKind::kDomainScan:
      est = domain;
      break;
    case PlanKind::kEqDomain:
      est = domain;
      break;
    case PlanKind::kJoin: {
      const double l = Estimate(plan->left());
      const double r = Estimate(plan->right());
      std::set<VarId> lattrs(plan->left()->schema().begin(),
                             plan->left()->schema().end());
      est = l * r;
      for (VarId v : plan->right()->schema()) {
        if (lattrs.count(v) > 0) est /= domain;
      }
      break;
    }
    case PlanKind::kAntiJoin:
    case PlanKind::kSemiJoin:
      est = Estimate(plan->left());  // at most the left side survives
      break;
    case PlanKind::kParam:
      // Bound at runtime with the surviving Theorem 1 candidate set; a
      // domain's worth of rows is the steady-state order of magnitude.
      est = domain;
      break;
    case PlanKind::kUnion:
      est = Estimate(plan->left()) + Estimate(plan->right());
      break;
    case PlanKind::kProject:
      est = Estimate(plan->child());
      break;
  }
  estimate_cache_.emplace(plan, est);
  return est;
}

Result<PlanPtr> RaCompiler::CompileAnd(const FormulaPtr& f) {
  // Free variables of the whole conjunction: the anti-join accumulator must
  // carry all of them before negative conjuncts are applied.
  std::set<VarId> all_free = FreeVariables(f);

  std::vector<FormulaPtr> positives;
  std::vector<FormulaPtr> negatives;  // the bodies under kNot
  for (const auto& c : f->children()) {
    if (c->kind() == FormulaKind::kNot) {
      negatives.push_back(c->child());
    } else {
      positives.push_back(c);
    }
  }

  // Compile the positive conjuncts, then pick a join order: small
  // conjunctions get exact DP enumeration over connected subgraphs, large
  // ones the linear greedy pass (`dp_join_cap` is the cutover).
  std::vector<PlanPtr> plans;
  plans.reserve(positives.size());
  for (const auto& p : positives) {
    LQDB_ASSIGN_OR_RETURN(PlanPtr plan, CompileFormula(p));
    plans.push_back(std::move(plan));
  }

  PlanPtr acc;
  if (plans.size() == 1) {
    acc = plans[0];
  } else if (plans.size() >= 2) {
    // The DP uses 32-bit subset masks, so it is structurally capped at 20
    // conjuncts no matter how high the knob is turned.
    const bool use_dp = plans.size() <= stats_.dp_join_cap &&
                        plans.size() <= 20;
    if (use_dp) {
      LQDB_ASSIGN_OR_RETURN(acc, OrderJoinsDp(plans));
    } else {
      LQDB_ASSIGN_OR_RETURN(acc, OrderJoinsGreedy(plans));
    }
    JoinOrderInfo info;
    info.conjuncts = plans.size();
    info.used_dp = use_dp;
    info.estimated_rows = Estimate(acc);
    join_order_log_.push_back(info);
  }
  if (acc == nullptr) {
    LQDB_ASSIGN_OR_RETURN(acc, DomainProduct(all_free));
  } else {
    LQDB_ASSIGN_OR_RETURN(acc, PadTo(std::move(acc), all_free));
  }
  for (const auto& n : negatives) {
    LQDB_ASSIGN_OR_RETURN(PlanPtr plan, CompileFormula(n));
    LQDB_ASSIGN_OR_RETURN(acc,
                          Plan::AntiJoin(std::move(acc), std::move(plan)));
  }
  return acc;
}

Result<PlanPtr> RaCompiler::OrderJoinsGreedy(const std::vector<PlanPtr>& plans) {
  // Seed the accumulator with the smallest estimated input, then at every
  // step join the partner that minimizes the estimated size of the joined
  // accumulator. Partners sharing an attribute with the accumulated schema
  // win over disconnected ones outright, so Cartesian products only appear
  // when the join graph is disconnected.
  const double domain = std::max(1.0, stats_.domain_size);
  PlanPtr acc;
  double acc_est = 1.0;
  std::set<VarId> bound;
  std::vector<bool> used(plans.size(), false);
  for (size_t step = 0; step < plans.size(); ++step) {
    size_t pick = plans.size();
    double pick_est = 0.0;
    bool pick_connected = false;
    for (size_t i = 0; i < plans.size(); ++i) {
      if (used[i]) continue;
      size_t shared = 0;
      for (VarId v : plans[i]->schema()) shared += bound.count(v);
      const bool connected = shared > 0;
      double joined = acc_est * Estimate(plans[i]);
      for (size_t s = 0; s < shared; ++s) joined /= domain;
      if (pick == plans.size() || (connected && !pick_connected) ||
          (connected == pick_connected && joined < pick_est)) {
        pick = i;
        pick_est = joined;
        pick_connected = connected;
      }
    }
    used[pick] = true;
    for (VarId v : plans[pick]->schema()) bound.insert(v);
    if (acc == nullptr) {
      acc = plans[pick];
      acc_est = Estimate(plans[pick]);
    } else {
      LQDB_ASSIGN_OR_RETURN(acc, Plan::Join(std::move(acc), plans[pick]));
      acc_est = pick_est;
    }
  }
  return acc;
}

Result<PlanPtr> RaCompiler::OrderJoinsDp(const std::vector<PlanPtr>& plans) {
  // DPsub over the conjunct join graph (conjuncts are vertices, shared
  // variables edges), kuzu-style but sized for Theorem 1 workloads: for
  // every connected subset S the best cost[S] is the cheapest way to
  // produce S from a *connected* split S1 ⊎ S2 with an edge between the
  // halves, under the C_out cost model (cost = Σ estimated intermediate
  // sizes). Cross products therefore never appear inside a connected
  // component; disconnected components are combined afterwards, smallest
  // estimate first. Deterministic: subsets ascend numerically and ties
  // keep the first winner.
  const size_t n = plans.size();
  const uint32_t full = static_cast<uint32_t>((1ull << n) - 1);
  const double domain = std::max(1.0, stats_.domain_size);
  constexpr double kInf = std::numeric_limits<double>::infinity();

  auto lowest_index = [](uint32_t mask) {
    size_t i = 0;
    while (!(mask & (1u << i))) ++i;
    return i;
  };

  // Which conjuncts carry each variable, then the adjacency masks.
  std::map<VarId, uint32_t> var_occ;
  for (size_t i = 0; i < n; ++i) {
    for (VarId v : plans[i]->schema()) var_occ[v] |= 1u << i;
  }
  std::vector<uint32_t> adj(n, 0);
  for (const auto& [v, occ] : var_occ) {
    for (size_t i = 0; i < n; ++i) {
      if (occ & (1u << i)) adj[i] |= occ;
    }
  }
  for (size_t i = 0; i < n; ++i) adj[i] &= ~(1u << i);

  // Estimated size of every subset, built incrementally: joining conjunct
  // i into the rest R keeps one 1/|domain| factor per variable of i that R
  // already carries — the same independence model as `Estimate(kJoin)`.
  std::vector<double> sest(static_cast<size_t>(full) + 1, 1.0);
  for (uint32_t s = 1; s <= full; ++s) {
    const size_t i = lowest_index(s);
    const uint32_t rest = s & (s - 1);
    double e = sest[rest] * Estimate(plans[i]);
    if (rest != 0) {
      for (VarId v : plans[i]->schema()) {
        if (var_occ[v] & rest) e /= domain;
      }
    }
    sest[s] = e;
  }

  std::vector<double> cost(static_cast<size_t>(full) + 1, kInf);
  std::vector<uint32_t> split(static_cast<size_t>(full) + 1, 0);
  for (size_t i = 0; i < n; ++i) cost[1u << i] = 0.0;

  // Connected components of the join graph.
  std::vector<uint32_t> comps;
  {
    uint32_t seen = 0;
    for (size_t i = 0; i < n; ++i) {
      if (seen & (1u << i)) continue;
      uint32_t comp = 1u << i;
      for (;;) {
        uint32_t grown = comp;
        for (size_t j = 0; j < n; ++j) {
          if (comp & (1u << j)) grown |= adj[j];
        }
        if (grown == comp) break;
        comp = grown;
      }
      seen |= comp;
      comps.push_back(comp);
    }
  }

  for (const uint32_t comp : comps) {
    // Ascending submask enumeration: every proper submask of s is
    // numerically smaller, so both halves of a split are already final.
    for (uint32_t s = (0u - comp) & comp; s != 0; s = (s - comp) & comp) {
      if ((s & (s - 1)) == 0) {
        if (s == comp) break;
        continue;  // singleton
      }
      const uint32_t low = s & (0u - s);
      double best = kInf;
      uint32_t best_split = 0;
      // Canonical splits: the half holding s's lowest conjunct is s1.
      for (uint32_t s1 = (s - 1) & s; s1 != 0; s1 = (s1 - 1) & s) {
        if (!(s1 & low)) continue;
        const uint32_t s2 = s ^ s1;
        if (cost[s1] == kInf || cost[s2] == kInf) continue;
        bool touch = false;
        for (size_t i = 0; i < n && !touch; ++i) {
          if (s1 & (1u << i)) touch = (adj[i] & s2) != 0;
        }
        if (!touch) continue;
        const double c = cost[s1] + cost[s2] + sest[s];
        if (c < best) {
          best = c;
          best_split = s1;
        }
      }
      cost[s] = best;
      split[s] = best_split;
      if (s == comp) break;
    }
    // A connected component always has a connected split chain; if the
    // model ever disagrees, fall back to the greedy order rather than
    // fail the compile.
    if (cost[comp] == kInf) return OrderJoinsGreedy(plans);
  }

  std::function<Result<PlanPtr>(uint32_t)> build =
      [&](uint32_t s) -> Result<PlanPtr> {
    if ((s & (s - 1)) == 0) return plans[lowest_index(s)];
    // C_out is symmetric in the two halves, so put the smaller estimated
    // side on the left — the convention the greedy pass establishes (and
    // tests pin); the executor picks the build side by actual size anyway.
    uint32_t s1 = split[s];
    uint32_t s2 = s ^ split[s];
    if (sest[s2] < sest[s1]) std::swap(s1, s2);
    LQDB_ASSIGN_OR_RETURN(PlanPtr l, build(s1));
    LQDB_ASSIGN_OR_RETURN(PlanPtr r, build(s2));
    return Plan::Join(std::move(l), std::move(r));
  };

  // Combine components ascending by estimated size (stable on ties), so
  // the unavoidable cross products multiply small intermediates first.
  std::stable_sort(comps.begin(), comps.end(),
                   [&](uint32_t a, uint32_t b) { return sest[a] < sest[b]; });
  PlanPtr acc;
  for (const uint32_t comp : comps) {
    LQDB_ASSIGN_OR_RETURN(PlanPtr part, build(comp));
    if (acc == nullptr) {
      acc = std::move(part);
    } else {
      LQDB_ASSIGN_OR_RETURN(acc, Plan::Join(std::move(acc), std::move(part)));
    }
  }
  return acc;
}

std::string RaCompiler::AnnotatePlan(const PlanPtr& plan) {
  std::string out;
  std::function<void(const PlanPtr&, int)> walk = [&](const PlanPtr& p,
                                                      int indent) {
    out.append(static_cast<size_t>(indent) * 2, ' ');
    out += p->NodeLabel(*vocab_);
    char est[32];
    std::snprintf(est, sizeof(est), "%.3g", Estimate(p));
    out += "  ~";
    out += est;
    out += " rows\n";
    for (const auto& c : p->children()) walk(c, indent + 1);
  };
  walk(plan, 0);
  return out;
}

Result<PlanPtr> RaCompiler::CompileOr(const FormulaPtr& f) {
  std::set<VarId> all_free = FreeVariables(f);
  PlanPtr acc;
  for (const auto& c : f->children()) {
    LQDB_ASSIGN_OR_RETURN(PlanPtr plan, CompileFormula(c));
    LQDB_ASSIGN_OR_RETURN(plan, PadTo(std::move(plan), all_free));
    if (acc == nullptr) {
      acc = std::move(plan);
    } else {
      LQDB_ASSIGN_OR_RETURN(acc, Plan::Union(std::move(acc), std::move(plan)));
    }
  }
  return acc;
}

Result<PlanPtr> RaCompiler::Complement(PlanPtr plan,
                                       const std::set<VarId>& free) {
  LQDB_ASSIGN_OR_RETURN(PlanPtr universe, DomainProduct(free));
  return Plan::AntiJoin(std::move(universe), std::move(plan));
}

Result<PlanPtr> RaCompiler::CompileNot(const FormulaPtr& f) {
  const FormulaPtr& body = f->child();
  LQDB_ASSIGN_OR_RETURN(PlanPtr plan, CompileFormula(body));
  return Complement(std::move(plan), FreeVariables(body));
}

Result<PlanPtr> RaCompiler::CompileImplies(const FormulaPtr& f) {
  // a → b  ==  ¬a ∨ b over the union of both sides' free variables; each
  // child is compiled exactly once.
  const std::set<VarId> all_free = FreeVariables(f);
  LQDB_ASSIGN_OR_RETURN(PlanPtr lhs, CompileFormula(f->child(0)));
  LQDB_ASSIGN_OR_RETURN(PlanPtr not_lhs, Complement(std::move(lhs),
                                                    FreeVariables(f->child(0))));
  LQDB_ASSIGN_OR_RETURN(not_lhs, PadTo(std::move(not_lhs), all_free));
  LQDB_ASSIGN_OR_RETURN(PlanPtr rhs, CompileFormula(f->child(1)));
  LQDB_ASSIGN_OR_RETURN(rhs, PadTo(std::move(rhs), all_free));
  return Plan::Union(std::move(not_lhs), std::move(rhs));
}

Result<PlanPtr> RaCompiler::CompileIff(const FormulaPtr& f) {
  // a ↔ b  ==  (a ∧ b) ∨ (¬a ∧ ¬b). The formula-level rewrite this
  // replaces compiled each child twice, making plan size exponential in
  // nesting depth; here each child is compiled once and the compiled
  // (immutable) plan is shared between the positive and negative branch,
  // so the result is a DAG of size linear in the formula.
  const std::set<VarId> all_free = FreeVariables(f);
  const std::set<VarId> lhs_free = FreeVariables(f->child(0));
  const std::set<VarId> rhs_free = FreeVariables(f->child(1));
  LQDB_ASSIGN_OR_RETURN(PlanPtr lhs, CompileFormula(f->child(0)));
  LQDB_ASSIGN_OR_RETURN(PlanPtr rhs, CompileFormula(f->child(1)));
  LQDB_ASSIGN_OR_RETURN(PlanPtr both, Plan::Join(lhs, rhs));
  LQDB_ASSIGN_OR_RETURN(both, PadTo(std::move(both), all_free));
  LQDB_ASSIGN_OR_RETURN(PlanPtr not_lhs, Complement(std::move(lhs), lhs_free));
  LQDB_ASSIGN_OR_RETURN(PlanPtr not_rhs, Complement(std::move(rhs), rhs_free));
  LQDB_ASSIGN_OR_RETURN(
      PlanPtr neither, Plan::Join(std::move(not_lhs), std::move(not_rhs)));
  LQDB_ASSIGN_OR_RETURN(neither, PadTo(std::move(neither), all_free));
  return Plan::Union(std::move(both), std::move(neither));
}

Result<PlanPtr> RaCompiler::ExistsPlan(PlanPtr plan, VarId var) {
  std::vector<VarId> kept;
  bool had = false;
  for (VarId v : plan->schema()) {
    if (v == var) {
      had = true;
    } else {
      kept.push_back(v);
    }
  }
  if (!had) {
    // The bound variable is vacuous in the body, but ∃x φ still demands a
    // witness from the domain: over an *empty* domain the quantifier is
    // false, so φ's plan cannot be returned unchanged. Joining against a
    // domain scan empties the result exactly when the domain is empty; the
    // projection below drops the witness column again.
    LQDB_ASSIGN_OR_RETURN(plan,
                          Plan::Join(std::move(plan), Plan::DomainScan(var)));
  }
  return Plan::Project(std::move(plan), std::move(kept));
}

Result<PlanPtr> RaCompiler::CompileExists(const FormulaPtr& f) {
  LQDB_ASSIGN_OR_RETURN(PlanPtr plan, CompileFormula(f->child()));
  return ExistsPlan(std::move(plan), f->var());
}

Result<PlanPtr> RaCompiler::CompileForall(const FormulaPtr& f) {
  // ∀x φ  ==  ¬∃x ¬φ, built directly over a single compilation of φ (the
  // formula-level rewrite this replaces re-entered the compiler on a
  // wrapped copy of the subtree, duplicating work and plan nodes).
  const FormulaPtr& child = f->child();
  if (child->kind() == FormulaKind::kImplies) {
    // Guarded universal, the common shape: ∀x (a → b) == ¬∃x (a ∧ ¬b).
    // The violating set a ∧ ¬b is one anti-join of a against b (keyed on
    // b's free variables), whereas complementing the compiled implication
    // (an ¬a ∨ b union) materializes a domain-product universe over all
    // of the body's free variables — |C|^k rows per image.
    const std::set<VarId> body_free = FreeVariables(child);
    LQDB_ASSIGN_OR_RETURN(PlanPtr guard, CompileFormula(child->child(0)));
    LQDB_ASSIGN_OR_RETURN(guard, PadTo(std::move(guard), body_free));
    LQDB_ASSIGN_OR_RETURN(PlanPtr then, CompileFormula(child->child(1)));
    LQDB_ASSIGN_OR_RETURN(
        PlanPtr violating, Plan::AntiJoin(std::move(guard), std::move(then)));
    LQDB_ASSIGN_OR_RETURN(PlanPtr witness,
                          ExistsPlan(std::move(violating), f->var()));
    return Complement(std::move(witness), FreeVariables(f));
  }
  const std::set<VarId> body_free = FreeVariables(child);
  LQDB_ASSIGN_OR_RETURN(PlanPtr body, CompileFormula(child));
  LQDB_ASSIGN_OR_RETURN(PlanPtr violating,
                        Complement(std::move(body), body_free));
  LQDB_ASSIGN_OR_RETURN(PlanPtr witness,
                        ExistsPlan(std::move(violating), f->var()));
  return Complement(std::move(witness), FreeVariables(f));
}

Result<PlanPtr> RaCompiler::Unit() {
  return Plan::ConstTuples({}, {{}});
}

Result<PlanPtr> RaCompiler::DomainProduct(const std::set<VarId>& vars) {
  if (vars.empty()) return Unit();
  PlanPtr acc;
  for (VarId v : vars) {
    PlanPtr scan = Plan::DomainScan(v);
    if (acc == nullptr) {
      acc = std::move(scan);
    } else {
      LQDB_ASSIGN_OR_RETURN(acc, Plan::Join(std::move(acc), std::move(scan)));
    }
  }
  return acc;
}

Result<PlanPtr> RaCompiler::PadTo(PlanPtr plan, const std::set<VarId>& vars) {
  std::set<VarId> have(plan->schema().begin(), plan->schema().end());
  for (VarId v : vars) {
    if (have.count(v) == 0) {
      LQDB_ASSIGN_OR_RETURN(
          plan, Plan::Join(std::move(plan), Plan::DomainScan(v)));
    }
  }
  return plan;
}

}  // namespace lqdb
