#include "lqdb/ra/compiler.h"

#include <algorithm>
#include <set>

namespace lqdb {

Result<PlanPtr> RaCompiler::Compile(const Query& query) {
  LQDB_ASSIGN_OR_RETURN(PlanPtr plan, CompileFormula(query.body()));
  std::set<VarId> head(query.head().begin(), query.head().end());
  LQDB_ASSIGN_OR_RETURN(plan, PadTo(std::move(plan), head));
  return Plan::Project(std::move(plan), query.head());
}

Result<PlanPtr> RaCompiler::CompileFormula(const FormulaPtr& f) {
  if (f == nullptr) return Status::InvalidArgument("null formula");
  switch (f->kind()) {
    case FormulaKind::kTrue:
      return Unit();
    case FormulaKind::kFalse:
      return Plan::ConstTuples({}, {});
    case FormulaKind::kEquals:
      return CompileEquals(f);
    case FormulaKind::kAtom:
      return Plan::Scan(*vocab_, f->pred(), f->terms());
    case FormulaKind::kNot:
      return CompileNot(f);
    case FormulaKind::kAnd:
      return CompileAnd(f);
    case FormulaKind::kOr:
      return CompileOr(f);
    case FormulaKind::kImplies:
      // a -> b  ==  ¬a ∨ b.
      return CompileFormula(
          Formula::Or(Formula::Not(f->child(0)), f->child(1)));
    case FormulaKind::kIff:
      // a <-> b  ==  (a ∧ b) ∨ (¬a ∧ ¬b).
      return CompileFormula(Formula::Or(
          Formula::And(f->child(0), f->child(1)),
          Formula::And(Formula::Not(f->child(0)),
                       Formula::Not(f->child(1)))));
    case FormulaKind::kExists:
      return CompileExists(f);
    case FormulaKind::kForall:
      // ∀x φ  ==  ¬∃x ¬φ.
      return CompileFormula(Formula::Not(
          Formula::Exists(f->var(), Formula::Not(f->child()))));
    case FormulaKind::kExistsPred:
    case FormulaKind::kForallPred:
      return Status::Unimplemented(
          "second-order quantification cannot be compiled to relational "
          "algebra");
  }
  return Status::Internal("unknown formula kind");
}

Result<PlanPtr> RaCompiler::CompileEquals(const FormulaPtr& f) {
  const Term& lhs = f->terms()[0];
  const Term& rhs = f->terms()[1];
  if (lhs.is_variable() && rhs.is_variable()) {
    if (lhs.var() == rhs.var()) return Plan::DomainScan(lhs.var());
    return Plan::EqDomain(lhs.var(), rhs.var());
  }
  if (lhs.is_variable()) {
    return Plan::ConstTuples({lhs.var()}, {{rhs.constant()}});
  }
  if (rhs.is_variable()) {
    return Plan::ConstTuples({rhs.var()}, {{lhs.constant()}});
  }
  return Plan::ConstCompare(lhs.constant(), rhs.constant());
}

Result<PlanPtr> RaCompiler::CompileAnd(const FormulaPtr& f) {
  // Free variables of the whole conjunction: the anti-join accumulator must
  // carry all of them before negative conjuncts are applied.
  std::set<VarId> all_free = FreeVariables(f);

  std::vector<FormulaPtr> positives;
  std::vector<FormulaPtr> negatives;  // the bodies under kNot
  for (const auto& c : f->children()) {
    if (c->kind() == FormulaKind::kNot) {
      negatives.push_back(c->child());
    } else {
      positives.push_back(c);
    }
  }

  // Compile the positive conjuncts, then greedily order the joins: start
  // from the plan that is cheapest to produce (fewest operator nodes as a
  // static proxy for cardinality) and at every step prefer a join partner
  // sharing at least one attribute with the accumulated schema, avoiding
  // Cartesian products whenever the join graph is connected.
  std::vector<PlanPtr> plans;
  plans.reserve(positives.size());
  for (const auto& p : positives) {
    LQDB_ASSIGN_OR_RETURN(PlanPtr plan, CompileFormula(p));
    plans.push_back(std::move(plan));
  }
  std::sort(plans.begin(), plans.end(),
            [](const PlanPtr& a, const PlanPtr& b) {
              return a->NumNodes() < b->NumNodes();
            });

  PlanPtr acc;
  std::set<VarId> bound;
  std::vector<bool> used(plans.size(), false);
  for (size_t step = 0; step < plans.size(); ++step) {
    size_t pick = plans.size();
    for (size_t i = 0; i < plans.size(); ++i) {
      if (used[i]) continue;
      bool connected = false;
      for (VarId v : plans[i]->schema()) {
        if (bound.count(v) > 0) connected = true;
      }
      if (acc == nullptr || connected) {
        pick = i;
        break;
      }
      if (pick == plans.size()) pick = i;  // fall back to a product
    }
    used[pick] = true;
    for (VarId v : plans[pick]->schema()) bound.insert(v);
    if (acc == nullptr) {
      acc = plans[pick];
    } else {
      LQDB_ASSIGN_OR_RETURN(acc, Plan::Join(std::move(acc), plans[pick]));
    }
  }
  if (acc == nullptr) {
    LQDB_ASSIGN_OR_RETURN(acc, DomainProduct(all_free));
  } else {
    LQDB_ASSIGN_OR_RETURN(acc, PadTo(std::move(acc), all_free));
  }
  for (const auto& n : negatives) {
    LQDB_ASSIGN_OR_RETURN(PlanPtr plan, CompileFormula(n));
    LQDB_ASSIGN_OR_RETURN(acc,
                          Plan::AntiJoin(std::move(acc), std::move(plan)));
  }
  return acc;
}

Result<PlanPtr> RaCompiler::CompileOr(const FormulaPtr& f) {
  std::set<VarId> all_free = FreeVariables(f);
  PlanPtr acc;
  for (const auto& c : f->children()) {
    LQDB_ASSIGN_OR_RETURN(PlanPtr plan, CompileFormula(c));
    LQDB_ASSIGN_OR_RETURN(plan, PadTo(std::move(plan), all_free));
    if (acc == nullptr) {
      acc = std::move(plan);
    } else {
      LQDB_ASSIGN_OR_RETURN(acc, Plan::Union(std::move(acc), std::move(plan)));
    }
  }
  return acc;
}

Result<PlanPtr> RaCompiler::CompileNot(const FormulaPtr& f) {
  const FormulaPtr& body = f->child();
  LQDB_ASSIGN_OR_RETURN(PlanPtr plan, CompileFormula(body));
  LQDB_ASSIGN_OR_RETURN(PlanPtr universe, DomainProduct(FreeVariables(body)));
  return Plan::AntiJoin(std::move(universe), std::move(plan));
}

Result<PlanPtr> RaCompiler::CompileExists(const FormulaPtr& f) {
  LQDB_ASSIGN_OR_RETURN(PlanPtr plan, CompileFormula(f->child()));
  const std::vector<VarId>& schema = plan->schema();
  if (std::find(schema.begin(), schema.end(), f->var()) == schema.end()) {
    // The bound variable is not free in the body: ∃x φ ≡ φ (the domain of a
    // physical database is nonempty).
    return plan;
  }
  std::vector<VarId> kept;
  for (VarId v : schema) {
    if (v != f->var()) kept.push_back(v);
  }
  return Plan::Project(std::move(plan), std::move(kept));
}

Result<PlanPtr> RaCompiler::Unit() {
  return Plan::ConstTuples({}, {{}});
}

Result<PlanPtr> RaCompiler::DomainProduct(const std::set<VarId>& vars) {
  if (vars.empty()) return Unit();
  PlanPtr acc;
  for (VarId v : vars) {
    PlanPtr scan = Plan::DomainScan(v);
    if (acc == nullptr) {
      acc = std::move(scan);
    } else {
      LQDB_ASSIGN_OR_RETURN(acc, Plan::Join(std::move(acc), std::move(scan)));
    }
  }
  return acc;
}

Result<PlanPtr> RaCompiler::PadTo(PlanPtr plan, const std::set<VarId>& vars) {
  std::set<VarId> have(plan->schema().begin(), plan->schema().end());
  for (VarId v : vars) {
    if (have.count(v) == 0) {
      LQDB_ASSIGN_OR_RETURN(
          plan, Plan::Join(std::move(plan), Plan::DomainScan(v)));
    }
  }
  return plan;
}

}  // namespace lqdb
