#include "lqdb/ra/compiler.h"

#include <algorithm>
#include <set>
#include <utility>

namespace lqdb {

Result<PlanPtr> RaCompiler::Compile(const Query& query) {
  LQDB_ASSIGN_OR_RETURN(PlanPtr plan, CompileFormula(query.body()));
  std::set<VarId> head(query.head().begin(), query.head().end());
  LQDB_ASSIGN_OR_RETURN(plan, PadTo(std::move(plan), head));
  return Plan::Project(std::move(plan), query.head());
}

Result<PlanPtr> RaCompiler::CompileFormula(const FormulaPtr& f) {
  if (f == nullptr) return Status::InvalidArgument("null formula");
  switch (f->kind()) {
    case FormulaKind::kTrue:
      return Unit();
    case FormulaKind::kFalse:
      return Plan::ConstTuples({}, {});
    case FormulaKind::kEquals:
      return CompileEquals(f);
    case FormulaKind::kAtom:
      return Plan::Scan(*vocab_, f->pred(), f->terms());
    case FormulaKind::kNot:
      return CompileNot(f);
    case FormulaKind::kAnd:
      return CompileAnd(f);
    case FormulaKind::kOr:
      return CompileOr(f);
    case FormulaKind::kImplies:
      return CompileImplies(f);
    case FormulaKind::kIff:
      return CompileIff(f);
    case FormulaKind::kExists:
      return CompileExists(f);
    case FormulaKind::kForall:
      return CompileForall(f);
    case FormulaKind::kExistsPred:
    case FormulaKind::kForallPred:
      return Status::Unimplemented(
          "second-order quantification cannot be compiled to relational "
          "algebra");
  }
  return Status::Internal("unknown formula kind");
}

Result<PlanPtr> RaCompiler::CompileEquals(const FormulaPtr& f) {
  const Term& lhs = f->terms()[0];
  const Term& rhs = f->terms()[1];
  if (lhs.is_variable() && rhs.is_variable()) {
    if (lhs.var() == rhs.var()) return Plan::DomainScan(lhs.var());
    return Plan::EqDomain(lhs.var(), rhs.var());
  }
  if (lhs.is_variable()) {
    return Plan::ConstTuples({lhs.var()}, {{rhs.constant()}});
  }
  if (rhs.is_variable()) {
    return Plan::ConstTuples({rhs.var()}, {{lhs.constant()}});
  }
  return Plan::ConstCompare(lhs.constant(), rhs.constant());
}

double RaCompiler::Estimate(const PlanPtr& plan) {
  auto it = estimate_cache_.find(plan);
  if (it != estimate_cache_.end()) return it->second;
  const double domain = std::max(1.0, stats_.domain_size);
  double est = 1.0;
  switch (plan->kind()) {
    case PlanKind::kScan: {
      est = stats_.RelationSize(plan->pred());
      // Every constant filter and repeated-variable filter keeps roughly a
      // 1/|domain| fraction of the stored rows.
      std::set<VarId> seen;
      for (const Term& t : plan->scan_columns()) {
        if (t.is_constant() || !seen.insert(t.var()).second) est /= domain;
      }
      break;
    }
    case PlanKind::kConstTuples:
      est = static_cast<double>(plan->rows().size());
      break;
    case PlanKind::kConstCompare:
      est = 0.5;  // one row or none
      break;
    case PlanKind::kDomainScan:
      est = domain;
      break;
    case PlanKind::kEqDomain:
      est = domain;
      break;
    case PlanKind::kJoin: {
      const double l = Estimate(plan->left());
      const double r = Estimate(plan->right());
      std::set<VarId> lattrs(plan->left()->schema().begin(),
                             plan->left()->schema().end());
      est = l * r;
      for (VarId v : plan->right()->schema()) {
        if (lattrs.count(v) > 0) est /= domain;
      }
      break;
    }
    case PlanKind::kAntiJoin:
      est = Estimate(plan->left());  // at most the left side survives
      break;
    case PlanKind::kUnion:
      est = Estimate(plan->left()) + Estimate(plan->right());
      break;
    case PlanKind::kProject:
      est = Estimate(plan->child());
      break;
  }
  estimate_cache_.emplace(plan, est);
  return est;
}

Result<PlanPtr> RaCompiler::CompileAnd(const FormulaPtr& f) {
  // Free variables of the whole conjunction: the anti-join accumulator must
  // carry all of them before negative conjuncts are applied.
  std::set<VarId> all_free = FreeVariables(f);

  std::vector<FormulaPtr> positives;
  std::vector<FormulaPtr> negatives;  // the bodies under kNot
  for (const auto& c : f->children()) {
    if (c->kind() == FormulaKind::kNot) {
      negatives.push_back(c->child());
    } else {
      positives.push_back(c);
    }
  }

  // Compile the positive conjuncts, then greedily order the joins by
  // estimated cardinality: seed the accumulator with the smallest estimated
  // input, and at every step join the partner that minimizes the estimated
  // size of the joined accumulator. Partners sharing an attribute with the
  // accumulated schema win over disconnected ones outright, so Cartesian
  // products only appear when the join graph is disconnected.
  std::vector<PlanPtr> plans;
  plans.reserve(positives.size());
  for (const auto& p : positives) {
    LQDB_ASSIGN_OR_RETURN(PlanPtr plan, CompileFormula(p));
    plans.push_back(std::move(plan));
  }

  const double domain = std::max(1.0, stats_.domain_size);
  PlanPtr acc;
  double acc_est = 1.0;
  std::set<VarId> bound;
  std::vector<bool> used(plans.size(), false);
  for (size_t step = 0; step < plans.size(); ++step) {
    size_t pick = plans.size();
    double pick_est = 0.0;
    bool pick_connected = false;
    for (size_t i = 0; i < plans.size(); ++i) {
      if (used[i]) continue;
      size_t shared = 0;
      for (VarId v : plans[i]->schema()) shared += bound.count(v);
      const bool connected = shared > 0;
      double joined = acc_est * Estimate(plans[i]);
      for (size_t s = 0; s < shared; ++s) joined /= domain;
      if (pick == plans.size() || (connected && !pick_connected) ||
          (connected == pick_connected && joined < pick_est)) {
        pick = i;
        pick_est = joined;
        pick_connected = connected;
      }
    }
    used[pick] = true;
    for (VarId v : plans[pick]->schema()) bound.insert(v);
    if (acc == nullptr) {
      acc = plans[pick];
      acc_est = Estimate(plans[pick]);
    } else {
      LQDB_ASSIGN_OR_RETURN(acc, Plan::Join(std::move(acc), plans[pick]));
      acc_est = pick_est;
    }
  }
  if (acc == nullptr) {
    LQDB_ASSIGN_OR_RETURN(acc, DomainProduct(all_free));
  } else {
    LQDB_ASSIGN_OR_RETURN(acc, PadTo(std::move(acc), all_free));
  }
  for (const auto& n : negatives) {
    LQDB_ASSIGN_OR_RETURN(PlanPtr plan, CompileFormula(n));
    LQDB_ASSIGN_OR_RETURN(acc,
                          Plan::AntiJoin(std::move(acc), std::move(plan)));
  }
  return acc;
}

Result<PlanPtr> RaCompiler::CompileOr(const FormulaPtr& f) {
  std::set<VarId> all_free = FreeVariables(f);
  PlanPtr acc;
  for (const auto& c : f->children()) {
    LQDB_ASSIGN_OR_RETURN(PlanPtr plan, CompileFormula(c));
    LQDB_ASSIGN_OR_RETURN(plan, PadTo(std::move(plan), all_free));
    if (acc == nullptr) {
      acc = std::move(plan);
    } else {
      LQDB_ASSIGN_OR_RETURN(acc, Plan::Union(std::move(acc), std::move(plan)));
    }
  }
  return acc;
}

Result<PlanPtr> RaCompiler::Complement(PlanPtr plan,
                                       const std::set<VarId>& free) {
  LQDB_ASSIGN_OR_RETURN(PlanPtr universe, DomainProduct(free));
  return Plan::AntiJoin(std::move(universe), std::move(plan));
}

Result<PlanPtr> RaCompiler::CompileNot(const FormulaPtr& f) {
  const FormulaPtr& body = f->child();
  LQDB_ASSIGN_OR_RETURN(PlanPtr plan, CompileFormula(body));
  return Complement(std::move(plan), FreeVariables(body));
}

Result<PlanPtr> RaCompiler::CompileImplies(const FormulaPtr& f) {
  // a → b  ==  ¬a ∨ b over the union of both sides' free variables; each
  // child is compiled exactly once.
  const std::set<VarId> all_free = FreeVariables(f);
  LQDB_ASSIGN_OR_RETURN(PlanPtr lhs, CompileFormula(f->child(0)));
  LQDB_ASSIGN_OR_RETURN(PlanPtr not_lhs, Complement(std::move(lhs),
                                                    FreeVariables(f->child(0))));
  LQDB_ASSIGN_OR_RETURN(not_lhs, PadTo(std::move(not_lhs), all_free));
  LQDB_ASSIGN_OR_RETURN(PlanPtr rhs, CompileFormula(f->child(1)));
  LQDB_ASSIGN_OR_RETURN(rhs, PadTo(std::move(rhs), all_free));
  return Plan::Union(std::move(not_lhs), std::move(rhs));
}

Result<PlanPtr> RaCompiler::CompileIff(const FormulaPtr& f) {
  // a ↔ b  ==  (a ∧ b) ∨ (¬a ∧ ¬b). The formula-level rewrite this
  // replaces compiled each child twice, making plan size exponential in
  // nesting depth; here each child is compiled once and the compiled
  // (immutable) plan is shared between the positive and negative branch,
  // so the result is a DAG of size linear in the formula.
  const std::set<VarId> all_free = FreeVariables(f);
  const std::set<VarId> lhs_free = FreeVariables(f->child(0));
  const std::set<VarId> rhs_free = FreeVariables(f->child(1));
  LQDB_ASSIGN_OR_RETURN(PlanPtr lhs, CompileFormula(f->child(0)));
  LQDB_ASSIGN_OR_RETURN(PlanPtr rhs, CompileFormula(f->child(1)));
  LQDB_ASSIGN_OR_RETURN(PlanPtr both, Plan::Join(lhs, rhs));
  LQDB_ASSIGN_OR_RETURN(both, PadTo(std::move(both), all_free));
  LQDB_ASSIGN_OR_RETURN(PlanPtr not_lhs, Complement(std::move(lhs), lhs_free));
  LQDB_ASSIGN_OR_RETURN(PlanPtr not_rhs, Complement(std::move(rhs), rhs_free));
  LQDB_ASSIGN_OR_RETURN(
      PlanPtr neither, Plan::Join(std::move(not_lhs), std::move(not_rhs)));
  LQDB_ASSIGN_OR_RETURN(neither, PadTo(std::move(neither), all_free));
  return Plan::Union(std::move(both), std::move(neither));
}

Result<PlanPtr> RaCompiler::ExistsPlan(PlanPtr plan, VarId var) {
  std::vector<VarId> kept;
  bool had = false;
  for (VarId v : plan->schema()) {
    if (v == var) {
      had = true;
    } else {
      kept.push_back(v);
    }
  }
  if (!had) {
    // The bound variable is vacuous in the body, but ∃x φ still demands a
    // witness from the domain: over an *empty* domain the quantifier is
    // false, so φ's plan cannot be returned unchanged. Joining against a
    // domain scan empties the result exactly when the domain is empty; the
    // projection below drops the witness column again.
    LQDB_ASSIGN_OR_RETURN(plan,
                          Plan::Join(std::move(plan), Plan::DomainScan(var)));
  }
  return Plan::Project(std::move(plan), std::move(kept));
}

Result<PlanPtr> RaCompiler::CompileExists(const FormulaPtr& f) {
  LQDB_ASSIGN_OR_RETURN(PlanPtr plan, CompileFormula(f->child()));
  return ExistsPlan(std::move(plan), f->var());
}

Result<PlanPtr> RaCompiler::CompileForall(const FormulaPtr& f) {
  // ∀x φ  ==  ¬∃x ¬φ, built directly over a single compilation of φ (the
  // formula-level rewrite this replaces re-entered the compiler on a
  // wrapped copy of the subtree, duplicating work and plan nodes).
  const FormulaPtr& child = f->child();
  if (child->kind() == FormulaKind::kImplies) {
    // Guarded universal, the common shape: ∀x (a → b) == ¬∃x (a ∧ ¬b).
    // The violating set a ∧ ¬b is one anti-join of a against b (keyed on
    // b's free variables), whereas complementing the compiled implication
    // (an ¬a ∨ b union) materializes a domain-product universe over all
    // of the body's free variables — |C|^k rows per image.
    const std::set<VarId> body_free = FreeVariables(child);
    LQDB_ASSIGN_OR_RETURN(PlanPtr guard, CompileFormula(child->child(0)));
    LQDB_ASSIGN_OR_RETURN(guard, PadTo(std::move(guard), body_free));
    LQDB_ASSIGN_OR_RETURN(PlanPtr then, CompileFormula(child->child(1)));
    LQDB_ASSIGN_OR_RETURN(
        PlanPtr violating, Plan::AntiJoin(std::move(guard), std::move(then)));
    LQDB_ASSIGN_OR_RETURN(PlanPtr witness,
                          ExistsPlan(std::move(violating), f->var()));
    return Complement(std::move(witness), FreeVariables(f));
  }
  const std::set<VarId> body_free = FreeVariables(child);
  LQDB_ASSIGN_OR_RETURN(PlanPtr body, CompileFormula(child));
  LQDB_ASSIGN_OR_RETURN(PlanPtr violating,
                        Complement(std::move(body), body_free));
  LQDB_ASSIGN_OR_RETURN(PlanPtr witness,
                        ExistsPlan(std::move(violating), f->var()));
  return Complement(std::move(witness), FreeVariables(f));
}

Result<PlanPtr> RaCompiler::Unit() {
  return Plan::ConstTuples({}, {{}});
}

Result<PlanPtr> RaCompiler::DomainProduct(const std::set<VarId>& vars) {
  if (vars.empty()) return Unit();
  PlanPtr acc;
  for (VarId v : vars) {
    PlanPtr scan = Plan::DomainScan(v);
    if (acc == nullptr) {
      acc = std::move(scan);
    } else {
      LQDB_ASSIGN_OR_RETURN(acc, Plan::Join(std::move(acc), std::move(scan)));
    }
  }
  return acc;
}

Result<PlanPtr> RaCompiler::PadTo(PlanPtr plan, const std::set<VarId>& vars) {
  std::set<VarId> have(plan->schema().begin(), plan->schema().end());
  for (VarId v : vars) {
    if (have.count(v) == 0) {
      LQDB_ASSIGN_OR_RETURN(
          plan, Plan::Join(std::move(plan), Plan::DomainScan(v)));
    }
  }
  return plan;
}

}  // namespace lqdb
