#ifndef LQDB_RA_SEMIJOIN_H_
#define LQDB_RA_SEMIJOIN_H_

#include "lqdb/ra/plan.h"
#include "lqdb/util/result.h"

namespace lqdb {

/// A semijoin-reduced plan for the Theorem 1 candidate-membership sweep.
///
/// The inner loop of the certain/possible-answer engines evaluates the same
/// compiled query against thousands of image databases, but per image it
/// only needs to know which of the *surviving candidate tuples* are in the
/// answer — not the full answer relation. `SemijoinReduce` rewrites the
/// plan to exploit that: a `kParam` table (bound per image to the mapped
/// candidate set via `RaExecutor::BindParam`) semijoin-filters the root,
/// and projections of it are pushed down the plan's monotone edges to
/// filter scans and domain products before any join runs. As the candidate
/// set shrinks, so does every filtered intermediate.
///
/// Correctness: the pushed filters only ever *shrink* subplan results
/// along value-preserving columns of monotone paths (join children,
/// union branches, projections, anti/semijoin *left* children — never an
/// anti-join's right child, whose shrinkage could grow the output), and
/// the root semijoin makes the result exactly
/// `original ∩ candidate-rows` regardless of how much was pushed.
struct ReducedPlan {
  /// Equivalent to `SemiJoin(original, param)`.
  PlanPtr plan;
  /// The parameter node to bind (schema = the original root's schema).
  /// Null when the root has arity 0 — nothing to filter by.
  PlanPtr param;
};

Result<ReducedPlan> SemijoinReduce(const PlanPtr& root);

}  // namespace lqdb

#endif  // LQDB_RA_SEMIJOIN_H_
