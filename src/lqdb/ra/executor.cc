#include "lqdb/ra/executor.h"

#include <algorithm>
#include <utility>

namespace lqdb {

namespace {

/// Positions of each attribute within a schema.
std::unordered_map<VarId, size_t> SchemaIndex(const std::vector<VarId>& s) {
  std::unordered_map<VarId, size_t> out;
  for (size_t i = 0; i < s.size(); ++i) out.emplace(s[i], i);
  return out;
}

/// Attributes common to both schemas, in `left` order.
std::vector<VarId> SharedAttrs(const std::vector<VarId>& left,
                               const std::vector<VarId>& right) {
  std::vector<VarId> out;
  for (VarId v : left) {
    if (std::find(right.begin(), right.end(), v) != right.end()) {
      out.push_back(v);
    }
  }
  return out;
}

Tuple KeyOf(const Tuple& t, const std::vector<size_t>& positions) {
  Tuple key(positions.size());
  for (size_t i = 0; i < positions.size(); ++i) key[i] = t[positions[i]];
  return key;
}

/// Points `out` at the given schema and empties its relation while keeping
/// the hash-table buckets when the arity already matches — the core of the
/// cross-execution reuse.
void ResetOut(RaTable* out, std::vector<VarId> schema) {
  const int arity = static_cast<int>(schema.size());
  out->schema = std::move(schema);
  if (out->rel.arity() == arity) {
    out->rel.Clear();
  } else {
    out->rel = Relation(arity);
  }
}

}  // namespace

Result<RaTable> RaExecutor::Execute(const PlanPtr& plan) {
  LQDB_ASSIGN_OR_RETURN(const RaTable* root, ExecuteView(plan));
  return RaTable(root->schema, root->rel);
}

Result<const RaTable*> RaExecutor::ExecuteView(const PlanPtr& plan) {
  ++epoch_;
  return Exec(plan);
}

Result<const RaTable*> RaExecutor::Exec(const PlanPtr& plan) {
  if (plan == nullptr) return Status::InvalidArgument("null plan");
  // unordered_map never moves elements on rehash, so the reference stays
  // valid while children execute into their own slots.
  Slot& slot = slots_[plan.get()];
  if (slot.epoch == epoch_) return &slot.table;
  LQDB_RETURN_IF_ERROR(ExecNode(*plan, &slot.table));
  // Stamped only after success: a failed node stays stale and is rebuilt
  // (not served) if a later execution reaches it again.
  slot.epoch = epoch_;
  return &slot.table;
}

Status RaExecutor::ExecNode(const Plan& plan, RaTable* out) {
  switch (plan.kind()) {
    case PlanKind::kScan: return ExecScan(plan, out);
    case PlanKind::kConstTuples: return ExecConstTuples(plan, out);
    case PlanKind::kConstCompare: return ExecConstCompare(plan, out);
    case PlanKind::kDomainScan: return ExecDomainScan(plan, out);
    case PlanKind::kEqDomain: return ExecEqDomain(plan, out);
    case PlanKind::kJoin: return ExecJoin(plan, out);
    case PlanKind::kAntiJoin: return ExecAntiJoin(plan, out);
    case PlanKind::kUnion: return ExecUnion(plan, out);
    case PlanKind::kProject: return ExecProject(plan, out);
  }
  return Status::Internal("unknown plan kind");
}

Status RaExecutor::ExecScan(const Plan& plan, RaTable* out) {
  const Relation& stored = db_->relation(plan.pred());
  const TermList& cols = plan.scan_columns();

  // Resolve constant filters and first-occurrence positions of variables.
  std::unordered_map<VarId, size_t> first_pos;
  for (size_t i = 0; i < cols.size(); ++i) {
    if (cols[i].is_variable() && first_pos.count(cols[i].var()) == 0) {
      first_pos.emplace(cols[i].var(), i);
    }
  }
  std::vector<size_t> out_pos;
  out_pos.reserve(plan.schema().size());
  for (VarId v : plan.schema()) out_pos.push_back(first_pos.at(v));

  ResetOut(out, plan.schema());
  for (const Tuple& t : stored.tuples()) {
    bool keep = true;
    for (size_t i = 0; i < cols.size() && keep; ++i) {
      if (cols[i].is_constant()) {
        keep = t[i] == db_->ConstantValue(cols[i].constant());
      } else {
        keep = t[i] == t[first_pos.at(cols[i].var())];
      }
    }
    if (!keep) continue;
    Tuple row(out_pos.size());
    for (size_t i = 0; i < out_pos.size(); ++i) row[i] = t[out_pos[i]];
    out->rel.Insert(std::move(row));
  }
  return Status::OK();
}

Status RaExecutor::ExecConstTuples(const Plan& plan, RaTable* out) {
  ResetOut(out, plan.schema());
  for (const auto& row : plan.rows()) {
    Tuple t(row.size());
    for (size_t i = 0; i < row.size(); ++i) {
      t[i] = db_->ConstantValue(row[i]);
    }
    out->rel.Insert(std::move(t));
  }
  return Status::OK();
}

Status RaExecutor::ExecConstCompare(const Plan& plan, RaTable* out) {
  ResetOut(out, {});
  if (db_->ConstantValue(plan.compare_lhs()) ==
      db_->ConstantValue(plan.compare_rhs())) {
    out->rel.Insert({});
  }
  return Status::OK();
}

Status RaExecutor::ExecDomainScan(const Plan& plan, RaTable* out) {
  ResetOut(out, plan.schema());
  for (Value v : db_->domain()) out->rel.Insert({v});
  return Status::OK();
}

Status RaExecutor::ExecEqDomain(const Plan& plan, RaTable* out) {
  ResetOut(out, plan.schema());
  for (Value v : db_->domain()) out->rel.Insert({v, v});
  return Status::OK();
}

Status RaExecutor::ExecJoin(const Plan& plan, RaTable* out) {
  LQDB_ASSIGN_OR_RETURN(const RaTable* left, Exec(plan.left()));
  LQDB_ASSIGN_OR_RETURN(const RaTable* right, Exec(plan.right()));

  const std::vector<VarId> shared = SharedAttrs(left->schema, right->schema);
  auto lidx = SchemaIndex(left->schema);
  auto ridx = SchemaIndex(right->schema);
  std::vector<size_t> lkey, rkey;
  for (VarId v : shared) {
    lkey.push_back(lidx.at(v));
    rkey.push_back(ridx.at(v));
  }
  // Columns of `right` that are new to the output, in output order.
  std::vector<size_t> rextra;
  for (VarId v : plan.schema()) {
    if (lidx.count(v) == 0) rextra.push_back(ridx.at(v));
  }

  // Hash the smaller side on the shared key.
  const bool left_build = left->rel.size() <= right->rel.size();
  const RaTable& build = left_build ? *left : *right;
  const RaTable& probe = left_build ? *right : *left;
  const std::vector<size_t>& build_key = left_build ? lkey : rkey;
  const std::vector<size_t>& probe_key = left_build ? rkey : lkey;

  std::unordered_map<Tuple, std::vector<const Tuple*>, TupleHash> hash;
  for (const Tuple& t : build.rel.tuples()) {
    hash[KeyOf(t, build_key)].push_back(&t);
  }

  ResetOut(out, plan.schema());
  for (const Tuple& p : probe.rel.tuples()) {
    auto it = hash.find(KeyOf(p, probe_key));
    if (it == hash.end()) continue;
    for (const Tuple* b : it->second) {
      const Tuple& l = left_build ? *b : p;
      const Tuple& r = left_build ? p : *b;
      Tuple row;
      row.reserve(plan.schema().size());
      for (size_t i = 0; i < left->schema.size(); ++i) row.push_back(l[i]);
      for (size_t pos : rextra) row.push_back(r[pos]);
      out->rel.Insert(std::move(row));
    }
  }
  return Status::OK();
}

Status RaExecutor::ExecAntiJoin(const Plan& plan, RaTable* out) {
  LQDB_ASSIGN_OR_RETURN(const RaTable* left, Exec(plan.left()));
  LQDB_ASSIGN_OR_RETURN(const RaTable* right, Exec(plan.right()));

  const std::vector<VarId> shared = SharedAttrs(left->schema, right->schema);
  auto lidx = SchemaIndex(left->schema);
  auto ridx = SchemaIndex(right->schema);
  std::vector<size_t> lkey, rkey;
  for (VarId v : shared) {
    lkey.push_back(lidx.at(v));
    rkey.push_back(ridx.at(v));
  }

  Relation::TupleSet right_keys;
  for (const Tuple& t : right->rel.tuples()) {
    right_keys.insert(KeyOf(t, rkey));
  }

  ResetOut(out, left->schema);
  for (const Tuple& t : left->rel.tuples()) {
    if (right_keys.count(KeyOf(t, lkey)) == 0) out->rel.Insert(t);
  }
  return Status::OK();
}

Status RaExecutor::ExecUnion(const Plan& plan, RaTable* out) {
  LQDB_ASSIGN_OR_RETURN(const RaTable* left, Exec(plan.left()));
  LQDB_ASSIGN_OR_RETURN(const RaTable* right, Exec(plan.right()));

  // Reorder right columns into left order.
  auto ridx = SchemaIndex(right->schema);
  std::vector<size_t> perm;
  perm.reserve(left->schema.size());
  for (VarId v : left->schema) perm.push_back(ridx.at(v));

  // Copy (not move out of) the left child: it lives in its own slot and
  // other references to the shared node must still see its rows.
  ResetOut(out, left->schema);
  for (const Tuple& t : left->rel.tuples()) out->rel.Insert(t);
  for (const Tuple& t : right->rel.tuples()) {
    out->rel.Insert(KeyOf(t, perm));
  }
  return Status::OK();
}

Status RaExecutor::ExecProject(const Plan& plan, RaTable* out) {
  LQDB_ASSIGN_OR_RETURN(const RaTable* child, Exec(plan.child()));
  auto cidx = SchemaIndex(child->schema);
  std::vector<size_t> positions;
  positions.reserve(plan.schema().size());
  for (VarId v : plan.schema()) positions.push_back(cidx.at(v));

  ResetOut(out, plan.schema());
  for (const Tuple& t : child->rel.tuples()) {
    out->rel.Insert(KeyOf(t, positions));
  }
  return Status::OK();
}

}  // namespace lqdb
