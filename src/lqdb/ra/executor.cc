#include "lqdb/ra/executor.h"

#include <algorithm>
#include <utility>

namespace lqdb {

namespace {

/// Position of each attribute within a schema (schemas are tiny, so a
/// linear scan beats a hash map — and this only runs once per plan node).
uint32_t PositionOf(const std::vector<VarId>& schema, VarId v) {
  for (size_t i = 0; i < schema.size(); ++i) {
    if (schema[i] == v) return static_cast<uint32_t>(i);
  }
  return FlatTable::kNone;
}

}  // namespace

Result<RaTable> RaExecutor::Execute(const PlanPtr& plan) {
  LQDB_ASSIGN_OR_RETURN(const RaTableView* root, ExecuteView(plan));
  return RaTable(root->schema, root->rows.ToRelation());
}

Result<const RaTableView*> RaExecutor::ExecuteView(const PlanPtr& plan) {
  ++epoch_;
  return Exec(plan);
}

Result<const RaTableView*> RaExecutor::Exec(const PlanPtr& plan) {
  if (plan == nullptr) return Status::InvalidArgument("null plan");
  // unordered_map never moves elements on rehash, so the reference stays
  // valid while children execute into their own slots.
  Slot& slot = slots_[plan.get()];
  if (slot.epoch == epoch_) return &slot.table;
  LQDB_RETURN_IF_ERROR(ExecNode(*plan, &slot));
  // Stamped only after success: a failed node stays stale and is rebuilt
  // (not served) if a later execution reaches it again.
  slot.epoch = epoch_;
  return &slot.table;
}

Status RaExecutor::ExecNode(const Plan& plan, Slot* slot) {
  switch (plan.kind()) {
    case PlanKind::kScan: return ExecScan(plan, slot);
    case PlanKind::kConstTuples: return ExecConstTuples(plan, slot);
    case PlanKind::kConstCompare: return ExecConstCompare(plan, slot);
    case PlanKind::kDomainScan: return ExecDomainScan(plan, slot);
    case PlanKind::kEqDomain: return ExecEqDomain(plan, slot);
    case PlanKind::kJoin: return ExecJoin(plan, slot);
    case PlanKind::kAntiJoin: return ExecAntiJoin(plan, slot);
    case PlanKind::kSemiJoin: return ExecSemiJoin(plan, slot);
    case PlanKind::kUnion: return ExecUnion(plan, slot);
    case PlanKind::kProject: return ExecProject(plan, slot);
    case PlanKind::kParam: return ExecParam(plan, slot);
  }
  return Status::Internal("unknown plan kind");
}

void RaExecutor::PrepareMeta(const Plan& plan, Slot* slot) {
  switch (plan.kind()) {
    case PlanKind::kScan: {
      const TermList& cols = plan.scan_columns();
      // First occurrence of each variable; later occurrences become
      // equality filters, constants become selections.
      for (size_t i = 0; i < cols.size(); ++i) {
        if (cols[i].is_constant()) {
          slot->const_filters.emplace_back(static_cast<uint32_t>(i),
                                           cols[i].constant());
          continue;
        }
        uint32_t first = FlatTable::kNone;
        for (size_t j = 0; j < i; ++j) {
          if (cols[j].is_variable() && cols[j].var() == cols[i].var()) {
            first = static_cast<uint32_t>(j);
            break;
          }
        }
        if (first != FlatTable::kNone) {
          slot->extra.push_back(static_cast<uint32_t>(i));
          slot->extra.push_back(first);
        }
      }
      for (VarId v : plan.schema()) {
        for (size_t i = 0; i < cols.size(); ++i) {
          if (cols[i].is_variable() && cols[i].var() == v) {
            slot->key_a.push_back(static_cast<uint32_t>(i));
            break;
          }
        }
      }
      break;
    }
    case PlanKind::kJoin: {
      const std::vector<VarId>& ls = plan.left()->schema();
      const std::vector<VarId>& rs = plan.right()->schema();
      for (size_t i = 0; i < ls.size(); ++i) {
        const uint32_t rpos = PositionOf(rs, ls[i]);
        if (rpos != FlatTable::kNone) {
          slot->key_a.push_back(static_cast<uint32_t>(i));
          slot->key_b.push_back(rpos);
        }
      }
      // Right columns new to the output, in output order (the output
      // schema is left's columns followed by right's new ones).
      for (size_t i = ls.size(); i < plan.schema().size(); ++i) {
        slot->extra.push_back(PositionOf(rs, plan.schema()[i]));
      }
      break;
    }
    case PlanKind::kAntiJoin:
    case PlanKind::kSemiJoin: {
      const std::vector<VarId>& ls = plan.left()->schema();
      const std::vector<VarId>& rs = plan.right()->schema();
      for (size_t i = 0; i < ls.size(); ++i) {
        const uint32_t rpos = PositionOf(rs, ls[i]);
        if (rpos != FlatTable::kNone) {
          slot->key_a.push_back(static_cast<uint32_t>(i));
          slot->key_b.push_back(rpos);
        }
      }
      break;
    }
    case PlanKind::kUnion: {
      const std::vector<VarId>& rs = plan.right()->schema();
      for (VarId v : plan.schema()) slot->key_a.push_back(PositionOf(rs, v));
      break;
    }
    case PlanKind::kProject: {
      const std::vector<VarId>& cs = plan.child()->schema();
      for (VarId v : plan.schema()) slot->key_a.push_back(PositionOf(cs, v));
      break;
    }
    case PlanKind::kConstTuples:
    case PlanKind::kConstCompare:
    case PlanKind::kDomainScan:
    case PlanKind::kEqDomain:
    case PlanKind::kParam:
      break;
  }
}

void RaExecutor::ResetOut(const Plan& plan, Slot* slot) {
  if (!slot->meta_ready) {
    PrepareMeta(plan, slot);
    slot->table.schema = plan.schema();
    slot->meta_ready = true;
  }
  slot->table.rows.Reset(&arena_,
                         static_cast<uint32_t>(plan.schema().size()));
}

Status RaExecutor::ExecScan(const Plan& plan, Slot* slot) {
  const Relation& stored = db_->relation(plan.pred());
  ResetOut(plan, slot);
  row_scratch_.resize(slot->key_a.size());
  for (const Tuple& t : stored.tuples()) {
    bool keep = true;
    for (const auto& cf : slot->const_filters) {
      if (t[cf.first] != db_->ConstantValue(cf.second)) {
        keep = false;
        break;
      }
    }
    for (size_t i = 0; keep && i < slot->extra.size(); i += 2) {
      keep = t[slot->extra[i]] == t[slot->extra[i + 1]];
    }
    if (!keep) continue;
    for (size_t i = 0; i < slot->key_a.size(); ++i) {
      row_scratch_[i] = t[slot->key_a[i]];
    }
    slot->table.rows.Insert(row_scratch_.data());
  }
  return Status::OK();
}

Status RaExecutor::ExecConstTuples(const Plan& plan, Slot* slot) {
  ResetOut(plan, slot);
  row_scratch_.resize(plan.schema().size());
  for (const auto& row : plan.rows()) {
    for (size_t i = 0; i < row.size(); ++i) {
      row_scratch_[i] = db_->ConstantValue(row[i]);
    }
    slot->table.rows.Insert(row_scratch_.data());
  }
  return Status::OK();
}

Status RaExecutor::ExecConstCompare(const Plan& plan, Slot* slot) {
  ResetOut(plan, slot);
  if (db_->ConstantValue(plan.compare_lhs()) ==
      db_->ConstantValue(plan.compare_rhs())) {
    slot->table.rows.Insert(row_scratch_.data());
  }
  return Status::OK();
}

Status RaExecutor::ExecDomainScan(const Plan& plan, Slot* slot) {
  ResetOut(plan, slot);
  for (Value v : db_->domain()) slot->table.rows.Insert(&v);
  return Status::OK();
}

Status RaExecutor::ExecEqDomain(const Plan& plan, Slot* slot) {
  ResetOut(plan, slot);
  for (Value v : db_->domain()) {
    const Value pair[2] = {v, v};
    slot->table.rows.Insert(pair);
  }
  return Status::OK();
}

Status RaExecutor::ExecJoin(const Plan& plan, Slot* slot) {
  LQDB_ASSIGN_OR_RETURN(const RaTableView* left, Exec(plan.left()));
  LQDB_ASSIGN_OR_RETURN(const RaTableView* right, Exec(plan.right()));
  ResetOut(plan, slot);

  // Index the smaller side on the shared key; probe with the larger.
  const bool left_build = left->rows.size() <= right->rows.size();
  const FlatTable& build = left_build ? left->rows : right->rows;
  const FlatTable& probe = left_build ? right->rows : left->rows;
  const std::vector<uint32_t>& build_key =
      left_build ? slot->key_a : slot->key_b;
  const std::vector<uint32_t>& probe_key =
      left_build ? slot->key_b : slot->key_a;
  slot->index.Build(&arena_, &build, build_key.data(), build_key.size());

  const size_t lar = plan.left()->schema().size();
  row_scratch_.resize(plan.schema().size());
  key_scratch_.resize(probe_key.size());
  for (size_t p = 0; p < probe.size(); ++p) {
    const Value* pr = probe.row(p);
    for (size_t i = 0; i < probe_key.size(); ++i) {
      key_scratch_[i] = pr[probe_key[i]];
    }
    for (uint32_t b = slot->index.First(key_scratch_.data());
         b != JoinIndex::kNone; b = slot->index.Next(b)) {
      const Value* br = build.row(b);
      const Value* l = left_build ? br : pr;
      const Value* r = left_build ? pr : br;
      for (size_t i = 0; i < lar; ++i) row_scratch_[i] = l[i];
      for (size_t i = 0; i < slot->extra.size(); ++i) {
        row_scratch_[lar + i] = r[slot->extra[i]];
      }
      slot->table.rows.Insert(row_scratch_.data());
    }
  }
  return Status::OK();
}

Status RaExecutor::ExecAntiJoin(const Plan& plan, Slot* slot) {
  LQDB_ASSIGN_OR_RETURN(const RaTableView* left, Exec(plan.left()));
  LQDB_ASSIGN_OR_RETURN(const RaTableView* right, Exec(plan.right()));
  ResetOut(plan, slot);

  const size_t nkey = slot->key_a.size();
  slot->key_set.Reset(&arena_, static_cast<uint32_t>(nkey));
  key_scratch_.resize(nkey);
  for (size_t r = 0; r < right->rows.size(); ++r) {
    const Value* row = right->rows.row(r);
    for (size_t i = 0; i < nkey; ++i) key_scratch_[i] = row[slot->key_b[i]];
    slot->key_set.Insert(key_scratch_.data());
  }
  for (size_t l = 0; l < left->rows.size(); ++l) {
    const Value* row = left->rows.row(l);
    for (size_t i = 0; i < nkey; ++i) key_scratch_[i] = row[slot->key_a[i]];
    if (!slot->key_set.Contains(key_scratch_.data())) {
      slot->table.rows.Insert(row);
    }
  }
  return Status::OK();
}

Status RaExecutor::ExecSemiJoin(const Plan& plan, Slot* slot) {
  LQDB_ASSIGN_OR_RETURN(const RaTableView* left, Exec(plan.left()));
  LQDB_ASSIGN_OR_RETURN(const RaTableView* right, Exec(plan.right()));
  ResetOut(plan, slot);

  const size_t nkey = slot->key_a.size();
  slot->key_set.Reset(&arena_, static_cast<uint32_t>(nkey));
  key_scratch_.resize(nkey);
  for (size_t r = 0; r < right->rows.size(); ++r) {
    const Value* row = right->rows.row(r);
    for (size_t i = 0; i < nkey; ++i) key_scratch_[i] = row[slot->key_b[i]];
    slot->key_set.Insert(key_scratch_.data());
  }
  for (size_t l = 0; l < left->rows.size(); ++l) {
    const Value* row = left->rows.row(l);
    for (size_t i = 0; i < nkey; ++i) key_scratch_[i] = row[slot->key_a[i]];
    if (slot->key_set.Contains(key_scratch_.data())) {
      slot->table.rows.Insert(row);
    }
  }
  return Status::OK();
}

Status RaExecutor::ExecUnion(const Plan& plan, Slot* slot) {
  LQDB_ASSIGN_OR_RETURN(const RaTableView* left, Exec(plan.left()));
  LQDB_ASSIGN_OR_RETURN(const RaTableView* right, Exec(plan.right()));
  ResetOut(plan, slot);

  // Copy (not alias) the left child: it lives in its own slot and other
  // references to the shared node must still see its rows.
  for (size_t l = 0; l < left->rows.size(); ++l) {
    slot->table.rows.Insert(left->rows.row(l));
  }
  row_scratch_.resize(plan.schema().size());
  for (size_t r = 0; r < right->rows.size(); ++r) {
    const Value* row = right->rows.row(r);
    for (size_t i = 0; i < slot->key_a.size(); ++i) {
      row_scratch_[i] = row[slot->key_a[i]];
    }
    slot->table.rows.Insert(row_scratch_.data());
  }
  return Status::OK();
}

Status RaExecutor::ExecProject(const Plan& plan, Slot* slot) {
  LQDB_ASSIGN_OR_RETURN(const RaTableView* child, Exec(plan.child()));
  ResetOut(plan, slot);
  row_scratch_.resize(plan.schema().size());
  for (size_t c = 0; c < child->rows.size(); ++c) {
    const Value* row = child->rows.row(c);
    for (size_t i = 0; i < slot->key_a.size(); ++i) {
      row_scratch_[i] = row[slot->key_a[i]];
    }
    slot->table.rows.Insert(row_scratch_.data());
  }
  return Status::OK();
}

Status RaExecutor::ExecParam(const Plan& plan, Slot* slot) {
  auto it = params_.find(&plan);
  if (it == params_.end()) {
    return Status::InvalidArgument(
        "plan parameter executed without a bound table (BindParam)");
  }
  ResetOut(plan, slot);
  const size_t arity = plan.schema().size();
  for (size_t r = 0; r < it->second.count; ++r) {
    slot->table.rows.Insert(it->second.rows + r * arity);
  }
  return Status::OK();
}

}  // namespace lqdb
