#include "lqdb/ra/executor.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace lqdb {

namespace {

/// Positions of each attribute within a schema.
std::unordered_map<VarId, size_t> SchemaIndex(const std::vector<VarId>& s) {
  std::unordered_map<VarId, size_t> out;
  for (size_t i = 0; i < s.size(); ++i) out.emplace(s[i], i);
  return out;
}

/// Attributes common to both schemas, in `left` order.
std::vector<VarId> SharedAttrs(const std::vector<VarId>& left,
                               const std::vector<VarId>& right) {
  std::vector<VarId> out;
  for (VarId v : left) {
    if (std::find(right.begin(), right.end(), v) != right.end()) {
      out.push_back(v);
    }
  }
  return out;
}

Tuple KeyOf(const Tuple& t, const std::vector<size_t>& positions) {
  Tuple key(positions.size());
  for (size_t i = 0; i < positions.size(); ++i) key[i] = t[positions[i]];
  return key;
}

}  // namespace

Result<RaTable> RaExecutor::Execute(const PlanPtr& plan) {
  results_.clear();
  LQDB_RETURN_IF_ERROR(Exec(plan).status());
  auto it = results_.find(plan.get());
  RaTable out = std::move(it->second);
  results_.erase(it);
  return out;
}

Result<const RaTable*> RaExecutor::Exec(const PlanPtr& plan) {
  if (plan == nullptr) return Status::InvalidArgument("null plan");
  auto it = results_.find(plan.get());
  if (it != results_.end()) return &it->second;
  LQDB_ASSIGN_OR_RETURN(RaTable table, ExecNode(*plan));
  // unordered_map never moves elements on rehash, so the reference stays
  // valid for the lifetime of the memo table.
  auto [pos, inserted] = results_.emplace(plan.get(), std::move(table));
  assert(inserted);
  return &pos->second;
}

Result<RaTable> RaExecutor::ExecNode(const Plan& plan) {
  switch (plan.kind()) {
    case PlanKind::kScan: return ExecScan(plan);
    case PlanKind::kConstTuples: return ExecConstTuples(plan);
    case PlanKind::kConstCompare: return ExecConstCompare(plan);
    case PlanKind::kDomainScan: return ExecDomainScan(plan);
    case PlanKind::kEqDomain: return ExecEqDomain(plan);
    case PlanKind::kJoin: return ExecJoin(plan);
    case PlanKind::kAntiJoin: return ExecAntiJoin(plan);
    case PlanKind::kUnion: return ExecUnion(plan);
    case PlanKind::kProject: return ExecProject(plan);
  }
  return Status::Internal("unknown plan kind");
}

Result<RaTable> RaExecutor::ExecScan(const Plan& plan) {
  const Relation& stored = db_->relation(plan.pred());
  const TermList& cols = plan.scan_columns();

  // Resolve constant filters and first-occurrence positions of variables.
  std::unordered_map<VarId, size_t> first_pos;
  for (size_t i = 0; i < cols.size(); ++i) {
    if (cols[i].is_variable() && first_pos.count(cols[i].var()) == 0) {
      first_pos.emplace(cols[i].var(), i);
    }
  }
  std::vector<size_t> out_pos;
  out_pos.reserve(plan.schema().size());
  for (VarId v : plan.schema()) out_pos.push_back(first_pos.at(v));

  RaTable out(plan.schema(), Relation(static_cast<int>(plan.schema().size())));
  for (const Tuple& t : stored.tuples()) {
    bool keep = true;
    for (size_t i = 0; i < cols.size() && keep; ++i) {
      if (cols[i].is_constant()) {
        keep = t[i] == db_->ConstantValue(cols[i].constant());
      } else {
        keep = t[i] == t[first_pos.at(cols[i].var())];
      }
    }
    if (!keep) continue;
    Tuple row(out_pos.size());
    for (size_t i = 0; i < out_pos.size(); ++i) row[i] = t[out_pos[i]];
    out.rel.Insert(std::move(row));
  }
  return out;
}

Result<RaTable> RaExecutor::ExecConstTuples(const Plan& plan) {
  RaTable out(plan.schema(), Relation(static_cast<int>(plan.schema().size())));
  for (const auto& row : plan.rows()) {
    Tuple t(row.size());
    for (size_t i = 0; i < row.size(); ++i) {
      t[i] = db_->ConstantValue(row[i]);
    }
    out.rel.Insert(std::move(t));
  }
  return out;
}

Result<RaTable> RaExecutor::ExecConstCompare(const Plan& plan) {
  RaTable out({}, Relation(0));
  if (db_->ConstantValue(plan.compare_lhs()) ==
      db_->ConstantValue(plan.compare_rhs())) {
    out.rel.Insert({});
  }
  return out;
}

RaTable RaExecutor::ExecDomainScan(const Plan& plan) {
  RaTable out(plan.schema(), Relation(1));
  for (Value v : db_->domain()) out.rel.Insert({v});
  return out;
}

RaTable RaExecutor::ExecEqDomain(const Plan& plan) {
  RaTable out(plan.schema(), Relation(2));
  for (Value v : db_->domain()) out.rel.Insert({v, v});
  return out;
}

Result<RaTable> RaExecutor::ExecJoin(const Plan& plan) {
  LQDB_ASSIGN_OR_RETURN(const RaTable* left, Exec(plan.left()));
  LQDB_ASSIGN_OR_RETURN(const RaTable* right, Exec(plan.right()));

  const std::vector<VarId> shared = SharedAttrs(left->schema, right->schema);
  auto lidx = SchemaIndex(left->schema);
  auto ridx = SchemaIndex(right->schema);
  std::vector<size_t> lkey, rkey;
  for (VarId v : shared) {
    lkey.push_back(lidx.at(v));
    rkey.push_back(ridx.at(v));
  }
  // Columns of `right` that are new to the output, in output order.
  std::vector<size_t> rextra;
  for (VarId v : plan.schema()) {
    if (lidx.count(v) == 0) rextra.push_back(ridx.at(v));
  }

  // Hash the smaller side on the shared key.
  const bool left_build = left->rel.size() <= right->rel.size();
  const RaTable& build = left_build ? *left : *right;
  const RaTable& probe = left_build ? *right : *left;
  const std::vector<size_t>& build_key = left_build ? lkey : rkey;
  const std::vector<size_t>& probe_key = left_build ? rkey : lkey;

  std::unordered_map<Tuple, std::vector<const Tuple*>, TupleHash> hash;
  for (const Tuple& t : build.rel.tuples()) {
    hash[KeyOf(t, build_key)].push_back(&t);
  }

  RaTable out(plan.schema(), Relation(static_cast<int>(plan.schema().size())));
  for (const Tuple& p : probe.rel.tuples()) {
    auto it = hash.find(KeyOf(p, probe_key));
    if (it == hash.end()) continue;
    for (const Tuple* b : it->second) {
      const Tuple& l = left_build ? *b : p;
      const Tuple& r = left_build ? p : *b;
      Tuple row;
      row.reserve(plan.schema().size());
      for (size_t i = 0; i < left->schema.size(); ++i) row.push_back(l[i]);
      for (size_t pos : rextra) row.push_back(r[pos]);
      out.rel.Insert(std::move(row));
    }
  }
  return out;
}

Result<RaTable> RaExecutor::ExecAntiJoin(const Plan& plan) {
  LQDB_ASSIGN_OR_RETURN(const RaTable* left, Exec(plan.left()));
  LQDB_ASSIGN_OR_RETURN(const RaTable* right, Exec(plan.right()));

  const std::vector<VarId> shared = SharedAttrs(left->schema, right->schema);
  auto lidx = SchemaIndex(left->schema);
  auto ridx = SchemaIndex(right->schema);
  std::vector<size_t> lkey, rkey;
  for (VarId v : shared) {
    lkey.push_back(lidx.at(v));
    rkey.push_back(ridx.at(v));
  }

  Relation::TupleSet right_keys;
  for (const Tuple& t : right->rel.tuples()) {
    right_keys.insert(KeyOf(t, rkey));
  }

  RaTable out(left->schema, Relation(left->rel.arity()));
  for (const Tuple& t : left->rel.tuples()) {
    if (right_keys.count(KeyOf(t, lkey)) == 0) out.rel.Insert(t);
  }
  return out;
}

Result<RaTable> RaExecutor::ExecUnion(const Plan& plan) {
  LQDB_ASSIGN_OR_RETURN(const RaTable* left, Exec(plan.left()));
  LQDB_ASSIGN_OR_RETURN(const RaTable* right, Exec(plan.right()));

  // Reorder right columns into left order.
  auto ridx = SchemaIndex(right->schema);
  std::vector<size_t> perm;
  perm.reserve(left->schema.size());
  for (VarId v : left->schema) perm.push_back(ridx.at(v));

  // Copy (not move out of) the left child: it lives in the memo table and
  // other references to the shared node must still see its rows.
  RaTable out(left->schema, left->rel);
  for (const Tuple& t : right->rel.tuples()) {
    out.rel.Insert(KeyOf(t, perm));
  }
  return out;
}

Result<RaTable> RaExecutor::ExecProject(const Plan& plan) {
  LQDB_ASSIGN_OR_RETURN(const RaTable* child, Exec(plan.child()));
  auto cidx = SchemaIndex(child->schema);
  std::vector<size_t> positions;
  positions.reserve(plan.schema().size());
  for (VarId v : plan.schema()) positions.push_back(cidx.at(v));

  RaTable out(plan.schema(), Relation(static_cast<int>(plan.schema().size())));
  for (const Tuple& t : child->rel.tuples()) {
    out.rel.Insert(KeyOf(t, positions));
  }
  return out;
}

}  // namespace lqdb
