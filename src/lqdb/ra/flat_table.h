#ifndef LQDB_RA_FLAT_TABLE_H_
#define LQDB_RA_FLAT_TABLE_H_

#include <cstdint>
#include <cstring>

#include "lqdb/relational/relation.h"
#include "lqdb/relational/tuple.h"
#include "lqdb/util/arena.h"

namespace lqdb {

/// A duplicate-free relation stored as a flat row-major `Value` array plus
/// an open-addressing slot array (linear probing, power-of-two sizes). All
/// storage comes from a `MemArena`, so per-image table churn in the
/// Theorem 1 inner loop is pointer bumps, not malloc/free: `Reset()` keeps
/// the row and slot arrays and only clears the occupancy, and growth
/// re-allocates from the arena (the abandoned arrays stay in the arena
/// until its owner resets it — bounded by doubling, and the executor never
/// resets its arena mid-lifetime, so steady state allocates nothing).
///
/// Row indices are `uint32_t`; `kNone` marks an empty slot. Not
/// thread-safe.
class FlatTable {
 public:
  static constexpr uint32_t kNone = 0xFFFFFFFFu;

  FlatTable() = default;

  /// Empties the table and (re)binds it to `arena` with the given arity.
  /// Capacity is kept when the arena and arity are unchanged — the
  /// cross-image reuse path.
  void Reset(MemArena* arena, uint32_t arity) {
    if (arena_ != arena) {
      arena_ = arena;
      rows_ = nullptr;
      slots_ = nullptr;
      cap_rows_ = 0;
      num_slots_ = 0;
    }
    if (arity != arity_) {
      arity_ = arity;
      rows_ = nullptr;
      cap_rows_ = 0;
    }
    num_rows_ = 0;
    if (num_slots_ > 0) {
      std::memset(slots_, 0xFF, num_slots_ * sizeof(uint32_t));
    }
  }

  uint32_t arity() const { return arity_; }
  size_t size() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  /// Row `i` as a pointer to `arity()` contiguous values.
  const Value* row(size_t i) const { return rows_ + size_t{arity_} * i; }

  /// Inserts a row of `arity()` values; returns true when newly inserted.
  bool Insert(const Value* row) {
    if (num_slots_ == 0) Grow();
    size_t i = Hash(row) & (num_slots_ - 1);
    while (slots_[i] != kNone) {
      if (RowEquals(slots_[i], row)) return false;
      i = (i + 1) & (num_slots_ - 1);
    }
    if (num_rows_ == cap_rows_) GrowRows();
    if (arity_ > 0) {
      std::memcpy(rows_ + size_t{arity_} * num_rows_, row,
                  arity_ * sizeof(Value));
    }
    slots_[i] = static_cast<uint32_t>(num_rows_++);
    // Load factor 3/4: rehash before probes cluster.
    if (num_rows_ * 4 >= num_slots_ * 3) Grow();
    return true;
  }

  bool Contains(const Value* row) const {
    if (num_slots_ == 0) return false;
    size_t i = Hash(row) & (num_slots_ - 1);
    while (slots_[i] != kNone) {
      if (RowEquals(slots_[i], row)) return true;
      i = (i + 1) & (num_slots_ - 1);
    }
    return false;
  }

  bool Contains(const Tuple& t) const {
    return t.size() == arity_ && Contains(t.data());
  }

  /// Copies out into a node-based `Relation` (for one-shot `Execute`
  /// callers and tests; the hot loops stay on the flat form).
  Relation ToRelation() const {
    Relation rel(static_cast<int>(arity_));
    for (size_t i = 0; i < num_rows_; ++i) {
      rel.Insert(Tuple(row(i), row(i) + arity_));
    }
    return rel;
  }

  /// FNV-1a over the row values; shared with `JoinIndex` so probe keys and
  /// stored rows hash identically.
  static size_t HashSpan(const Value* v, size_t n) {
    size_t h = 1469598103934665603ull;
    for (size_t i = 0; i < n; ++i) {
      h ^= v[i];
      h *= 1099511628211ull;
    }
    return h;
  }

 private:
  size_t Hash(const Value* row) const { return HashSpan(row, arity_); }

  bool RowEquals(uint32_t idx, const Value* r) const {
    const Value* stored = row(idx);
    for (uint32_t c = 0; c < arity_; ++c) {
      if (stored[c] != r[c]) return false;
    }
    return true;
  }

  void GrowRows() {
    const size_t cap = cap_rows_ == 0 ? 64 : cap_rows_ * 2;
    Value* fresh = arena_->NewArray<Value>(cap * arity_);
    if (num_rows_ > 0 && arity_ > 0) {
      std::memcpy(fresh, rows_, num_rows_ * arity_ * sizeof(Value));
    }
    rows_ = fresh;
    cap_rows_ = cap;
  }

  /// Doubles (or initializes) the slot array and re-seats every row.
  void Grow() {
    const size_t fresh_slots = num_slots_ == 0 ? 64 : num_slots_ * 2;
    slots_ = arena_->NewArray<uint32_t>(fresh_slots);
    std::memset(slots_, 0xFF, fresh_slots * sizeof(uint32_t));
    num_slots_ = fresh_slots;
    for (size_t r = 0; r < num_rows_; ++r) {
      size_t i = Hash(row(r)) & (num_slots_ - 1);
      while (slots_[i] != kNone) i = (i + 1) & (num_slots_ - 1);
      slots_[i] = static_cast<uint32_t>(r);
    }
  }

  MemArena* arena_ = nullptr;
  uint32_t arity_ = 0;
  Value* rows_ = nullptr;       // row-major, cap_rows_ * arity_ values
  size_t num_rows_ = 0;
  size_t cap_rows_ = 0;
  uint32_t* slots_ = nullptr;   // row index or kNone; power-of-two length
  size_t num_slots_ = 0;
};

/// A reusable hash multimap from key columns of a `FlatTable` to its row
/// chains, for hash joins: open-addressing head array plus a per-row next
/// chain, both arena-backed and recycled across builds (the per-image join
/// index of the Theorem 1 loop). `Build` is called once per executed join
/// node per image; probes compare the probe key against the build rows'
/// key columns directly, so no key copies are stored.
class JoinIndex {
 public:
  static constexpr uint32_t kNone = 0xFFFFFFFFu;

  JoinIndex() = default;

  void Build(MemArena* arena, const FlatTable* table, const uint32_t* key_cols,
             size_t num_keys) {
    table_ = table;
    key_cols_ = key_cols;
    num_keys_ = num_keys;
    const size_t rows = table->size();
    if (arena_ != arena) {
      arena_ = arena;
      heads_ = nullptr;
      next_ = nullptr;
      num_slots_ = 0;
      next_cap_ = 0;
    }
    size_t want = 64;
    while (want < rows * 2) want <<= 1;
    if (num_slots_ < want) {
      heads_ = arena->NewArray<uint32_t>(want);
      num_slots_ = want;
    }
    std::memset(heads_, 0xFF, num_slots_ * sizeof(uint32_t));
    if (next_cap_ < rows) {
      size_t cap = next_cap_ == 0 ? 64 : next_cap_;
      while (cap < rows) cap *= 2;
      next_ = arena->NewArray<uint32_t>(cap);
      next_cap_ = cap;
    }
    const size_t mask = num_slots_ - 1;
    for (uint32_t r = 0; r < rows; ++r) {
      size_t i = HashRow(r) & mask;
      while (heads_[i] != kNone && !RowsShareKey(heads_[i], r)) {
        i = (i + 1) & mask;
      }
      next_[r] = heads_[i];
      heads_[i] = r;
    }
  }

  /// First build row matching `key` (`num_keys` values), or `kNone`.
  uint32_t First(const Value* key) const {
    const size_t mask = num_slots_ - 1;
    size_t i = FlatTable::HashSpan(key, num_keys_) & mask;
    while (heads_[i] != kNone) {
      if (KeyEquals(heads_[i], key)) return heads_[i];
      i = (i + 1) & mask;
    }
    return kNone;
  }

  /// Next build row in the same key chain, or `kNone`.
  uint32_t Next(uint32_t row) const { return next_[row]; }

 private:
  size_t HashRow(uint32_t r) const {
    const Value* v = table_->row(r);
    size_t h = 1469598103934665603ull;
    for (size_t i = 0; i < num_keys_; ++i) {
      h ^= v[key_cols_[i]];
      h *= 1099511628211ull;
    }
    return h;
  }

  bool KeyEquals(uint32_t r, const Value* key) const {
    const Value* v = table_->row(r);
    for (size_t i = 0; i < num_keys_; ++i) {
      if (v[key_cols_[i]] != key[i]) return false;
    }
    return true;
  }

  bool RowsShareKey(uint32_t a, uint32_t b) const {
    const Value* va = table_->row(a);
    const Value* vb = table_->row(b);
    for (size_t i = 0; i < num_keys_; ++i) {
      if (va[key_cols_[i]] != vb[key_cols_[i]]) return false;
    }
    return true;
  }

  MemArena* arena_ = nullptr;
  const FlatTable* table_ = nullptr;
  const uint32_t* key_cols_ = nullptr;
  size_t num_keys_ = 0;
  uint32_t* heads_ = nullptr;
  size_t num_slots_ = 0;
  uint32_t* next_ = nullptr;
  size_t next_cap_ = 0;
};

}  // namespace lqdb

#endif  // LQDB_RA_FLAT_TABLE_H_
