#ifndef LQDB_RA_VALIDATE_H_
#define LQDB_RA_VALIDATE_H_

#include "lqdb/ra/plan.h"
#include "lqdb/util/result.h"

namespace lqdb {

/// Options for `ValidatePlan`.
struct PlanValidateOptions {
  /// When set, enables the checks that need the vocabulary (scan predicate
  /// existence and arity, constant-id bounds) and names nodes in
  /// diagnostics; without it those checks are skipped and diagnostics fall
  /// back to operator-kind labels.
  const Vocabulary* vocab = nullptr;

  /// The parameter node the plan is expected to contain (the candidate
  /// relation a semijoin reduction binds at execution time). Null means
  /// the plan must contain no `kParam` node at all; non-null means every
  /// `kParam` occurrence must be this exact node — `RaExecutor::BindParam`
  /// keys bindings by node identity, so a second distinct param node would
  /// silently execute empty.
  const Plan* param = nullptr;

  /// Upper bound on distinct nodes in the DAG; 0 disables the check.
  /// Callers derive it from the source formula's size: the compiler shares
  /// desugared subtrees, so a blow-up past any reasonable multiple of the
  /// formula signals the duplicated-subtree regression of PR 6.
  size_t max_unique_nodes = 0;
};

/// Statically checks a compiled RA plan DAG against the invariants the
/// compiler and the semijoin reduction promise, returning `OK` or an
/// `InvalidArgument`/`Internal` diagnostic naming the offending node:
///
///  1. **Schema well-formedness per node.** Every node's stored output
///     schema is recomputed bottom-up from its children and must match:
///     scans list their distinct column variables in first-occurrence
///     order, joins the union of their children's attributes, projections
///     a distinct subset of the child's, unions carry equal attribute
///     sets, and anti/semijoins keep exactly the left schema. A dangling
///     attribute — a column that no child produces — is caught here.
///  2. **Anti/semijoin child compatibility.** The right child's attributes
///     must be a subset of the left's: both operators filter the left
///     relation on the shared columns, and the compiler always pads the
///     left side to the negated/filtering subformula's free variables
///     first, so a right-only attribute means the plan was built wrong
///     (the filter would silently project it away).
///  3. **Never-cross-product.** Within every maximal join tree, a join of
///     two attribute-disjoint subplans is legal only when one side is a
///     union of *complete* connected components of the tree's operand
///     connectivity graph (operands adjacent iff their schemas share an
///     attribute). Both join orderers produce exactly that shape —
///     DP crosses whole components, greedy crosses the accumulated
///     components with one operand of a fresh one — while the historical
///     bug (joining two disconnected operands that a third operand would
///     have connected) splits a component across the cross join.
///  4. **Param binding sites.** A `kParam` node may appear only as the
///     (possibly projected) right child of a `kSemiJoin` reachable from
///     the root through edges the semijoin reduction is allowed to push a
///     candidate filter along: join, union and project children, and the
///     LEFT child of anti/semijoins. In particular a param under an
///     anti-join's right child is rejected — filtering the negated side
///     by the surviving candidates changes answers.
///  5. **Acyclicity and sharing bounds.** The node graph must be a DAG
///     (shared subplans are expected; cycles would hang the executor),
///     and `max_unique_nodes`, when set, bounds the DAG's size.
///
/// Cost is linear in the number of distinct nodes (each node's local check
/// and each join tree's component analysis run once), so debug builds run
/// it on every compiled and every reduced plan.
Status ValidatePlan(const PlanPtr& root,
                    const PlanValidateOptions& options = {});

}  // namespace lqdb

#endif  // LQDB_RA_VALIDATE_H_
