#include "lqdb/ra/plan.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace lqdb {

namespace {

std::shared_ptr<Plan> NewNode(PlanKind kind) {
  struct Helper : Plan {
    explicit Helper(PlanKind k) : Plan(k) {}
  };
  return std::make_shared<Helper>(kind);
}

}  // namespace

Result<PlanPtr> Plan::Scan(const Vocabulary& vocab, PredId pred,
                           TermList columns) {
  if (pred >= vocab.num_predicates()) {
    return Status::NotFound("unknown predicate id in scan");
  }
  if (static_cast<int>(columns.size()) != vocab.PredicateArity(pred)) {
    return Status::InvalidArgument("scan arity mismatch for predicate '" +
                                   vocab.PredicateName(pred) + "'");
  }
  auto node = NewNode(PlanKind::kScan);
  node->pred_ = pred;
  node->scan_columns_ = std::move(columns);
  std::set<VarId> seen;
  for (const Term& t : node->scan_columns_) {
    if (t.is_variable() && seen.insert(t.var()).second) {
      node->schema_.push_back(t.var());
    }
  }
  return PlanPtr(node);
}

Result<PlanPtr> Plan::ConstTuples(std::vector<VarId> schema,
                                  std::vector<std::vector<ConstId>> rows) {
  std::set<VarId> seen(schema.begin(), schema.end());
  if (seen.size() != schema.size()) {
    return Status::InvalidArgument("ConstTuples schema must be distinct");
  }
  for (const auto& row : rows) {
    if (row.size() != schema.size()) {
      return Status::InvalidArgument("ConstTuples row arity mismatch");
    }
  }
  auto node = NewNode(PlanKind::kConstTuples);
  node->schema_ = std::move(schema);
  node->rows_ = std::move(rows);
  return PlanPtr(node);
}

PlanPtr Plan::ConstCompare(ConstId lhs, ConstId rhs) {
  auto node = NewNode(PlanKind::kConstCompare);
  node->compare_lhs_ = lhs;
  node->compare_rhs_ = rhs;
  return node;
}

PlanPtr Plan::DomainScan(VarId attr) {
  auto node = NewNode(PlanKind::kDomainScan);
  node->schema_ = {attr};
  return node;
}

Result<PlanPtr> Plan::EqDomain(VarId lhs, VarId rhs) {
  if (lhs == rhs) {
    return Status::InvalidArgument("EqDomain attributes must differ");
  }
  auto node = NewNode(PlanKind::kEqDomain);
  node->schema_ = {lhs, rhs};
  return PlanPtr(node);
}

Result<PlanPtr> Plan::Join(PlanPtr left, PlanPtr right) {
  if (left == nullptr || right == nullptr) {
    return Status::InvalidArgument("join child must not be null");
  }
  auto node = NewNode(PlanKind::kJoin);
  node->schema_ = left->schema();
  std::set<VarId> seen(node->schema_.begin(), node->schema_.end());
  for (VarId v : right->schema()) {
    if (seen.insert(v).second) node->schema_.push_back(v);
  }
  node->children_ = {std::move(left), std::move(right)};
  return PlanPtr(node);
}

Result<PlanPtr> Plan::AntiJoin(PlanPtr left, PlanPtr right) {
  if (left == nullptr || right == nullptr) {
    return Status::InvalidArgument("antijoin child must not be null");
  }
  auto node = NewNode(PlanKind::kAntiJoin);
  node->schema_ = left->schema();
  node->children_ = {std::move(left), std::move(right)};
  return PlanPtr(node);
}

Result<PlanPtr> Plan::SemiJoin(PlanPtr left, PlanPtr right) {
  if (left == nullptr || right == nullptr) {
    return Status::InvalidArgument("semijoin child must not be null");
  }
  auto node = NewNode(PlanKind::kSemiJoin);
  node->schema_ = left->schema();
  node->children_ = {std::move(left), std::move(right)};
  return PlanPtr(node);
}

Result<PlanPtr> Plan::Param(std::vector<VarId> schema) {
  std::set<VarId> seen(schema.begin(), schema.end());
  if (seen.size() != schema.size()) {
    return Status::InvalidArgument("Param schema must be distinct");
  }
  auto node = NewNode(PlanKind::kParam);
  node->schema_ = std::move(schema);
  return PlanPtr(node);
}

Result<PlanPtr> Plan::Union(PlanPtr left, PlanPtr right) {
  if (left == nullptr || right == nullptr) {
    return Status::InvalidArgument("union child must not be null");
  }
  std::set<VarId> l(left->schema().begin(), left->schema().end());
  std::set<VarId> r(right->schema().begin(), right->schema().end());
  if (l != r) {
    return Status::InvalidArgument(
        "union children must have the same attribute set");
  }
  auto node = NewNode(PlanKind::kUnion);
  node->schema_ = left->schema();
  node->children_ = {std::move(left), std::move(right)};
  return PlanPtr(node);
}

Result<PlanPtr> Plan::Project(PlanPtr child, std::vector<VarId> attrs) {
  if (child == nullptr) {
    return Status::InvalidArgument("project child must not be null");
  }
  std::set<VarId> child_attrs(child->schema().begin(), child->schema().end());
  std::set<VarId> seen;
  for (VarId v : attrs) {
    if (child_attrs.count(v) == 0) {
      return Status::InvalidArgument(
          "projection attribute missing from child schema");
    }
    if (!seen.insert(v).second) {
      return Status::InvalidArgument("projection attributes must be distinct");
    }
  }
  auto node = NewNode(PlanKind::kProject);
  node->schema_ = std::move(attrs);
  node->children_ = {std::move(child)};
  return PlanPtr(node);
}

size_t Plan::NumNodes() const {
  size_t n = 1;
  for (const auto& c : children_) n += c->NumNodes();
  return n;
}

namespace {

void CollectUnique(const Plan* plan, std::set<const Plan*>* seen) {
  if (!seen->insert(plan).second) return;
  for (const auto& c : plan->children()) CollectUnique(c.get(), seen);
}

}  // namespace

size_t Plan::NumUniqueNodes() const {
  std::set<const Plan*> seen;
  CollectUnique(this, &seen);
  return seen.size();
}

std::string Plan::NodeLabel(const Vocabulary& vocab) const {
  auto schema_str = [&vocab](const std::vector<VarId>& schema) {
    std::string s = "[";
    for (size_t i = 0; i < schema.size(); ++i) {
      if (i > 0) s += ", ";
      s += vocab.VariableName(schema[i]);
    }
    return s + "]";
  };
  switch (kind_) {
    case PlanKind::kScan: {
      std::string out = "Scan " + vocab.PredicateName(pred_) + "(";
      for (size_t i = 0; i < scan_columns_.size(); ++i) {
        if (i > 0) out += ", ";
        const Term& t = scan_columns_[i];
        out += t.is_variable() ? vocab.VariableName(t.var())
                               : vocab.ConstantName(t.constant());
      }
      return out + ") -> " + schema_str(schema_);
    }
    case PlanKind::kConstTuples:
      return "Const " + schema_str(schema_) + " rows=" +
             std::to_string(rows_.size());
    case PlanKind::kConstCompare:
      return "ConstCompare " + vocab.ConstantName(compare_lhs_) + " = " +
             vocab.ConstantName(compare_rhs_);
    case PlanKind::kDomainScan:
      return "DomainScan -> " + schema_str(schema_);
    case PlanKind::kEqDomain:
      return "EqDomain -> " + schema_str(schema_);
    case PlanKind::kJoin:
      return "Join -> " + schema_str(schema_);
    case PlanKind::kAntiJoin:
      return "AntiJoin -> " + schema_str(schema_);
    case PlanKind::kSemiJoin:
      return "SemiJoin -> " + schema_str(schema_);
    case PlanKind::kUnion:
      return "Union -> " + schema_str(schema_);
    case PlanKind::kProject:
      return "Project -> " + schema_str(schema_);
    case PlanKind::kParam:
      return "Param -> " + schema_str(schema_);
  }
  return "?";
}

void Plan::AppendTo(const Vocabulary& vocab, int indent,
                    std::string* out) const {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  *out += NodeLabel(vocab);
  *out += "\n";
  for (const auto& c : children_) c->AppendTo(vocab, indent + 1, out);
}

std::string Plan::ToString(const Vocabulary& vocab) const {
  std::string out;
  AppendTo(vocab, 0, &out);
  return out;
}

}  // namespace lqdb
