#include "lqdb/ra/semijoin.h"

#include <map>
#include <set>
#include <utility>
#include <vector>

namespace lqdb {

namespace {

/// Top-down pushdown of the candidate filter. `flow` is the set of
/// attributes (always a subset of the param schema) whose values are
/// preserved verbatim from the current node up to the root — so a row of
/// this node whose `flow`-columns do not match any candidate can never
/// contribute a surviving root row. A quantifier projection that drops a
/// flowing attribute (e.g. a head variable shadowed by an inner `∃`)
/// empties the flow below it, which stops the pushdown — exactly the
/// boundary where the value correspondence breaks.
class Reducer {
 public:
  explicit Reducer(PlanPtr param) : param_(std::move(param)) {}

  Result<PlanPtr> Push(const PlanPtr& node, const std::vector<VarId>& flow) {
    // Restrict the flow to this node's schema, in param-schema order.
    std::vector<VarId> f;
    for (VarId v : flow) {
      for (VarId s : node->schema()) {
        if (s == v) {
          f.push_back(v);
          break;
        }
      }
    }
    if (f.empty()) return node;
    const MemoKey key(node.get(), f);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;

    PlanPtr out = node;
    switch (node->kind()) {
      case PlanKind::kScan:
      case PlanKind::kDomainScan:
      case PlanKind::kEqDomain: {
        // Filter the leaf before anything joins on it: semijoin against
        // the candidate columns it carries.
        LQDB_ASSIGN_OR_RETURN(PlanPtr filter, FilterOf(f));
        LQDB_ASSIGN_OR_RETURN(out, Plan::SemiJoin(node, std::move(filter)));
        break;
      }
      case PlanKind::kJoin: {
        LQDB_ASSIGN_OR_RETURN(PlanPtr l, Push(node->left(), f));
        LQDB_ASSIGN_OR_RETURN(PlanPtr r, Push(node->right(), f));
        if (l != node->left() || r != node->right()) {
          LQDB_ASSIGN_OR_RETURN(out, Plan::Join(std::move(l), std::move(r)));
        }
        break;
      }
      case PlanKind::kUnion: {
        LQDB_ASSIGN_OR_RETURN(PlanPtr l, Push(node->left(), f));
        LQDB_ASSIGN_OR_RETURN(PlanPtr r, Push(node->right(), f));
        if (l != node->left() || r != node->right()) {
          LQDB_ASSIGN_OR_RETURN(out, Plan::Union(std::move(l), std::move(r)));
        }
        break;
      }
      case PlanKind::kAntiJoin: {
        // Only the left side: shrinking the right side of an anti-join
        // *grows* its output — the one antitone edge in the algebra.
        LQDB_ASSIGN_OR_RETURN(PlanPtr l, Push(node->left(), f));
        if (l != node->left()) {
          LQDB_ASSIGN_OR_RETURN(
              out, Plan::AntiJoin(std::move(l), node->right()));
        }
        break;
      }
      case PlanKind::kSemiJoin: {
        LQDB_ASSIGN_OR_RETURN(PlanPtr l, Push(node->left(), f));
        if (l != node->left()) {
          LQDB_ASSIGN_OR_RETURN(
              out, Plan::SemiJoin(std::move(l), node->right()));
        }
        break;
      }
      case PlanKind::kProject: {
        LQDB_ASSIGN_OR_RETURN(PlanPtr c, Push(node->child(), f));
        if (c != node->child()) {
          LQDB_ASSIGN_OR_RETURN(out, Plan::Project(std::move(c),
                                                   node->schema()));
        }
        break;
      }
      case PlanKind::kConstTuples:
      case PlanKind::kConstCompare:
      case PlanKind::kParam:
        break;  // nothing worth filtering
    }
    memo_.emplace(key, out);
    return out;
  }

 private:
  using MemoKey = std::pair<const Plan*, std::vector<VarId>>;

  /// `π_attrs(param)`, shared across every leaf filtered on the same
  /// columns (the executor then builds its key set once per image).
  Result<PlanPtr> FilterOf(const std::vector<VarId>& attrs) {
    if (attrs == param_->schema()) return param_;
    auto it = filter_cache_.find(attrs);
    if (it != filter_cache_.end()) return it->second;
    LQDB_ASSIGN_OR_RETURN(PlanPtr proj, Plan::Project(param_, attrs));
    filter_cache_.emplace(attrs, proj);
    return proj;
  }

  PlanPtr param_;
  std::map<std::vector<VarId>, PlanPtr> filter_cache_;
  std::map<MemoKey, PlanPtr> memo_;
};

}  // namespace

Result<ReducedPlan> SemijoinReduce(const PlanPtr& root) {
  if (root == nullptr) return Status::InvalidArgument("null plan");
  if (root->schema().empty()) {
    // Boolean query: the only candidate is the empty tuple; there is
    // nothing to filter by.
    return ReducedPlan{root, nullptr};
  }
  LQDB_ASSIGN_OR_RETURN(PlanPtr param, Plan::Param(root->schema()));
  Reducer reducer(param);
  LQDB_ASSIGN_OR_RETURN(PlanPtr reduced, reducer.Push(root, root->schema()));
  LQDB_ASSIGN_OR_RETURN(PlanPtr out,
                        Plan::SemiJoin(std::move(reduced), param));
  return ReducedPlan{std::move(out), std::move(param)};
}

}  // namespace lqdb
