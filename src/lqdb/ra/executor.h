#ifndef LQDB_RA_EXECUTOR_H_
#define LQDB_RA_EXECUTOR_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "lqdb/ra/flat_table.h"
#include "lqdb/ra/plan.h"
#include "lqdb/relational/database.h"
#include "lqdb/util/arena.h"
#include "lqdb/util/result.h"

namespace lqdb {

/// An executed intermediate result: a relation whose columns are named by
/// the plan schema (column i carries attribute schema[i]). The owned form
/// returned by `RaExecutor::Execute` for one-shot callers.
struct RaTable {
  std::vector<VarId> schema;
  Relation rel;

  RaTable() : rel(0) {}
  RaTable(std::vector<VarId> s, Relation r)
      : schema(std::move(s)), rel(std::move(r)) {}
};

/// The zero-copy result form: schema plus an arena-backed flat table that
/// lives in the executor's slot storage. Returned by `ExecuteView` for the
/// Theorem 1 inner loops.
struct RaTableView {
  std::vector<VarId> schema;
  FlatTable rows;
};

/// Bottom-up, fully materializing relational-algebra executor using hash
/// joins. This plays the role of the "standard relational system" that §5
/// of the paper compiles logical queries onto.
///
/// Compiled plans are DAGs — `↔`/`∀` share each compiled child between two
/// branches — so execution memoizes per plan node: within one execution
/// every distinct node is evaluated exactly once, keeping execution linear
/// in `Plan::NumUniqueNodes()` rather than the tree size.
///
/// Storage is built for the Theorem 1 inner loop — the same cached plan
/// executed against thousands of image databases:
///
///   - every plan node owns a slot holding an arena-backed `FlatTable`
///     (flat row array + open-addressing slot array) that is emptied, not
///     destroyed, between executions, so the steady state performs **no
///     allocation at all**: rows land in recycled arena storage, hash
///     probes walk recycled slot arrays, and the per-node join index /
///     key-set scratch is recycled the same way;
///   - per-node column metadata (join keys, projection positions, scan
///     filters) depends only on the plan shape, so it is computed once per
///     node and reused for every image;
///   - slots are validated by an execution epoch, which scopes the memo to
///     one execution even though the storage persists.
///
/// `ExecuteView` is the zero-copy entry point for such loops; `Execute`
/// returns an owned `Relation` copy for one-shot callers.
class RaExecutor {
 public:
  explicit RaExecutor(const PhysicalDatabase* db) : db_(db) {}

  /// Executes `plan` and returns an owned copy of the root table.
  Result<RaTable> Execute(const PlanPtr& plan);

  /// Executes `plan` and returns a pointer into the executor's slot
  /// storage — no copy. Valid until the next `Execute`/`ExecuteView` call
  /// on this executor (or its destruction).
  Result<const RaTableView*> ExecuteView(const PlanPtr& plan);

  /// Binds the rows a `kParam` node produces: `count` rows of the node's
  /// arity, flat row-major. The buffer is borrowed — it must stay valid
  /// until the binding is replaced; duplicates are deduplicated on
  /// execution. Executing a plan containing an unbound `kParam` fails.
  void BindParam(const Plan* param, const Value* rows, size_t count) {
    params_[param] = {rows, count};
  }

 private:
  /// A per-plan-node result table plus reusable scratch. `epoch` records
  /// the execution that last filled `table`; a stale epoch means the rows
  /// belong to a previous image database and must be rebuilt.
  struct Slot {
    RaTableView table;
    uint64_t epoch = 0;
    /// Plan-shape metadata, computed on first execution of the node and
    /// image-independent (see `PrepareMeta`). Meaning varies by kind:
    /// join/anti/semijoin: `key_a`/`key_b` are left/right key columns and
    /// `extra` the right columns appended to the output; project/union:
    /// `key_a` holds child positions in output order; scan: `key_a` is
    /// output columns, `extra` holds (column, first-occurrence) filter
    /// pairs and `const_filters` the constant selections.
    bool meta_ready = false;
    std::vector<uint32_t> key_a;
    std::vector<uint32_t> key_b;
    std::vector<uint32_t> extra;
    std::vector<std::pair<uint32_t, ConstId>> const_filters;
    /// Per-image scratch, recycled across executions.
    FlatTable key_set;
    JoinIndex index;
  };

  /// Memoized evaluation; the returned pointer lives in `slots_` and stays
  /// valid until the next execution begins.
  Result<const RaTableView*> Exec(const PlanPtr& plan);
  Status ExecNode(const Plan& plan, Slot* slot);

  /// Computes the image-independent column metadata of `slot` (run once
  /// per node; see `Slot`).
  void PrepareMeta(const Plan& plan, Slot* slot);

  Status ExecScan(const Plan& plan, Slot* slot);
  Status ExecConstTuples(const Plan& plan, Slot* slot);
  Status ExecConstCompare(const Plan& plan, Slot* slot);
  Status ExecDomainScan(const Plan& plan, Slot* slot);
  Status ExecEqDomain(const Plan& plan, Slot* slot);
  Status ExecJoin(const Plan& plan, Slot* slot);
  Status ExecAntiJoin(const Plan& plan, Slot* slot);
  Status ExecSemiJoin(const Plan& plan, Slot* slot);
  Status ExecUnion(const Plan& plan, Slot* slot);
  Status ExecProject(const Plan& plan, Slot* slot);
  Status ExecParam(const Plan& plan, Slot* slot);

  /// Empties `slot`'s table for this node's schema, keeping capacity.
  void ResetOut(const Plan& plan, Slot* slot);

  struct ParamBinding {
    const Value* rows = nullptr;
    size_t count = 0;
  };

  const PhysicalDatabase* db_;
  uint64_t epoch_ = 0;
  /// Never reset while the executor lives: slot tables grow into it and
  /// keep their storage across images (abandoned-on-growth arrays are
  /// bounded by the doubling policy).
  MemArena arena_;
  std::unordered_map<const Plan*, Slot> slots_;
  std::unordered_map<const Plan*, ParamBinding> params_;
  std::vector<Value> row_scratch_;
  std::vector<Value> key_scratch_;
};

}  // namespace lqdb

#endif  // LQDB_RA_EXECUTOR_H_
