#ifndef LQDB_RA_EXECUTOR_H_
#define LQDB_RA_EXECUTOR_H_

#include <vector>

#include "lqdb/ra/plan.h"
#include "lqdb/relational/database.h"
#include "lqdb/util/result.h"

namespace lqdb {

/// An executed intermediate result: a relation whose columns are named by
/// the plan schema (column i carries attribute schema[i]).
struct RaTable {
  std::vector<VarId> schema;
  Relation rel;

  RaTable() : rel(0) {}
  RaTable(std::vector<VarId> s, Relation r)
      : schema(std::move(s)), rel(std::move(r)) {}
};

/// Bottom-up, fully materializing relational-algebra executor using hash
/// joins. This plays the role of the "standard relational system" that §5
/// of the paper compiles logical queries onto.
class RaExecutor {
 public:
  explicit RaExecutor(const PhysicalDatabase* db) : db_(db) {}

  Result<RaTable> Execute(const PlanPtr& plan);

 private:
  Result<RaTable> ExecScan(const Plan& plan);
  Result<RaTable> ExecConstTuples(const Plan& plan);
  Result<RaTable> ExecConstCompare(const Plan& plan);
  RaTable ExecDomainScan(const Plan& plan);
  RaTable ExecEqDomain(const Plan& plan);
  Result<RaTable> ExecJoin(const Plan& plan);
  Result<RaTable> ExecAntiJoin(const Plan& plan);
  Result<RaTable> ExecUnion(const Plan& plan);
  Result<RaTable> ExecProject(const Plan& plan);

  const PhysicalDatabase* db_;
};

}  // namespace lqdb

#endif  // LQDB_RA_EXECUTOR_H_
