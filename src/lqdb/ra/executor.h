#ifndef LQDB_RA_EXECUTOR_H_
#define LQDB_RA_EXECUTOR_H_

#include <unordered_map>
#include <vector>

#include "lqdb/ra/plan.h"
#include "lqdb/relational/database.h"
#include "lqdb/util/result.h"

namespace lqdb {

/// An executed intermediate result: a relation whose columns are named by
/// the plan schema (column i carries attribute schema[i]).
struct RaTable {
  std::vector<VarId> schema;
  Relation rel;

  RaTable() : rel(0) {}
  RaTable(std::vector<VarId> s, Relation r)
      : schema(std::move(s)), rel(std::move(r)) {}
};

/// Bottom-up, fully materializing relational-algebra executor using hash
/// joins. This plays the role of the "standard relational system" that §5
/// of the paper compiles logical queries onto.
///
/// Compiled plans are DAGs — `↔`/`∀` share each compiled child between two
/// branches — so execution memoizes per plan node: within one `Execute`
/// call every distinct node is evaluated exactly once, keeping execution
/// linear in `Plan::NumUniqueNodes()` rather than the tree size. The memo
/// table is scoped to a single `Execute` call because the Theorem 1 engines
/// mutate the underlying image database between calls.
class RaExecutor {
 public:
  explicit RaExecutor(const PhysicalDatabase* db) : db_(db) {}

  Result<RaTable> Execute(const PlanPtr& plan);

 private:
  /// Memoized evaluation; the returned pointer lives in `results_` and
  /// stays valid until the next `Execute` call.
  Result<const RaTable*> Exec(const PlanPtr& plan);
  Result<RaTable> ExecNode(const Plan& plan);

  Result<RaTable> ExecScan(const Plan& plan);
  Result<RaTable> ExecConstTuples(const Plan& plan);
  Result<RaTable> ExecConstCompare(const Plan& plan);
  RaTable ExecDomainScan(const Plan& plan);
  RaTable ExecEqDomain(const Plan& plan);
  Result<RaTable> ExecJoin(const Plan& plan);
  Result<RaTable> ExecAntiJoin(const Plan& plan);
  Result<RaTable> ExecUnion(const Plan& plan);
  Result<RaTable> ExecProject(const Plan& plan);

  const PhysicalDatabase* db_;
  std::unordered_map<const Plan*, RaTable> results_;
};

}  // namespace lqdb

#endif  // LQDB_RA_EXECUTOR_H_
