#ifndef LQDB_RA_EXECUTOR_H_
#define LQDB_RA_EXECUTOR_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "lqdb/ra/plan.h"
#include "lqdb/relational/database.h"
#include "lqdb/util/result.h"

namespace lqdb {

/// An executed intermediate result: a relation whose columns are named by
/// the plan schema (column i carries attribute schema[i]).
struct RaTable {
  std::vector<VarId> schema;
  Relation rel;

  RaTable() : rel(0) {}
  RaTable(std::vector<VarId> s, Relation r)
      : schema(std::move(s)), rel(std::move(r)) {}
};

/// Bottom-up, fully materializing relational-algebra executor using hash
/// joins. This plays the role of the "standard relational system" that §5
/// of the paper compiles logical queries onto.
///
/// Compiled plans are DAGs — `↔`/`∀` share each compiled child between two
/// branches — so execution memoizes per plan node: within one execution
/// every distinct node is evaluated exactly once, keeping execution linear
/// in `Plan::NumUniqueNodes()` rather than the tree size.
///
/// Intermediate tables are *reused across executions*: each plan node owns
/// a slot whose relation is `Clear()`ed (keeping its hash-table buckets)
/// instead of destroyed, so the Theorem 1 inner loop — the same cached
/// plan executed against thousands of image databases — stops paying a
/// fresh round of hash-table allocations per image. Slots are validated by
/// an execution epoch, which is what scopes the memo to one execution even
/// though the storage persists. The win is visible on the E8 ablation: on
/// the enumeration-heavy world (1540 images per query) the reuse cut
/// ra-exact's per-query time by ~1.4–1.5x (BM_TheoremOne/ra-exact/0
/// 3.22ms → 2.14ms, /1 18.9ms → 13.3ms, single-core Release; the E8b
/// registry-table ra-exact row went 3.0ms → 1.9ms per pool while `exact`
/// stayed flat; bench/bench_e8_engine_ablation.cc).
///
/// `ExecuteView` is the zero-copy entry point for such loops; `Execute`
/// returns an owned copy for one-shot callers.
class RaExecutor {
 public:
  explicit RaExecutor(const PhysicalDatabase* db) : db_(db) {}

  /// Executes `plan` and returns an owned copy of the root table.
  Result<RaTable> Execute(const PlanPtr& plan);

  /// Executes `plan` and returns a pointer into the executor's slot
  /// storage — no copy. Valid until the next `Execute`/`ExecuteView` call
  /// on this executor (or its destruction).
  Result<const RaTable*> ExecuteView(const PlanPtr& plan);

 private:
  /// A per-plan-node result table, reused across executions. `epoch`
  /// records the execution that last filled `table`; a stale epoch means
  /// the rows belong to a previous image database and must be rebuilt.
  struct Slot {
    RaTable table;
    uint64_t epoch = 0;
  };

  /// Memoized evaluation; the returned pointer lives in `slots_` and stays
  /// valid until the next execution begins.
  Result<const RaTable*> Exec(const PlanPtr& plan);
  Status ExecNode(const Plan& plan, RaTable* out);

  Status ExecScan(const Plan& plan, RaTable* out);
  Status ExecConstTuples(const Plan& plan, RaTable* out);
  Status ExecConstCompare(const Plan& plan, RaTable* out);
  Status ExecDomainScan(const Plan& plan, RaTable* out);
  Status ExecEqDomain(const Plan& plan, RaTable* out);
  Status ExecJoin(const Plan& plan, RaTable* out);
  Status ExecAntiJoin(const Plan& plan, RaTable* out);
  Status ExecUnion(const Plan& plan, RaTable* out);
  Status ExecProject(const Plan& plan, RaTable* out);

  const PhysicalDatabase* db_;
  uint64_t epoch_ = 0;
  std::unordered_map<const Plan*, Slot> slots_;
};

}  // namespace lqdb

#endif  // LQDB_RA_EXECUTOR_H_
