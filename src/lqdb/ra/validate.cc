#include "lqdb/ra/validate.h"

#include <algorithm>
#include <functional>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace lqdb {

namespace {

const char* KindName(PlanKind kind) {
  switch (kind) {
    case PlanKind::kScan: return "Scan";
    case PlanKind::kConstTuples: return "Const";
    case PlanKind::kConstCompare: return "ConstCompare";
    case PlanKind::kDomainScan: return "DomainScan";
    case PlanKind::kEqDomain: return "EqDomain";
    case PlanKind::kJoin: return "Join";
    case PlanKind::kAntiJoin: return "AntiJoin";
    case PlanKind::kSemiJoin: return "SemiJoin";
    case PlanKind::kUnion: return "Union";
    case PlanKind::kProject: return "Project";
    case PlanKind::kParam: return "Param";
  }
  return "?";
}

bool SchemasIntersect(const std::vector<VarId>& a,
                      const std::vector<VarId>& b) {
  for (VarId x : a) {
    if (std::find(b.begin(), b.end(), x) != b.end()) return true;
  }
  return false;
}

/// The whole validation pass over one plan DAG; see validate.h for the
/// checks. Every phase memoizes per distinct node, so shared subplans are
/// visited once and the pass stays linear in the DAG size.
class Validator {
 public:
  explicit Validator(const PlanValidateOptions& options)
      : options_(options) {}

  Status Run(const PlanPtr& root) {
    LQDB_RETURN_IF_ERROR(CheckNode(root.get()));
    if (options_.max_unique_nodes > 0 &&
        checked_.size() > options_.max_unique_nodes) {
      return Status::InvalidArgument(
          "plan validation: " + std::to_string(checked_.size()) +
          " distinct nodes exceed the sharing bound of " +
          std::to_string(options_.max_unique_nodes) +
          " (duplicated desugar subtrees?)");
    }
    LQDB_RETURN_IF_ERROR(CheckJoinTrees(root.get()));
    LQDB_RETURN_IF_ERROR(CheckParamSites(root.get(), /*pushable=*/true));
    if (options_.param != nullptr && param_seen_ == nullptr) {
      return Status::InvalidArgument(
          "plan validation: expected a param relation but the plan "
          "contains none");
    }
    return Status::OK();
  }

 private:
  std::string Label(const Plan* node) const {
    if (options_.vocab != nullptr) return node->NodeLabel(*options_.vocab);
    return KindName(node->kind());
  }

  Status NodeError(const Plan* node, const std::string& what) const {
    return Status::InvalidArgument("plan validation: " + what + " at node '" +
                                   Label(node) + "'");
  }

  // -- Phase 1: per-node schema/attribute checks, cycle detection --------

  Status CheckNode(const Plan* node) {
    if (node == nullptr) {
      return Status::InvalidArgument("plan validation: null plan node");
    }
    if (checked_.count(node) > 0) return Status::OK();
    if (!on_stack_.insert(node).second) {
      return NodeError(node, "cycle in the plan graph");
    }
    for (const PlanPtr& child : node->children()) {
      LQDB_RETURN_IF_ERROR(CheckNode(child.get()));
    }
    on_stack_.erase(node);
    LQDB_RETURN_IF_ERROR(CheckNodeLocal(node));
    checked_.insert(node);
    return Status::OK();
  }

  Status CheckDistinct(const Plan* node, const std::vector<VarId>& schema) {
    std::set<VarId> seen;
    for (VarId v : schema) {
      if (!seen.insert(v).second) {
        return NodeError(node, "duplicate attribute v" + std::to_string(v) +
                                   " in output schema");
      }
    }
    return Status::OK();
  }

  Status CheckConstant(const Plan* node, ConstId c) {
    if (options_.vocab != nullptr && c >= options_.vocab->num_constants()) {
      return NodeError(node, "constant id " + std::to_string(c) +
                                 " out of vocabulary range");
    }
    return Status::OK();
  }

  Status CheckNodeLocal(const Plan* node) {
    const std::vector<VarId>& schema = node->schema();
    switch (node->kind()) {
      case PlanKind::kScan: {
        if (options_.vocab != nullptr) {
          if (node->pred() >= options_.vocab->num_predicates()) {
            return NodeError(node, "scan of unknown predicate id " +
                                       std::to_string(node->pred()));
          }
          const size_t arity = static_cast<size_t>(
              options_.vocab->PredicateArity(node->pred()));
          if (node->scan_columns().size() != arity) {
            return NodeError(
                node, "scan has " +
                          std::to_string(node->scan_columns().size()) +
                          " columns but the predicate has arity " +
                          std::to_string(arity));
          }
        }
        // The schema must list exactly the distinct column variables in
        // first-occurrence order.
        std::vector<VarId> expect;
        for (const Term& t : node->scan_columns()) {
          if (t.is_constant()) {
            LQDB_RETURN_IF_ERROR(CheckConstant(node, t.constant()));
            continue;
          }
          if (std::find(expect.begin(), expect.end(), t.var()) ==
              expect.end()) {
            expect.push_back(t.var());
          }
        }
        if (schema != expect) {
          return NodeError(node,
                           "scan schema does not match its column variables");
        }
        return Status::OK();
      }
      case PlanKind::kConstTuples: {
        LQDB_RETURN_IF_ERROR(CheckDistinct(node, schema));
        for (const std::vector<ConstId>& row : node->rows()) {
          if (row.size() != schema.size()) {
            return NodeError(node, "literal row width " +
                                       std::to_string(row.size()) +
                                       " differs from schema width " +
                                       std::to_string(schema.size()));
          }
          for (ConstId c : row) LQDB_RETURN_IF_ERROR(CheckConstant(node, c));
        }
        return Status::OK();
      }
      case PlanKind::kConstCompare:
        if (!schema.empty()) {
          return NodeError(node, "constant comparison must have arity 0");
        }
        LQDB_RETURN_IF_ERROR(CheckConstant(node, node->compare_lhs()));
        return CheckConstant(node, node->compare_rhs());
      case PlanKind::kDomainScan:
        if (schema.size() != 1) {
          return NodeError(node, "domain scan must have exactly one attribute");
        }
        return Status::OK();
      case PlanKind::kEqDomain:
        if (schema.size() != 2 || schema[0] == schema[1]) {
          return NodeError(node,
                           "EqDomain needs two distinct attributes");
        }
        return Status::OK();
      case PlanKind::kJoin: {
        // Natural join: left's attributes, then right's new ones in order.
        std::vector<VarId> expect = node->left()->schema();
        for (VarId v : node->right()->schema()) {
          if (std::find(expect.begin(), expect.end(), v) == expect.end()) {
            expect.push_back(v);
          }
        }
        if (schema != expect) {
          return NodeError(
              node, "join schema is not the union of its children's");
        }
        return CheckDistinct(node, schema);
      }
      case PlanKind::kAntiJoin:
      case PlanKind::kSemiJoin: {
        if (schema != node->left()->schema()) {
          return NodeError(node,
                           "anti/semijoin must keep exactly the left schema");
        }
        // Both operators filter the left rows on the shared columns; the
        // compiler pads the left side first, so a right-only attribute is
        // a mis-built plan (it would be silently ignored).
        const std::vector<VarId>& left = node->left()->schema();
        for (VarId v : node->right()->schema()) {
          if (std::find(left.begin(), left.end(), v) == left.end()) {
            return NodeError(node, "right attribute v" + std::to_string(v) +
                                       " is dangling: the left child never "
                                       "produces it");
          }
        }
        return Status::OK();
      }
      case PlanKind::kUnion: {
        const std::vector<VarId>& l = node->left()->schema();
        const std::vector<VarId>& r = node->right()->schema();
        if (std::set<VarId>(l.begin(), l.end()) !=
            std::set<VarId>(r.begin(), r.end())) {
          return NodeError(node,
                           "union children carry different attribute sets");
        }
        if (schema != l) {
          return NodeError(node, "union schema must be its left child's");
        }
        return CheckDistinct(node, schema);
      }
      case PlanKind::kProject: {
        LQDB_RETURN_IF_ERROR(CheckDistinct(node, schema));
        const std::vector<VarId>& child = node->child()->schema();
        for (VarId v : schema) {
          if (std::find(child.begin(), child.end(), v) == child.end()) {
            return NodeError(node, "projected attribute v" +
                                       std::to_string(v) +
                                       " is dangling: the child never "
                                       "produces it");
          }
        }
        return Status::OK();
      }
      case PlanKind::kParam:
        return CheckDistinct(node, schema);
    }
    return NodeError(node, "unknown operator kind");
  }

  // -- Phase 2: never-cross-product within every maximal join tree -------

  /// The flattened operand set of `node` viewed as a join tree: descends
  /// through kJoin children only; every non-join node reached is one
  /// operand (deduplicated by identity for shared subplans).
  const std::vector<const Plan*>& OperandsOf(const Plan* node) {
    auto it = operands_.find(node);
    if (it != operands_.end()) return it->second;
    std::vector<const Plan*> out;
    if (node->kind() != PlanKind::kJoin) {
      out.push_back(node);
    } else {
      for (const Plan* side : {node->left().get(), node->right().get()}) {
        for (const Plan* op : OperandsOf(side)) {
          if (std::find(out.begin(), out.end(), op) == out.end()) {
            out.push_back(op);
          }
        }
      }
    }
    return operands_.emplace(node, std::move(out)).first->second;
  }

  /// Checks every kJoin inside the maximal join tree rooted at `root`
  /// against the operand connectivity components of the *whole* tree.
  Status CheckJoinTree(const Plan* root) {
    const std::vector<const Plan*>& ops = OperandsOf(root);
    // Union-find over operand indices; adjacency = schemas intersect.
    std::vector<size_t> parent(ops.size());
    for (size_t i = 0; i < ops.size(); ++i) parent[i] = i;
    std::function<size_t(size_t)> find = [&](size_t x) {
      while (parent[x] != x) x = parent[x] = parent[parent[x]];
      return x;
    };
    for (size_t i = 0; i < ops.size(); ++i) {
      for (size_t j = i + 1; j < ops.size(); ++j) {
        if (SchemasIntersect(ops[i]->schema(), ops[j]->schema())) {
          parent[find(i)] = find(j);
        }
      }
    }
    std::unordered_map<const Plan*, size_t> comp_of;
    std::vector<size_t> comp_size(ops.size(), 0);
    for (size_t i = 0; i < ops.size(); ++i) {
      comp_of[ops[i]] = find(i);
      ++comp_size[find(i)];
    }

    // A side of a cross join is acceptable iff it is a union of complete
    // components: count, per component, how many of its operands the side
    // holds, and require all-or-nothing.
    auto complete_components = [&](const std::vector<const Plan*>& side) {
      std::unordered_map<size_t, size_t> held;
      for (const Plan* op : side) ++held[comp_of[op]];
      for (const auto& [comp, count] : held) {
        if (count != comp_size[comp]) return false;
      }
      return true;
    };

    // Every join node of this tree, including `root` itself.
    std::vector<const Plan*> stack = {root};
    std::unordered_set<const Plan*> seen;
    while (!stack.empty()) {
      const Plan* node = stack.back();
      stack.pop_back();
      if (node->kind() != PlanKind::kJoin || !seen.insert(node).second) {
        continue;
      }
      stack.push_back(node->left().get());
      stack.push_back(node->right().get());
      if (SchemasIntersect(node->left()->schema(), node->right()->schema())) {
        continue;  // connected join
      }
      // Cross product: legal only between whole components (DP crosses
      // complete components; greedy crosses the accumulated complete
      // components with one operand of a fresh one).
      if (!complete_components(OperandsOf(node->left().get())) &&
          !complete_components(OperandsOf(node->right().get()))) {
        return NodeError(node,
                         "avoidable cross product: a connected group of "
                         "join operands is split across an attribute-"
                         "disjoint join");
      }
    }
    return Status::OK();
  }

  /// Finds maximal join-tree roots: kJoin nodes first reached through a
  /// non-join edge (or the plan root itself).
  Status CheckJoinTrees(const Plan* root) {
    std::vector<const Plan*> stack = {root};
    std::unordered_set<const Plan*> visited;
    while (!stack.empty()) {
      const Plan* node = stack.back();
      stack.pop_back();
      if (!visited.insert(node).second) continue;
      if (node->kind() == PlanKind::kJoin) {
        if (join_roots_checked_.insert(node).second) {
          LQDB_RETURN_IF_ERROR(CheckJoinTree(node));
        }
        // Descend past the whole join tree: operands are the next
        // non-join frontier.
        for (const Plan* op : OperandsOf(node)) stack.push_back(op);
      } else {
        for (const PlanPtr& child : node->children()) {
          stack.push_back(child.get());
        }
      }
    }
    return Status::OK();
  }

  // -- Phase 3: param relations only at monotone reducer sites -----------

  /// Whether `node` is a candidate filter: a `kParam`, possibly under a
  /// chain of projections (the shape `SemijoinReduce` builds). Returns the
  /// underlying param node or null.
  static const Plan* ParamFilterOf(const Plan* node) {
    while (node->kind() == PlanKind::kProject) node = node->child().get();
    return node->kind() == PlanKind::kParam ? node : nullptr;
  }

  Status RecordParamSite(const Plan* site, const Plan* param,
                         bool pushable) {
    if (!pushable) {
      return NodeError(site,
                       "param relation pushed through a non-monotone "
                       "position (e.g. an anti-join's right child): the "
                       "candidate filter would change answers");
    }
    if (options_.param == nullptr) {
      return NodeError(site, "unexpected param relation in a plan that "
                             "should bind no parameters");
    }
    if (param != options_.param) {
      return NodeError(site,
                       "param node differs from the query's candidate "
                       "relation: bindings are keyed by node identity, so "
                       "this table would execute empty");
    }
    param_seen_ = param;
    return Status::OK();
  }

  /// Walks the DAG tracking whether the semijoin reduction is allowed to
  /// have pushed a candidate filter to this position (`pushable`):
  /// join/union/project children and anti/semijoin left children inherit
  /// it, anti-join right children and non-filter semijoin right children
  /// clear it. Params must sit at semijoin-right filter positions with
  /// `pushable` still true.
  Status CheckParamSites(const Plan* node, bool pushable) {
    if (!param_walked_.insert({node, pushable}).second) return Status::OK();
    switch (node->kind()) {
      case PlanKind::kParam:
        // A bare param outside a semijoin-right filter position (the root
        // reducer shape is SemiJoin(plan, param), so this is unreachable
        // in well-formed reduced plans).
        return RecordParamSite(node, node, /*pushable=*/false);
      case PlanKind::kSemiJoin: {
        LQDB_RETURN_IF_ERROR(CheckParamSites(node->left().get(), pushable));
        const Plan* right = node->right().get();
        if (const Plan* param = ParamFilterOf(right)) {
          return RecordParamSite(node, param, pushable);
        }
        return CheckParamSites(right, /*pushable=*/false);
      }
      case PlanKind::kAntiJoin:
        LQDB_RETURN_IF_ERROR(CheckParamSites(node->left().get(), pushable));
        return CheckParamSites(node->right().get(), /*pushable=*/false);
      default:
        for (const PlanPtr& child : node->children()) {
          LQDB_RETURN_IF_ERROR(CheckParamSites(child.get(), pushable));
        }
        return Status::OK();
    }
  }

  const PlanValidateOptions& options_;
  std::unordered_set<const Plan*> checked_;
  std::unordered_set<const Plan*> on_stack_;
  std::unordered_map<const Plan*, std::vector<const Plan*>> operands_;
  std::unordered_set<const Plan*> join_roots_checked_;
  std::set<std::pair<const Plan*, bool>> param_walked_;
  const Plan* param_seen_ = nullptr;
};

}  // namespace

Status ValidatePlan(const PlanPtr& root, const PlanValidateOptions& options) {
  if (root == nullptr) {
    return Status::InvalidArgument("plan validation: null plan");
  }
  Validator validator(options);
  return validator.Run(root);
}

}  // namespace lqdb
