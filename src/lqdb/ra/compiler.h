#ifndef LQDB_RA_COMPILER_H_
#define LQDB_RA_COMPILER_H_

#include "lqdb/logic/formula.h"
#include "lqdb/logic/query.h"
#include "lqdb/ra/plan.h"
#include "lqdb/util/result.h"

namespace lqdb {

/// Compiles first-order queries into relational-algebra plans under
/// *active-domain* semantics: quantifiers and complements range over the
/// database domain, which is exactly the semantics of `Evaluator` (and of
/// the paper's finite interpretations, whose domain-closure axiom makes the
/// domain explicit).
///
/// The translation is total on first-order formulas:
///   - conjunction → natural join, with negated conjuncts lowered to
///     anti-joins against the accumulated positive part;
///   - disjunction → union, padding disjuncts with domain scans;
///   - ¬φ in other positions → complement against a domain product;
///   - ∃ → projection; ∀ → ¬∃¬; → and ↔ are rewritten first.
///
/// Second-order quantifiers are rejected with `Unimplemented`.
///
/// Invariant: the schema of `CompileFormula(f)` equals `FreeVariables(f)`
/// as a set.
class RaCompiler {
 public:
  explicit RaCompiler(const Vocabulary* vocab) : vocab_(vocab) {}

  /// Compiles a full query; the plan's schema follows the head order.
  /// Head variables that do not occur in the body range over the domain.
  Result<PlanPtr> Compile(const Query& query);

  /// Compiles a formula; the plan's schema is the formula's free variables.
  Result<PlanPtr> CompileFormula(const FormulaPtr& f);

 private:
  Result<PlanPtr> CompileEquals(const FormulaPtr& f);
  Result<PlanPtr> CompileAnd(const FormulaPtr& f);
  Result<PlanPtr> CompileOr(const FormulaPtr& f);
  Result<PlanPtr> CompileNot(const FormulaPtr& f);
  Result<PlanPtr> CompileExists(const FormulaPtr& f);

  /// One empty row over the empty schema (the unit of join).
  Result<PlanPtr> Unit();
  /// Product of domain scans over `vars` (Unit when empty).
  Result<PlanPtr> DomainProduct(const std::set<VarId>& vars);
  /// Joins `plan` with domain scans for any variable of `vars` missing from
  /// its schema.
  Result<PlanPtr> PadTo(PlanPtr plan, const std::set<VarId>& vars);

  const Vocabulary* vocab_;
};

}  // namespace lqdb

#endif  // LQDB_RA_COMPILER_H_
