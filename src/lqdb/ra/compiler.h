#ifndef LQDB_RA_COMPILER_H_
#define LQDB_RA_COMPILER_H_

#include <unordered_map>

#include "lqdb/logic/formula.h"
#include "lqdb/logic/query.h"
#include "lqdb/ra/plan.h"
#include "lqdb/util/result.h"

namespace lqdb {

/// Cardinality statistics that drive the greedy join ordering in
/// `RaCompiler::CompileAnd`. The Theorem 1 engines compile once per query
/// and execute the plan against every image database, so the statistics
/// come from the logical database: image relations are h-images of the fact
/// sets (size bounded by the fact count) and the image domain is `h(C)`
/// (size bounded by `|C|`). The defaults give a neutral ordering when no
/// database is at hand (plain `RaCompiler(&vocab)` construction).
struct RaCardinalities {
  /// Expected number of domain values (cost of a `DomainScan`).
  double domain_size = 4.0;
  /// Expected row count per predicate, indexed by `PredId`; predicates
  /// beyond the vector fall back to `default_relation_size`.
  std::vector<double> relation_sizes;
  double default_relation_size = 8.0;
  /// Conjunctions with at most this many positive conjuncts get exact
  /// DP join-order enumeration over connected subgraphs (DPsub with a
  /// C_out cost model); larger ones fall back to the greedy pass. The
  /// DP is exponential in the conjunct count, so the cap bounds compile
  /// time; 0 disables the DP entirely.
  size_t dp_join_cap = 10;

  double RelationSize(PredId pred) const {
    if (pred < relation_sizes.size()) return relation_sizes[pred];
    return default_relation_size;
  }
};

/// One join-ordering decision taken while compiling a query (one entry per
/// conjunction of ≥ 2 positive conjuncts, in compile order) — surfaced by
/// the shell's `explain` so plan regressions are eyeballable.
struct JoinOrderInfo {
  size_t conjuncts = 0;
  bool used_dp = false;
  /// Estimated row count of the fully joined conjunction.
  double estimated_rows = 0.0;
};

/// Compiles first-order queries into relational-algebra plans under
/// *active-domain* semantics: quantifiers and complements range over the
/// database domain, which is exactly the semantics of `Evaluator` (and of
/// the paper's finite interpretations, whose domain-closure axiom makes the
/// domain explicit).
///
/// The translation is total on first-order formulas:
///   - conjunction → natural join, greedily ordered by estimated
///     cardinality, with negated conjuncts lowered to anti-joins against
///     the accumulated positive part;
///   - disjunction → union, padding disjuncts with domain scans;
///   - ¬φ in other positions → complement against a domain product;
///   - ∃ → projection (joining a vacuous bound variable against a domain
///     scan first, so the quantifier is false over an empty domain);
///   - ∀ → ¬∃¬ and →/↔ → their boolean expansions, built directly over
///     one compilation of each child, sharing the compiled `PlanPtr`
///     between branches (plans are immutable, so the result is a DAG and
///     plan *size* stays linear in formula size).
///
/// Second-order quantifiers are rejected with `Unimplemented`.
///
/// Invariant: the schema of `CompileFormula(f)` equals `FreeVariables(f)`
/// as a set.
class RaCompiler {
 public:
  explicit RaCompiler(const Vocabulary* vocab, RaCardinalities stats = {})
      : vocab_(vocab), stats_(std::move(stats)) {}

  /// Compiles a full query; the plan's schema follows the head order.
  /// Head variables that do not occur in the body range over the domain.
  Result<PlanPtr> Compile(const Query& query);

  /// Compiles a formula; the plan's schema is the formula's free variables.
  Result<PlanPtr> CompileFormula(const FormulaPtr& f);

  /// Estimated output cardinality of `plan` under the compiler's
  /// statistics (public for `explain`-style plan annotation).
  double EstimatePlan(const PlanPtr& plan) { return Estimate(plan); }

  /// Indented plan dump annotated with per-node cardinality estimates
  /// (`~N rows`), for the shell's `explain`.
  std::string AnnotatePlan(const PlanPtr& plan);

  /// Join-ordering decisions recorded by the `Compile*` calls so far.
  const std::vector<JoinOrderInfo>& join_order_log() const {
    return join_order_log_;
  }

 private:
  Result<PlanPtr> CompileEquals(const FormulaPtr& f);
  Result<PlanPtr> CompileAnd(const FormulaPtr& f);
  Result<PlanPtr> CompileOr(const FormulaPtr& f);
  Result<PlanPtr> CompileNot(const FormulaPtr& f);
  Result<PlanPtr> CompileExists(const FormulaPtr& f);
  Result<PlanPtr> CompileForall(const FormulaPtr& f);
  Result<PlanPtr> CompileImplies(const FormulaPtr& f);
  Result<PlanPtr> CompileIff(const FormulaPtr& f);

  /// One empty row over the empty schema (the unit of join).
  Result<PlanPtr> Unit();
  /// Product of domain scans over `vars` (Unit when empty).
  Result<PlanPtr> DomainProduct(const std::set<VarId>& vars);
  /// Joins `plan` with domain scans for any variable of `vars` missing from
  /// its schema.
  Result<PlanPtr> PadTo(PlanPtr plan, const std::set<VarId>& vars);
  /// The active-domain complement of `plan`, whose schema is `free`:
  /// anti-join of the domain product over `free` against `plan`.
  Result<PlanPtr> Complement(PlanPtr plan, const std::set<VarId>& free);
  /// Existential quantification of `var` over a compiled body: projects the
  /// column away; a vacuous `var` (absent from the schema) is first joined
  /// against a domain scan so ∃ still demands a witness.
  Result<PlanPtr> ExistsPlan(PlanPtr plan, VarId var);

  /// Estimated output cardinality of `plan` under `stats_`, memoized per
  /// node (shared DAG subplans are estimated once).
  double Estimate(const PlanPtr& plan);

  /// Joins `plans` (≥ 2 positive conjuncts) into one tree. `OrderJoinsDp`
  /// runs DPsub join-order enumeration restricted to connected splits —
  /// cross products only between connected components, which are combined
  /// smallest-estimate first. `OrderJoinsGreedy` is the linear fallback:
  /// seed with the smallest input, then repeatedly join the
  /// minimum-estimate partner, connected partners first.
  Result<PlanPtr> OrderJoinsDp(const std::vector<PlanPtr>& plans);
  Result<PlanPtr> OrderJoinsGreedy(const std::vector<PlanPtr>& plans);

  const Vocabulary* vocab_;
  RaCardinalities stats_;
  std::unordered_map<PlanPtr, double> estimate_cache_;
  std::vector<JoinOrderInfo> join_order_log_;
};

}  // namespace lqdb

#endif  // LQDB_RA_COMPILER_H_
