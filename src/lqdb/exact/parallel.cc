#include "lqdb/exact/parallel.h"

#include <algorithm>
#include <atomic>
#include <utility>
#include <vector>

#include "lqdb/eval/evaluator.h"
#include "lqdb/util/annotations.h"

namespace lqdb {

namespace {

/// Per-worker evaluation state: one evaluator bound to the worker's scratch
/// image database, plus the batch buffers reused for every mapping the
/// worker examines. The kernel-memo verdict table is shared across workers
/// (lock-free reads); only `memo`'s scratch buffers are per-worker.
struct WorkerScratch {
  Evaluator* eval;
  PhysicalDatabase* image;
  CandidateBatch batch;
  std::vector<uint32_t> open;  // per-mapping snapshot of open candidates
  MemoSweepScratch memo;
};

}  // namespace

/// Shared coordination state for one fan-out: the work-stealing range
/// queue, the cooperative stop flag, the global mapping budget, and the
/// first error.
///
/// Scheduling: the queue is seeded by `SplitCanonicalMappingSpace`; a
/// worker takes the largest remaining range (shallowest RGS prefix — it
/// covers the most partitions), walks at most `steal_chunk` mappings of it
/// with `ForEachCanonicalMappingChunk`, and pushes the unvisited remainder
/// back for idle workers. Idle workers block on the queue's condition
/// variable; the fan-out ends when the queue is empty with no worker
/// mid-chunk, or when the stop flag rises.
class ParallelExactEvaluator::Walk {
 public:
  Walk(const CwDatabase* lb, const ParallelExactOptions& options,
       ThreadPool* pool)
      : lb_(lb), options_(options), pool_(pool) {
    queue_ = SplitCanonicalMappingSpace(
        *lb, static_cast<size_t>(pool->num_threads()) *
                 static_cast<size_t>(std::max(1, options.ranges_per_thread)));
    worker_ranges_.assign(pool->num_threads(), 0);
  }

  /// Runs `per_mapping(h, scratch)` over every canonical mapping, fanned
  /// across the pool; `per_mapping` returns false to abort the whole walk
  /// (it should call `Stop()` or `RecordError()` first so other workers
  /// stand down). Blocks until all workers finish.
  template <typename PerMapping>
  void Run(const PerMapping& per_mapping) {
    pool_->FanOut([this, &per_mapping](int w) { Worker(w, per_mapping); });
  }

  void Stop() {
    stop_.store(true, std::memory_order_relaxed);
    // Empty critical section: a waiter either sees the flag before
    // sleeping or is woken by the notify below (no lost wakeup).
    { MutexLock lock(queue_mu_); }
    queue_cv_.NotifyAll();
  }
  bool stopped() const { return stop_.load(std::memory_order_relaxed); }

  void RecordError(Status error) {
    {
      MutexLock lock(mu_);
      if (error_.ok()) error_ = std::move(error);
    }
    Stop();
  }

  /// Valid after Run() returned: the fan-out's join is the happens-before
  /// edge that makes this lock-free read safe, which the static analysis
  /// cannot see — hence the exemption.
  const Status& error() const NO_THREAD_SAFETY_ANALYSIS { return error_; }
  uint64_t examined() const {
    return examined_.load(std::memory_order_relaxed);
  }
  const std::vector<uint64_t>& worker_ranges() const {
    return worker_ranges_;
  }

  Mutex& mu() RETURN_CAPABILITY(mu_) { return mu_; }

 private:
  template <typename PerMapping>
  void Worker(int index, const PerMapping& per_mapping) {
    // Per-worker scratch: one image database, one evaluator and one batch
    // buffer set, reused for every mapping this worker examines.
    PhysicalDatabase image(&lb_->vocab());
    Evaluator eval(&image, options_.base.eval);
    WorkerScratch scratch{&eval, &image, {}, {}, {}};
    std::vector<MappingRange> remainder;
    const uint64_t chunk = std::max<uint64_t>(1, options_.steal_chunk);

    MutexLock lock(queue_mu_);
    while (true) {
      while (!stopped() && queue_.empty() && walking_ != 0) {
        queue_cv_.Wait(queue_mu_, lock);
      }
      if (stopped() || queue_.empty()) break;  // done or nothing left

      // Steal the largest remaining range: the shallowest RGS prefix
      // covers the most partitions, so the fattest work moves first.
      size_t best = 0;
      for (size_t i = 1; i < queue_.size(); ++i) {
        if (queue_[i].rgs.size() < queue_[best].rgs.size()) best = i;
      }
      MappingRange range = std::move(queue_[best]);
      queue_[best] = std::move(queue_.back());
      queue_.pop_back();
      ++walking_;
      lock.Unlock();

      remainder.clear();
      ForEachCanonicalMappingChunk(
          *lb_, range, chunk,
          [&](const ConstMapping& h) {
            if (stopped()) return false;
            const uint64_t seen =
                examined_.fetch_add(1, std::memory_order_relaxed) + 1;
            if (seen > options_.base.max_mappings) {
              RecordError(Status::ResourceExhausted(
                  "exceeded max_mappings = " +
                  std::to_string(options_.base.max_mappings)));
              return false;
            }
            // The mapping is applied inside the per-mapping callback (via
            // MemoEvalCandidatesUnderMapping) so a full memo hit skips the
            // image build entirely.
            return per_mapping(h, &scratch);
          },
          &remainder);
      ++worker_ranges_[index];

      lock.Lock();
      --walking_;
      if (stopped()) break;
      if (!remainder.empty()) {
        for (MappingRange& r : remainder) queue_.push_back(std::move(r));
        queue_cv_.NotifyAll();
      } else if (queue_.empty() && walking_ == 0) {
        queue_cv_.NotifyAll();  // wake idlers so they can exit
      }
    }
  }

  const CwDatabase* lb_;
  const ParallelExactOptions& options_;
  ThreadPool* pool_;
  Mutex queue_mu_;
  CondVar queue_cv_;
  std::vector<MappingRange> queue_ GUARDED_BY(queue_mu_);
  size_t walking_ GUARDED_BY(queue_mu_) = 0;  // workers currently mid-chunk
  /// Indexed per worker, each slot written by exactly one worker — no
  /// guard needed (readers wait for the fan-out's join).
  std::vector<uint64_t> worker_ranges_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> examined_{0};
  Mutex mu_;
  Status error_ GUARDED_BY(mu_);
};

ParallelExactEvaluator::ParallelExactEvaluator(const CwDatabase* lb,
                                               ParallelExactOptions options)
    : lb_(lb),
      options_(options),
      pool_(std::make_unique<ThreadPool>(options.threads > 0
                                             ? options.threads
                                             : ThreadPool::DefaultThreads())) {
}

ParallelExactEvaluator::~ParallelExactEvaluator() = default;

Result<bool> ParallelExactEvaluator::ContainsImpl(
    const Query& query, const Tuple& candidate, bool possible_mode,
    std::optional<Counterexample>* witness) {
  LQDB_RETURN_IF_ERROR(lb_->Validate());
  LQDB_RETURN_IF_ERROR(ValidateExactCandidate(*lb_, query, candidate));
  if (witness != nullptr) witness->reset();
  LQDB_ASSIGN_OR_RETURN(BoundQuery bound, BoundQuery::Bind(query));

  // Certain membership falls as soon as one mapping falsifies; possible
  // membership rises as soon as one mapping satisfies. Both are a parallel
  // search for one decisive mapping.
  std::atomic<bool> decided{false};
  ConstMapping decisive_h;

  const std::vector<Tuple> candidates = {candidate};
  // One verdict table for the whole fan-out: reads are lock-free, and the
  // signature context is immutable after construction, so workers share
  // both safely. Each worker brings its own scratch buffers.
  KernelMemoState memo(*lb_, bound, options_.base.memo,
                       options_.base.memo_max_entries);
  Walk walk(lb_, options_, pool_.get());
  walk.Run([&](const ConstMapping& h, WorkerScratch* scratch) {
    const KernelMemoSweep sweep{&memo.memo,
                                memo.ctx ? &*memo.ctx : nullptr,
                                &scratch->memo};
    Status s = MemoEvalCandidatesUnderMapping(scratch->eval, *lb_,
                                              scratch->image, bound, h,
                                              candidates, nullptr, 1,
                                              &scratch->batch, sweep);
    if (!s.ok()) {
      walk.RecordError(std::move(s));
      return false;
    }
    if ((scratch->batch.verdicts[0] != 0) == possible_mode) {
      // Decisive mapping: a falsifier (certain mode) or a witness
      // (possible mode) settles the question for every worker.
      MutexLock lock(walk.mu());
      if (!decided.load(std::memory_order_relaxed)) {
        decided.store(true, std::memory_order_relaxed);
        decisive_h = h;
      }
      walk.Stop();
      return false;
    }
    return true;
  });
  last_mappings_ = walk.examined();
  last_worker_ranges_ = walk.worker_ranges();
  last_memo_ = memo.memo.counters();
  // A recorded decision wins over a concurrent budget error: once some
  // worker found the decisive mapping, the verdict is final, even if
  // another worker drove the shared examined_ counter past max_mappings
  // before standing down — otherwise the error/answer outcome near the
  // budget edge would vary run to run.
  if (decided.load()) {
    if (witness != nullptr) *witness = Counterexample{decisive_h};
    return possible_mode;
  }
  if (!walk.error().ok()) return walk.error();
  return !possible_mode;
}

Result<bool> ParallelExactEvaluator::Contains(
    const Query& query, const Tuple& candidate,
    std::optional<Counterexample>* counterexample) {
  return ContainsImpl(query, candidate, /*possible_mode=*/false,
                      counterexample);
}

Result<bool> ParallelExactEvaluator::IsPossible(
    const Query& query, const Tuple& candidate,
    std::optional<Counterexample>* witness) {
  return ContainsImpl(query, candidate, /*possible_mode=*/true, witness);
}

Result<Relation> ParallelExactEvaluator::AnswerImpl(const BoundQuery& bound,
                                                    bool possible_mode) {
  LQDB_RETURN_IF_ERROR(lb_->Validate());

  const size_t arity = bound.arity();
  const ConstId n = static_cast<ConstId>(lb_->num_constants());
  const std::vector<Tuple> candidates = AllCandidateTuples(arity, n);

  // Certain mode: candidates start alive and any falsifying mapping kills
  // them (the answer is the intersection over mappings). Possible mode:
  // candidates start dead and any satisfying mapping resurrects them (the
  // answer is the union). Either way a candidate's final state is
  // order-independent, so the parallel answer is deterministic. `open[i]`
  // is 1 while candidate i is still undecided; `remaining` counts open
  // candidates so the last decision can stop all workers.
  std::unique_ptr<std::atomic<uint8_t>[]> open(
      new std::atomic<uint8_t>[candidates.size()]);
  for (size_t i = 0; i < candidates.size(); ++i) {
    open[i].store(1, std::memory_order_relaxed);
  }
  std::atomic<size_t> remaining{candidates.size()};
  std::atomic<bool> all_decided{candidates.size() == 0};

  // Shared verdict table + signature context (see ContainsImpl).
  KernelMemoState memo(*lb_, bound, options_.base.memo,
                       options_.base.memo_max_entries);
  Walk walk(lb_, options_, pool_.get());
  walk.Run([&](const ConstMapping& h, WorkerScratch* scratch) {
    // Snapshot the open candidates and sweep them against this image in
    // one batched call — the same shared path the sequential engines take.
    scratch->open.clear();
    for (uint32_t i = 0; i < candidates.size(); ++i) {
      if (open[i].load(std::memory_order_relaxed) != 0) {
        scratch->open.push_back(i);
      }
    }
    if (scratch->open.empty()) return true;  // raced with the last decision
    const KernelMemoSweep sweep{&memo.memo,
                                memo.ctx ? &*memo.ctx : nullptr,
                                &scratch->memo};
    Status s = MemoEvalCandidatesUnderMapping(
        scratch->eval, *lb_, scratch->image, bound, h, candidates,
        scratch->open.data(), scratch->open.size(), &scratch->batch, sweep);
    if (!s.ok()) {
      walk.RecordError(std::move(s));
      return false;
    }
    for (size_t k = 0; k < scratch->open.size(); ++k) {
      // This mapping decides a candidate when it falsifies (certain mode)
      // or satisfies (possible mode).
      if ((scratch->batch.verdicts[k] != 0) != possible_mode) continue;
      const uint32_t i = scratch->open[k];
      if (open[i].exchange(0, std::memory_order_relaxed) == 1) {
        if (remaining.fetch_sub(1, std::memory_order_relaxed) == 1) {
          all_decided.store(true, std::memory_order_relaxed);
          walk.Stop();  // every candidate decided — nothing left to learn
          return false;
        }
      }
    }
    return true;
  });
  last_mappings_ = walk.examined();
  last_worker_ranges_ = walk.worker_ranges();
  last_memo_ = memo.memo.counters();
  // As in ContainsImpl: a fully decided candidate set is a final,
  // order-independent answer, so it wins over a budget error raised by a
  // worker that was still mid-chunk when the last candidate fell.
  if (!walk.error().ok() && !all_decided.load()) return walk.error();

  // Certain answer = never falsified (still open); possible answer =
  // witnessed at least once (closed).
  Relation answer(static_cast<int>(arity));
  for (size_t i = 0; i < candidates.size(); ++i) {
    const bool undecided = open[i].load(std::memory_order_relaxed) == 1;
    if (undecided != possible_mode) answer.Insert(candidates[i]);
  }
  return answer;
}

Result<Relation> ParallelExactEvaluator::Answer(const Query& query) {
  LQDB_ASSIGN_OR_RETURN(BoundQuery bound, BoundQuery::Bind(query));
  return AnswerImpl(bound, /*possible_mode=*/false);
}

Result<Relation> ParallelExactEvaluator::PossibleAnswer(const Query& query) {
  LQDB_ASSIGN_OR_RETURN(BoundQuery bound, BoundQuery::Bind(query));
  return AnswerImpl(bound, /*possible_mode=*/true);
}

Result<Relation> ParallelExactEvaluator::AnswerBound(const BoundQuery& bound) {
  return AnswerImpl(bound, /*possible_mode=*/false);
}

Result<Relation> ParallelExactEvaluator::PossibleAnswerBound(
    const BoundQuery& bound) {
  return AnswerImpl(bound, /*possible_mode=*/true);
}

}  // namespace lqdb
