#include "lqdb/exact/parallel.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <vector>

#include "lqdb/eval/evaluator.h"

namespace lqdb {

/// Shared coordination state for one fan-out: the range queue cursor, the
/// cooperative stop flag, the global mapping budget, and the first error.
class ParallelExactEvaluator::Walk {
 public:
  Walk(const CwDatabase* lb, const ParallelExactOptions& options,
       ThreadPool* pool)
      : lb_(lb), options_(options), pool_(pool) {
    ranges_ = SplitCanonicalMappingSpace(
        *lb, static_cast<size_t>(pool->num_threads()) *
                 static_cast<size_t>(std::max(1, options.ranges_per_thread)));
  }

  /// Runs `per_mapping(h, eval)` over every canonical mapping, fanned
  /// across the pool; `per_mapping` returns false to abort the whole walk
  /// (it should call `Stop()` or `RecordError()` first so other workers
  /// stand down). Blocks until all workers finish.
  template <typename PerMapping>
  void Run(const PerMapping& per_mapping) {
    const int workers = pool_->num_threads();
    for (int w = 0; w < workers; ++w) {
      pool_->Submit([this, &per_mapping] { Worker(per_mapping); });
    }
    pool_->Wait();
  }

  void Stop() { stop_.store(true, std::memory_order_relaxed); }
  bool stopped() const { return stop_.load(std::memory_order_relaxed); }

  void RecordError(Status error) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (error_.ok()) error_ = std::move(error);
    }
    Stop();
  }

  /// Valid after Run() returned.
  const Status& error() const { return error_; }
  uint64_t examined() const {
    return examined_.load(std::memory_order_relaxed);
  }

  std::mutex& mu() { return mu_; }

 private:
  template <typename PerMapping>
  void Worker(const PerMapping& per_mapping) {
    // Per-worker scratch: one image database and one evaluator, reused for
    // every mapping this worker examines.
    PhysicalDatabase image(&lb_->vocab());
    Evaluator eval(&image, options_.base.eval);
    while (!stopped()) {
      const size_t r = next_range_.fetch_add(1, std::memory_order_relaxed);
      if (r >= ranges_.size()) break;
      ForEachCanonicalMappingInRange(
          *lb_, ranges_[r], [&](const ConstMapping& h) {
            if (stopped()) return false;
            const uint64_t seen =
                examined_.fetch_add(1, std::memory_order_relaxed) + 1;
            if (seen > options_.base.max_mappings) {
              RecordError(Status::ResourceExhausted(
                  "exceeded max_mappings = " +
                  std::to_string(options_.base.max_mappings)));
              return false;
            }
            ApplyMappingInto(*lb_, h, &image);
            return per_mapping(h, &eval);
          });
    }
  }

  const CwDatabase* lb_;
  const ParallelExactOptions& options_;
  ThreadPool* pool_;
  std::vector<MappingRange> ranges_;
  std::atomic<size_t> next_range_{0};
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> examined_{0};
  std::mutex mu_;
  Status error_;
};

ParallelExactEvaluator::ParallelExactEvaluator(const CwDatabase* lb,
                                               ParallelExactOptions options)
    : lb_(lb),
      options_(options),
      pool_(std::make_unique<ThreadPool>(options.threads > 0
                                             ? options.threads
                                             : ThreadPool::DefaultThreads())) {
}

ParallelExactEvaluator::~ParallelExactEvaluator() = default;

Result<bool> ParallelExactEvaluator::ContainsImpl(
    const Query& query, const Tuple& candidate, bool possible_mode,
    std::optional<Counterexample>* witness) {
  LQDB_RETURN_IF_ERROR(lb_->Validate());
  LQDB_RETURN_IF_ERROR(ValidateExactCandidate(*lb_, query, candidate));
  if (witness != nullptr) witness->reset();

  // Certain membership falls as soon as one mapping falsifies; possible
  // membership rises as soon as one mapping satisfies. Both are a parallel
  // search for one decisive mapping.
  std::atomic<bool> decided{false};
  ConstMapping decisive_h;

  Walk walk(lb_, options_, pool_.get());
  walk.Run([&](const ConstMapping& h, Evaluator* eval) {
    std::map<VarId, Value> binding;
    for (size_t i = 0; i < candidate.size(); ++i) {
      binding[query.head()[i]] = h[candidate[i]];
    }
    Result<bool> sat = eval->SatisfiesWith(query.body(), binding);
    if (!sat.ok()) {
      walk.RecordError(sat.status());
      return false;
    }
    if (sat.value() == possible_mode) {
      // Decisive mapping: a falsifier (certain mode) or a witness
      // (possible mode) settles the question for every worker.
      std::lock_guard<std::mutex> lock(walk.mu());
      if (!decided.load(std::memory_order_relaxed)) {
        decided.store(true, std::memory_order_relaxed);
        decisive_h = h;
      }
      walk.Stop();
      return false;
    }
    return true;
  });
  last_mappings_ = walk.examined();
  if (!walk.error().ok()) return walk.error();
  if (decided.load() && witness != nullptr) {
    *witness = Counterexample{decisive_h};
  }
  return possible_mode ? decided.load() : !decided.load();
}

Result<bool> ParallelExactEvaluator::Contains(
    const Query& query, const Tuple& candidate,
    std::optional<Counterexample>* counterexample) {
  return ContainsImpl(query, candidate, /*possible_mode=*/false,
                      counterexample);
}

Result<bool> ParallelExactEvaluator::IsPossible(
    const Query& query, const Tuple& candidate,
    std::optional<Counterexample>* witness) {
  return ContainsImpl(query, candidate, /*possible_mode=*/true, witness);
}

Result<Relation> ParallelExactEvaluator::AnswerImpl(const Query& query,
                                                    bool possible_mode) {
  LQDB_RETURN_IF_ERROR(lb_->Validate());

  const size_t arity = query.arity();
  const ConstId n = static_cast<ConstId>(lb_->num_constants());
  const std::vector<Tuple> candidates = AllCandidateTuples(arity, n);

  // Certain mode: candidates start alive and any falsifying mapping kills
  // them (the answer is the intersection over mappings). Possible mode:
  // candidates start dead and any satisfying mapping resurrects them (the
  // answer is the union). Either way a candidate's final state is
  // order-independent, so the parallel answer is deterministic. `open[i]`
  // is 1 while candidate i is still undecided; `remaining` counts open
  // candidates so the last decision can stop all workers.
  std::unique_ptr<std::atomic<uint8_t>[]> open(
      new std::atomic<uint8_t>[candidates.size()]);
  for (size_t i = 0; i < candidates.size(); ++i) {
    open[i].store(1, std::memory_order_relaxed);
  }
  std::atomic<size_t> remaining{candidates.size()};

  Walk walk(lb_, options_, pool_.get());
  walk.Run([&](const ConstMapping& h, Evaluator* eval) {
    std::map<VarId, Value> binding;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (open[i].load(std::memory_order_relaxed) == 0) continue;
      for (size_t j = 0; j < arity; ++j) {
        binding[query.head()[j]] = h[candidates[i][j]];
      }
      Result<bool> sat = eval->SatisfiesWith(query.body(), binding);
      if (!sat.ok()) {
        walk.RecordError(sat.status());
        return false;
      }
      // This mapping decides candidate i when it falsifies (certain mode)
      // or satisfies (possible mode).
      if (sat.value() != possible_mode) continue;
      if (open[i].exchange(0, std::memory_order_relaxed) == 1) {
        if (remaining.fetch_sub(1, std::memory_order_relaxed) == 1) {
          walk.Stop();  // every candidate decided — nothing left to learn
          return false;
        }
      }
    }
    return true;
  });
  last_mappings_ = walk.examined();
  if (!walk.error().ok()) return walk.error();

  // Certain answer = never falsified (still open); possible answer =
  // witnessed at least once (closed).
  Relation answer(static_cast<int>(arity));
  for (size_t i = 0; i < candidates.size(); ++i) {
    const bool undecided = open[i].load(std::memory_order_relaxed) == 1;
    if (undecided != possible_mode) answer.Insert(candidates[i]);
  }
  return answer;
}

Result<Relation> ParallelExactEvaluator::Answer(const Query& query) {
  return AnswerImpl(query, /*possible_mode=*/false);
}

Result<Relation> ParallelExactEvaluator::PossibleAnswer(const Query& query) {
  return AnswerImpl(query, /*possible_mode=*/true);
}

}  // namespace lqdb
