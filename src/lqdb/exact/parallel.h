#ifndef LQDB_EXACT_PARALLEL_H_
#define LQDB_EXACT_PARALLEL_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "lqdb/cwdb/cw_database.h"
#include "lqdb/cwdb/mapping.h"
#include "lqdb/exact/exact.h"
#include "lqdb/logic/query.h"
#include "lqdb/relational/relation.h"
#include "lqdb/util/result.h"
#include "lqdb/util/thread_pool.h"

namespace lqdb {

struct ParallelExactOptions {
  /// Limits and evaluator options shared with the sequential engine.
  /// `base.max_mappings` is accounted *globally* across all workers; an
  /// answer that was fully decided within the budget is returned even when
  /// workers still mid-chunk nudged the shared counter past the limit
  /// before standing down (the decision is final and order-independent, so
  /// it wins over the concurrent budget error).
  ExactOptions base;
  /// Worker threads; 0 means `ThreadPool::DefaultThreads()`.
  int threads = 0;
  /// The kernel-partition space is pre-split into about
  /// `threads * ranges_per_thread` independent ranges to seed the
  /// work-stealing queue; higher values smooth startup at slightly more
  /// split cost.
  int ranges_per_thread = 8;
  /// Work-stealing granularity: a worker walks at most this many mappings
  /// of a range before donating the unvisited remainder back to the shared
  /// queue, so an arbitrarily skewed range can never serialize more than
  /// `steal_chunk` mappings on one worker. Values < 1 are clamped to 1.
  uint64_t steal_chunk = 64;
};

/// The Theorem 1 exact engine with the canonical-mapping enumeration fanned
/// out across a thread pool. `SplitCanonicalMappingSpace` partitions the
/// kernel-partition space by restricted-growth-string prefix into
/// independent ranges seeding a shared work-stealing queue; workers
/// repeatedly take the *largest* remaining range (the shallowest RGS
/// prefix), walk at most `steal_chunk` mappings of it via
/// `ForEachCanonicalMappingChunk`, and donate the unvisited remainder back
/// to the queue for idle workers to steal — so a skewed partition space
/// (one giant kernel class hiding under a single prefix) spreads across
/// the pool instead of serializing on whoever drew the fat range. Each
/// worker keeps its own scratch image database and batch buffers, sweeps
/// the open candidate set against each image in one batched
/// `Evaluator::SatisfiesBatch` call, and publishes verdicts through atomic
/// per-candidate flags.
///
/// Early exit is cooperative: the first counterexample (for `Contains`),
/// the last surviving candidate dying (for `Answer`), or the last candidate
/// being witnessed (for `PossibleAnswer`) raises an atomic stop flag that
/// every worker polls per mapping. Answers are bit-identical across thread
/// counts — a candidate's membership is a property of the mapping space,
/// not of the traversal order. Which *witness or counterexample mapping* is
/// reported, and the exact `last_mappings_examined()` figure under early
/// exit, may vary between runs.
class ParallelExactEvaluator {
 public:
  explicit ParallelExactEvaluator(const CwDatabase* lb,
                                  ParallelExactOptions options = {});
  ~ParallelExactEvaluator();

  ParallelExactEvaluator(const ParallelExactEvaluator&) = delete;
  ParallelExactEvaluator& operator=(const ParallelExactEvaluator&) = delete;

  /// The certain answer `Q(LB)`; identical to `ExactEvaluator::Answer`.
  Result<Relation> Answer(const Query& query);

  /// `Answer` over a pre-bound query — the prepared-statement path (see
  /// `ExactEvaluator::AnswerBound`). The binding is only read and must
  /// outlive the call.
  Result<Relation> AnswerBound(const BoundQuery& bound);

  /// `PossibleAnswer` over a pre-bound query.
  Result<Relation> PossibleAnswerBound(const BoundQuery& bound);

  /// Membership of one candidate tuple; fills `*counterexample` (when
  /// non-null) with *a* falsifying mapping if the answer is negative.
  Result<bool> Contains(const Query& query, const Tuple& candidate,
                        std::optional<Counterexample>* counterexample =
                            nullptr);

  /// Tuples holding in at least one model; identical to
  /// `ExactEvaluator::PossibleAnswer`.
  Result<Relation> PossibleAnswer(const Query& query);

  /// Membership in the possible answer, with an optional witnessing model.
  Result<bool> IsPossible(const Query& query, const Tuple& candidate,
                          std::optional<Counterexample>* witness = nullptr);

  /// Mappings examined by the most recent call, summed across workers.
  uint64_t last_mappings_examined() const { return last_mappings_; }

  /// Kernel-memo counters of the most recent call, summed across workers
  /// (zeros with memo off).
  const KernelMemoCounters& last_memo_counters() const { return last_memo_; }

  /// Ranges (work-stealing chunks) retired per worker by the most recent
  /// call, indexed by worker; sums over the whole fan-out. Under early exit
  /// some workers may legitimately retire zero.
  const std::vector<uint64_t>& last_worker_ranges() const {
    return last_worker_ranges_;
  }

  /// The number of worker threads actually running.
  int threads() const { return pool_->num_threads(); }

 private:
  class Walk;

  Result<Relation> AnswerImpl(const BoundQuery& bound, bool possible_mode);
  Result<bool> ContainsImpl(const Query& query, const Tuple& candidate,
                            bool possible_mode,
                            std::optional<Counterexample>* witness);

  const CwDatabase* lb_;
  ParallelExactOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  uint64_t last_mappings_ = 0;
  KernelMemoCounters last_memo_;
  std::vector<uint64_t> last_worker_ranges_;
};

}  // namespace lqdb

#endif  // LQDB_EXACT_PARALLEL_H_
