#include "lqdb/exact/brute.h"

#include "lqdb/exact/exact.h"

#include <cmath>
#include <map>

#include "lqdb/cwdb/mapping.h"
#include "lqdb/cwdb/theory.h"

namespace lqdb {

uint64_t SaturatingPower(uint64_t base, uint64_t exp) {
  uint64_t result = 1;
  for (uint64_t i = 0; i < exp; ++i) {
    if (base != 0 && result > UINT64_MAX / base) return UINT64_MAX;
    result *= base;
  }
  return result;
}

namespace {

/// The shared |C|^|C| feasibility gate of `Contains` and `Answer`, in
/// overflow-checked integer arithmetic.
Status CheckBruteBudget(const CwDatabase& lb, uint64_t max_mappings) {
  const uint64_t n = lb.num_constants();
  if (SaturatingPower(n, n) > max_mappings) {
    return Status::ResourceExhausted(
        "|C|^|C| exceeds max_mappings; use ExactEvaluator");
  }
  return Status::OK();
}

}  // namespace

Result<bool> BruteForceEvaluator::Contains(const Query& query,
                                           const Tuple& candidate) {
  LQDB_RETURN_IF_ERROR(lb_->Validate());
  if (candidate.size() != query.arity()) {
    return Status::InvalidArgument("candidate arity does not match query");
  }
  LQDB_RETURN_IF_ERROR(CheckBruteBudget(*lb_, options_.max_mappings));
  LQDB_ASSIGN_OR_RETURN(BoundQuery bound, BoundQuery::Bind(query));

  bool contained = true;
  Status error = Status::OK();
  const std::vector<Tuple> candidates = {candidate};
  CandidateBatch batch;
  PhysicalDatabase image(&lb_->vocab());
  Evaluator eval(&image, options_.eval);
  // Memoization is especially effective here: the uncanonicalized
  // enumeration revisits every kernel partition (and hence every
  // signature) many times. A memo-served falsifying verdict still makes
  // *this* h a genuine counterexample (its image is isomorphic to the one
  // the verdict was computed in).
  KernelMemoState memo(*lb_, bound, options_.memo, options_.memo_max_entries);
  const KernelMemoSweep sweep = memo.sweep();
  last_mappings_ = ForEachMapping(*lb_, [&](const ConstMapping& h) {
    Status s = MemoEvalCandidatesUnderMapping(&eval, *lb_, &image, bound, h,
                                              candidates, nullptr, 1, &batch,
                                              sweep);
    if (!s.ok()) {
      error = s;
      return false;
    }
    if (!batch.verdicts[0]) {
      contained = false;
      return false;
    }
    return true;
  });
  last_memo_ = memo.memo.counters();
  if (!error.ok()) return error;
  return contained;
}

Result<Relation> BruteForceEvaluator::Answer(const Query& query) {
  LQDB_RETURN_IF_ERROR(lb_->Validate());
  LQDB_RETURN_IF_ERROR(CheckBruteBudget(*lb_, options_.max_mappings));
  LQDB_ASSIGN_OR_RETURN(BoundQuery bound, BoundQuery::Bind(query));
  const size_t arity = query.arity();
  const ConstId n = static_cast<ConstId>(lb_->num_constants());

  // Single pass over the mappings, pruning the candidate set — mirrors
  // ExactEvaluator::Answer so the two are directly comparable (bench E7).
  std::vector<Tuple> alive = AllCandidateTuples(arity, n);

  Status error = Status::OK();
  CandidateBatch batch;
  PhysicalDatabase image(&lb_->vocab());
  Evaluator eval(&image, options_.eval);
  KernelMemoState memo(*lb_, bound, options_.memo, options_.memo_max_entries);
  const KernelMemoSweep sweep = memo.sweep();
  last_mappings_ = ForEachMapping(*lb_, [&](const ConstMapping& h) {
    Status s = MemoEvalCandidatesUnderMapping(&eval, *lb_, &image, bound, h,
                                              alive, nullptr, alive.size(),
                                              &batch, sweep);
    if (!s.ok()) {
      error = s;
      return false;
    }
    size_t kept = 0;
    for (size_t k = 0; k < alive.size(); ++k) {
      if (!batch.verdicts[k]) continue;
      if (kept != k) alive[kept] = std::move(alive[k]);
      ++kept;
    }
    alive.resize(kept);
    return !alive.empty();
  });
  last_memo_ = memo.memo.counters();
  if (!error.ok()) return error;

  Relation answer(static_cast<int>(arity));
  for (Tuple& t : alive) answer.Insert(std::move(t));
  return answer;
}

namespace {

/// Odometer helper enumerating tuples over `space[i]` positions.
bool NextIndex(std::vector<size_t>* idx, size_t bound) {
  size_t pos = 0;
  while (pos < idx->size() && ++(*idx)[pos] == bound) {
    (*idx)[pos] = 0;
    ++pos;
  }
  return pos != idx->size();
}

}  // namespace

Result<bool> ModelEnumerationContains(CwDatabase* lb, const Query& query,
                                      const Tuple& candidate,
                                      const ModelEnumOptions& options) {
  LQDB_RETURN_IF_ERROR(lb->Validate());
  if (candidate.size() != query.arity()) {
    return Status::InvalidArgument("candidate arity does not match query");
  }
  const size_t n = lb->num_constants();
  const std::vector<PredId> schema = lb->vocab().SchemaPredicates();

  // Estimate the enumeration size: Σ_D |D|^n * Π_P 2^(|D|^arity(P)).
  double total = 0;
  for (size_t mask = 1; mask < (1u << n); ++mask) {
    const int d = __builtin_popcount(static_cast<unsigned>(mask));
    double models = std::pow(d, n);
    for (PredId p : schema) {
      models *= std::pow(2.0, std::pow(d, lb->vocab().PredicateArity(p)));
    }
    total += models;
    if (total > options.max_models) {
      return Status::ResourceExhausted(
          "model enumeration would examine ~" + std::to_string(total) +
          " interpretations");
    }
  }

  const Theory theory = TheoryOf(lb);
  const std::vector<FormulaPtr> sentences = theory.AllSentences();

  for (size_t mask = 1; mask < (1u << n); ++mask) {
    // Domain = the constants selected by the mask.
    std::vector<Value> domain;
    for (size_t c = 0; c < n; ++c) {
      if (mask & (1u << c)) domain.push_back(static_cast<Value>(c));
    }
    // Every assignment of constants to domain values.
    std::vector<size_t> cidx(n, 0);
    while (true) {
      // Every assignment of relations: odometer over subsets of each
      // predicate's tuple space.
      std::vector<std::vector<Tuple>> spaces;
      std::vector<uint64_t> rel_masks(schema.size(), 0);
      bool feasible = true;
      for (PredId p : schema) {
        const int arity = lb->vocab().PredicateArity(p);
        std::vector<Tuple> space;
        std::vector<size_t> idx(arity, 0);
        while (true) {
          Tuple t(arity);
          for (int i = 0; i < arity; ++i) t[i] = domain[idx[i]];
          space.push_back(std::move(t));
          if (arity == 0 || !NextIndex(&idx, domain.size())) break;
        }
        if (space.size() > 24) {
          feasible = false;
          break;
        }
        spaces.push_back(std::move(space));
      }
      if (!feasible) {
        return Status::ResourceExhausted("relation space too large");
      }

      while (true) {
        PhysicalDatabase db(&lb->vocab());
        for (Value v : domain) db.AddDomainValue(v);
        for (size_t c = 0; c < n; ++c) {
          LQDB_RETURN_IF_ERROR(
              db.SetConstant(static_cast<ConstId>(c), domain[cidx[c]]));
        }
        for (size_t pi = 0; pi < schema.size(); ++pi) {
          for (size_t ti = 0; ti < spaces[pi].size(); ++ti) {
            if (rel_masks[pi] & (1ull << ti)) {
              LQDB_RETURN_IF_ERROR(db.AddTuple(schema[pi], spaces[pi][ti]));
            }
          }
        }

        Evaluator eval(&db, options.eval);
        bool is_model = true;
        for (const FormulaPtr& s : sentences) {
          LQDB_ASSIGN_OR_RETURN(bool sat, eval.Satisfies(s));
          if (!sat) {
            is_model = false;
            break;
          }
        }
        if (is_model) {
          std::map<VarId, Value> binding;
          for (size_t i = 0; i < candidate.size(); ++i) {
            binding[query.head()[i]] = db.ConstantValue(candidate[i]);
          }
          LQDB_ASSIGN_OR_RETURN(bool sat,
                                eval.SatisfiesWith(query.body(), binding));
          if (!sat) return false;  // countermodel found
        }

        // Advance the relation-mask odometer.
        size_t pi = 0;
        while (pi < schema.size()) {
          ++rel_masks[pi];
          if (rel_masks[pi] < (1ull << spaces[pi].size())) break;
          rel_masks[pi] = 0;
          ++pi;
        }
        if (pi == schema.size()) break;
      }
      if (!NextIndex(&cidx, domain.size())) break;
    }
  }
  return true;
}

}  // namespace lqdb
