#include "lqdb/exact/exact.h"

#include <map>

namespace lqdb {

Status ValidateExactCandidate(const CwDatabase& lb, const Query& query,
                              const Tuple& candidate) {
  if (candidate.size() != query.arity()) {
    return Status::InvalidArgument("candidate arity does not match query");
  }
  for (Value v : candidate) {
    if (v >= lb.num_constants()) {
      return Status::InvalidArgument("candidate references unknown constant");
    }
  }
  return Status::OK();
}

std::vector<Tuple> AllCandidateTuples(size_t arity, ConstId n) {
  std::vector<Tuple> out;
  Tuple t(arity, 0);
  while (true) {
    out.push_back(t);
    size_t pos = 0;
    while (pos < arity && ++t[pos] == n) {
      t[pos] = 0;
      ++pos;
    }
    if (pos == arity) break;
  }
  return out;
}

Result<bool> ExactEvaluator::Contains(
    const Query& query, const Tuple& candidate,
    std::optional<Counterexample>* counterexample) {
  LQDB_RETURN_IF_ERROR(lb_->Validate());
  LQDB_RETURN_IF_ERROR(ValidateExactCandidate(*lb_, query, candidate));
  if (counterexample != nullptr) counterexample->reset();

  bool contained = true;
  Status error = Status::OK();
  uint64_t examined = 0;

  PhysicalDatabase image(&lb_->vocab());
  Evaluator eval(&image, options_.eval);
  ForEachCanonicalMapping(*lb_, [&](const ConstMapping& h) {
    if (++examined > options_.max_mappings) {
      error = Status::ResourceExhausted(
          "exceeded max_mappings = " + std::to_string(options_.max_mappings));
      return false;
    }
    ApplyMappingInto(*lb_, h, &image);
    std::map<VarId, Value> binding;
    for (size_t i = 0; i < candidate.size(); ++i) {
      binding[query.head()[i]] = h[candidate[i]];
    }
    Result<bool> sat = eval.SatisfiesWith(query.body(), binding);
    if (!sat.ok()) {
      error = sat.status();
      return false;
    }
    if (!sat.value()) {
      contained = false;
      if (counterexample != nullptr) *counterexample = Counterexample{h};
      return false;  // first counterexample settles membership
    }
    return true;
  });
  last_mappings_ = examined;
  if (!error.ok()) return error;
  return contained;
}

Result<bool> ExactEvaluator::IsPossible(
    const Query& query, const Tuple& candidate,
    std::optional<Counterexample>* witness) {
  LQDB_RETURN_IF_ERROR(lb_->Validate());
  LQDB_RETURN_IF_ERROR(ValidateExactCandidate(*lb_, query, candidate));
  if (witness != nullptr) witness->reset();

  bool possible = false;
  Status error = Status::OK();
  uint64_t examined = 0;

  PhysicalDatabase image(&lb_->vocab());
  Evaluator eval(&image, options_.eval);
  ForEachCanonicalMapping(*lb_, [&](const ConstMapping& h) {
    if (++examined > options_.max_mappings) {
      error = Status::ResourceExhausted(
          "exceeded max_mappings = " + std::to_string(options_.max_mappings));
      return false;
    }
    ApplyMappingInto(*lb_, h, &image);
    std::map<VarId, Value> binding;
    for (size_t i = 0; i < candidate.size(); ++i) {
      binding[query.head()[i]] = h[candidate[i]];
    }
    Result<bool> sat = eval.SatisfiesWith(query.body(), binding);
    if (!sat.ok()) {
      error = sat.status();
      return false;
    }
    if (sat.value()) {
      possible = true;
      if (witness != nullptr) *witness = Counterexample{h};
      return false;  // first satisfying model settles possibility
    }
    return true;
  });
  last_mappings_ = examined;
  if (!error.ok()) return error;
  return possible;
}

Result<Relation> ExactEvaluator::PossibleAnswer(const Query& query) {
  LQDB_RETURN_IF_ERROR(lb_->Validate());

  const size_t arity = query.arity();
  const ConstId n = static_cast<ConstId>(lb_->num_constants());

  // Dual pruning to Answer: candidates start *dead* and every mapping may
  // resurrect some; stop once all are alive.
  std::vector<Tuple> pending = AllCandidateTuples(arity, n);

  Relation answer(static_cast<int>(arity));
  Status error = Status::OK();
  uint64_t examined = 0;
  PhysicalDatabase image(&lb_->vocab());
  Evaluator eval(&image, options_.eval);
  ForEachCanonicalMapping(*lb_, [&](const ConstMapping& h) {
    if (++examined > options_.max_mappings) {
      error = Status::ResourceExhausted(
          "exceeded max_mappings = " + std::to_string(options_.max_mappings));
      return false;
    }
    ApplyMappingInto(*lb_, h, &image);
    std::vector<Tuple> still_pending;
    still_pending.reserve(pending.size());
    for (Tuple& c : pending) {
      std::map<VarId, Value> binding;
      for (size_t i = 0; i < arity; ++i) binding[query.head()[i]] = h[c[i]];
      Result<bool> sat = eval.SatisfiesWith(query.body(), binding);
      if (!sat.ok()) {
        error = sat.status();
        return false;
      }
      if (sat.value()) {
        answer.Insert(std::move(c));
      } else {
        still_pending.push_back(std::move(c));
      }
    }
    pending = std::move(still_pending);
    return !pending.empty();  // nothing left to prove possible
  });
  last_mappings_ = examined;
  if (!error.ok()) return error;
  return answer;
}

Result<Relation> ExactEvaluator::Answer(const Query& query) {
  LQDB_RETURN_IF_ERROR(lb_->Validate());

  const size_t arity = query.arity();
  const ConstId n = static_cast<ConstId>(lb_->num_constants());

  // All candidate tuples over C start alive; every mapping prunes.
  std::vector<Tuple> alive = AllCandidateTuples(arity, n);

  Status error = Status::OK();
  uint64_t examined = 0;
  PhysicalDatabase image(&lb_->vocab());
  Evaluator eval(&image, options_.eval);
  ForEachCanonicalMapping(*lb_, [&](const ConstMapping& h) {
    if (++examined > options_.max_mappings) {
      error = Status::ResourceExhausted(
          "exceeded max_mappings = " + std::to_string(options_.max_mappings));
      return false;
    }
    ApplyMappingInto(*lb_, h, &image);
    std::vector<Tuple> survivors;
    survivors.reserve(alive.size());
    for (const Tuple& c : alive) {
      std::map<VarId, Value> binding;
      for (size_t i = 0; i < arity; ++i) binding[query.head()[i]] = h[c[i]];
      Result<bool> sat = eval.SatisfiesWith(query.body(), binding);
      if (!sat.ok()) {
        error = sat.status();
        return false;
      }
      if (sat.value()) survivors.push_back(c);
    }
    alive = std::move(survivors);
    return !alive.empty();  // nothing left to disprove
  });
  last_mappings_ = examined;
  if (!error.ok()) return error;

  Relation answer(static_cast<int>(arity));
  for (Tuple& t : alive) answer.Insert(std::move(t));
  return answer;
}

}  // namespace lqdb
