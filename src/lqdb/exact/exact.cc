#include "lqdb/exact/exact.h"

#include <optional>

namespace lqdb {

Status ValidateExactCandidate(const CwDatabase& lb, const Query& query,
                              const Tuple& candidate) {
  if (candidate.size() != query.arity()) {
    return Status::InvalidArgument("candidate arity does not match query");
  }
  for (Value v : candidate) {
    if (v >= lb.num_constants()) {
      return Status::InvalidArgument("candidate references unknown constant");
    }
  }
  return Status::OK();
}

std::vector<Tuple> AllCandidateTuples(size_t arity, ConstId n) {
  // A positive arity over an empty constant set has no tuples; without this
  // guard the odometer below would emit bogus rows that index past the end
  // of every mapping `h`.
  if (n == 0 && arity > 0) return {};
  std::vector<Tuple> out;
  Tuple t(arity, 0);
  while (true) {
    out.push_back(t);
    size_t pos = 0;
    while (pos < arity && ++t[pos] == n) {
      t[pos] = 0;
      ++pos;
    }
    if (pos == arity) break;
  }
  return out;
}

Status EvalCandidatesUnderMapping(Evaluator* eval, const BoundQuery& bound,
                                  const ConstMapping& h,
                                  const std::vector<Tuple>& candidates,
                                  const uint32_t* subset, size_t count,
                                  CandidateBatch* batch) {
  const size_t arity = bound.arity();
  batch->values.resize(count * arity);
  for (size_t k = 0; k < count; ++k) {
    const Tuple& c = candidates[subset == nullptr ? k : subset[k]];
    Value* row = batch->values.data() + k * arity;
    for (size_t i = 0; i < arity; ++i) row[i] = h[c[i]];
  }
  return eval->SatisfiesBatch(bound, batch->values.data(), count,
                              &batch->verdicts);
}

Status MemoEvalCandidatesUnderMapping(Evaluator* eval, const CwDatabase& lb,
                                      PhysicalDatabase* image,
                                      const BoundQuery& bound,
                                      const ConstMapping& h,
                                      const std::vector<Tuple>& candidates,
                                      const uint32_t* subset, size_t count,
                                      CandidateBatch* batch,
                                      const KernelMemoSweep& memo) {
  if (memo.memo == nullptr || !memo.memo->enabled()) {
    ApplyMappingInto(lb, h, image);
    return EvalCandidatesUnderMapping(eval, bound, h, candidates, subset,
                                      count, batch);
  }
  const size_t arity = bound.arity();
  MemoSweepScratch& s = *memo.scratch;
  memo.ctx->SignatureOf(h, &s.sig);
  const uint32_t sig_id = memo.memo->InternSignature(s.sig.sig);

  batch->verdicts.resize(count);
  s.rows.resize(count * arity);
  s.miss_local.clear();
  for (size_t k = 0; k < count; ++k) {
    const Tuple& c = candidates[subset == nullptr ? k : subset[k]];
    Value* row = s.rows.data() + k * arity;
    for (size_t i = 0; i < arity; ++i) row[i] = s.sig.relabel[h[c[i]]];
    const int verdict = memo.memo->LookupRow(sig_id, row, arity);
    if (verdict < 0) {
      s.miss_local.push_back(static_cast<uint32_t>(k));
    } else {
      batch->verdicts[k] = static_cast<char>(verdict);
    }
  }
  memo.memo->CountLookups(count - s.miss_local.size(), s.miss_local.size());
  if (s.miss_local.empty()) {
    memo.memo->CountImageSkipped();
    return Status::OK();
  }

  ApplyMappingInto(lb, h, image);
  s.miss_subset.resize(s.miss_local.size());
  for (size_t j = 0; j < s.miss_local.size(); ++j) {
    const uint32_t k = s.miss_local[j];
    s.miss_subset[j] = subset == nullptr ? k : subset[k];
  }
  LQDB_RETURN_IF_ERROR(EvalCandidatesUnderMapping(
      eval, bound, h, candidates, s.miss_subset.data(), s.miss_subset.size(),
      &s.miss_batch));
  for (size_t j = 0; j < s.miss_local.size(); ++j) {
    const uint32_t k = s.miss_local[j];
    const bool verdict = s.miss_batch.verdicts[j] != 0;
    batch->verdicts[k] = static_cast<char>(verdict);
    memo.memo->InsertRow(sig_id, s.rows.data() + k * arity, arity, verdict);
  }
  return Status::OK();
}

Result<bool> ExactEvaluator::Contains(
    const Query& query, const Tuple& candidate,
    std::optional<Counterexample>* counterexample) {
  LQDB_RETURN_IF_ERROR(lb_->Validate());
  LQDB_RETURN_IF_ERROR(ValidateExactCandidate(*lb_, query, candidate));
  if (counterexample != nullptr) counterexample->reset();
  LQDB_ASSIGN_OR_RETURN(BoundQuery bound, BoundQuery::Bind(query));

  bool contained = true;
  Status error = Status::OK();
  uint64_t examined = 0;

  const std::vector<Tuple> candidates = {candidate};
  CandidateBatch batch;
  PhysicalDatabase image(&lb_->vocab());
  Evaluator eval(&image, options_.eval);
  KernelMemoState memo(*lb_, bound, options_.memo, options_.memo_max_entries);
  const KernelMemoSweep sweep = memo.sweep();
  ForEachCanonicalMapping(*lb_, [&](const ConstMapping& h) {
    if (++examined > options_.max_mappings) {
      error = Status::ResourceExhausted(
          "exceeded max_mappings = " + std::to_string(options_.max_mappings));
      return false;
    }
    Status s = MemoEvalCandidatesUnderMapping(&eval, *lb_, &image, bound, h,
                                              candidates, nullptr, 1, &batch,
                                              sweep);
    if (!s.ok()) {
      error = s;
      return false;
    }
    if (!batch.verdicts[0]) {
      // A memo-served falsifying verdict still makes *this* h a genuine
      // counterexample: its image is isomorphic to the one evaluated.
      contained = false;
      if (counterexample != nullptr) *counterexample = Counterexample{h};
      return false;  // first counterexample settles membership
    }
    return true;
  });
  last_mappings_ = examined;
  last_memo_ = memo.memo.counters();
  if (!error.ok()) return error;
  return contained;
}

Result<bool> ExactEvaluator::IsPossible(
    const Query& query, const Tuple& candidate,
    std::optional<Counterexample>* witness) {
  LQDB_RETURN_IF_ERROR(lb_->Validate());
  LQDB_RETURN_IF_ERROR(ValidateExactCandidate(*lb_, query, candidate));
  if (witness != nullptr) witness->reset();
  LQDB_ASSIGN_OR_RETURN(BoundQuery bound, BoundQuery::Bind(query));

  bool possible = false;
  Status error = Status::OK();
  uint64_t examined = 0;

  const std::vector<Tuple> candidates = {candidate};
  CandidateBatch batch;
  PhysicalDatabase image(&lb_->vocab());
  Evaluator eval(&image, options_.eval);
  KernelMemoState memo(*lb_, bound, options_.memo, options_.memo_max_entries);
  const KernelMemoSweep sweep = memo.sweep();
  ForEachCanonicalMapping(*lb_, [&](const ConstMapping& h) {
    if (++examined > options_.max_mappings) {
      error = Status::ResourceExhausted(
          "exceeded max_mappings = " + std::to_string(options_.max_mappings));
      return false;
    }
    Status s = MemoEvalCandidatesUnderMapping(&eval, *lb_, &image, bound, h,
                                              candidates, nullptr, 1, &batch,
                                              sweep);
    if (!s.ok()) {
      error = s;
      return false;
    }
    if (batch.verdicts[0]) {
      possible = true;
      if (witness != nullptr) *witness = Counterexample{h};
      return false;  // first satisfying model settles possibility
    }
    return true;
  });
  last_mappings_ = examined;
  last_memo_ = memo.memo.counters();
  if (!error.ok()) return error;
  return possible;
}

Result<Relation> ExactEvaluator::PossibleAnswer(const Query& query) {
  LQDB_ASSIGN_OR_RETURN(BoundQuery bound, BoundQuery::Bind(query));
  return PossibleAnswerBound(bound);
}

Result<Relation> ExactEvaluator::PossibleAnswerBound(const BoundQuery& bound) {
  LQDB_RETURN_IF_ERROR(lb_->Validate());

  const size_t arity = bound.arity();
  const ConstId n = static_cast<ConstId>(lb_->num_constants());

  // Dual pruning to Answer: candidates start *dead* and every mapping may
  // resurrect some; stop once all are alive.
  std::vector<Tuple> pending = AllCandidateTuples(arity, n);

  Relation answer(static_cast<int>(arity));
  Status error = Status::OK();
  uint64_t examined = 0;
  CandidateBatch batch;
  PhysicalDatabase image(&lb_->vocab());
  Evaluator eval(&image, options_.eval);
  KernelMemoState memo(*lb_, bound, options_.memo, options_.memo_max_entries);
  const KernelMemoSweep sweep = memo.sweep();
  ForEachCanonicalMapping(*lb_, [&](const ConstMapping& h) {
    if (++examined > options_.max_mappings) {
      error = Status::ResourceExhausted(
          "exceeded max_mappings = " + std::to_string(options_.max_mappings));
      return false;
    }
    Status s = MemoEvalCandidatesUnderMapping(&eval, *lb_, &image, bound, h,
                                              pending, nullptr, pending.size(),
                                              &batch, sweep);
    if (!s.ok()) {
      error = s;
      return false;
    }
    size_t kept = 0;
    for (size_t k = 0; k < pending.size(); ++k) {
      if (batch.verdicts[k]) {
        answer.Insert(std::move(pending[k]));
      } else {
        if (kept != k) pending[kept] = std::move(pending[k]);
        ++kept;
      }
    }
    pending.resize(kept);
    return !pending.empty();  // nothing left to prove possible
  });
  last_mappings_ = examined;
  last_memo_ = memo.memo.counters();
  if (!error.ok()) return error;
  return answer;
}

Result<Relation> ExactEvaluator::Answer(const Query& query) {
  LQDB_ASSIGN_OR_RETURN(BoundQuery bound, BoundQuery::Bind(query));
  return AnswerBound(bound);
}

Result<Relation> ExactEvaluator::AnswerBound(const BoundQuery& bound) {
  LQDB_RETURN_IF_ERROR(lb_->Validate());

  const size_t arity = bound.arity();
  const ConstId n = static_cast<ConstId>(lb_->num_constants());

  // All candidate tuples over C start alive; every mapping prunes.
  std::vector<Tuple> alive = AllCandidateTuples(arity, n);

  Status error = Status::OK();
  uint64_t examined = 0;
  CandidateBatch batch;
  PhysicalDatabase image(&lb_->vocab());
  Evaluator eval(&image, options_.eval);
  KernelMemoState memo(*lb_, bound, options_.memo, options_.memo_max_entries);
  const KernelMemoSweep sweep = memo.sweep();
  ForEachCanonicalMapping(*lb_, [&](const ConstMapping& h) {
    if (++examined > options_.max_mappings) {
      error = Status::ResourceExhausted(
          "exceeded max_mappings = " + std::to_string(options_.max_mappings));
      return false;
    }
    Status s = MemoEvalCandidatesUnderMapping(&eval, *lb_, &image, bound, h,
                                              alive, nullptr, alive.size(),
                                              &batch, sweep);
    if (!s.ok()) {
      error = s;
      return false;
    }
    size_t kept = 0;
    for (size_t k = 0; k < alive.size(); ++k) {
      if (!batch.verdicts[k]) continue;
      if (kept != k) alive[kept] = std::move(alive[k]);
      ++kept;
    }
    alive.resize(kept);
    return !alive.empty();  // nothing left to disprove
  });
  last_mappings_ = examined;
  last_memo_ = memo.memo.counters();
  if (!error.ok()) return error;

  Relation answer(static_cast<int>(arity));
  for (Tuple& t : alive) answer.Insert(std::move(t));
  return answer;
}

}  // namespace lqdb
