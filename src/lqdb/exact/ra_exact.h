#ifndef LQDB_EXACT_RA_EXACT_H_
#define LQDB_EXACT_RA_EXACT_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>

#include "lqdb/cwdb/cw_database.h"
#include "lqdb/exact/exact.h"
#include "lqdb/ra/plan.h"
#include "lqdb/ra/semijoin.h"
#include "lqdb/relational/relation.h"
#include "lqdb/util/result.h"

namespace lqdb {

/// Exact Theorem 1 evaluation with a compiled per-image inner loop: the
/// query body is compiled once to a relational-algebra plan (`RaCompiler`,
/// with join ordering driven by the logical database's fact counts), and
/// the canonical-mapping enumeration executes the cached plan against each
/// image database via `RaExecutor` — hash joins and anti-joins instead of
/// the tuple-at-a-time Tarskian walk. This is the §5 move of compiling the
/// logical query onto a standard relational system, applied to the hot
/// per-mapping satisfaction check.
///
/// Queries outside the compilable first-order fragment (second-order
/// quantification) fall back to the batched `Evaluator::SatisfiesBatch`
/// path of `ExactEvaluator`, so answers stay bit-identical to `exact` on
/// every query the engine accepts.
///
/// Compiled plans are cached per evaluator, keyed by query identity (the
/// printed head + body), so repeated calls — the shell re-running a query,
/// Contains after Answer — reuse the compiled tree; a cached null marks a
/// known-uncompilable query so the fallback is taken without recompiling.
/// A binding that already carries a compilation outcome (a prepared
/// statement from the service layer, `BoundQuery::ra_attempted()`) skips
/// the cache entirely.
class RaExactEvaluator {
 public:
  explicit RaExactEvaluator(const CwDatabase* lb, ExactOptions options = {})
      : lb_(lb), options_(options), fallback_(lb, options) {}

  /// The answer `Q(LB)` — a relation over the constant symbols `C`.
  Result<Relation> Answer(const Query& query);

  /// `Answer` over a pre-bound query — the prepared-statement path. When
  /// the binding carries an RA-compilation outcome it is used as-is (plan
  /// or fallback); otherwise the engine consults its own plan cache. The
  /// binding is only read and must outlive the call.
  Result<Relation> AnswerBound(const BoundQuery& bound);

  /// Membership of one candidate tuple of constants.
  Result<bool> Contains(const Query& query, const Tuple& candidate);

  /// Tuples holding in at least one model of the theory (see
  /// `ExactEvaluator::PossibleAnswer`).
  Result<Relation> PossibleAnswer(const Query& query);

  /// `PossibleAnswer` over a pre-bound query (see `AnswerBound`).
  Result<Relation> PossibleAnswerBound(const BoundQuery& bound);

  /// Mappings examined by the most recent call.
  uint64_t last_mappings_examined() const { return last_mappings_; }

  /// Kernel-memo counters of the most recent call (zeros with memo off;
  /// the fallback path reports the fallback evaluator's counters).
  const KernelMemoCounters& last_memo_counters() const { return last_memo_; }

  /// Whether the most recent call executed the compiled RA plan (as opposed
  /// to taking the evaluator fallback).
  bool last_used_ra() const { return last_used_ra_; }

  /// Number of distinct queries whose compilation outcome is cached.
  size_t plan_cache_size() const { return plan_cache_.size(); }

 private:
  /// Binds `query` and fills its RA-plan slot: from the cache on a hit,
  /// compiling (and caching the outcome) on a miss. A null `ra_plan()` in
  /// the returned binding means "use the fallback".
  Result<BoundQuery> Prepare(const Query& query);

  /// The Theorem 1 loops over a binding whose compilation outcome is
  /// settled (`ra_attempted()` or known-uncompilable treated as fallback).
  Result<Relation> AnswerPrepared(const BoundQuery& bound);
  Result<Relation> PossiblePrepared(const BoundQuery& bound);

  /// The semijoin-reduced form of a compiled plan (cached per plan node —
  /// the sweeps only ever need membership of the surviving candidates, so
  /// they run the reduced plan with the candidate set bound to `param`).
  /// A null `param` (arity-0 plan, or reduction failed) means "run the
  /// original plan unreduced".
  const ReducedPlan& ReducedFor(const PlanPtr& plan);

  const CwDatabase* lb_;
  ExactOptions options_;
  ExactEvaluator fallback_;
  uint64_t last_mappings_ = 0;
  KernelMemoCounters last_memo_;
  bool last_used_ra_ = false;
  /// Query identity → compiled plan; null = known uncompilable.
  std::map<std::string, PlanPtr> plan_cache_;
  /// Compiled plan → its semijoin reduction (keyed by node identity; the
  /// plan cache keeps the nodes alive for the evaluator's lifetime).
  std::unordered_map<const Plan*, ReducedPlan> reduced_cache_;
};

}  // namespace lqdb

#endif  // LQDB_EXACT_RA_EXACT_H_
