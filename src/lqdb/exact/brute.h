#ifndef LQDB_EXACT_BRUTE_H_
#define LQDB_EXACT_BRUTE_H_

#include <cstdint>

#include "lqdb/cwdb/cw_database.h"
#include "lqdb/eval/evaluator.h"
#include "lqdb/eval/kernel_memo.h"
#include "lqdb/logic/query.h"
#include "lqdb/relational/relation.h"
#include "lqdb/util/result.h"

namespace lqdb {

struct BruteOptions {
  /// Hard cap on the number of mappings (|C|^|C| grows fast).
  uint64_t max_mappings = 50'000'000;
  /// Kernel-class verdict memoization (see ExactOptions::memo). The brute
  /// enumeration revisits each kernel partition many times, so the memo
  /// pays off even more than on the canonical sweep.
  bool memo = true;
  size_t memo_max_entries = KernelMemo::kDefaultMaxEntries;
  EvalOptions eval;
};

/// `base^exp` in integer arithmetic, saturating at `UINT64_MAX` on
/// overflow. The brute-force engine sizes its |C|^|C| enumeration with
/// this instead of `std::pow`, whose double result has only 53 bits of
/// mantissa and misclassifies budgets near the threshold for large |C|.
/// `SaturatingPower(0, 0) == 1`, matching the one (empty) mapping.
uint64_t SaturatingPower(uint64_t base, uint64_t exp);

/// Literal Theorem 1 evaluation: quantifies over *all* mappings `h : C → C`
/// respecting the uniqueness axioms, with no partition canonicalization.
/// Exponentially redundant; exists to cross-validate `ExactEvaluator`
/// (tests) and to quantify the win of canonicalization (bench E7).
class BruteForceEvaluator {
 public:
  explicit BruteForceEvaluator(const CwDatabase* lb, BruteOptions options = {})
      : lb_(lb), options_(options) {}

  Result<Relation> Answer(const Query& query);
  Result<bool> Contains(const Query& query, const Tuple& candidate);

  uint64_t last_mappings_examined() const { return last_mappings_; }

  /// Kernel-memo counters of the most recent call (zeros with memo off).
  const KernelMemoCounters& last_memo_counters() const { return last_memo_; }

 private:
  const CwDatabase* lb_;
  BruteOptions options_;
  uint64_t last_mappings_ = 0;
  KernelMemoCounters last_memo_;
};

struct ModelEnumOptions {
  /// Upper bound on the estimated number of candidate interpretations.
  double max_models = 20'000'000.0;
  EvalOptions eval;
};

/// First-principles decision of `T ⊨_f φ(c)` straight from the §2.1
/// definition: enumerates *every* finite interpretation whose domain is a
/// nonempty subset of `C` (every constant assignment, every relation
/// assignment), keeps those satisfying all sentences of the §2.2 theory
/// `T`, and checks `φ(c)` in each. Totally independent of the Theorem 1
/// machinery — the strongest cross-check the library has, and astronomically
/// expensive: use only on tiny databases.
///
/// By the domain-closure axiom every model of `T` has at most `|C|` domain
/// elements, and any such model is isomorphic to one whose domain is a
/// subset of `C`; satisfaction is isomorphism-invariant, so restricting the
/// enumeration to subsets of `C` is sound and complete.
Result<bool> ModelEnumerationContains(CwDatabase* lb, const Query& query,
                                      const Tuple& candidate,
                                      const ModelEnumOptions& options = {});

}  // namespace lqdb

#endif  // LQDB_EXACT_BRUTE_H_
