#ifndef LQDB_EXACT_EXACT_H_
#define LQDB_EXACT_EXACT_H_

#include <cstdint>
#include <optional>

#include "lqdb/cwdb/cw_database.h"
#include "lqdb/cwdb/mapping.h"
#include "lqdb/eval/bound_query.h"
#include "lqdb/eval/evaluator.h"
#include "lqdb/eval/kernel_memo.h"
#include "lqdb/logic/query.h"
#include "lqdb/relational/relation.h"
#include "lqdb/util/result.h"

namespace lqdb {

struct ExactOptions {
  /// Abort with `ResourceExhausted` after examining this many canonical
  /// mappings — the co-NP enumeration is exponential in the number of
  /// unknown values (Theorem 5), so callers opt into how much work a query
  /// may burn.
  uint64_t max_mappings = 10'000'000;
  /// Join-order enumeration cap for the compiled RA path (see
  /// `RaCardinalities::dp_join_cap`): conjunctions up to this many positive
  /// conjuncts get DP ordering, larger ones the greedy pass; 0 disables
  /// the DP. Shell knob: `set join_cap <n>`.
  size_t ra_dp_join_cap = 10;
  /// Kernel-class verdict memoization (eval/kernel_memo.h): per-mapping
  /// signatures over the query-relevant constants let signature-equivalent
  /// images share candidate verdicts within one call, skipping the image
  /// build entirely on a full hit. Answers are bit-identical either way
  /// (pinned by the differential suite); the toggle exists for A/B runs
  /// (`set memo on|off` in the shell).
  bool memo = true;
  /// Entry cap of the per-call verdict table; beyond it the memo saturates
  /// (stops inserting, never evicts).
  size_t memo_max_entries = KernelMemo::kDefaultMaxEntries;
  EvalOptions eval;
};

/// Checks that `candidate` has the query's arity and only references
/// constants of `lb` — the shared entry validation of the Theorem 1
/// engines (exact, brute, parallel).
Status ValidateExactCandidate(const CwDatabase& lb, const Query& query,
                              const Tuple& candidate);

/// All tuples over the constants `[0, n)` of the given arity, in odometer
/// order — the candidate space the Theorem 1 engines prune (one shared
/// definition so sequential and parallel answers enumerate identically).
/// Arity 0 yields the single empty tuple (the Boolean candidate); a
/// positive arity over zero constants yields the empty space.
std::vector<Tuple> AllCandidateTuples(size_t arity, ConstId n);

/// Scratch buffers for the batched per-image candidate sweep shared by the
/// Theorem 1 engines — reused across mappings so the hot loop stays
/// allocation-free once the buffers reach steady size.
struct CandidateBatch {
  std::vector<Value> values;   // flat count × arity binding rows
  std::vector<char> verdicts;  // per-candidate truth under one image
};

/// Evaluates a candidate set against one image database in a single batched
/// call: row `k` binds head variable `i` of `bound` to `h[c[i]]` where `c`
/// is the k-th swept candidate. With `subset == nullptr` the sweep covers
/// `candidates[0 .. count)`; otherwise it covers
/// `candidates[subset[0 .. count)]` (the open-candidate snapshot of the
/// parallel engine). On success `batch->verdicts[k]` is the verdict for the
/// k-th swept candidate. `eval` must be bound to the image database of `h`.
/// This is the one per-mapping inner loop shared by the sequential, brute
/// and parallel engines, so their answers stay bit-identical by
/// construction.
Status EvalCandidatesUnderMapping(Evaluator* eval, const BoundQuery& bound,
                                  const ConstMapping& h,
                                  const std::vector<Tuple>& candidates,
                                  const uint32_t* subset, size_t count,
                                  CandidateBatch* batch);

/// Per-thread scratch of the memoized sweep (`MemoEvalCandidatesUnderMapping`).
struct MemoSweepScratch {
  KernelSignatureScratch sig;
  std::vector<Value> rows;           // relabeled candidate rows, count × arity
  std::vector<uint32_t> miss_local;  // sweep positions the memo could not serve
  std::vector<uint32_t> miss_subset; // their global candidate indices
  CandidateBatch miss_batch;
};

/// One engine call's memoization hookup: a verdict table (shared across
/// workers for the parallel engine), the signature context of the call's
/// query, and this thread's scratch. A null `memo` (or a disabled one)
/// makes `MemoEvalCandidatesUnderMapping` behave exactly like
/// `ApplyMappingInto` + `EvalCandidatesUnderMapping`.
struct KernelMemoSweep {
  KernelMemo* memo = nullptr;
  const KernelSignatureContext* ctx = nullptr;
  MemoSweepScratch* scratch = nullptr;
};

/// Per-call owner of the memoization machinery used by the sequential
/// engines (exact, brute): one verdict table, the query's signature
/// context, and the call's scratch. The memo's lifetime is one
/// Answer/Contains call — cross-call reuse is the service layer's result
/// cache, which also knows when the database changed. The parallel engine
/// shares `memo`/`ctx` across workers but gives each its own scratch.
struct KernelMemoState {
  KernelMemoState(const CwDatabase& lb, const BoundQuery& bound, bool enabled,
                  size_t max_entries)
      : memo(enabled, max_entries) {
    if (enabled) ctx.emplace(lb, bound.constants());
  }

  KernelMemoSweep sweep() {
    if (!memo.enabled()) return {};
    return {&memo, &*ctx, &scratch};
  }

  KernelMemo memo;
  std::optional<KernelSignatureContext> ctx;
  MemoSweepScratch scratch;
};

/// The memo-wrapped per-mapping inner loop: consults the kernel-signature
/// table before touching the image — when every swept candidate's verdict
/// is already known the image database is never built — and otherwise
/// applies the mapping and evaluates only the missing candidates, recording
/// their verdicts. Fills `batch->verdicts` exactly as
/// `EvalCandidatesUnderMapping` would (same contract, same answers), with
/// `image`/`eval` the caller's scratch image database and its evaluator.
Status MemoEvalCandidatesUnderMapping(Evaluator* eval, const CwDatabase& lb,
                                      PhysicalDatabase* image,
                                      const BoundQuery& bound,
                                      const ConstMapping& h,
                                      const std::vector<Tuple>& candidates,
                                      const uint32_t* subset, size_t count,
                                      CandidateBatch* batch,
                                      const KernelMemoSweep& memo);

/// A witness that a tuple is *not* in `Q(LB)`: a mapping `h` respecting the
/// uniqueness axioms with `h(c) ∉ Q(h(Ph₁(LB)))` — i.e. a model of `T`
/// falsifying `φ(c)` (Theorem 1). This is the NP certificate from the
/// Theorem 5(1) upper-bound proof.
struct Counterexample {
  ConstMapping h;
};

/// Exact query evaluation over a CW logical database via the Theorem 1
/// characterization:
///
///   c ∈ Q(LB)  iff  h(c) ∈ Q(h(Ph₁(LB))) for every h : C → C
///                   that respects the uniqueness axioms,
///
/// enumerating one representative per kernel partition (see
/// `ForEachCanonicalMapping`) with early exit on the first counterexample.
class ExactEvaluator {
 public:
  explicit ExactEvaluator(const CwDatabase* lb, ExactOptions options = {})
      : lb_(lb), options_(options) {}

  /// The answer `Q(LB)` — a relation over the constant symbols `C`
  /// (§2.1: logical answers are tuples of constants, not domain values).
  Result<Relation> Answer(const Query& query);

  /// As `Answer`, over a query that was already bound — the
  /// prepared-statement path: the service layer binds (and RA-compiles)
  /// once per query text and every later execution skips straight to the
  /// enumeration. The binding (and the query it borrows) must outlive the
  /// call; the binding is only read, so concurrent sessions may share one.
  Result<Relation> AnswerBound(const BoundQuery& bound);

  /// Membership of one candidate tuple of constants; fills `*counterexample`
  /// (when non-null) if the answer is negative.
  Result<bool> Contains(const Query& query, const Tuple& candidate,
                        std::optional<Counterexample>* counterexample =
                            nullptr);

  /// The dual of `Answer` (an extension beyond the paper, marked as such in
  /// DESIGN.md): tuples that hold in *at least one* model of the theory —
  /// `{c : T ∪ {φ(c)} is finitely satisfiable}`. Certain ⊆ possible; the
  /// gap between the two relations is exactly the information lost to the
  /// unknown values. The same Theorem 1 machinery applies with the
  /// quantifier flipped (∃h instead of ∀h), making this the NP face of the
  /// co-NP problem.
  Result<Relation> PossibleAnswer(const Query& query);

  /// `PossibleAnswer` over a pre-bound query (see `AnswerBound`).
  Result<Relation> PossibleAnswerBound(const BoundQuery& bound);

  /// Membership in the possible answer, with an optional witnessing
  /// mapping (the model where the tuple holds).
  Result<bool> IsPossible(const Query& query, const Tuple& candidate,
                          std::optional<Counterexample>* witness = nullptr);

  /// Mappings examined by the most recent call (for the E1/E7 benches).
  uint64_t last_mappings_examined() const { return last_mappings_; }

  /// Kernel-memo counters of the most recent call (zeros with memo off).
  const KernelMemoCounters& last_memo_counters() const { return last_memo_; }

 private:
  const CwDatabase* lb_;
  ExactOptions options_;
  uint64_t last_mappings_ = 0;
  KernelMemoCounters last_memo_;
};

}  // namespace lqdb

#endif  // LQDB_EXACT_EXACT_H_
