#include "lqdb/exact/ra_exact.h"

#include <cassert>
#include <string>
#include <vector>

#include "lqdb/cwdb/mapping.h"
#include "lqdb/logic/printer.h"
#include "lqdb/ra/compiler.h"
#include "lqdb/ra/executor.h"
#include "lqdb/ra/validate.h"

namespace lqdb {

namespace {

/// Join-ordering statistics from the logical database: image relations are
/// h-images of the fact sets and the image domain is `h(C)`, so the fact
/// counts and `|C|` upper-bound (and in the canonical identity mapping,
/// equal) the per-image cardinalities the plan will see.
RaCardinalities StatsFor(const CwDatabase& lb, const ExactOptions& options) {
  RaCardinalities stats;
  stats.domain_size = static_cast<double>(lb.num_constants());
  stats.relation_sizes.assign(lb.vocab().num_predicates(), 0.0);
  for (PredId p : lb.PredicatesWithFacts()) {
    stats.relation_sizes[p] = static_cast<double>(lb.facts(p).size());
  }
  stats.dp_join_cap = options.ra_dp_join_cap;
  return stats;
}

/// Query identity for the plan cache: head order + printed body.
std::string CacheKey(const Vocabulary& vocab, const Query& query) {
  std::string key = "(";
  for (size_t i = 0; i < query.head().size(); ++i) {
    if (i > 0) key += ", ";
    key += vocab.VariableName(query.head()[i]);
  }
  key += ") . ";
  key += PrintFormula(vocab, query.body());
  return key;
}

/// Per-call memoization state of the RA sweeps — the RA analogue of
/// `KernelMemoState`, with the scratch the compiled path needs.
struct RaMemoState {
  RaMemoState(const CwDatabase& lb, const BoundQuery& bound,
              const ExactOptions& options)
      : memo(options.memo, options.memo_max_entries) {
    if (memo.enabled()) ctx.emplace(lb, bound.constants());
  }

  KernelMemo memo;
  std::optional<KernelSignatureContext> ctx;
  KernelSignatureScratch sig;
  std::vector<Value> rows;     // relabeled memo-key rows, count × arity
  std::vector<uint32_t> miss;  // candidate positions the memo could not serve
};

/// One mapping of an RA Theorem 1 sweep, memo first: fills `verdicts[k]`
/// with candidate k's truth under the image of `h`, consulting the kernel
/// memo before touching the image — a full hit skips both the image build
/// and the plan execution — and otherwise running the (semijoin-reduced)
/// plan with only the missing candidates bound to the parameter.
Status RaEvalUnderMapping(const CwDatabase& lb, const ConstMapping& h,
                          const ReducedPlan& red, RaExecutor* exec,
                          PhysicalDatabase* image, size_t arity,
                          const std::vector<Tuple>& candidates,
                          RaMemoState* memo, std::vector<char>* verdicts,
                          std::vector<Value>* cand) {
  const size_t count = candidates.size();
  verdicts->resize(count);
  const bool use_memo = memo->memo.enabled();
  uint32_t sig_id = 0;
  memo->miss.clear();
  if (use_memo) {
    memo->ctx->SignatureOf(h, &memo->sig);
    sig_id = memo->memo.InternSignature(memo->sig.sig);
    memo->rows.resize(count * arity);
    for (size_t k = 0; k < count; ++k) {
      const Tuple& c = candidates[k];
      Value* row = memo->rows.data() + k * arity;
      for (size_t i = 0; i < arity; ++i) row[i] = memo->sig.relabel[h[c[i]]];
      const int v = memo->memo.LookupRow(sig_id, row, arity);
      if (v < 0) {
        memo->miss.push_back(static_cast<uint32_t>(k));
      } else {
        (*verdicts)[k] = static_cast<char>(v);
      }
    }
    memo->memo.CountLookups(count - memo->miss.size(), memo->miss.size());
    if (memo->miss.empty()) {
      memo->memo.CountImageSkipped();
      return Status::OK();
    }
  } else {
    memo->miss.resize(count);
    for (size_t k = 0; k < count; ++k) {
      memo->miss[k] = static_cast<uint32_t>(k);
    }
  }

  ApplyMappingInto(lb, h, image);
  const size_t misses = memo->miss.size();
  cand->resize(misses * arity);
  for (size_t j = 0; j < misses; ++j) {
    const Tuple& c = candidates[memo->miss[j]];
    for (size_t i = 0; i < arity; ++i) (*cand)[j * arity + i] = h[c[i]];
  }
  // Binding only the misses is sound: the semijoin contract guarantees
  // membership answers for exactly the rows in the parameter set, and the
  // hits were answered from the memo.
  if (red.param != nullptr) {
    exec->BindParam(red.param.get(), cand->data(), misses);
  }
  Result<const RaTableView*> table = exec->ExecuteView(red.plan);
  if (!table.ok()) return table.status();
  for (size_t j = 0; j < misses; ++j) {
    const uint32_t k = memo->miss[j];
    const bool verdict = (*table)->rows.Contains(cand->data() + j * arity);
    (*verdicts)[k] = static_cast<char>(verdict);
    if (use_memo) {
      memo->memo.InsertRow(sig_id, memo->rows.data() + k * arity, arity,
                           verdict);
    }
  }
  return Status::OK();
}

}  // namespace

const ReducedPlan& RaExactEvaluator::ReducedFor(const PlanPtr& plan) {
  auto it = reduced_cache_.find(plan.get());
  if (it != reduced_cache_.end()) return it->second;
  ReducedPlan entry;
  Result<ReducedPlan> red = SemijoinReduce(plan);
  if (red.ok()) {
    entry = std::move(*red);
  } else {
    entry.plan = plan;  // null param → the sweeps run the plan unreduced
  }
#ifndef NDEBUG
  // Debug builds statically validate every plan shape this engine is about
  // to execute (see validate.h); the differential suite additionally
  // validates every plan of its instance pool in all build modes.
  PlanValidateOptions vopts;
  vopts.vocab = &lb_->vocab();
  vopts.param = entry.param.get();
  const Status verdict = ValidatePlan(entry.plan, vopts);
  assert(verdict.ok() && "semijoin-reduced plan failed static validation");
  (void)verdict;
#endif
  return reduced_cache_.emplace(plan.get(), std::move(entry)).first->second;
}

Result<BoundQuery> RaExactEvaluator::Prepare(const Query& query) {
  LQDB_ASSIGN_OR_RETURN(BoundQuery bound, BoundQuery::Bind(query));
  // The join-order cap shapes the compiled plan, so it is part of the
  // cache identity — changing the knob mid-session must not serve plans
  // ordered under the old cap.
  const std::string key = CacheKey(lb_->vocab(), query) +
                          "#cap=" + std::to_string(options_.ra_dp_join_cap);
  auto it = plan_cache_.find(key);
  if (it != plan_cache_.end()) {
    if (it->second != nullptr) {
      bound.set_ra_plan(it->second);
    } else {
      bound.set_ra_uncompilable(
          Status::Unimplemented("query is cached as uncompilable"));
    }
    return bound;
  }
  const RaCardinalities stats = StatsFor(*lb_, options_);
  Status s = bound.CompileRaPlan(lb_->vocab(), &stats);
  (void)s;  // a failed compile leaves ra_plan() null → fallback path
#ifndef NDEBUG
  if (bound.ra_plan() != nullptr) {
    // A plan the compiler just produced must pass the static validator; a
    // failure here is a compiler bug, not a user error.
    PlanValidateOptions vopts;
    vopts.vocab = &lb_->vocab();
    const Status verdict = ValidatePlan(bound.ra_plan(), vopts);
    if (!verdict.ok()) {
      return Status::Internal("compiled plan failed static validation: " +
                              verdict.message());
    }
  }
#endif
  plan_cache_.emplace(key, bound.ra_plan());
  return bound;
}

Result<Relation> RaExactEvaluator::Answer(const Query& query) {
  LQDB_RETURN_IF_ERROR(lb_->Validate());
  LQDB_ASSIGN_OR_RETURN(BoundQuery bound, Prepare(query));
  return AnswerPrepared(bound);
}

Result<Relation> RaExactEvaluator::AnswerBound(const BoundQuery& bound) {
  LQDB_RETURN_IF_ERROR(lb_->Validate());
  if (bound.ra_attempted()) return AnswerPrepared(bound);
  LQDB_ASSIGN_OR_RETURN(BoundQuery prepared, Prepare(bound.query()));
  return AnswerPrepared(prepared);
}

Result<Relation> RaExactEvaluator::AnswerPrepared(const BoundQuery& bound) {
  if (bound.ra_plan() == nullptr) {
    last_used_ra_ = false;
    Result<Relation> out = fallback_.AnswerBound(bound);
    last_mappings_ = fallback_.last_mappings_examined();
    last_memo_ = fallback_.last_memo_counters();
    return out;
  }
  last_used_ra_ = true;
  const ReducedPlan& red = ReducedFor(bound.ra_plan());

  const size_t arity = bound.arity();
  const ConstId n = static_cast<ConstId>(lb_->num_constants());

  // All candidate tuples over C start alive; every mapping prunes. The
  // compiled plan projects to the head order, so `Q(image)` membership of
  // the mapped candidate is one hash lookup — and the semijoin-reduced
  // plan only materializes rows matching the still-alive candidates, so
  // the per-image work shrinks as the sweep converges.
  std::vector<Tuple> alive = AllCandidateTuples(arity, n);

  Status error = Status::OK();
  uint64_t examined = 0;
  PhysicalDatabase image(&lb_->vocab());
  RaExecutor exec(&image);
  RaMemoState memo(*lb_, bound, options_);
  std::vector<Value> cand;
  std::vector<char> verdicts;
  ForEachCanonicalMapping(*lb_, [&](const ConstMapping& h) {
    if (++examined > options_.max_mappings) {
      error = Status::ResourceExhausted(
          "exceeded max_mappings = " + std::to_string(options_.max_mappings));
      return false;
    }
    Status s = RaEvalUnderMapping(*lb_, h, red, &exec, &image, arity, alive,
                                  &memo, &verdicts, &cand);
    if (!s.ok()) {
      error = s;
      return false;
    }
    size_t kept = 0;
    for (size_t k = 0; k < alive.size(); ++k) {
      if (!verdicts[k]) continue;
      if (kept != k) alive[kept] = std::move(alive[k]);
      ++kept;
    }
    alive.resize(kept);
    return !alive.empty();  // nothing left to disprove
  });
  last_mappings_ = examined;
  last_memo_ = memo.memo.counters();
  if (!error.ok()) return error;

  Relation answer(static_cast<int>(arity));
  for (Tuple& t : alive) answer.Insert(std::move(t));
  return answer;
}

Result<bool> RaExactEvaluator::Contains(const Query& query,
                                        const Tuple& candidate) {
  LQDB_RETURN_IF_ERROR(lb_->Validate());
  LQDB_RETURN_IF_ERROR(ValidateExactCandidate(*lb_, query, candidate));
  LQDB_ASSIGN_OR_RETURN(BoundQuery bound, Prepare(query));
  if (bound.ra_plan() == nullptr) {
    last_used_ra_ = false;
    Result<bool> out = fallback_.Contains(query, candidate);
    last_mappings_ = fallback_.last_mappings_examined();
    last_memo_ = fallback_.last_memo_counters();
    return out;
  }
  last_used_ra_ = true;
  const ReducedPlan& red = ReducedFor(bound.ra_plan());

  const size_t arity = query.arity();
  bool contained = true;
  Status error = Status::OK();
  uint64_t examined = 0;
  PhysicalDatabase image(&lb_->vocab());
  RaExecutor exec(&image);
  RaMemoState memo(*lb_, bound, options_);
  // A single-candidate sweep is where the reduction bites hardest: every
  // scan is filtered down to rows matching the one mapped tuple before any
  // join runs. A memo-served falsifying verdict still makes *this* h a
  // genuine counterexample (its image is isomorphic to the one the verdict
  // was computed in).
  const std::vector<Tuple> candidates = {candidate};
  std::vector<Value> cand;
  std::vector<char> verdicts;
  ForEachCanonicalMapping(*lb_, [&](const ConstMapping& h) {
    if (++examined > options_.max_mappings) {
      error = Status::ResourceExhausted(
          "exceeded max_mappings = " + std::to_string(options_.max_mappings));
      return false;
    }
    Status s = RaEvalUnderMapping(*lb_, h, red, &exec, &image, arity,
                                  candidates, &memo, &verdicts, &cand);
    if (!s.ok()) {
      error = s;
      return false;
    }
    if (!verdicts[0]) {
      contained = false;
      return false;  // first counterexample settles membership
    }
    return true;
  });
  last_mappings_ = examined;
  last_memo_ = memo.memo.counters();
  if (!error.ok()) return error;
  return contained;
}

Result<Relation> RaExactEvaluator::PossibleAnswer(const Query& query) {
  LQDB_RETURN_IF_ERROR(lb_->Validate());
  LQDB_ASSIGN_OR_RETURN(BoundQuery bound, Prepare(query));
  return PossiblePrepared(bound);
}

Result<Relation> RaExactEvaluator::PossibleAnswerBound(
    const BoundQuery& bound) {
  LQDB_RETURN_IF_ERROR(lb_->Validate());
  if (bound.ra_attempted()) return PossiblePrepared(bound);
  LQDB_ASSIGN_OR_RETURN(BoundQuery prepared, Prepare(bound.query()));
  return PossiblePrepared(prepared);
}

Result<Relation> RaExactEvaluator::PossiblePrepared(const BoundQuery& bound) {
  if (bound.ra_plan() == nullptr) {
    last_used_ra_ = false;
    Result<Relation> out = fallback_.PossibleAnswerBound(bound);
    last_mappings_ = fallback_.last_mappings_examined();
    last_memo_ = fallback_.last_memo_counters();
    return out;
  }
  last_used_ra_ = true;
  const ReducedPlan& red = ReducedFor(bound.ra_plan());

  const size_t arity = bound.arity();
  const ConstId n = static_cast<ConstId>(lb_->num_constants());

  // Dual pruning to Answer: candidates start dead and every mapping may
  // resurrect some; stop once all are alive.
  std::vector<Tuple> pending = AllCandidateTuples(arity, n);

  Relation answer(static_cast<int>(arity));
  Status error = Status::OK();
  uint64_t examined = 0;
  PhysicalDatabase image(&lb_->vocab());
  RaExecutor exec(&image);
  RaMemoState memo(*lb_, bound, options_);
  std::vector<Value> cand;
  std::vector<char> verdicts;
  ForEachCanonicalMapping(*lb_, [&](const ConstMapping& h) {
    if (++examined > options_.max_mappings) {
      error = Status::ResourceExhausted(
          "exceeded max_mappings = " + std::to_string(options_.max_mappings));
      return false;
    }
    Status s = RaEvalUnderMapping(*lb_, h, red, &exec, &image, arity, pending,
                                  &memo, &verdicts, &cand);
    if (!s.ok()) {
      error = s;
      return false;
    }
    size_t kept = 0;
    for (size_t k = 0; k < pending.size(); ++k) {
      if (verdicts[k]) {
        answer.Insert(std::move(pending[k]));
      } else {
        if (kept != k) pending[kept] = std::move(pending[k]);
        ++kept;
      }
    }
    pending.resize(kept);
    return !pending.empty();  // nothing left to prove possible
  });
  last_mappings_ = examined;
  last_memo_ = memo.memo.counters();
  if (!error.ok()) return error;
  return answer;
}

}  // namespace lqdb
