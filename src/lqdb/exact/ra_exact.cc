#include "lqdb/exact/ra_exact.h"

#include <string>
#include <vector>

#include "lqdb/cwdb/mapping.h"
#include "lqdb/logic/printer.h"
#include "lqdb/ra/compiler.h"
#include "lqdb/ra/executor.h"

namespace lqdb {

namespace {

/// Join-ordering statistics from the logical database: image relations are
/// h-images of the fact sets and the image domain is `h(C)`, so the fact
/// counts and `|C|` upper-bound (and in the canonical identity mapping,
/// equal) the per-image cardinalities the plan will see.
RaCardinalities StatsFor(const CwDatabase& lb) {
  RaCardinalities stats;
  stats.domain_size = static_cast<double>(lb.num_constants());
  stats.relation_sizes.assign(lb.vocab().num_predicates(), 0.0);
  for (PredId p : lb.PredicatesWithFacts()) {
    stats.relation_sizes[p] = static_cast<double>(lb.facts(p).size());
  }
  return stats;
}

/// Query identity for the plan cache: head order + printed body.
std::string CacheKey(const Vocabulary& vocab, const Query& query) {
  std::string key = "(";
  for (size_t i = 0; i < query.head().size(); ++i) {
    if (i > 0) key += ", ";
    key += vocab.VariableName(query.head()[i]);
  }
  key += ") . ";
  key += PrintFormula(vocab, query.body());
  return key;
}

}  // namespace

Result<BoundQuery> RaExactEvaluator::Prepare(const Query& query) {
  LQDB_ASSIGN_OR_RETURN(BoundQuery bound, BoundQuery::Bind(query));
  const std::string key = CacheKey(lb_->vocab(), query);
  auto it = plan_cache_.find(key);
  if (it != plan_cache_.end()) {
    if (it->second != nullptr) {
      bound.set_ra_plan(it->second);
    } else {
      bound.set_ra_uncompilable(
          Status::Unimplemented("query is cached as uncompilable"));
    }
    return bound;
  }
  const RaCardinalities stats = StatsFor(*lb_);
  Status s = bound.CompileRaPlan(lb_->vocab(), &stats);
  (void)s;  // a failed compile leaves ra_plan() null → fallback path
  plan_cache_.emplace(key, bound.ra_plan());
  return bound;
}

Result<Relation> RaExactEvaluator::Answer(const Query& query) {
  LQDB_RETURN_IF_ERROR(lb_->Validate());
  LQDB_ASSIGN_OR_RETURN(BoundQuery bound, Prepare(query));
  return AnswerPrepared(bound);
}

Result<Relation> RaExactEvaluator::AnswerBound(const BoundQuery& bound) {
  LQDB_RETURN_IF_ERROR(lb_->Validate());
  if (bound.ra_attempted()) return AnswerPrepared(bound);
  LQDB_ASSIGN_OR_RETURN(BoundQuery prepared, Prepare(bound.query()));
  return AnswerPrepared(prepared);
}

Result<Relation> RaExactEvaluator::AnswerPrepared(const BoundQuery& bound) {
  if (bound.ra_plan() == nullptr) {
    last_used_ra_ = false;
    Result<Relation> out = fallback_.AnswerBound(bound);
    last_mappings_ = fallback_.last_mappings_examined();
    return out;
  }
  last_used_ra_ = true;
  const PlanPtr& plan = bound.ra_plan();

  const size_t arity = bound.arity();
  const ConstId n = static_cast<ConstId>(lb_->num_constants());

  // All candidate tuples over C start alive; every mapping prunes. The
  // compiled plan projects to the head order, so `Q(image)` membership of
  // the mapped candidate is one hash lookup.
  std::vector<Tuple> alive = AllCandidateTuples(arity, n);

  Status error = Status::OK();
  uint64_t examined = 0;
  PhysicalDatabase image(&lb_->vocab());
  RaExecutor exec(&image);
  Tuple mapped(arity);
  ForEachCanonicalMapping(*lb_, [&](const ConstMapping& h) {
    if (++examined > options_.max_mappings) {
      error = Status::ResourceExhausted(
          "exceeded max_mappings = " + std::to_string(options_.max_mappings));
      return false;
    }
    ApplyMappingInto(*lb_, h, &image);
    Result<const RaTable*> table = exec.ExecuteView(plan);
    if (!table.ok()) {
      error = table.status();
      return false;
    }
    size_t kept = 0;
    for (size_t k = 0; k < alive.size(); ++k) {
      const Tuple& c = alive[k];
      for (size_t i = 0; i < arity; ++i) mapped[i] = h[c[i]];
      if (!(*table)->rel.Contains(mapped)) continue;
      if (kept != k) alive[kept] = std::move(alive[k]);
      ++kept;
    }
    alive.resize(kept);
    return !alive.empty();  // nothing left to disprove
  });
  last_mappings_ = examined;
  if (!error.ok()) return error;

  Relation answer(static_cast<int>(arity));
  for (Tuple& t : alive) answer.Insert(std::move(t));
  return answer;
}

Result<bool> RaExactEvaluator::Contains(const Query& query,
                                        const Tuple& candidate) {
  LQDB_RETURN_IF_ERROR(lb_->Validate());
  LQDB_RETURN_IF_ERROR(ValidateExactCandidate(*lb_, query, candidate));
  LQDB_ASSIGN_OR_RETURN(BoundQuery bound, Prepare(query));
  if (bound.ra_plan() == nullptr) {
    last_used_ra_ = false;
    Result<bool> out = fallback_.Contains(query, candidate);
    last_mappings_ = fallback_.last_mappings_examined();
    return out;
  }
  last_used_ra_ = true;
  const PlanPtr& plan = bound.ra_plan();

  const size_t arity = query.arity();
  bool contained = true;
  Status error = Status::OK();
  uint64_t examined = 0;
  PhysicalDatabase image(&lb_->vocab());
  RaExecutor exec(&image);
  Tuple mapped(arity);
  ForEachCanonicalMapping(*lb_, [&](const ConstMapping& h) {
    if (++examined > options_.max_mappings) {
      error = Status::ResourceExhausted(
          "exceeded max_mappings = " + std::to_string(options_.max_mappings));
      return false;
    }
    ApplyMappingInto(*lb_, h, &image);
    Result<const RaTable*> table = exec.ExecuteView(plan);
    if (!table.ok()) {
      error = table.status();
      return false;
    }
    for (size_t i = 0; i < arity; ++i) mapped[i] = h[candidate[i]];
    if (!(*table)->rel.Contains(mapped)) {
      contained = false;
      return false;  // first counterexample settles membership
    }
    return true;
  });
  last_mappings_ = examined;
  if (!error.ok()) return error;
  return contained;
}

Result<Relation> RaExactEvaluator::PossibleAnswer(const Query& query) {
  LQDB_RETURN_IF_ERROR(lb_->Validate());
  LQDB_ASSIGN_OR_RETURN(BoundQuery bound, Prepare(query));
  return PossiblePrepared(bound);
}

Result<Relation> RaExactEvaluator::PossibleAnswerBound(
    const BoundQuery& bound) {
  LQDB_RETURN_IF_ERROR(lb_->Validate());
  if (bound.ra_attempted()) return PossiblePrepared(bound);
  LQDB_ASSIGN_OR_RETURN(BoundQuery prepared, Prepare(bound.query()));
  return PossiblePrepared(prepared);
}

Result<Relation> RaExactEvaluator::PossiblePrepared(const BoundQuery& bound) {
  if (bound.ra_plan() == nullptr) {
    last_used_ra_ = false;
    Result<Relation> out = fallback_.PossibleAnswerBound(bound);
    last_mappings_ = fallback_.last_mappings_examined();
    return out;
  }
  last_used_ra_ = true;
  const PlanPtr& plan = bound.ra_plan();

  const size_t arity = bound.arity();
  const ConstId n = static_cast<ConstId>(lb_->num_constants());

  // Dual pruning to Answer: candidates start dead and every mapping may
  // resurrect some; stop once all are alive.
  std::vector<Tuple> pending = AllCandidateTuples(arity, n);

  Relation answer(static_cast<int>(arity));
  Status error = Status::OK();
  uint64_t examined = 0;
  PhysicalDatabase image(&lb_->vocab());
  RaExecutor exec(&image);
  Tuple mapped(arity);
  ForEachCanonicalMapping(*lb_, [&](const ConstMapping& h) {
    if (++examined > options_.max_mappings) {
      error = Status::ResourceExhausted(
          "exceeded max_mappings = " + std::to_string(options_.max_mappings));
      return false;
    }
    ApplyMappingInto(*lb_, h, &image);
    Result<const RaTable*> table = exec.ExecuteView(plan);
    if (!table.ok()) {
      error = table.status();
      return false;
    }
    size_t kept = 0;
    for (size_t k = 0; k < pending.size(); ++k) {
      const Tuple& c = pending[k];
      for (size_t i = 0; i < arity; ++i) mapped[i] = h[c[i]];
      if ((*table)->rel.Contains(mapped)) {
        answer.Insert(std::move(pending[k]));
      } else {
        if (kept != k) pending[kept] = std::move(pending[k]);
        ++kept;
      }
    }
    pending.resize(kept);
    return !pending.empty();  // nothing left to prove possible
  });
  last_mappings_ = examined;
  if (!error.ok()) return error;
  return answer;
}

}  // namespace lqdb
