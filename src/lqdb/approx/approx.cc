#include "lqdb/approx/approx.h"

#include "lqdb/ra/compiler.h"
#include "lqdb/ra/executor.h"

namespace lqdb {

Result<std::unique_ptr<ApproxEvaluator>> ApproxEvaluator::Make(
    CwDatabase* lb, ApproxOptions options) {
  if (lb == nullptr) return Status::InvalidArgument("null database");
  LQDB_RETURN_IF_ERROR(lb->Validate());
  Ph2Options ph2_options;
  ph2_options.materialize_ne = options.materialize_ne;
  LQDB_ASSIGN_OR_RETURN(Ph2 ph2, MakePh2(lb, ph2_options));
  // unique_ptr because the provider/transformer members hold stable
  // self-referential pointers (ph2_.ne) captured at construction.
  return std::unique_ptr<ApproxEvaluator>(
      new ApproxEvaluator(lb, std::move(ph2), options));
}

Result<TransformedQuery> ApproxEvaluator::Transform(const Query& query) {
  TransformOptions topt;
  topt.alpha_mode = options_.alpha_mode;
  if (options_.engine == ApproxEngine::kRelationalAlgebra &&
      options_.alpha_mode != AlphaMode::kVirtual) {
    return Status::InvalidArgument(
        "the relational-algebra engine requires AlphaMode::kVirtual "
        "(alpha extensions are materialized as stored relations)");
  }
  LQDB_ASSIGN_OR_RETURN(TransformedQuery tq,
                        transformer_.Transform(query, topt));
  for (const auto& [alpha, source] : tq.alpha_preds) {
    provider_.RegisterAlpha(alpha, source);
  }
  return tq;
}

Result<Relation> ApproxEvaluator::Answer(const Query& query) {
  LQDB_ASSIGN_OR_RETURN(TransformedQuery tq, Transform(query));
  if (options_.engine == ApproxEngine::kRelationalAlgebra) {
    return AnswerWithRa(tq);
  }
  return AnswerWithEvaluator(tq);
}

Result<bool> ApproxEvaluator::Contains(const Query& query,
                                       const Tuple& candidate) {
  if (candidate.size() != query.arity()) {
    return Status::InvalidArgument("candidate arity does not match query");
  }
  LQDB_ASSIGN_OR_RETURN(Relation answer, Answer(query));
  return answer.Contains(candidate);
}

Result<Relation> ApproxEvaluator::AnswerWithEvaluator(
    const TransformedQuery& tq) {
  Evaluator eval(&ph2_.db, options_.eval);
  eval.set_virtual_provider(&provider_);
  return eval.Answer(tq.query);
}

Result<Relation> ApproxEvaluator::AnswerWithRa(const TransformedQuery& tq) {
  // Scratch copy of Ph₂ with NE and the needed α_P extensions materialized
  // as ordinary stored relations — exactly what a deployment on a standard
  // relational DBMS would keep as tables / materialized views.
  PhysicalDatabase scratch = ph2_.db;
  if (!scratch.HasRelation(ph2_.ne)) {
    Relation ne(2);
    for (const auto& [a, b] : lb_->AllDistinctPairs()) {
      ne.Insert({a, b});
      ne.Insert({b, a});
    }
    LQDB_RETURN_IF_ERROR(scratch.SetRelation(ph2_.ne, std::move(ne)));
  }
  for (const auto& [alpha, source] : tq.alpha_preds) {
    const int arity = lb_->vocab().PredicateArity(source);
    Relation ext(arity);
    // Enumerate C^arity; polynomial for a fixed-arity schema (Theorem 14).
    const ConstId n = static_cast<ConstId>(lb_->num_constants());
    Tuple t(arity, 0);
    while (true) {
      if (AlphaHolds(*lb_, source, t)) ext.Insert(t);
      size_t pos = 0;
      while (pos < t.size() && ++t[pos] == n) {
        t[pos] = 0;
        ++pos;
      }
      if (pos == t.size()) break;
    }
    LQDB_RETURN_IF_ERROR(scratch.SetRelation(alpha, std::move(ext)));
  }

  RaCompiler compiler(&lb_->vocab());
  LQDB_ASSIGN_OR_RETURN(PlanPtr plan, compiler.Compile(tq.query));
  RaExecutor executor(&scratch);
  LQDB_ASSIGN_OR_RETURN(RaTable table, executor.Execute(plan));
  return std::move(table.rel);
}

}  // namespace lqdb
