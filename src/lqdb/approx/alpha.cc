#include "lqdb/approx/alpha.h"

#include <algorithm>
#include <cassert>
#include <string>

namespace lqdb {

FormulaPtr BuildConnectivity(Vocabulary* vocab, int m, Term u, Term v,
                             const EdgeFormulaFn& edge) {
  assert(m >= 1);
  if (m <= 1) {
    return Formula::Or(Formula::Equals(u, v), edge(u, v));
  }
  const int half = (m + 1) / 2;
  VarId z = vocab->FreshVariable("z");
  VarId p = vocab->FreshVariable("p");
  VarId q = vocab->FreshVariable("q");
  Term tz = Term::Variable(z);
  Term tp = Term::Variable(p);
  Term tq = Term::Variable(q);
  // The universal-pair trick keeps a single recursive occurrence:
  // ∃z ∀p ∀q (((p=u ∧ q=z) ∨ (p=z ∧ q=v)) → conn_half(p, q)).
  FormulaPtr guard = Formula::Or(
      Formula::And(Formula::Equals(tp, u), Formula::Equals(tq, tz)),
      Formula::And(Formula::Equals(tp, tz), Formula::Equals(tq, v)));
  FormulaPtr inner = BuildConnectivity(vocab, half, tp, tq, edge);
  return Formula::Exists(
      z, Formula::Forall(
             p, Formula::Forall(
                    q, Formula::Implies(std::move(guard), std::move(inner)))));
}

FormulaPtr BuildAlpha(Vocabulary* vocab, PredId pred, PredId ne,
                      const std::vector<VarId>& xs) {
  const int k = vocab->PredicateArity(pred);
  assert(static_cast<int>(xs.size()) == k &&
         "free-variable count must equal the predicate arity");
  // Fresh universally quantified tuple y.
  std::vector<VarId> ys;
  TermList y_terms;
  for (int i = 0; i < k; ++i) {
    VarId y = vocab->FreshVariable("y" + std::to_string(i + 1));
    ys.push_back(y);
    y_terms.push_back(Term::Variable(y));
  }

  // γ_{x,y}: connectivity in the graph with edges {xi, yi}. Components of
  // G_{x,y} have at most 2k vertices, so paths of length 2k suffice.
  EdgeFormulaFn edge = [&xs, &ys](Term s, Term t) -> FormulaPtr {
    std::vector<FormulaPtr> cases;
    for (size_t i = 0; i < xs.size(); ++i) {
      Term xi = Term::Variable(xs[i]);
      Term yi = Term::Variable(ys[i]);
      cases.push_back(
          Formula::And(Formula::Equals(s, xi), Formula::Equals(t, yi)));
      cases.push_back(
          Formula::And(Formula::Equals(s, yi), Formula::Equals(t, xi)));
    }
    return Formula::Or(std::move(cases));
  };

  VarId u = vocab->FreshVariable("u");
  VarId v = vocab->FreshVariable("v");
  FormulaPtr gamma = (k == 0)
                         ? Formula::False()  // empty graph: nothing connects
                         : BuildConnectivity(vocab, 2 * k, Term::Variable(u),
                                             Term::Variable(v), edge);
  FormulaPtr witness = Formula::Exists(
      u, Formula::Exists(
             v, Formula::And(
                    Formula::Atom(ne, {Term::Variable(u), Term::Variable(v)}),
                    std::move(gamma))));
  return Formula::Forall(
      ys, Formula::Implies(Formula::Atom(pred, y_terms), std::move(witness)));
}

namespace {

/// Tiny union-find over the (at most 2k) values of a disagreement probe.
class UnionFind {
 public:
  int Find(Value v) {
    for (size_t i = 0; i < items_.size(); ++i) {
      if (items_[i] == v) return Root(static_cast<int>(i));
    }
    items_.push_back(v);
    parent_.push_back(static_cast<int>(items_.size()) - 1);
    return static_cast<int>(items_.size()) - 1;
  }

  void Union(Value a, Value b) {
    int ra = Find(a);
    int rb = Find(b);
    if (ra != rb) parent_[ra] = rb;
  }

  bool Connected(Value a, Value b) { return Find(a) == Find(b); }

  const std::vector<Value>& items() const { return items_; }

 private:
  int Root(int i) {
    while (parent_[i] != i) {
      parent_[i] = parent_[parent_[i]];
      i = parent_[i];
    }
    return i;
  }

  std::vector<Value> items_;
  std::vector<int> parent_;
};

}  // namespace

bool Disagree(const CwDatabase& lb, const Tuple& c, const Tuple& d) {
  assert(c.size() == d.size());
  if (c.empty()) return false;  // merging nothing is always satisfiable
  UnionFind uf;
  for (size_t i = 0; i < c.size(); ++i) uf.Union(c[i], d[i]);
  const std::vector<Value>& vals = uf.items();
  for (size_t i = 0; i < vals.size(); ++i) {
    for (size_t j = i + 1; j < vals.size(); ++j) {
      if (lb.AreDistinct(vals[i], vals[j]) && uf.Connected(vals[i], vals[j])) {
        return true;
      }
    }
  }
  return false;
}

bool AlphaHolds(const CwDatabase& lb, PredId source, const Tuple& args) {
  for (const Tuple& d : lb.facts(source).tuples()) {
    if (!Disagree(lb, args, d)) return false;
  }
  return true;
}

bool ApproxProvider::Contains(PredId pred, const Tuple& args) const {
  if (pred == ne_) {
    assert(args.size() == 2);
    return lb_->AreDistinct(args[0], args[1]);
  }
  auto it = alphas_.find(pred);
  assert(it != alphas_.end());
  return AlphaHolds(*lb_, it->second, args);
}

}  // namespace lqdb
