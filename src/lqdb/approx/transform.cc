#include "lqdb/approx/transform.h"

#include <string>

#include "lqdb/approx/alpha.h"
#include "lqdb/logic/nnf.h"
#include "lqdb/logic/substitute.h"

namespace lqdb {

namespace {

bool MentionsPredicate(const FormulaPtr& f, PredId pred) {
  if (f->kind() == FormulaKind::kAtom && f->pred() == pred) return true;
  for (const auto& c : f->children()) {
    if (MentionsPredicate(c, pred)) return true;
  }
  return false;
}

}  // namespace

Result<TransformedQuery> QueryTransformer::Transform(
    const Query& query, const TransformOptions& options) {
  if (MentionsPredicate(query.body(), ne_)) {
    return Status::InvalidArgument(
        "queries must be over L; 'NE' belongs to the extended language L'");
  }
  FormulaPtr nnf = ToNnf(query.body());
  std::map<PredId, PredId> alpha_preds;
  LQDB_ASSIGN_OR_RETURN(FormulaPtr body,
                        Rewrite(nnf, options.alpha_mode, &alpha_preds));
  LQDB_ASSIGN_OR_RETURN(Query transformed,
                        Query::Make(query.head(), std::move(body)));
  return TransformedQuery{std::move(transformed), std::move(alpha_preds)};
}

Result<FormulaPtr> QueryTransformer::Rewrite(
    const FormulaPtr& f, AlphaMode mode,
    std::map<PredId, PredId>* alpha_preds) {
  switch (f->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
    case FormulaKind::kEquals:
    case FormulaKind::kAtom:
      return f;
    case FormulaKind::kNot: {
      const FormulaPtr& inner = f->child();
      if (inner->kind() == FormulaKind::kEquals) {
        // ¬(t1 = t2)  →  NE(t1, t2).
        return Formula::Atom(ne_, inner->terms());
      }
      if (inner->kind() == FormulaKind::kAtom) {
        return RewriteNegatedAtom(inner, mode, alpha_preds);
      }
      return Status::Internal(
          "negation above a non-atom survived NNF conversion");
    }
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      std::vector<FormulaPtr> parts;
      parts.reserve(f->num_children());
      for (const auto& c : f->children()) {
        LQDB_ASSIGN_OR_RETURN(FormulaPtr part, Rewrite(c, mode, alpha_preds));
        parts.push_back(std::move(part));
      }
      return f->kind() == FormulaKind::kAnd ? Formula::And(std::move(parts))
                                            : Formula::Or(std::move(parts));
    }
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      LQDB_ASSIGN_OR_RETURN(FormulaPtr body,
                            Rewrite(f->child(), mode, alpha_preds));
      return f->kind() == FormulaKind::kExists
                 ? Formula::Exists(f->var(), std::move(body))
                 : Formula::Forall(f->var(), std::move(body));
    }
    case FormulaKind::kExistsPred:
    case FormulaKind::kForallPred: {
      LQDB_ASSIGN_OR_RETURN(FormulaPtr body,
                            Rewrite(f->child(), mode, alpha_preds));
      return f->kind() == FormulaKind::kExistsPred
                 ? Formula::ExistsPred(f->pred(), std::move(body))
                 : Formula::ForallPred(f->pred(), std::move(body));
    }
    case FormulaKind::kImplies:
    case FormulaKind::kIff:
      return Status::Internal("implication survived NNF conversion");
  }
  return Status::Internal("unknown formula kind");
}

Result<FormulaPtr> QueryTransformer::RewriteNegatedAtom(
    const FormulaPtr& atom, AlphaMode mode,
    std::map<PredId, PredId>* alpha_preds) {
  const PredId pred = atom->pred();
  if (pred == ne_) {
    return Status::InvalidArgument("query must not mention NE");
  }
  if (mode == AlphaMode::kVirtual) {
    if (vocab_->IsAuxiliary(pred)) {
      return Status::Unimplemented(
          "virtual alpha atoms are only available for stored predicates; "
          "use AlphaMode::kSyntactic for negated quantified predicate "
          "variables like '" +
          vocab_->PredicateName(pred) + "'");
    }
    const std::string alpha_name =
        "__alpha_" + vocab_->PredicateName(pred);
    LQDB_ASSIGN_OR_RETURN(
        PredId alpha, vocab_->AddAuxiliaryPredicate(
                          alpha_name, vocab_->PredicateArity(pred)));
    alpha_preds->emplace(alpha, pred);
    return Formula::Atom(alpha, atom->terms());
  }

  // Syntactic mode: splice in the Lemma 10 formula, instantiated at the
  // atom's argument terms.
  auto it = alpha_cache_.find(pred);
  if (it == alpha_cache_.end()) {
    std::vector<VarId> xs;
    const int arity = vocab_->PredicateArity(pred);
    for (int i = 0; i < arity; ++i) {
      xs.push_back(vocab_->FreshVariable("ax" + std::to_string(i + 1)));
    }
    FormulaPtr alpha = BuildAlpha(vocab_, pred, ne_, xs);
    alpha_args_[pred] = std::move(xs);
    it = alpha_cache_.emplace(pred, std::move(alpha)).first;
  }
  Substitution subst;
  const std::vector<VarId>& xs = alpha_args_[pred];
  for (size_t i = 0; i < xs.size(); ++i) {
    subst.insert_or_assign(xs[i], atom->terms()[i]);
  }
  return Substitute(vocab_, it->second, subst);
}

}  // namespace lqdb
