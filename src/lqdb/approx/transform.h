#ifndef LQDB_APPROX_TRANSFORM_H_
#define LQDB_APPROX_TRANSFORM_H_

#include <map>

#include "lqdb/logic/query.h"
#include "lqdb/logic/vocabulary.h"
#include "lqdb/util/result.h"

namespace lqdb {

/// How negated atoms `¬P(t)` are lowered in the §5 transform.
enum class AlphaMode {
  /// Replace by a virtual atom `α_P(t)` decided in polynomial time by
  /// `ApproxProvider` ("treating the subformulas α_P(x) as if they were
  /// atomic formulas", proof of Theorem 14). Not applicable when `P` is a
  /// quantified predicate variable (its extension lives in the evaluator).
  kVirtual,
  /// Splice in the full O(k log k) first-order formula of Lemma 10. Works
  /// for every predicate, including second-order quantified ones, at the
  /// cost of evaluating a doubly-quantified connectivity formula.
  kSyntactic,
};

struct TransformOptions {
  AlphaMode alpha_mode = AlphaMode::kVirtual;
};

/// The transformed query `Q̂` plus the bookkeeping the evaluator needs.
struct TransformedQuery {
  Query query;
  /// Virtual alpha atoms introduced (alpha predicate → source predicate);
  /// empty in syntactic mode.
  std::map<PredId, PredId> alpha_preds;
};

/// Implements the query conversion of §5: push all negations down to the
/// atomic formulas (NNF), then replace every `¬(t1 = t2)` by `NE(t1, t2)`
/// and every `¬P(t)` by the disagreement formula `α_P(t)`. Positive
/// structure, quantifiers (first- and second-order) and the head are left
/// untouched; if `Q` is first-order, so is `Q̂` (Lemma 10).
class QueryTransformer {
 public:
  /// `vocab` must be the vocabulary `L'` containing the `NE` predicate
  /// (see `MakePh2`); new alpha predicates / variables are interned into it.
  QueryTransformer(Vocabulary* vocab, PredId ne) : vocab_(vocab), ne_(ne) {}

  /// Transforms `query`; fails if the query already mentions `NE` (queries
  /// are formulas of `L`, not `L'`).
  Result<TransformedQuery> Transform(const Query& query,
                                     const TransformOptions& options = {});

 private:
  Result<FormulaPtr> Rewrite(const FormulaPtr& f, AlphaMode mode,
                             std::map<PredId, PredId>* alpha_preds);
  Result<FormulaPtr> RewriteNegatedAtom(const FormulaPtr& atom,
                                        AlphaMode mode,
                                        std::map<PredId, PredId>* alpha_preds);

  Vocabulary* vocab_;
  PredId ne_;
  /// Cache of syntactic α_P bodies keyed by predicate, with canonical free
  /// variables `alpha_args_[pred]` (substituted per occurrence).
  std::map<PredId, FormulaPtr> alpha_cache_;
  std::map<PredId, std::vector<VarId>> alpha_args_;
};

}  // namespace lqdb

#endif  // LQDB_APPROX_TRANSFORM_H_
