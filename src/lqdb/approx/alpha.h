#ifndef LQDB_APPROX_ALPHA_H_
#define LQDB_APPROX_ALPHA_H_

#include <functional>
#include <map>
#include <vector>

#include "lqdb/cwdb/cw_database.h"
#include "lqdb/eval/evaluator.h"
#include "lqdb/logic/formula.h"
#include "lqdb/logic/vocabulary.h"

namespace lqdb {

/// Produces the formula asserting that terms `s`, `t` are related by the
/// (symmetric) edge relation being abstracted — used to splice the graph
/// `G_{x,y}` of Lemma 10 into the connectivity skeleton.
using EdgeFormulaFn = std::function<FormulaPtr(Term s, Term t)>;

/// Builds a first-order formula expressing "`u` and `v` are connected by a
/// path of length at most `m`" with a *single* occurrence of the edge
/// formula — the repeated-squaring construction behind the Fact cited in
/// Lemma 10 ([St77]); the AST has O(log m) nodes:
///
///   conn_1(u, v)  = u = v ∨ edge(u, v)
///   conn_2t(u, v) = ∃z ∀p ∀q (((p=u ∧ q=z) ∨ (p=z ∧ q=v)) → conn_t(p, q))
///
/// Fresh quantified variables are interned into `vocab` at each level.
FormulaPtr BuildConnectivity(Vocabulary* vocab, int m, Term u, Term v,
                             const EdgeFormulaFn& edge);

/// Builds the Lemma 10 disagreement formula `α_P(x1, ..., xk)`:
///
///   α_P(x) = ∀y ( P(y) → ∃u ∃v (NE(u, v) ∧ γ_{x,y}(u, v)) )
///
/// where `γ_{x,y}(u, v)` says `u`, `v` are connected in the graph `G_{x,y}`
/// with edges `{xi, yi}`. `I` satisfies `α_P(c)` iff `c` *disagrees* with
/// every `d ∈ I(P)` — i.e. `c` is provably not in `P`. `pred` may also be a
/// second-order quantified predicate variable (Lemma 10's "if P is not in
/// L" case); the evaluator then resolves the inner `P(y)` atom against the
/// current second-order binding.
///
/// The returned formula's free variables are exactly `xs` (size = arity of
/// `pred`) and its size is O(k log k).
FormulaPtr BuildAlpha(Vocabulary* vocab, PredId pred, PredId ne,
                      const std::vector<VarId>& xs);

/// Semantic form of Lemma 10: `c` and `d` disagree with respect to the
/// uniqueness axioms of `lb` iff `Unique(T) ∧ c = d` is unsatisfiable —
/// decided by merging `ci ~ di` (union-find over `G_{c,d}`) and looking for
/// a uniqueness pair inside one equivalence class. O(k²) per call.
bool Disagree(const CwDatabase& lb, const Tuple& c, const Tuple& d);

/// Decides `α_P(args)` semantically: `args` disagrees with every stored
/// fact of `source` — the polynomial-time "treat α_P as if it were atomic"
/// evaluation from the proof of Theorem 14.
bool AlphaHolds(const CwDatabase& lb, PredId source, const Tuple& args);

/// Virtual-relation provider backing the approximate evaluator: answers
///   - `NE(a, b)` via the stored uniqueness axioms (virtual NE, §5 closing
///     remark), and
///   - `α_P(args)` via `AlphaHolds` for each registered alpha predicate.
///
/// Precondition: attached to databases whose domain values are constant ids
/// of `lb` (true for Ph₂).
class ApproxProvider : public VirtualRelationProvider {
 public:
  ApproxProvider(const CwDatabase* lb, PredId ne) : lb_(lb), ne_(ne) {}

  /// Registers `alpha_pred` as the disagreement predicate of `source`.
  void RegisterAlpha(PredId alpha_pred, PredId source) {
    alphas_[alpha_pred] = source;
  }

  bool Provides(PredId pred) const override {
    return pred == ne_ || alphas_.count(pred) > 0;
  }

  bool Contains(PredId pred, const Tuple& args) const override;

  const std::map<PredId, PredId>& alphas() const { return alphas_; }

 private:
  const CwDatabase* lb_;
  PredId ne_;
  std::map<PredId, PredId> alphas_;  // alpha pred -> source pred
};

}  // namespace lqdb

#endif  // LQDB_APPROX_ALPHA_H_
