#ifndef LQDB_APPROX_APPROX_H_
#define LQDB_APPROX_APPROX_H_

#include <memory>

#include "lqdb/approx/alpha.h"
#include "lqdb/approx/transform.h"
#include "lqdb/cwdb/cw_database.h"
#include "lqdb/cwdb/ph.h"
#include "lqdb/eval/evaluator.h"
#include "lqdb/logic/query.h"
#include "lqdb/util/result.h"

namespace lqdb {

/// Which engine evaluates the transformed query `Q̂` over `Ph₂(LB)`.
enum class ApproxEngine {
  /// The Tarskian model-checking evaluator with virtual NE / α predicates.
  kEvaluator,
  /// Compile `Q̂` to relational algebra and run it on the RA executor, with
  /// `NE` and the α_P extensions materialized as stored relations — the
  /// "implementation on top of a standard relational system" of §5. Only
  /// available in `AlphaMode::kVirtual` (the compiler needs atoms) and for
  /// first-order queries.
  kRelationalAlgebra,
};

struct ApproxOptions {
  AlphaMode alpha_mode = AlphaMode::kVirtual;
  ApproxEngine engine = ApproxEngine::kEvaluator;
  /// Materialize the quadratic `NE` relation inside `Ph₂` instead of
  /// answering it from the stored axioms (§5 closing remark compares the
  /// two; see bench E6). The RA engine always materializes into its scratch
  /// database regardless of this flag.
  bool materialize_ne = false;
  EvalOptions eval;
};

/// Reiter-style *sound* approximate query evaluation (§5 of the paper):
///
///   A(Q, LB) = Q̂(Ph₂(LB))
///
/// Properties (each with a matching test / bench):
///   - sound: A(Q, LB) ⊆ Q(LB)                        (Theorem 11)
///   - complete for fully specified databases          (Theorem 12)
///   - complete for positive queries                   (Theorem 13)
///   - same complexity as physical query evaluation    (Theorem 14)
class ApproxEvaluator {
 public:
  /// Builds `Ph₂(LB)` (extending the vocabulary with `NE`). `lb` is
  /// borrowed and must outlive the evaluator; it must not be moved while
  /// the evaluator is alive.
  static Result<std::unique_ptr<ApproxEvaluator>> Make(
      CwDatabase* lb, ApproxOptions options = {});

  /// The approximate answer `A(Q, LB)` — a relation over the constants `C`.
  Result<Relation> Answer(const Query& query);

  /// Membership of a single tuple in the approximate answer.
  Result<bool> Contains(const Query& query, const Tuple& candidate);

  /// The transform `Q → Q̂` used by this evaluator (for inspection and for
  /// the engine-ablation bench).
  Result<TransformedQuery> Transform(const Query& query);

  const Ph2& ph2() const { return ph2_; }
  const ApproxOptions& options() const { return options_; }

 private:
  ApproxEvaluator(CwDatabase* lb, Ph2 ph2, ApproxOptions options)
      : lb_(lb),
        ph2_(std::move(ph2)),
        options_(options),
        provider_(lb, ph2_.ne),
        transformer_(lb->mutable_vocab(), ph2_.ne) {}

  Result<Relation> AnswerWithEvaluator(const TransformedQuery& tq);
  Result<Relation> AnswerWithRa(const TransformedQuery& tq);

  CwDatabase* lb_;
  Ph2 ph2_;
  ApproxOptions options_;
  ApproxProvider provider_;
  QueryTransformer transformer_;
};

}  // namespace lqdb

#endif  // LQDB_APPROX_APPROX_H_
