#ifndef LQDB_UTIL_TABLE_H_
#define LQDB_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace lqdb {

/// Renders rows of strings as an aligned ASCII table. Benchmarks use this to
/// print paper-style result tables next to the google-benchmark output.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Returns the fully formatted table, including a header separator.
  std::string ToString() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant decimal places.
std::string FormatDouble(double v, int digits = 3);

}  // namespace lqdb

#endif  // LQDB_UTIL_TABLE_H_
