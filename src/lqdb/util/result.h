#ifndef LQDB_UTIL_RESULT_H_
#define LQDB_UTIL_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "lqdb/util/status.h"

namespace lqdb {

/// Either a value of type `T` or an error `Status` — the Arrow `Result<T>`
/// idiom. Accessing the value of an errored result is a programming error
/// (checked by assertion in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(repr_).ok() &&
           "Result must not be constructed from an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status; OK if this result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` if this result is an error.
  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> repr_;
};

/// Evaluates `expr` (a Result<T>), propagating errors; otherwise assigns the
/// unwrapped value to `lhs` (which may be a declaration).
#define LQDB_ASSIGN_OR_RETURN(lhs, expr)                              \
  LQDB_ASSIGN_OR_RETURN_IMPL_(                                        \
      LQDB_RESULT_CONCAT_(_lqdb_result_, __LINE__), lhs, expr)

#define LQDB_RESULT_CONCAT_INNER_(a, b) a##b
#define LQDB_RESULT_CONCAT_(a, b) LQDB_RESULT_CONCAT_INNER_(a, b)
#define LQDB_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

}  // namespace lqdb

#endif  // LQDB_UTIL_RESULT_H_
