#ifndef LQDB_UTIL_RNG_H_
#define LQDB_UTIL_RNG_H_

#include <cstdint>

namespace lqdb {

/// Small deterministic PRNG (xorshift128+) used by tests, workload
/// generators and benchmarks so every run is reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 seeding to spread low-entropy seeds.
    s_[0] = SplitMix(seed);
    s_[1] = SplitMix(s_[0]);
  }

  uint64_t Next() {
    uint64_t x = s_[0];
    const uint64_t y = s_[1];
    s_[0] = y;
    x ^= x << 23;
    s_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s_[1] + y;
  }

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with probability `p`.
  bool Chance(double p) { return NextDouble() < p; }

 private:
  static uint64_t SplitMix(uint64_t z) {
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  uint64_t s_[2];
};

}  // namespace lqdb

#endif  // LQDB_UTIL_RNG_H_
