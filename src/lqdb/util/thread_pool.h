#ifndef LQDB_UTIL_THREAD_POOL_H_
#define LQDB_UTIL_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "lqdb/util/annotations.h"

namespace lqdb {

/// A small fixed-size worker pool. Tasks are plain `void()` closures;
/// `Wait()` blocks until every submitted task has finished, so one pool can
/// be reused across many fan-out rounds (the parallel exact engine keeps a
/// pool alive across queries instead of spawning threads per call).
///
/// Exceptions must not escape tasks (the library is Status-based); a task
/// that throws terminates the process.
class ThreadPool {
 public:
  /// Starts `num_threads` workers; values < 1 are clamped to 1.
  explicit ThreadPool(int num_threads);

  /// Joins all workers. Pending tasks are drained first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker.
  void Submit(std::function<void()> task);

  /// Enqueues a value-returning task and exposes its result as a future —
  /// the task-submission face of the pool (the service layer schedules
  /// per-query executions through it), alongside the data-parallel
  /// `FanOut`. The future's `get()` rethrows nothing: tasks are expected to
  /// return `Status`/`Result` values rather than throw.
  template <typename Fn>
  auto Async(Fn&& fn) -> std::future<decltype(fn())> {
    using R = decltype(fn());
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    Submit([task] { (*task)(); });
    return future;
  }

  /// Blocks until every task submitted so far has completed.
  void Wait();

  /// Submits `fn(worker_index)` once per worker and blocks until every
  /// instance (and any previously submitted task) finishes — the
  /// fan-out/join step of data-parallel callers such as the parallel exact
  /// engine's range scheduler. The callback receives a dense index in
  /// `[0, num_threads())`; instances may land on any worker.
  void FanOut(const std::function<void(int)>& fn);

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// `std::thread::hardware_concurrency()` with a floor of 1 (the standard
  /// allows it to return 0 when unknown).
  static int DefaultThreads();

 private:
  void WorkerLoop();

  Mutex mu_;
  CondVar work_available_;
  CondVar all_done_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  /// Queued + currently running tasks.
  size_t in_flight_ GUARDED_BY(mu_) = 0;
  bool shutting_down_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace lqdb

#endif  // LQDB_UTIL_THREAD_POOL_H_
