#ifndef LQDB_UTIL_INTERNER_H_
#define LQDB_UTIL_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace lqdb {

/// Bidirectional map between strings and dense integer ids.
///
/// Used for constant and predicate names: all hot-path code manipulates
/// `uint32_t` ids; names are only touched when parsing or printing.
class Interner {
 public:
  /// Returns the id of `name`, interning it if it is new. Ids are dense and
  /// assigned in first-seen order starting at 0.
  uint32_t Intern(std::string_view name);

  /// Returns the id of `name`, or `kNotFound` if it was never interned.
  static constexpr uint32_t kNotFound = UINT32_MAX;
  uint32_t Find(std::string_view name) const;

  /// Returns the name for a valid id. Precondition: `id < size()`.
  const std::string& NameOf(uint32_t id) const;

  size_t size() const { return names_.size(); }
  bool empty() const { return names_.empty(); }

 private:
  std::unordered_map<std::string, uint32_t> ids_;
  std::vector<std::string> names_;
};

}  // namespace lqdb

#endif  // LQDB_UTIL_INTERNER_H_
