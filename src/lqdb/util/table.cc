#include "lqdb/util/table.h"

#include <algorithm>
#include <cstdio>

namespace lqdb {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row, std::string* out) {
    for (size_t i = 0; i < row.size(); ++i) {
      *out += "| ";
      *out += row[i];
      out->append(widths[i] - row[i].size() + 1, ' ');
    }
    *out += "|\n";
  };
  std::string out;
  emit_row(header_, &out);
  for (size_t i = 0; i < header_.size(); ++i) {
    out += "|";
    out.append(widths[i] + 2, '-');
  }
  out += "|\n";
  for (const auto& row : rows_) emit_row(row, &out);
  return out;
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

}  // namespace lqdb
