#ifndef LQDB_UTIL_PARSE_H_
#define LQDB_UTIL_PARSE_H_

#include <climits>
#include <string_view>

namespace lqdb {

/// Strict nonnegative-decimal parse: every character of `token` must be a
/// digit, so "4x" is rejected instead of silently parsing as 4 the way
/// std::stoi's prefix parsing would (a past shell regression — see
/// tools/lint_invariants.py, rule prefix-parse), and overflow returns
/// false instead of throwing the way std::stoi does (a past parser
/// regression on absurd arities). Returns false on an empty token, a
/// non-digit, or uint64 overflow.
inline bool ParseStrictUint(std::string_view token, unsigned long long* out) {
  if (token.empty()) return false;
  unsigned long long value = 0;
  for (char ch : token) {
    if (ch < '0' || ch > '9') return false;
    const unsigned digit = static_cast<unsigned>(ch - '0');
    if (value > (ULLONG_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

/// `ParseStrictUint` for values that must fit a nonnegative `int`
/// (predicate arities, small counts). Returns false when the token is not
/// a pure decimal or exceeds `max` (default `INT_MAX`).
inline bool ParseStrictInt(std::string_view token, int* out,
                           int max = INT_MAX) {
  unsigned long long value = 0;
  if (!ParseStrictUint(token, &value)) return false;
  if (value > static_cast<unsigned long long>(max)) return false;
  *out = static_cast<int>(value);
  return true;
}

}  // namespace lqdb

#endif  // LQDB_UTIL_PARSE_H_
