#ifndef LQDB_UTIL_ANNOTATIONS_H_
#define LQDB_UTIL_ANNOTATIONS_H_

/// Clang Thread Safety Analysis support: attribute macros plus annotated
/// wrappers around the std synchronization primitives.
///
/// The std types themselves are invisible to the analysis — Clang can only
/// reason about lock/unlock operations carrying `acquire_capability` /
/// `release_capability` attributes, which `std::mutex` and the std lock
/// guards do not have. So the concurrent core holds `lqdb::Mutex` /
/// `lqdb::SharedMutex` members and takes `lqdb::MutexLock` /
/// `lqdb::ReaderLock` / `lqdb::WriterLock` scoped guards instead; each is a
/// zero-cost shim over the std type with the attributes attached. Guarded
/// members declare their lock contract with `GUARDED_BY(mu_)`, and member
/// functions that expect the caller to hold a lock say `REQUIRES(mu_)`.
///
/// Everything compiles to nothing on non-Clang compilers (gcc, MSVC); on
/// Clang, `-Wthread-safety` turns a missed lock into a compile error (CI
/// builds the thread-safety job with `-Werror=thread-safety`).
///
/// This header is the one place raw std primitives may appear; the
/// invariant lint (tools/lint_invariants.py, rule raw-mutex) bans them
/// elsewhere under src/lqdb.

#include <condition_variable>  // lint:allow(raw-mutex)
#include <mutex>               // lint:allow(raw-mutex)
#include <shared_mutex>        // lint:allow(raw-mutex)

#if defined(__clang__) && (!defined(SWIG))
#define LQDB_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define LQDB_THREAD_ANNOTATION(x)  // no-op
#endif

#define CAPABILITY(x) LQDB_THREAD_ANNOTATION(capability(x))

#define SCOPED_CAPABILITY LQDB_THREAD_ANNOTATION(scoped_lockable)

#define GUARDED_BY(x) LQDB_THREAD_ANNOTATION(guarded_by(x))

#define PT_GUARDED_BY(x) LQDB_THREAD_ANNOTATION(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
  LQDB_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) LQDB_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
  LQDB_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  LQDB_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) LQDB_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  LQDB_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) LQDB_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  LQDB_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

#define RELEASE_GENERIC(...) \
  LQDB_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  LQDB_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define EXCLUDES(...) LQDB_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define RETURN_CAPABILITY(x) LQDB_THREAD_ANNOTATION(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  LQDB_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace lqdb {

/// An exclusive mutex the analysis can see. Same cost and semantics as the
/// wrapped `std::mutex`.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped primitive, for `CondVar::Wait` only. Touching it directly
  /// bypasses the analysis.
  std::mutex& native() { return mu_; }  // lint:allow(raw-mutex)

 private:
  std::mutex mu_;  // lint:allow(raw-mutex)
};

/// A reader/writer mutex the analysis can see (wraps `std::shared_mutex`).
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;  // lint:allow(raw-mutex)
};

/// Scoped exclusive lock over `Mutex` (the annotated `std::unique_lock`).
/// Supports mid-scope `Unlock()`/`Lock()` for code that drops the lock
/// around a long computation (the parallel engine's chunk walk), and hands
/// its native handle to `CondVar::Wait`.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu), lock_(mu.native()) {}
  ~MutexLock() RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void Unlock() RELEASE() { lock_.unlock(); }
  void Lock() ACQUIRE() { lock_.lock(); }

 private:
  friend class CondVar;
  Mutex& mu_;
  std::unique_lock<std::mutex> lock_;  // lint:allow(raw-mutex)
};

/// Scoped shared (reader) lock over `SharedMutex`.
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderLock() RELEASE() { mu_.UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Scoped exclusive (writer) lock over `SharedMutex`.
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~WriterLock() RELEASE() { mu_.Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable bound to `Mutex`/`MutexLock`. `Wait` takes both the
/// mutex (for the REQUIRES contract the analysis checks) and the scoped
/// lock (for the actual handle); callers loop on their predicate
/// explicitly — a predicate lambda would read guarded members from a scope
/// the analysis cannot connect to the held lock:
///
///     MutexLock lock(mu_);
///     while (queue_.empty() && !shutting_down_) cv_.Wait(mu_, lock);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu, MutexLock& lock) REQUIRES(mu) {
    (void)mu;
    cv_.wait(lock.lock_);
  }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;  // lint:allow(raw-mutex)
};

}  // namespace lqdb

#endif  // LQDB_UTIL_ANNOTATIONS_H_
