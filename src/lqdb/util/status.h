#ifndef LQDB_UTIL_STATUS_H_
#define LQDB_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace lqdb {

/// Machine-readable category of a failure, modeled after the Arrow/RocksDB
/// status idiom: library entry points that can fail return `Status` or
/// `Result<T>` instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Caller-supplied input is malformed.
  kNotFound,          ///< Named symbol/relation does not exist.
  kAlreadyExists,     ///< Redefinition of an existing symbol.
  kFailedPrecondition,///< Operation not valid in the current state.
  kUnimplemented,     ///< Feature intentionally out of scope (e.g. unsafe query for RA).
  kInternal,          ///< Invariant violation inside the library (a bug).
  kResourceExhausted, ///< Configured search/enumeration limit exceeded.
  kCancelled,         ///< Caller withdrew the request before it ran.
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// A cheap value type describing the outcome of an operation.
///
/// An OK status carries no message. Error statuses carry a code and a
/// message intended for humans. `Status` is copyable and movable; moved-from
/// statuses are OK.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates a non-OK status to the caller.
#define LQDB_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::lqdb::Status _lqdb_status = (expr);           \
    if (!_lqdb_status.ok()) return _lqdb_status;    \
  } while (false)

}  // namespace lqdb

#endif  // LQDB_UTIL_STATUS_H_
