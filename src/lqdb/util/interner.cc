#include "lqdb/util/interner.h"

#include <cassert>

namespace lqdb {

uint32_t Interner::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

uint32_t Interner::Find(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  return it == ids_.end() ? kNotFound : it->second;
}

const std::string& Interner::NameOf(uint32_t id) const {
  assert(id < names_.size());
  return names_[id];
}

}  // namespace lqdb
