#include "lqdb/util/thread_pool.h"

#include <algorithm>

namespace lqdb {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutting_down_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  while (in_flight_ != 0) all_done_.Wait(mu_, lock);
}

void ThreadPool::FanOut(const std::function<void(int)>& fn) {
  const int n = num_threads();
  for (int w = 0; w < n; ++w) {
    Submit([&fn, w] { fn(w); });
  }
  Wait();
}

int ThreadPool::DefaultThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutting_down_ && queue_.empty()) {
        work_available_.Wait(mu_, lock);
      }
      if (queue_.empty()) return;  // shutting down with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      MutexLock lock(mu_);
      if (--in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

}  // namespace lqdb
