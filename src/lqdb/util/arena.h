#ifndef LQDB_UTIL_ARENA_H_
#define LQDB_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

namespace lqdb {

/// A block bump allocator for per-query scratch: allocations are pointer
/// bumps into a chain of fixed-size blocks, and `Reset()` recycles the
/// whole chain at once instead of freeing object by object. The service
/// layer gives every session one arena that is reset between queries — the
/// deeb allocation model (a `Mem_Arena` per query, cleared on close) — so a
/// long-lived session's per-query garbage never accumulates and the steady
/// state allocates no new memory at all.
///
/// Not thread-safe; each session owns its arena and serializes its own
/// executions.
class MemArena {
 public:
  /// `block_bytes` is the size of each chained block; oversized requests
  /// get a dedicated block of exactly their size.
  explicit MemArena(size_t block_bytes = 64 * 1024)
      : block_bytes_(block_bytes == 0 ? 1 : block_bytes) {}

  MemArena(const MemArena&) = delete;
  MemArena& operator=(const MemArena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (a power of two). Zero
  /// byte requests return a valid non-null pointer.
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t)) {
    uintptr_t p = (cursor_ + (align - 1)) & ~(uintptr_t{align} - 1);
    if (p + bytes > limit_ || cursor_ == 0) {
      NewBlock(bytes + align);
      p = (cursor_ + (align - 1)) & ~(uintptr_t{align} - 1);
    }
    cursor_ = p + bytes;
    bytes_allocated_ += bytes;
    return reinterpret_cast<void*>(p);
  }

  /// Uninitialized storage for `n` objects of trivially destructible `T`
  /// (the arena never runs destructors).
  template <typename T>
  T* NewArray(size_t n) {
    static_assert(std::is_trivially_destructible<T>::value,
                  "MemArena never runs destructors");
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Copies `s` (NUL-terminated) into the arena.
  const char* CopyString(const char* s, size_t len) {
    char* out = NewArray<char>(len + 1);
    std::memcpy(out, s, len);
    out[len] = '\0';
    return out;
  }

  /// Recycles every allocation: keeps the first (largest-lived) block for
  /// reuse, frees the rest. After `Reset` the arena is as cheap as freshly
  /// constructed but its first block's capacity is warm.
  void Reset() {
    if (blocks_.size() > 1) blocks_.resize(1);
    if (!blocks_.empty()) {
      cursor_ = reinterpret_cast<uintptr_t>(blocks_.front().data.get());
      limit_ = cursor_ + blocks_.front().size;
    } else {
      cursor_ = 0;
      limit_ = 0;
    }
    bytes_allocated_ = 0;
  }

  /// Bytes handed out since construction or the last `Reset` (excludes
  /// alignment padding).
  size_t bytes_allocated() const { return bytes_allocated_; }

  /// Blocks currently owned (a steady-state per-query workload stays at 1).
  size_t num_blocks() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size;
  };

  void NewBlock(size_t min_bytes) {
    const size_t size = min_bytes > block_bytes_ ? min_bytes : block_bytes_;
    blocks_.push_back(Block{std::unique_ptr<char[]>(new char[size]), size});
    cursor_ = reinterpret_cast<uintptr_t>(blocks_.back().data.get());
    limit_ = cursor_ + size;
  }

  size_t block_bytes_;
  std::vector<Block> blocks_;
  uintptr_t cursor_ = 0;
  uintptr_t limit_ = 0;
  size_t bytes_allocated_ = 0;
};

}  // namespace lqdb

#endif  // LQDB_UTIL_ARENA_H_
