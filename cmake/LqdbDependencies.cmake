# Third-party test/bench dependencies for lqdb.
#
# Prefer the system-installed packages (the CI image and dev container bake
# them in); fall back to FetchContent for a from-scratch checkout with
# network access. Neither dependency is needed by the lqdb library itself.

include(FetchContent)

function(lqdb_provide_googletest)
  find_package(GTest QUIET)
  if(GTest_FOUND)
    return()
  endif()
  message(STATUS "System GoogleTest not found; fetching with FetchContent")
  FetchContent_Declare(
    googletest
    URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
    URL_HASH SHA256=8ad598c73ad796e0d8280b082cebd82a630d73e73cd3c70057938a6501bba5d7)
  set(gtest_force_shared_crt ON CACHE BOOL "" FORCE)
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  FetchContent_MakeAvailable(googletest)
  if(NOT TARGET GTest::gtest_main)
    add_library(GTest::gtest_main ALIAS gtest_main)
  endif()
endfunction()

function(lqdb_provide_benchmark)
  find_package(benchmark QUIET)
  if(benchmark_FOUND)
    return()
  endif()
  message(STATUS "System google-benchmark not found; fetching with FetchContent")
  set(BENCHMARK_ENABLE_TESTING OFF CACHE BOOL "" FORCE)
  set(BENCHMARK_ENABLE_INSTALL OFF CACHE BOOL "" FORCE)
  FetchContent_Declare(
    googlebenchmark
    URL https://github.com/google/benchmark/archive/refs/tags/v1.8.3.tar.gz
    URL_HASH SHA256=6bc180a57d23d4d9515519f92b0c83d61b05b5bab188961f36ac7b06b0d9e9ce)
  FetchContent_MakeAvailable(googlebenchmark)
endfunction()
