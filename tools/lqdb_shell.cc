// lqdb_shell — an interactive front end for CW logical databases.
//
// Loads a database in the lqdb text format (see src/lqdb/io/text_format.h)
// and answers queries as a thin client of the query service
// (src/lqdb/service/service.h): every query command prepares a statement
// through the service's shared cache and executes it asynchronously on a
// session, so the shell exercises the same code path a concurrent client
// would:
//
//     $ lqdb_shell mydb.lqdb
//     lqdb> exact (x) . !MURDERER(x)
//     {(Victoria)}
//     lqdb> prepare (x) . MURDERER(x)
//     prepared #1 (compiled)
//     lqdb> execute
//     {(Jack)}
//
// Run `help` inside the shell for the command list. A script path may be
// passed as argv[1]; with `--batch` the shell exits at end of input
// instead of switching to stdin.
#include <climits>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "lqdb/approx/approx.h"
#include "lqdb/cwdb/cw_database.h"
#include "lqdb/cwdb/ph.h"
#include "lqdb/cwdb/theory.h"
#include "lqdb/engine/engine.h"
#include "lqdb/eval/answer.h"
#include "lqdb/eval/evaluator.h"
#include "lqdb/io/text_format.h"
#include "lqdb/logic/parser.h"
#include "lqdb/logic/printer.h"
#include "lqdb/ra/compiler.h"
#include "lqdb/ra/semijoin.h"
#include "lqdb/ra/sql.h"
#include "lqdb/ra/validate.h"
#include "lqdb/service/service.h"
#include "lqdb/util/parse.h"

namespace lqdb {
namespace {

// `set` arguments parse via the shared strict-decimal helper
// (lqdb/util/parse.h): "4x" and overflowing values are rejected rather
// than prefix-parsed the way std::stoi would.

unsigned long long Ull(uint64_t v) {
  return static_cast<unsigned long long>(v);
}

constexpr const char* kHelp = R"(commands:
  load FILE              load a database (lqdb text format)
  save FILE              write the database back to disk
  show                   print constants, facts and axiom counts
  theory                 print the implied first-order theory T
  fact P(c1, c2, ...)    add an atomic fact (rebuilds the service)
  assert P(c1, c2, ...)  add a fact through the live service: prepared
                         statements survive, and only cached results that
                         read P (or, for a new constant, any result) drop
  retract P(c1, c2, ...) remove a stored fact through the live service
  known NAME...          declare constants with known identity
  unknown NAME...        declare null values
  distinct A B           add the uniqueness axiom not(A = B)
  exact QUERY            certain answers (Theorem 1; may be exponential)
  possible QUERY         tuples holding in at least one model
  approx QUERY           sound polynomial approximation (Section 5)
  physical QUERY         naive evaluation over Ph1 (ignores nulls!)
  query QUERY            evaluate with the currently selected session
  prepare QUERY          parse+bind+compile once; prints a statement handle
  execute [N]            run a prepared statement (default: last prepared)
  session                list open sessions (* marks the selected one)
  session new [ENGINE]   open and select a session (default: current engine)
  session use N          route query/prepare/execute through session N
  stats                  service and per-session counters (incl. kernel
                         memo and result-cache hit/miss/invalidation)
  engines                list registered engines and their capabilities
  set engine NAME        select the engine used by `query`
  set threads N          worker threads for parallel engines (0 = hardware)
  set max_mappings N     Theorem 1 enumeration budget per query
  set join_cap N         DP join-order cap (0 = always greedy)
  set memo on|off        kernel-verdict memoization and the cross-query
                         result cache (on by default; identical answers)
  plan QUERY             show Q^, its relational-algebra plan and SQL
  explain QUERY          how the compiled path evaluates QUERY: its plan
                         annotated with per-node cardinality estimates,
                         the join-order decisions, plan size and SQL (or
                         the fallback it takes)
  help                   this text
  quit                   leave
query syntax:  (x, y) . exists z. R(x, z) & !S(z, y)   or a sentence)";

class Shell {
 public:
  Shell() : lb_(std::make_unique<CwDatabase>()) {
    options_.threads = 1;  // sequential by default; `set threads` overrides
  }

  /// Returns false when the shell should exit.
  bool Handle(const std::string& line) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty() || cmd[0] == '#') return true;
    std::string rest;
    std::getline(in, rest);
    while (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);

    if (cmd == "quit" || cmd == "exit") return false;
    if (cmd == "help") {
      std::puts(kHelp);
    } else if (cmd == "load") {
      auto loaded = LoadCwDatabase(rest);
      if (!loaded.ok()) {
        Report(loaded.status());
      } else {
        ResetService();
        lb_ = std::move(loaded).value();
        std::printf("loaded %zu constants, %zu facts, %zu explicit axioms\n",
                    lb_->num_constants(), lb_->NumFacts(),
                    lb_->explicit_distinct().size());
      }
    } else if (cmd == "save") {
      Report(SaveCwDatabase(*lb_, rest));
    } else if (cmd == "show") {
      Show();
    } else if (cmd == "theory") {
      Theory theory = TheoryOf(lb_.get());
      std::printf("%s", PrintTheory(lb_->vocab(), theory).c_str());
    } else if (cmd == "fact") {
      // Reuse the text-format parser for one directive.
      auto merged = ParseCwDatabase(SerializeCwDatabase(*lb_) +
                                    "\nfact " + rest + "\n");
      if (!merged.ok()) {
        Report(merged.status());
      } else {
        ResetService();
        lb_ = std::move(merged).value();
      }
    } else if (cmd == "assert" || cmd == "retract") {
      Update(cmd, rest);
    } else if (cmd == "known" || cmd == "unknown" || cmd == "distinct") {
      auto merged = ParseCwDatabase(SerializeCwDatabase(*lb_) + "\n" + cmd +
                                    " " + rest + "\n");
      if (!merged.ok()) {
        Report(merged.status());
      } else {
        ResetService();
        lb_ = std::move(merged).value();
      }
    } else if (cmd == "engines") {
      ListEngines();
    } else if (cmd == "explain") {
      Explain(rest);
    } else if (cmd == "set") {
      Set(rest);
    } else if (cmd == "session") {
      SessionCmd(rest);
    } else if (cmd == "prepare") {
      Prepare(rest);
    } else if (cmd == "execute") {
      Execute(rest);
    } else if (cmd == "stats") {
      Stats();
    } else if (cmd == "exact" || cmd == "possible" || cmd == "approx" ||
               cmd == "physical" || cmd == "query" || cmd == "plan") {
      RunQuery(cmd, rest);
    } else {
      std::printf("unknown command '%s' (try 'help')\n", cmd.c_str());
    }
    return true;
  }

 private:
  void Report(const Status& status) {
    if (!status.ok()) std::printf("error: %s\n", status.ToString().c_str());
  }

  void Show() {
    std::string known, unknown;
    for (ConstId c = 0; c < lb_->num_constants(); ++c) {
      (lb_->IsKnown(c) ? known : unknown) +=
          " " + lb_->vocab().ConstantName(c);
    }
    std::printf("known:%s\nunknown:%s\n", known.c_str(), unknown.c_str());
    PhysicalDatabase ph1 = MakePh1(*lb_);
    std::printf("%s", ph1.ToString().c_str());
    std::printf("uniqueness axioms: %zu (%zu explicit)\nfully specified: %s\n",
                lb_->CountDistinctPairs(), lb_->explicit_distinct().size(),
                lb_->IsFullySpecified() ? "yes" : "no");
  }

  void ListEngines() {
    const EngineRegistry& registry = EngineRegistry::Global();
    std::printf("%-16s %-6s %-9s %-11s %-9s\n", "engine", "sound",
                "complete", "polynomial", "possible");
    for (const std::string& name : registry.Names()) {
      auto caps = registry.CapabilitiesOf(name);
      if (!caps.ok()) continue;
      std::printf("%-16s %-6s %-9s %-11s %-9s%s\n", name.c_str(),
                  caps->sound ? "yes" : "no",
                  caps->complete ? "yes" : "no",
                  caps->polynomial ? "yes" : "no",
                  caps->supports_possible ? "yes" : "no",
                  name == engine_name_ ? "   <- selected" : "");
    }
    std::printf("threads: %d   max_mappings: %llu\n", options_.threads,
                static_cast<unsigned long long>(options_.exact.max_mappings));
  }

  void Set(const std::string& rest) {
    std::istringstream in(rest);
    std::string key, value;
    in >> key >> value;
    if (key == "engine") {
      if (!EngineRegistry::Global().Has(value)) {
        Report(EngineRegistry::Global().Create(value, lb_.get()).status());
        return;
      }
      engine_name_ = value;
      current_ = SIZE_MAX;  // back to auto-picking a session by engine
      std::printf("engine = %s\n", engine_name_.c_str());
    } else if (key == "threads") {
      unsigned long long threads = 0;
      if (!ParseStrictUint(value, &threads) || threads > INT_MAX) {
        Report(Status::InvalidArgument(
            "set threads expects a nonnegative integer (0 = hardware)"));
        return;
      }
      options_.threads = static_cast<int>(threads);
      current_ = SIZE_MAX;
      std::printf("threads = %d\n", options_.threads);
    } else if (key == "max_mappings") {
      unsigned long long max = 0;
      if (!ParseStrictUint(value, &max) || max == 0) {
        Report(Status::InvalidArgument(
            "set max_mappings expects a positive integer"));
        return;
      }
      options_.exact.max_mappings = max;
      options_.brute.max_mappings = max;
      current_ = SIZE_MAX;
      std::printf("max_mappings = %llu\n", max);
    } else if (key == "memo") {
      if (value != "on" && value != "off") {
        Report(Status::InvalidArgument("set memo expects 'on' or 'off'"));
        return;
      }
      const bool on = value == "on";
      options_.exact.memo = on;
      options_.brute.memo = on;
      use_result_cache_ = on;
      current_ = SIZE_MAX;
      std::printf("memo = %s\n", value.c_str());
    } else if (key == "join_cap") {
      unsigned long long cap = 0;
      if (!ParseStrictUint(value, &cap) || cap > 20) {
        Report(Status::InvalidArgument(
            "set join_cap expects an integer in [0, 20] (0 = always "
            "greedy)"));
        return;
      }
      options_.exact.ra_dp_join_cap = static_cast<size_t>(cap);
      current_ = SIZE_MAX;
      std::printf("join_cap = %llu\n", cap);
    } else {
      Report(Status::InvalidArgument(
          "set expects 'engine NAME', 'threads N', 'max_mappings N', "
          "'join_cap N' or 'memo on|off'"));
    }
  }

  /// The registry engine a shell command denotes: the per-command engines
  /// keep their historical names, `query` uses the selected one. A thread
  /// count other than 1 upgrades `exact`/`possible` to the parallel engine
  /// — same answers, fanned across workers.
  std::string EngineFor(const std::string& command) const {
    if (command == "query") return engine_name_;
    if (command == "exact" || command == "possible") {
      return options_.threads == 1 ? "exact" : "parallel-exact";
    }
    return command;  // "approx", "physical"
  }

  /// `explain`: how the ra-exact engine would evaluate the query — the
  /// compiled relational-algebra plan (join-ordered against the loaded
  /// database's cardinalities), its DAG size, and its SQL rendering.
  /// Queries outside the compilable first-order fragment report the
  /// fallback ra-exact takes instead.
  void Explain(const std::string& text) {
    auto query = ParseQuery(lb_->mutable_vocab(), text);
    if (!query.ok()) return Report(query.status());
    RaCardinalities stats;
    stats.domain_size = static_cast<double>(lb_->num_constants());
    stats.relation_sizes.assign(lb_->vocab().num_predicates(), 0.0);
    for (PredId p : lb_->PredicatesWithFacts()) {
      stats.relation_sizes[p] = static_cast<double>(lb_->facts(p).size());
    }
    stats.dp_join_cap = options_.exact.ra_dp_join_cap;
    RaCompiler compiler(&lb_->vocab(), stats);
    auto plan = compiler.Compile(query.value());
    if (!plan.ok()) {
      std::printf("not compilable to relational algebra: %s\n",
                  plan.status().ToString().c_str());
      std::printf(
          "the compiled engine falls back to the batched evaluator for "
          "this query\n");
      return;
    }
    std::printf("%s", compiler.AnnotatePlan(plan.value()).c_str());
    for (const JoinOrderInfo& jo : compiler.join_order_log()) {
      std::printf("join order: %s over %zu conjuncts, est %.3g rows\n",
                  jo.used_dp ? "DP" : "greedy", jo.conjuncts,
                  jo.estimated_rows);
    }
    std::printf("join_cap: %zu\n", options_.exact.ra_dp_join_cap);
    std::printf("nodes: %zu unique (%zu as a tree)\n",
                plan.value()->NumUniqueNodes(), plan.value()->NumNodes());
    // The static plan validator's verdict (see src/lqdb/ra/validate.h) on
    // the compiled plan and on its semijoin-reduced form — the shapes the
    // ra-exact engine actually executes.
    PlanValidateOptions vopts;
    vopts.vocab = &lb_->vocab();
    const Status verdict = ValidatePlan(plan.value(), vopts);
    std::printf("validator: %s\n",
                verdict.ok() ? "OK" : verdict.ToString().c_str());
    auto reduced = SemijoinReduce(plan.value());
    if (reduced.ok()) {
      vopts.param = reduced->param.get();
      const Status rverdict = ValidatePlan(reduced->plan, vopts);
      std::printf("validator (reduced): %s\n",
                  rverdict.ok() ? "OK" : rverdict.ToString().c_str());
    }
    std::printf("SQL:\n%s\n", EmitSql(lb_->vocab(), plan.value()).c_str());
  }

  void RunQuery(const std::string& command, const std::string& text) {
    if (command == "plan") {
      auto query = ParseQuery(lb_->mutable_vocab(), text);
      if (!query.ok()) return Report(query.status());
      auto approx = ApproxEvaluator::Make(lb_.get());
      if (!approx.ok()) return Report(approx.status());
      auto tq = approx.value()->Transform(query.value());
      if (!tq.ok()) return Report(tq.status());
      std::printf("Q^ = %s\n", PrintQuery(lb_->vocab(), tq->query).c_str());
      RaCompiler compiler(&lb_->vocab());
      auto plan = compiler.Compile(tq->query);
      if (!plan.ok()) return Report(plan.status());
      std::printf("%s", plan.value()->ToString(lb_->vocab()).c_str());
      std::printf("SQL:\n%s\n", EmitSql(lb_->vocab(), plan.value()).c_str());
      return;
    }
    Session* session = command == "query" ? CurrentSession()
                                          : SessionFor(EngineFor(command));
    if (session == nullptr) return;  // open error already reported
    auto info = session->Prepare(text);
    if (!info.ok()) return Report(info.status());
    last_handle_ = info->handle;
    // Ph1 after Prepare: parsing may have interned constants the answer
    // printer needs names for.
    PhysicalDatabase ph1 = MakePh1(*lb_);
    auto async = session->ExecuteAsync(info->handle, command == "possible");
    if (!async.ok()) return Report(async.status());
    auto answer = async->result.get();
    if (!answer.ok()) return Report(answer.status());
    std::printf("%s\n", AnswerToString(ph1, answer.value()).c_str());
  }

  /// `assert P(c1, ...)` / `retract P(c1, ...)`: a single-fact update
  /// through the live service. Unlike `fact` (which rebuilds the whole
  /// service), sessions and prepared statements survive — only dependent
  /// cached results are invalidated.
  void Update(const std::string& cmd, const std::string& rest) {
    const size_t open = rest.find('(');
    const size_t close = rest.rfind(')');
    if (open == std::string::npos || close == std::string::npos ||
        close < open) {
      Report(Status::InvalidArgument(cmd + " expects P(c1, c2, ...)"));
      return;
    }
    auto trim = [](std::string s) {
      while (!s.empty() && s.front() == ' ') s.erase(0, 1);
      while (!s.empty() && s.back() == ' ') s.pop_back();
      return s;
    };
    const std::string pred = trim(rest.substr(0, open));
    if (pred.empty()) {
      Report(Status::InvalidArgument(cmd + " expects a predicate name"));
      return;
    }
    std::vector<std::string> names;
    std::istringstream args(rest.substr(open + 1, close - open - 1));
    std::string arg;
    while (std::getline(args, arg, ',')) {
      arg = trim(arg);
      if (arg.empty()) {
        Report(Status::InvalidArgument(cmd + ": empty constant name"));
        return;
      }
      names.push_back(arg);
    }
    const Status status = cmd == "assert" ? Svc().Assert(pred, names)
                                          : Svc().Retract(pred, names);
    if (!status.ok()) return Report(status);
    std::printf("%sed (db version %llu)\n", cmd.c_str(),
                Ull(Svc().db_version()));
  }

  /// `session` / `session new [ENGINE]` / `session use N`.
  void SessionCmd(const std::string& rest) {
    std::istringstream in(rest);
    std::string sub, arg;
    in >> sub >> arg;
    if (sub.empty()) {
      if (sessions_.empty()) {
        std::printf("no sessions (one opens on the first query)\n");
        return;
      }
      for (size_t i = 0; i < sessions_.size(); ++i) {
        const Session& s = *sessions_[i];
        std::printf(
            "%c #%zu %-16s threads=%d prepares=%llu executions=%llu\n",
            i == current_ ? '*' : ' ', i, s.options().engine.c_str(),
            s.options().engine_options.threads, Ull(s.prepares()),
            Ull(s.executions()));
      }
    } else if (sub == "new") {
      const std::string engine = arg.empty() ? engine_name_ : arg;
      if (OpenNewSession(engine) == nullptr) return;
      current_ = sessions_.size() - 1;
      std::printf("session #%zu (%s) opened and selected\n", current_,
                  engine.c_str());
    } else if (sub == "use") {
      unsigned long long n = 0;
      if (!ParseStrictUint(arg, &n) || n >= sessions_.size()) {
        Report(Status::InvalidArgument(
            "session use expects an index listed by 'session'"));
        return;
      }
      current_ = static_cast<size_t>(n);
      std::printf("session #%zu (%s) selected\n", current_,
                  sessions_[current_]->options().engine.c_str());
    } else {
      Report(Status::InvalidArgument(
          "session expects no argument, 'new [ENGINE]' or 'use N'"));
    }
  }

  void Prepare(const std::string& text) {
    Session* session = CurrentSession();
    if (session == nullptr) return;
    auto info = session->Prepare(text);
    if (!info.ok()) return Report(info.status());
    last_handle_ = info->handle;
    std::printf("prepared #%llu (%s)\n", Ull(info->handle),
                info->cache_hit ? "cache hit" : "compiled");
  }

  void Execute(const std::string& rest) {
    std::istringstream in(rest);
    std::string arg;
    in >> arg;
    PreparedHandle handle = last_handle_;
    if (!arg.empty()) {
      unsigned long long n = 0;
      if (!ParseStrictUint(arg, &n)) {
        Report(Status::InvalidArgument(
            "execute expects a handle printed by 'prepare'"));
        return;
      }
      handle = n;
    }
    if (handle == 0) {
      Report(Status::InvalidArgument(
          "nothing prepared yet; run 'prepare QUERY' first"));
      return;
    }
    Session* session = CurrentSession();
    if (session == nullptr) return;
    PhysicalDatabase ph1 = MakePh1(*lb_);
    auto async = session->ExecuteAsync(handle);
    if (!async.ok()) return Report(async.status());
    auto answer = async->result.get();
    if (!answer.ok()) return Report(answer.status());
    std::printf("%s\n", AnswerToString(ph1, answer.value()).c_str());
  }

  void Stats() {
    if (service_ == nullptr) {
      std::printf("service not started (no queries yet)\n");
      return;
    }
    ServiceStats s = service_->stats();
    std::printf(
        "service: %d pool threads, %zu sessions opened, %zu cached queries\n"
        "prepares: %llu (%llu hits, %llu misses)\n"
        "executions: %llu (%llu async, %llu cancelled)\n"
        "updates: %llu asserts, %llu retracts (db version %llu)\n"
        "result cache: %llu hits, %llu misses, %llu invalidated, "
        "%zu cached\n"
        "kernel memo: %llu row hits, %llu row misses, %llu images skipped\n",
        service_->threads(), s.sessions_opened, s.cached_queries,
        Ull(s.prepares), Ull(s.cache_hits), Ull(s.cache_misses),
        Ull(s.executions), Ull(s.async_executions), Ull(s.cancelled),
        Ull(s.asserts), Ull(s.retracts), Ull(s.db_version),
        Ull(s.result_hits), Ull(s.result_misses),
        Ull(s.result_invalidations), s.cached_results,
        Ull(s.memo_row_hits), Ull(s.memo_row_misses),
        Ull(s.memo_images_skipped));
    for (size_t i = 0; i < sessions_.size(); ++i) {
      const Session& session = *sessions_[i];
      std::printf("%c #%zu %-16s prepares=%llu hits=%llu executions=%llu\n",
                  i == current_ ? '*' : ' ', i,
                  session.options().engine.c_str(), Ull(session.prepares()),
                  Ull(session.cache_hits()), Ull(session.executions()));
      const ExecutionTrace& trace = session.last_trace();
      if (trace.query != nullptr) {
        std::printf(
            "      last: %s  [%s, %llu mappings, %s%s, memo %llu/%llu]\n",
            trace.query, trace.engine, Ull(trace.mappings_examined),
            trace.ok ? "ok" : "failed", trace.cached ? ", cached" : "",
            Ull(trace.memo.row_hits),
            Ull(trace.memo.row_hits + trace.memo.row_misses));
      }
    }
  }

  /// The database changed shape, so every prepared statement (bound
  /// against the old vocabulary) and session engine is stale: drop the
  /// whole service. A fresh one spins up lazily on the next query.
  void ResetService() {
    sessions_.clear();
    service_.reset();
    current_ = SIZE_MAX;
    last_handle_ = 0;
  }

  Service& Svc() {
    if (service_ == nullptr) {
      service_ = std::make_unique<Service>(lb_.get());
    }
    return *service_;
  }

  Session* OpenNewSession(const std::string& engine) {
    SessionOptions opts;
    opts.engine = engine;
    opts.engine_options = options_;
    opts.use_result_cache = use_result_cache_;
    auto session = Svc().OpenSession(std::move(opts));
    if (!session.ok()) {
      Report(session.status());
      return nullptr;
    }
    sessions_.push_back(std::move(session).value());
    return sessions_.back().get();
  }

  /// The session a command routes to: an existing one matching `engine`
  /// and the shell's current knobs, else a newly opened one. Sessions are
  /// kept (and listed by `session`) so an engine's state — a parallel
  /// engine's thread pool, warmed executor scratch — survives across
  /// commands the way the old per-shell engine cache did.
  Session* SessionFor(const std::string& engine) {
    for (size_t i = 0; i < sessions_.size(); ++i) {
      const SessionOptions& o = sessions_[i]->options();
      if (o.engine == engine && o.engine_options.threads == options_.threads &&
          o.use_result_cache == use_result_cache_ &&
          o.engine_options.exact.memo == options_.exact.memo &&
          o.engine_options.exact.ra_dp_join_cap ==
              options_.exact.ra_dp_join_cap &&
          o.engine_options.exact.max_mappings ==
              options_.exact.max_mappings) {
        return sessions_[i].get();
      }
    }
    return OpenNewSession(engine);
  }

  /// `query`/`prepare`/`execute` go to the session pinned by `session use`
  /// (while valid), else to one matching the selected engine.
  Session* CurrentSession() {
    if (current_ < sessions_.size()) return sessions_[current_].get();
    return SessionFor(engine_name_);
  }

  std::unique_ptr<CwDatabase> lb_;
  std::string engine_name_ = "exact";
  EngineOptions options_;
  /// `set memo` flips this together with the engines' memo flags, so one
  /// switch A/Bs both reuse levels.
  bool use_result_cache_ = true;

  /// The shell is a service client: `service_` borrows `lb_` and is
  /// declared after it (destroyed first).
  std::unique_ptr<Service> service_;
  std::vector<std::shared_ptr<Session>> sessions_;
  size_t current_ = SIZE_MAX;  // SIZE_MAX: auto-pick by engine
  PreparedHandle last_handle_ = 0;
};

int Run(int argc, char** argv) {
  Shell shell;
  bool batch = false;
  std::string script;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--batch") {
      batch = true;
    } else {
      script = arg;
    }
  }
  if (!script.empty()) {
    std::ifstream in(script);
    if (!in) {
      std::fprintf(stderr, "cannot open script '%s'\n", script.c_str());
      return 1;
    }
    std::string line;
    while (std::getline(in, line)) {
      if (!shell.Handle(line)) return 0;
    }
    if (batch) return 0;
  }
  std::string line;
  std::printf("lqdb shell — 'help' for commands\n");
  while (true) {
    std::printf("lqdb> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (!shell.Handle(line)) break;
  }
  return 0;
}

}  // namespace
}  // namespace lqdb

int main(int argc, char** argv) { return lqdb::Run(argc, argv); }
