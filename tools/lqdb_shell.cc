// lqdb_shell — an interactive front end for CW logical databases.
//
// Loads a database in the lqdb text format (see src/lqdb/io/text_format.h)
// and answers queries with any of the engines in the library:
//
//     $ lqdb_shell mydb.lqdb
//     lqdb> exact (x) . !MURDERER(x)
//     {(Victoria)}
//     lqdb> approx (x) . !MURDERER(x)
//     {(Victoria)}
//
// Run `help` inside the shell for the command list. A script path may be
// passed as argv[1]; with `--batch` the shell exits at end of input
// instead of switching to stdin.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "lqdb/approx/approx.h"
#include "lqdb/cwdb/cw_database.h"
#include "lqdb/cwdb/ph.h"
#include "lqdb/cwdb/theory.h"
#include "lqdb/eval/answer.h"
#include "lqdb/eval/evaluator.h"
#include "lqdb/exact/exact.h"
#include "lqdb/io/text_format.h"
#include "lqdb/logic/parser.h"
#include "lqdb/logic/printer.h"
#include "lqdb/ra/compiler.h"
#include "lqdb/ra/sql.h"

namespace lqdb {
namespace {

constexpr const char* kHelp = R"(commands:
  load FILE              load a database (lqdb text format)
  save FILE              write the database back to disk
  show                   print constants, facts and axiom counts
  theory                 print the implied first-order theory T
  fact P(c1, c2, ...)    add an atomic fact
  known NAME...          declare constants with known identity
  unknown NAME...        declare null values
  distinct A B           add the uniqueness axiom not(A = B)
  exact QUERY            certain answers (Theorem 1; may be exponential)
  possible QUERY         tuples holding in at least one model
  approx QUERY           sound polynomial approximation (Section 5)
  physical QUERY         naive evaluation over Ph1 (ignores nulls!)
  plan QUERY             show Q^, its relational-algebra plan and SQL
  help                   this text
  quit                   leave
query syntax:  (x, y) . exists z. R(x, z) & !S(z, y)   or a sentence)";

class Shell {
 public:
  Shell() : lb_(std::make_unique<CwDatabase>()) {}

  /// Returns false when the shell should exit.
  bool Handle(const std::string& line) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty() || cmd[0] == '#') return true;
    std::string rest;
    std::getline(in, rest);
    while (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);

    if (cmd == "quit" || cmd == "exit") return false;
    if (cmd == "help") {
      std::puts(kHelp);
    } else if (cmd == "load") {
      auto loaded = LoadCwDatabase(rest);
      if (!loaded.ok()) {
        Report(loaded.status());
      } else {
        lb_ = std::move(loaded).value();
        std::printf("loaded %zu constants, %zu facts, %zu explicit axioms\n",
                    lb_->num_constants(), lb_->NumFacts(),
                    lb_->explicit_distinct().size());
      }
    } else if (cmd == "save") {
      Report(SaveCwDatabase(*lb_, rest));
    } else if (cmd == "show") {
      Show();
    } else if (cmd == "theory") {
      Theory theory = TheoryOf(lb_.get());
      std::printf("%s", PrintTheory(lb_->vocab(), theory).c_str());
    } else if (cmd == "fact") {
      // Reuse the text-format parser for one directive.
      auto merged = ParseCwDatabase(SerializeCwDatabase(*lb_) +
                                    "\nfact " + rest + "\n");
      if (!merged.ok()) {
        Report(merged.status());
      } else {
        lb_ = std::move(merged).value();
      }
    } else if (cmd == "known" || cmd == "unknown" || cmd == "distinct") {
      auto merged = ParseCwDatabase(SerializeCwDatabase(*lb_) + "\n" + cmd +
                                    " " + rest + "\n");
      if (!merged.ok()) {
        Report(merged.status());
      } else {
        lb_ = std::move(merged).value();
      }
    } else if (cmd == "exact" || cmd == "possible" || cmd == "approx" ||
               cmd == "physical" || cmd == "plan") {
      RunQuery(cmd, rest);
    } else {
      std::printf("unknown command '%s' (try 'help')\n", cmd.c_str());
    }
    return true;
  }

 private:
  void Report(const Status& status) {
    if (!status.ok()) std::printf("error: %s\n", status.ToString().c_str());
  }

  void Show() {
    std::string known, unknown;
    for (ConstId c = 0; c < lb_->num_constants(); ++c) {
      (lb_->IsKnown(c) ? known : unknown) +=
          " " + lb_->vocab().ConstantName(c);
    }
    std::printf("known:%s\nunknown:%s\n", known.c_str(), unknown.c_str());
    PhysicalDatabase ph1 = MakePh1(*lb_);
    std::printf("%s", ph1.ToString().c_str());
    std::printf("uniqueness axioms: %zu (%zu explicit)\nfully specified: %s\n",
                lb_->CountDistinctPairs(), lb_->explicit_distinct().size(),
                lb_->IsFullySpecified() ? "yes" : "no");
  }

  void RunQuery(const std::string& engine, const std::string& text) {
    auto query = ParseQuery(lb_->mutable_vocab(), text);
    if (!query.ok()) {
      Report(query.status());
      return;
    }
    PhysicalDatabase ph1 = MakePh1(*lb_);
    if (engine == "exact" || engine == "possible") {
      ExactEvaluator exact(lb_.get());
      auto answer = engine == "exact" ? exact.Answer(query.value())
                                      : exact.PossibleAnswer(query.value());
      if (!answer.ok()) return Report(answer.status());
      std::printf("%s\n", AnswerToString(ph1, answer.value()).c_str());
    } else if (engine == "approx") {
      auto approx = ApproxEvaluator::Make(lb_.get());
      if (!approx.ok()) return Report(approx.status());
      auto answer = approx.value()->Answer(query.value());
      if (!answer.ok()) return Report(answer.status());
      std::printf("%s\n", AnswerToString(ph1, answer.value()).c_str());
    } else if (engine == "physical") {
      Evaluator eval(&ph1);
      auto answer = eval.Answer(query.value());
      if (!answer.ok()) return Report(answer.status());
      std::printf("%s\n", AnswerToString(ph1, answer.value()).c_str());
    } else {  // plan
      auto approx = ApproxEvaluator::Make(lb_.get());
      if (!approx.ok()) return Report(approx.status());
      auto tq = approx.value()->Transform(query.value());
      if (!tq.ok()) return Report(tq.status());
      std::printf("Q^ = %s\n", PrintQuery(lb_->vocab(), tq->query).c_str());
      RaCompiler compiler(&lb_->vocab());
      auto plan = compiler.Compile(tq->query);
      if (!plan.ok()) return Report(plan.status());
      std::printf("%s", plan.value()->ToString(lb_->vocab()).c_str());
      std::printf("SQL:\n%s\n", EmitSql(lb_->vocab(), plan.value()).c_str());
    }
  }

  std::unique_ptr<CwDatabase> lb_;
};

int Run(int argc, char** argv) {
  Shell shell;
  bool batch = false;
  std::string script;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--batch") {
      batch = true;
    } else {
      script = arg;
    }
  }
  if (!script.empty()) {
    std::ifstream in(script);
    if (!in) {
      std::fprintf(stderr, "cannot open script '%s'\n", script.c_str());
      return 1;
    }
    std::string line;
    while (std::getline(in, line)) {
      if (!shell.Handle(line)) return 0;
    }
    if (batch) return 0;
  }
  std::string line;
  std::printf("lqdb shell — 'help' for commands\n");
  while (true) {
    std::printf("lqdb> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (!shell.Handle(line)) break;
  }
  return 0;
}

}  // namespace
}  // namespace lqdb

int main(int argc, char** argv) { return lqdb::Run(argc, argv); }
