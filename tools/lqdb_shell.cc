// lqdb_shell — an interactive front end for CW logical databases.
//
// Loads a database in the lqdb text format (see src/lqdb/io/text_format.h)
// and answers queries with any engine in the registry:
//
//     $ lqdb_shell mydb.lqdb
//     lqdb> exact (x) . !MURDERER(x)
//     {(Victoria)}
//     lqdb> set engine parallel-exact
//     lqdb> set threads 4
//     lqdb> query (x) . !MURDERER(x)
//     {(Victoria)}
//
// Run `help` inside the shell for the command list. A script path may be
// passed as argv[1]; with `--batch` the shell exits at end of input
// instead of switching to stdin.
#include <climits>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "lqdb/approx/approx.h"
#include "lqdb/cwdb/cw_database.h"
#include "lqdb/cwdb/ph.h"
#include "lqdb/cwdb/theory.h"
#include "lqdb/engine/engine.h"
#include "lqdb/eval/answer.h"
#include "lqdb/eval/evaluator.h"
#include "lqdb/io/text_format.h"
#include "lqdb/logic/parser.h"
#include "lqdb/logic/printer.h"
#include "lqdb/ra/compiler.h"
#include "lqdb/ra/sql.h"

namespace lqdb {
namespace {

/// Strict nonnegative-decimal parse for `set` arguments: every character
/// must be a digit, so "4x" is rejected instead of silently parsing as 4
/// the way std::stoi's prefix parsing would. Returns false on an empty
/// token, a non-digit, or uint64 overflow.
bool ParseStrictUint(const std::string& token, unsigned long long* out) {
  if (token.empty()) return false;
  unsigned long long value = 0;
  for (char ch : token) {
    if (ch < '0' || ch > '9') return false;
    const unsigned digit = static_cast<unsigned>(ch - '0');
    if (value > (ULLONG_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

constexpr const char* kHelp = R"(commands:
  load FILE              load a database (lqdb text format)
  save FILE              write the database back to disk
  show                   print constants, facts and axiom counts
  theory                 print the implied first-order theory T
  fact P(c1, c2, ...)    add an atomic fact
  known NAME...          declare constants with known identity
  unknown NAME...        declare null values
  distinct A B           add the uniqueness axiom not(A = B)
  exact QUERY            certain answers (Theorem 1; may be exponential)
  possible QUERY         tuples holding in at least one model
  approx QUERY           sound polynomial approximation (Section 5)
  physical QUERY         naive evaluation over Ph1 (ignores nulls!)
  query QUERY            evaluate with the currently selected engine
  engines                list registered engines and their capabilities
  set engine NAME        select the engine used by `query`
  set threads N          worker threads for parallel engines (0 = hardware)
  set max_mappings N     Theorem 1 enumeration budget per query
  plan QUERY             show Q^, its relational-algebra plan and SQL
  explain QUERY          how ra-exact evaluates QUERY: its compiled plan,
                         plan size and SQL (or the fallback it takes)
  help                   this text
  quit                   leave
query syntax:  (x, y) . exists z. R(x, z) & !S(z, y)   or a sentence)";

class Shell {
 public:
  Shell() : lb_(std::make_unique<CwDatabase>()) {
    options_.threads = 1;  // sequential by default; `set threads` overrides
  }

  /// Returns false when the shell should exit.
  bool Handle(const std::string& line) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty() || cmd[0] == '#') return true;
    std::string rest;
    std::getline(in, rest);
    while (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);

    if (cmd == "quit" || cmd == "exit") return false;
    if (cmd == "help") {
      std::puts(kHelp);
    } else if (cmd == "load") {
      auto loaded = LoadCwDatabase(rest);
      if (!loaded.ok()) {
        Report(loaded.status());
      } else {
        lb_ = std::move(loaded).value();
        engine_cache_.reset();
        std::printf("loaded %zu constants, %zu facts, %zu explicit axioms\n",
                    lb_->num_constants(), lb_->NumFacts(),
                    lb_->explicit_distinct().size());
      }
    } else if (cmd == "save") {
      Report(SaveCwDatabase(*lb_, rest));
    } else if (cmd == "show") {
      Show();
    } else if (cmd == "theory") {
      Theory theory = TheoryOf(lb_.get());
      std::printf("%s", PrintTheory(lb_->vocab(), theory).c_str());
    } else if (cmd == "fact") {
      // Reuse the text-format parser for one directive.
      auto merged = ParseCwDatabase(SerializeCwDatabase(*lb_) +
                                    "\nfact " + rest + "\n");
      if (!merged.ok()) {
        Report(merged.status());
      } else {
        lb_ = std::move(merged).value();
        engine_cache_.reset();
      }
    } else if (cmd == "known" || cmd == "unknown" || cmd == "distinct") {
      auto merged = ParseCwDatabase(SerializeCwDatabase(*lb_) + "\n" + cmd +
                                    " " + rest + "\n");
      if (!merged.ok()) {
        Report(merged.status());
      } else {
        lb_ = std::move(merged).value();
        engine_cache_.reset();
      }
    } else if (cmd == "engines") {
      ListEngines();
    } else if (cmd == "explain") {
      Explain(rest);
    } else if (cmd == "set") {
      Set(rest);
    } else if (cmd == "exact" || cmd == "possible" || cmd == "approx" ||
               cmd == "physical" || cmd == "query" || cmd == "plan") {
      RunQuery(cmd, rest);
    } else {
      std::printf("unknown command '%s' (try 'help')\n", cmd.c_str());
    }
    return true;
  }

 private:
  void Report(const Status& status) {
    if (!status.ok()) std::printf("error: %s\n", status.ToString().c_str());
  }

  void Show() {
    std::string known, unknown;
    for (ConstId c = 0; c < lb_->num_constants(); ++c) {
      (lb_->IsKnown(c) ? known : unknown) +=
          " " + lb_->vocab().ConstantName(c);
    }
    std::printf("known:%s\nunknown:%s\n", known.c_str(), unknown.c_str());
    PhysicalDatabase ph1 = MakePh1(*lb_);
    std::printf("%s", ph1.ToString().c_str());
    std::printf("uniqueness axioms: %zu (%zu explicit)\nfully specified: %s\n",
                lb_->CountDistinctPairs(), lb_->explicit_distinct().size(),
                lb_->IsFullySpecified() ? "yes" : "no");
  }

  void ListEngines() {
    const EngineRegistry& registry = EngineRegistry::Global();
    std::printf("%-16s %-6s %-9s %-11s %-9s\n", "engine", "sound",
                "complete", "polynomial", "possible");
    for (const std::string& name : registry.Names()) {
      auto caps = registry.CapabilitiesOf(name);
      if (!caps.ok()) continue;
      std::printf("%-16s %-6s %-9s %-11s %-9s%s\n", name.c_str(),
                  caps->sound ? "yes" : "no",
                  caps->complete ? "yes" : "no",
                  caps->polynomial ? "yes" : "no",
                  caps->supports_possible ? "yes" : "no",
                  name == engine_name_ ? "   <- selected" : "");
    }
    std::printf("threads: %d   max_mappings: %llu\n", options_.threads,
                static_cast<unsigned long long>(options_.exact.max_mappings));
  }

  void Set(const std::string& rest) {
    std::istringstream in(rest);
    std::string key, value;
    in >> key >> value;
    if (key == "engine") {
      if (!EngineRegistry::Global().Has(value)) {
        Report(EngineRegistry::Global().Create(value, lb_.get()).status());
        return;
      }
      engine_name_ = value;
      std::printf("engine = %s\n", engine_name_.c_str());
    } else if (key == "threads") {
      unsigned long long threads = 0;
      if (!ParseStrictUint(value, &threads) || threads > INT_MAX) {
        Report(Status::InvalidArgument(
            "set threads expects a nonnegative integer (0 = hardware)"));
        return;
      }
      options_.threads = static_cast<int>(threads);
      std::printf("threads = %d\n", options_.threads);
    } else if (key == "max_mappings") {
      unsigned long long max = 0;
      if (!ParseStrictUint(value, &max) || max == 0) {
        Report(Status::InvalidArgument(
            "set max_mappings expects a positive integer"));
        return;
      }
      options_.exact.max_mappings = max;
      options_.brute.max_mappings = max;
      std::printf("max_mappings = %llu\n", max);
    } else {
      Report(Status::InvalidArgument(
          "set expects 'engine NAME', 'threads N' or 'max_mappings N'"));
    }
  }

  /// The registry engine a shell command denotes: the per-command engines
  /// keep their historical names, `query` uses the selected one. A thread
  /// count other than 1 upgrades `exact`/`possible` to the parallel engine
  /// — same answers, fanned across workers.
  std::string EngineFor(const std::string& command) const {
    if (command == "query") return engine_name_;
    if (command == "exact" || command == "possible") {
      return options_.threads == 1 ? "exact" : "parallel-exact";
    }
    return command;  // "approx", "physical"
  }

  /// `explain`: how the ra-exact engine would evaluate the query — the
  /// compiled relational-algebra plan (join-ordered against the loaded
  /// database's cardinalities), its DAG size, and its SQL rendering.
  /// Queries outside the compilable first-order fragment report the
  /// fallback ra-exact takes instead.
  void Explain(const std::string& text) {
    auto query = ParseQuery(lb_->mutable_vocab(), text);
    if (!query.ok()) return Report(query.status());
    RaCardinalities stats;
    stats.domain_size = static_cast<double>(lb_->num_constants());
    stats.relation_sizes.assign(lb_->vocab().num_predicates(), 0.0);
    for (PredId p : lb_->PredicatesWithFacts()) {
      stats.relation_sizes[p] = static_cast<double>(lb_->facts(p).size());
    }
    RaCompiler compiler(&lb_->vocab(), stats);
    auto plan = compiler.Compile(query.value());
    if (!plan.ok()) {
      std::printf("not compilable to relational algebra: %s\n",
                  plan.status().ToString().c_str());
      std::printf(
          "ra-exact falls back to the batched evaluator for this query\n");
      return;
    }
    std::printf("%s", plan.value()->ToString(lb_->vocab()).c_str());
    std::printf("nodes: %zu unique (%zu as a tree)\n",
                plan.value()->NumUniqueNodes(), plan.value()->NumNodes());
    std::printf("SQL:\n%s\n", EmitSql(lb_->vocab(), plan.value()).c_str());
  }

  void RunQuery(const std::string& command, const std::string& text) {
    auto query = ParseQuery(lb_->mutable_vocab(), text);
    if (!query.ok()) {
      Report(query.status());
      return;
    }
    PhysicalDatabase ph1 = MakePh1(*lb_);
    if (command == "plan") {
      auto approx = ApproxEvaluator::Make(lb_.get());
      if (!approx.ok()) return Report(approx.status());
      auto tq = approx.value()->Transform(query.value());
      if (!tq.ok()) return Report(tq.status());
      std::printf("Q^ = %s\n", PrintQuery(lb_->vocab(), tq->query).c_str());
      RaCompiler compiler(&lb_->vocab());
      auto plan = compiler.Compile(tq->query);
      if (!plan.ok()) return Report(plan.status());
      std::printf("%s", plan.value()->ToString(lb_->vocab()).c_str());
      std::printf("SQL:\n%s\n", EmitSql(lb_->vocab(), plan.value()).c_str());
      return;
    }
    QueryEngine* engine = CachedEngine(EngineFor(command));
    if (engine == nullptr) return;  // creation error already reported
    auto answer = command == "possible"
                      ? engine->PossibleAnswer(query.value())
                      : engine->Answer(query.value());
    if (!answer.ok()) return Report(answer.status());
    std::printf("%s\n", AnswerToString(ph1, answer.value()).c_str());
  }

  /// Engines are cached across query commands so a parallel engine's
  /// thread pool survives from one query to the next; the cache is dropped
  /// whenever the database or the engine settings change. The approx
  /// engine is the exception: its construction snapshots the database
  /// (building Ph₂ over the current vocabulary), so it is rebuilt per
  /// query exactly as the pre-registry shell did.
  QueryEngine* CachedEngine(const std::string& name) {
    const std::string key =
        name + "/" + std::to_string(options_.threads) + "/" +
        std::to_string(options_.exact.max_mappings);
    if (engine_cache_ != nullptr && engine_cache_key_ == key &&
        name != "approx") {
      return engine_cache_.get();
    }
    auto engine = EngineRegistry::Global().Create(name, lb_.get(), options_);
    if (!engine.ok()) {
      Report(engine.status());
      return nullptr;
    }
    engine_cache_ = std::move(engine).value();
    engine_cache_key_ = key;
    return engine_cache_.get();
  }

  std::unique_ptr<CwDatabase> lb_;
  std::string engine_name_ = "exact";
  EngineOptions options_;
  std::unique_ptr<QueryEngine> engine_cache_;
  std::string engine_cache_key_;
};

int Run(int argc, char** argv) {
  Shell shell;
  bool batch = false;
  std::string script;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--batch") {
      batch = true;
    } else {
      script = arg;
    }
  }
  if (!script.empty()) {
    std::ifstream in(script);
    if (!in) {
      std::fprintf(stderr, "cannot open script '%s'\n", script.c_str());
      return 1;
    }
    std::string line;
    while (std::getline(in, line)) {
      if (!shell.Handle(line)) return 0;
    }
    if (batch) return 0;
  }
  std::string line;
  std::printf("lqdb shell — 'help' for commands\n");
  while (true) {
    std::printf("lqdb> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (!shell.Handle(line)) break;
  }
  return 0;
}

}  // namespace
}  // namespace lqdb

int main(int argc, char** argv) { return lqdb::Run(argc, argv); }
