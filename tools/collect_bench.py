#!/usr/bin/env python3
"""Collects google-benchmark JSON outputs into one BENCH_<pr>.json.

Workflow (wired through bench_common.h):

    cmake -B build -S . -DLQDB_BUILD_BENCHMARKS=ON && cmake --build build -j
    mkdir -p bench-json
    for b in build/bench_e*; do LQDB_BENCH_JSON_DIR=bench-json "$b"; done
    tools/collect_bench.py --dir bench-json --pr 3        # -> BENCH_3.json

Each bench binary writes `<binary>.json` into $LQDB_BENCH_JSON_DIR (the
standard --benchmark_out format). This script merges them, keyed by binary
name, keeping one shared context block (host, CPU, build flags) so the
perf trajectory across PRs can be diffed mechanically:

    {
      "context": { ... google-benchmark context of the first file ... },
      "suites": {
        "bench_e7_mapping_ablation": [ {"name": ..., "real_time": ...}, ... ],
        ...
      }
    }
"""

import argparse
import json
import pathlib
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dir", required=True,
                        help="directory holding <bench>.json files")
    parser.add_argument("--pr", type=int, default=None,
                        help="PR number; writes BENCH_<pr>.json")
    parser.add_argument("--out", default=None,
                        help="explicit output path (overrides --pr)")
    args = parser.parse_args()

    if args.out is None and args.pr is None:
        parser.error("pass --pr N or --out FILE")
    out_path = pathlib.Path(args.out or f"BENCH_{args.pr}.json")

    json_dir = pathlib.Path(args.dir)
    inputs = sorted(json_dir.glob("*.json"))
    if not inputs:
        print(f"no *.json files under {json_dir}", file=sys.stderr)
        return 1

    merged = {"context": None, "suites": {}}
    for path in inputs:
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as err:
            print(f"skipping {path}: {err}", file=sys.stderr)
            continue
        if merged["context"] is None:
            merged["context"] = data.get("context")
        merged["suites"][path.stem] = data.get("benchmarks", [])

    if not merged["suites"]:
        print("no parseable benchmark files", file=sys.stderr)
        return 1

    out_path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
    total = sum(len(v) for v in merged["suites"].values())
    print(f"wrote {out_path}: {len(merged['suites'])} suites, "
          f"{total} benchmark entries")
    return 0


if __name__ == "__main__":
    sys.exit(main())
