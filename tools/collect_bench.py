#!/usr/bin/env python3
"""Collects google-benchmark JSON outputs into one BENCH_<pr>.json.

Workflow (wired through bench_common.h):

    cmake -B build -S . -DLQDB_BUILD_BENCHMARKS=ON && cmake --build build -j
    mkdir -p bench-json
    for b in build/bench_e*; do LQDB_BENCH_JSON_DIR=bench-json "$b"; done
    tools/collect_bench.py --dir bench-json --pr 3        # -> BENCH_3.json

Pass --diff BENCH_<old>.json to also print a per-benchmark speedup table
(old real_time / new real_time) against an earlier snapshot, so a PR's
perf claim is one command:

    tools/collect_bench.py --dir bench-json --pr 5 --diff BENCH_3.json

Each bench binary writes `<binary>.json` into $LQDB_BENCH_JSON_DIR (the
standard --benchmark_out format). This script merges them, keyed by binary
name, keeping one shared context block (host, CPU, build flags) so the
perf trajectory across PRs can be diffed mechanically:

    {
      "context": { ... google-benchmark context of the first file ... },
      "suites": {
        "bench_e7_mapping_ablation": [ {"name": ..., "real_time": ...}, ... ],
        ...
      }
    }
"""

import argparse
import json
import os
import pathlib
import platform
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dir", required=True,
                        help="directory holding <bench>.json files")
    parser.add_argument("--pr", type=int, default=None,
                        help="PR number; writes BENCH_<pr>.json")
    parser.add_argument("--out", default=None,
                        help="explicit output path (overrides --pr)")
    parser.add_argument("--diff", default=None, metavar="BASELINE",
                        help="earlier BENCH_<pr>.json to diff against; "
                             "prints a per-benchmark speedup table")
    parser.add_argument("--require-e11-hits", action="store_true",
                        help="fail unless the bench_e11 reuse rows report "
                             "nonzero cache hit rates (CI guard: a refactor "
                             "must not silently wedge the kernel memo or "
                             "result cache shut)")
    args = parser.parse_args()

    if args.out is None and args.pr is None:
        parser.error("pass --pr N or --out FILE")
    out_path = pathlib.Path(args.out or f"BENCH_{args.pr}.json")

    json_dir = pathlib.Path(args.dir)
    inputs = sorted(json_dir.glob("*.json"))
    if not inputs:
        print(f"no *.json files under {json_dir}", file=sys.stderr)
        return 1

    # Collection-host metadata alongside google-benchmark's own context:
    # the concurrency benches (bench_e9's session-scaling rows) only
    # compare meaningfully between hosts with the same core count, and
    # --diff checks exactly that.
    merged = {
        "context": None,
        "meta": {
            "hardware_concurrency": os.cpu_count(),
            "host": platform.node(),
            "platform": platform.platform(),
        },
        "suites": {},
    }
    for path in inputs:
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as err:
            print(f"skipping {path}: {err}", file=sys.stderr)
            continue
        if merged["context"] is None:
            merged["context"] = data.get("context")
        merged["suites"][path.stem] = data.get("benchmarks", [])

    if not merged["suites"]:
        print("no parseable benchmark files", file=sys.stderr)
        return 1

    out_path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
    total = sum(len(v) for v in merged["suites"].values())
    print(f"wrote {out_path}: {len(merged['suites'])} suites, "
          f"{total} benchmark entries")

    print_ra_vs_exact(merged)
    print_e11_reuse(merged)
    if args.diff is not None:
        print_diff(pathlib.Path(args.diff), merged)
    if args.require_e11_hits and not e11_hits_ok(merged):
        return 1
    return 0


def snapshot_times(snapshot: dict) -> dict:
    """(suite, name) -> (real_time, time_unit) for every benchmark entry."""
    out = {}
    for suite, entries in snapshot.get("suites", {}).items():
        for entry in entries:
            name = entry.get("name")
            real = entry.get("real_time")
            if name is None or real is None:
                continue
            out[(suite, name)] = (real, entry.get("time_unit", "ns"))
    return out


def print_ra_vs_exact(merged: dict) -> None:
    """Pairs every ".../ra-exact..." row with its ".../exact..." partner
    (substring replacement "ra-exact" -> "exact") inside this snapshot and
    prints the compiled-plan speedup — the benches emit pairable names
    ("BM_TheoremOne/exact" vs "BM_TheoremOne/ra-exact") for exactly this.
    """
    times = snapshot_times(merged)
    pairs = []
    for (suite, name) in sorted(times):
        if "ra-exact" not in name:
            continue
        partner = (suite, name.replace("ra-exact", "exact"))
        if partner in times:
            pairs.append(((suite, name), times[(suite, name)], times[partner]))
    if not pairs:
        return

    rows = [("suite", "benchmark", "exact", "ra-exact", "speedup")]
    for (suite, name), (ra_t, ra_unit), (exact_t, exact_unit) in pairs:
        speedup = exact_t / ra_t if ra_t > 0 and ra_unit == exact_unit else None
        rows.append((suite, name,
                     f"{exact_t:.3f} {exact_unit}", f"{ra_t:.3f} {ra_unit}",
                     f"{speedup:.2f}x" if speedup is not None else "n/a"))
    widths = [max(len(row[col]) for row in rows) for col in range(5)]
    print("\nra-exact vs exact within this snapshot "
          "(exact/ra-exact real_time; >1 means the compiled plan wins):")
    for row in rows:
        print("  " + "  ".join(cell.ljust(width)
                               for cell, width in zip(row, widths)).rstrip())


def e11_rows(merged: dict):
    """(reuse_entry, baseline_entry) pairs from the bench_e11 suite, matched
    by substring replacement "/reuse" -> "/baseline" (the bench emits
    pairable names per stream for exactly this)."""
    pairs = []
    for suite, entries in merged.get("suites", {}).items():
        if "bench_e11" not in suite:
            continue
        by_name = {e.get("name"): e for e in entries}
        for name, entry in sorted(by_name.items()):
            if name is None or "/reuse" not in name:
                continue
            partner = by_name.get(name.replace("/reuse", "/baseline"))
            if partner is not None:
                pairs.append((entry, partner))
    return pairs


def print_e11_reuse(merged: dict) -> None:
    """Prints the incremental-stream speedups: reuse (kernel memo + result
    cache) vs baseline per stream, with the reuse rows' hit-rate counters."""
    pairs = e11_rows(merged)
    if not pairs:
        return
    rows = [("benchmark", "baseline", "reuse", "speedup",
             "result_hit_rate", "memo_hit_rate")]
    for reuse, base in pairs:
        r_t, b_t = reuse.get("real_time"), base.get("real_time")
        unit = reuse.get("time_unit", "ns")
        ok = (r_t is not None and b_t is not None and r_t > 0
              and unit == base.get("time_unit", "ns"))
        rows.append((reuse["name"],
                     f"{b_t:.3f} {unit}" if b_t is not None else "n/a",
                     f"{r_t:.3f} {unit}" if r_t is not None else "n/a",
                     f"{b_t / r_t:.2f}x" if ok else "n/a",
                     f"{reuse.get('result_hit_rate', 0.0):.2f}",
                     f"{reuse.get('memo_hit_rate', 0.0):.2f}"))
    widths = [max(len(row[col]) for row in rows) for col in range(6)]
    print("\nincremental re-evaluation (bench_e11): baseline/reuse "
          "real_time; >1 means reuse wins:")
    for row in rows:
        print("  " + "  ".join(cell.ljust(width)
                               for cell, width in zip(row, widths)).rstrip())


def e11_hits_ok(merged: dict) -> bool:
    """--require-e11-hits: every e11 reuse row must show cache traffic —
    a result-cache hit rate (repeated/updates streams) or a kernel-memo hit
    rate (perturbed stream, which runs with the result cache off)."""
    pairs = e11_rows(merged)
    if not pairs:
        print("--require-e11-hits: no bench_e11 reuse/baseline pairs found",
              file=sys.stderr)
        return False
    ok = True
    for reuse, _ in pairs:
        hits = max(reuse.get("result_hit_rate", 0.0),
                   reuse.get("memo_hit_rate", 0.0))
        if hits <= 0.0:
            print(f"--require-e11-hits: {reuse['name']} reports zero cache "
                  f"hits (result_hit_rate and memo_hit_rate both 0)",
                  file=sys.stderr)
            ok = False
    return ok


def core_count(snapshot: dict):
    """The collection host's core count: our own meta block when present,
    else google-benchmark's context (older snapshots predate "meta")."""
    meta = snapshot.get("meta") or {}
    if meta.get("hardware_concurrency") is not None:
        return meta["hardware_concurrency"]
    context = snapshot.get("context") or {}
    return context.get("num_cpus")


def print_diff(baseline_path: pathlib.Path, merged: dict) -> None:
    """Prints old-vs-new real_time per benchmark shared with the baseline."""
    try:
        baseline = json.loads(baseline_path.read_text())
    except (OSError, json.JSONDecodeError) as err:
        print(f"cannot diff against {baseline_path}: {err}", file=sys.stderr)
        return

    old_cores, new_cores = core_count(baseline), core_count(merged)
    if old_cores is not None and new_cores is not None \
            and old_cores != new_cores:
        print(f"WARNING: core-count mismatch: baseline {baseline_path} was "
              f"collected on {old_cores} cores, this snapshot on "
              f"{new_cores} — concurrency rows (session scaling, parallel "
              f"engines) are not comparable", file=sys.stderr)

    old = snapshot_times(baseline)
    new = snapshot_times(merged)
    shared = sorted(set(old) & set(new))
    if not shared:
        print(f"no shared benchmarks with {baseline_path}", file=sys.stderr)
        return

    rows = [("suite", "benchmark", "old", "new", "speedup")]
    for key in shared:
        old_t, old_unit = old[key]
        new_t, new_unit = new[key]
        speedup = old_t / new_t if new_t > 0 and old_unit == new_unit else None
        rows.append((key[0], key[1],
                     f"{old_t:.3f} {old_unit}", f"{new_t:.3f} {new_unit}",
                     f"{speedup:.2f}x" if speedup is not None else "n/a"))
    widths = [max(len(row[col]) for row in rows) for col in range(5)]
    print(f"\nspeedup vs {baseline_path} (old/new real_time; >1 is faster):")
    for row in rows:
        print("  " + "  ".join(cell.ljust(width)
                               for cell, width in zip(row, widths)).rstrip())
    # Rows that appear or disappear are part of the perf story (a renamed
    # benchmark silently resets its trajectory), so list them explicitly
    # instead of dropping them from the table.
    only_old = sorted(set(old) - set(new))
    only_new = sorted(set(new) - set(old))
    if only_old:
        print(f"  gone ({len(only_old)} rows in the baseline only):")
        for suite, name in only_old:
            old_t, old_unit = old[(suite, name)]
            print(f"    {suite}  {name}  was {old_t:.3f} {old_unit}")
    if only_new:
        print(f"  new ({len(only_new)} rows without a baseline):")
        for suite, name in only_new:
            new_t, new_unit = new[(suite, name)]
            print(f"    {suite}  {name}  at {new_t:.3f} {new_unit}")


if __name__ == "__main__":
    sys.exit(main())
