#!/usr/bin/env python3
"""Repo-specific lint gate: bans patterns behind past regressions.

Rules
-----
std-pow-integral
    Assigning or casting ``std::pow`` to an integral type. ``std::pow``
    returns a double with 53 mantissa bits; truncating it corrupted model
    counts once (see src/lqdb/exact/brute.h, which grew an exact integer
    power for this reason). Floating-point uses of ``std::pow`` are fine.

prefix-parse
    ``std::stoi`` / ``atoi`` / ``strtol`` and friends. Their prefix
    parsing accepted "4x" as 4 in the shell, and std::stoi throws (rather
    than returning an error) on out-of-range input. Use the strict
    helpers in src/lqdb/util/parse.h instead.

raw-mutex
    Raw ``std::mutex`` / ``std::condition_variable`` / lock types inside
    src/lqdb outside util/annotations.h. All synchronization must go
    through the annotated wrappers so Clang's -Wthread-safety can see it.

Suppression: append ``// lint:allow(<rule>)`` to the offending line.

Exit status: 0 when clean, 1 when any finding fires, 2 on usage errors.
``--self-test`` checks the rules against tools/lint_fixtures/, where each
known-bad line is annotated ``// expect: <rule>``.
"""

import argparse
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

INTEGRAL = r"(?:int|long|short|unsigned|u?int(?:8|16|32|64)_t|size_t|ssize_t|ptrdiff_t)"

RULES = [
    {
        "name": "std-pow-integral",
        "regex": re.compile(
            r"\b" + INTEGRAL + r"\b[^=;]*=\s*(?:\([^)]*\)\s*)?std::pow\b"
            r"|static_cast<\s*" + INTEGRAL + r"\s*>\s*\(\s*std::pow\b"
        ),
        "message": "std::pow result used as an integral (53-bit mantissa; "
                   "use an exact integer power)",
        "applies": lambda rel: rel.startswith(("src/", "tools/")),
    },
    {
        "name": "prefix-parse",
        "regex": re.compile(
            r"\b(?:std::)?(?:stoi|stol|stoll|stoul|stoull|atoi|atol|atoll|"
            r"strtol|strtoll|strtoul|strtoull)\s*\("
        ),
        "message": "prefix-parsing integer conversion (use "
                   "ParseStrictUint/ParseStrictInt from lqdb/util/parse.h)",
        "applies": lambda rel: rel.startswith(("src/", "tools/")),
    },
    {
        "name": "raw-mutex",
        "regex": re.compile(
            r"\bstd::(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
            r"shared_mutex|shared_timed_mutex|condition_variable|"
            r"condition_variable_any|unique_lock|lock_guard|scoped_lock|"
            r"shared_lock)\b"
        ),
        "message": "raw std synchronization primitive (use the annotated "
                   "wrappers in lqdb/util/annotations.h)",
        "applies": lambda rel: (rel.startswith("src/lqdb/")
                                and rel != "src/lqdb/util/annotations.h"),
    },
]

ALLOW_RE = re.compile(r"//\s*lint:allow\(([a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)\)")
EXPECT_RE = re.compile(r"//\s*expect:\s*([a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)")


def strip_comments_and_strings(text):
    """Returns per-line code with comments, string and char literals blanked.

    Keeps line structure intact (newlines survive, removed spans become
    spaces) so findings report real line numbers. Handles // and block
    comments, "..." and '...' literals with backslash escapes. Raw string
    literals are not used in this codebase and are treated as plain strings.
    """
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | dquote | squote
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "dquote"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "squote"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        else:  # dquote / squote
            quote = '"' if state == "dquote" else "'"
            if c == "\\" and nxt:
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out).split("\n")


def scan_file(path, rel, rules):
    """Returns [(lineno, rule_name, message)] findings for one file."""
    with open(path, encoding="utf-8", errors="replace") as f:
        raw_text = f.read()
    raw_lines = raw_text.split("\n")
    code_lines = strip_comments_and_strings(raw_text)
    findings = []
    for lineno, (raw, code) in enumerate(zip(raw_lines, code_lines), start=1):
        allow = ALLOW_RE.search(raw)
        allowed = set()
        if allow:
            allowed = {r.strip() for r in allow.group(1).split(",")}
        for rule in rules:
            if not rule["applies"](rel):
                continue
            if rule["name"] in allowed:
                continue
            if rule["regex"].search(code):
                findings.append((lineno, rule["name"], rule["message"]))
    return findings


def iter_source_files(root):
    for top in ("src", "tools", "bench"):
        base = os.path.join(root, top)
        if not os.path.isdir(base):
            continue
        for dirpath, _dirnames, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith((".h", ".cc", ".inc")):
                    path = os.path.join(dirpath, name)
                    yield path, os.path.relpath(path, root).replace(os.sep, "/")


def run_lint(root):
    total = 0
    for path, rel in iter_source_files(root):
        if rel.startswith("tools/lint_fixtures/"):
            continue  # deliberately bad snippets for --self-test
        for lineno, rule, message in scan_file(path, rel, RULES):
            print(f"{rel}:{lineno}: [{rule}] {message}")
            total += 1
    if total:
        print(f"lint_invariants: {total} finding(s)", file=sys.stderr)
        return 1
    print("lint_invariants: clean")
    return 0


def run_self_test(root):
    """Checks every rule both fires on its known-bad fixture lines and stays
    quiet everywhere else (including on lint:allow suppressions)."""
    fixture_dir = os.path.join(root, "tools", "lint_fixtures")
    if not os.path.isdir(fixture_dir):
        print("self-test: missing tools/lint_fixtures/", file=sys.stderr)
        return 2
    failures = 0
    fired_rules = set()
    for name in sorted(os.listdir(fixture_dir)):
        if not name.endswith((".h", ".cc", ".inc")):
            continue
        path = os.path.join(fixture_dir, name)
        # Fixtures exercise every rule, so scan them as if they lived in
        # the most restrictive scope (src/lqdb/).
        rel = "src/lqdb/fixture/" + name
        with open(path, encoding="utf-8") as f:
            raw_lines = f.read().split("\n")
        expected = {}
        for lineno, raw in enumerate(raw_lines, start=1):
            m = EXPECT_RE.search(raw)
            if m:
                expected[lineno] = {r.strip() for r in m.group(1).split(",")}
        actual = {}
        for lineno, rule, _message in scan_file(path, rel, RULES):
            actual.setdefault(lineno, set()).add(rule)
            fired_rules.add(rule)
        for lineno in sorted(set(expected) | set(actual)):
            want = expected.get(lineno, set())
            got = actual.get(lineno, set())
            if want != got:
                print(f"self-test: {name}:{lineno}: expected {sorted(want)} "
                      f"got {sorted(got)}", file=sys.stderr)
                failures += 1
    missing = {rule["name"] for rule in RULES} - fired_rules
    if missing:
        print(f"self-test: rules never exercised by fixtures: "
              f"{sorted(missing)}", file=sys.stderr)
        failures += 1
    if failures:
        print(f"self-test: {failures} failure(s)", file=sys.stderr)
        return 1
    print("self-test: all rules fire on fixtures and respect suppressions")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=REPO_ROOT,
                        help="repository root (default: auto-detected)")
    parser.add_argument("--self-test", action="store_true",
                        help="check the rules against tools/lint_fixtures/")
    args = parser.parse_args()
    if args.self_test:
        return run_self_test(args.root)
    return run_lint(args.root)


if __name__ == "__main__":
    sys.exit(main())
