#include <gtest/gtest.h>

#include "lqdb/logic/builder.h"
#include "lqdb/logic/classify.h"
#include "lqdb/logic/formula.h"
#include "lqdb/logic/nnf.h"
#include "lqdb/logic/parser.h"
#include "lqdb/logic/printer.h"
#include "lqdb/logic/query.h"
#include "lqdb/logic/substitute.h"
#include "lqdb/logic/vocabulary.h"
#include "lqdb/util/rng.h"
#include "testing.h"

namespace lqdb {
namespace {

using testing::RandomFormula;
using testing::RandomFormulaParams;

TEST(VocabularyTest, ConstantsAndPredicates) {
  Vocabulary v;
  ConstId a = v.AddConstant("Alice");
  EXPECT_EQ(v.AddConstant("Alice"), a);
  EXPECT_EQ(v.ConstantName(a), "Alice");
  EXPECT_EQ(v.FindConstant("Bob"), Vocabulary::kNotFound);

  auto p = v.AddPredicate("Knows", 2);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(v.PredicateArity(p.value()), 2);
  EXPECT_FALSE(v.IsAuxiliary(p.value()));

  auto clash = v.AddPredicate("Knows", 3);
  EXPECT_EQ(clash.status().code(), StatusCode::kAlreadyExists);

  auto same = v.AddPredicate("Knows", 2);
  ASSERT_TRUE(same.ok());
  EXPECT_EQ(same.value(), p.value());
}

TEST(VocabularyTest, AuxiliaryUpgradeToSchema) {
  Vocabulary v;
  auto aux = v.AddAuxiliaryPredicate("NE", 2);
  ASSERT_TRUE(aux.ok());
  EXPECT_TRUE(v.IsAuxiliary(aux.value()));
  auto schema = v.AddPredicate("NE", 2);
  ASSERT_TRUE(schema.ok());
  EXPECT_FALSE(v.IsAuxiliary(schema.value()));
  // Schema predicates never downgrade back to auxiliary.
  auto again = v.AddAuxiliaryPredicate("NE", 2);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(v.IsAuxiliary(again.value()));
}

TEST(VocabularyTest, FreshVariableAvoidsCollisions) {
  Vocabulary v;
  VarId x = v.AddVariable("x");
  VarId f1 = v.FreshVariable("x");
  VarId f2 = v.FreshVariable("x");
  EXPECT_NE(f1, x);
  EXPECT_NE(f2, x);
  EXPECT_NE(f1, f2);
}

TEST(VocabularyTest, SchemaPredicatesExcludeAuxiliary) {
  Vocabulary v;
  PredId p = v.AddPredicate("P", 1).value();
  v.AddAuxiliaryPredicate("H", 2).value();
  PredId q = v.AddPredicate("Q", 0).value();
  EXPECT_EQ(v.SchemaPredicates(), (std::vector<PredId>{p, q}));
}

TEST(FormulaTest, AndFlattensAndCollapses) {
  Vocabulary v;
  FormulaBuilder b(&v);
  FormulaPtr p = b.Atom("P", {b.V("x")});
  FormulaPtr q = b.Atom("Q", {b.V("x")});
  FormulaPtr r = b.Atom("R", {b.V("x")});

  FormulaPtr nested = Formula::And(Formula::And(p, q), r);
  EXPECT_EQ(nested->kind(), FormulaKind::kAnd);
  EXPECT_EQ(nested->num_children(), 3u);

  EXPECT_EQ(Formula::And({})->kind(), FormulaKind::kTrue);
  EXPECT_EQ(Formula::And({p})->kind(), FormulaKind::kAtom);
  EXPECT_EQ(Formula::Or({})->kind(), FormulaKind::kFalse);
  // True units are dropped from conjunctions.
  EXPECT_EQ(Formula::And(Formula::True(), p)->kind(), FormulaKind::kAtom);
}

TEST(FormulaTest, FreeVariables) {
  Vocabulary v;
  FormulaBuilder b(&v);
  // exists y. R(x, y) & P(z)
  FormulaPtr f = b.Exists(
      "y", b.And({b.Atom("R", {b.V("x"), b.V("y")}),
                  b.Atom("P", {b.V("z")})}));
  std::set<VarId> free = FreeVariables(f);
  EXPECT_EQ(free.size(), 2u);
  EXPECT_TRUE(free.count(v.FindVariable("x")));
  EXPECT_TRUE(free.count(v.FindVariable("z")));
  EXPECT_FALSE(free.count(v.FindVariable("y")));
}

TEST(FormulaTest, FreeVariablesRespectShadowing) {
  Vocabulary v;
  FormulaBuilder b(&v);
  // P(x) & exists x. Q(x) — the outer x is free, the inner bound.
  FormulaPtr f = b.And({b.Atom("P", {b.V("x")}),
                        b.Exists("x", b.Atom("Q", {b.V("x")}))});
  std::set<VarId> free = FreeVariables(f);
  EXPECT_EQ(free.size(), 1u);
  EXPECT_TRUE(free.count(v.FindVariable("x")));
}

TEST(FormulaTest, FreePredicatesExcludeSoBound) {
  Vocabulary v;
  FormulaBuilder b(&v);
  FormulaPtr f = b.ExistsPred("S", 1, b.And({b.Atom("S", {b.V("x")}),
                                             b.Atom("P", {b.V("x")})}));
  std::set<PredId> free = FreePredicates(f);
  EXPECT_EQ(free.size(), 1u);
  EXPECT_TRUE(free.count(v.FindPredicate("P")));
}

TEST(FormulaTest, ConstantsOf) {
  Vocabulary v;
  FormulaBuilder b(&v);
  FormulaPtr f = b.And({b.Atom("P", {b.C("A")}),
                        b.Eq(b.V("x"), b.C("B"))});
  std::set<ConstId> consts = ConstantsOf(f);
  EXPECT_EQ(consts.size(), 2u);
}

TEST(FormulaTest, StructuralEquality) {
  Vocabulary v;
  FormulaBuilder b(&v);
  FormulaPtr f1 = b.Forall("x", b.Atom("P", {b.V("x")}));
  FormulaPtr f2 = b.Forall("x", b.Atom("P", {b.V("x")}));
  FormulaPtr f3 = b.Forall("y", b.Atom("P", {b.V("y")}));
  EXPECT_TRUE(StructurallyEqual(f1, f2));
  EXPECT_FALSE(StructurallyEqual(f1, f3));  // not up to renaming
}

TEST(PrinterTest, RendersConnectivesWithMinimalParens) {
  Vocabulary v;
  FormulaBuilder b(&v);
  FormulaPtr f =
      b.Implies(b.Or({b.Atom("P", {b.V("x")}),
                      b.And({b.Atom("Q", {b.V("x")}),
                             b.Atom("S", {b.V("x")})})}),
                b.Atom("T", {b.V("x")}));
  EXPECT_EQ(PrintFormula(v, f), "P(x) | Q(x) & S(x) -> T(x)");
}

TEST(PrinterTest, RendersQuantifierRuns) {
  Vocabulary v;
  FormulaBuilder b(&v);
  FormulaPtr f = b.Forall({"x", "y"}, b.Atom("R", {b.V("x"), b.V("y")}));
  EXPECT_EQ(PrintFormula(v, f), "forall x y. R(x, y)");
}

TEST(PrinterTest, RendersNegatedEqualityAsNeq) {
  Vocabulary v;
  FormulaBuilder b(&v);
  EXPECT_EQ(PrintFormula(v, b.Neq(b.V("x"), b.V("y"))), "x != y");
}

TEST(ParserTest, ParsesAtomsAndTermsWithCaseHeuristic) {
  Vocabulary v;
  ASSERT_OK_AND_ASSIGN(FormulaPtr f, ParseFormula(&v, "Teaches(Socrates, x)"));
  ASSERT_EQ(f->kind(), FormulaKind::kAtom);
  EXPECT_TRUE(f->terms()[0].is_constant());
  EXPECT_TRUE(f->terms()[1].is_variable());
}

TEST(ParserTest, DeclaredConstantBeatsCaseHeuristic) {
  Vocabulary v;
  v.AddConstant("socrates");  // lowercase but a declared constant
  ASSERT_OK_AND_ASSIGN(FormulaPtr f, ParseFormula(&v, "P(socrates)"));
  EXPECT_TRUE(f->terms()[0].is_constant());
}

TEST(ParserTest, PrecedenceMatchesPrinter) {
  Vocabulary v;
  ASSERT_OK_AND_ASSIGN(
      FormulaPtr f, ParseFormula(&v, "P(x) & Q(x) | S(x) -> T(x)"));
  // Parsed as ((P&Q) | S) -> T.
  ASSERT_EQ(f->kind(), FormulaKind::kImplies);
  EXPECT_EQ(f->child(0)->kind(), FormulaKind::kOr);
}

TEST(ParserTest, QuantifiersExtendRight) {
  Vocabulary v;
  ASSERT_OK_AND_ASSIGN(FormulaPtr f,
                       ParseFormula(&v, "exists x. P(x) & Q(x)"));
  ASSERT_EQ(f->kind(), FormulaKind::kExists);
  EXPECT_EQ(f->child()->kind(), FormulaKind::kAnd);
}

TEST(ParserTest, SecondOrderQuantifier) {
  Vocabulary v;
  ASSERT_OK_AND_ASSIGN(
      FormulaPtr f, ParseFormula(&v, "exists2 S/1. forall x. S(x) -> P(x)"));
  ASSERT_EQ(f->kind(), FormulaKind::kExistsPred);
  EXPECT_EQ(v.PredicateArity(f->pred()), 1);
  EXPECT_TRUE(v.IsAuxiliary(f->pred()));
}

TEST(ParserTest, NeqSugar) {
  Vocabulary v;
  ASSERT_OK_AND_ASSIGN(FormulaPtr f, ParseFormula(&v, "x != y"));
  ASSERT_EQ(f->kind(), FormulaKind::kNot);
  EXPECT_EQ(f->child()->kind(), FormulaKind::kEquals);
}

TEST(ParserTest, RejectsGarbage) {
  Vocabulary v;
  EXPECT_FALSE(ParseFormula(&v, "P(x").ok());
  EXPECT_FALSE(ParseFormula(&v, "P(x) &&& Q(x)").ok());
  EXPECT_FALSE(ParseFormula(&v, "forall . P(x)").ok());
  EXPECT_FALSE(ParseFormula(&v, "x =").ok());
  EXPECT_FALSE(ParseFormula(&v, "").ok());
  EXPECT_FALSE(ParseFormula(&v, "P(x) Q(x)").ok());
}

TEST(ParserTest, RejectsQuantifiedConstant) {
  Vocabulary v;
  v.AddConstant("Socrates");
  EXPECT_FALSE(ParseFormula(&v, "exists Socrates. P(Socrates)").ok());
}

TEST(ParserTest, SecondOrderArityOverflowReturnsStatus) {
  // std::stoi used to throw here (the library is exception-free); the
  // strict parse turns an out-of-range arity into an InvalidArgument.
  Vocabulary v;
  auto f = ParseFormula(&v, "exists2 S/99999999999999999999. forall x. S(x)");
  ASSERT_FALSE(f.ok());
  EXPECT_NE(f.status().message().find("arity out of range"),
            std::string::npos)
      << f.status();
}

TEST(ParserTest, ParsesQueriesWithHeads) {
  Vocabulary v;
  ASSERT_OK_AND_ASSIGN(
      Query q, ParseQuery(&v, "(x, y) . exists z. R(x, z) & R(z, y)"));
  EXPECT_EQ(q.arity(), 2u);
  EXPECT_FALSE(q.is_boolean());
}

TEST(ParserTest, BareSentenceIsBooleanQuery) {
  Vocabulary v;
  ASSERT_OK_AND_ASSIGN(Query q, ParseQuery(&v, "forall x. P(x)"));
  EXPECT_TRUE(q.is_boolean());
}

TEST(ParserTest, RejectsQueryMissingHeadVariable) {
  Vocabulary v;
  EXPECT_FALSE(ParseQuery(&v, "(x) . R(x, y)").ok());
}

TEST(ParserTest, ParenthesizedFormulaIsNotAHead) {
  Vocabulary v;
  v.AddConstant("A");
  ASSERT_OK_AND_ASSIGN(Query q, ParseQuery(&v, "(P(A) -> P(A)) & true"));
  EXPECT_TRUE(q.is_boolean());
}

TEST(ParserPrinterTest, RoundTripsRandomFormulas) {
  for (uint64_t seed = 0; seed < 100; ++seed) {
    Vocabulary v;
    v.AddConstant("A");
    v.AddConstant("B");
    v.AddPredicate("P0", 1).value();
    v.AddPredicate("R0", 2).value();
    Rng rng(seed);
    RandomFormulaParams params;
    FormulaPtr f = RandomFormula(&rng, &v, params);
    std::string printed = PrintFormula(v, f);
    auto reparsed = ParseFormula(&v, printed);
    ASSERT_TRUE(reparsed.ok())
        << "seed " << seed << ": " << printed << " -> "
        << reparsed.status();
    EXPECT_EQ(PrintFormula(v, reparsed.value()), printed)
        << "seed " << seed;
  }
}

TEST(NnfTest, EliminatesImplications) {
  Vocabulary v;
  ASSERT_OK_AND_ASSIGN(FormulaPtr f, ParseFormula(&v, "P(x) -> Q(x)"));
  FormulaPtr nnf = ToNnf(f);
  EXPECT_TRUE(IsNnf(nnf));
  EXPECT_EQ(PrintFormula(v, nnf), "!P(x) | Q(x)");
}

TEST(NnfTest, PushesNegationThroughQuantifiers) {
  Vocabulary v;
  ASSERT_OK_AND_ASSIGN(FormulaPtr f,
                       ParseFormula(&v, "!(forall x. exists y. R(x, y))"));
  FormulaPtr nnf = ToNnf(f);
  EXPECT_TRUE(IsNnf(nnf));
  EXPECT_EQ(PrintFormula(v, nnf), "exists x. forall y. !R(x, y)");
}

TEST(NnfTest, DoubleNegationCancels) {
  Vocabulary v;
  ASSERT_OK_AND_ASSIGN(FormulaPtr f, ParseFormula(&v, "!!P(x)"));
  EXPECT_EQ(PrintFormula(v, ToNnf(f)), "P(x)");
}

TEST(NnfTest, SecondOrderQuantifiersFlip) {
  Vocabulary v;
  ASSERT_OK_AND_ASSIGN(FormulaPtr f,
                       ParseFormula(&v, "!(exists2 S/1. forall x. S(x))"));
  FormulaPtr nnf = ToNnf(f);
  ASSERT_EQ(nnf->kind(), FormulaKind::kForallPred);
  EXPECT_EQ(nnf->child()->kind(), FormulaKind::kExists);
}

TEST(NnfTest, IsNnfDetectsViolations) {
  Vocabulary v;
  ASSERT_OK_AND_ASSIGN(FormulaPtr imp, ParseFormula(&v, "P(x) -> Q(x)"));
  EXPECT_FALSE(IsNnf(imp));
  ASSERT_OK_AND_ASSIGN(FormulaPtr notand, ParseFormula(&v, "!(P(x) & Q(x))"));
  EXPECT_FALSE(IsNnf(notand));
  ASSERT_OK_AND_ASSIGN(FormulaPtr lit, ParseFormula(&v, "!P(x) & x != y"));
  EXPECT_TRUE(IsNnf(lit));
}

TEST(SubstituteTest, ReplacesFreeOccurrences) {
  Vocabulary v;
  FormulaBuilder b(&v);
  FormulaPtr f = b.And({b.Atom("P", {b.V("x")}),
                        b.Exists("x", b.Atom("Q", {b.V("x")}))});
  Substitution subst{{v.FindVariable("x"), b.C("A")}};
  FormulaPtr g = Substitute(&v, f, subst);
  EXPECT_EQ(PrintFormula(v, g), "P(A) & exists x. Q(x)");
}

TEST(SubstituteTest, AvoidsCapture) {
  Vocabulary v;
  FormulaBuilder b(&v);
  // exists y. R(x, y); substituting x := y must rename the bound y.
  FormulaPtr f = b.Exists("y", b.Atom("R", {b.V("x"), b.V("y")}));
  Substitution subst{{v.FindVariable("x"), b.V("y")}};
  FormulaPtr g = Substitute(&v, f, subst);
  ASSERT_EQ(g->kind(), FormulaKind::kExists);
  // The substituted occurrence must be the *free* y, not the bound one.
  const FormulaPtr& atom = g->child();
  EXPECT_EQ(atom->terms()[0].var(), v.FindVariable("y"));
  EXPECT_NE(atom->terms()[1].var(), v.FindVariable("y"));
  EXPECT_EQ(atom->terms()[1].var(), g->var());
}

TEST(SubstituteTest, SimultaneousSwap) {
  Vocabulary v;
  FormulaBuilder b(&v);
  FormulaPtr f = b.Atom("R", {b.V("x"), b.V("y")});
  Substitution subst{{v.FindVariable("x"), b.V("y")},
                     {v.FindVariable("y"), b.V("x")}};
  FormulaPtr g = Substitute(&v, f, subst);
  EXPECT_EQ(PrintFormula(v, g), "R(y, x)");
}

TEST(ClassifyTest, PositiveFormulas) {
  Vocabulary v;
  auto is_pos = [&v](const std::string& s) {
    return IsPositive(ParseFormula(&v, s).value());
  };
  EXPECT_TRUE(is_pos("P(x) & Q(x)"));
  EXPECT_TRUE(is_pos("exists x. P(x) | x = y"));
  EXPECT_TRUE(is_pos("!!P(x)"));
  EXPECT_FALSE(is_pos("!P(x)"));
  EXPECT_FALSE(is_pos("x != y"));
  EXPECT_FALSE(is_pos("P(x) -> Q(x)"));  // antecedent is negative
  EXPECT_TRUE(is_pos("forall x. true"));
}

TEST(ClassifyTest, FoPrefix) {
  Vocabulary v;
  ASSERT_OK_AND_ASSIGN(
      FormulaPtr sigma2,
      ParseFormula(&v, "exists x y. forall z. R(x, z) & R(y, z)"));
  PrefixShape shape = ClassifyFoPrefix(sigma2);
  EXPECT_TRUE(shape.prenex);
  EXPECT_EQ(shape.blocks, 2);
  EXPECT_TRUE(shape.starts_existential);
  EXPECT_TRUE(InSigmaFoK(sigma2, 2));
  EXPECT_FALSE(InSigmaFoK(sigma2, 1));
  EXPECT_TRUE(InSigmaFoK(sigma2, 3));

  ASSERT_OK_AND_ASSIGN(FormulaPtr pi1, ParseFormula(&v, "forall x. P(x)"));
  EXPECT_FALSE(InSigmaFoK(pi1, 1));  // starts universal with exactly k blocks
  EXPECT_TRUE(InSigmaFoK(pi1, 2));   // embeds with fewer blocks

  ASSERT_OK_AND_ASSIGN(FormulaPtr nonprenex,
                       ParseFormula(&v, "exists x. P(x) & exists y. Q(y)"));
  EXPECT_FALSE(ClassifyFoPrefix(nonprenex).prenex);
}

TEST(ClassifyTest, SoPrefix) {
  Vocabulary v;
  ASSERT_OK_AND_ASSIGN(
      FormulaPtr f,
      ParseFormula(&v, "exists2 S/1. forall2 T/1. forall x. S(x) | T(x)"));
  PrefixShape shape = ClassifySoPrefix(f);
  EXPECT_TRUE(shape.prenex);
  EXPECT_EQ(shape.blocks, 2);
  EXPECT_TRUE(shape.starts_existential);
  EXPECT_TRUE(InSigmaSoK(f, 2));
  EXPECT_FALSE(InSigmaSoK(f, 1));
}

TEST(QueryTest, ValidatesHead) {
  Vocabulary v;
  FormulaBuilder b(&v);
  FormulaPtr body = b.Atom("P", {b.V("x")});
  VarId x = v.FindVariable("x");
  EXPECT_TRUE(Query::Make({x}, body).ok());
  EXPECT_FALSE(Query::Make({}, body).ok());          // free var not in head
  EXPECT_FALSE(Query::Make({x, x}, body).ok());      // duplicate head var
  VarId y = v.AddVariable("y");
  EXPECT_TRUE(Query::Make({x, y}, body).ok());       // superset heads allowed
}

TEST(QueryTest, PrintRoundTrip) {
  Vocabulary v;
  ASSERT_OK_AND_ASSIGN(
      Query q, ParseQuery(&v, "(x, y) . exists z. R(x, z) & R(z, y)"));
  std::string printed = PrintQuery(v, q);
  ASSERT_OK_AND_ASSIGN(Query q2, ParseQuery(&v, printed));
  EXPECT_EQ(PrintQuery(v, q2), printed);
}

TEST(FormulaSizeTest, CountsNodes) {
  Vocabulary v;
  ASSERT_OK_AND_ASSIGN(FormulaPtr f, ParseFormula(&v, "P(x) & Q(x)"));
  EXPECT_EQ(FormulaSize(f), 3u);
}

TEST(IsFirstOrderTest, DetectsSoQuantifiers) {
  Vocabulary v;
  ASSERT_OK_AND_ASSIGN(FormulaPtr fo, ParseFormula(&v, "forall x. P(x)"));
  EXPECT_TRUE(IsFirstOrder(fo));
  ASSERT_OK_AND_ASSIGN(FormulaPtr so,
                       ParseFormula(&v, "forall x. exists2 S/1. S(x)"));
  EXPECT_FALSE(IsFirstOrder(so));
}

}  // namespace
}  // namespace lqdb
