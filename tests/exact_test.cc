#include <gtest/gtest.h>

#include "lqdb/cwdb/ph.h"
#include "lqdb/eval/answer.h"
#include "lqdb/eval/evaluator.h"
#include "lqdb/exact/brute.h"
#include "lqdb/exact/exact.h"
#include "lqdb/exact/parallel.h"
#include "lqdb/exact/ra_exact.h"
#include "lqdb/logic/parser.h"
#include "lqdb/logic/printer.h"
#include "testing.h"

namespace lqdb {
namespace {

using testing::RandomCwDatabase;
using testing::RandomDbParams;
using testing::RandomFormulaParams;
using testing::RandomQuery;

/// §2.2's running example: TEACHES(Socrates, Plato) with an unknown
/// identity (a null) thrown in.
class ExactTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(lb_.AddFact("TEACHES", {"Socrates", "Plato"}));
    unknown_ = lb_.AddUnknownConstant("Mystery");
  }

  Result<bool> Holds(const std::string& text) {
    auto q = ParseQuery(lb_.mutable_vocab(), text);
    if (!q.ok()) return q.status();
    ExactEvaluator exact(&lb_);
    return exact.Contains(q.value(), {});
  }

  CwDatabase lb_;
  ConstId unknown_;
};

TEST_F(ExactTest, PositiveFactsAreCertain) {
  ASSERT_OK_AND_ASSIGN(bool yes, Holds("TEACHES(Socrates, Plato)"));
  EXPECT_TRUE(yes);
  ASSERT_OK_AND_ASSIGN(bool no, Holds("TEACHES(Plato, Socrates)"));
  EXPECT_FALSE(no);
}

TEST_F(ExactTest, NegationOfKnownDistinctConstantsIsCertain) {
  ASSERT_OK_AND_ASSIGN(bool yes, Holds("Socrates != Plato"));
  EXPECT_TRUE(yes);
}

TEST_F(ExactTest, UnknownIdentityIsUncertainBothWays) {
  // Mystery may or may not be Socrates: neither the equality nor the
  // inequality is certain.
  ASSERT_OK_AND_ASSIGN(bool eq, Holds("Mystery = Socrates"));
  EXPECT_FALSE(eq);
  ASSERT_OK_AND_ASSIGN(bool neq, Holds("Mystery != Socrates"));
  EXPECT_FALSE(neq);
  // But Mystery is certainly *something* in the closed world.
  ASSERT_OK_AND_ASSIGN(
      bool closure,
      Holds("Mystery = Socrates | Mystery = Plato | Mystery = Mystery"));
  EXPECT_TRUE(closure);
}

TEST_F(ExactTest, NegatedAtomOverUnknownIsUncertain) {
  // TEACHES(Mystery, Plato) is not certain (Mystery might not be
  // Socrates), and ¬TEACHES(Mystery, Plato) is not certain either
  // (Mystery might be Socrates).
  ASSERT_OK_AND_ASSIGN(bool pos, Holds("TEACHES(Mystery, Plato)"));
  EXPECT_FALSE(pos);
  ASSERT_OK_AND_ASSIGN(bool neg, Holds("!TEACHES(Mystery, Plato)"));
  EXPECT_FALSE(neg);
}

TEST_F(ExactTest, ExplicitDistinctnessResolvesNegation) {
  ASSERT_OK(lb_.AddDistinct("Mystery", "Socrates"));
  ASSERT_OK_AND_ASSIGN(bool neg, Holds("!TEACHES(Mystery, Plato)"));
  EXPECT_TRUE(neg);
}

TEST_F(ExactTest, AnswerReturnsConstantTuples) {
  ASSERT_OK_AND_ASSIGN(
      Query q, ParseQuery(lb_.mutable_vocab(), "(x) . TEACHES(Socrates, x)"));
  ExactEvaluator exact(&lb_);
  ASSERT_OK_AND_ASSIGN(Relation answer, exact.Answer(q));
  EXPECT_EQ(answer.size(), 1u);
  EXPECT_TRUE(answer.Contains({lb_.vocab().FindConstant("Plato")}));
}

TEST_F(ExactTest, CounterexampleIsAValidCertificate) {
  ASSERT_OK_AND_ASSIGN(
      Query q,
      ParseQuery(lb_.mutable_vocab(), "TEACHES(Mystery, Plato)"));
  ExactEvaluator exact(&lb_);
  std::optional<Counterexample> cex;
  ASSERT_OK_AND_ASSIGN(bool in, exact.Contains(q, {}, &cex));
  EXPECT_FALSE(in);
  ASSERT_TRUE(cex.has_value());
  // The certificate must respect the axioms and falsify the sentence.
  EXPECT_TRUE(RespectsUniqueness(lb_, cex->h));
  PhysicalDatabase image = ApplyMapping(lb_, cex->h);
  Evaluator eval(&image);
  ASSERT_OK_AND_ASSIGN(bool sat, eval.Satisfies(q.body()));
  EXPECT_FALSE(sat);
}

TEST_F(ExactTest, MappingBudgetIsEnforced) {
  for (int i = 0; i < 6; ++i) {
    lb_.AddUnknownConstant("u" + std::to_string(i));
  }
  ASSERT_OK_AND_ASSIGN(
      Query q, ParseQuery(lb_.mutable_vocab(), "TEACHES(Socrates, Plato)"));
  ExactOptions options;
  options.max_mappings = 10;
  ExactEvaluator exact(&lb_, options);
  EXPECT_EQ(exact.Contains(q, {}).status().code(),
            StatusCode::kResourceExhausted);
}

TEST_F(ExactTest, CandidateValidation) {
  ASSERT_OK_AND_ASSIGN(
      Query q, ParseQuery(lb_.mutable_vocab(), "(x) . TEACHES(x, Plato)"));
  ExactEvaluator exact(&lb_);
  EXPECT_FALSE(exact.Contains(q, {}).ok());          // arity mismatch
  EXPECT_FALSE(exact.Contains(q, {9999}).ok());      // unknown constant
}

/// Corollary 2: for fully specified databases, Q(LB) = Q(Ph₁(LB)).
TEST(Corollary2Test, FullySpecifiedMatchesPh1) {
  for (uint64_t seed = 0; seed < 15; ++seed) {
    RandomDbParams params;
    params.num_known = 4;
    params.num_unknown = 0;  // fully specified
    auto lb = RandomCwDatabase(seed, params);
    ASSERT_TRUE(lb->IsFullySpecified());

    RandomFormulaParams fparams;
    fparams.free_vars = {"hx"};
    fparams.max_depth = 3;
    Query q = RandomQuery(seed * 7 + 1, lb->mutable_vocab(), fparams);

    ExactEvaluator exact(lb.get());
    ASSERT_OK_AND_ASSIGN(Relation logical, exact.Answer(q));

    PhysicalDatabase ph1 = MakePh1(*lb);
    Evaluator eval(&ph1);
    ASSERT_OK_AND_ASSIGN(Relation physical, eval.Answer(q));

    EXPECT_EQ(logical, physical)
        << "seed " << seed << " query " << PrintQuery(lb->vocab(), q);
  }
}

/// The canonical (partition-based) evaluator agrees with literally
/// quantifying over all |C|^|C| mappings.
TEST(ExactVsBruteTest, PartitionCanonicalizationIsSound) {
  for (uint64_t seed = 0; seed < 18; ++seed) {
    RandomDbParams params;
    params.num_known = 2;
    params.num_unknown = 2;
    params.num_facts = 4;
    auto lb = RandomCwDatabase(seed, params);

    RandomFormulaParams fparams;
    fparams.free_vars = {"hx"};
    fparams.max_depth = 3;
    Query q = RandomQuery(seed * 13 + 5, lb->mutable_vocab(), fparams);

    ExactEvaluator exact(lb.get());
    ASSERT_OK_AND_ASSIGN(Relation canonical, exact.Answer(q));

    BruteForceEvaluator brute(lb.get());
    ASSERT_OK_AND_ASSIGN(Relation brute_answer, brute.Answer(q));

    EXPECT_EQ(canonical, brute_answer)
        << "seed " << seed << " query " << PrintQuery(lb->vocab(), q);
  }
}

/// Strongest cross-check: Theorem 1 evaluation agrees with deciding
/// T ⊨_f φ(c) straight from the definition by enumerating every finite
/// interpretation over subsets of C.
TEST(ExactVsModelEnumerationTest, AgreesOnTinyDatabases) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    RandomDbParams params;
    params.num_known = 2;
    params.num_unknown = 1;
    params.num_unary_preds = 1;
    params.num_binary_preds = 0;  // keep the model space tractable
    params.num_facts = 2;
    auto lb = RandomCwDatabase(seed, params);

    RandomFormulaParams fparams;
    fparams.free_vars = {"hx"};
    fparams.max_depth = 2;
    Query q = RandomQuery(seed * 3 + 2, lb->mutable_vocab(), fparams);

    ExactEvaluator exact(lb.get());
    for (ConstId c = 0; c < lb->num_constants(); ++c) {
      ASSERT_OK_AND_ASSIGN(bool via_thm1, exact.Contains(q, {c}));
      ASSERT_OK_AND_ASSIGN(bool via_models,
                           ModelEnumerationContains(lb.get(), q, {c}));
      EXPECT_EQ(via_thm1, via_models)
          << "seed " << seed << " c " << lb->vocab().ConstantName(c)
          << " query " << PrintQuery(lb->vocab(), q);
    }
  }
}

TEST(PossibleAnswerTest, CertainIsContainedInPossible) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    RandomDbParams params;
    params.num_known = 3;
    params.num_unknown = 2;
    auto lb = RandomCwDatabase(seed, params);
    RandomFormulaParams fparams;
    fparams.free_vars = {"hx"};
    fparams.max_depth = 3;
    Query q = RandomQuery(seed * 19 + 11, lb->mutable_vocab(), fparams);

    ExactEvaluator exact(lb.get());
    ASSERT_OK_AND_ASSIGN(Relation certain, exact.Answer(q));
    ASSERT_OK_AND_ASSIGN(Relation possible, exact.PossibleAnswer(q));
    EXPECT_TRUE(certain.IsSubsetOf(possible))
        << "seed " << seed << " query " << PrintQuery(lb->vocab(), q);
  }
}

TEST(PossibleAnswerTest, SuspectsStory) {
  CwDatabase lb;
  ConstId jack = lb.AddUnknownConstant("Jack");
  ConstId disraeli = lb.AddKnownConstant("Disraeli");
  ConstId victoria = lb.AddKnownConstant("Victoria");
  PredId murderer = lb.AddPredicate("MURDERER", 1).value();
  ASSERT_OK(lb.AddFact(murderer, {jack}));
  ASSERT_OK(lb.AddDistinct(jack, victoria));

  ASSERT_OK_AND_ASSIGN(Query q, ParseQuery(lb.mutable_vocab(),
                                           "(x) . MURDERER(x)"));
  ExactEvaluator exact(&lb);
  ASSERT_OK_AND_ASSIGN(Relation certain, exact.Answer(q));
  ASSERT_OK_AND_ASSIGN(Relation possible, exact.PossibleAnswer(q));

  // Certainly the murderer: only Jack. Possibly: Jack or Disraeli — but
  // never the Queen.
  EXPECT_EQ(certain.size(), 1u);
  EXPECT_TRUE(certain.Contains({jack}));
  EXPECT_EQ(possible.size(), 2u);
  EXPECT_TRUE(possible.Contains({jack}));
  EXPECT_TRUE(possible.Contains({disraeli}));
  EXPECT_FALSE(possible.Contains({victoria}));
}

TEST(PossibleAnswerTest, WitnessIsAValidModel) {
  CwDatabase lb;
  ConstId jack = lb.AddUnknownConstant("Jack");
  ConstId bob = lb.AddKnownConstant("Bob");
  PredId m = lb.AddPredicate("M", 1).value();
  ASSERT_OK(lb.AddFact(m, {jack}));

  ASSERT_OK_AND_ASSIGN(Query q, ParseQuery(lb.mutable_vocab(), "M(Bob)"));
  ExactEvaluator exact(&lb);
  std::optional<Counterexample> witness;
  ASSERT_OK_AND_ASSIGN(bool possible, exact.IsPossible(q, {}, &witness));
  EXPECT_TRUE(possible);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(RespectsUniqueness(lb, witness->h));
  EXPECT_EQ(witness->h[bob], witness->h[jack]);  // the merge that did it
  PhysicalDatabase image = ApplyMapping(lb, witness->h);
  Evaluator eval(&image);
  ASSERT_OK_AND_ASSIGN(bool sat, eval.Satisfies(q.body()));
  EXPECT_TRUE(sat);
}

TEST(PossibleAnswerTest, ContradictionsAreImpossible) {
  CwDatabase lb;
  lb.AddKnownConstant("A");
  lb.AddUnknownConstant("U");
  ASSERT_OK_AND_ASSIGN(Query q, ParseQuery(lb.mutable_vocab(),
                                           "exists x. x != x"));
  ExactEvaluator exact(&lb);
  ASSERT_OK_AND_ASSIGN(bool possible, exact.IsPossible(q, {}));
  EXPECT_FALSE(possible);
}

TEST(PossibleAnswerTest, FullySpecifiedCollapsesPossibleToCertain) {
  for (uint64_t seed = 30; seed < 36; ++seed) {
    RandomDbParams params;
    params.num_known = 4;
    params.num_unknown = 0;
    auto lb = RandomCwDatabase(seed, params);
    RandomFormulaParams fparams;
    fparams.free_vars = {"hx"};
    fparams.max_depth = 3;
    Query q = RandomQuery(seed, lb->mutable_vocab(), fparams);

    ExactEvaluator exact(lb.get());
    ASSERT_OK_AND_ASSIGN(Relation certain, exact.Answer(q));
    ASSERT_OK_AND_ASSIGN(Relation possible, exact.PossibleAnswer(q));
    EXPECT_EQ(certain, possible) << "seed " << seed;
  }
}

TEST(ExactSecondOrderTest, EvaluatesSoQueries) {
  CwDatabase lb;
  ASSERT_OK(lb.AddFact("P", {"A"}));
  lb.AddKnownConstant("B");
  // ∃S with S = P pointwise: certainly true.
  ASSERT_OK_AND_ASSIGN(
      Query q1,
      ParseQuery(lb.mutable_vocab(),
                 "exists2 S/1. forall x. S(x) <-> P(x)"));
  ExactEvaluator exact(&lb);
  ASSERT_OK_AND_ASSIGN(bool yes, exact.Contains(q1, {}));
  EXPECT_TRUE(yes);
  // ∀S: S contains A — certainly false.
  ASSERT_OK_AND_ASSIGN(
      Query q2, ParseQuery(lb.mutable_vocab(), "forall2 S/1. S(A)"));
  ASSERT_OK_AND_ASSIGN(bool no, exact.Contains(q2, {}));
  EXPECT_FALSE(no);
}

TEST(ExactEdgeCaseTest, EmptyDatabaseIsRejected) {
  CwDatabase lb;
  Vocabulary* vocab = lb.mutable_vocab();
  auto q = ParseQuery(vocab, "true");
  ASSERT_TRUE(q.ok());
  ExactEvaluator exact(&lb);
  EXPECT_EQ(exact.Contains(q.value(), {}).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ExactEdgeCaseTest, TautologyAndContradiction) {
  CwDatabase lb;
  lb.AddUnknownConstant("U");
  lb.AddKnownConstant("A");
  Vocabulary* vocab = lb.mutable_vocab();
  ExactEvaluator exact(&lb);

  ASSERT_OK_AND_ASSIGN(Query taut, ParseQuery(vocab, "forall x. x = x"));
  ASSERT_OK_AND_ASSIGN(bool yes, exact.Contains(taut, {}));
  EXPECT_TRUE(yes);

  ASSERT_OK_AND_ASSIGN(Query contra, ParseQuery(vocab, "exists x. x != x"));
  ASSERT_OK_AND_ASSIGN(bool no, exact.Contains(contra, {}));
  EXPECT_FALSE(no);
}

TEST(ExactEdgeCaseTest, QueryMayIntroduceFreshConstants) {
  // A constant first mentioned by a query extends C with unknown identity:
  // the exact evaluator treats it like any other null.
  CwDatabase lb;
  ASSERT_OK(lb.AddFact("P", {"A"}));
  ExactEvaluator exact(&lb);
  Vocabulary* vocab = lb.mutable_vocab();

  ASSERT_OK_AND_ASSIGN(Query q1, ParseQuery(vocab, "Zeus = Zeus"));
  ASSERT_OK_AND_ASSIGN(bool trivially, exact.Contains(q1, {}));
  EXPECT_TRUE(trivially);

  // Zeus might be A, so neither P(Zeus) nor !P(Zeus) is certain.
  ASSERT_OK_AND_ASSIGN(Query q2, ParseQuery(vocab, "P(Zeus)"));
  ASSERT_OK_AND_ASSIGN(bool pos, exact.Contains(q2, {}));
  EXPECT_FALSE(pos);
  ASSERT_OK_AND_ASSIGN(Query q3, ParseQuery(vocab, "!P(Zeus)"));
  ASSERT_OK_AND_ASSIGN(bool neg, exact.Contains(q3, {}));
  EXPECT_FALSE(neg);
}

TEST(ExactEdgeCaseTest, DomainClosureIsCertain) {
  // The hidden domain-closure axiom: everything equals some constant.
  CwDatabase lb;
  lb.AddKnownConstant("A");
  lb.AddUnknownConstant("U");
  Vocabulary* vocab = lb.mutable_vocab();
  ExactEvaluator exact(&lb);
  ASSERT_OK_AND_ASSIGN(Query q,
                       ParseQuery(vocab, "forall x. x = A | x = U"));
  ASSERT_OK_AND_ASSIGN(bool yes, exact.Contains(q, {}));
  EXPECT_TRUE(yes);
}

TEST(CandidateSpaceTest, ZeroConstantsYieldEmptySpaceForPositiveArity) {
  // Regression: the odometer used to emit rows over an empty constant set,
  // and the per-mapping sweep then indexed past the end of `h`.
  EXPECT_TRUE(AllCandidateTuples(1, 0).empty());
  EXPECT_TRUE(AllCandidateTuples(3, 0).empty());
  // Boolean queries keep their single empty-tuple candidate.
  EXPECT_EQ(AllCandidateTuples(0, 0), std::vector<Tuple>{Tuple{}});
  EXPECT_EQ(AllCandidateTuples(0, 4), std::vector<Tuple>{Tuple{}});
  // The nonempty odometer is unchanged.
  EXPECT_EQ(AllCandidateTuples(2, 3).size(), 9u);
}

TEST(CandidateSpaceTest, ConstantFreeDatabaseFailsCleanlyOnAllEngines) {
  // A schema with no constants cannot model anything (domains are
  // nonempty); every Theorem 1 engine must surface that as a clean
  // FailedPrecondition from Answer, PossibleAnswer and Contains instead of
  // reading out of bounds.
  CwDatabase lb;
  ASSERT_OK(lb.AddPredicate("P", 1).status());
  Vocabulary* vocab = lb.mutable_vocab();
  ASSERT_OK_AND_ASSIGN(Query q, ParseQuery(vocab, "(x) . P(x)"));
  ASSERT_OK_AND_ASSIGN(Query boolean, ParseQuery(vocab, "true"));

  ExactEvaluator exact(&lb);
  EXPECT_EQ(exact.Answer(q).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(exact.PossibleAnswer(q).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(exact.Contains(boolean, {}).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(exact.IsPossible(boolean, {}).status().code(),
            StatusCode::kFailedPrecondition);

  BruteForceEvaluator brute(&lb);
  EXPECT_EQ(brute.Answer(q).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(brute.Contains(boolean, {}).status().code(),
            StatusCode::kFailedPrecondition);

  ParallelExactOptions options;
  options.threads = 2;
  ParallelExactEvaluator parallel(&lb, options);
  EXPECT_EQ(parallel.Answer(q).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(parallel.PossibleAnswer(q).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(parallel.Contains(boolean, {}).status().code(),
            StatusCode::kFailedPrecondition);

  // ra-exact checks the precondition before compiling: the compiled plan's
  // cardinality stats and the enumeration both assume a nonempty `C`.
  RaExactEvaluator ra(&lb);
  EXPECT_EQ(ra.Answer(q).status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(ra.PossibleAnswer(q).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(ra.Contains(boolean, {}).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(SaturatingPowerTest, ComputesExactIntegerPowers) {
  EXPECT_EQ(SaturatingPower(0, 0), 1u);   // the one empty mapping
  EXPECT_EQ(SaturatingPower(0, 3), 0u);
  EXPECT_EQ(SaturatingPower(7, 0), 1u);
  EXPECT_EQ(SaturatingPower(3, 4), 81u);
  // 15^15 is not representable in a double's 53-bit mantissa — the exact
  // integer is what the brute-force budget gate must compare against.
  EXPECT_EQ(SaturatingPower(15, 15), 437893890380859375ull);
  EXPECT_EQ(SaturatingPower(2, 63), 1ull << 63);
}

TEST(SaturatingPowerTest, SaturatesInsteadOfOverflowing) {
  EXPECT_EQ(SaturatingPower(2, 64), UINT64_MAX);
  EXPECT_EQ(SaturatingPower(1000000, 20), UINT64_MAX);
  EXPECT_EQ(SaturatingPower(UINT64_MAX, 2), UINT64_MAX);
}

TEST(SaturatingPowerTest, BruteBudgetGateIsExactAtTheThreshold) {
  // 3 constants → exactly 27 mappings. A budget of 27 must pass and 26
  // must trip, for Contains and Answer alike — the gate the double-based
  // std::pow check got wrong near the threshold.
  CwDatabase lb;
  for (int i = 0; i < 3; ++i) {
    lb.AddUnknownConstant("U" + std::to_string(i));
  }
  PredId p = lb.AddPredicate("P", 1).value();
  ASSERT_OK(lb.AddFact(p, {0}));
  Vocabulary* vocab = lb.mutable_vocab();
  ASSERT_OK_AND_ASSIGN(Query q, ParseQuery(vocab, "(x) . P(x)"));

  BruteOptions exact_budget;
  exact_budget.max_mappings = 27;
  BruteForceEvaluator roomy(&lb, exact_budget);
  EXPECT_OK(roomy.Answer(q).status());
  EXPECT_OK(roomy.Contains(q, {0}).status());

  BruteOptions tight_budget;
  tight_budget.max_mappings = 26;
  BruteForceEvaluator tight(&lb, tight_budget);
  EXPECT_EQ(tight.Answer(q).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(tight.Contains(q, {0}).status().code(),
            StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace lqdb
