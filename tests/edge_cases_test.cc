#include <gtest/gtest.h>

#include <string>

#include "lqdb/approx/alpha.h"
#include "lqdb/approx/approx.h"
#include "lqdb/cwdb/ph.h"
#include "lqdb/cwdb/theory.h"
#include "lqdb/eval/answer.h"
#include "lqdb/eval/evaluator.h"
#include "lqdb/exact/exact.h"
#include "lqdb/logic/parser.h"
#include "lqdb/logic/printer.h"
#include "lqdb/util/rng.h"
#include "testing.h"

namespace lqdb {
namespace {

// ---------------------------------------------------------------------------
// Nullary predicates (propositional facts) through every layer.
// ---------------------------------------------------------------------------

TEST(NullaryPredicateTest, FactsTheoryAndEvaluation) {
  CwDatabase lb;
  lb.AddKnownConstant("Anchor");  // models need a nonempty domain
  PredId open = lb.AddPredicate("SHOP_OPEN", 0).value();
  PredId closed = lb.AddPredicate("SHOP_CLOSED", 0).value();
  ASSERT_OK(lb.AddFact(open, {}));

  // Theory: completion of the factless proposition is its negation.
  Theory theory = TheoryOf(&lb);
  std::string text = PrintTheory(lb.vocab(), theory);
  EXPECT_NE(text.find("SHOP_OPEN()"), std::string::npos);
  EXPECT_NE(text.find("!SHOP_CLOSED()"), std::string::npos);

  ExactEvaluator exact(&lb);
  Vocabulary* vocab = lb.mutable_vocab();
  ASSERT_OK_AND_ASSIGN(Query q_open, ParseQuery(vocab, "SHOP_OPEN()"));
  ASSERT_OK_AND_ASSIGN(bool open_sure, exact.Contains(q_open, {}));
  EXPECT_TRUE(open_sure);
  ASSERT_OK_AND_ASSIGN(Query q_closed,
                       ParseQuery(vocab, "!SHOP_CLOSED()"));
  ASSERT_OK_AND_ASSIGN(bool closed_sure, exact.Contains(q_closed, {}));
  EXPECT_TRUE(closed_sure);
  (void)closed;
}

TEST(NullaryPredicateTest, ApproximationHandlesNegatedPropositions) {
  CwDatabase lb;
  lb.AddKnownConstant("Anchor");
  PredId open = lb.AddPredicate("OPEN", 0).value();
  lb.AddPredicate("CLOSED", 0).value();
  ASSERT_OK(lb.AddFact(open, {}));

  ASSERT_OK_AND_ASSIGN(std::unique_ptr<ApproxEvaluator> approx,
                       ApproxEvaluator::Make(&lb, ApproxOptions{}));
  Vocabulary* vocab = lb.mutable_vocab();
  // ¬CLOSED() is certain (completion axiom) and the α transform must get
  // it: α_CLOSED() is vacuously true (no facts to agree with).
  ASSERT_OK_AND_ASSIGN(Query q, ParseQuery(vocab, "!CLOSED()"));
  ASSERT_OK_AND_ASSIGN(Relation answer, approx->Answer(q));
  EXPECT_TRUE(BooleanAnswer(answer));
  // ¬OPEN() is not certain — indeed it is certainly false — and must not
  // be claimed: α_OPEN() requires disagreeing with the stored empty
  // tuple, which is impossible.
  ASSERT_OK_AND_ASSIGN(Query q2, ParseQuery(vocab, "!OPEN()"));
  ASSERT_OK_AND_ASSIGN(Relation answer2, approx->Answer(q2));
  EXPECT_FALSE(BooleanAnswer(answer2));
}

// ---------------------------------------------------------------------------
// Lemma 10 at higher arity: ternary predicates, longer disagreement chains.
// ---------------------------------------------------------------------------

TEST(TernaryAlphaTest, SyntacticMatchesSemanticAtArity3) {
  CwDatabase lb;
  ConstId a = lb.AddKnownConstant("A");
  ConstId b = lb.AddKnownConstant("B");
  ConstId u = lb.AddUnknownConstant("U");
  ConstId w = lb.AddUnknownConstant("W");
  PredId t = lb.AddPredicate("T3", 3).value();
  ASSERT_OK(lb.AddFact(t, {a, u, w}));
  ASSERT_OK(lb.AddFact(t, {u, u, b}));
  ASSERT_OK_AND_ASSIGN(Ph2 ph2, MakePh2(&lb, Ph2Options{}));

  std::vector<VarId> xs;
  for (int i = 0; i < 3; ++i) {
    xs.push_back(lb.mutable_vocab()->FreshVariable("e" + std::to_string(i)));
  }
  FormulaPtr alpha = BuildAlpha(lb.mutable_vocab(), t, ph2.ne, xs);
  Evaluator eval(&ph2.db);

  const ConstId n = static_cast<ConstId>(lb.num_constants());
  Tuple probe(3, 0);
  int checked = 0;
  while (true) {
    std::map<VarId, Value> binding;
    for (int i = 0; i < 3; ++i) binding[xs[i]] = probe[i];
    ASSERT_OK_AND_ASSIGN(bool syntactic, eval.SatisfiesWith(alpha, binding));
    EXPECT_EQ(syntactic, AlphaHolds(lb, t, probe))
        << TupleToString(probe, [&](Value v) {
             return lb.vocab().ConstantName(v);
           });
    ++checked;
    size_t pos = 0;
    while (pos < probe.size() && ++probe[pos] == n) {
      probe[pos] = 0;
      ++pos;
    }
    if (pos == probe.size()) break;
  }
  EXPECT_EQ(checked, 64);  // 4^3 probes
}

TEST(TernaryAlphaTest, ChainedDisagreementThroughSharedPositions) {
  CwDatabase lb;
  ConstId a = lb.AddKnownConstant("A");
  ConstId b = lb.AddKnownConstant("B");
  ConstId u = lb.AddUnknownConstant("U");
  // Probe (u, u, u) against fact (a, u, b): merging forces u~a and u~b,
  // hence a~b — which is forbidden.
  EXPECT_TRUE(Disagree(lb, {u, u, u}, {a, u, b}));
  // Against (a, u, u): only u~a is forced — satisfiable.
  EXPECT_FALSE(Disagree(lb, {u, u, u}, {a, u, u}));
}

// ---------------------------------------------------------------------------
// Parser robustness: fuzzing with deterministic random garbage.
// ---------------------------------------------------------------------------

TEST(ParserFuzzTest, RandomGarbageNeverCrashes) {
  const std::string alphabet =
      "abcXY01(),.!&|<->= \t_exists2forall/#\"'";
  for (uint64_t seed = 0; seed < 300; ++seed) {
    Rng rng(seed);
    std::string input;
    const size_t len = rng.Below(60);
    for (size_t i = 0; i < len; ++i) {
      input += alphabet[rng.Below(alphabet.size())];
    }
    Vocabulary v;
    auto formula = ParseFormula(&v, input);   // must not crash or hang
    auto query = ParseQuery(&v, input);
    if (formula.ok()) {
      // Whatever parses must print and re-parse stably.
      std::string printed = PrintFormula(v, formula.value());
      auto again = ParseFormula(&v, printed);
      ASSERT_TRUE(again.ok()) << "seed " << seed << ": " << printed;
      EXPECT_EQ(PrintFormula(v, again.value()), printed) << "seed " << seed;
    }
    (void)query;
  }
}

TEST(ParserFuzzTest, TokenSoupNeverCrashes) {
  const char* tokens[] = {"exists", "forall", "exists2", "forall2", "P",
                          "x",      "A",      "(",       ")",       ",",
                          ".",      "=",      "!=",      "!",       "&",
                          "|",      "->",     "<->",     "/",       "1"};
  for (uint64_t seed = 0; seed < 300; ++seed) {
    Rng rng(seed);
    std::string input;
    const size_t len = rng.Below(25);
    for (size_t i = 0; i < len; ++i) {
      input += tokens[rng.Below(std::size(tokens))];
      input += " ";
    }
    Vocabulary v;
    auto result = ParseFormula(&v, input);
    (void)result;  // any Status is fine; crashing is not
  }
}

// ---------------------------------------------------------------------------
// Degenerate databases.
// ---------------------------------------------------------------------------

TEST(DegenerateDbTest, SingleUnknownConstant) {
  CwDatabase lb;
  lb.AddUnknownConstant("Only");
  ExactEvaluator exact(&lb);
  Vocabulary* vocab = lb.mutable_vocab();
  ASSERT_OK_AND_ASSIGN(Query q, ParseQuery(vocab, "forall x. x = Only"));
  ASSERT_OK_AND_ASSIGN(bool certain, exact.Contains(q, {}));
  EXPECT_TRUE(certain);  // domain closure with one constant
  EXPECT_EQ(CountCanonicalMappings(lb), 1u);
}

TEST(DegenerateDbTest, AllUnknownsCollapseCount) {
  // With u unconstrained unknowns the mapping space is the Bell number,
  // and every Boolean positive query behaves as over Ph1.
  CwDatabase lb;
  for (int i = 0; i < 4; ++i) {
    lb.AddUnknownConstant("u" + std::to_string(i));
  }
  PredId p = lb.AddPredicate("P", 1).value();
  ASSERT_OK(lb.AddFact(p, {0}));
  EXPECT_EQ(CountCanonicalMappings(lb), 15u);  // B(4)

  ExactEvaluator exact(&lb);
  Vocabulary* vocab = lb.mutable_vocab();
  ASSERT_OK_AND_ASSIGN(Query q, ParseQuery(vocab, "exists x. P(x)"));
  ASSERT_OK_AND_ASSIGN(bool certain, exact.Contains(q, {}));
  EXPECT_TRUE(certain);
}

TEST(DegenerateDbTest, EverythingMightBeEqual) {
  // Two unknowns, no axioms: even x != y for distinct ids is uncertain,
  // and so is x = y — classic null semantics.
  CwDatabase lb;
  lb.AddUnknownConstant("n1");
  lb.AddUnknownConstant("n2");
  ExactEvaluator exact(&lb);
  Vocabulary* vocab = lb.mutable_vocab();
  ASSERT_OK_AND_ASSIGN(Query eq, ParseQuery(vocab, "n1 = n2"));
  ASSERT_OK_AND_ASSIGN(bool eq_sure, exact.Contains(eq, {}));
  EXPECT_FALSE(eq_sure);
  ASSERT_OK_AND_ASSIGN(Query neq, ParseQuery(vocab, "n1 != n2"));
  ASSERT_OK_AND_ASSIGN(bool neq_sure, exact.Contains(neq, {}));
  EXPECT_FALSE(neq_sure);
}

// ---------------------------------------------------------------------------
// Answer arity 2: exact/approx agreement sweeps beyond the arity-1 pools.
// ---------------------------------------------------------------------------

TEST(BinaryHeadTest, SoundnessAndPositiveCompletenessAtArity2) {
  for (uint64_t seed = 500; seed < 506; ++seed) {
    testing::RandomDbParams params;
    params.num_known = 3;
    params.num_unknown = 2;
    auto lb = testing::RandomCwDatabase(seed, params);

    testing::RandomFormulaParams fparams;
    fparams.free_vars = {"hx", "hy"};
    fparams.max_depth = 3;
    Query q = testing::RandomQuery(seed, lb->mutable_vocab(), fparams);

    ExactEvaluator exact(lb.get());
    ASSERT_OK_AND_ASSIGN(Relation exact_answer, exact.Answer(q));
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<ApproxEvaluator> approx,
                         ApproxEvaluator::Make(lb.get(), ApproxOptions{}));
    ASSERT_OK_AND_ASSIGN(Relation approx_answer, approx->Answer(q));
    EXPECT_TRUE(approx_answer.IsSubsetOf(exact_answer)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace lqdb
