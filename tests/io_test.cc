#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "lqdb/exact/exact.h"
#include "lqdb/io/text_format.h"
#include "lqdb/logic/parser.h"
#include "testing.h"

namespace lqdb {
namespace {

constexpr const char* kSample = R"(# the Jack-the-Ripper world
unknown JackTheRipper
known Victoria Disraeli
predicate MURDERER/1
fact MURDERER(JackTheRipper)
fact IN_LONDON(JackTheRipper, London)
distinct JackTheRipper Victoria
)";

TEST(TextFormatTest, ParsesSampleDatabase) {
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<CwDatabase> lb,
                       ParseCwDatabase(kSample));
  const Vocabulary& v = lb->vocab();
  ConstId jack = v.FindConstant("JackTheRipper");
  ASSERT_NE(jack, Vocabulary::kNotFound);
  EXPECT_FALSE(lb->IsKnown(jack));
  EXPECT_TRUE(lb->IsKnown(v.FindConstant("Victoria")));
  EXPECT_TRUE(lb->IsKnown(v.FindConstant("London")));  // from the fact
  EXPECT_EQ(lb->NumFacts(), 2u);
  EXPECT_TRUE(lb->AreDistinct(jack, v.FindConstant("Victoria")));
  EXPECT_FALSE(lb->AreDistinct(jack, v.FindConstant("Disraeli")));
  EXPECT_EQ(v.PredicateArity(v.FindPredicate("IN_LONDON")), 2);
}

TEST(TextFormatTest, RoundTripsThroughSerialize) {
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<CwDatabase> lb,
                       ParseCwDatabase(kSample));
  std::string text = SerializeCwDatabase(*lb);
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<CwDatabase> again,
                       ParseCwDatabase(text));
  EXPECT_EQ(lb->num_constants(), again->num_constants());
  EXPECT_EQ(lb->NumFacts(), again->NumFacts());
  EXPECT_EQ(lb->explicit_distinct().size(),
            again->explicit_distinct().size());
  for (ConstId c = 0; c < lb->num_constants(); ++c) {
    const std::string& name = lb->vocab().ConstantName(c);
    ConstId c2 = again->vocab().FindConstant(name);
    ASSERT_NE(c2, Vocabulary::kNotFound) << name;
    EXPECT_EQ(lb->IsKnown(c), again->IsKnown(c2)) << name;
  }
  // Same answers to a query on both copies.
  auto q1 = ParseQuery(lb->mutable_vocab(), "(x) . !MURDERER(x)");
  auto q2 = ParseQuery(again->mutable_vocab(), "(x) . !MURDERER(x)");
  ExactEvaluator e1(lb.get()), e2(again.get());
  EXPECT_EQ(e1.Answer(q1.value()).value().size(),
            e2.Answer(q2.value()).value().size());
}

TEST(TextFormatTest, RandomDatabasesRoundTrip) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    auto lb = testing::RandomCwDatabase(seed, testing::RandomDbParams{});
    std::string text = SerializeCwDatabase(*lb);
    auto again = ParseCwDatabase(text);
    ASSERT_TRUE(again.ok()) << again.status() << "\n" << text;
    EXPECT_EQ(SerializeCwDatabase(*again.value()), text) << "seed " << seed;
  }
}

TEST(TextFormatTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseCwDatabase("teleport Enterprise").ok());
  EXPECT_FALSE(ParseCwDatabase("fact P(").ok());
  EXPECT_FALSE(ParseCwDatabase("fact P").ok());
  EXPECT_FALSE(ParseCwDatabase("distinct OnlyOne").ok());
  EXPECT_FALSE(ParseCwDatabase("distinct A A").ok());
  EXPECT_FALSE(ParseCwDatabase("predicate P").ok());
  EXPECT_FALSE(ParseCwDatabase("predicate P/x").ok());
  EXPECT_FALSE(ParseCwDatabase("known").ok());
  EXPECT_FALSE(ParseCwDatabase("fact P(a) \n predicate P/3").ok());
}

TEST(TextFormatTest, RejectsArityWithTrailingGarbageAndOverflow) {
  // std::stoi's prefix parsing used to read "P/2x" as arity 2 and threw
  // (instead of returning a Status) on arities beyond int range; the
  // strict parse rejects both with a line diagnostic.
  auto garbage = ParseCwDatabase("predicate P/2x");
  ASSERT_FALSE(garbage.ok());
  EXPECT_NE(garbage.status().message().find("bad arity"), std::string::npos)
      << garbage.status();
  EXPECT_FALSE(ParseCwDatabase("predicate P/-1").ok());
  EXPECT_FALSE(ParseCwDatabase("predicate P/99999999999999999999").ok());
  EXPECT_FALSE(ParseCwDatabase("predicate P/").ok());
}

TEST(TextFormatTest, RejectsKnownUnknownConflict) {
  EXPECT_FALSE(ParseCwDatabase("known A\nunknown A").ok());
  // The reverse order upgrades silently — 'known' is the stronger claim.
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<CwDatabase> lb,
                       ParseCwDatabase("unknown A\nknown A"));
  EXPECT_TRUE(lb->IsKnown(lb->vocab().FindConstant("A")));
}

TEST(TextFormatTest, CommentsAndBlankLines) {
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<CwDatabase> lb,
                       ParseCwDatabase("\n\n# nothing\n   \nknown A # end\n"));
  EXPECT_EQ(lb->num_constants(), 1u);
}

TEST(TextFormatTest, DistinctInternsMissingConstantsAsUnknown) {
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<CwDatabase> lb,
                       ParseCwDatabase("distinct Ghost1 Ghost2"));
  EXPECT_FALSE(lb->IsKnown(lb->vocab().FindConstant("Ghost1")));
  EXPECT_TRUE(lb->AreDistinct(lb->vocab().FindConstant("Ghost1"),
                              lb->vocab().FindConstant("Ghost2")));
}

TEST(TextFormatTest, FileRoundTrip) {
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<CwDatabase> lb,
                       ParseCwDatabase(kSample));
  const std::string path = ::testing::TempDir() + "/lqdb_io_test.lqdb";
  ASSERT_OK(SaveCwDatabase(*lb, path));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<CwDatabase> again,
                       LoadCwDatabase(path));
  EXPECT_EQ(SerializeCwDatabase(*again), SerializeCwDatabase(*lb));
  std::remove(path.c_str());
}

TEST(TextFormatTest, LoadMissingFileFails) {
  EXPECT_EQ(LoadCwDatabase("/no/such/file.lqdb").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace lqdb
