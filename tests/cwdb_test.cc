#include <gtest/gtest.h>

#include "lqdb/cwdb/cw_database.h"
#include "lqdb/cwdb/mapping.h"
#include "lqdb/cwdb/ph.h"
#include "lqdb/cwdb/theory.h"
#include "lqdb/eval/evaluator.h"
#include "lqdb/logic/printer.h"
#include "testing.h"

namespace lqdb {
namespace {

using testing::RandomCwDatabase;
using testing::RandomDbParams;

TEST(CwDatabaseTest, KnownConstantsArePairwiseDistinct) {
  CwDatabase lb;
  ConstId a = lb.AddKnownConstant("Socrates");
  ConstId b = lb.AddKnownConstant("Plato");
  ConstId u = lb.AddUnknownConstant("JackTheRipper");
  EXPECT_TRUE(lb.AreDistinct(a, b));
  EXPECT_FALSE(lb.AreDistinct(a, u));
  EXPECT_FALSE(lb.AreDistinct(u, u));
  EXPECT_FALSE(lb.AreDistinct(a, a));
}

TEST(CwDatabaseTest, ExplicitDistinctPairs) {
  CwDatabase lb;
  ConstId a = lb.AddKnownConstant("A");
  ConstId u = lb.AddUnknownConstant("U");
  ASSERT_OK(lb.AddDistinct(u, a));
  EXPECT_TRUE(lb.AreDistinct(a, u));
  EXPECT_TRUE(lb.AreDistinct(u, a));
  EXPECT_FALSE(lb.AddDistinct(a, a).ok());  // inconsistent axiom
  EXPECT_FALSE(lb.AddDistinct("A", "Ghost").ok());
}

TEST(CwDatabaseTest, UnknownUpgradesToKnown) {
  CwDatabase lb;
  ConstId u = lb.AddUnknownConstant("X");
  EXPECT_FALSE(lb.IsKnown(u));
  ConstId same = lb.AddKnownConstant("X");
  EXPECT_EQ(same, u);
  EXPECT_TRUE(lb.IsKnown(u));
  // Adding as unknown again never downgrades.
  lb.AddUnknownConstant("X");
  EXPECT_TRUE(lb.IsKnown(u));
}

TEST(CwDatabaseTest, FullySpecified) {
  CwDatabase lb;
  lb.AddKnownConstant("A");
  lb.AddKnownConstant("B");
  EXPECT_TRUE(lb.IsFullySpecified());
  ConstId u = lb.AddUnknownConstant("U");
  EXPECT_FALSE(lb.IsFullySpecified());
  // Explicit axioms against every other constant restore full
  // specification.
  ASSERT_OK(lb.AddDistinct(u, 0));
  ASSERT_OK(lb.AddDistinct(u, 1));
  EXPECT_TRUE(lb.IsFullySpecified());
}

TEST(CwDatabaseTest, DistinctPairCountMatchesMaterialization) {
  auto lb = RandomCwDatabase(3, RandomDbParams{});
  EXPECT_EQ(lb->CountDistinctPairs(), lb->AllDistinctPairs().size());
}

TEST(CwDatabaseTest, FactsValidateArityAndConstants) {
  CwDatabase lb;
  ConstId a = lb.AddKnownConstant("A");
  PredId p = lb.AddPredicate("P", 2).value();
  EXPECT_FALSE(lb.AddFact(p, {a}).ok());
  EXPECT_FALSE(lb.AddFact(p, {a, 99}).ok());
  ASSERT_OK(lb.AddFact(p, {a, a}));
  EXPECT_EQ(lb.NumFacts(), 1u);
  EXPECT_TRUE(lb.facts(p).Contains({a, a}));
}

TEST(CwDatabaseTest, AddFactByNamePreservesUnknownStatus) {
  CwDatabase lb;
  ConstId jack = lb.AddUnknownConstant("Jack");
  ASSERT_OK(lb.AddFact("SEEN", {"Jack", "London"}));
  EXPECT_FALSE(lb.IsKnown(jack));  // a fact must not forge uniqueness axioms
  EXPECT_TRUE(lb.IsKnown(lb.vocab().FindConstant("London")));
}

TEST(CwDatabaseTest, ParserInternedConstantsCountAsUnknown) {
  CwDatabase lb;
  ConstId a = lb.AddKnownConstant("A");
  // Constants that enter through the vocabulary directly (as the query
  // parser does) carry no uniqueness axioms.
  ConstId ghost = lb.mutable_vocab()->AddConstant("Ghost");
  EXPECT_FALSE(lb.IsKnown(ghost));
  EXPECT_FALSE(lb.AreDistinct(a, ghost));
  EXPECT_EQ(lb.UnknownConstants(), std::vector<ConstId>{ghost});
}

TEST(CwDatabaseTest, AddFactByNameInternsKnownConstants) {
  CwDatabase lb;
  ASSERT_OK(lb.AddFact("TEACHES", {"Socrates", "Plato"}));
  ConstId s = lb.vocab().FindConstant("Socrates");
  ASSERT_NE(s, Vocabulary::kNotFound);
  EXPECT_TRUE(lb.IsKnown(s));
  EXPECT_EQ(lb.NumFacts(), 1u);
}

TEST(TheoryTest, EmitsAllFiveComponents) {
  CwDatabase lb;
  ASSERT_OK(lb.AddFact("TEACHES", {"Socrates", "Plato"}));
  lb.AddPredicate("EMPTY", 1).value();
  Theory theory = TheoryOf(&lb);

  EXPECT_EQ(theory.atomic_facts.size(), 1u);
  EXPECT_EQ(theory.uniqueness.size(), 1u);  // ¬(Socrates = Plato)
  ASSERT_NE(theory.domain_closure, nullptr);
  EXPECT_EQ(theory.completion.size(), 2u);

  std::string text = PrintTheory(lb.vocab(), theory);
  EXPECT_NE(text.find("TEACHES(Socrates, Plato)"), std::string::npos);
  EXPECT_NE(text.find("Socrates != Plato"), std::string::npos);
  EXPECT_NE(text.find("forall x. x = Socrates | x = Plato"),
            std::string::npos);
  // Completion of a factless predicate is ∀x ¬P(x).
  EXPECT_NE(text.find("forall x1. !EMPTY(x1)"), std::string::npos);
}

TEST(TheoryTest, Ph1IsAModelOfTheTheory) {
  CwDatabase lb;
  ASSERT_OK(lb.AddFact("P", {"A"}));
  ASSERT_OK(lb.AddFact("R", {"A", "B"}));
  Theory theory = TheoryOf(&lb);
  PhysicalDatabase ph1 = MakePh1(lb);
  Evaluator eval(&ph1);
  for (const FormulaPtr& s : theory.AllSentences()) {
    ASSERT_OK_AND_ASSIGN(bool sat, eval.Satisfies(s));
    EXPECT_TRUE(sat) << PrintFormula(lb.vocab(), s);
  }
}

TEST(PhTest, Ph1HasIdentityInterpretation) {
  CwDatabase lb;
  ASSERT_OK(lb.AddFact("P", {"A"}));
  lb.AddUnknownConstant("U");
  PhysicalDatabase ph1 = MakePh1(lb);
  EXPECT_EQ(ph1.domain_size(), lb.num_constants());
  for (ConstId c = 0; c < lb.num_constants(); ++c) {
    EXPECT_EQ(ph1.ConstantValue(c), c);
  }
  PredId p = lb.vocab().FindPredicate("P");
  EXPECT_TRUE(ph1.relation(p).Contains({lb.vocab().FindConstant("A")}));
}

TEST(PhTest, Ph2MaterializesNeInBothOrientations) {
  CwDatabase lb;
  lb.AddKnownConstant("A");
  lb.AddKnownConstant("B");
  lb.AddUnknownConstant("U");
  ASSERT_OK_AND_ASSIGN(Ph2 ph2, MakePh2(&lb, Ph2Options{}));
  const Relation& ne = ph2.db.relation(ph2.ne);
  EXPECT_EQ(ne.size(), 2u);  // (A,B) and (B,A)
  EXPECT_TRUE(ne.Contains({0, 1}));
  EXPECT_TRUE(ne.Contains({1, 0}));
  EXPECT_TRUE(lb.vocab().IsAuxiliary(ph2.ne));
}

TEST(PhTest, VirtualNeProviderMatchesMaterialized) {
  auto lb = RandomCwDatabase(11, RandomDbParams{});
  Ph2Options opts;
  opts.materialize_ne = true;
  ASSERT_OK_AND_ASSIGN(Ph2 ph2, MakePh2(lb.get(), opts));
  VirtualNeProvider provider(lb.get(), ph2.ne);
  const ConstId n = static_cast<ConstId>(lb->num_constants());
  for (ConstId a = 0; a < n; ++a) {
    for (ConstId b = 0; b < n; ++b) {
      EXPECT_EQ(provider.Contains(ph2.ne, {a, b}),
                ph2.db.relation(ph2.ne).Contains({a, b}))
          << a << "," << b;
    }
  }
}

TEST(MappingTest, IdentityRespectsAndPreservesPh1) {
  CwDatabase lb;
  ASSERT_OK(lb.AddFact("R", {"A", "B"}));
  ConstMapping id = IdentityMapping(lb.num_constants());
  EXPECT_TRUE(RespectsUniqueness(lb, id));
  PhysicalDatabase image = ApplyMapping(lb, id);
  PhysicalDatabase ph1 = MakePh1(lb);
  EXPECT_EQ(image.domain_size(), ph1.domain_size());
  PredId r = lb.vocab().FindPredicate("R");
  EXPECT_EQ(image.relation(r), ph1.relation(r));
}

TEST(MappingTest, MergingDistinctConstantsIsRejected) {
  CwDatabase lb;
  lb.AddKnownConstant("A");
  lb.AddKnownConstant("B");
  ConstMapping merge{0, 0};
  EXPECT_FALSE(RespectsUniqueness(lb, merge));
}

TEST(MappingTest, ApplyMappingMergesTuples) {
  CwDatabase lb;
  ConstId a = lb.AddUnknownConstant("X");
  ConstId b = lb.AddUnknownConstant("Y");
  PredId p = lb.AddPredicate("P", 1).value();
  ASSERT_OK(lb.AddFact(p, {a}));
  ASSERT_OK(lb.AddFact(p, {b}));
  ConstMapping merge{0, 0};
  PhysicalDatabase image = ApplyMapping(lb, merge);
  EXPECT_EQ(image.domain_size(), 1u);
  EXPECT_EQ(image.relation(p).size(), 1u);
}

TEST(MappingTest, CanonicalCountIsBellNumberWithoutAxioms) {
  // Bell numbers B(1..5) = 1, 2, 5, 15, 52.
  const uint64_t bell[] = {1, 2, 5, 15, 52};
  for (int n = 1; n <= 5; ++n) {
    CwDatabase lb;
    for (int i = 0; i < n; ++i) {
      lb.AddUnknownConstant("u" + std::to_string(i));
    }
    EXPECT_EQ(CountCanonicalMappings(lb), bell[n - 1]) << "n = " << n;
  }
}

TEST(MappingTest, FullySpecifiedHasOneCanonicalMapping) {
  CwDatabase lb;
  for (int i = 0; i < 5; ++i) lb.AddKnownConstant("k" + std::to_string(i));
  EXPECT_EQ(CountCanonicalMappings(lb), 1u);
}

TEST(MappingTest, MixedCountsMatchBruteForcePartitioning) {
  // 2 known + 2 unconstrained unknowns: partitions of a 4-set avoiding the
  // merge of the two known constants. B(4)=15 minus partitions merging k0,
  // k1: merging them collapses to partitions of a 3-set, B(3)=5 → 10.
  CwDatabase lb;
  lb.AddKnownConstant("k0");
  lb.AddKnownConstant("k1");
  lb.AddUnknownConstant("u0");
  lb.AddUnknownConstant("u1");
  EXPECT_EQ(CountCanonicalMappings(lb), 10u);
}

TEST(MappingTest, EveryCanonicalMappingRespects) {
  auto lb = RandomCwDatabase(17, RandomDbParams{});
  uint64_t count = ForEachCanonicalMapping(*lb, [&](const ConstMapping& h) {
    EXPECT_TRUE(RespectsUniqueness(*lb, h));
    return true;
  });
  EXPECT_GT(count, 0u);
}

TEST(MappingTest, EarlyStopIsHonored) {
  CwDatabase lb;
  for (int i = 0; i < 4; ++i) {
    lb.AddUnknownConstant("u" + std::to_string(i));
  }
  int seen = 0;
  ForEachCanonicalMapping(lb, [&](const ConstMapping&) {
    return ++seen < 3;
  });
  EXPECT_EQ(seen, 3);
}

TEST(MappingTest, BruteForceVisitsAllRespectingFunctions) {
  // 3 constants, no axioms: all 27 functions respect.
  CwDatabase lb;
  for (int i = 0; i < 3; ++i) {
    lb.AddUnknownConstant("u" + std::to_string(i));
  }
  uint64_t count = ForEachMapping(lb, [](const ConstMapping&) {
    return true;
  });
  EXPECT_EQ(count, 27u);

  // With one NE pair, functions merging that pair drop out: h(0) == h(1)
  // has 3 * 3 = 9 cases.
  ASSERT_OK(lb.AddDistinct(0, 1));
  count = ForEachMapping(lb, [](const ConstMapping&) { return true; });
  EXPECT_EQ(count, 18u);
}

/// Every canonical image database is a model of the full §2.2 theory —
/// empirical footing for the "Ph₁(LB) satisfies T" step of Theorem 1.
TEST(MappingTest, EveryCanonicalImageModelsTheTheory) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    RandomDbParams params;
    params.num_known = 3;
    params.num_unknown = 2;
    auto lb = RandomCwDatabase(seed, params);
    Theory theory = TheoryOf(lb.get());
    std::vector<FormulaPtr> sentences = theory.AllSentences();
    ForEachCanonicalMapping(*lb, [&](const ConstMapping& h) {
      PhysicalDatabase image = ApplyMapping(*lb, h);
      Evaluator eval(&image);
      for (const FormulaPtr& s : sentences) {
        auto sat = eval.Satisfies(s);
        EXPECT_TRUE(sat.ok() && sat.value())
            << "seed " << seed << " sentence "
            << PrintFormula(lb->vocab(), s);
      }
      return true;
    });
  }
}

}  // namespace
}  // namespace lqdb
