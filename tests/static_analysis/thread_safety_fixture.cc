// Deliberately BROKEN thread-safety fixture — never part of the CMake
// build. CI compiles this file with
//
//   clang++ -std=c++17 -fsyntax-only -Wthread-safety -Werror -Isrc
//       tests/static_analysis/thread_safety_fixture.cc
//
// and asserts the compile FAILS: `Increment` writes a GUARDED_BY member
// without holding its mutex, which is exactly the class of bug the
// annotations in src/lqdb/util/annotations.h exist to catch. If this file
// ever compiles clean under Clang, the analysis gate has silently stopped
// working (wrong flags, no-op macros, or a broken wrapper) and the CI step
// turns red.
#include "lqdb/util/annotations.h"

namespace lqdb {
namespace tsa_fixture {

class Counter {
 public:
  // BUG (intentional): mutates count_ without acquiring mu_.
  void Increment() { ++count_; }

  int Read() {
    MutexLock lock(mu_);
    return count_;
  }

 private:
  Mutex mu_;
  int count_ GUARDED_BY(mu_) = 0;
};

inline int Use() {
  Counter c;
  c.Increment();
  return c.Read();
}

}  // namespace tsa_fixture
}  // namespace lqdb
