#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "tests/testing.h"

namespace lqdb {
namespace {

#ifndef LQDB_SHELL_BINARY
#define LQDB_SHELL_BINARY "lqdb_shell"
#endif

/// Runs the shell on a script in batch mode and captures stdout.
std::string RunShellScript(const std::string& script_body) {
  const std::string script_path =
      ::testing::TempDir() + "/shell_test_script.txt";
  {
    std::ofstream out(script_path);
    out << script_body;
  }
  std::string cmd = std::string(LQDB_SHELL_BINARY) + " --batch " +
                    script_path + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  std::string output;
  char buffer[512];
  while (pipe != nullptr && fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    output += buffer;
  }
  if (pipe != nullptr) pclose(pipe);
  std::remove(script_path.c_str());
  return output;
}

TEST(ShellTest, AnswersQueriesEndToEnd) {
  std::string out = RunShellScript(R"(unknown Jack
fact MURDERER(Jack)
known Victoria Disraeli
distinct Jack Victoria
exact (x) . !MURDERER(x)
approx (x) . !MURDERER(x)
physical (x) . !MURDERER(x)
)");
  // Exact and approx agree: only Victoria is provably innocent.
  size_t first = out.find("{(Victoria)}");
  ASSERT_NE(first, std::string::npos) << out;
  EXPECT_NE(out.find("{(Victoria)}", first + 1), std::string::npos) << out;
  // The physical engine wrongly clears Disraeli and Victoria both.
  EXPECT_NE(out.find("{(Victoria), (Disraeli)}"), std::string::npos) << out;
}

TEST(ShellTest, PossibleAnswers) {
  std::string out = RunShellScript(R"(unknown Jack
fact MURDERER(Jack)
known Victoria
distinct Jack Victoria
possible (x) . MURDERER(x)
)");
  // Jack is possible (certain, even); Victoria is excluded by the axiom.
  EXPECT_NE(out.find("{(Jack)}"), std::string::npos) << out;
}

TEST(ShellTest, ShowAndTheory) {
  std::string out = RunShellScript(R"(fact TEACHES(Socrates, Plato)
show
theory
)");
  EXPECT_NE(out.find("fully specified: yes"), std::string::npos) << out;
  EXPECT_NE(out.find("TEACHES(Socrates, Plato)"), std::string::npos) << out;
  EXPECT_NE(out.find("domain closure"), std::string::npos) << out;
}

TEST(ShellTest, PlanShowsRaAndSql) {
  std::string out = RunShellScript(R"(fact P(A)
known B
plan (x) . !P(x)
)");
  EXPECT_NE(out.find("Q^ ="), std::string::npos) << out;
  EXPECT_NE(out.find("__alpha_P"), std::string::npos) << out;
  EXPECT_NE(out.find("SQL:"), std::string::npos) << out;
  EXPECT_NE(out.find("SELECT"), std::string::npos) << out;
}

TEST(ShellTest, SaveAndLoadRoundTrip) {
  const std::string db_path = ::testing::TempDir() + "/shell_roundtrip.lqdb";
  std::string out = RunShellScript("fact R(A, B)\nsave " + db_path +
                                   "\nload " + db_path +
                                   "\nexact (x) . exists y. R(x, y)\n");
  EXPECT_NE(out.find("loaded 2 constants, 1 facts"), std::string::npos)
      << out;
  EXPECT_NE(out.find("{(A)}"), std::string::npos) << out;
  std::remove(db_path.c_str());
}

TEST(ShellTest, ReportsErrorsWithoutDying) {
  std::string out = RunShellScript(R"(known A
exact this is not ( a query
frobnicate
fact Broken(
exact true
)");
  EXPECT_NE(out.find("error:"), std::string::npos) << out;
  EXPECT_NE(out.find("unknown command"), std::string::npos) << out;
  // Still alive for the final valid query: true holds in every model.
  EXPECT_NE(out.find("{()}"), std::string::npos) << out;
}

TEST(ShellTest, EngineRegistryCommands) {
  std::string out = RunShellScript(R"(unknown Jack
fact MURDERER(Jack)
known Victoria
distinct Jack Victoria
engines
set engine parallel-exact
set threads 2
query (x) . !MURDERER(x)
set engine approx
query (x) . !MURDERER(x)
set engine ra-exact
query (x) . !MURDERER(x)
)");
  // `engines` lists every builtin with capability flags.
  for (const char* name :
       {"brute", "exact", "parallel-exact", "ra-exact", "approx",
        "physical"}) {
    EXPECT_NE(out.find(name), std::string::npos) << out;
  }
  // All three selected engines clear exactly Victoria.
  size_t pos = 0;
  int hits = 0;
  while ((pos = out.find("{(Victoria)}", pos)) != std::string::npos) {
    ++hits;
    ++pos;
  }
  EXPECT_EQ(hits, 3) << out;
  EXPECT_EQ(out.find("error:"), std::string::npos) << out;
}

TEST(ShellTest, ExplainShowsPlanAndFallback) {
  std::string out = RunShellScript(R"(unknown Jack
fact MURDERER(Jack)
known Victoria
explain (x) . !MURDERER(x)
explain exists2 S/1. exists x. S(x)
)");
  // The compilable query gets a plan tree, node counts and SQL.
  EXPECT_NE(out.find("AntiJoin"), std::string::npos) << out;
  EXPECT_NE(out.find("unique"), std::string::npos) << out;
  EXPECT_NE(out.find("SQL:"), std::string::npos) << out;
  EXPECT_NE(out.find("SELECT"), std::string::npos) << out;
  // The second-order query reports the ra-exact fallback instead.
  EXPECT_NE(out.find("falls back to the batched evaluator"),
            std::string::npos)
      << out;
  EXPECT_EQ(out.find("error:"), std::string::npos) << out;
}

TEST(ShellTest, SetRejectsBadValues) {
  std::string out = RunShellScript(R"(set engine frobnicator
set threads banana
set max_mappings 0
set flux_capacitor 11
)");
  // Four errors, shell stays alive for each.
  size_t pos = 0;
  int errors = 0;
  while ((pos = out.find("error:", pos)) != std::string::npos) {
    ++errors;
    ++pos;
  }
  EXPECT_EQ(errors, 4) << out;
  // The unknown-engine error names the registered engines.
  EXPECT_NE(out.find("parallel-exact"), std::string::npos) << out;
}

TEST(ShellTest, SetRejectsTrailingGarbage) {
  // std::stoi prefix parsing used to accept "4x" as 4; strict parsing must
  // reject any trailing garbage and leave the previous settings intact.
  std::string out = RunShellScript(R"(set threads 4x
set max_mappings 10q
set threads 1e3
set max_mappings 0x10
set threads 2
set max_mappings 50
engines
)");
  size_t pos = 0;
  int errors = 0;
  while ((pos = out.find("error:", pos)) != std::string::npos) {
    ++errors;
    ++pos;
  }
  EXPECT_EQ(errors, 4) << out;
  // The clean values after the garbage ones still apply.
  EXPECT_NE(out.find("threads = 2"), std::string::npos) << out;
  EXPECT_NE(out.find("max_mappings = 50"), std::string::npos) << out;
  EXPECT_NE(out.find("threads: 2   max_mappings: 50"), std::string::npos)
      << out;
}

TEST(ShellTest, ParallelExactAgreesInTheShell) {
  // The same Theorem 1 query through 1, 2 and 4 threads — answers must be
  // identical (the shell upgrades `exact` to parallel-exact when threads
  // != 1).
  std::string out = RunShellScript(R"(unknown Jack
unknown Nemo
fact MURDERER(Jack)
known Victoria Disraeli
distinct Jack Victoria
exact (x) . !MURDERER(x)
set threads 2
exact (x) . !MURDERER(x)
set threads 4
exact (x) . !MURDERER(x)
)");
  EXPECT_EQ(out.find("error:"), std::string::npos) << out;
  // Three identical answers: Nemo could be the murderer, so only Victoria
  // is provably innocent.
  size_t pos = 0;
  int hits = 0;
  while ((pos = out.find("{(Victoria)}", pos)) != std::string::npos) {
    ++hits;
    ++pos;
  }
  EXPECT_EQ(hits, 3) << out;
}

TEST(ShellTest, PrepareExecuteRoundTrip) {
  std::string out = RunShellScript(R"(unknown Jack
fact MURDERER(Jack)
known Victoria
distinct Jack Victoria
prepare (x) . !MURDERER(x)
execute
prepare (x) . !MURDERER(x)
execute
)");
  EXPECT_EQ(out.find("error:"), std::string::npos) << out;
  // First prepare compiles, second hits the shared statement cache.
  EXPECT_NE(out.find("(compiled)"), std::string::npos) << out;
  EXPECT_NE(out.find("(cache hit)"), std::string::npos) << out;
  // Both executions return the same certain answer.
  size_t pos = 0;
  int hits = 0;
  while ((pos = out.find("{(Victoria)}", pos)) != std::string::npos) {
    ++hits;
    ++pos;
  }
  EXPECT_EQ(hits, 2) << out;
}

TEST(ShellTest, SessionCommandsSwitchEngines) {
  std::string out = RunShellScript(R"(unknown Jack
fact MURDERER(Jack)
known Victoria
distinct Jack Victoria
session
query (x) . !MURDERER(x)
session new ra-exact
query (x) . !MURDERER(x)
session
session use 0
query (x) . !MURDERER(x)
stats
)");
  EXPECT_EQ(out.find("error:"), std::string::npos) << out;
  // Before any query there are no sessions; afterwards both engines list.
  EXPECT_NE(out.find("no sessions"), std::string::npos) << out;
  EXPECT_NE(out.find("session #1 (ra-exact) opened and selected"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("session #0 (exact) selected"), std::string::npos)
      << out;
  // All three queries (exact, ra-exact, exact again) agree.
  size_t pos = 0;
  int hits = 0;
  while ((pos = out.find("{(Victoria)}", pos)) != std::string::npos) {
    ++hits;
    ++pos;
  }
  EXPECT_EQ(hits, 3) << out;
  // `stats` reports the shared cache: the same text prepared for two
  // engines is two cached statements, and the exact session's second query
  // was a cache hit.
  EXPECT_NE(out.find("2 cached queries"), std::string::npos) << out;
  EXPECT_NE(out.find("sessions opened"), std::string::npos) << out;
}

TEST(ShellTest, ExecuteRejectsBogusHandles) {
  std::string out = RunShellScript(R"(known A
fact P(A)
execute
execute 999999
execute banana
prepare (x) . P(x)
execute
)");
  // Nothing prepared, an unissued handle, and a non-numeric one: three
  // errors, then the valid prepared statement still runs.
  size_t pos = 0;
  int errors = 0;
  while ((pos = out.find("error:", pos)) != std::string::npos) {
    ++errors;
    ++pos;
  }
  EXPECT_EQ(errors, 3) << out;
  EXPECT_NE(out.find("{(A)}"), std::string::npos) << out;
}

#ifdef LQDB_TEST_DATA_DIR
/// Smoke: the checked-in session script touches every shell command; the
/// whole run must complete without an error or unknown-command line.
TEST(ShellTest, ScriptedSessionCoversEveryCommand) {
  const std::string script = testing::ReadFileToString(
      std::string(LQDB_TEST_DATA_DIR) + "/shell_smoke_session.txt");
  ASSERT_FALSE(script.empty());
  std::string out = RunShellScript(script);
  // The session's `save` writes into the test's working directory.
  std::remove("shell_smoke_roundtrip.tmp.lqdb");
  EXPECT_EQ(out.find("error:"), std::string::npos) << out;
  EXPECT_EQ(out.find("unknown command"), std::string::npos) << out;
  // The exact and approx engines both clear exactly Victoria.
  size_t first = out.find("{(Victoria)}");
  EXPECT_NE(first, std::string::npos) << out;
  EXPECT_NE(out.find("{(Victoria)}", first + 1), std::string::npos) << out;
}
#endif  // LQDB_TEST_DATA_DIR

#ifdef LQDB_EXAMPLES_DATA_DIR
/// Smoke: every example world under examples/data/ loads in the shell and
/// answers its embedded `# query:` lines under all three engines without a
/// single error line — so the shipped scenarios can never silently rot.
TEST(ShellTest, LoadsAndQueriesEveryExampleWorld) {
  size_t worlds = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(LQDB_EXAMPLES_DATA_DIR)) {
    if (entry.path().extension() != ".lqdb") continue;
    ++worlds;
    SCOPED_TRACE(entry.path().string());

    const std::string text =
        testing::ReadFileToString(entry.path().string());

    std::string script = "load " + entry.path().string() + "\nshow\ntheory\n";
    const auto queries = testing::EmbeddedQueries(text);
    EXPECT_FALSE(queries.empty()) << "data file carries no `# query:` lines";
    for (const std::string& query : queries) {
      script += "exact " + query + "\napprox " + query + "\npossible " +
                query + "\n";
    }

    std::string out = RunShellScript(script);
    EXPECT_NE(out.find("loaded "), std::string::npos) << out;
    EXPECT_EQ(out.find("error:"), std::string::npos) << out;
    EXPECT_EQ(out.find("unknown command"), std::string::npos) << out;
  }
  EXPECT_GE(worlds, 7u) << "expected one data file per example binary";
}
#endif  // LQDB_EXAMPLES_DATA_DIR

}  // namespace
}  // namespace lqdb
