#include <gtest/gtest.h>

#include "lqdb/cwdb/cw_database.h"
#include "lqdb/cwdb/ph.h"
#include "lqdb/cwdb/simulation.h"
#include "lqdb/eval/evaluator.h"
#include "lqdb/exact/exact.h"
#include "lqdb/logic/classify.h"
#include "lqdb/logic/parser.h"
#include "lqdb/logic/printer.h"
#include "lqdb/util/rng.h"
#include "testing.h"

namespace lqdb {
namespace {

/// Evaluates Q'(Ph₂(LB)) with the second-order evaluator and restricts the
/// answer to constant tuples (Ph₂'s domain is C, so no restriction is
/// actually needed — the call documents intent).
Relation EvalSimulation(CwDatabase* lb, PredId ne,
                        const PhysicalDatabase& ph2_db, const Query& q) {
  auto sim = BuildPreciseSimulation(lb, ne, q);
  EXPECT_TRUE(sim.ok()) << sim.status();
  EvalOptions opts;
  opts.max_so_tuple_space = 16;  // |C|² for |C| ≤ 4
  Evaluator eval(&ph2_db, opts);
  auto answer = eval.Answer(sim->query);
  EXPECT_TRUE(answer.ok()) << answer.status();
  return answer.value_or(Relation(static_cast<int>(q.arity())));
}

class SimulationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mystery_ = lb_.AddUnknownConstant("Mystery");
    ASSERT_OK(lb_.AddFact("T", {"Soc", "Pla"}));
    auto ph2 = MakePh2(&lb_, Ph2Options{});
    ASSERT_OK(ph2.status());
    ne_ = ph2->ne;
    ph2_db_ = std::make_unique<PhysicalDatabase>(std::move(ph2->db));
  }

  void ExpectSimulationMatchesExact(const std::string& text) {
    auto q = ParseQuery(lb_.mutable_vocab(), text);
    ASSERT_TRUE(q.ok()) << q.status();
    ExactEvaluator exact(&lb_);
    auto expected = exact.Answer(q.value());
    ASSERT_TRUE(expected.ok()) << expected.status();
    Relation got = EvalSimulation(&lb_, ne_, *ph2_db_, q.value());
    EXPECT_EQ(got, expected.value()) << text;
  }

  CwDatabase lb_;
  ConstId mystery_;
  PredId ne_ = 0;
  std::unique_ptr<PhysicalDatabase> ph2_db_;
};

TEST_F(SimulationTest, PositiveAtom) {
  ExpectSimulationMatchesExact("(x) . T(Soc, x)");
}

TEST_F(SimulationTest, NegatedAtom) {
  ExpectSimulationMatchesExact("(x) . !T(x, Pla)");
}

TEST_F(SimulationTest, EqualityAndInequality) {
  ExpectSimulationMatchesExact("(x) . x = Mystery");
  ExpectSimulationMatchesExact("(x) . x != Mystery");
}

TEST_F(SimulationTest, BooleanSentences) {
  ExpectSimulationMatchesExact("exists x. T(x, Pla)");
  ExpectSimulationMatchesExact("T(Mystery, Pla)");
  ExpectSimulationMatchesExact("!T(Mystery, Pla)");
  ExpectSimulationMatchesExact("Mystery != Soc");
}

TEST_F(SimulationTest, QuantifiedBodies) {
  ExpectSimulationMatchesExact("(x) . forall y. T(x, y) -> x = Soc");
  ExpectSimulationMatchesExact("(x) . exists y. T(x, y) | T(y, x)");
}

TEST_F(SimulationTest, ResultIsSecondOrder) {
  auto q = ParseQuery(lb_.mutable_vocab(), "(x) . T(Soc, x)");
  auto sim = BuildPreciseSimulation(&lb_, ne_, q.value());
  ASSERT_TRUE(sim.ok()) << sim.status();
  // Q' is second-order even though Q is first-order — the paper's point
  // about the hidden second-order quantification.
  EXPECT_FALSE(IsFirstOrder(sim->query.body()));
  PrefixShape shape = ClassifySoPrefix(sim->query.body());
  EXPECT_TRUE(shape.prenex);
  EXPECT_FALSE(shape.starts_existential);  // a ∀-prefix (Π¹₁ shape)
}

TEST_F(SimulationTest, RejectsQueriesOverLPrime) {
  auto q = ParseQuery(lb_.mutable_vocab(), "(x, y) . NE(x, y)");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(BuildPreciseSimulation(&lb_, ne_, q.value()).ok());
}

/// Theorem 3 property test: Q(LB) = Q'(Ph₂(LB)) on tiny random databases.
TEST(SimulationPropertyTest, MatchesExactOnRandomTinyDatabases) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    testing::RandomDbParams params;
    params.num_known = 2;
    params.num_unknown = 1;
    params.num_unary_preds = 1;
    params.num_binary_preds = 0;  // keep the ∀P' spaces tiny
    params.num_facts = 3;
    auto lb = testing::RandomCwDatabase(seed, params);
    auto ph2 = MakePh2(lb.get(), Ph2Options{});
    ASSERT_OK(ph2.status());

    testing::RandomFormulaParams fparams;
    fparams.free_vars = {"hx"};
    fparams.max_depth = 2;
    Query q = testing::RandomQuery(seed * 5 + 3, lb->mutable_vocab(),
                                   fparams);

    ExactEvaluator exact(lb.get());
    auto expected = exact.Answer(q);
    ASSERT_OK(expected.status());

    Relation got = EvalSimulation(lb.get(), ph2->ne, ph2->db, q);
    EXPECT_EQ(got, expected.value())
        << "seed " << seed << " query " << PrintQuery(lb->vocab(), q);
  }
}

/// On a fully specified database the simulation, the exact answer and the
/// plain physical answer over Ph₁ all coincide (Theorem 3 + Corollary 2).
TEST(SimulationPropertyTest, FullySpecifiedCollapsesToPh1) {
  CwDatabase lb;
  ASSERT_OK(lb.AddFact("P", {"A"}));
  lb.AddKnownConstant("B");
  auto ph2 = MakePh2(&lb, Ph2Options{});
  ASSERT_OK(ph2.status());

  auto q = ParseQuery(lb.mutable_vocab(), "(x) . !P(x)");
  ASSERT_TRUE(q.ok());

  PhysicalDatabase ph1 = MakePh1(lb);
  Evaluator eval(&ph1);
  auto physical = eval.Answer(q.value());
  ASSERT_OK(physical.status());

  Relation sim = EvalSimulation(&lb, ph2->ne, ph2->db, q.value());
  EXPECT_EQ(sim, physical.value());
}

}  // namespace
}  // namespace lqdb
