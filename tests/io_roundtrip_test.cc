/// Round-trip coverage for io/text_format over the example worlds: every
/// `.lqdb` file under examples/data/ must parse, serialize to a fixpoint
/// (parse → print → parse → print is the identity on the printed form), and
/// reparse to a database with identical constants, facts and axioms. The
/// `# query:` comment lines in each file are round-tripped through the
/// formula parser/printer the same way.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lqdb/io/text_format.h"
#include "lqdb/logic/parser.h"
#include "lqdb/logic/printer.h"
#include "lqdb/logic/query.h"
#include "tests/testing.h"

#ifndef LQDB_EXAMPLES_DATA_DIR
#define LQDB_EXAMPLES_DATA_DIR "examples/data"
#endif

namespace lqdb {
namespace {

using testing::EmbeddedQueries;
using testing::ReadFileToString;

std::vector<std::filesystem::path> DataFiles() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(LQDB_EXAMPLES_DATA_DIR)) {
    if (entry.path().extension() == ".lqdb") files.push_back(entry.path());
  }
  return files;
}

/// One data file per example binary, so a new example cannot land without
/// its world being covered here (and loadable in the shell via `load`).
TEST(ExamplesDataTest, EveryExampleHasADataFile) {
  const std::set<std::string> expected = {
      "approximation_demo", "hospital_triage",     "quickstart",
      "suspects",           "theorem3_simulation", "three_coloring",
      "virtual_ne_views"};
  std::set<std::string> actual;
  for (const auto& path : DataFiles()) actual.insert(path.stem().string());
  EXPECT_EQ(actual, expected);
}

TEST(ExamplesDataTest, DatabasesRoundTrip) {
  for (const auto& path : DataFiles()) {
    SCOPED_TRACE(path.string());
    const std::string text = ReadFileToString(path.string());
    ASSERT_FALSE(text.empty());

    auto first = ParseCwDatabase(text);
    ASSERT_TRUE(first.ok()) << first.status();
    const std::string printed = SerializeCwDatabase(*first.value());

    auto second = ParseCwDatabase(printed);
    ASSERT_TRUE(second.ok()) << second.status() << "\n" << printed;
    // The printed form is a fixpoint of parse → print.
    EXPECT_EQ(SerializeCwDatabase(*second.value()), printed);

    // And the reparsed database is structurally identical.
    const CwDatabase& a = *first.value();
    const CwDatabase& b = *second.value();
    ASSERT_EQ(a.num_constants(), b.num_constants());
    EXPECT_EQ(a.NumFacts(), b.NumFacts());
    EXPECT_EQ(a.explicit_distinct().size(), b.explicit_distinct().size());
    for (ConstId c = 0; c < a.num_constants(); ++c) {
      const std::string& name = a.vocab().ConstantName(c);
      ConstId c2 = b.vocab().FindConstant(name);
      ASSERT_NE(c2, Vocabulary::kNotFound) << name;
      EXPECT_EQ(a.IsKnown(c), b.IsKnown(c2)) << name;
    }
  }
}

TEST(ExamplesDataTest, EmbeddedQueriesRoundTrip) {
  for (const auto& path : DataFiles()) {
    SCOPED_TRACE(path.string());
    const std::string text = ReadFileToString(path.string());
    auto db = ParseCwDatabase(text);
    ASSERT_TRUE(db.ok()) << db.status();

    const std::vector<std::string> queries = EmbeddedQueries(text);
    EXPECT_FALSE(queries.empty())
        << "every data file should carry at least one `# query:` line";
    for (const std::string& query_text : queries) {
      SCOPED_TRACE(query_text);
      Vocabulary* vocab = db.value()->mutable_vocab();
      auto q1 = ParseQuery(vocab, query_text);
      ASSERT_TRUE(q1.ok()) << q1.status();
      const std::string printed = PrintQuery(*vocab, q1.value());

      auto q2 = ParseQuery(vocab, printed);
      ASSERT_TRUE(q2.ok()) << q2.status() << "\n" << printed;
      // parse → print reaches a fixpoint after one iteration, and the head
      // survives unchanged.
      EXPECT_EQ(PrintQuery(*vocab, q2.value()), printed);
      EXPECT_EQ(q2.value().head(), q1.value().head());
    }
  }
}

}  // namespace
}  // namespace lqdb
