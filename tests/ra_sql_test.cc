// Golden-output tests for the SQL emitter (ra/sql.cc): each representative
// plan shape is pinned to its exact emitted statement, so quoting, aliasing
// and column-order rules cannot regress silently. Plans are built directly
// through the validating factories (not the compiler) to keep the goldens
// independent of join-ordering heuristics.
#include <gtest/gtest.h>

#include "lqdb/logic/parser.h"
#include "lqdb/ra/compiler.h"
#include "lqdb/ra/plan.h"
#include "lqdb/ra/sql.h"
#include "testing.h"

namespace lqdb {
namespace {

class RaSqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = vocab_.AddConstant("A");
    b_ = vocab_.AddConstant("B");
    p_ = vocab_.AddPredicate("P", 1).value();
    r_ = vocab_.AddPredicate("R", 2).value();
    x_ = vocab_.AddVariable("x");
    y_ = vocab_.AddVariable("y");
  }

  Vocabulary vocab_;
  ConstId a_, b_;
  PredId p_, r_;
  VarId x_, y_;
};

TEST_F(RaSqlTest, ScanWithConstantFilter) {
  ASSERT_OK_AND_ASSIGN(
      PlanPtr plan,
      Plan::Scan(vocab_, r_, {Term::Variable(x_), Term::Constant(a_)}));
  EXPECT_EQ(EmitSql(vocab_, plan),
            "SELECT DISTINCT t0.c0 AS x FROM R t0 WHERE t0.c1 = 'A'");
}

TEST_F(RaSqlTest, ScanWithRepeatedVariable) {
  ASSERT_OK_AND_ASSIGN(
      PlanPtr plan,
      Plan::Scan(vocab_, r_, {Term::Variable(x_), Term::Variable(x_)}));
  EXPECT_EQ(EmitSql(vocab_, plan),
            "SELECT DISTINCT t0.c0 AS x FROM R t0 WHERE t0.c1 = t0.c0");
}

TEST_F(RaSqlTest, ScanWithAllConstantsKeepsPlaceholderColumn) {
  ASSERT_OK_AND_ASSIGN(
      PlanPtr plan,
      Plan::Scan(vocab_, r_, {Term::Constant(a_), Term::Constant(b_)}));
  EXPECT_EQ(EmitSql(vocab_, plan),
            "SELECT DISTINCT 1 AS one FROM R t0 "
            "WHERE t0.c0 = 'A' AND t0.c1 = 'B'");
}

TEST_F(RaSqlTest, LiteralsDoubleEmbeddedQuotes) {
  ConstId quoted = vocab_.AddConstant("O'Hara");
  ASSERT_OK_AND_ASSIGN(PlanPtr plan, Plan::ConstTuples({x_}, {{quoted}}));
  EXPECT_EQ(EmitSql(vocab_, plan),
            "SELECT DISTINCT * FROM (VALUES ('O''Hara')) AS t0(x)");
}

TEST_F(RaSqlTest, EmptyConstTuplesSelectsOnlyExistingColumns) {
  // Regression: the empty relation over a non-empty schema used to emit
  // `SELECT x, y FROM dom WHERE 1=0`, referencing columns that exist in no
  // table; the columns must borrow dom's `v`.
  ASSERT_OK_AND_ASSIGN(PlanPtr plan, Plan::ConstTuples({x_, y_}, {}));
  EXPECT_EQ(EmitSql(vocab_, plan),
            "SELECT v AS x, v AS y FROM dom WHERE 1=0");

  ASSERT_OK_AND_ASSIGN(PlanPtr empty, Plan::ConstTuples({}, {}));
  EXPECT_EQ(EmitSql(vocab_, empty), "SELECT 1 AS one FROM dom WHERE 1=0");
}

TEST_F(RaSqlTest, ConstCompareAndDomainScans) {
  EXPECT_EQ(EmitSql(vocab_, Plan::ConstCompare(a_, b_)),
            "SELECT 1 AS one WHERE 'A' = 'B'");
  EXPECT_EQ(EmitSql(vocab_, Plan::DomainScan(x_)), "SELECT v AS x FROM dom");
  ASSERT_OK_AND_ASSIGN(PlanPtr eq, Plan::EqDomain(x_, y_));
  EXPECT_EQ(EmitSql(vocab_, eq), "SELECT v AS x, v AS y FROM dom");
}

TEST_F(RaSqlTest, JoinQualifiesSharedColumnsFromTheLeft) {
  ASSERT_OK_AND_ASSIGN(PlanPtr sp, Plan::Scan(vocab_, p_,
                                              {Term::Variable(x_)}));
  ASSERT_OK_AND_ASSIGN(
      PlanPtr sr,
      Plan::Scan(vocab_, r_, {Term::Variable(x_), Term::Variable(y_)}));
  ASSERT_OK_AND_ASSIGN(PlanPtr join, Plan::Join(sp, sr));
  EXPECT_EQ(EmitSql(vocab_, join),
            "SELECT DISTINCT t0.x, t1.y FROM "
            "(SELECT DISTINCT t2.c0 AS x FROM P t2) t0 JOIN "
            "(SELECT DISTINCT t3.c0 AS x, t3.c1 AS y FROM R t3) t1 "
            "ON t0.x = t1.x");
}

TEST_F(RaSqlTest, DisconnectedJoinIsCrossJoin) {
  ASSERT_OK_AND_ASSIGN(PlanPtr sp, Plan::Scan(vocab_, p_,
                                              {Term::Variable(x_)}));
  ASSERT_OK_AND_ASSIGN(PlanPtr sq, Plan::Scan(vocab_, p_,
                                              {Term::Variable(y_)}));
  ASSERT_OK_AND_ASSIGN(PlanPtr join, Plan::Join(sp, sq));
  EXPECT_EQ(EmitSql(vocab_, join),
            "SELECT DISTINCT t0.x, t1.y FROM "
            "(SELECT DISTINCT t2.c0 AS x FROM P t2) t0 CROSS JOIN "
            "(SELECT DISTINCT t3.c0 AS y FROM P t3) t1");
}

TEST_F(RaSqlTest, AntiJoinCorrelatesOnSharedColumns) {
  ASSERT_OK_AND_ASSIGN(PlanPtr sp, Plan::Scan(vocab_, p_,
                                              {Term::Variable(x_)}));
  ASSERT_OK_AND_ASSIGN(PlanPtr anti,
                       Plan::AntiJoin(Plan::DomainScan(x_), sp));
  EXPECT_EQ(EmitSql(vocab_, anti),
            "SELECT t0.x FROM (SELECT v AS x FROM dom) t0 "
            "WHERE NOT EXISTS (SELECT 1 FROM "
            "(SELECT DISTINCT t2.c0 AS x FROM P t2) t1 WHERE t1.x = t0.x)");
}

TEST_F(RaSqlTest, UnionReordersPermutedRightColumns) {
  // Regression: SQL UNION matches columns by position while Plan::Union
  // only requires equal attribute sets — a right child whose column order
  // differs used to be emitted unchanged, silently unioning x against y.
  ASSERT_OK_AND_ASSIGN(
      PlanPtr fwd,
      Plan::Scan(vocab_, r_, {Term::Variable(x_), Term::Variable(y_)}));
  ASSERT_OK_AND_ASSIGN(
      PlanPtr rev,
      Plan::Scan(vocab_, r_, {Term::Variable(y_), Term::Variable(x_)}));
  ASSERT_OK_AND_ASSIGN(PlanPtr u, Plan::Union(fwd, rev));
  EXPECT_EQ(EmitSql(vocab_, u),
            "SELECT DISTINCT t0.c0 AS x, t0.c1 AS y FROM R t0\n"
            "UNION\n"
            "SELECT t1.x, t1.y FROM "
            "(SELECT DISTINCT t2.c0 AS y, t2.c1 AS x FROM R t2) t1");
}

TEST_F(RaSqlTest, UnionWithAlignedColumnsStaysFlat) {
  ASSERT_OK_AND_ASSIGN(PlanPtr sp, Plan::Scan(vocab_, p_,
                                              {Term::Variable(x_)}));
  ASSERT_OK_AND_ASSIGN(PlanPtr u, Plan::Union(sp, Plan::DomainScan(x_)));
  EXPECT_EQ(EmitSql(vocab_, u),
            "SELECT DISTINCT t0.c0 AS x FROM P t0\n"
            "UNION\n"
            "SELECT v AS x FROM dom");
}

TEST_F(RaSqlTest, ProjectWrapsChild) {
  ASSERT_OK_AND_ASSIGN(
      PlanPtr scan,
      Plan::Scan(vocab_, r_, {Term::Variable(x_), Term::Variable(y_)}));
  ASSERT_OK_AND_ASSIGN(PlanPtr proj, Plan::Project(scan, {y_}));
  EXPECT_EQ(EmitSql(vocab_, proj),
            "SELECT DISTINCT t0.y FROM "
            "(SELECT DISTINCT t1.c0 AS x, t1.c1 AS y FROM R t1) t0");
}

TEST_F(RaSqlTest, CompiledQueryGolden) {
  // End-to-end through the compiler for a shape whose plan is independent
  // of the join-ordering heuristics.
  ASSERT_OK_AND_ASSIGN(Query q, ParseQuery(&vocab_, "(x) . P(x)"));
  RaCompiler compiler(&vocab_);
  ASSERT_OK_AND_ASSIGN(PlanPtr plan, compiler.Compile(q));
  EXPECT_EQ(EmitSql(vocab_, plan),
            "SELECT DISTINCT t0.x FROM "
            "(SELECT DISTINCT t1.c0 AS x FROM P t1) t0");
}

}  // namespace
}  // namespace lqdb
