// Join ordering and semijoin reduction: plan-shape freedoms that must
// never change results.
//
// The compiler is free to pick any join order (DP below the cap, greedy
// above it) and the Theorem 1 engines are free to run the semijoin-reduced
// form of a plan — both are pure optimizations, so this file pins:
//   - every enumerated order of a conjunction produces identical rows,
//     under both the DP and the greedy orderer, regardless of the written
//     conjunct order and of how the statistics skew;
//   - the DP never inserts a cross product when a connected order exists;
//   - the semijoin-reduced plan bound to a candidate set computes exactly
//     `original ∩ candidates`, including under quantifiers that shadow a
//     head variable (where pushdown must stop).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lqdb/logic/builder.h"
#include "lqdb/logic/parser.h"
#include "lqdb/ra/compiler.h"
#include "lqdb/ra/executor.h"
#include "lqdb/ra/plan.h"
#include "lqdb/ra/semijoin.h"
#include "lqdb/util/rng.h"
#include "testing.h"

namespace lqdb {
namespace {

using testing::RandomFormula;
using testing::RandomFormulaParams;

class RaJoinOrderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = vocab_.AddConstant("A");
    b_ = vocab_.AddConstant("B");
    c_ = vocab_.AddConstant("C");
    d_ = vocab_.AddConstant("D");
    p_ = vocab_.AddPredicate("P", 1).value();
    r_ = vocab_.AddPredicate("R", 2).value();
    s_ = vocab_.AddPredicate("S", 2).value();
    db_ = std::make_unique<PhysicalDatabase>(&vocab_);
    db_->InterpretConstantsAsThemselves();
    ASSERT_OK(db_->AddTuple(p_, {a_}));
    ASSERT_OK(db_->AddTuple(p_, {d_}));
    ASSERT_OK(db_->AddTuple(r_, {a_, b_}));
    ASSERT_OK(db_->AddTuple(r_, {b_, c_}));
    ASSERT_OK(db_->AddTuple(r_, {c_, d_}));
    ASSERT_OK(db_->AddTuple(r_, {d_, d_}));
    ASSERT_OK(db_->AddTuple(s_, {b_, c_}));
    ASSERT_OK(db_->AddTuple(s_, {c_, a_}));
    ASSERT_OK(db_->AddTuple(s_, {d_, b_}));
  }

  Query Parse(const std::string& text) {
    auto q = ParseQuery(&vocab_, text);
    EXPECT_TRUE(q.ok()) << q.status();
    return std::move(q).value();
  }

  /// Compiles under the given cap and skew, executes, returns the rows.
  RaTable CompileAndRun(const Query& query, size_t dp_cap,
                        double r_size_estimate) {
    RaCardinalities stats;
    stats.dp_join_cap = dp_cap;
    stats.domain_size = 4.0;
    stats.relation_sizes.assign(vocab_.num_predicates(), 4.0);
    stats.relation_sizes[p_] = 2.0;
    stats.relation_sizes[r_] = r_size_estimate;
    RaCompiler compiler(&vocab_, stats);
    auto plan = compiler.Compile(query);
    EXPECT_TRUE(plan.ok()) << plan.status();
    RaExecutor exec(db_.get());
    auto table = exec.Execute(plan.value());
    EXPECT_TRUE(table.ok()) << table.status();
    return std::move(table).value();
  }

  Vocabulary vocab_;
  ConstId a_, b_, c_, d_;
  PredId p_, r_, s_;
  std::unique_ptr<PhysicalDatabase> db_;
};

/// Every written order of a 4-conjunct connected conjunction — compiled
/// through the DP orderer and through the greedy fallback, under opposing
/// cardinality skews — yields the same rows.
TEST_F(RaJoinOrderTest, AllConjunctOrdersProduceIdenticalResults) {
  std::vector<std::string> conjuncts = {"R(x, y)", "S(y, z)", "R(z, w)",
                                        "P(w)"};
  std::sort(conjuncts.begin(), conjuncts.end());
  Relation reference(0);
  bool have_reference = false;
  do {
    std::string text = "(x, y, z, w) . " + conjuncts[0];
    for (size_t i = 1; i < conjuncts.size(); ++i) text += " & " + conjuncts[i];
    Query query = Parse(text);
    // cap 0 = greedy; cap 10 = DPsub. Opposing skews steer each orderer
    // toward different trees — none of which may change the rows.
    for (size_t cap : {size_t{0}, size_t{10}}) {
      for (double r_est : {1.0, 64.0}) {
        RaTable t = CompileAndRun(query, cap, r_est);
        if (!have_reference) {
          reference = std::move(t.rel);
          have_reference = true;
          EXPECT_GT(reference.size(), 0u);
          continue;
        }
        EXPECT_EQ(t.rel, reference)
            << "order \"" << text << "\" cap=" << cap << " r_est=" << r_est;
      }
    }
  } while (std::next_permutation(conjuncts.begin(), conjuncts.end()));
}

/// Random conjunctions (connected or not): the DP and the greedy pass must
/// agree row-for-row, including when components force cross products.
TEST_F(RaJoinOrderTest, DpAndGreedyAgreeOnRandomConjunctions) {
  const char* atoms[] = {"P(x)",    "P(y)",    "R(x, y)", "R(y, z)",
                         "S(z, w)", "S(w, x)", "R(x, x)", "S(y, w)"};
  Rng rng(7);
  for (int round = 0; round < 40; ++round) {
    const size_t n = 4 + rng.Below(3);  // 4–6 conjuncts
    std::string text = "(x, y, z, w) . ";
    for (size_t i = 0; i < n; ++i) {
      if (i > 0) text += " & ";
      text += atoms[rng.Below(8)];
    }
    Query query = Parse(text);
    RaTable dp = CompileAndRun(query, /*dp_cap=*/10, /*r_est=*/8.0);
    RaTable greedy = CompileAndRun(query, /*dp_cap=*/0, /*r_est=*/8.0);
    EXPECT_EQ(dp.rel, greedy.rel) << "query: " << text;
  }
}

/// Walks the join nodes of `plan`, checking every kJoin's children share
/// at least one attribute.
void ExpectNoCrossProducts(const PlanPtr& plan, const std::string& context) {
  switch (plan->kind()) {
    case PlanKind::kJoin: {
      bool shared = false;
      for (VarId v : plan->left()->schema()) {
        for (VarId w : plan->right()->schema()) shared |= (v == w);
      }
      EXPECT_TRUE(shared) << "cross product in " << context;
      ExpectNoCrossProducts(plan->left(), context);
      ExpectNoCrossProducts(plan->right(), context);
      break;
    }
    case PlanKind::kUnion:
    case PlanKind::kAntiJoin:
    case PlanKind::kSemiJoin:
      ExpectNoCrossProducts(plan->left(), context);
      ExpectNoCrossProducts(plan->right(), context);
      break;
    case PlanKind::kProject:
      ExpectNoCrossProducts(plan->child(), context);
      break;
    default:
      break;  // leaves
  }
}

/// Regression: whenever the conjunction graph is connected, the DP must
/// find a plan with no cross product — under any statistics skew (a buggy
/// cost model once preferred a cross product of two tiny relations over a
/// connected join).
TEST_F(RaJoinOrderTest, DpNeverPicksCrossProductWhenConnectedOrderExists) {
  const char* texts[] = {
      "(x, y, z, w) . R(x, y) & S(y, z) & R(z, w)",
      "(x, y, z, w) . R(x, y) & S(y, z) & R(z, w) & P(w)",
      "(x, y, z, w) . P(x) & R(x, y) & S(y, z) & R(z, w) & P(w)",
  };
  for (const char* text : texts) {
    Query query = Parse(text);
    for (double r_est : {1.0, 4.0, 256.0}) {
      RaCardinalities stats;
      stats.relation_sizes.assign(vocab_.num_predicates(), 4.0);
      stats.relation_sizes[p_] = 1.0;  // tiny ends tempt a cross product
      stats.relation_sizes[r_] = r_est;
      RaCompiler compiler(&vocab_, stats);
      ASSERT_OK_AND_ASSIGN(PlanPtr plan, compiler.Compile(query));
      ASSERT_FALSE(compiler.join_order_log().empty());
      EXPECT_TRUE(compiler.join_order_log().back().used_dp);
      ExpectNoCrossProducts(plan, std::string(text) +
                                      " (r_est=" + std::to_string(r_est) +
                                      ")");
    }
  }
}

/// The semijoin-reduced plan with the candidate set bound must compute
/// exactly `original ∩ candidates`, on random formulas covering the whole
/// operator alphabet (joins, unions, anti-joins, projections, complements).
TEST_F(RaJoinOrderTest, SemijoinReductionMatchesOriginalIntersection) {
  RandomFormulaParams params;
  params.max_depth = 3;
  params.free_vars = {"hx"};
  const std::vector<std::vector<Value>> candidate_sets = {
      {}, {a_}, {b_, d_}, {a_, b_, c_, d_}};
  for (uint64_t seed = 0; seed < 40; ++seed) {
    Rng rng(seed);
    FormulaPtr body = RandomFormula(&rng, &vocab_, params);
    ASSERT_OK_AND_ASSIGN(
        Query query, Query::Make({vocab_.AddVariable("hx")}, std::move(body)));
    RaCompiler compiler(&vocab_);
    ASSERT_OK_AND_ASSIGN(PlanPtr plan, compiler.Compile(query));
    RaExecutor exec(db_.get());
    ASSERT_OK_AND_ASSIGN(RaTable original, exec.Execute(plan));

    ASSERT_OK_AND_ASSIGN(ReducedPlan red, SemijoinReduce(plan));
    ASSERT_NE(red.param, nullptr);
    for (const std::vector<Value>& cands : candidate_sets) {
      exec.BindParam(red.param.get(), cands.data(), cands.size());
      ASSERT_OK_AND_ASSIGN(const RaTableView* view,
                           exec.ExecuteView(red.plan));
      Relation expected(1);
      for (Value v : cands) {
        if (original.rel.Contains({v})) expected.Insert({v});
      }
      EXPECT_EQ(view->rows.ToRelation(), expected)
          << "seed " << seed << ", " << cands.size() << " candidates";
    }
  }
}

/// The shadowing regression in isolation: `(hx) . P(hx) & ∃hx. R(hx, hx)`
/// re-binds the head variable under the quantifier, so the pushdown must
/// stop at that projection — the inner R scan ranges over *all* rows, not
/// just candidate ones.
TEST_F(RaJoinOrderTest, SemijoinReductionHandlesShadowedHeadVariable) {
  FormulaBuilder b(&vocab_);
  FormulaPtr body = b.And({b.Atom("P", {b.V("hx")}),
                           b.Exists("hx", b.Atom("R", {b.V("hx"), b.V("hx")}))});
  ASSERT_OK_AND_ASSIGN(
      Query query, Query::Make({vocab_.AddVariable("hx")}, std::move(body)));
  RaCompiler compiler(&vocab_);
  ASSERT_OK_AND_ASSIGN(PlanPtr plan, compiler.Compile(query));
  RaExecutor exec(db_.get());
  ASSERT_OK_AND_ASSIGN(RaTable original, exec.Execute(plan));
  // R(d, d) holds, so the inner ∃ is true and P decides: {A, D}.
  EXPECT_TRUE(original.rel.Contains({a_}));
  EXPECT_TRUE(original.rel.Contains({d_}));

  ASSERT_OK_AND_ASSIGN(ReducedPlan red, SemijoinReduce(plan));
  const std::vector<Value> cands = {a_, b_};
  exec.BindParam(red.param.get(), cands.data(), cands.size());
  ASSERT_OK_AND_ASSIGN(const RaTableView* view, exec.ExecuteView(red.plan));
  Relation expected(1);
  expected.Insert({a_});  // {A, D} ∩ {A, B}
  EXPECT_EQ(view->rows.ToRelation(), expected);
}

/// Boolean queries have nothing to filter by: the reduction is the
/// identity with a null param, and the plan still executes unchanged.
TEST_F(RaJoinOrderTest, SemijoinReductionIsIdentityOnBooleanQueries) {
  Query query = Parse("() . exists x. exists y. R(x, y) & P(y)");
  RaCompiler compiler(&vocab_);
  ASSERT_OK_AND_ASSIGN(PlanPtr plan, compiler.Compile(query));
  ASSERT_OK_AND_ASSIGN(ReducedPlan red, SemijoinReduce(plan));
  EXPECT_EQ(red.param, nullptr);
  EXPECT_EQ(red.plan, plan);
}

}  // namespace
}  // namespace lqdb
