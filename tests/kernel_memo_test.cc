// Unit tests for the kernel-class signature machinery and the concurrent
// verdict table (src/lqdb/eval/kernel_memo.h). The differential suite pins
// memo-on ≡ memo-off end to end; these tests pin the *reasons* it is sound,
// in particular the counterexample that rules out the naive
// "query-constant restriction + block sizes" signature.
#include "lqdb/eval/kernel_memo.h"

#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "lqdb/cwdb/cw_database.h"
#include "lqdb/cwdb/mapping.h"
#include "tests/testing.h"

namespace lqdb {
namespace {

// Facts P(c), Q(d) and a spare constant e. The partitions {c,d},{e} and
// {c,e},{d} agree on block sizes and on the (empty) restriction to query
// constants, yet the first merges c into a Q-fact's constant and the second
// into a bare one — the images are not isomorphic, so a signature that
// identified them would serve wrong verdicts. Interchangeability classes
// keep them apart: neither (c d) nor (c e) nor (d e) preserves the facts.
TEST(KernelSignature, NaiveBlockSizeSignatureWouldBeUnsound) {
  CwDatabase lb;
  const ConstId c = lb.AddKnownConstant("c");
  const ConstId d = lb.AddKnownConstant("d");
  const ConstId e = lb.AddKnownConstant("e");
  ASSERT_OK_AND_ASSIGN(PredId p, lb.AddPredicate("P", 1));
  ASSERT_OK_AND_ASSIGN(PredId q, lb.AddPredicate("Q", 1));
  ASSERT_OK(lb.AddFact(p, Tuple{c}));
  ASSERT_OK(lb.AddFact(q, Tuple{d}));

  const KernelSignatureContext ctx(lb, /*pinned=*/{});
  EXPECT_EQ(ctx.num_classes(), 3u);  // no two constants interchangeable

  KernelSignatureScratch s1, s2;
  ctx.SignatureOf(ConstMapping{c, c, e}, &s1);  // merge {c,d}, keep {e}
  ctx.SignatureOf(ConstMapping{c, d, c}, &s2);  // merge {c,e}, keep {d}
  EXPECT_NE(s1.sig, s2.sig);
}

// With facts P(c), P(d), the transposition (c d) fixes the fact set, and
// the spare constants e, f appear in no fact: classes {c,d} and {e,f}.
// Merging one P-constant with one spare yields isomorphic images whichever
// representatives are chosen, so the signatures must coincide.
TEST(KernelSignature, InterchangeableConstantsShareSignatures) {
  CwDatabase lb;
  const ConstId c = lb.AddKnownConstant("c");
  const ConstId d = lb.AddKnownConstant("d");
  const ConstId e = lb.AddKnownConstant("e");
  const ConstId f = lb.AddKnownConstant("f");
  ASSERT_OK_AND_ASSIGN(PredId p, lb.AddPredicate("P", 1));
  ASSERT_OK(lb.AddFact(p, Tuple{c}));
  ASSERT_OK(lb.AddFact(p, Tuple{d}));

  const KernelSignatureContext ctx(lb, /*pinned=*/{});
  EXPECT_EQ(ctx.num_classes(), 2u);

  KernelSignatureScratch s1, s2;
  ctx.SignatureOf(ConstMapping{c, d, c, f}, &s1);  // merge {c,e}
  ctx.SignatureOf(ConstMapping{c, d, e, d}, &s2);  // merge {d,f}
  EXPECT_EQ(s1.sig, s2.sig);

  // The identity and the fully split mapping trivially agree too.
  ctx.SignatureOf(ConstMapping{c, d, e, f}, &s1);
  ctx.SignatureOf(ConstMapping{c, d, e, f}, &s2);
  EXPECT_EQ(s1.sig, s2.sig);
}

// A pinned (query-mentioned) constant carries its identity: merging the
// spare into pinned c is not the same as merging it into interchangeable d.
TEST(KernelSignature, PinnedConstantsKeepTheirIdentity) {
  CwDatabase lb;
  const ConstId c = lb.AddKnownConstant("c");
  const ConstId d = lb.AddKnownConstant("d");
  const ConstId e = lb.AddKnownConstant("e");
  ASSERT_OK_AND_ASSIGN(PredId p, lb.AddPredicate("P", 1));
  ASSERT_OK(lb.AddFact(p, Tuple{c}));
  ASSERT_OK(lb.AddFact(p, Tuple{d}));

  // Unpinned, c ~ d and the two merges would be signature-equal...
  const KernelSignatureContext unpinned(lb, /*pinned=*/{});
  KernelSignatureScratch s1, s2;
  unpinned.SignatureOf(ConstMapping{c, d, c}, &s1);  // merge {c,e}
  unpinned.SignatureOf(ConstMapping{c, d, d}, &s2);  // merge {d,e}
  EXPECT_EQ(s1.sig, s2.sig);

  // ...but pinning c (the query mentions it) must split them apart.
  const KernelSignatureContext pinned(lb, /*pinned=*/{c});
  EXPECT_LT(pinned.code_of(c), 0);
  pinned.SignatureOf(ConstMapping{c, d, c}, &s1);
  pinned.SignatureOf(ConstMapping{c, d, d}, &s2);
  EXPECT_NE(s1.sig, s2.sig);
}

// Constants appearing in no fact always collapse into one class — the
// source of the memo's compression on sparse databases.
TEST(KernelSignature, FactFreeConstantsFormOneClass) {
  CwDatabase lb;
  for (int i = 0; i < 5; ++i) {
    lb.AddKnownConstant("k" + std::to_string(i));
  }
  ASSERT_OK_AND_ASSIGN(PredId p, lb.AddPredicate("P", 1));
  (void)p;  // declared but empty: still no facts
  const KernelSignatureContext ctx(lb, /*pinned=*/{});
  EXPECT_EQ(ctx.num_classes(), 1u);
}

// Relabeling maps an image value to the rank of its block in the canonical
// block order, so equal rows under equivalent mappings compare equal.
TEST(KernelSignature, RelabelIsConsistentAcrossEquivalentMappings) {
  CwDatabase lb;
  const ConstId c = lb.AddKnownConstant("c");
  const ConstId d = lb.AddKnownConstant("d");
  const ConstId e = lb.AddKnownConstant("e");
  const ConstId f = lb.AddKnownConstant("f");
  ASSERT_OK_AND_ASSIGN(PredId p, lb.AddPredicate("P", 1));
  ASSERT_OK(lb.AddFact(p, Tuple{c}));
  ASSERT_OK(lb.AddFact(p, Tuple{d}));

  const KernelSignatureContext ctx(lb, /*pinned=*/{});
  KernelSignatureScratch s1, s2;
  ctx.SignatureOf(ConstMapping{c, d, c, f}, &s1);  // e joins c's block
  ctx.SignatureOf(ConstMapping{c, d, e, d}, &s2);  // f joins d's block
  ASSERT_EQ(s1.sig, s2.sig);
  // The P-constant merged with a spare: same block rank either way.
  EXPECT_EQ(s1.relabel[c], s2.relabel[d]);
  // The untouched P-constant likewise.
  EXPECT_EQ(s1.relabel[d], s2.relabel[c]);
  // And the surviving spare.
  EXPECT_EQ(s1.relabel[f], s2.relabel[e]);
}

TEST(KernelMemo, RoundTripAndFirstWriterWins) {
  KernelMemo memo(/*enabled=*/true);
  const uint32_t sig = memo.InternSignature("sig-a");
  EXPECT_EQ(memo.InternSignature("sig-a"), sig);
  EXPECT_NE(memo.InternSignature("sig-b"), sig);

  const Value row[2] = {3, 5};
  EXPECT_EQ(memo.LookupRow(sig, row, 2), -1);
  memo.InsertRow(sig, row, 2, true);
  EXPECT_EQ(memo.LookupRow(sig, row, 2), 1);
  memo.InsertRow(sig, row, 2, false);  // duplicate: dropped
  EXPECT_EQ(memo.LookupRow(sig, row, 2), 1);

  // Same row under another signature is a distinct key.
  EXPECT_EQ(memo.LookupRow(sig + 1, row, 2), -1);
  memo.InsertRow(sig + 1, row, 2, false);
  EXPECT_EQ(memo.LookupRow(sig + 1, row, 2), 0);

  EXPECT_EQ(memo.counters().signatures, 2u);
}

TEST(KernelMemo, SaturatesAtMaxEntries) {
  KernelMemo memo(/*enabled=*/true, /*max_entries=*/4);
  const uint32_t sig = memo.InternSignature("sig");
  for (Value v = 0; v < 8; ++v) {
    const Value row[1] = {v};
    memo.InsertRow(sig, row, 1, true);
  }
  int stored = 0;
  for (Value v = 0; v < 8; ++v) {
    const Value row[1] = {v};
    if (memo.LookupRow(sig, row, 1) != -1) ++stored;
  }
  EXPECT_EQ(stored, 4);
}

// Concurrent readers and writers over a small key space; runs under the CI
// TSan job. Verdicts are a function of the key, so any interleaving must
// read either "absent" or the one correct verdict.
TEST(KernelMemo, ConcurrentLookupsAndInsertsAgree) {
  KernelMemo memo(/*enabled=*/true);
  const uint32_t sig = memo.InternSignature("sig");
  constexpr int kThreads = 4;
  constexpr Value kKeys = 64;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&memo, sig, t]() {
      for (int round = 0; round < 200; ++round) {
        for (Value v = 0; v < kKeys; ++v) {
          const Value row[2] = {v, static_cast<Value>(v + 1)};
          const int got = memo.LookupRow(sig, row, 2);
          const int want = (v % 2 == 0) ? 1 : 0;
          if (got != -1 && got != want) {
            ADD_FAILURE() << "key " << v << " read verdict " << got;
            return;
          }
          if ((round + t) % 3 == 0) {
            memo.InsertRow(sig, row, 2, v % 2 == 0);
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (Value v = 0; v < kKeys; ++v) {
    const Value row[2] = {v, static_cast<Value>(v + 1)};
    EXPECT_EQ(memo.LookupRow(sig, row, 2), (v % 2 == 0) ? 1 : 0);
  }
}

TEST(KernelMemo, DisabledTableIsInert) {
  KernelMemo memo(/*enabled=*/false);
  EXPECT_FALSE(memo.enabled());
  const Value row[1] = {7};
  memo.InsertRow(0, row, 1, true);
  EXPECT_EQ(memo.LookupRow(0, row, 1), -1);
}

}  // namespace
}  // namespace lqdb
