#include <gtest/gtest.h>

#include "lqdb/exact/exact.h"
#include "lqdb/logic/classify.h"
#include "lqdb/logic/printer.h"
#include "lqdb/reductions/coloring.h"
#include "lqdb/reductions/graph.h"
#include "lqdb/reductions/qbf.h"
#include "lqdb/reductions/qbf_reduction.h"
#include "lqdb/reductions/so_reduction.h"
#include "testing.h"

namespace lqdb {
namespace {

TEST(GraphTest, GeneratorsHaveExpectedShape) {
  Graph c5 = CycleGraph(5);
  EXPECT_EQ(c5.num_vertices(), 5);
  EXPECT_EQ(c5.num_edges(), 5u);

  Graph k4 = CompleteGraph(4);
  EXPECT_EQ(k4.num_edges(), 6u);

  Graph petersen = PetersenGraph();
  EXPECT_EQ(petersen.num_vertices(), 10);
  EXPECT_EQ(petersen.num_edges(), 15u);

  Graph kab = CompleteBipartiteGraph(2, 3);
  EXPECT_EQ(kab.num_edges(), 6u);

  Graph dup(3);
  dup.AddEdge(0, 1);
  dup.AddEdge(1, 0);
  dup.AddEdge(2, 2);  // self-loops dropped
  EXPECT_EQ(dup.num_edges(), 1u);
}

TEST(GraphTest, RandomGraphIsDeterministic) {
  Graph a = RandomGraph(8, 0.4, 42);
  Graph b = RandomGraph(8, 0.4, 42);
  EXPECT_EQ(a.edges(), b.edges());
}

TEST(ColoringSolverTest, KnownChromaticNumbers) {
  EXPECT_TRUE(IsKColorable(CycleGraph(4), 2));
  EXPECT_FALSE(IsKColorable(CycleGraph(5), 2));
  EXPECT_TRUE(IsKColorable(CycleGraph(5), 3));
  EXPECT_TRUE(IsKColorable(CompleteGraph(3), 3));
  EXPECT_FALSE(IsKColorable(CompleteGraph(4), 3));
  EXPECT_TRUE(IsKColorable(PetersenGraph(), 3));
  EXPECT_TRUE(IsKColorable(CompleteBipartiteGraph(3, 3), 2));
}

TEST(ColoringSolverTest, WitnessIsAProperColoring) {
  Graph g = PetersenGraph();
  std::vector<int> colors;
  ASSERT_TRUE(IsKColorable(g, 3, &colors));
  ASSERT_EQ(colors.size(), 10u);
  for (const auto& [u, v] : g.edges()) {
    EXPECT_NE(colors[u], colors[v]);
    EXPECT_GE(colors[u], 0);
    EXPECT_LT(colors[u], 3);
  }
}

/// Theorem 5(2): G is 3-colorable iff the reduction query is NOT certain.
TEST(ColoringReductionTest, AgreesWithSolverOnNamedGraphs) {
  struct Case {
    const char* name;
    Graph graph;
  };
  const Case cases[] = {
      {"K3", CompleteGraph(3)},       {"K4", CompleteGraph(4)},
      {"C4", CycleGraph(4)},          {"C5", CycleGraph(5)},
      {"C7", CycleGraph(7)},          {"K23", CompleteBipartiteGraph(2, 3)},
      {"singleton", Graph(1)},
  };
  for (const Case& c : cases) {
    ASSERT_OK_AND_ASSIGN(ColoringReduction red,
                         BuildColoringReduction(c.graph));
    ExactEvaluator exact(&red.lb);
    ASSERT_OK_AND_ASSIGN(bool certain, exact.Contains(red.query, {}));
    EXPECT_EQ(!certain, IsKColorable(c.graph, 3)) << c.name;
  }
}

TEST(ColoringReductionTest, AgreesWithSolverOnRandomGraphs) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    // Dense small graphs so both answers occur.
    Graph g = RandomGraph(5, 0.75, seed);
    ASSERT_OK_AND_ASSIGN(ColoringReduction red, BuildColoringReduction(g));
    ExactEvaluator exact(&red.lb);
    ASSERT_OK_AND_ASSIGN(bool certain, exact.Contains(red.query, {}));
    EXPECT_EQ(!certain, IsKColorable(g, 3)) << "seed " << seed;
  }
}

TEST(ColoringReductionTest, DatabaseShapeMatchesThePaper) {
  Graph g = CycleGraph(3);
  ASSERT_OK_AND_ASSIGN(ColoringReduction red, BuildColoringReduction(g));
  // Constants: 1, 2, 3 and one per vertex.
  EXPECT_EQ(red.lb.num_constants(), 6u);
  // Exactly the three uniqueness axioms among the colors.
  EXPECT_EQ(red.lb.AllDistinctPairs().size(), 3u);
  // Facts: M(1..3) plus one R fact per edge.
  EXPECT_EQ(red.lb.NumFacts(), 3u + g.num_edges());
  EXPECT_FALSE(red.lb.IsFullySpecified());
}

TEST(QbfSolverTest, HandComputedFormulas) {
  // ∀x ∃y (x ↔ y): true.
  {
    Qbf qbf;
    qbf.block_sizes = {1, 1};
    BoolExprPtr x = BoolExpr::Var({0, 0});
    BoolExprPtr y = BoolExpr::Var({1, 0});
    qbf.matrix = BoolExpr::Or(
        {BoolExpr::And({x, y}),
         BoolExpr::And({BoolExpr::Not(x), BoolExpr::Not(y)})});
    EXPECT_TRUE(EvalQbf(qbf));
  }
  // ∀x ∃y (x ∧ y): false.
  {
    Qbf qbf;
    qbf.block_sizes = {1, 1};
    qbf.matrix =
        BoolExpr::And({BoolExpr::Var({0, 0}), BoolExpr::Var({1, 0})});
    EXPECT_FALSE(EvalQbf(qbf));
  }
  // ∀x (x ∨ ¬x): true.
  {
    Qbf qbf;
    qbf.block_sizes = {1};
    BoolExprPtr x = BoolExpr::Var({0, 0});
    qbf.matrix = BoolExpr::Or({x, BoolExpr::Not(x)});
    EXPECT_TRUE(EvalQbf(qbf));
  }
}

namespace {

/// Independent decision procedure for 3CNF QBFs: recursive block
/// quantification with direct clause checking (no BoolExpr involved).
bool EvalCnfDirect(const Qbf3Cnf& cnf, size_t block,
                   std::vector<std::vector<bool>>* a) {
  if (block == cnf.block_sizes.size()) {
    for (const Cnf3Clause& clause : cnf.clauses) {
      bool sat = false;
      for (const Cnf3Literal& lit : clause) {
        if ((*a)[lit.var.block][lit.var.index] == lit.positive) sat = true;
      }
      if (!sat) return false;
    }
    return true;
  }
  const bool universal = block % 2 == 0;
  const int m = cnf.block_sizes[block];
  for (uint64_t mask = 0; mask < (1ull << m); ++mask) {
    for (int i = 0; i < m; ++i) (*a)[block][i] = (mask >> i) & 1;
    bool sub = EvalCnfDirect(cnf, block + 1, a);
    if (universal && !sub) return false;
    if (!universal && sub) return true;
  }
  return universal;
}

}  // namespace

TEST(QbfSolverTest, CnfConversionPreservesTruth) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Qbf3Cnf cnf = RandomQbf3Cnf({2, 2}, 4, seed);
    std::vector<std::vector<bool>> a;
    for (int m : cnf.block_sizes) a.emplace_back(m, false);
    EXPECT_EQ(EvalQbf(cnf.ToQbf()), EvalCnfDirect(cnf, 0, &a)) << seed;
  }
}

/// Theorem 7: the Σₖ query is certain iff the QBF is true.
TEST(QbfReductionTest, AgreesWithSolverOnRandomInstances) {
  const std::vector<std::vector<int>> shapes = {
      {2},        // k = 0: pure universal block
      {2, 2},     // k = 1
      {1, 2, 1},  // k = 2
      {2, 1, 2},  // k = 2
  };
  for (const auto& shape : shapes) {
    for (uint64_t seed = 0; seed < 8; ++seed) {
      Qbf qbf = RandomQbf(shape, 6, seed);
      ASSERT_OK_AND_ASSIGN(QbfReduction red, BuildQbfReduction(qbf));
      ExactEvaluator exact(&red.lb);
      ASSERT_OK_AND_ASSIGN(bool certain, exact.Contains(red.query, {}));
      EXPECT_EQ(certain, EvalQbf(qbf))
          << "shape {" << shape.size() << " blocks} seed " << seed << "\n"
          << qbf.matrix->ToString() << "\n"
          << PrintQuery(red.lb.vocab(), red.query);
    }
  }
}

TEST(QbfReductionTest, QueryShapeIsSigmaK) {
  // A 3-block B_{k+1} formula (k = 2) must produce a Σ₂ first-order query:
  // prefix ∃... ∀..., matrix quantifier-free.
  Qbf qbf = RandomQbf({1, 2, 2}, 5, 7);
  ASSERT_OK_AND_ASSIGN(QbfReduction red, BuildQbfReduction(qbf));
  EXPECT_TRUE(IsFirstOrder(red.query.body()));
  EXPECT_TRUE(InSigmaFoK(red.query.body(), 2));
  PrefixShape shape = ClassifyFoPrefix(red.query.body());
  EXPECT_TRUE(shape.prenex);
  EXPECT_TRUE(shape.starts_existential);
}

TEST(QbfReductionTest, DatabaseShapeMatchesThePaper) {
  Qbf qbf = RandomQbf({3, 2}, 4, 11);
  ASSERT_OK_AND_ASSIGN(QbfReduction red, BuildQbfReduction(qbf));
  // Constants 0, 1 and c_1..c_3.
  EXPECT_EQ(red.lb.num_constants(), 5u);
  // Single uniqueness axiom ¬(0 = 1).
  EXPECT_EQ(red.lb.AllDistinctPairs().size(), 1u);
  // Facts: M(1), N_j(c_j).
  EXPECT_EQ(red.lb.NumFacts(), 4u);
}

/// Theorem 9: the Σ¹ₖ second-order query is certain iff the QBF is true.
TEST(SoReductionTest, AgreesWithSolverOnRandomInstances) {
  const std::vector<std::vector<int>> shapes = {
      {2},        // k = 0
      {2, 2},     // k = 1
      {1, 1, 2},  // k = 2
  };
  for (const auto& shape : shapes) {
    for (uint64_t seed = 0; seed < 6; ++seed) {
      Qbf3Cnf cnf = RandomQbf3Cnf(shape, 4, seed);
      ASSERT_OK_AND_ASSIGN(SoReduction red, BuildSoReduction(cnf));
      ExactEvaluator exact(&red.lb);
      ASSERT_OK_AND_ASSIGN(bool certain, exact.Contains(red.query, {}));
      EXPECT_EQ(certain, EvalQbf(cnf.ToQbf()))
          << "blocks " << shape.size() << " seed " << seed << "\n"
          << PrintQuery(red.lb.vocab(), red.query);
    }
  }
}

TEST(SoReductionTest, QueryShapeIsSigma1K) {
  Qbf3Cnf cnf = RandomQbf3Cnf({1, 1, 1}, 3, 3);  // k = 2
  ASSERT_OK_AND_ASSIGN(SoReduction red, BuildSoReduction(cnf));
  EXPECT_FALSE(IsFirstOrder(red.query.body()));
  EXPECT_TRUE(InSigmaSoK(red.query.body(), 2));
  PrefixShape shape = ClassifySoPrefix(red.query.body());
  EXPECT_TRUE(shape.prenex);
  EXPECT_EQ(shape.blocks, 2);
  EXPECT_TRUE(shape.starts_existential);
}

TEST(SoReductionTest, QueryDependsOnlyOnClauseShapes) {
  // Two instances with the same clause shapes but different variables must
  // produce structurally equal queries (data complexity: the query is
  // fixed).
  Qbf3Cnf a;
  a.block_sizes = {2, 1};
  a.clauses.push_back(Cnf3Clause{Cnf3Literal{{0, 0}, true},
                                 Cnf3Literal{{0, 1}, false},
                                 Cnf3Literal{{1, 0}, true}});
  Qbf3Cnf b;
  b.block_sizes = {2, 1};
  b.clauses.push_back(Cnf3Clause{Cnf3Literal{{0, 1}, true},
                                 Cnf3Literal{{0, 0}, false},
                                 Cnf3Literal{{1, 0}, true}});
  ASSERT_OK_AND_ASSIGN(SoReduction ra, BuildSoReduction(a));
  ASSERT_OK_AND_ASSIGN(SoReduction rb, BuildSoReduction(b));
  EXPECT_EQ(PrintQuery(ra.lb.vocab(), ra.query),
            PrintQuery(rb.lb.vocab(), rb.query));
}

}  // namespace
}  // namespace lqdb
