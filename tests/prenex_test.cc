#include <gtest/gtest.h>

#include "lqdb/eval/evaluator.h"
#include "lqdb/logic/classify.h"
#include "lqdb/logic/parser.h"
#include "lqdb/logic/prenex.h"
#include "lqdb/logic/printer.h"
#include "lqdb/util/rng.h"
#include "testing.h"

namespace lqdb {
namespace {

using testing::RandomFormula;
using testing::RandomFormulaParams;

TEST(PrenexTest, AlreadyPrenexStaysPrenex) {
  Vocabulary v;
  ASSERT_OK_AND_ASSIGN(FormulaPtr f,
                       ParseFormula(&v, "exists x. forall y. R(x, y)"));
  ASSERT_OK_AND_ASSIGN(FormulaPtr p, ToPrenex(&v, f));
  PrefixShape shape = ClassifyFoPrefix(p);
  EXPECT_TRUE(shape.prenex);
  EXPECT_EQ(shape.blocks, 2);
  EXPECT_TRUE(shape.starts_existential);
}

TEST(PrenexTest, HoistsThroughConnectives) {
  Vocabulary v;
  ASSERT_OK_AND_ASSIGN(
      FormulaPtr f,
      ParseFormula(&v, "(exists x. P(x)) & (exists y. Q(y))"));
  ASSERT_OK_AND_ASSIGN(FormulaPtr p, ToPrenex(&v, f));
  EXPECT_TRUE(ClassifyFoPrefix(p).prenex);
  // The matrix is the conjunction of the two atoms.
  EXPECT_EQ(p->kind(), FormulaKind::kExists);
  EXPECT_EQ(p->child()->kind(), FormulaKind::kExists);
  EXPECT_EQ(p->child()->child()->kind(), FormulaKind::kAnd);
}

TEST(PrenexTest, NegationFlipsHoistedQuantifiers) {
  Vocabulary v;
  ASSERT_OK_AND_ASSIGN(FormulaPtr f,
                       ParseFormula(&v, "!(exists x. P(x)) | Q(A)"));
  ASSERT_OK_AND_ASSIGN(FormulaPtr p, ToPrenex(&v, f));
  ASSERT_EQ(p->kind(), FormulaKind::kForall);
  EXPECT_EQ(p->child()->kind(), FormulaKind::kOr);
}

TEST(PrenexTest, VariableClashesAreRenamedApart) {
  Vocabulary v;
  // The same x is bound twice; hoisting must keep them independent.
  ASSERT_OK_AND_ASSIGN(
      FormulaPtr f,
      ParseFormula(&v, "(exists x. P(x)) & (forall x. Q(x))"));
  ASSERT_OK_AND_ASSIGN(FormulaPtr p, ToPrenex(&v, f));
  ASSERT_EQ(p->kind(), FormulaKind::kExists);
  ASSERT_EQ(p->child()->kind(), FormulaKind::kForall);
  EXPECT_NE(p->var(), p->child()->var());
}

TEST(PrenexTest, ImplicationAntecedentFlips) {
  Vocabulary v;
  ASSERT_OK_AND_ASSIGN(FormulaPtr f,
                       ParseFormula(&v, "(forall x. P(x)) -> Q(A)"));
  ASSERT_OK_AND_ASSIGN(FormulaPtr p, ToPrenex(&v, f));
  // ∀ in the antecedent becomes ∃ after prenexing the NNF (¬∀ = ∃¬).
  EXPECT_EQ(p->kind(), FormulaKind::kExists);
}

TEST(PrenexTest, RejectsSecondOrder) {
  Vocabulary v;
  ASSERT_OK_AND_ASSIGN(FormulaPtr f,
                       ParseFormula(&v, "exists2 S/1. exists x. S(x)"));
  EXPECT_EQ(ToPrenex(&v, f).status().code(), StatusCode::kUnimplemented);
}

TEST(PrenexTest, PreservesSemanticsOnRandomWorlds) {
  for (uint64_t seed = 200; seed < 260; ++seed) {
    Rng rng(seed);
    Vocabulary vocab;
    ConstId a = vocab.AddConstant("A");
    ConstId b = vocab.AddConstant("B");
    ConstId c = vocab.AddConstant("C");
    PredId p = vocab.AddPredicate("P0", 1).value();
    PredId r = vocab.AddPredicate("R0", 2).value();

    PhysicalDatabase db(&vocab);
    db.InterpretConstantsAsThemselves();
    for (Value x : {a, b, c}) {
      if (rng.Chance(0.5)) ASSERT_OK(db.AddTuple(p, {x}));
      for (Value y : {a, b, c}) {
        if (rng.Chance(0.3)) ASSERT_OK(db.AddTuple(r, {x, y}));
      }
    }

    RandomFormulaParams params;
    params.free_vars = {};
    params.max_depth = 5;
    FormulaPtr f = RandomFormula(&rng, &vocab, params);
    ASSERT_OK_AND_ASSIGN(FormulaPtr prenexed, ToPrenex(&vocab, f));
    EXPECT_TRUE(ClassifyFoPrefix(prenexed).prenex)
        << PrintFormula(vocab, prenexed);

    Evaluator eval(&db);
    ASSERT_OK_AND_ASSIGN(bool direct, eval.Satisfies(f));
    ASSERT_OK_AND_ASSIGN(bool via_prenex, eval.Satisfies(prenexed));
    EXPECT_EQ(direct, via_prenex)
        << "seed " << seed << "\n  original: " << PrintFormula(vocab, f)
        << "\n  prenexed: " << PrintFormula(vocab, prenexed);
  }
}

TEST(PrenexTest, FreeVariablesAreUntouched) {
  Vocabulary v;
  ASSERT_OK_AND_ASSIGN(FormulaPtr f,
                       ParseFormula(&v, "P(w) & exists x. R(w, x)"));
  ASSERT_OK_AND_ASSIGN(FormulaPtr p, ToPrenex(&v, f));
  std::set<VarId> free = FreeVariables(p);
  EXPECT_EQ(free.size(), 1u);
  EXPECT_TRUE(free.count(v.FindVariable("w")));
}

}  // namespace
}  // namespace lqdb
