/// The engine layer: registry bookkeeping, capability flags, and the
/// contract that every engine created through the registry behaves like the
/// evaluator it wraps.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "lqdb/engine/engine.h"
#include "lqdb/exact/exact.h"
#include "lqdb/logic/parser.h"
#include "tests/testing.h"

namespace lqdb {
namespace {

std::unique_ptr<CwDatabase> MurderDb() {
  auto lb = std::make_unique<CwDatabase>();
  lb->AddUnknownConstant("Jack");
  lb->AddKnownConstant("Victoria");
  lb->AddKnownConstant("Disraeli");
  Status s = lb->AddFact("MURDERER", {"Jack"});
  s = lb->AddDistinct("Jack", "Victoria");
  (void)s;
  return lb;
}

TEST(EngineRegistryTest, BuiltinsAreRegistered) {
  EngineRegistry& registry = EngineRegistry::Global();
  for (const char* name :
       {"brute", "exact", "parallel-exact", "ra-exact", "approx",
        "physical"}) {
    EXPECT_TRUE(registry.Has(name)) << name;
  }
  auto names = registry.Names();
  EXPECT_GE(names.size(), 6u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(EngineRegistryTest, CapabilitiesMatchTheTheorems) {
  EngineRegistry& registry = EngineRegistry::Global();
  for (const char* name : {"brute", "exact", "parallel-exact", "ra-exact"}) {
    ASSERT_OK_AND_ASSIGN(EngineCapabilities caps,
                         registry.CapabilitiesOf(name));
    EXPECT_TRUE(caps.exact()) << name;
    EXPECT_FALSE(caps.polynomial) << name;  // Theorem 5: co-NP-complete
  }
  ASSERT_OK_AND_ASSIGN(EngineCapabilities approx,
                       registry.CapabilitiesOf("approx"));
  EXPECT_TRUE(approx.sound);        // Theorem 11
  EXPECT_FALSE(approx.complete);    // incomplete in general
  EXPECT_TRUE(approx.polynomial);   // Theorem 14
  ASSERT_OK_AND_ASSIGN(EngineCapabilities physical,
                       registry.CapabilitiesOf("physical"));
  EXPECT_FALSE(physical.sound);
  EXPECT_FALSE(physical.complete);
}

TEST(EngineRegistryTest, UnknownNamesAreNotFound) {
  EngineRegistry& registry = EngineRegistry::Global();
  auto lb = MurderDb();
  auto engine = registry.Create("frobnicator", lb.get());
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kNotFound);
  // The error lists the registered engines so shell users can recover.
  EXPECT_NE(engine.status().message().find("parallel-exact"),
            std::string::npos)
      << engine.status();
  EXPECT_FALSE(registry.CapabilitiesOf("frobnicator").ok());
}

TEST(EngineRegistryTest, DuplicateRegistrationIsRejected) {
  EngineRegistry registry;  // a private registry, not the global one
  EngineCapabilities caps;
  auto factory = [](CwDatabase*, const EngineOptions&)
      -> Result<std::unique_ptr<QueryEngine>> {
    return Status::Unimplemented("test factory");
  };
  ASSERT_OK(registry.Register("custom", caps, factory));
  Status dup = registry.Register("custom", caps, factory);
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(registry.Register("", caps, factory).code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineRegistryTest, ExactFamilyEnginesAgreeThroughTheRegistry) {
  for (const char* name : {"brute", "exact", "parallel-exact", "ra-exact"}) {
    SCOPED_TRACE(name);
    auto lb = MurderDb();
    auto query = ParseQuery(lb->mutable_vocab(), "(x) . !MURDERER(x)");
    ASSERT_TRUE(query.ok()) << query.status();

    // Direct sequential evaluation is the reference.
    ExactEvaluator reference(lb.get());
    ASSERT_OK_AND_ASSIGN(Relation expected, reference.Answer(query.value()));

    EngineOptions options;
    options.threads = 2;
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<QueryEngine> engine,
        EngineRegistry::Global().Create(name, lb.get(), options));
    EXPECT_EQ(engine->name(), name);
    EXPECT_TRUE(engine->capabilities().exact());

    ASSERT_OK_AND_ASSIGN(Relation answer, engine->Answer(query.value()));
    EXPECT_EQ(answer, expected);
    EXPECT_GE(engine->last_mappings_examined(), 1u);

    // Contains must agree with Answer membership.
    ASSERT_OK_AND_ASSIGN(bool has_victoria,
                         engine->Contains(query.value(), {1}));
    EXPECT_EQ(has_victoria, expected.Contains({1}));
  }
}

TEST(EngineRegistryTest, ApproxEngineIsSoundThroughTheRegistry) {
  auto lb = MurderDb();
  auto query = ParseQuery(lb->mutable_vocab(), "(x) . !MURDERER(x)");
  ASSERT_TRUE(query.ok()) << query.status();
  ExactEvaluator reference(lb.get());
  ASSERT_OK_AND_ASSIGN(Relation exact, reference.Answer(query.value()));

  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<QueryEngine> approx,
      EngineRegistry::Global().Create("approx", lb.get()));
  ASSERT_OK_AND_ASSIGN(Relation answer, approx->Answer(query.value()));
  EXPECT_TRUE(answer.IsSubsetOf(exact));
  // PossibleAnswer is not in the approximation's contract.
  EXPECT_FALSE(approx->capabilities().supports_possible);
  EXPECT_EQ(approx->PossibleAnswer(query.value()).status().code(),
            StatusCode::kUnimplemented);
}

TEST(EngineRegistryTest, PossibleAnswerThroughTheRegistry) {
  for (const char* name : {"exact", "parallel-exact", "ra-exact"}) {
    SCOPED_TRACE(name);
    auto lb = MurderDb();
    auto query = ParseQuery(lb->mutable_vocab(), "(x) . MURDERER(x)");
    ASSERT_TRUE(query.ok()) << query.status();
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<QueryEngine> engine,
        EngineRegistry::Global().Create(name, lb.get()));
    ASSERT_TRUE(engine->capabilities().supports_possible);
    ASSERT_OK_AND_ASSIGN(Relation possible,
                         engine->PossibleAnswer(query.value()));
    // Jack certainly; Disraeli possibly (no axiom separates him from Jack);
    // Victoria excluded by the explicit axiom.
    EXPECT_TRUE(possible.Contains({0}));
    EXPECT_TRUE(possible.Contains({2}));
    EXPECT_FALSE(possible.Contains({1}));
  }
}

TEST(EngineRegistryTest, CustomEnginesPlugIn) {
  // The extension story the registry exists for: a third-party engine
  // registered by name becomes available to every caller.
  EngineRegistry registry;
  RegisterBuiltinEngines(&registry);

  class ConstantEmptyEngine : public QueryEngine {
   public:
    const std::string& name() const override {
      static const std::string kName = "empty";
      return kName;
    }
    const EngineCapabilities& capabilities() const override {
      static const EngineCapabilities kCaps = [] {
        EngineCapabilities c;
        c.sound = true;  // vacuously: returns no tuples
        c.polynomial = true;
        return c;
      }();
      return kCaps;
    }
    Result<Relation> Answer(const Query& query) override {
      return Relation(static_cast<int>(query.arity()));
    }
    Result<bool> Contains(const Query&, const Tuple&) override {
      return false;
    }
  };

  EngineCapabilities caps;
  caps.sound = true;
  caps.polynomial = true;
  ASSERT_OK(registry.Register(
      "empty", caps,
      [](CwDatabase*, const EngineOptions&)
          -> Result<std::unique_ptr<QueryEngine>> {
        return std::unique_ptr<QueryEngine>(new ConstantEmptyEngine());
      }));

  auto lb = MurderDb();
  auto query = ParseQuery(lb->mutable_vocab(), "(x) . !MURDERER(x)");
  ASSERT_TRUE(query.ok()) << query.status();
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<QueryEngine> engine,
                       registry.Create("empty", lb.get()));
  ASSERT_OK_AND_ASSIGN(Relation answer, engine->Answer(query.value()));
  EXPECT_TRUE(answer.empty());
}

}  // namespace
}  // namespace lqdb
