#include "lqdb/ra/validate.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "lqdb/cwdb/cw_database.h"
#include "lqdb/gen/scenario.h"
#include "lqdb/logic/parser.h"
#include "lqdb/ra/compiler.h"
#include "lqdb/ra/plan.h"
#include "lqdb/ra/semijoin.h"
#include "testing.h"

namespace lqdb {

/// Test-only backdoor (friend of `Plan`): the factories refuse to build
/// malformed nodes, so the corruption tests mutate well-formed ones after
/// construction to prove the validator rejects the shapes independently.
struct PlanTestPeer {
  static void SetSchema(const PlanPtr& plan, std::vector<VarId> schema) {
    const_cast<Plan*>(plan.get())->schema_ = std::move(schema);
  }
  static void SetChild(const PlanPtr& plan, size_t index, PlanPtr child) {
    const_cast<Plan*>(plan.get())->children_[index] = std::move(child);
  }
};

namespace {

using testing::RandomFormulaParams;
using testing::RandomQuery;

class RaValidateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    x_ = vocab_.AddVariable("x");
    y_ = vocab_.AddVariable("y");
    z_ = vocab_.AddVariable("z");
    p_ = vocab_.AddPredicate("P", 1).value();
    q_ = vocab_.AddPredicate("Q", 1).value();
    r_ = vocab_.AddPredicate("R", 2).value();
  }

  PlanPtr ScanP(VarId v) {
    return Plan::Scan(vocab_, p_, {Term::Variable(v)}).value();
  }
  PlanPtr ScanQ(VarId v) {
    return Plan::Scan(vocab_, q_, {Term::Variable(v)}).value();
  }
  PlanPtr ScanR(VarId a, VarId b) {
    return Plan::Scan(vocab_, r_, {Term::Variable(a), Term::Variable(b)})
        .value();
  }

  PlanValidateOptions Opts() {
    PlanValidateOptions opts;
    opts.vocab = &vocab_;
    return opts;
  }

  Vocabulary vocab_;
  VarId x_, y_, z_;
  PredId p_, q_, r_;
};

TEST_F(RaValidateTest, WellFormedPlansValidateClean) {
  EXPECT_OK(ValidatePlan(ScanP(x_), Opts()));
  ASSERT_OK_AND_ASSIGN(PlanPtr join, Plan::Join(ScanP(x_), ScanR(x_, y_)));
  EXPECT_OK(ValidatePlan(join, Opts()));
  ASSERT_OK_AND_ASSIGN(PlanPtr proj, Plan::Project(join, {y_}));
  EXPECT_OK(ValidatePlan(proj, Opts()));
  ASSERT_OK_AND_ASSIGN(PlanPtr anti, Plan::AntiJoin(join, ScanQ(y_)));
  EXPECT_OK(ValidatePlan(anti, Opts()));
}

TEST_F(RaValidateTest, NullPlanRejected) {
  const Status s = ValidatePlan(nullptr, Opts());
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("null plan"), std::string::npos) << s.ToString();
}

TEST_F(RaValidateTest, DanglingProjectedAttributeRejected) {
  // Project(P(x), {x}) is legal; corrupt it to project z, which the child
  // never produces.
  ASSERT_OK_AND_ASSIGN(PlanPtr proj, Plan::Project(ScanP(x_), {x_}));
  PlanTestPeer::SetSchema(proj, {z_});
  const Status s = ValidatePlan(proj, Opts());
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("is dangling"), std::string::npos)
      << s.ToString();
}

TEST_F(RaValidateTest, CorruptedJoinSchemaRejected) {
  ASSERT_OK_AND_ASSIGN(PlanPtr join, Plan::Join(ScanP(x_), ScanR(x_, y_)));
  PlanTestPeer::SetSchema(join, {x_});  // drops y
  const Status s = ValidatePlan(join, Opts());
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("union of its children's"), std::string::npos)
      << s.ToString();
}

TEST_F(RaValidateTest, SemiJoinDanglingRightAttributeRejected) {
  // SemiJoin(P(x), Q(x)) is fine; swap the right child for R(x, y), whose
  // y the left never produces — the filter would silently ignore it.
  ASSERT_OK_AND_ASSIGN(PlanPtr semi, Plan::SemiJoin(ScanP(x_), ScanQ(x_)));
  PlanTestPeer::SetChild(semi, 1, ScanR(x_, y_));
  const Status s = ValidatePlan(semi, Opts());
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("dangling"), std::string::npos) << s.ToString();
}

TEST_F(RaValidateTest, LegalCrossProductOfDisjointComponentsAccepted) {
  // P(x) × Q(y) with nothing connecting x and y: both sides are complete
  // singleton components, so the cross product is unavoidable and legal.
  ASSERT_OK_AND_ASSIGN(PlanPtr cross, Plan::Join(ScanP(x_), ScanQ(y_)));
  EXPECT_OK(ValidatePlan(cross, Opts()));
}

TEST_F(RaValidateTest, AvoidableCrossProductRejected) {
  // (P(x) × Q(y)) ⋈ R(x, y): R connects x and y into one component, so
  // the inner attribute-disjoint join splits that component — the
  // historical join-orderer regression shape.
  ASSERT_OK_AND_ASSIGN(PlanPtr inner, Plan::Join(ScanP(x_), ScanQ(y_)));
  ASSERT_OK_AND_ASSIGN(PlanPtr root, Plan::Join(inner, ScanR(x_, y_)));
  const Status s = ValidatePlan(root, Opts());
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("avoidable cross product"), std::string::npos)
      << s.ToString();
}

TEST_F(RaValidateTest, GreedyShapedCrossProductAccepted) {
  // (P(x) ⋈ R(x, y)) × Q(z): the left side is the complete {P, R}
  // component, the right a fresh singleton — exactly what the greedy
  // orderer emits, and unavoidable.
  ASSERT_OK_AND_ASSIGN(PlanPtr left, Plan::Join(ScanP(x_), ScanR(x_, y_)));
  ASSERT_OK_AND_ASSIGN(PlanPtr root, Plan::Join(left, ScanQ(z_)));
  EXPECT_OK(ValidatePlan(root, Opts()));
}

TEST_F(RaValidateTest, ParamAtSemiJoinFilterPositionAccepted) {
  ASSERT_OK_AND_ASSIGN(PlanPtr param, Plan::Param({x_}));
  ASSERT_OK_AND_ASSIGN(PlanPtr semi, Plan::SemiJoin(ScanP(x_), param));
  PlanValidateOptions opts = Opts();
  opts.param = param.get();
  EXPECT_OK(ValidatePlan(semi, opts));
}

TEST_F(RaValidateTest, UnexpectedParamRejected) {
  ASSERT_OK_AND_ASSIGN(PlanPtr param, Plan::Param({x_}));
  ASSERT_OK_AND_ASSIGN(PlanPtr semi, Plan::SemiJoin(ScanP(x_), param));
  // Options without a param: the plan must bind nothing.
  const Status s = ValidatePlan(semi, Opts());
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("unexpected param relation"), std::string::npos)
      << s.ToString();
}

TEST_F(RaValidateTest, ForeignParamIdentityRejected) {
  // Bindings are keyed by node identity, so a structurally identical but
  // distinct param node would execute empty.
  ASSERT_OK_AND_ASSIGN(PlanPtr param, Plan::Param({x_}));
  ASSERT_OK_AND_ASSIGN(PlanPtr other, Plan::Param({x_}));
  ASSERT_OK_AND_ASSIGN(PlanPtr semi, Plan::SemiJoin(ScanP(x_), param));
  PlanValidateOptions opts = Opts();
  opts.param = other.get();
  const Status s = ValidatePlan(semi, opts);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("keyed by node identity"), std::string::npos)
      << s.ToString();
}

TEST_F(RaValidateTest, ParamUnderAntiJoinRightRejected) {
  // AntiJoin(P(x), SemiJoin(Q(x), param)): filtering the negated side by
  // the surviving candidate set changes answers, so the reduction must
  // never push the param there.
  ASSERT_OK_AND_ASSIGN(PlanPtr param, Plan::Param({x_}));
  ASSERT_OK_AND_ASSIGN(PlanPtr semi, Plan::SemiJoin(ScanQ(x_), param));
  ASSERT_OK_AND_ASSIGN(PlanPtr anti, Plan::AntiJoin(ScanP(x_), semi));
  PlanValidateOptions opts = Opts();
  opts.param = param.get();
  const Status s = ValidatePlan(anti, opts);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("non-monotone"), std::string::npos)
      << s.ToString();
}

TEST_F(RaValidateTest, ExpectedParamMissingRejected) {
  ASSERT_OK_AND_ASSIGN(PlanPtr param, Plan::Param({x_}));
  PlanValidateOptions opts = Opts();
  opts.param = param.get();
  const Status s = ValidatePlan(ScanP(x_), opts);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("contains none"), std::string::npos)
      << s.ToString();
}

TEST_F(RaValidateTest, SharingBoundRejectsOversizedDag) {
  ASSERT_OK_AND_ASSIGN(PlanPtr join, Plan::Join(ScanP(x_), ScanR(x_, y_)));
  PlanValidateOptions opts = Opts();
  opts.max_unique_nodes = 2;  // the DAG has 3 distinct nodes
  const Status s = ValidatePlan(join, opts);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("sharing bound"), std::string::npos)
      << s.ToString();
  opts.max_unique_nodes = 3;
  EXPECT_OK(ValidatePlan(join, opts));
}

TEST_F(RaValidateTest, CycleInPlanGraphRejected) {
  // Tie a projection's child back to itself through the backdoor. The
  // shared_ptr cycle is broken again below so the test does not leak.
  ASSERT_OK_AND_ASSIGN(PlanPtr proj, Plan::Project(ScanP(x_), {x_}));
  PlanTestPeer::SetChild(proj, 0, proj);
  const Status s = ValidatePlan(proj, Opts());
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("cycle"), std::string::npos) << s.ToString();
  PlanTestPeer::SetChild(proj, 0, ScanP(x_));
}

TEST_F(RaValidateTest, SharedSubplanIsNotACycle) {
  // The compiler shares compiled children between branches (↔, ∀); a
  // diamond must validate clean.
  PlanPtr shared = ScanR(x_, y_);
  ASSERT_OK_AND_ASSIGN(PlanPtr a, Plan::Project(shared, {x_}));
  ASSERT_OK_AND_ASSIGN(PlanPtr b, Plan::Project(shared, {x_}));
  ASSERT_OK_AND_ASSIGN(PlanPtr u, Plan::Union(a, b));
  EXPECT_OK(ValidatePlan(u, Opts()));
}

/// Compiles `query` over `vocab`, validates the compiled plan, then
/// semijoin-reduces it and validates the reduced plan against its param.
void ExpectCompilesAndValidates(const Vocabulary& vocab, const Query& query,
                                const std::string& context) {
  RaCompiler compiler(&vocab);
  auto plan = compiler.Compile(query);
  ASSERT_TRUE(plan.ok()) << context << ": " << plan.status().ToString();
  PlanValidateOptions opts;
  opts.vocab = &vocab;
  const Status compiled_verdict = ValidatePlan(plan.value(), opts);
  EXPECT_TRUE(compiled_verdict.ok())
      << context << ": " << compiled_verdict.ToString();

  auto reduced = SemijoinReduce(plan.value());
  ASSERT_TRUE(reduced.ok()) << context << ": " << reduced.status().ToString();
  opts.param = reduced.value().param.get();
  const Status reduced_verdict = ValidatePlan(reduced.value().plan, opts);
  EXPECT_TRUE(reduced_verdict.ok())
      << context << ": " << reduced_verdict.ToString();
}

TEST(RaValidateCorpusTest, ScenarioQueryPoolValidatesClean) {
  const ScenarioParams params;  // default E10 shape
  std::unique_ptr<CwDatabase> db = MakeScenario(/*seed=*/7, params);
  const std::vector<std::string> pool = ScenarioQueryPool(params);
  ASSERT_FALSE(pool.empty());
  for (const std::string& text : pool) {
    auto query = ParseQuery(db->mutable_vocab(), text);
    ASSERT_TRUE(query.ok()) << text << ": " << query.status().ToString();
    ExpectCompilesAndValidates(db->vocab(), query.value(), text);
  }
}

TEST(RaValidateCorpusTest, RandomFormulasValidateClean) {
  for (uint64_t seed = 0; seed < 40; ++seed) {
    Vocabulary vocab;
    vocab.AddConstant("A");
    vocab.AddConstant("B");
    vocab.AddConstant("C");
    ASSERT_OK_AND_ASSIGN(PredId p, vocab.AddPredicate("P", 1));
    ASSERT_OK_AND_ASSIGN(PredId r, vocab.AddPredicate("R", 2));
    (void)p;
    (void)r;
    RandomFormulaParams params;
    params.max_depth = 5;
    Query query = RandomQuery(seed, &vocab, params);
    ExpectCompilesAndValidates(vocab, query,
                               "seed " + std::to_string(seed));
  }
}

}  // namespace
}  // namespace lqdb
