#include <gtest/gtest.h>

#include "lqdb/approx/approx.h"
#include "lqdb/cwdb/ph.h"
#include "lqdb/cwdb/theory.h"
#include "lqdb/eval/answer.h"
#include "lqdb/eval/evaluator.h"
#include "lqdb/exact/exact.h"
#include "lqdb/logic/parser.h"
#include "lqdb/logic/printer.h"
#include "lqdb/ra/compiler.h"
#include "lqdb/ra/executor.h"
#include "lqdb/ra/sql.h"
#include "testing.h"

namespace lqdb {
namespace {

/// The §2.1 motivating schema: EMP_DEPT(employee, dept) and
/// DEPT_MGR(dept, manager), with an unknown department for one employee.
class CompanyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Known world.
    ASSERT_OK(lb_.AddFact("EMP_DEPT", {"Ann", "Toys"}));
    ASSERT_OK(lb_.AddFact("EMP_DEPT", {"Bob", "Books"}));
    ASSERT_OK(lb_.AddFact("DEPT_MGR", {"Toys", "Carol"}));
    ASSERT_OK(lb_.AddFact("DEPT_MGR", {"Books", "Dan"}));
    // Eve works in some department we have not identified.
    mystery_dept_ = lb_.AddUnknownConstant("EvesDept");
    PredId emp_dept = lb_.vocab().FindPredicate("EMP_DEPT");
    ConstId eve = lb_.AddKnownConstant("Eve");
    ASSERT_OK(lb_.AddFact(emp_dept, {eve, mystery_dept_}));
  }

  CwDatabase lb_;
  ConstId mystery_dept_;
};

TEST_F(CompanyTest, ManagerQueryFromThePaper) {
  // (x1, x2) . ∃y (EMP_DEPT(x1, y) ∧ DEPT_MGR(y, x2)) — §2.1's example.
  ASSERT_OK_AND_ASSIGN(
      Query q,
      ParseQuery(lb_.mutable_vocab(),
                 "(x1, x2) . exists y. EMP_DEPT(x1, y) & DEPT_MGR(y, x2)"));

  ExactEvaluator exact(&lb_);
  ASSERT_OK_AND_ASSIGN(Relation exact_answer, exact.Answer(q));

  const Vocabulary& v = lb_.vocab();
  Tuple ann_carol{v.FindConstant("Ann"), v.FindConstant("Carol")};
  Tuple bob_dan{v.FindConstant("Bob"), v.FindConstant("Dan")};
  EXPECT_TRUE(exact_answer.Contains(ann_carol));
  EXPECT_TRUE(exact_answer.Contains(bob_dan));
  // Eve's manager is unknown — EvesDept might be Toys, Books, or neither,
  // so no (Eve, m) pair is certain.
  for (const Tuple& t : exact_answer.SortedTuples()) {
    EXPECT_NE(t[0], v.FindConstant("Eve"));
  }

  // The positive query is answered completely by the approximation
  // (Theorem 13), so the cheap algorithm returns the same relation.
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<ApproxEvaluator> approx,
                       ApproxEvaluator::Make(&lb_, ApproxOptions{}));
  ASSERT_OK_AND_ASSIGN(Relation approx_answer, approx->Answer(q));
  EXPECT_EQ(approx_answer, exact_answer);
}

TEST_F(CompanyTest, WhoIsCertainlyNotManagedByCarol) {
  // Non-positive query: employees provably not managed by Carol.
  ASSERT_OK_AND_ASSIGN(
      Query q,
      ParseQuery(lb_.mutable_vocab(),
                 "(x) . exists d. EMP_DEPT(x, d) & "
                 "!(exists y. EMP_DEPT(x, y) & DEPT_MGR(y, Carol))"));
  const Vocabulary& v = lb_.vocab();

  ExactEvaluator exact(&lb_);
  ASSERT_OK_AND_ASSIGN(Relation exact_answer, exact.Answer(q));
  // Bob is certainly in Books, managed by Dan. Eve's dept is unknown, so
  // she is not certainly outside Carol's department... but the exact
  // semantics *can* rule employees in only when every completion agrees.
  EXPECT_TRUE(exact_answer.Contains({v.FindConstant("Bob")}));
  EXPECT_FALSE(exact_answer.Contains({v.FindConstant("Ann")}));
  EXPECT_FALSE(exact_answer.Contains({v.FindConstant("Eve")}));

  // The approximation must be sound: a subset of the exact answer.
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<ApproxEvaluator> approx,
                       ApproxEvaluator::Make(&lb_, ApproxOptions{}));
  ASSERT_OK_AND_ASSIGN(Relation approx_answer, approx->Answer(q));
  EXPECT_TRUE(approx_answer.IsSubsetOf(exact_answer));
}

TEST_F(CompanyTest, TheoryRoundTripsThroughTheEvaluator) {
  Theory theory = TheoryOf(&lb_);
  // |C| choose 2 among the 7 known constants, none touching EvesDept.
  EXPECT_EQ(theory.uniqueness.size(), 21u);
  PhysicalDatabase ph1 = MakePh1(lb_);
  Evaluator eval(&ph1);
  for (const FormulaPtr& s : theory.AllSentences()) {
    ASSERT_OK_AND_ASSIGN(bool sat, eval.Satisfies(s));
    EXPECT_TRUE(sat) << PrintFormula(lb_.vocab(), s);
  }
}

TEST_F(CompanyTest, RaPipelineProducesSameAnswersAsEvaluator) {
  ASSERT_OK_AND_ASSIGN(
      Query q,
      ParseQuery(lb_.mutable_vocab(),
                 "(x1, x2) . exists y. EMP_DEPT(x1, y) & DEPT_MGR(y, x2)"));
  PhysicalDatabase ph1 = MakePh1(lb_);

  Evaluator eval(&ph1);
  ASSERT_OK_AND_ASSIGN(Relation direct, eval.Answer(q));

  RaCompiler compiler(&lb_.vocab());
  ASSERT_OK_AND_ASSIGN(PlanPtr plan, compiler.Compile(q));
  RaExecutor executor(&ph1);
  ASSERT_OK_AND_ASSIGN(RaTable table, executor.Execute(plan));
  EXPECT_EQ(table.rel, direct);

  // The compiled plan also renders as SQL for a stock RDBMS.
  std::string sql = EmitSql(lb_.vocab(), plan);
  EXPECT_NE(sql.find("EMP_DEPT"), std::string::npos);
  EXPECT_NE(sql.find("DEPT_MGR"), std::string::npos);
}

TEST_F(CompanyTest, ApproxAnswersAreStableAcrossEngines) {
  ASSERT_OK_AND_ASSIGN(
      Query q,
      ParseQuery(lb_.mutable_vocab(),
                 "(x) . !(exists y. EMP_DEPT(x, y) & DEPT_MGR(y, Carol)) & "
                 "exists d. EMP_DEPT(x, d)"));
  ApproxOptions eval_engine;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<ApproxEvaluator> a1,
                       ApproxEvaluator::Make(&lb_, eval_engine));
  ASSERT_OK_AND_ASSIGN(Relation r1, a1->Answer(q));

  ApproxOptions ra_engine;
  ra_engine.engine = ApproxEngine::kRelationalAlgebra;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<ApproxEvaluator> a2,
                       ApproxEvaluator::Make(&lb_, ra_engine));
  ASSERT_OK_AND_ASSIGN(Relation r2, a2->Answer(q));
  EXPECT_EQ(r1, r2);
}

/// End-to-end: the full §5 deployment story — store Ph₂(LB) in a
/// relational engine, compile Q̂, run it, and get sound answers.
TEST(DeploymentStoryTest, CompileAndRunOnRelationalEngine) {
  CwDatabase lb;
  ConstId jack = lb.AddUnknownConstant("Jack");
  lb.AddKnownConstant("Alice");
  ConstId bob = lb.AddKnownConstant("Bob");
  PredId suspect = lb.AddPredicate("SUSPECT", 1).value();
  ASSERT_OK(lb.AddFact(suspect, {jack}));
  ASSERT_OK(lb.AddDistinct("Jack", "Bob"));

  ApproxOptions options;
  options.engine = ApproxEngine::kRelationalAlgebra;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<ApproxEvaluator> approx,
                       ApproxEvaluator::Make(&lb, options));
  ASSERT_OK_AND_ASSIGN(Query q,
                       ParseQuery(lb.mutable_vocab(), "(x) . !SUSPECT(x)"));
  ASSERT_OK_AND_ASSIGN(Relation answer, approx->Answer(q));
  // Bob is provably not the suspect; Alice might be Jack.
  EXPECT_EQ(answer.size(), 1u);
  EXPECT_TRUE(answer.Contains({bob}));
}

}  // namespace
}  // namespace lqdb
