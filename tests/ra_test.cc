#include <gtest/gtest.h>

#include "lqdb/eval/evaluator.h"
#include "lqdb/logic/parser.h"
#include "lqdb/ra/compiler.h"
#include "lqdb/ra/executor.h"
#include "lqdb/ra/plan.h"
#include "lqdb/ra/sql.h"
#include "lqdb/util/rng.h"
#include "testing.h"

namespace lqdb {
namespace {

using testing::RandomFormula;
using testing::RandomFormulaParams;

class RaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = vocab_.AddConstant("A");
    b_ = vocab_.AddConstant("B");
    c_ = vocab_.AddConstant("C");
    p_ = vocab_.AddPredicate("P", 1).value();
    r_ = vocab_.AddPredicate("R", 2).value();
    db_ = std::make_unique<PhysicalDatabase>(&vocab_);
    db_->InterpretConstantsAsThemselves();
    ASSERT_OK(db_->AddTuple(p_, {a_}));
    ASSERT_OK(db_->AddTuple(p_, {b_}));
    ASSERT_OK(db_->AddTuple(r_, {a_, b_}));
    ASSERT_OK(db_->AddTuple(r_, {b_, c_}));
    ASSERT_OK(db_->AddTuple(r_, {c_, c_}));
  }

  RaTable Exec(const PlanPtr& plan) {
    RaExecutor ex(db_.get());
    auto r = ex.Execute(plan);
    EXPECT_TRUE(r.ok()) << r.status();
    return std::move(r).value();
  }

  Vocabulary vocab_;
  ConstId a_, b_, c_;
  PredId p_, r_;
  std::unique_ptr<PhysicalDatabase> db_;
};

TEST_F(RaTest, ScanProjectsVariables) {
  VarId x = vocab_.AddVariable("x");
  ASSERT_OK_AND_ASSIGN(
      PlanPtr plan,
      Plan::Scan(vocab_, r_, {Term::Variable(x), Term::Constant(c_)}));
  RaTable t = Exec(plan);
  EXPECT_EQ(t.schema, std::vector<VarId>{x});
  EXPECT_EQ(t.rel.size(), 2u);  // (b, c) and (c, c) match column 1 = C
  EXPECT_TRUE(t.rel.Contains({b_}));
  EXPECT_TRUE(t.rel.Contains({c_}));
}

TEST_F(RaTest, ScanWithRepeatedVariableFilters) {
  VarId x = vocab_.AddVariable("x");
  ASSERT_OK_AND_ASSIGN(
      PlanPtr plan,
      Plan::Scan(vocab_, r_, {Term::Variable(x), Term::Variable(x)}));
  RaTable t = Exec(plan);
  EXPECT_EQ(t.rel.size(), 1u);
  EXPECT_TRUE(t.rel.Contains({c_}));
}

TEST_F(RaTest, ScanChecksArity) {
  VarId x = vocab_.AddVariable("x");
  EXPECT_FALSE(Plan::Scan(vocab_, r_, {Term::Variable(x)}).ok());
}

TEST_F(RaTest, JoinOnSharedVariable) {
  VarId x = vocab_.AddVariable("x");
  VarId y = vocab_.AddVariable("y");
  ASSERT_OK_AND_ASSIGN(PlanPtr scan_p, Plan::Scan(vocab_, p_,
                                                  {Term::Variable(x)}));
  ASSERT_OK_AND_ASSIGN(
      PlanPtr scan_r,
      Plan::Scan(vocab_, r_, {Term::Variable(x), Term::Variable(y)}));
  ASSERT_OK_AND_ASSIGN(PlanPtr join, Plan::Join(scan_p, scan_r));
  RaTable t = Exec(join);
  EXPECT_EQ(t.schema, (std::vector<VarId>{x, y}));
  EXPECT_EQ(t.rel.size(), 2u);  // (a,b), (b,c)
  EXPECT_TRUE(t.rel.Contains({a_, b_}));
  EXPECT_TRUE(t.rel.Contains({b_, c_}));
}

TEST_F(RaTest, JoinWithoutSharedVariablesIsProduct) {
  VarId x = vocab_.AddVariable("x");
  VarId y = vocab_.AddVariable("y");
  ASSERT_OK_AND_ASSIGN(PlanPtr sp, Plan::Scan(vocab_, p_,
                                              {Term::Variable(x)}));
  ASSERT_OK_AND_ASSIGN(PlanPtr sq, Plan::Scan(vocab_, p_,
                                              {Term::Variable(y)}));
  ASSERT_OK_AND_ASSIGN(PlanPtr join, Plan::Join(sp, sq));
  RaTable t = Exec(join);
  EXPECT_EQ(t.rel.size(), 4u);
}

TEST_F(RaTest, AntiJoinKeepsNonMatching) {
  VarId x = vocab_.AddVariable("x");
  PlanPtr dom = Plan::DomainScan(x);
  ASSERT_OK_AND_ASSIGN(PlanPtr sp, Plan::Scan(vocab_, p_,
                                              {Term::Variable(x)}));
  ASSERT_OK_AND_ASSIGN(PlanPtr anti, Plan::AntiJoin(dom, sp));
  RaTable t = Exec(anti);
  EXPECT_EQ(t.rel.size(), 1u);
  EXPECT_TRUE(t.rel.Contains({c_}));
}

TEST_F(RaTest, UnionAlignsColumns) {
  VarId x = vocab_.AddVariable("x");
  VarId y = vocab_.AddVariable("y");
  ASSERT_OK_AND_ASSIGN(
      PlanPtr r1,
      Plan::Scan(vocab_, r_, {Term::Variable(x), Term::Variable(y)}));
  ASSERT_OK_AND_ASSIGN(
      PlanPtr r2,
      Plan::Scan(vocab_, r_, {Term::Variable(y), Term::Variable(x)}));
  ASSERT_OK_AND_ASSIGN(PlanPtr u, Plan::Union(r1, r2));
  RaTable t = Exec(u);
  // R ∪ R⁻¹ as (x, y) tuples.
  EXPECT_EQ(t.rel.size(), 5u);  // (a,b),(b,c),(c,c),(b,a),(c,b)
}

TEST_F(RaTest, UnionRejectsSchemaMismatch) {
  VarId x = vocab_.AddVariable("x");
  VarId y = vocab_.AddVariable("y");
  PlanPtr dx = Plan::DomainScan(x);
  PlanPtr dy = Plan::DomainScan(y);
  EXPECT_FALSE(Plan::Union(dx, dy).ok());
}

TEST_F(RaTest, ProjectReordersAndDedups) {
  VarId x = vocab_.AddVariable("x");
  VarId y = vocab_.AddVariable("y");
  ASSERT_OK_AND_ASSIGN(
      PlanPtr scan,
      Plan::Scan(vocab_, r_, {Term::Variable(x), Term::Variable(y)}));
  ASSERT_OK_AND_ASSIGN(PlanPtr proj, Plan::Project(scan, {y}));
  RaTable t = Exec(proj);
  EXPECT_EQ(t.rel.size(), 2u);  // {b, c}
  ASSERT_OK_AND_ASSIGN(PlanPtr swap, Plan::Project(scan, {y, x}));
  RaTable t2 = Exec(swap);
  EXPECT_TRUE(t2.rel.Contains({b_, a_}));
}

TEST_F(RaTest, ConstTuplesAndCompare) {
  VarId x = vocab_.AddVariable("x");
  ASSERT_OK_AND_ASSIGN(PlanPtr consts, Plan::ConstTuples({x}, {{a_}, {c_}}));
  RaTable t = Exec(consts);
  EXPECT_EQ(t.rel.size(), 2u);

  RaTable eq = Exec(Plan::ConstCompare(a_, a_));
  EXPECT_EQ(eq.rel.size(), 1u);
  RaTable neq = Exec(Plan::ConstCompare(a_, b_));
  EXPECT_TRUE(neq.rel.empty());
}

TEST_F(RaTest, EqDomain) {
  VarId x = vocab_.AddVariable("x");
  VarId y = vocab_.AddVariable("y");
  ASSERT_OK_AND_ASSIGN(PlanPtr eq, Plan::EqDomain(x, y));
  RaTable t = Exec(eq);
  EXPECT_EQ(t.rel.size(), 3u);
  EXPECT_TRUE(t.rel.Contains({a_, a_}));
  EXPECT_FALSE(Plan::EqDomain(x, x).ok());
}

TEST_F(RaTest, PlanToStringShowsTree) {
  VarId x = vocab_.AddVariable("x");
  ASSERT_OK_AND_ASSIGN(PlanPtr sp, Plan::Scan(vocab_, p_,
                                              {Term::Variable(x)}));
  ASSERT_OK_AND_ASSIGN(PlanPtr anti, Plan::AntiJoin(Plan::DomainScan(x), sp));
  std::string s = anti->ToString(vocab_);
  EXPECT_NE(s.find("AntiJoin"), std::string::npos);
  EXPECT_NE(s.find("Scan P"), std::string::npos);
  EXPECT_EQ(anti->NumNodes(), 3u);
}

class CompilerEquivalenceTest : public RaTest {};

TEST_F(CompilerEquivalenceTest, CompiledQueriesMatchEvaluator) {
  const char* queries[] = {
      "(x) . P(x)",
      "(x) . !P(x)",
      "(x, y) . R(x, y) & P(x)",
      "(x, y) . R(x, y) | R(y, x)",
      "(x) . exists y. R(x, y)",
      "(x) . forall y. R(x, y) -> P(y)",
      "(x) . P(x) & !(exists y. R(y, x))",
      "(x) . x = A | x = B",
      "(x, y) . x = y & P(x)",
      "(x) . P(x) <-> x = C",
      "exists x. forall y. R(x, y) -> x = y",
      "(x) . !(P(x) & !P(x))",
      "(x, y) . !R(x, y)",
      "(w) . true",
      "(x) . false",
      "(x) . A = A & P(x)",
      "(x) . A = B | P(x)",
  };
  for (const char* text : queries) {
    ASSERT_OK_AND_ASSIGN(Query q, ParseQuery(&vocab_, text));
    Evaluator eval(db_.get());
    ASSERT_OK_AND_ASSIGN(Relation expected, eval.Answer(q));

    RaCompiler compiler(&vocab_);
    ASSERT_OK_AND_ASSIGN(PlanPtr plan, compiler.Compile(q));
    RaExecutor ex(db_.get());
    ASSERT_OK_AND_ASSIGN(RaTable got, ex.Execute(plan));
    EXPECT_EQ(got.rel, expected) << "query: " << text;
  }
}

TEST_F(CompilerEquivalenceTest, RandomFormulasAgree) {
  for (uint64_t seed = 100; seed < 160; ++seed) {
    Rng rng(seed);
    RandomFormulaParams params;
    params.free_vars = {"hx", "hy"};
    params.max_depth = 4;
    FormulaPtr body = RandomFormula(&rng, &vocab_, params);
    std::vector<VarId> head = {vocab_.AddVariable("hx"),
                               vocab_.AddVariable("hy")};
    ASSERT_OK_AND_ASSIGN(Query q, Query::Make(head, body));

    Evaluator eval(db_.get());
    ASSERT_OK_AND_ASSIGN(Relation expected, eval.Answer(q));

    RaCompiler compiler(&vocab_);
    ASSERT_OK_AND_ASSIGN(PlanPtr plan, compiler.Compile(q));
    RaExecutor ex(db_.get());
    ASSERT_OK_AND_ASSIGN(RaTable got, ex.Execute(plan));
    EXPECT_EQ(got.rel, expected) << "seed " << seed;
  }
}

TEST_F(CompilerEquivalenceTest, SecondOrderIsRejected) {
  ASSERT_OK_AND_ASSIGN(Query q,
                       ParseQuery(&vocab_, "exists2 S/1. exists x. S(x)"));
  RaCompiler compiler(&vocab_);
  EXPECT_EQ(compiler.Compile(q).status().code(), StatusCode::kUnimplemented);
}

TEST_F(RaTest, SqlEmitterCoversOperators) {
  ASSERT_OK_AND_ASSIGN(
      Query q,
      ParseQuery(&vocab_, "(x) . P(x) & !(exists y. R(x, y)) | x = A"));
  RaCompiler compiler(&vocab_);
  ASSERT_OK_AND_ASSIGN(PlanPtr plan, compiler.Compile(q));
  std::string sql = EmitSql(vocab_, plan);
  EXPECT_NE(sql.find("SELECT"), std::string::npos);
  EXPECT_NE(sql.find("NOT EXISTS"), std::string::npos);
  EXPECT_NE(sql.find("UNION"), std::string::npos);
  EXPECT_NE(sql.find("FROM R"), std::string::npos);
}

TEST_F(RaTest, SqlEmitterQuotesConstants) {
  ASSERT_OK_AND_ASSIGN(Query q, ParseQuery(&vocab_, "(x) . R(x, A)"));
  RaCompiler compiler(&vocab_);
  ASSERT_OK_AND_ASSIGN(PlanPtr plan, compiler.Compile(q));
  EXPECT_NE(EmitSql(vocab_, plan).find("'A'"), std::string::npos);
}

}  // namespace
}  // namespace lqdb
