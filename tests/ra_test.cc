#include <gtest/gtest.h>

#include "lqdb/eval/evaluator.h"
#include "lqdb/exact/exact.h"
#include "lqdb/exact/ra_exact.h"
#include "lqdb/logic/parser.h"
#include "lqdb/ra/compiler.h"
#include "lqdb/ra/executor.h"
#include "lqdb/ra/plan.h"
#include "lqdb/ra/sql.h"
#include "lqdb/util/rng.h"
#include "testing.h"

namespace lqdb {
namespace {

using testing::RandomFormula;
using testing::RandomFormulaParams;

class RaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = vocab_.AddConstant("A");
    b_ = vocab_.AddConstant("B");
    c_ = vocab_.AddConstant("C");
    p_ = vocab_.AddPredicate("P", 1).value();
    r_ = vocab_.AddPredicate("R", 2).value();
    db_ = std::make_unique<PhysicalDatabase>(&vocab_);
    db_->InterpretConstantsAsThemselves();
    ASSERT_OK(db_->AddTuple(p_, {a_}));
    ASSERT_OK(db_->AddTuple(p_, {b_}));
    ASSERT_OK(db_->AddTuple(r_, {a_, b_}));
    ASSERT_OK(db_->AddTuple(r_, {b_, c_}));
    ASSERT_OK(db_->AddTuple(r_, {c_, c_}));
  }

  RaTable Exec(const PlanPtr& plan) {
    RaExecutor ex(db_.get());
    auto r = ex.Execute(plan);
    EXPECT_TRUE(r.ok()) << r.status();
    return std::move(r).value();
  }

  Vocabulary vocab_;
  ConstId a_, b_, c_;
  PredId p_, r_;
  std::unique_ptr<PhysicalDatabase> db_;
};

TEST_F(RaTest, ScanProjectsVariables) {
  VarId x = vocab_.AddVariable("x");
  ASSERT_OK_AND_ASSIGN(
      PlanPtr plan,
      Plan::Scan(vocab_, r_, {Term::Variable(x), Term::Constant(c_)}));
  RaTable t = Exec(plan);
  EXPECT_EQ(t.schema, std::vector<VarId>{x});
  EXPECT_EQ(t.rel.size(), 2u);  // (b, c) and (c, c) match column 1 = C
  EXPECT_TRUE(t.rel.Contains({b_}));
  EXPECT_TRUE(t.rel.Contains({c_}));
}

TEST_F(RaTest, ScanWithRepeatedVariableFilters) {
  VarId x = vocab_.AddVariable("x");
  ASSERT_OK_AND_ASSIGN(
      PlanPtr plan,
      Plan::Scan(vocab_, r_, {Term::Variable(x), Term::Variable(x)}));
  RaTable t = Exec(plan);
  EXPECT_EQ(t.rel.size(), 1u);
  EXPECT_TRUE(t.rel.Contains({c_}));
}

TEST_F(RaTest, ScanChecksArity) {
  VarId x = vocab_.AddVariable("x");
  EXPECT_FALSE(Plan::Scan(vocab_, r_, {Term::Variable(x)}).ok());
}

TEST_F(RaTest, JoinOnSharedVariable) {
  VarId x = vocab_.AddVariable("x");
  VarId y = vocab_.AddVariable("y");
  ASSERT_OK_AND_ASSIGN(PlanPtr scan_p, Plan::Scan(vocab_, p_,
                                                  {Term::Variable(x)}));
  ASSERT_OK_AND_ASSIGN(
      PlanPtr scan_r,
      Plan::Scan(vocab_, r_, {Term::Variable(x), Term::Variable(y)}));
  ASSERT_OK_AND_ASSIGN(PlanPtr join, Plan::Join(scan_p, scan_r));
  RaTable t = Exec(join);
  EXPECT_EQ(t.schema, (std::vector<VarId>{x, y}));
  EXPECT_EQ(t.rel.size(), 2u);  // (a,b), (b,c)
  EXPECT_TRUE(t.rel.Contains({a_, b_}));
  EXPECT_TRUE(t.rel.Contains({b_, c_}));
}

TEST_F(RaTest, JoinWithoutSharedVariablesIsProduct) {
  VarId x = vocab_.AddVariable("x");
  VarId y = vocab_.AddVariable("y");
  ASSERT_OK_AND_ASSIGN(PlanPtr sp, Plan::Scan(vocab_, p_,
                                              {Term::Variable(x)}));
  ASSERT_OK_AND_ASSIGN(PlanPtr sq, Plan::Scan(vocab_, p_,
                                              {Term::Variable(y)}));
  ASSERT_OK_AND_ASSIGN(PlanPtr join, Plan::Join(sp, sq));
  RaTable t = Exec(join);
  EXPECT_EQ(t.rel.size(), 4u);
}

TEST_F(RaTest, AntiJoinKeepsNonMatching) {
  VarId x = vocab_.AddVariable("x");
  PlanPtr dom = Plan::DomainScan(x);
  ASSERT_OK_AND_ASSIGN(PlanPtr sp, Plan::Scan(vocab_, p_,
                                              {Term::Variable(x)}));
  ASSERT_OK_AND_ASSIGN(PlanPtr anti, Plan::AntiJoin(dom, sp));
  RaTable t = Exec(anti);
  EXPECT_EQ(t.rel.size(), 1u);
  EXPECT_TRUE(t.rel.Contains({c_}));
}

TEST_F(RaTest, UnionAlignsColumns) {
  VarId x = vocab_.AddVariable("x");
  VarId y = vocab_.AddVariable("y");
  ASSERT_OK_AND_ASSIGN(
      PlanPtr r1,
      Plan::Scan(vocab_, r_, {Term::Variable(x), Term::Variable(y)}));
  ASSERT_OK_AND_ASSIGN(
      PlanPtr r2,
      Plan::Scan(vocab_, r_, {Term::Variable(y), Term::Variable(x)}));
  ASSERT_OK_AND_ASSIGN(PlanPtr u, Plan::Union(r1, r2));
  RaTable t = Exec(u);
  // R ∪ R⁻¹ as (x, y) tuples.
  EXPECT_EQ(t.rel.size(), 5u);  // (a,b),(b,c),(c,c),(b,a),(c,b)
}

TEST_F(RaTest, UnionRejectsSchemaMismatch) {
  VarId x = vocab_.AddVariable("x");
  VarId y = vocab_.AddVariable("y");
  PlanPtr dx = Plan::DomainScan(x);
  PlanPtr dy = Plan::DomainScan(y);
  EXPECT_FALSE(Plan::Union(dx, dy).ok());
}

TEST_F(RaTest, ProjectReordersAndDedups) {
  VarId x = vocab_.AddVariable("x");
  VarId y = vocab_.AddVariable("y");
  ASSERT_OK_AND_ASSIGN(
      PlanPtr scan,
      Plan::Scan(vocab_, r_, {Term::Variable(x), Term::Variable(y)}));
  ASSERT_OK_AND_ASSIGN(PlanPtr proj, Plan::Project(scan, {y}));
  RaTable t = Exec(proj);
  EXPECT_EQ(t.rel.size(), 2u);  // {b, c}
  ASSERT_OK_AND_ASSIGN(PlanPtr swap, Plan::Project(scan, {y, x}));
  RaTable t2 = Exec(swap);
  EXPECT_TRUE(t2.rel.Contains({b_, a_}));
}

TEST_F(RaTest, ConstTuplesAndCompare) {
  VarId x = vocab_.AddVariable("x");
  ASSERT_OK_AND_ASSIGN(PlanPtr consts, Plan::ConstTuples({x}, {{a_}, {c_}}));
  RaTable t = Exec(consts);
  EXPECT_EQ(t.rel.size(), 2u);

  RaTable eq = Exec(Plan::ConstCompare(a_, a_));
  EXPECT_EQ(eq.rel.size(), 1u);
  RaTable neq = Exec(Plan::ConstCompare(a_, b_));
  EXPECT_TRUE(neq.rel.empty());
}

TEST_F(RaTest, EqDomain) {
  VarId x = vocab_.AddVariable("x");
  VarId y = vocab_.AddVariable("y");
  ASSERT_OK_AND_ASSIGN(PlanPtr eq, Plan::EqDomain(x, y));
  RaTable t = Exec(eq);
  EXPECT_EQ(t.rel.size(), 3u);
  EXPECT_TRUE(t.rel.Contains({a_, a_}));
  EXPECT_FALSE(Plan::EqDomain(x, x).ok());
}

TEST_F(RaTest, PlanToStringShowsTree) {
  VarId x = vocab_.AddVariable("x");
  ASSERT_OK_AND_ASSIGN(PlanPtr sp, Plan::Scan(vocab_, p_,
                                              {Term::Variable(x)}));
  ASSERT_OK_AND_ASSIGN(PlanPtr anti, Plan::AntiJoin(Plan::DomainScan(x), sp));
  std::string s = anti->ToString(vocab_);
  EXPECT_NE(s.find("AntiJoin"), std::string::npos);
  EXPECT_NE(s.find("Scan P"), std::string::npos);
  EXPECT_EQ(anti->NumNodes(), 3u);
}

class CompilerEquivalenceTest : public RaTest {};

TEST_F(CompilerEquivalenceTest, CompiledQueriesMatchEvaluator) {
  const char* queries[] = {
      "(x) . P(x)",
      "(x) . !P(x)",
      "(x, y) . R(x, y) & P(x)",
      "(x, y) . R(x, y) | R(y, x)",
      "(x) . exists y. R(x, y)",
      "(x) . forall y. R(x, y) -> P(y)",
      "(x) . P(x) & !(exists y. R(y, x))",
      "(x) . x = A | x = B",
      "(x, y) . x = y & P(x)",
      "(x) . P(x) <-> x = C",
      "exists x. forall y. R(x, y) -> x = y",
      "(x) . !(P(x) & !P(x))",
      "(x, y) . !R(x, y)",
      "(w) . true",
      "(x) . false",
      "(x) . A = A & P(x)",
      "(x) . A = B | P(x)",
  };
  for (const char* text : queries) {
    ASSERT_OK_AND_ASSIGN(Query q, ParseQuery(&vocab_, text));
    Evaluator eval(db_.get());
    ASSERT_OK_AND_ASSIGN(Relation expected, eval.Answer(q));

    RaCompiler compiler(&vocab_);
    ASSERT_OK_AND_ASSIGN(PlanPtr plan, compiler.Compile(q));
    RaExecutor ex(db_.get());
    ASSERT_OK_AND_ASSIGN(RaTable got, ex.Execute(plan));
    EXPECT_EQ(got.rel, expected) << "query: " << text;
  }
}

TEST_F(CompilerEquivalenceTest, RandomFormulasAgree) {
  for (uint64_t seed = 100; seed < 160; ++seed) {
    Rng rng(seed);
    RandomFormulaParams params;
    params.free_vars = {"hx", "hy"};
    params.max_depth = 4;
    FormulaPtr body = RandomFormula(&rng, &vocab_, params);
    std::vector<VarId> head = {vocab_.AddVariable("hx"),
                               vocab_.AddVariable("hy")};
    ASSERT_OK_AND_ASSIGN(Query q, Query::Make(head, body));

    Evaluator eval(db_.get());
    ASSERT_OK_AND_ASSIGN(Relation expected, eval.Answer(q));

    RaCompiler compiler(&vocab_);
    ASSERT_OK_AND_ASSIGN(PlanPtr plan, compiler.Compile(q));
    RaExecutor ex(db_.get());
    ASSERT_OK_AND_ASSIGN(RaTable got, ex.Execute(plan));
    EXPECT_EQ(got.rel, expected) << "seed " << seed;
  }
}

TEST_F(CompilerEquivalenceTest, VacuousQuantifiersNeedAWitnessOnEmptyDomains) {
  // Regression: `∃x. φ` with x not free in φ used to compile to φ alone, on
  // the claim that domains are nonempty — false for a physical database
  // with an empty domain, where every existential is false and every
  // universal is true. The Evaluator refuses empty domains outright, so
  // the expectations here are first-principles; the compiled plans must
  // not silently claim a witness no domain provides. All queries are
  // constant-free so the plans never consult a constant interpretation.
  PhysicalDatabase empty(&vocab_);
  struct Case {
    const char* text;
    bool holds;  // over the empty domain
  };
  const Case cases[] = {
      {"exists x. true", false},  // the old compiler said true
      {"exists x. x = x", false},
      {"exists x. !P(x)", false},
      {"forall x. false", true},
      {"forall x. P(x)", true},
      {"exists x. forall y. true", false},
  };
  for (const Case& c : cases) {
    ASSERT_OK_AND_ASSIGN(Query q, ParseQuery(&vocab_, c.text));
    RaCompiler compiler(&vocab_);
    ASSERT_OK_AND_ASSIGN(PlanPtr plan, compiler.Compile(q));
    RaExecutor ex(&empty);
    ASSERT_OK_AND_ASSIGN(RaTable got, ex.Execute(plan));
    EXPECT_EQ(!got.rel.empty(), c.holds) << "query: " << c.text;

    // On a nonempty domain the Evaluator is the oracle, and the vacuous
    // quantifier must still behave like a quantifier there.
    Evaluator eval(db_.get());
    ASSERT_OK_AND_ASSIGN(Relation expected, eval.Answer(q));
    RaExecutor ex2(db_.get());
    ASSERT_OK_AND_ASSIGN(RaTable got2, ex2.Execute(plan));
    EXPECT_EQ(got2.rel, expected) << "query: " << c.text;
  }
}

TEST_F(RaTest, GuardedForallCompilesToAnAntiJoinWithoutAUniverse) {
  // ∀y (R(x,y) → P(y)) compiles its violating set R ∧ ¬P as a single
  // anti-join keyed on P's variable — not by complementing the compiled
  // implication, which would materialize a |C|² domain-product universe
  // (a Union of ¬R and padded P) per image.
  ASSERT_OK_AND_ASSIGN(Query q,
                       ParseQuery(&vocab_, "(x) . forall y. R(x, y) -> P(y)"));
  RaCompiler compiler(&vocab_);
  ASSERT_OK_AND_ASSIGN(PlanPtr plan, compiler.Compile(q));
  const std::string s = plan->ToString(vocab_);
  EXPECT_EQ(s.find("Union"), std::string::npos) << s;
  EXPECT_NE(s.find("AntiJoin"), std::string::npos) << s;
  // Outer complement over {x} plus the violating-set anti-join; the old
  // route paid a third anti-join to complement the implication.
  size_t anti_joins = 0;
  for (size_t pos = s.find("AntiJoin"); pos != std::string::npos;
       pos = s.find("AntiJoin", pos + 1)) {
    ++anti_joins;
  }
  EXPECT_EQ(anti_joins, 2u) << s;
}

TEST_F(RaTest, NestedIffCompilesToALinearDag) {
  // Regression: `↔`/`→`/`∀` used to desugar at the formula level,
  // duplicating child subtrees — compiled plan size was exponential in the
  // nesting depth. Each child is now compiled once and its PlanPtr shared
  // between the branches, so the DAG grows linearly.
  VarId x = vocab_.AddVariable("x");
  FormulaPtr atom = Formula::Atom(p_, {Term::Variable(x)});
  constexpr int kDepth = 12;
  FormulaPtr f = atom;
  for (int i = 0; i < kDepth; ++i) f = Formula::Iff(f, atom);
  ASSERT_OK_AND_ASSIGN(Query q, Query::Make({x}, f));

  RaCompiler compiler(&vocab_);
  ASSERT_OK_AND_ASSIGN(PlanPtr plan, compiler.Compile(q));
  EXPECT_LE(plan->NumUniqueNodes(), 16u * kDepth + 16u);
  // The tree view still counts both references to each shared child.
  EXPECT_GT(plan->NumNodes(), plan->NumUniqueNodes());

  // The memoizing executor evaluates each shared subplan once, and the
  // answer matches the evaluator's.
  Evaluator eval(db_.get());
  ASSERT_OK_AND_ASSIGN(Relation expected, eval.Answer(q));
  RaTable t = Exec(plan);
  EXPECT_EQ(t.rel, expected);
}

TEST_F(RaTest, JoinOrderFollowsCardinalityEstimates) {
  ASSERT_OK_AND_ASSIGN(Query q,
                       ParseQuery(&vocab_, "(x, y) . R(x, y) & P(x)"));

  RaCardinalities stats;
  stats.domain_size = 3.0;
  stats.relation_sizes.assign(vocab_.num_predicates(), 0.0);
  stats.relation_sizes[p_] = 2.0;
  stats.relation_sizes[r_] = 1000.0;
  RaCompiler compiler(&vocab_, stats);
  ASSERT_OK_AND_ASSIGN(PlanPtr plan, compiler.Compile(q));
  // The greedy ordering seeds the join with the smaller input: P's scan is
  // the left side even though R(x, y) appears first in the formula.
  ASSERT_EQ(plan->kind(), PlanKind::kProject);
  ASSERT_EQ(plan->child()->kind(), PlanKind::kJoin);
  ASSERT_EQ(plan->child()->left()->kind(), PlanKind::kScan);
  EXPECT_EQ(plan->child()->left()->pred(), p_);

  // Flip the sizes and R seeds the join instead.
  stats.relation_sizes[p_] = 1000.0;
  stats.relation_sizes[r_] = 2.0;
  RaCompiler flipped(&vocab_, stats);
  ASSERT_OK_AND_ASSIGN(PlanPtr plan2, flipped.Compile(q));
  ASSERT_EQ(plan2->kind(), PlanKind::kProject);
  ASSERT_EQ(plan2->child()->kind(), PlanKind::kJoin);
  ASSERT_EQ(plan2->child()->left()->kind(), PlanKind::kScan);
  EXPECT_EQ(plan2->child()->left()->pred(), r_);
}

TEST(RaExactEvaluatorTest, MatchesExactAndCachesPlans) {
  CwDatabase lb;
  ASSERT_OK(lb.AddFact("TEACHES", {"Socrates", "Plato"}));
  lb.AddUnknownConstant("Mystery");
  Vocabulary* vocab = lb.mutable_vocab();
  ASSERT_OK_AND_ASSIGN(Query q,
                       ParseQuery(vocab, "(x) . TEACHES(Socrates, x)"));

  ExactEvaluator exact(&lb);
  ASSERT_OK_AND_ASSIGN(Relation expected, exact.Answer(q));

  RaExactEvaluator ra(&lb);
  ASSERT_OK_AND_ASSIGN(Relation got, ra.Answer(q));
  EXPECT_EQ(got, expected);
  EXPECT_TRUE(ra.last_used_ra());
  EXPECT_GE(ra.last_mappings_examined(), 1u);
  EXPECT_EQ(ra.plan_cache_size(), 1u);

  // Repeat evaluations (Answer and PossibleAnswer alike) reuse the cached
  // plan instead of recompiling.
  ASSERT_OK_AND_ASSIGN(Relation again, ra.Answer(q));
  EXPECT_EQ(again, expected);
  ASSERT_OK_AND_ASSIGN(Relation possible, ra.PossibleAnswer(q));
  ASSERT_OK_AND_ASSIGN(Relation possible_exact, exact.PossibleAnswer(q));
  EXPECT_EQ(possible, possible_exact);
  EXPECT_EQ(ra.plan_cache_size(), 1u);

  // A second query grows the cache.
  ASSERT_OK_AND_ASSIGN(Query q2, ParseQuery(vocab, "(x) . !TEACHES(x, x)"));
  ASSERT_OK(ra.Answer(q2).status());
  EXPECT_EQ(ra.plan_cache_size(), 2u);
}

TEST(RaExactEvaluatorTest, SecondOrderQueriesFallBackToTheBatchedPath) {
  CwDatabase lb;
  ASSERT_OK(lb.AddFact("P", {"A"}));
  lb.AddUnknownConstant("U");
  Vocabulary* vocab = lb.mutable_vocab();
  ASSERT_OK_AND_ASSIGN(Query q,
                       ParseQuery(vocab, "exists2 S/1. exists x. S(x)"));

  ExactEvaluator exact(&lb);
  ASSERT_OK_AND_ASSIGN(bool expected, exact.Contains(q, {}));

  RaExactEvaluator ra(&lb);
  ASSERT_OK_AND_ASSIGN(bool got, ra.Contains(q, {}));
  EXPECT_EQ(got, expected);
  EXPECT_FALSE(ra.last_used_ra());
  // Uncompilable queries are cached too (as null plans): repeat calls skip
  // recompilation and still take the fallback.
  ASSERT_OK_AND_ASSIGN(bool again, ra.Contains(q, {}));
  EXPECT_EQ(again, expected);
  EXPECT_EQ(ra.plan_cache_size(), 1u);
}

TEST_F(CompilerEquivalenceTest, SecondOrderIsRejected) {
  ASSERT_OK_AND_ASSIGN(Query q,
                       ParseQuery(&vocab_, "exists2 S/1. exists x. S(x)"));
  RaCompiler compiler(&vocab_);
  EXPECT_EQ(compiler.Compile(q).status().code(), StatusCode::kUnimplemented);
}

TEST_F(RaTest, SqlEmitterCoversOperators) {
  ASSERT_OK_AND_ASSIGN(
      Query q,
      ParseQuery(&vocab_, "(x) . P(x) & !(exists y. R(x, y)) | x = A"));
  RaCompiler compiler(&vocab_);
  ASSERT_OK_AND_ASSIGN(PlanPtr plan, compiler.Compile(q));
  std::string sql = EmitSql(vocab_, plan);
  EXPECT_NE(sql.find("SELECT"), std::string::npos);
  EXPECT_NE(sql.find("NOT EXISTS"), std::string::npos);
  EXPECT_NE(sql.find("UNION"), std::string::npos);
  EXPECT_NE(sql.find("FROM R"), std::string::npos);
}

TEST_F(RaTest, SqlEmitterQuotesConstants) {
  ASSERT_OK_AND_ASSIGN(Query q, ParseQuery(&vocab_, "(x) . R(x, A)"));
  RaCompiler compiler(&vocab_);
  ASSERT_OK_AND_ASSIGN(PlanPtr plan, compiler.Compile(q));
  EXPECT_NE(EmitSql(vocab_, plan).find("'A'"), std::string::npos);
}

}  // namespace
}  // namespace lqdb
