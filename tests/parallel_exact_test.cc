/// ParallelExactEvaluator: determinism across thread counts, agreement with
/// the sequential Theorem 1 engine, global `max_mappings` accounting, and
/// validity of reported counterexamples/witnesses (which may legitimately
/// differ between runs — only the *answers* are deterministic).

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "lqdb/cwdb/mapping.h"
#include "lqdb/eval/evaluator.h"
#include "lqdb/exact/exact.h"
#include "lqdb/exact/parallel.h"
#include "lqdb/logic/parser.h"
#include "tests/testing.h"

namespace lqdb {
namespace {

using testing::RandomCwDatabase;
using testing::RandomDbParams;
using testing::RandomFormulaParams;
using testing::RandomQuery;

ParallelExactOptions WithThreads(int threads) {
  ParallelExactOptions options;
  options.threads = threads;
  return options;
}

TEST(ParallelExactTest, AnswersIdenticalAcross1And2And8Threads) {
  RandomDbParams db_params;
  RandomFormulaParams q_params;
  q_params.free_vars = {"hx"};
  for (uint64_t seed = 0; seed < 12; ++seed) {
    auto lb = RandomCwDatabase(seed, db_params);
    Query query = RandomQuery(seed * 31 + 7, lb->mutable_vocab(), q_params);
    SCOPED_TRACE("seed=" + std::to_string(seed));

    ExactEvaluator sequential(lb.get());
    auto expected = sequential.Answer(query);
    auto expected_possible = sequential.PossibleAnswer(query);
    ASSERT_TRUE(expected.ok()) << expected.status();
    ASSERT_TRUE(expected_possible.ok()) << expected_possible.status();

    for (int threads : {1, 2, 8}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      ParallelExactEvaluator parallel(lb.get(), WithThreads(threads));
      EXPECT_EQ(parallel.threads(), threads);

      auto answer = parallel.Answer(query);
      ASSERT_TRUE(answer.ok()) << answer.status();
      EXPECT_EQ(answer.value(), expected.value());

      auto possible = parallel.PossibleAnswer(query);
      ASSERT_TRUE(possible.ok()) << possible.status();
      EXPECT_EQ(possible.value(), expected_possible.value());

      // The engine always examines at least one mapping (the space is
      // nonempty); exact counts are compared by FullSweepCountsMatchSequential
      // since early exit makes them scheduling-dependent here.
      EXPECT_GE(parallel.last_mappings_examined(), uint64_t{1});
    }
  }
}

TEST(ParallelExactTest, ContainsAgreesWithSequentialPerCandidate) {
  RandomDbParams db_params;
  db_params.num_facts = 5;
  RandomFormulaParams q_params;
  q_params.free_vars = {"hx"};
  for (uint64_t seed = 20; seed < 26; ++seed) {
    auto lb = RandomCwDatabase(seed, db_params);
    Query query = RandomQuery(seed * 13 + 3, lb->mutable_vocab(), q_params);
    SCOPED_TRACE("seed=" + std::to_string(seed));

    ExactEvaluator sequential(lb.get());
    ParallelExactEvaluator parallel(lb.get(), WithThreads(4));
    const ConstId n = static_cast<ConstId>(lb->num_constants());
    for (ConstId c = 0; c < n; ++c) {
      Tuple candidate = {c};
      auto expected = sequential.Contains(query, candidate);
      auto actual = parallel.Contains(query, candidate);
      ASSERT_TRUE(expected.ok()) << expected.status();
      ASSERT_TRUE(actual.ok()) << actual.status();
      EXPECT_EQ(actual.value(), expected.value())
          << "candidate " << lb->vocab().ConstantName(c);

      auto expected_poss = sequential.IsPossible(query, candidate);
      auto actual_poss = parallel.IsPossible(query, candidate);
      ASSERT_TRUE(expected_poss.ok()) << expected_poss.status();
      ASSERT_TRUE(actual_poss.ok()) << actual_poss.status();
      EXPECT_EQ(actual_poss.value(), expected_poss.value());
    }
  }
}

TEST(ParallelExactTest, CounterexamplesAreGenuine) {
  // Which counterexample the parallel engine reports is scheduling
  // dependent, so do not compare mappings — *verify* them: the reported h
  // must respect the axioms and falsify the query on its image database.
  auto lb = std::make_unique<CwDatabase>();
  lb->AddUnknownConstant("Jack");
  lb->AddKnownConstant("Victoria");
  lb->AddKnownConstant("Disraeli");
  ASSERT_OK(lb->AddFact("MURDERER", {"Jack"}));
  ASSERT_OK(lb->AddDistinct("Jack", "Victoria"));
  auto query = ParseQuery(lb->mutable_vocab(), "(x) . !MURDERER(x)");
  ASSERT_TRUE(query.ok()) << query.status();

  ParallelExactEvaluator parallel(lb.get(), WithThreads(4));
  // Disraeli is not provably innocent: the mapping sending Jack to
  // Disraeli falsifies !MURDERER(Disraeli).
  std::optional<Counterexample> counterexample;
  auto contained = parallel.Contains(query.value(), {1}, &counterexample);
  ASSERT_TRUE(contained.ok()) << contained.status();
  EXPECT_TRUE(contained.value());  // Victoria (id 1) is innocent

  auto disraeli = parallel.Contains(query.value(), {2}, &counterexample);
  ASSERT_TRUE(disraeli.ok()) << disraeli.status();
  EXPECT_FALSE(disraeli.value());
  ASSERT_TRUE(counterexample.has_value());
  EXPECT_TRUE(RespectsUniqueness(*lb, counterexample->h));
  {
    PhysicalDatabase image = ApplyMapping(*lb, counterexample->h);
    Evaluator eval(&image);
    std::map<VarId, Value> binding;
    binding[query.value().head()[0]] = counterexample->h[2];
    auto sat = eval.SatisfiesWith(query.value().body(), binding);
    ASSERT_TRUE(sat.ok()) << sat.status();
    EXPECT_FALSE(sat.value()) << "reported counterexample does not falsify";
  }

  // Witness path: Disraeli is possibly innocent — the witness model must
  // actually satisfy !MURDERER(h(Disraeli)).
  std::optional<Counterexample> witness;
  auto possible = parallel.IsPossible(query.value(), {2}, &witness);
  ASSERT_TRUE(possible.ok()) << possible.status();
  EXPECT_TRUE(possible.value());
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(RespectsUniqueness(*lb, witness->h));
  {
    PhysicalDatabase image = ApplyMapping(*lb, witness->h);
    Evaluator eval(&image);
    std::map<VarId, Value> binding;
    binding[query.value().head()[0]] = witness->h[2];
    auto sat = eval.SatisfiesWith(query.value().body(), binding);
    ASSERT_TRUE(sat.ok()) << sat.status();
    EXPECT_TRUE(sat.value()) << "reported witness does not satisfy";
  }

  // Jack is the murderer in *every* model, so his innocence is not even
  // possible.
  auto jack = parallel.IsPossible(query.value(), {0}, &witness);
  ASSERT_TRUE(jack.ok()) << jack.status();
  EXPECT_FALSE(jack.value());
  EXPECT_FALSE(witness.has_value());
}

TEST(ParallelExactTest, MaxMappingsIsAccountedGlobally) {
  // 6 unknown constants — 203 canonical mappings. A budget of 10 must trip
  // ResourceExhausted no matter how the ranges land on workers.
  auto lb = std::make_unique<CwDatabase>();
  for (int i = 0; i < 6; ++i) {
    lb->AddUnknownConstant("U" + std::to_string(i));
  }
  PredId p = lb->AddPredicate("P", 1).value();
  ASSERT_OK(lb->AddFact(p, {0}));
  auto query = ParseQuery(lb->mutable_vocab(), "(x) . P(x)");
  ASSERT_TRUE(query.ok()) << query.status();

  ParallelExactOptions options = WithThreads(4);
  options.base.max_mappings = 10;
  ParallelExactEvaluator parallel(lb.get(), options);
  auto answer = parallel.Answer(query.value());
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kResourceExhausted)
      << answer.status();

  // A sufficient budget succeeds and counts the full space.
  options.base.max_mappings = 1000;
  ParallelExactEvaluator roomy(lb.get(), options);
  auto ok_answer = roomy.Answer(query.value());
  ASSERT_TRUE(ok_answer.ok()) << ok_answer.status();
}

TEST(ParallelExactTest, ZeroThreadsMeansHardwareConcurrency) {
  auto lb = std::make_unique<CwDatabase>();
  lb->AddUnknownConstant("U0");
  ParallelExactEvaluator parallel(lb.get(), WithThreads(0));
  EXPECT_GE(parallel.threads(), 1);
}

TEST(ParallelExactTest, WorkStealingSpreadsASkewedSpaceAcrossAllWorkers) {
  // Three known constants pin a single RGS prefix chain (their blocks are
  // forced pairwise-distinct), so the entire ~60k-partition Bell mass of
  // the seven unknowns hangs under one giant kernel-class subtree — the
  // shape that starved a fixed-range scheduler. A tautological query keeps
  // every candidate alive, so there is no early exit: the full space must
  // be walked, and chunk donation must hand every worker work.
  auto lb = std::make_unique<CwDatabase>();
  for (int i = 0; i < 3; ++i) {
    lb->AddKnownConstant("K" + std::to_string(i));
  }
  for (int i = 0; i < 7; ++i) {
    lb->AddUnknownConstant("U" + std::to_string(i));
  }
  auto query = ParseQuery(lb->mutable_vocab(), "(x) . x = x");
  ASSERT_TRUE(query.ok()) << query.status();

  ExactEvaluator sequential(lb.get());
  auto expected = sequential.Answer(query.value());
  ASSERT_TRUE(expected.ok()) << expected.status();
  EXPECT_EQ(expected.value().size(), 10u);

  ParallelExactOptions options = WithThreads(8);
  options.steal_chunk = 16;
  ParallelExactEvaluator parallel(lb.get(), options);

  // Every attempt must compute the exact answer over the exact mapping
  // count; whether all 8 workers retire a range additionally depends on the
  // OS giving each thread a timeslice while the queue is nonempty, so an
  // oversubscribed CPU gets a few attempts before it counts as a
  // scheduler bug.
  bool balanced = false;
  for (int attempt = 0; attempt < 10 && !balanced; ++attempt) {
    auto answer = parallel.Answer(query.value());
    ASSERT_TRUE(answer.ok()) << answer.status();
    EXPECT_EQ(answer.value(), expected.value());
    EXPECT_EQ(parallel.last_mappings_examined(),
              sequential.last_mappings_examined());

    const std::vector<uint64_t>& per_worker = parallel.last_worker_ranges();
    ASSERT_EQ(per_worker.size(), 8u);
    uint64_t total_ranges = 0;
    balanced = true;
    for (uint64_t retired : per_worker) {
      if (retired == 0) balanced = false;
      total_ranges += retired;
    }
    // The sweep is far larger than one chunk, so stealing must have split
    // it into many donated ranges regardless of thread scheduling.
    EXPECT_GT(total_ranges, 8u);
  }
  EXPECT_TRUE(balanced) << "some worker never retired a range in 10 sweeps";
}

TEST(ParallelExactTest, FullSweepCountsMatchSequential) {
  // A positive query with a nonempty answer never early-exits, so the
  // parallel engine must examine *exactly* the canonical-mapping count.
  auto lb = std::make_unique<CwDatabase>();
  for (int i = 0; i < 5; ++i) {
    lb->AddUnknownConstant("U" + std::to_string(i));
  }
  PredId p = lb->AddPredicate("P", 1).value();
  for (ConstId c = 0; c < 5; ++c) {
    ASSERT_OK(lb->AddFact(p, {c}));  // P holds everywhere: nothing dies
  }
  auto query = ParseQuery(lb->mutable_vocab(), "(x) . P(x)");
  ASSERT_TRUE(query.ok()) << query.status();

  const uint64_t space = CountCanonicalMappings(*lb);  // B(5) = 52
  ASSERT_EQ(space, 52u);
  for (int threads : {1, 2, 8}) {
    ParallelExactEvaluator parallel(lb.get(), WithThreads(threads));
    auto answer = parallel.Answer(query.value());
    ASSERT_TRUE(answer.ok()) << answer.status();
    EXPECT_EQ(answer.value().size(), 5u);
    EXPECT_EQ(parallel.last_mappings_examined(), space)
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace lqdb
