#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <string>
#include <vector>

#include "lqdb/util/arena.h"
#include "lqdb/util/interner.h"
#include "lqdb/util/parse.h"
#include "lqdb/util/result.h"
#include "lqdb/util/rng.h"
#include "lqdb/util/status.h"
#include "lqdb/util/table.h"
#include "lqdb/util/thread_pool.h"

namespace lqdb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kCancelled,
        StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kFailedPrecondition,
        StatusCode::kUnimplemented, StatusCode::kInternal,
        StatusCode::kResourceExhausted}) {
    EXPECT_FALSE(StatusCodeToString(code).empty());
    EXPECT_NE(StatusCodeToString(code), "Unknown");
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyTypesWork) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Result<int> Doubled(Result<int> in) {
  LQDB_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(Doubled(21).value(), 42);
  EXPECT_EQ(Doubled(Status::Internal("boom")).status().code(),
            StatusCode::kInternal);
}

TEST(InternerTest, AssignsDenseIdsInOrder) {
  Interner interner;
  EXPECT_EQ(interner.Intern("a"), 0u);
  EXPECT_EQ(interner.Intern("b"), 1u);
  EXPECT_EQ(interner.Intern("a"), 0u);
  EXPECT_EQ(interner.size(), 2u);
  EXPECT_EQ(interner.NameOf(0), "a");
  EXPECT_EQ(interner.NameOf(1), "b");
}

TEST(InternerTest, FindMissesReturnSentinel) {
  Interner interner;
  EXPECT_EQ(interner.Find("ghost"), Interner::kNotFound);
  interner.Intern("ghost");
  EXPECT_NE(interner.Find("ghost"), Interner::kNotFound);
}

TEST(InternerTest, ManySymbolsStayConsistent) {
  Interner interner;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(interner.Intern("sym" + std::to_string(i)),
              static_cast<uint32_t>(i));
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(interner.NameOf(i), "sym" + std::to_string(i));
  }
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Below(17), 17u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(MemArenaTest, AllocationsAreAlignedAndCounted) {
  MemArena arena;
  void* a = arena.Allocate(3, 1);
  void* b = arena.Allocate(8, 8);
  EXPECT_NE(a, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 8, 0u);
  EXPECT_EQ(arena.bytes_allocated(), 11u);
  EXPECT_EQ(arena.num_blocks(), 1u);
  // Zero-byte requests still return a valid pointer.
  EXPECT_NE(arena.Allocate(0), nullptr);
}

TEST(MemArenaTest, ResetKeepsOneWarmBlock) {
  MemArena arena(/*block_bytes=*/64);
  // Overflow the first block so a second (and an oversized third) chain on.
  arena.Allocate(60, 1);
  arena.Allocate(60, 1);
  arena.Allocate(1000, 1);
  EXPECT_GE(arena.num_blocks(), 3u);
  arena.Reset();
  EXPECT_EQ(arena.num_blocks(), 1u);
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  // The warm block is reused: a small allocation adds no block.
  arena.Allocate(16, 1);
  EXPECT_EQ(arena.num_blocks(), 1u);
}

TEST(MemArenaTest, CopyStringNulTerminatesInsideArena) {
  MemArena arena;
  const std::string text = "certain answers";
  const char* copy = arena.CopyString(text.c_str(), text.size());
  EXPECT_STREQ(copy, "certain answers");
  EXPECT_NE(static_cast<const void*>(copy),
            static_cast<const void*>(text.c_str()));
  arena.Reset();
  // The same bytes come back out of the warm block after a reset.
  EXPECT_EQ(static_cast<const void*>(arena.CopyString("x", 1)),
            static_cast<const void*>(copy));
}

TEST(ThreadPoolTest, AsyncReturnsFutureValues) {
  ThreadPool pool(2);
  std::future<int> f1 = pool.Async([] { return 40 + 2; });
  std::future<std::string> f2 =
      pool.Async([]() -> std::string { return "done"; });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "done");
}

TEST(ThreadPoolTest, AsyncTasksRunConcurrentlyWithSubmit) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.Async([i] { return i; }));
    pool.Submit([&sum, i] { sum.fetch_add(i); });
  }
  int total = 0;
  for (std::future<int>& f : futures) total += f.get();
  pool.Wait();
  EXPECT_EQ(total, 31 * 32 / 2);
  EXPECT_EQ(sum.load(), 31 * 32 / 2);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer", "22"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TablePrinterTest, ShortRowsArePadded) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"only"});
  EXPECT_NE(t.ToString().find("only"), std::string::npos);
}

TEST(FormatDoubleTest, RendersDigits) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatDouble(2.0, 1), "2.0");
}

TEST(ParseStrictTest, AcceptsPureDecimals) {
  unsigned long long u = 1;
  EXPECT_TRUE(ParseStrictUint("0", &u));
  EXPECT_EQ(u, 0ull);
  EXPECT_TRUE(ParseStrictUint("42", &u));
  EXPECT_EQ(u, 42ull);
  EXPECT_TRUE(ParseStrictUint("18446744073709551615", &u));  // ULLONG_MAX
  EXPECT_EQ(u, 18446744073709551615ull);
}

TEST(ParseStrictTest, RejectsGarbageSignsAndOverflow) {
  unsigned long long u = 0;
  // The prefix-parsing behaviors of std::stoi that bit the shell and the
  // text format: trailing garbage, signs, spaces — all rejected outright.
  EXPECT_FALSE(ParseStrictUint("", &u));
  EXPECT_FALSE(ParseStrictUint("4x", &u));
  EXPECT_FALSE(ParseStrictUint("-1", &u));
  EXPECT_FALSE(ParseStrictUint("+1", &u));
  EXPECT_FALSE(ParseStrictUint(" 1", &u));
  EXPECT_FALSE(ParseStrictUint("0x10", &u));
  EXPECT_FALSE(ParseStrictUint("18446744073709551616", &u));  // ULLONG_MAX+1
}

TEST(ParseStrictTest, IntVariantBoundsTheValue) {
  int v = -1;
  EXPECT_TRUE(ParseStrictInt("2147483647", &v));  // INT_MAX
  EXPECT_EQ(v, 2147483647);
  EXPECT_FALSE(ParseStrictInt("2147483648", &v));
  EXPECT_FALSE(ParseStrictInt("99999999999999999999", &v));
  EXPECT_TRUE(ParseStrictInt("7", &v, /*max=*/7));
  EXPECT_EQ(v, 7);
  EXPECT_FALSE(ParseStrictInt("8", &v, /*max=*/7));
}

}  // namespace
}  // namespace lqdb
