#include <gtest/gtest.h>

#include "lqdb/logic/vocabulary.h"
#include "lqdb/relational/database.h"
#include "lqdb/relational/relation.h"
#include "lqdb/relational/tuple.h"
#include "testing.h"

namespace lqdb {
namespace {

TEST(RelationTest, InsertAndContains) {
  Relation r(2);
  EXPECT_TRUE(r.Insert({1, 2}));
  EXPECT_FALSE(r.Insert({1, 2}));  // duplicate
  EXPECT_TRUE(r.Insert({2, 1}));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains({1, 2}));
  EXPECT_FALSE(r.Contains({3, 3}));
}

TEST(RelationTest, NullaryRelation) {
  Relation r(0);
  EXPECT_TRUE(r.empty());
  EXPECT_TRUE(r.Insert({}));
  EXPECT_FALSE(r.Insert({}));
  EXPECT_TRUE(r.Contains({}));
  EXPECT_EQ(r.size(), 1u);
}

TEST(RelationTest, SortedTuplesAreDeterministic) {
  Relation r(2);
  r.Insert({3, 1});
  r.Insert({1, 2});
  r.Insert({1, 1});
  std::vector<Tuple> sorted = r.SortedTuples();
  EXPECT_EQ(sorted, (std::vector<Tuple>{{1, 1}, {1, 2}, {3, 1}}));
}

TEST(RelationTest, SubsetAndEquality) {
  Relation a(1), b(1);
  a.Insert({1});
  b.Insert({1});
  b.Insert({2});
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_NE(a, b);
  a.Insert({2});
  EXPECT_EQ(a, b);
  Relation c(2);
  EXPECT_FALSE(a.IsSubsetOf(c));  // arity mismatch
}

TEST(TupleTest, HashSpreadsValues) {
  TupleHash h;
  EXPECT_NE(h({1, 2}), h({2, 1}));
  EXPECT_EQ(h({1, 2}), h({1, 2}));
}

TEST(TupleTest, ToStringUsesNamer) {
  Tuple t{0, 1};
  std::string s =
      TupleToString(t, [](Value v) { return std::string(1, 'a' + v); });
  EXPECT_EQ(s, "(a, b)");
}

TEST(PhysicalDatabaseTest, DomainAndConstants) {
  Vocabulary v;
  ConstId a = v.AddConstant("A");
  ConstId b = v.AddConstant("B");
  PhysicalDatabase db(&v);
  db.AddDomainValue(0);
  db.AddDomainValue(1);
  db.AddDomainValue(1);  // idempotent
  EXPECT_EQ(db.domain_size(), 2u);

  ASSERT_OK(db.SetConstant(a, 0));
  ASSERT_OK(db.SetConstant(b, 0));  // two constants may share a value
  EXPECT_EQ(db.ConstantValue(a), 0u);
  EXPECT_EQ(db.ConstantValue(b), 0u);
  EXPECT_FALSE(db.SetConstant(a, 99).ok());  // outside the domain
}

TEST(PhysicalDatabaseTest, IdentityInterpretation) {
  Vocabulary v;
  v.AddConstant("A");
  v.AddConstant("B");
  PhysicalDatabase db(&v);
  db.InterpretConstantsAsThemselves();
  EXPECT_EQ(db.domain_size(), 2u);
  EXPECT_EQ(db.ConstantValue(0), 0u);
  EXPECT_EQ(db.ConstantValue(1), 1u);
  EXPECT_OK(db.Validate());
}

TEST(PhysicalDatabaseTest, RelationsCheckArityAndDomain) {
  Vocabulary v;
  v.AddConstant("A");
  PredId p = v.AddPredicate("P", 2).value();
  PhysicalDatabase db(&v);
  db.InterpretConstantsAsThemselves();
  EXPECT_FALSE(db.AddTuple(p, {0}).ok());       // arity
  EXPECT_FALSE(db.AddTuple(p, {0, 42}).ok());   // outside domain
  ASSERT_OK(db.AddTuple(p, {0, 0}));
  EXPECT_TRUE(db.relation(p).Contains({0, 0}));
  EXPECT_TRUE(db.HasRelation(p));
}

TEST(PhysicalDatabaseTest, MissingRelationIsEmpty) {
  Vocabulary v;
  v.AddConstant("A");
  PredId p = v.AddPredicate("P", 3).value();
  PhysicalDatabase db(&v);
  db.InterpretConstantsAsThemselves();
  EXPECT_FALSE(db.HasRelation(p));
  EXPECT_EQ(db.relation(p).arity(), 3);
  EXPECT_TRUE(db.relation(p).empty());
}

TEST(PhysicalDatabaseTest, ValidateRequiresNonemptyDomain) {
  Vocabulary v;
  PhysicalDatabase empty(&v);
  EXPECT_EQ(empty.Validate().code(), StatusCode::kFailedPrecondition);

  v.AddConstant("A");
  PhysicalDatabase db(&v);
  db.AddDomainValue(7);
  EXPECT_OK(db.Validate());  // missing constants are caught at eval time
  EXPECT_FALSE(db.HasConstantValue(0));
  ASSERT_OK(db.SetConstant(0, 7));
  EXPECT_TRUE(db.HasConstantValue(0));
}

TEST(PhysicalDatabaseTest, SetRelationReplacesWholesale) {
  Vocabulary v;
  v.AddConstant("A");
  PredId p = v.AddPredicate("P", 1).value();
  PhysicalDatabase db(&v);
  db.InterpretConstantsAsThemselves();
  ASSERT_OK(db.AddTuple(p, {0}));
  Relation fresh(1);
  ASSERT_OK(db.SetRelation(p, fresh));
  EXPECT_TRUE(db.relation(p).empty());
  Relation wrong(2);
  EXPECT_FALSE(db.SetRelation(p, wrong).ok());
}

TEST(PhysicalDatabaseTest, ToStringMentionsEverything) {
  Vocabulary v;
  v.AddConstant("Alice");
  PredId p = v.AddPredicate("Emp", 1).value();
  PhysicalDatabase db(&v);
  db.InterpretConstantsAsThemselves();
  ASSERT_OK(db.AddTuple(p, {0}));
  std::string s = db.ToString();
  EXPECT_NE(s.find("Alice"), std::string::npos);
  EXPECT_NE(s.find("Emp"), std::string::npos);
}

}  // namespace
}  // namespace lqdb
