/// Differential testing of the three query engines against each other:
///
///   - `BruteForceEvaluator` (exact/brute): the literal Theorem 1 definition,
///     enumerating *every* mapping h : C → C — slow but definitionally
///     correct, so it serves as the oracle;
///   - `ExactEvaluator` (exact/exact): Theorem 1 with canonical-mapping
///     enumeration — must agree with brute on every instance;
///   - `ApproxEvaluator` (approx/): the §5 polynomial approximation — must
///     be sound (⊆ exact) always, and complete on fully specified databases
///     (Theorem 12) and positive queries (Theorem 13).
///
/// Every test sweeps seeded random instances from tests/differential/
/// generator.h; any failure prints the reproducing seed plus the serialized
/// database and query, so it can be replayed without recompiling.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "lqdb/approx/approx.h"
#include "lqdb/engine/engine.h"
#include "lqdb/exact/brute.h"
#include "lqdb/exact/exact.h"
#include "lqdb/logic/classify.h"
#include "lqdb/logic/printer.h"
#include "lqdb/ra/compiler.h"
#include "lqdb/ra/semijoin.h"
#include "lqdb/ra/validate.h"
#include "lqdb/relational/relation.h"
#include "lqdb/service/service.h"
#include "tests/differential/generator.h"
#include "tests/testing.h"

namespace lqdb {
namespace {

using testing::Describe;
using testing::DifferentialInstance;
using testing::InstanceProfile;
using testing::MakeInstance;

std::string AnswerDiff(const CwDatabase& db, const char* lhs_name,
                       const Relation& lhs, const char* rhs_name,
                       const Relation& rhs) {
  auto render = [&](const Relation& r) {
    std::string out = "{";
    bool first = true;
    for (const Tuple& t : r.SortedTuples()) {
      if (!first) out += ", ";
      first = false;
      out += "(";
      for (size_t i = 0; i < t.size(); ++i) {
        if (i > 0) out += ", ";
        out += db.vocab().ConstantName(t[i]);
      }
      out += ")";
    }
    return out + "}";
  };
  return std::string(lhs_name) + " = " + render(lhs) + "\n" + rhs_name +
         " = " + render(rhs);
}

/// Exact vs. brute: the canonical-mapping enumeration must compute exactly
/// the same certain answer as the unoptimized all-mappings definition, and
/// the certain answer must be contained in the possible answer.
void CheckBruteVsExact(const DifferentialInstance& instance) {
  SCOPED_TRACE(Describe(instance));
  BruteForceEvaluator brute(instance.db.get());
  ASSERT_OK_AND_ASSIGN(Relation brute_answer, brute.Answer(instance.query));

  ExactEvaluator exact(instance.db.get());
  ASSERT_OK_AND_ASSIGN(Relation exact_answer, exact.Answer(instance.query));
  EXPECT_EQ(brute_answer, exact_answer)
      << AnswerDiff(*instance.db, "brute", brute_answer, "exact",
                    exact_answer);

  ASSERT_OK_AND_ASSIGN(Relation possible,
                       exact.PossibleAnswer(instance.query));
  EXPECT_TRUE(exact_answer.IsSubsetOf(possible))
      << AnswerDiff(*instance.db, "certain", exact_answer, "possible",
                    possible);
}

TEST(DifferentialTest, BruteAgreesWithExact) {
  const InstanceProfile profiles[] = {InstanceProfile::kTiny,
                                      InstanceProfile::kSmall,
                                      InstanceProfile::kBinary};
  for (InstanceProfile profile : profiles) {
    for (uint64_t seed = 0; seed < 40; ++seed) {
      CheckBruteVsExact(MakeInstance(seed, profile));
    }
  }
}

/// Soundness of the approximation (Theorem 11) under every engine
/// configuration, plus cross-configuration agreement: all four configs
/// compute the same mathematical object A(Q, LB) = Q̂(Ph₂(LB)), so their
/// answers must be identical, not merely each sound.
TEST(DifferentialTest, ApproxIsSoundAndConfigurationsAgree) {
  struct Config {
    const char* name;
    AlphaMode alpha;
    ApproxEngine engine;
    bool materialize_ne;
  };
  const Config configs[] = {
      {"virtual/evaluator", AlphaMode::kVirtual, ApproxEngine::kEvaluator,
       false},
      {"virtual/evaluator/materialized-NE", AlphaMode::kVirtual,
       ApproxEngine::kEvaluator, true},
      {"syntactic/evaluator", AlphaMode::kSyntactic, ApproxEngine::kEvaluator,
       true},
      {"virtual/ra", AlphaMode::kVirtual, ApproxEngine::kRelationalAlgebra,
       false},
  };
  const InstanceProfile profiles[] = {InstanceProfile::kSmall,
                                      InstanceProfile::kBinary};
  for (InstanceProfile profile : profiles) {
    for (uint64_t seed = 0; seed < 30; ++seed) {
      // The exact answer depends only on (seed, profile); compute it once
      // on its own copy of the instance. Constant ids are deterministic in
      // the seed, so the relation is comparable across instance copies.
      Relation exact_answer(0);
      {
        DifferentialInstance instance = MakeInstance(seed, profile);
        SCOPED_TRACE(Describe(instance));
        ExactEvaluator exact(instance.db.get());
        ASSERT_OK_AND_ASSIGN(exact_answer, exact.Answer(instance.query));
      }

      std::vector<Relation> answers;
      for (const Config& config : configs) {
        // A fresh deterministic copy of the instance per config: building an
        // ApproxEvaluator extends the database vocabulary (NE, α), so
        // configs must not share one database.
        DifferentialInstance instance = MakeInstance(seed, profile);
        SCOPED_TRACE(Describe(instance));
        SCOPED_TRACE(std::string("config: ") + config.name);

        ApproxOptions options;
        options.alpha_mode = config.alpha;
        options.engine = config.engine;
        options.materialize_ne = config.materialize_ne;
        ASSERT_OK_AND_ASSIGN(std::unique_ptr<ApproxEvaluator> approx,
                             ApproxEvaluator::Make(instance.db.get(),
                                                   options));
        ASSERT_OK_AND_ASSIGN(Relation approx_answer,
                             approx->Answer(instance.query));

        EXPECT_TRUE(approx_answer.IsSubsetOf(exact_answer))
            << "approximation is unsound\n"
            << AnswerDiff(*instance.db, "approx", approx_answer, "exact",
                          exact_answer);
        if (!answers.empty()) {
          EXPECT_EQ(approx_answer, answers.front())
              << "configs disagree: " << configs[0].name << " vs "
              << config.name << "\n"
              << AnswerDiff(*instance.db, configs[0].name, answers.front(),
                            config.name, approx_answer);
        }
        answers.push_back(std::move(approx_answer));
      }
    }
  }
}

/// Theorem 12: on a fully specified database all three engines coincide.
TEST(DifferentialTest, FullySpecifiedAllEnginesCoincide) {
  for (uint64_t seed = 0; seed < 40; ++seed) {
    DifferentialInstance instance =
        MakeInstance(seed, InstanceProfile::kFullySpecified);
    SCOPED_TRACE(Describe(instance));
    ASSERT_TRUE(instance.db->IsFullySpecified());

    BruteForceEvaluator brute(instance.db.get());
    ASSERT_OK_AND_ASSIGN(Relation brute_answer, brute.Answer(instance.query));

    ExactEvaluator exact(instance.db.get());
    ASSERT_OK_AND_ASSIGN(Relation exact_answer, exact.Answer(instance.query));
    EXPECT_EQ(brute_answer, exact_answer)
        << AnswerDiff(*instance.db, "brute", brute_answer, "exact",
                      exact_answer);

    ASSERT_OK_AND_ASSIGN(std::unique_ptr<ApproxEvaluator> approx,
                         ApproxEvaluator::Make(instance.db.get(), {}));
    ASSERT_OK_AND_ASSIGN(Relation approx_answer,
                         approx->Answer(instance.query));
    EXPECT_EQ(approx_answer, exact_answer)
        << "approximation incomplete on a fully specified database\n"
        << AnswerDiff(*instance.db, "approx", approx_answer, "exact",
                      exact_answer);
  }
}

/// Theorem 13: for positive queries the approximation is complete even with
/// unknown constants present.
TEST(DifferentialTest, PositiveQueriesAreComplete) {
  for (uint64_t seed = 0; seed < 40; ++seed) {
    DifferentialInstance instance =
        MakeInstance(seed, InstanceProfile::kPositive);
    SCOPED_TRACE(Describe(instance));
    ASSERT_TRUE(IsPositive(instance.query));

    BruteForceEvaluator brute(instance.db.get());
    ASSERT_OK_AND_ASSIGN(Relation brute_answer, brute.Answer(instance.query));

    ExactEvaluator exact(instance.db.get());
    ASSERT_OK_AND_ASSIGN(Relation exact_answer, exact.Answer(instance.query));
    EXPECT_EQ(brute_answer, exact_answer)
        << AnswerDiff(*instance.db, "brute", brute_answer, "exact",
                      exact_answer);

    ASSERT_OK_AND_ASSIGN(std::unique_ptr<ApproxEvaluator> approx,
                         ApproxEvaluator::Make(instance.db.get(), {}));
    ASSERT_OK_AND_ASSIGN(Relation approx_answer,
                         approx->Answer(instance.query));
    EXPECT_EQ(approx_answer, exact_answer)
        << "approximation incomplete on a positive query\n"
        << AnswerDiff(*instance.db, "approx", approx_answer, "exact",
                      exact_answer);
  }
}

/// The parallel-engine agreement dimension: `ParallelExactEvaluator`
/// (reached through the engine registry, the way every other caller gets
/// it) must compute exactly the same certain and possible answers as the
/// sequential `ExactEvaluator` on *every* instance the suite generates —
/// the same 268 (profile, seed) pairs the other dimensions sweep, so a
/// partition-splitting or coordination bug cannot hide in a corner the
/// sequential tests cover but the parallel ones skip.
TEST(DifferentialTest, ParallelExactAgreesOnAllInstances) {
  struct Sweep {
    InstanceProfile profile;
    uint64_t seeds;
  };
  // Mirrors the instance sets of the other tests in this file:
  // 3×40 (brute-vs-exact) + 2×30 (approx configs) + 40 + 40 + 8 = 268.
  const Sweep sweeps[] = {
      {InstanceProfile::kTiny, 40},   {InstanceProfile::kSmall, 40},
      {InstanceProfile::kBinary, 40}, {InstanceProfile::kSmall, 30},
      {InstanceProfile::kBinary, 30}, {InstanceProfile::kFullySpecified, 40},
      {InstanceProfile::kPositive, 40}, {InstanceProfile::kTiny, 8},
  };
  uint64_t instances = 0;
  for (const Sweep& sweep : sweeps) {
    for (uint64_t seed = 0; seed < sweep.seeds; ++seed) {
      ++instances;
      DifferentialInstance instance = MakeInstance(seed, sweep.profile);
      SCOPED_TRACE(Describe(instance));

      ExactEvaluator exact(instance.db.get());
      ASSERT_OK_AND_ASSIGN(Relation exact_answer,
                           exact.Answer(instance.query));
      ASSERT_OK_AND_ASSIGN(Relation exact_possible,
                           exact.PossibleAnswer(instance.query));

      EngineOptions options;
      options.threads = 4;
      ASSERT_OK_AND_ASSIGN(std::unique_ptr<QueryEngine> parallel,
                           EngineRegistry::Global().Create(
                               "parallel-exact", instance.db.get(), options));
      ASSERT_OK_AND_ASSIGN(Relation parallel_answer,
                           parallel->Answer(instance.query));
      EXPECT_EQ(parallel_answer, exact_answer)
          << AnswerDiff(*instance.db, "parallel", parallel_answer, "exact",
                        exact_answer);

      ASSERT_OK_AND_ASSIGN(Relation parallel_possible,
                           parallel->PossibleAnswer(instance.query));
      EXPECT_EQ(parallel_possible, exact_possible)
          << AnswerDiff(*instance.db, "parallel", parallel_possible, "exact",
                        exact_possible);
    }
  }
  EXPECT_EQ(instances, 268u);
}

/// The work-stealing dimension: the skewed profile hangs the whole
/// canonical-mapping mass under one giant kernel-class subtree (the known
/// constants pin a single RGS prefix chain), the adversarial shape for the
/// parallel engine's scheduler. With deliberately tiny steal chunks — lots
/// of remainder donation — the parallel answers must still be bit-identical
/// to the sequential engine's on every instance.
TEST(DifferentialTest, SkewedProfileParallelAgreesOnAllInstances) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    DifferentialInstance instance =
        MakeInstance(seed, InstanceProfile::kSkewed);
    SCOPED_TRACE(Describe(instance));

    ExactEvaluator exact(instance.db.get());
    ASSERT_OK_AND_ASSIGN(Relation exact_answer, exact.Answer(instance.query));
    ASSERT_OK_AND_ASSIGN(Relation exact_possible,
                         exact.PossibleAnswer(instance.query));

    ParallelExactOptions options;
    options.threads = 8;
    options.steal_chunk = 8;
    ParallelExactEvaluator parallel(instance.db.get(), options);
    ASSERT_OK_AND_ASSIGN(Relation parallel_answer,
                         parallel.Answer(instance.query));
    EXPECT_EQ(parallel_answer, exact_answer)
        << AnswerDiff(*instance.db, "parallel", parallel_answer, "exact",
                      exact_answer);
    ASSERT_OK_AND_ASSIGN(Relation parallel_possible,
                         parallel.PossibleAnswer(instance.query));
    EXPECT_EQ(parallel_possible, exact_possible)
        << AnswerDiff(*instance.db, "parallel", parallel_possible, "exact",
                      exact_possible);
  }
}

/// The compiled-plan dimension: `ra-exact` replaces the per-image batched
/// evaluator with a cached relational-algebra plan (hash joins, anti-joins
/// for negation, shared subplans for `↔`/`→`/`∀`), so the whole compiler +
/// executor stack must reproduce `ExactEvaluator`'s answers bit-for-bit on
/// every instance the suite generates — the same 268 (profile, seed) pairs
/// the other dimensions sweep. The generator emits first-order formulas
/// only, so every instance exercises the compiled path rather than the
/// second-order fallback.
TEST(DifferentialTest, RaExactAgreesOnAllInstances) {
  struct Sweep {
    InstanceProfile profile;
    uint64_t seeds;
  };
  const Sweep sweeps[] = {
      {InstanceProfile::kTiny, 40},   {InstanceProfile::kSmall, 40},
      {InstanceProfile::kBinary, 40}, {InstanceProfile::kSmall, 30},
      {InstanceProfile::kBinary, 30}, {InstanceProfile::kFullySpecified, 40},
      {InstanceProfile::kPositive, 40}, {InstanceProfile::kTiny, 8},
  };
  uint64_t instances = 0;
  for (const Sweep& sweep : sweeps) {
    for (uint64_t seed = 0; seed < sweep.seeds; ++seed) {
      ++instances;
      DifferentialInstance instance = MakeInstance(seed, sweep.profile);
      SCOPED_TRACE(Describe(instance));

      ExactEvaluator exact(instance.db.get());
      ASSERT_OK_AND_ASSIGN(Relation exact_answer,
                           exact.Answer(instance.query));
      ASSERT_OK_AND_ASSIGN(Relation exact_possible,
                           exact.PossibleAnswer(instance.query));

      ASSERT_OK_AND_ASSIGN(std::unique_ptr<QueryEngine> ra,
                           EngineRegistry::Global().Create(
                               "ra-exact", instance.db.get()));
      ASSERT_OK_AND_ASSIGN(Relation ra_answer, ra->Answer(instance.query));
      EXPECT_EQ(ra_answer, exact_answer)
          << AnswerDiff(*instance.db, "ra-exact", ra_answer, "exact",
                        exact_answer);

      ASSERT_OK_AND_ASSIGN(Relation ra_possible,
                           ra->PossibleAnswer(instance.query));
      EXPECT_EQ(ra_possible, exact_possible)
          << AnswerDiff(*instance.db, "ra-exact", ra_possible, "exact",
                        exact_possible);
    }
  }
  EXPECT_EQ(instances, 268u);
}

/// ra-exact on the skewed profile: the known constants pin a long RGS
/// prefix chain, so the canonical enumeration visits many near-identical
/// images — exactly the case the cached plan is supposed to accelerate
/// without changing a single answer.
TEST(DifferentialTest, SkewedProfileRaExactAgreesOnAllInstances) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    DifferentialInstance instance =
        MakeInstance(seed, InstanceProfile::kSkewed);
    SCOPED_TRACE(Describe(instance));

    ExactEvaluator exact(instance.db.get());
    ASSERT_OK_AND_ASSIGN(Relation exact_answer, exact.Answer(instance.query));
    ASSERT_OK_AND_ASSIGN(Relation exact_possible,
                         exact.PossibleAnswer(instance.query));

    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<QueryEngine> ra,
        EngineRegistry::Global().Create("ra-exact", instance.db.get()));
    ASSERT_OK_AND_ASSIGN(Relation ra_answer, ra->Answer(instance.query));
    EXPECT_EQ(ra_answer, exact_answer)
        << AnswerDiff(*instance.db, "ra-exact", ra_answer, "exact",
                      exact_answer);
    ASSERT_OK_AND_ASSIGN(Relation ra_possible,
                         ra->PossibleAnswer(instance.query));
    EXPECT_EQ(ra_possible, exact_possible)
        << AnswerDiff(*instance.db, "ra-exact", ra_possible, "exact",
                      exact_possible);
  }
}

/// ra-exact on the generated large-world profile: an order of magnitude
/// more constants and facts than the toy profiles (lqdb/gen/scenario.h),
/// with a fixed join-heavy query pool — the regime the compiled engine's
/// join-order DP and semijoin reduction actually target, so agreement here
/// covers plan shapes (multi-join chains, binary heads, guarded universals
/// over large relations) the random toy formulas rarely produce. Few
/// unknowns keep the mapping count in the hundreds, so the sweep stays
/// CI-safe under the sanitizers; six seeds cycle through every pool query.
TEST(DifferentialTest, LargeProfileRaExactAgreesOnAllInstances) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    DifferentialInstance instance =
        MakeInstance(seed, InstanceProfile::kLarge);
    SCOPED_TRACE(Describe(instance));

    ExactEvaluator exact(instance.db.get());
    ASSERT_OK_AND_ASSIGN(Relation exact_answer, exact.Answer(instance.query));
    ASSERT_OK_AND_ASSIGN(Relation exact_possible,
                         exact.PossibleAnswer(instance.query));

    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<QueryEngine> ra,
        EngineRegistry::Global().Create("ra-exact", instance.db.get()));
    ASSERT_OK_AND_ASSIGN(Relation ra_answer, ra->Answer(instance.query));
    EXPECT_EQ(ra_answer, exact_answer)
        << AnswerDiff(*instance.db, "ra-exact", ra_answer, "exact",
                      exact_answer);
    ASSERT_OK_AND_ASSIGN(Relation ra_possible,
                         ra->PossibleAnswer(instance.query));
    EXPECT_EQ(ra_possible, exact_possible)
        << AnswerDiff(*instance.db, "ra-exact", ra_possible, "exact",
                      exact_possible);
  }
}

/// The static-validation dimension: every query of the full differential
/// corpus — the 268-instance pool plus the skewed and large profiles —
/// compiles to a plan that passes `ValidatePlan` with zero findings, and
/// so does its semijoin-reduced form (validated against the reduction's
/// param node). This is the standing guarantee behind running the
/// validator on every compiled plan in debug builds: the gate only helps
/// if the honest compiler output never trips it.
TEST(DifferentialTest, CompiledPlansValidateOnAllInstances) {
  struct Sweep {
    InstanceProfile profile;
    uint64_t seeds;
  };
  const Sweep sweeps[] = {
      {InstanceProfile::kTiny, 40},   {InstanceProfile::kSmall, 40},
      {InstanceProfile::kBinary, 40}, {InstanceProfile::kSmall, 30},
      {InstanceProfile::kBinary, 30}, {InstanceProfile::kFullySpecified, 40},
      {InstanceProfile::kPositive, 40}, {InstanceProfile::kTiny, 8},
      {InstanceProfile::kSkewed, 20}, {InstanceProfile::kLarge, 6},
  };
  uint64_t instances = 0;
  for (const Sweep& sweep : sweeps) {
    for (uint64_t seed = 0; seed < sweep.seeds; ++seed) {
      ++instances;
      DifferentialInstance instance = MakeInstance(seed, sweep.profile);
      SCOPED_TRACE(Describe(instance));

      RaCompiler compiler(&instance.db->vocab());
      ASSERT_OK_AND_ASSIGN(PlanPtr plan, compiler.Compile(instance.query));
      PlanValidateOptions opts;
      opts.vocab = &instance.db->vocab();
      EXPECT_OK(ValidatePlan(plan, opts));

      ASSERT_OK_AND_ASSIGN(ReducedPlan reduced, SemijoinReduce(plan));
      opts.param = reduced.param.get();
      EXPECT_OK(ValidatePlan(reduced.plan, opts));
    }
  }
  EXPECT_EQ(instances, 294u);
}

/// The multi-session dimension: K = 8 concurrent service sessions — mixed
/// engines, including the mutating approximation and the parallel engine —
/// each replaying the same prepared statement through the shared cache,
/// must produce answers bit-identical to a sequential replay of the exact
/// same call sequence on a fresh copy of the instance. Constant ids are
/// deterministic in (seed, profile), so the relations are comparable
/// across instance copies. Runs under TSan in CI, where it also serves as
/// the data-race probe for the service's locking discipline.
TEST(DifferentialTest, ConcurrentSessionsMatchSequentialReplay) {
  struct SessionSpec {
    const char* engine;
    int threads;
  };
  const SessionSpec specs[] = {
      {"exact", 1},          {"ra-exact", 1}, {"parallel-exact", 2},
      {"brute", 1},          {"exact", 1},    {"ra-exact", 1},
      {"parallel-exact", 2}, {"approx", 1},
  };
  constexpr size_t kSessions = sizeof(specs) / sizeof(specs[0]);
  constexpr int kRounds = 3;

  // One session's Prepare + Execute (async, through the shared pool, in
  // the concurrent phase; synchronous in the replay — same code path
  // underneath, so the answers must not differ).
  auto run_async = [](Session& session, const std::string& text,
                      bool possible) -> Result<Relation> {
    auto info = session.Prepare(text);
    if (!info.ok()) return info.status();
    auto async = session.ExecuteAsync(info->handle, possible);
    if (!async.ok()) return async.status();
    return async->result.get();
  };
  auto run_sync = [](Session& session, const std::string& text,
                     bool possible) -> Result<Relation> {
    auto info = session.Prepare(text);
    if (!info.ok()) return info.status();
    return possible ? session.ExecutePossible(info->handle)
                    : session.Execute(info->handle);
  };
  auto open = [](Service& service, const SessionSpec& spec) {
    SessionOptions options;
    options.engine = spec.engine;
    options.engine_options.threads = spec.threads;
    options.max_in_flight = 2;
    return service.OpenSession(std::move(options)).value();
  };

  const InstanceProfile profiles[] = {InstanceProfile::kTiny,
                                      InstanceProfile::kSmall,
                                      InstanceProfile::kBinary};
  for (InstanceProfile profile : profiles) {
    for (uint64_t seed = 0; seed < 3; ++seed) {
      DifferentialInstance instance = MakeInstance(seed, profile);
      SCOPED_TRACE(Describe(instance));
      const std::string text =
          PrintQuery(instance.db->vocab(), instance.query);

      // Concurrent phase: one thread per session against one service.
      std::vector<std::vector<Result<Relation>>> concurrent(kSessions);
      {
        Service service(instance.db.get());
        std::vector<std::shared_ptr<Session>> sessions;
        for (size_t i = 0; i < kSessions; ++i) {
          sessions.push_back(open(service, specs[i]));
        }
        std::vector<std::thread> threads;
        for (size_t i = 0; i < kSessions; ++i) {
          threads.emplace_back([&, i] {
            for (int round = 0; round < kRounds; ++round) {
              concurrent[i].push_back(
                  run_async(*sessions[i], text, /*possible=*/false));
              if (sessions[i]->capabilities().supports_possible) {
                concurrent[i].push_back(
                    run_async(*sessions[i], text, /*possible=*/true));
              }
            }
          });
        }
        for (std::thread& t : threads) t.join();
      }

      // Sequential replay: fresh instance copy, fresh service, the same
      // call sequence one session at a time.
      DifferentialInstance replay = MakeInstance(seed, profile);
      Service service(replay.db.get());
      for (size_t i = 0; i < kSessions; ++i) {
        SCOPED_TRACE(std::string("session ") + std::to_string(i) + " (" +
                     specs[i].engine + ")");
        std::shared_ptr<Session> session = open(service, specs[i]);
        std::vector<Result<Relation>> expected;
        for (int round = 0; round < kRounds; ++round) {
          expected.push_back(run_sync(*session, text, /*possible=*/false));
          if (session->capabilities().supports_possible) {
            expected.push_back(run_sync(*session, text, /*possible=*/true));
          }
        }
        ASSERT_EQ(concurrent[i].size(), expected.size());
        for (size_t j = 0; j < expected.size(); ++j) {
          SCOPED_TRACE(std::string("call ") + std::to_string(j));
          ASSERT_EQ(concurrent[i][j].ok(), expected[j].ok())
              << "concurrent: " << concurrent[i][j].status().ToString()
              << "\nsequential: " << expected[j].status().ToString();
          if (!expected[j].ok()) {
            EXPECT_EQ(concurrent[i][j].status().code(),
                      expected[j].status().code());
            continue;
          }
          EXPECT_EQ(concurrent[i][j].value(), expected[j].value())
              << AnswerDiff(*replay.db, "concurrent",
                            concurrent[i][j].value(), "sequential",
                            expected[j].value());
        }
      }
    }
  }
}

/// The memoization dimension: every engine with the kernel memo enabled
/// (the default) must produce answers bit-identical to the memo-off
/// configuration on every instance the suite generates — the same 268
/// (profile, seed) pairs the other dimensions sweep. An unsound signature
/// (one that identifies non-isomorphic images) would surface here as a
/// wrong reused verdict; see kernel_memo.h for the counterexample that
/// killed the naive block-size signature. The sweep also asserts the memo
/// actually engaged (hits accumulated somewhere), so the comparison can
/// never silently degenerate into memo-off vs memo-off.
TEST(DifferentialTest, MemoizedAgreesOnAllInstances) {
  struct Sweep {
    InstanceProfile profile;
    uint64_t seeds;
  };
  const Sweep sweeps[] = {
      {InstanceProfile::kTiny, 40},   {InstanceProfile::kSmall, 40},
      {InstanceProfile::kBinary, 40}, {InstanceProfile::kSmall, 30},
      {InstanceProfile::kBinary, 30}, {InstanceProfile::kFullySpecified, 40},
      {InstanceProfile::kPositive, 40}, {InstanceProfile::kTiny, 8},
  };
  uint64_t instances = 0;
  uint64_t total_hits = 0;
  for (const Sweep& sweep : sweeps) {
    for (uint64_t seed = 0; seed < sweep.seeds; ++seed) {
      ++instances;
      DifferentialInstance instance = MakeInstance(seed, sweep.profile);
      SCOPED_TRACE(Describe(instance));

      ExactOptions off;
      off.memo = false;
      ExactEvaluator baseline(instance.db.get(), off);
      ASSERT_OK_AND_ASSIGN(Relation baseline_answer,
                           baseline.Answer(instance.query));
      ASSERT_OK_AND_ASSIGN(Relation baseline_possible,
                           baseline.PossibleAnswer(instance.query));
      EXPECT_EQ(baseline.last_memo_counters().row_hits, 0u);

      ExactEvaluator memo_exact(instance.db.get());  // memo on by default
      ASSERT_OK_AND_ASSIGN(Relation exact_answer,
                           memo_exact.Answer(instance.query));
      EXPECT_EQ(exact_answer, baseline_answer)
          << AnswerDiff(*instance.db, "memo", exact_answer, "no-memo",
                        baseline_answer);
      total_hits += memo_exact.last_memo_counters().row_hits;
      ASSERT_OK_AND_ASSIGN(Relation exact_possible,
                           memo_exact.PossibleAnswer(instance.query));
      EXPECT_EQ(exact_possible, baseline_possible)
          << AnswerDiff(*instance.db, "memo", exact_possible, "no-memo",
                        baseline_possible);
      total_hits += memo_exact.last_memo_counters().row_hits;

      // Brute enumerates every mapping (not just canonical representatives),
      // so its sweep is exponentially redundant — the memo's best case and
      // the harshest consistency check, since most verdicts are reused.
      BruteOptions brute_off;
      brute_off.memo = false;
      BruteForceEvaluator brute_baseline(instance.db.get(), brute_off);
      ASSERT_OK_AND_ASSIGN(Relation brute_answer,
                           brute_baseline.Answer(instance.query));
      BruteForceEvaluator brute_memo(instance.db.get());
      ASSERT_OK_AND_ASSIGN(Relation brute_memo_answer,
                           brute_memo.Answer(instance.query));
      EXPECT_EQ(brute_memo_answer, brute_answer)
          << AnswerDiff(*instance.db, "memo", brute_memo_answer, "no-memo",
                        brute_answer);
      total_hits += brute_memo.last_memo_counters().row_hits;

      // The shared-table concurrent path and the compiled-plan path, both
      // memo-on, against the memo-off sequential baseline.
      EngineOptions popts;
      popts.threads = 4;
      ASSERT_OK_AND_ASSIGN(std::unique_ptr<QueryEngine> parallel,
                           EngineRegistry::Global().Create(
                               "parallel-exact", instance.db.get(), popts));
      ASSERT_OK_AND_ASSIGN(Relation parallel_answer,
                           parallel->Answer(instance.query));
      EXPECT_EQ(parallel_answer, baseline_answer)
          << AnswerDiff(*instance.db, "parallel-memo", parallel_answer,
                        "no-memo", baseline_answer);

      ASSERT_OK_AND_ASSIGN(std::unique_ptr<QueryEngine> ra,
                           EngineRegistry::Global().Create(
                               "ra-exact", instance.db.get()));
      ASSERT_OK_AND_ASSIGN(Relation ra_answer, ra->Answer(instance.query));
      EXPECT_EQ(ra_answer, baseline_answer)
          << AnswerDiff(*instance.db, "ra-memo", ra_answer, "no-memo",
                        baseline_answer);
      total_hits += ra->last_memo_counters().row_hits;
    }
  }
  EXPECT_EQ(instances, 268u);
  EXPECT_GT(total_hits, 0u);
}

/// Memo agreement on the adversarial profiles: kSkewed hangs the mapping
/// mass under one kernel-class subtree (many signature-equivalent
/// mappings — maximal reuse), kLarge runs the generated scenario worlds
/// where an unsound interchangeability class would have room to hide.
/// Brute is excluded: its full mapping space is intractable here.
TEST(DifferentialTest, MemoizedAgreesOnAdversarialProfiles) {
  struct Sweep {
    InstanceProfile profile;
    uint64_t seeds;
  };
  const Sweep sweeps[] = {
      {InstanceProfile::kSkewed, 20},
      {InstanceProfile::kLarge, 6},
  };
  for (const Sweep& sweep : sweeps) {
    for (uint64_t seed = 0; seed < sweep.seeds; ++seed) {
      DifferentialInstance instance = MakeInstance(seed, sweep.profile);
      SCOPED_TRACE(Describe(instance));

      ExactOptions off;
      off.memo = false;
      ExactEvaluator baseline(instance.db.get(), off);
      ASSERT_OK_AND_ASSIGN(Relation baseline_answer,
                           baseline.Answer(instance.query));

      ExactEvaluator memo_exact(instance.db.get());
      ASSERT_OK_AND_ASSIGN(Relation exact_answer,
                           memo_exact.Answer(instance.query));
      EXPECT_EQ(exact_answer, baseline_answer)
          << AnswerDiff(*instance.db, "memo", exact_answer, "no-memo",
                        baseline_answer);

      ASSERT_OK_AND_ASSIGN(std::unique_ptr<QueryEngine> ra,
                           EngineRegistry::Global().Create(
                               "ra-exact", instance.db.get()));
      ASSERT_OK_AND_ASSIGN(Relation ra_answer, ra->Answer(instance.query));
      EXPECT_EQ(ra_answer, baseline_answer)
          << AnswerDiff(*instance.db, "ra-memo", ra_answer, "no-memo",
                        baseline_answer);

      if (sweep.profile == InstanceProfile::kSkewed) {
        EngineOptions popts;
        popts.threads = 8;
        ASSERT_OK_AND_ASSIGN(std::unique_ptr<QueryEngine> parallel,
                             EngineRegistry::Global().Create(
                                 "parallel-exact", instance.db.get(), popts));
        ASSERT_OK_AND_ASSIGN(Relation parallel_answer,
                             parallel->Answer(instance.query));
        EXPECT_EQ(parallel_answer, baseline_answer)
            << AnswerDiff(*instance.db, "parallel-memo", parallel_answer,
                          "no-memo", baseline_answer);
      }
    }
  }
}

/// First-principles cross-check on tiny instances: membership according to
/// `ExactEvaluator` must match `ModelEnumerationContains`, which decides
/// `T ⊨_f φ(c)` straight from the §2.1 definition by enumerating every
/// finite interpretation — completely independent of the Theorem 1
/// machinery shared by brute and exact.
TEST(DifferentialTest, ModelEnumerationSpotCheck) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    DifferentialInstance instance = MakeInstance(seed, InstanceProfile::kTiny);
    SCOPED_TRACE(Describe(instance));
    ExactEvaluator exact(instance.db.get());
    const ConstId n = static_cast<ConstId>(instance.db->num_constants());
    for (ConstId c = 0; c < n; ++c) {
      Tuple candidate = {c};
      ASSERT_OK_AND_ASSIGN(bool exact_in,
                           exact.Contains(instance.query, candidate));
      ASSERT_OK_AND_ASSIGN(
          bool model_in,
          ModelEnumerationContains(instance.db.get(), instance.query,
                                   candidate));
      EXPECT_EQ(exact_in, model_in)
          << "candidate " << instance.db->vocab().ConstantName(c)
          << ": exact says " << exact_in << ", model enumeration says "
          << model_in;
    }
  }
}

}  // namespace
}  // namespace lqdb
