#ifndef LQDB_TESTS_DIFFERENTIAL_GENERATOR_H_
#define LQDB_TESTS_DIFFERENTIAL_GENERATOR_H_

#include <memory>
#include <string>

#include "lqdb/cwdb/cw_database.h"
#include "lqdb/logic/query.h"

namespace lqdb {
namespace testing {

/// Shape of a random differential-testing instance. Profiles trade instance
/// size against the exponential cost of the brute-force oracle, and carve
/// out the structured corners the paper's theorems single out (fully
/// specified databases, positive queries).
enum class InstanceProfile {
  /// 3 constants, one unary predicate, shallow query — small enough for the
  /// model-enumeration oracle.
  kTiny,
  /// 5 constants (2 unknown), unary+binary predicates, depth-3 query with
  /// one head variable.
  kSmall,
  /// 5 constants (2 unknown), two binary predicates, depth-3 query with a
  /// binary head — stresses joins and arity-2 answers.
  kBinary,
  /// No unknown constants: every engine must agree exactly (Theorem 12).
  kFullySpecified,
  /// Negation-free query over a database with unknowns: the approximation
  /// must be complete, not merely sound (Theorem 13).
  kPositive,
  /// A skewed canonical-mapping space: the known constants come first, so
  /// their forced pairwise-distinct blocks pin a single RGS prefix chain
  /// and the entire Bell mass of the trailing unknowns hangs under one
  /// giant kernel-class subtree — the adversarial shape for static range
  /// partitioning, exercising the parallel engine's work stealing.
  kSkewed,
  /// A generated large-world scenario (`lqdb/gen/scenario.h`): an order of
  /// magnitude more constants and facts than the toy profiles, with few
  /// unknowns so the canonical-mapping count stays CI-safe, and a fixed
  /// join-heavy query pool instead of random formulas — the regime where
  /// the compiled RA engine's join ordering and semijoin reduction carry
  /// the per-image work.
  kLarge,
};

const char* ProfileName(InstanceProfile profile);

/// One generated instance: a CW logical database plus a query over its
/// vocabulary. Deterministic in (seed, profile).
struct DifferentialInstance {
  DifferentialInstance(uint64_t seed, InstanceProfile profile,
                       std::unique_ptr<CwDatabase> db, Query query)
      : seed(seed),
        profile(profile),
        db(std::move(db)),
        query(std::move(query)) {}

  uint64_t seed;
  InstanceProfile profile;
  std::unique_ptr<CwDatabase> db;
  Query query;
};

/// Builds the instance for `(seed, profile)`. Always returns a usable
/// instance; generation itself cannot fail.
DifferentialInstance MakeInstance(uint64_t seed, InstanceProfile profile);

/// A self-contained reproduction report: the seed and profile (enough to
/// regenerate the instance), plus the serialized database and the printed
/// query so a failure can be replayed in the shell without recompiling.
std::string Describe(const DifferentialInstance& instance);

}  // namespace testing
}  // namespace lqdb

#endif  // LQDB_TESTS_DIFFERENTIAL_GENERATOR_H_
