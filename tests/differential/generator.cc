#include "tests/differential/generator.h"

#include <sstream>
#include <string>

#include "lqdb/gen/scenario.h"
#include "lqdb/io/text_format.h"
#include "lqdb/logic/classify.h"
#include "lqdb/logic/parser.h"
#include "lqdb/logic/query.h"
#include "tests/testing.h"

namespace lqdb {
namespace testing {
namespace {

RandomDbParams DbParamsFor(InstanceProfile profile) {
  RandomDbParams p;
  switch (profile) {
    case InstanceProfile::kTiny:
      p.num_known = 2;
      p.num_unknown = 1;
      p.num_unary_preds = 1;
      p.num_binary_preds = 0;
      p.num_facts = 3;
      break;
    case InstanceProfile::kSmall:
      p.num_known = 3;
      p.num_unknown = 2;
      p.num_unary_preds = 1;
      p.num_binary_preds = 1;
      p.num_facts = 6;
      break;
    case InstanceProfile::kBinary:
      p.num_known = 3;
      p.num_unknown = 2;
      p.num_unary_preds = 0;
      p.num_binary_preds = 2;
      p.num_facts = 8;
      break;
    case InstanceProfile::kFullySpecified:
      p.num_known = 4;
      p.num_unknown = 0;
      p.num_unary_preds = 1;
      p.num_binary_preds = 1;
      p.num_facts = 7;
      break;
    case InstanceProfile::kPositive:
      p.num_known = 3;
      p.num_unknown = 2;
      p.num_unary_preds = 1;
      p.num_binary_preds = 1;
      p.num_facts = 6;
      break;
    case InstanceProfile::kSkewed:
      // Knowns first (RandomCwDatabase interns them before the unknowns)
      // pin the RGS prefix; five trailing unknowns hang hundreds of
      // partitions under that single chain.
      p.num_known = 3;
      p.num_unknown = 5;
      p.num_unary_preds = 1;
      p.num_binary_preds = 1;
      p.num_facts = 6;
      p.explicit_distinct_p = 0.1;
      break;
    case InstanceProfile::kLarge:
      break;  // handled by ScenarioParamsForLarge, not RandomDbParams
  }
  return p;
}

/// kLarge sizing: ~18 constants and ~200 facts (an order of magnitude over
/// the toy profiles) with only 2 unknowns, so the canonical-mapping count
/// stays in the hundreds and the suite remains CI-safe under ASan/TSan
/// while the per-image relational work dominates.
ScenarioParams ScenarioParamsForLarge() {
  ScenarioParams p;
  p.num_known = 16;
  p.num_unknown = 2;
  p.num_unary = 2;
  p.num_binary = 2;
  p.facts_per_relation = 48;
  p.unknown_ref_rate = 0.15;
  p.distinct_pair_rate = 0.1;
  return p;
}

RandomFormulaParams FormulaParamsFor(InstanceProfile profile) {
  RandomFormulaParams p;
  switch (profile) {
    case InstanceProfile::kTiny:
      p.max_depth = 2;
      p.free_vars = {"hx"};
      break;
    case InstanceProfile::kSmall:
    case InstanceProfile::kFullySpecified:
      p.max_depth = 3;
      p.free_vars = {"hx"};
      break;
    case InstanceProfile::kBinary:
      p.max_depth = 3;
      p.free_vars = {"hx", "hy"};
      break;
    case InstanceProfile::kPositive:
      p.max_depth = 3;
      p.free_vars = {"hx"};
      p.allow_negation = false;
      break;
    case InstanceProfile::kSkewed:
      p.max_depth = 3;
      p.free_vars = {"hx"};
      break;
    case InstanceProfile::kLarge:
      break;  // kLarge draws from the fixed scenario query pool
  }
  return p;
}

}  // namespace

const char* ProfileName(InstanceProfile profile) {
  switch (profile) {
    case InstanceProfile::kTiny:
      return "tiny";
    case InstanceProfile::kSmall:
      return "small";
    case InstanceProfile::kBinary:
      return "binary";
    case InstanceProfile::kFullySpecified:
      return "fully_specified";
    case InstanceProfile::kPositive:
      return "positive";
    case InstanceProfile::kSkewed:
      return "skewed";
    case InstanceProfile::kLarge:
      return "large";
  }
  return "unknown";
}

DifferentialInstance MakeInstance(uint64_t seed, InstanceProfile profile) {
  if (profile == InstanceProfile::kLarge) {
    const ScenarioParams params = ScenarioParamsForLarge();
    std::unique_ptr<CwDatabase> db = MakeScenario(seed, params);
    const std::vector<std::string> pool = ScenarioQueryPool(params);
    // Cycle the fixed pool so every query shape is hit within a handful of
    // seeds while the database still varies per seed.
    Query query =
        ParseQuery(db->mutable_vocab(), pool[seed % pool.size()]).value();
    return DifferentialInstance(seed, profile, std::move(db),
                                std::move(query));
  }
  std::unique_ptr<CwDatabase> db = RandomCwDatabase(seed, DbParamsFor(profile));
  // Decorrelate the query stream from the database stream so instances with
  // equal seeds but different profiles do not share query structure.
  const uint64_t query_seed =
      seed * 2654435761ull + 101ull * static_cast<uint64_t>(profile);
  Query query =
      RandomQuery(query_seed, db->mutable_vocab(), FormulaParamsFor(profile));
  return DifferentialInstance(seed, profile, std::move(db), std::move(query));
}

std::string Describe(const DifferentialInstance& instance) {
  std::ostringstream out;
  out << "reproducing seed: " << instance.seed << " (profile "
      << ProfileName(instance.profile) << ")\n"
      << "database:\n"
      << SerializeCwDatabase(*instance.db) << "query: "
      << PrintQuery(instance.db->vocab(), instance.query)
      << (IsPositive(instance.query) ? "  [positive]" : "") << "\n";
  return out.str();
}

}  // namespace testing
}  // namespace lqdb
