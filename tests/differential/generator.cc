#include "tests/differential/generator.h"

#include <sstream>
#include <string>

#include "lqdb/io/text_format.h"
#include "lqdb/logic/classify.h"
#include "lqdb/logic/query.h"
#include "tests/testing.h"

namespace lqdb {
namespace testing {
namespace {

RandomDbParams DbParamsFor(InstanceProfile profile) {
  RandomDbParams p;
  switch (profile) {
    case InstanceProfile::kTiny:
      p.num_known = 2;
      p.num_unknown = 1;
      p.num_unary_preds = 1;
      p.num_binary_preds = 0;
      p.num_facts = 3;
      break;
    case InstanceProfile::kSmall:
      p.num_known = 3;
      p.num_unknown = 2;
      p.num_unary_preds = 1;
      p.num_binary_preds = 1;
      p.num_facts = 6;
      break;
    case InstanceProfile::kBinary:
      p.num_known = 3;
      p.num_unknown = 2;
      p.num_unary_preds = 0;
      p.num_binary_preds = 2;
      p.num_facts = 8;
      break;
    case InstanceProfile::kFullySpecified:
      p.num_known = 4;
      p.num_unknown = 0;
      p.num_unary_preds = 1;
      p.num_binary_preds = 1;
      p.num_facts = 7;
      break;
    case InstanceProfile::kPositive:
      p.num_known = 3;
      p.num_unknown = 2;
      p.num_unary_preds = 1;
      p.num_binary_preds = 1;
      p.num_facts = 6;
      break;
    case InstanceProfile::kSkewed:
      // Knowns first (RandomCwDatabase interns them before the unknowns)
      // pin the RGS prefix; five trailing unknowns hang hundreds of
      // partitions under that single chain.
      p.num_known = 3;
      p.num_unknown = 5;
      p.num_unary_preds = 1;
      p.num_binary_preds = 1;
      p.num_facts = 6;
      p.explicit_distinct_p = 0.1;
      break;
  }
  return p;
}

RandomFormulaParams FormulaParamsFor(InstanceProfile profile) {
  RandomFormulaParams p;
  switch (profile) {
    case InstanceProfile::kTiny:
      p.max_depth = 2;
      p.free_vars = {"hx"};
      break;
    case InstanceProfile::kSmall:
    case InstanceProfile::kFullySpecified:
      p.max_depth = 3;
      p.free_vars = {"hx"};
      break;
    case InstanceProfile::kBinary:
      p.max_depth = 3;
      p.free_vars = {"hx", "hy"};
      break;
    case InstanceProfile::kPositive:
      p.max_depth = 3;
      p.free_vars = {"hx"};
      p.allow_negation = false;
      break;
    case InstanceProfile::kSkewed:
      p.max_depth = 3;
      p.free_vars = {"hx"};
      break;
  }
  return p;
}

}  // namespace

const char* ProfileName(InstanceProfile profile) {
  switch (profile) {
    case InstanceProfile::kTiny:
      return "tiny";
    case InstanceProfile::kSmall:
      return "small";
    case InstanceProfile::kBinary:
      return "binary";
    case InstanceProfile::kFullySpecified:
      return "fully_specified";
    case InstanceProfile::kPositive:
      return "positive";
    case InstanceProfile::kSkewed:
      return "skewed";
  }
  return "unknown";
}

DifferentialInstance MakeInstance(uint64_t seed, InstanceProfile profile) {
  std::unique_ptr<CwDatabase> db = RandomCwDatabase(seed, DbParamsFor(profile));
  // Decorrelate the query stream from the database stream so instances with
  // equal seeds but different profiles do not share query structure.
  const uint64_t query_seed =
      seed * 2654435761ull + 101ull * static_cast<uint64_t>(profile);
  Query query =
      RandomQuery(query_seed, db->mutable_vocab(), FormulaParamsFor(profile));
  return DifferentialInstance(seed, profile, std::move(db), std::move(query));
}

std::string Describe(const DifferentialInstance& instance) {
  std::ostringstream out;
  out << "reproducing seed: " << instance.seed << " (profile "
      << ProfileName(instance.profile) << ")\n"
      << "database:\n"
      << SerializeCwDatabase(*instance.db) << "query: "
      << PrintQuery(instance.db->vocab(), instance.query)
      << (IsPositive(instance.query) ? "  [positive]" : "") << "\n";
  return out.str();
}

}  // namespace testing
}  // namespace lqdb
