// Verifies the umbrella header is self-contained and exposes the full
// public API under a single include.
#include "lqdb/lqdb.h"

#include <gtest/gtest.h>

namespace lqdb {
namespace {

TEST(UmbrellaHeaderTest, EndToEndThroughSingleInclude) {
  CwDatabase lb;
  ConstId jack = lb.AddUnknownConstant("Jack");
  ASSERT_TRUE(lb.AddFact("MURDERER", {"Jack"}).ok());
  lb.AddKnownConstant("Victoria");
  ASSERT_TRUE(lb.AddDistinct("Jack", "Victoria").ok());
  (void)jack;

  auto q = ParseQuery(lb.mutable_vocab(), "(x) . !MURDERER(x)");
  ASSERT_TRUE(q.ok());

  ExactEvaluator exact(&lb);
  auto certain = exact.Answer(q.value());
  ASSERT_TRUE(certain.ok());

  auto approx = ApproxEvaluator::Make(&lb);
  ASSERT_TRUE(approx.ok());
  auto sound = approx.value()->Answer(q.value());
  ASSERT_TRUE(sound.ok());

  EXPECT_TRUE(sound.value().IsSubsetOf(certain.value()));
  EXPECT_EQ(certain.value().size(), 1u);
}

}  // namespace
}  // namespace lqdb
