/// The query service layer: sessions, the shared prepared-statement cache,
/// async execution with cancellation, and the per-session in-flight limit.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "lqdb/service/service.h"
#include "tests/testing.h"

namespace lqdb {
namespace {

using ::lqdb::testing::RandomCwDatabase;
using ::lqdb::testing::RandomDbParams;

std::unique_ptr<CwDatabase> MurderDb() {
  auto lb = std::make_unique<CwDatabase>();
  lb->AddUnknownConstant("Jack");
  lb->AddKnownConstant("Victoria");
  lb->AddKnownConstant("Disraeli");
  Status s = lb->AddFact("MURDERER", {"Jack"});
  s = lb->AddDistinct("Jack", "Victoria");
  (void)s;
  return lb;
}

/// A database whose canonical-mapping space is large enough that one
/// execution takes milliseconds — used to keep a 1-thread service busy
/// while cancellation/backpressure is probed.
std::unique_ptr<CwDatabase> SlowDb() {
  RandomDbParams p;
  p.num_known = 4;
  p.num_unknown = 5;  // ~13k canonical mappings: ms-scale, not seconds
  p.num_facts = 10;
  p.explicit_distinct_p = 0.0;  // no axioms → maximal mapping space
  return RandomCwDatabase(17, p);
}

TEST(PreparedCacheTest, SecondPrepareHitsAndAnswersAreIdentical) {
  auto lb = MurderDb();
  Service service(lb.get());
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<Session> session,
                       service.OpenSession());

  const std::string text = "(x) . !MURDERER(x)";
  ASSERT_OK_AND_ASSIGN(PreparedInfo first, session->Prepare(text));
  EXPECT_NE(first.handle, PreparedHandle{0});
  EXPECT_FALSE(first.cache_hit);

  ASSERT_OK_AND_ASSIGN(PreparedInfo second, session->Prepare(text));
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.handle, first.handle);

  // A different session with the same engine shares the statement too.
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<Session> other,
                       service.OpenSession());
  ASSERT_OK_AND_ASSIGN(PreparedInfo third, other->Prepare(text));
  EXPECT_TRUE(third.cache_hit);
  EXPECT_EQ(third.handle, first.handle);

  ASSERT_OK_AND_ASSIGN(Relation a, session->Execute(first.handle));
  ASSERT_OK_AND_ASSIGN(Relation b, other->Execute(third.handle));
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.size(), 1u);  // {Victoria}: Jack may be Disraeli, not her

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.prepares, 3u);
  EXPECT_EQ(stats.cache_hits, 2u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cached_queries, 1u);
  EXPECT_EQ(stats.executions, 2u);
}

TEST(PreparedCacheTest, HandlesAreScopedByEngine) {
  auto lb = MurderDb();
  Service service(lb.get());
  SessionOptions ra;
  ra.engine = "ra-exact";
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<Session> exact,
                       service.OpenSession());
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<Session> raexact,
                       service.OpenSession(ra));

  const std::string text = "(x) . !MURDERER(x)";
  ASSERT_OK_AND_ASSIGN(PreparedInfo a, exact->Prepare(text));
  ASSERT_OK_AND_ASSIGN(PreparedInfo b, raexact->Prepare(text));
  EXPECT_FALSE(b.cache_hit);  // separate cache entry per engine
  EXPECT_NE(a.handle, b.handle);

  ASSERT_OK_AND_ASSIGN(Relation ra_answer, raexact->Execute(b.handle));
  ASSERT_OK_AND_ASSIGN(Relation exact_answer, exact->Execute(a.handle));
  EXPECT_TRUE(ra_answer == exact_answer);
}

TEST(ServiceTest, UnknownEngineFailsAtOpenAndBadHandleAtExecute) {
  auto lb = MurderDb();
  Service service(lb.get());
  SessionOptions bad;
  bad.engine = "frobnicator";
  auto session = service.OpenSession(bad);
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), StatusCode::kNotFound);

  ASSERT_OK_AND_ASSIGN(std::shared_ptr<Session> ok, service.OpenSession());
  auto missing = ok->Execute(PreparedHandle{987654321});
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(ok->Execute(PreparedHandle{0}).ok());
}

TEST(ServiceTest, ParseErrorsSurfaceFromPrepare) {
  auto lb = MurderDb();
  Service service(lb.get());
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<Session> session,
                       service.OpenSession());
  auto bad = session->Prepare("(x . oops");
  ASSERT_FALSE(bad.ok());
  // A failed prepare caches nothing.
  EXPECT_EQ(service.stats().cached_queries, 0u);
}

TEST(ServiceTest, ExecutionTraceRecordsTheLastQuery) {
  auto lb = MurderDb();
  Service service(lb.get());
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<Session> session,
                       service.OpenSession());
  ASSERT_OK_AND_ASSIGN(Relation ignored,
                       session->Query("(x) . !MURDERER(x)"));
  (void)ignored;
  const ExecutionTrace& trace = session->last_trace();
  EXPECT_STREQ(trace.query, "(x) . !MURDERER(x)");
  EXPECT_STREQ(trace.engine, "exact");
  EXPECT_TRUE(trace.ok);
  EXPECT_FALSE(trace.possible);
  EXPECT_GT(trace.mappings_examined, 0u);
  EXPECT_EQ(session->executions(), 1u);
}

TEST(ServiceTest, PossibleAnswerThroughSessions) {
  auto lb = MurderDb();
  Service service(lb.get());
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<Session> session,
                       service.OpenSession());
  ASSERT_OK_AND_ASSIGN(PreparedInfo info,
                       session->Prepare("(x) . MURDERER(x)"));
  ASSERT_OK_AND_ASSIGN(Relation certain, session->Execute(info.handle));
  ASSERT_OK_AND_ASSIGN(Relation possible,
                       session->ExecutePossible(info.handle));
  EXPECT_EQ(certain.size(), 1u);   // {Jack}: h(Jack) is always the murderer
  EXPECT_EQ(possible.size(), 2u);  // {Jack, Disraeli}; never Victoria
  for (const Tuple& t : certain.tuples()) {
    EXPECT_TRUE(possible.Contains(t));  // certain ⊆ possible
  }
}

TEST(ServiceTest, AsyncExecutionMatchesSynchronous) {
  auto lb = MurderDb();
  Service service(lb.get());
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<Session> session,
                       service.OpenSession());
  ASSERT_OK_AND_ASSIGN(PreparedInfo info,
                       session->Prepare("(x) . !MURDERER(x)"));
  ASSERT_OK_AND_ASSIGN(Relation sync, session->Execute(info.handle));

  ASSERT_OK_AND_ASSIGN(AsyncExecution async,
                       session->ExecuteAsync(info.handle));
  Result<Relation> from_future = async.result.get();
  ASSERT_TRUE(from_future.ok()) << from_future.status();
  EXPECT_TRUE(*from_future == sync);
  EXPECT_EQ(session->in_flight(), 0);
}

TEST(ServiceTest, CancelBeforeStartResolvesToCancelled) {
  auto lb = SlowDb();
  ServiceOptions options;
  options.threads = 1;  // strict FIFO: the second task cannot jump the first
  Service service(lb.get(), options);
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<Session> session,
                       service.OpenSession());
  ASSERT_OK_AND_ASSIGN(PreparedInfo info,
                       session->Prepare("(hx) . P0(hx)"));

  ASSERT_OK_AND_ASSIGN(AsyncExecution busy,
                       session->ExecuteAsync(info.handle));
  ASSERT_OK_AND_ASSIGN(AsyncExecution doomed,
                       session->ExecuteAsync(info.handle));
  doomed.Cancel();  // lands while the worker is still busy with the first

  Result<Relation> first = busy.result.get();
  EXPECT_TRUE(first.ok()) << first.status();
  Result<Relation> second = doomed.result.get();
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(session->cancelled(), 1u);
  EXPECT_EQ(service.stats().cancelled, 1u);
}

TEST(ServiceTest, InFlightLimitPushesBack) {
  auto lb = SlowDb();
  ServiceOptions options;
  options.threads = 1;
  Service service(lb.get(), options);
  SessionOptions limited;
  limited.max_in_flight = 2;
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<Session> session,
                       service.OpenSession(limited));
  ASSERT_OK_AND_ASSIGN(PreparedInfo info,
                       session->Prepare("(hx) . P0(hx)"));

  ASSERT_OK_AND_ASSIGN(AsyncExecution a, session->ExecuteAsync(info.handle));
  ASSERT_OK_AND_ASSIGN(AsyncExecution b, session->ExecuteAsync(info.handle));
  auto rejected = session->ExecuteAsync(info.handle);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);

  EXPECT_TRUE(a.result.get().ok());
  EXPECT_TRUE(b.result.get().ok());
  // Slots freed: the session accepts work again.
  ASSERT_OK_AND_ASSIGN(AsyncExecution c, session->ExecuteAsync(info.handle));
  EXPECT_TRUE(c.result.get().ok());
}

TEST(ServiceTest, MutatingApproxEngineRunsExclusively) {
  auto lb = MurderDb();
  Service service(lb.get());
  SessionOptions approx;
  approx.engine = "approx";
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<Session> session,
                       service.OpenSession(approx));
  EXPECT_TRUE(session->capabilities().mutates_database);
  // Two executions: the engine is rebuilt each time (fresh Ph₂ snapshot),
  // and answers stay deterministic.
  ASSERT_OK_AND_ASSIGN(Relation first, session->Query("(x) . !MURDERER(x)"));
  ASSERT_OK_AND_ASSIGN(Relation again, session->Query("(x) . !MURDERER(x)"));
  EXPECT_TRUE(first == again);

  // Soundness: the approximation's answer is contained in the exact one.
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<Session> exact,
                       service.OpenSession());
  ASSERT_OK_AND_ASSIGN(Relation truth, exact->Query("(x) . !MURDERER(x)"));
  for (const Tuple& t : first.tuples()) {
    EXPECT_TRUE(truth.Contains(t));
  }
}

/// Eight sessions on distinct threads hammering two shared prepared
/// statements; every concurrent answer must equal the sequential one. This
/// is the in-library face of the multi-session differential test (see
/// tests/differential/) and the reason service_test runs under TSan in CI.
TEST(ServiceTest, ConcurrentSessionsMatchSequentialAnswers) {
  auto lb = MurderDb();
  Service service(lb.get());
  const std::vector<std::string> engines = {
      "exact",          "ra-exact", "parallel-exact", "approx",
      "exact",          "ra-exact", "physical",       "brute"};
  const std::vector<std::string> texts = {"(x) . !MURDERER(x)",
                                          "(x) . MURDERER(x)"};

  // Sequential pass: one session per engine, expected answer per (engine,
  // query). Also pre-interns every statement so the concurrent phase is
  // pure cache hits.
  std::vector<std::vector<Relation>> expected;
  std::vector<std::vector<PreparedHandle>> handles;
  for (const std::string& engine : engines) {
    SessionOptions opts;
    opts.engine = engine;
    if (engine == "parallel-exact") opts.engine_options.threads = 2;
    ASSERT_OK_AND_ASSIGN(std::shared_ptr<Session> session,
                         service.OpenSession(opts));
    std::vector<Relation> answers;
    std::vector<PreparedHandle> hs;
    for (const std::string& text : texts) {
      ASSERT_OK_AND_ASSIGN(PreparedInfo info, session->Prepare(text));
      hs.push_back(info.handle);
      ASSERT_OK_AND_ASSIGN(Relation r, session->Execute(info.handle));
      answers.push_back(std::move(r));
    }
    expected.push_back(std::move(answers));
    handles.push_back(std::move(hs));
  }

  constexpr int kRounds = 10;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (size_t i = 0; i < engines.size(); ++i) {
    threads.emplace_back([&, i] {
      SessionOptions opts;
      opts.engine = engines[i];
      if (engines[i] == "parallel-exact") opts.engine_options.threads = 2;
      Result<std::shared_ptr<Session>> session = service.OpenSession(opts);
      if (!session.ok()) {
        mismatches.fetch_add(1);
        return;
      }
      for (int round = 0; round < kRounds; ++round) {
        for (size_t q = 0; q < texts.size(); ++q) {
          Result<Relation> r = (*session)->Execute(handles[i][q]);
          if (!r.ok() || !(*r == expected[i][q])) mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cached_queries,
            texts.size() * 6u);  // 6 distinct engines prepared
  EXPECT_GE(stats.executions,
            engines.size() * texts.size() * (kRounds + 1u));
}

/// Two relations so invalidation exactness is observable: a query reading
/// only P must survive updates to Q and vice versa.
std::unique_ptr<CwDatabase> TwoRelationDb() {
  auto lb = std::make_unique<CwDatabase>();
  lb->AddKnownConstant("a");
  lb->AddKnownConstant("b");
  Status s = lb->AddFact("P", {"a"});
  s = lb->AddFact("Q", {"b"});
  (void)s;
  return lb;
}

TEST(ResultCacheTest, RepeatedQueryIsServedFromTheCache) {
  auto lb = TwoRelationDb();
  Service service(lb.get());
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<Session> session,
                       service.OpenSession());

  ASSERT_OK_AND_ASSIGN(Relation first, session->Query("(x) . P(x)"));
  EXPECT_FALSE(session->last_trace().cached);
  ASSERT_OK_AND_ASSIGN(Relation second, session->Query("(x) . P(x)"));
  EXPECT_TRUE(session->last_trace().cached);
  EXPECT_EQ(first, second);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.result_hits, 1u);
  EXPECT_EQ(stats.cached_results, 1u);
  EXPECT_EQ(stats.db_version, 0u);
}

// The stale-read regression: an update must invalidate exactly the cached
// results that read the updated relation — the P-reader recomputes (and
// sees the new fact), the Q-reader keeps hitting.
TEST(ResultCacheTest, AssertInvalidatesExactlyTheDependentResults) {
  auto lb = TwoRelationDb();
  Service service(lb.get());
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<Session> session,
                       service.OpenSession());

  ASSERT_OK_AND_ASSIGN(Relation p_before, session->Query("(x) . P(x)"));
  EXPECT_EQ(p_before.size(), 1u);
  ASSERT_OK_AND_ASSIGN(Relation q_before, session->Query("(x) . Q(x)"));

  ASSERT_OK(service.Assert("P", {"b"}));
  EXPECT_EQ(service.db_version(), 1u);

  // The Q-reader's entry is untouched: still a hit.
  ASSERT_OK_AND_ASSIGN(Relation q_after, session->Query("(x) . Q(x)"));
  EXPECT_TRUE(session->last_trace().cached);
  EXPECT_EQ(q_after, q_before);

  // The P-reader recomputes and must see the asserted fact — a served
  // stale answer would be missing (b).
  ASSERT_OK_AND_ASSIGN(Relation p_after, session->Query("(x) . P(x)"));
  EXPECT_FALSE(session->last_trace().cached);
  EXPECT_EQ(p_after.size(), 2u);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.asserts, 1u);
  EXPECT_EQ(stats.result_invalidations, 1u);
}

TEST(ResultCacheTest, RetractInvalidatesAndRestoresTheOriginalAnswer) {
  auto lb = TwoRelationDb();
  Service service(lb.get());
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<Session> session,
                       service.OpenSession());

  ASSERT_OK_AND_ASSIGN(Relation original, session->Query("(x) . P(x)"));
  ASSERT_OK(service.Assert("P", {"b"}));
  ASSERT_OK_AND_ASSIGN(Relation grown, session->Query("(x) . P(x)"));
  EXPECT_EQ(grown.size(), original.size() + 1);

  ASSERT_OK(service.Retract("P", {"b"}));
  ASSERT_OK_AND_ASSIGN(Relation restored, session->Query("(x) . P(x)"));
  EXPECT_FALSE(session->last_trace().cached);  // version moved again
  EXPECT_EQ(restored, original);

  // Retracting a fact that is not stored (or unknown names) is NotFound.
  EXPECT_EQ(service.Retract("P", {"b"}).code(), StatusCode::kNotFound);
  EXPECT_EQ(service.Retract("Nope", {"a"}).code(), StatusCode::kNotFound);
  EXPECT_EQ(service.Retract("P", {"ghost"}).code(), StatusCode::kNotFound);
}

// Asserting a fact over a brand-new constant grows C, and every Theorem 1
// answer quantifies over all of C — so even queries that read *other*
// relations must drop out of the cache (the global epoch).
TEST(ResultCacheTest, NewConstantInvalidatesEveryCachedResult) {
  auto lb = TwoRelationDb();
  Service service(lb.get());
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<Session> session,
                       service.OpenSession());

  ASSERT_OK_AND_ASSIGN(Relation q_before, session->Query("(x) . Q(x)"));
  ASSERT_OK(service.Assert("P", {"fresh"}));  // interns constant "fresh"

  ASSERT_OK_AND_ASSIGN(Relation q_after, session->Query("(x) . Q(x)"));
  EXPECT_FALSE(session->last_trace().cached);
  EXPECT_EQ(q_after, q_before);  // recomputed, same answer — but recomputed
}

TEST(ResultCacheTest, DisabledSessionNeverTouchesTheCache) {
  auto lb = TwoRelationDb();
  Service service(lb.get());
  SessionOptions options;
  options.use_result_cache = false;
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<Session> session,
                       service.OpenSession(options));

  ASSERT_OK_AND_ASSIGN(Relation first, session->Query("(x) . P(x)"));
  ASSERT_OK_AND_ASSIGN(Relation second, session->Query("(x) . P(x)"));
  EXPECT_EQ(first, second);
  EXPECT_FALSE(session->last_trace().cached);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.result_hits, 0u);
  EXPECT_EQ(stats.cached_results, 0u);
}

// The options-fingerprint regression: a session with a tiny enumeration
// budget must get its own ResourceExhausted, never another session's
// cached (or prepared) answer computed under a larger budget — and the
// other direction must not let the exhausted run poison the cache either.
TEST(ResultCacheTest, BudgetOptionsAreCacheKeyed) {
  auto lb = SlowDb();
  Service service(lb.get());

  ASSERT_OK_AND_ASSIGN(std::shared_ptr<Session> big, service.OpenSession());
  SessionOptions tiny_options;
  tiny_options.engine_options.exact.max_mappings = 3;
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<Session> tiny,
                       service.OpenSession(tiny_options));

  const std::string text = "(x) . P0(x)";
  ASSERT_OK_AND_ASSIGN(Relation answer, big->Query(text));
  (void)answer;

  auto exhausted = tiny->Query(text);
  EXPECT_FALSE(exhausted.ok());
  EXPECT_EQ(exhausted.status().code(), StatusCode::kResourceExhausted);

  // And the big session still hits its own entry.
  ASSERT_OK_AND_ASSIGN(Relation again, big->Query(text));
  EXPECT_TRUE(big->last_trace().cached);
  EXPECT_EQ(again, answer);
}

// Kernel-memo counters flow from the engines through the trace into the
// service-wide stats.
TEST(ServiceTest, MemoCountersSurfaceInStats) {
  auto lb = SlowDb();
  Service service(lb.get());
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<Session> session,
                       service.OpenSession());
  ASSERT_OK_AND_ASSIGN(Relation answer, session->Query("(x) . P0(x)"));
  (void)answer;
  const KernelMemoCounters& memo = session->last_trace().memo;
  EXPECT_GT(memo.row_hits + memo.row_misses, 0u);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.memo_row_hits, memo.row_hits);
  EXPECT_EQ(stats.memo_row_misses, memo.row_misses);
}

}  // namespace
}  // namespace lqdb
