#include <gtest/gtest.h>

#include "lqdb/eval/answer.h"
#include "lqdb/eval/bound_query.h"
#include "lqdb/eval/evaluator.h"
#include "lqdb/logic/builder.h"
#include "lqdb/logic/nnf.h"
#include "lqdb/logic/parser.h"
#include "lqdb/util/rng.h"
#include "testing.h"

namespace lqdb {
namespace {

using testing::RandomFormula;
using testing::RandomFormulaParams;

/// A two-person teaching world: TEACHES(Socrates, Plato).
class EvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    socrates_ = vocab_.AddConstant("Socrates");
    plato_ = vocab_.AddConstant("Plato");
    teaches_ = vocab_.AddPredicate("TEACHES", 2).value();
    db_ = std::make_unique<PhysicalDatabase>(&vocab_);
    db_->InterpretConstantsAsThemselves();
    ASSERT_OK(db_->AddTuple(teaches_, {socrates_, plato_}));
  }

  bool Sat(const std::string& text) {
    auto f = ParseFormula(&vocab_, text);
    EXPECT_TRUE(f.ok()) << f.status();
    Evaluator eval(db_.get());
    auto r = eval.Satisfies(f.value());
    EXPECT_TRUE(r.ok()) << r.status();
    return r.value_or(false);
  }

  Vocabulary vocab_;
  ConstId socrates_, plato_;
  PredId teaches_;
  std::unique_ptr<PhysicalDatabase> db_;
};

TEST_F(EvalTest, AtomsAndEquality) {
  EXPECT_TRUE(Sat("TEACHES(Socrates, Plato)"));
  EXPECT_FALSE(Sat("TEACHES(Plato, Socrates)"));
  EXPECT_TRUE(Sat("Socrates = Socrates"));
  EXPECT_FALSE(Sat("Socrates = Plato"));
  EXPECT_TRUE(Sat("Socrates != Plato"));
}

TEST_F(EvalTest, Connectives) {
  EXPECT_TRUE(Sat("TEACHES(Socrates, Plato) & Socrates != Plato"));
  EXPECT_FALSE(Sat("TEACHES(Socrates, Plato) & TEACHES(Plato, Plato)"));
  EXPECT_TRUE(Sat("TEACHES(Plato, Plato) | true"));
  EXPECT_TRUE(Sat("TEACHES(Plato, Plato) -> false"));
  EXPECT_TRUE(Sat("TEACHES(Socrates, Plato) <-> Socrates != Plato"));
  EXPECT_FALSE(Sat("!TEACHES(Socrates, Plato)"));
}

TEST_F(EvalTest, FirstOrderQuantifiers) {
  EXPECT_TRUE(Sat("exists x. TEACHES(Socrates, x)"));
  EXPECT_FALSE(Sat("forall x. TEACHES(Socrates, x)"));
  EXPECT_TRUE(Sat("forall x y. TEACHES(x, y) -> x = Socrates"));
  EXPECT_TRUE(Sat("exists x y. x != y"));
  EXPECT_FALSE(Sat("exists x. TEACHES(x, x)"));
}

TEST_F(EvalTest, SecondOrderQuantifiers) {
  // ∃S containing exactly Socrates.
  EXPECT_TRUE(
      Sat("exists2 S/1. S(Socrates) & !S(Plato)"));
  // No unary S can both contain and omit Socrates.
  EXPECT_FALSE(Sat("exists2 S/1. S(Socrates) & !S(Socrates)"));
  // Every S is monotone w.r.t. itself.
  EXPECT_TRUE(Sat("forall2 S/1. forall x. S(x) -> S(x)"));
  // ∃ a binary T equal to TEACHES.
  EXPECT_TRUE(
      Sat("exists2 T/2. forall x y. T(x, y) <-> TEACHES(x, y)"));
}

TEST_F(EvalTest, SoQuantifierShadowsStoredPredicate) {
  // Quantifying over a predicate variable named like a stored relation uses
  // the binding, not the stored tuples.
  EXPECT_TRUE(Sat("exists2 TEACHES/2. forall x y. !TEACHES(x, y)"));
}

TEST_F(EvalTest, SoSpaceGuard) {
  EvalOptions opts;
  opts.max_so_tuple_space = 1;
  Evaluator eval(db_.get(), opts);
  ASSERT_OK_AND_ASSIGN(FormulaPtr f,
                       ParseFormula(&vocab_, "exists2 S/2. S(Plato, Plato)"));
  auto r = eval.Satisfies(f);
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(EvalTest, LateConstantIsRejectedNotCrashed) {
  // Interning a constant after the database is built must produce a clean
  // error for formulas that mention it — and leave other queries working.
  ASSERT_OK_AND_ASSIGN(FormulaPtr ghost,
                       ParseFormula(&vocab_, "TEACHES(Zeus, Plato)"));
  Evaluator eval(db_.get());
  EXPECT_EQ(eval.Satisfies(ghost).status().code(),
            StatusCode::kFailedPrecondition);
  ASSERT_OK_AND_ASSIGN(FormulaPtr fine,
                       ParseFormula(&vocab_, "TEACHES(Socrates, Plato)"));
  ASSERT_OK_AND_ASSIGN(bool sat, eval.Satisfies(fine));
  EXPECT_TRUE(sat);
}

TEST_F(EvalTest, UnboundFreeVariableIsRejected) {
  Evaluator eval(db_.get());
  ASSERT_OK_AND_ASSIGN(FormulaPtr f, ParseFormula(&vocab_, "TEACHES(x, y)"));
  auto r = eval.Satisfies(f);
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EvalTest, SatisfiesWithBindings) {
  Evaluator eval(db_.get());
  ASSERT_OK_AND_ASSIGN(FormulaPtr f, ParseFormula(&vocab_, "TEACHES(x, y)"));
  VarId x = vocab_.FindVariable("x");
  VarId y = vocab_.FindVariable("y");
  ASSERT_OK_AND_ASSIGN(bool yes,
                       eval.SatisfiesWith(f, {{x, socrates_}, {y, plato_}}));
  EXPECT_TRUE(yes);
  ASSERT_OK_AND_ASSIGN(bool no,
                       eval.SatisfiesWith(f, {{x, plato_}, {y, socrates_}}));
  EXPECT_FALSE(no);
}

TEST_F(EvalTest, AnswerEnumeratesTuples) {
  Evaluator eval(db_.get());
  ASSERT_OK_AND_ASSIGN(Query q,
                       ParseQuery(&vocab_, "(x) . exists y. TEACHES(x, y)"));
  ASSERT_OK_AND_ASSIGN(Relation answer, eval.Answer(q));
  EXPECT_EQ(answer.size(), 1u);
  EXPECT_TRUE(answer.Contains({socrates_}));
}

TEST_F(EvalTest, BooleanAnswerConvention) {
  Evaluator eval(db_.get());
  ASSERT_OK_AND_ASSIGN(Query yes,
                       ParseQuery(&vocab_, "exists x. TEACHES(Socrates, x)"));
  ASSERT_OK_AND_ASSIGN(Relation r1, eval.Answer(yes));
  EXPECT_TRUE(BooleanAnswer(r1));

  ASSERT_OK_AND_ASSIGN(Query no,
                       ParseQuery(&vocab_, "exists x. TEACHES(x, x)"));
  ASSERT_OK_AND_ASSIGN(Relation r2, eval.Answer(no));
  EXPECT_FALSE(BooleanAnswer(r2));
}

TEST_F(EvalTest, HeadVariableAbsentFromBodyRangesOverDomain) {
  Evaluator eval(db_.get());
  ASSERT_OK_AND_ASSIGN(Query q, ParseQuery(&vocab_, "(x, w) . "
                                                    "TEACHES(x, Plato)"));
  ASSERT_OK_AND_ASSIGN(Relation answer, eval.Answer(q));
  // w ranges over both domain elements.
  EXPECT_EQ(answer.size(), 2u);
}

TEST_F(EvalTest, AnswerToStringIsSorted) {
  Evaluator eval(db_.get());
  ASSERT_OK_AND_ASSIGN(Query q, ParseQuery(&vocab_, "(x) . x = x"));
  ASSERT_OK_AND_ASSIGN(Relation answer, eval.Answer(q));
  EXPECT_EQ(AnswerToString(*db_, answer), "{(Socrates), (Plato)}");
}

TEST_F(EvalTest, VirtualProviderOverridesEmptyRelation) {
  class EvenProvider : public VirtualRelationProvider {
   public:
    explicit EvenProvider(PredId p) : p_(p) {}
    bool Provides(PredId pred) const override { return pred == p_; }
    bool Contains(PredId, const Tuple& args) const override {
      return args[0] % 2 == 0;
    }
   private:
    PredId p_;
  };
  PredId even = vocab_.AddAuxiliaryPredicate("Even", 1).value();
  EvenProvider provider(even);
  Evaluator eval(db_.get());
  eval.set_virtual_provider(&provider);
  ASSERT_OK_AND_ASSIGN(FormulaPtr f,
                       ParseFormula(&vocab_, "Even(Socrates) & !Even(Plato)"));
  ASSERT_OK_AND_ASSIGN(bool sat, eval.Satisfies(f));
  EXPECT_TRUE(sat);  // Socrates id 0 (even), Plato id 1 (odd)
}

TEST(NnfSemanticsTest, NnfPreservesTruthOnRandomWorlds) {
  for (uint64_t seed = 0; seed < 60; ++seed) {
    Rng rng(seed);
    Vocabulary vocab;
    ConstId a = vocab.AddConstant("A");
    ConstId b = vocab.AddConstant("B");
    ConstId c = vocab.AddConstant("C");
    PredId p = vocab.AddPredicate("P0", 1).value();
    PredId r = vocab.AddPredicate("R0", 2).value();

    PhysicalDatabase db(&vocab);
    db.InterpretConstantsAsThemselves();
    for (Value v : {a, b, c}) {
      if (rng.Chance(0.5)) ASSERT_OK(db.AddTuple(p, {v}));
      for (Value w : {a, b, c}) {
        if (rng.Chance(0.3)) ASSERT_OK(db.AddTuple(r, {v, w}));
      }
    }

    RandomFormulaParams params;
    params.free_vars = {};  // sentences
    params.max_depth = 5;
    FormulaPtr f = RandomFormula(&rng, &vocab, params);
    FormulaPtr nnf = ToNnf(f);
    ASSERT_TRUE(IsNnf(nnf));

    Evaluator eval(&db);
    ASSERT_OK_AND_ASSIGN(bool direct, eval.Satisfies(f));
    ASSERT_OK_AND_ASSIGN(bool via_nnf, eval.Satisfies(nnf));
    EXPECT_EQ(direct, via_nnf) << "seed " << seed;
  }
}

TEST_F(EvalTest, BoundQueryCachesBodyAnalysis) {
  ASSERT_OK_AND_ASSIGN(Query q,
                       ParseQuery(&vocab_, "(x) . TEACHES(x, Plato)"));
  ASSERT_OK_AND_ASSIGN(BoundQuery bound, BoundQuery::Bind(q));
  EXPECT_EQ(bound.arity(), 1u);
  EXPECT_EQ(bound.constants(), std::vector<ConstId>{plato_});
  EXPECT_TRUE(bound.so_predicates().empty());
}

TEST_F(EvalTest, SatisfiesBatchMatchesPerCandidateSatisfiesWith) {
  ASSERT_OK_AND_ASSIGN(
      Query q, ParseQuery(&vocab_, "(x, y) . TEACHES(x, y) | x = y"));
  ASSERT_OK_AND_ASSIGN(BoundQuery bound, BoundQuery::Bind(q));
  Evaluator eval(db_.get());

  // Every pair over the domain, as one flat batch and per-candidate.
  const std::vector<Value> domain = {socrates_, plato_};
  std::vector<Value> rows;
  for (Value x : domain) {
    for (Value y : domain) {
      rows.push_back(x);
      rows.push_back(y);
    }
  }
  std::vector<char> verdicts;
  ASSERT_OK(eval.SatisfiesBatch(bound, rows.data(), 4, &verdicts));
  ASSERT_EQ(verdicts.size(), 4u);
  for (size_t k = 0; k < 4; ++k) {
    std::map<VarId, Value> binding;
    binding[q.head()[0]] = rows[2 * k];
    binding[q.head()[1]] = rows[2 * k + 1];
    ASSERT_OK_AND_ASSIGN(bool expected, eval.SatisfiesWith(q.body(), binding));
    EXPECT_EQ(verdicts[k] != 0, expected) << "row " << k;
  }
}

TEST_F(EvalTest, SatisfiesBatchHandlesBooleanQueries) {
  ASSERT_OK_AND_ASSIGN(Query q,
                       ParseQuery(&vocab_, "exists x. TEACHES(Socrates, x)"));
  ASSERT_OK_AND_ASSIGN(BoundQuery bound, BoundQuery::Bind(q));
  Evaluator eval(db_.get());
  std::vector<char> verdicts;
  ASSERT_OK(eval.SatisfiesBatch(bound, nullptr, 1, &verdicts));
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_TRUE(verdicts[0] != 0);
}

TEST_F(EvalTest, SatisfiesBatchRejectsUninterpretedConstants) {
  // Aristotle is interned after the database assigned constant values, so
  // the cached-constants check must fail exactly like SatisfiesWith does.
  ASSERT_OK_AND_ASSIGN(Query q,
                       ParseQuery(&vocab_, "(x) . TEACHES(x, Aristotle)"));
  ASSERT_OK_AND_ASSIGN(BoundQuery bound, BoundQuery::Bind(q));
  Evaluator eval(db_.get());
  std::vector<char> verdicts;
  Value row[] = {socrates_};
  Status s = eval.SatisfiesBatch(bound, row, 1, &verdicts);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition) << s.ToString();
}

}  // namespace
}  // namespace lqdb
