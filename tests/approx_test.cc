#include <gtest/gtest.h>

#include "lqdb/approx/alpha.h"
#include "lqdb/approx/approx.h"
#include "lqdb/approx/transform.h"
#include "lqdb/cwdb/ph.h"
#include "lqdb/eval/answer.h"
#include "lqdb/eval/evaluator.h"
#include "lqdb/exact/exact.h"
#include "lqdb/logic/classify.h"
#include "lqdb/logic/parser.h"
#include "lqdb/logic/printer.h"
#include "testing.h"

namespace lqdb {
namespace {

using testing::RandomCwDatabase;
using testing::RandomDbParams;
using testing::RandomFormulaParams;
using testing::RandomQuery;

TEST(ConnectivityTest, SmallPathsEvaluateCorrectly) {
  // Graph A - B, C isolated, edges via stored predicate E.
  Vocabulary vocab;
  ConstId a = vocab.AddConstant("A");
  ConstId b = vocab.AddConstant("B");
  ConstId c = vocab.AddConstant("C");
  ConstId d = vocab.AddConstant("D");
  PredId e = vocab.AddPredicate("E", 2).value();
  PhysicalDatabase db(&vocab);
  db.InterpretConstantsAsThemselves();
  ASSERT_OK(db.AddTuple(e, {a, b}));
  ASSERT_OK(db.AddTuple(e, {b, c}));

  VarId u = vocab.AddVariable("cu");
  VarId v = vocab.AddVariable("cv");
  EdgeFormulaFn edge = [&](Term s, Term t) {
    // Symmetric closure of E.
    return Formula::Or(Formula::Atom(e, {s, t}), Formula::Atom(e, {t, s}));
  };
  FormulaPtr conn = BuildConnectivity(&vocab, 4, Term::Variable(u),
                                      Term::Variable(v), edge);
  Evaluator eval(&db);
  auto connected = [&](Value from, Value to) {
    auto r = eval.SatisfiesWith(conn, {{u, from}, {v, to}});
    EXPECT_TRUE(r.ok()) << r.status();
    return r.value_or(false);
  };
  EXPECT_TRUE(connected(a, a));  // trivial path
  EXPECT_TRUE(connected(a, b));
  EXPECT_TRUE(connected(a, c));  // length 2
  EXPECT_TRUE(connected(c, a));
  EXPECT_FALSE(connected(a, d));
  EXPECT_FALSE(connected(d, b));
}

TEST(ConnectivityTest, SizeIsLogarithmic) {
  Vocabulary vocab;
  PredId e = vocab.AddPredicate("E", 2).value();
  VarId u = vocab.AddVariable("cu");
  VarId v = vocab.AddVariable("cv");
  EdgeFormulaFn edge = [&](Term s, Term t) {
    return Formula::Atom(e, {s, t});
  };
  size_t size8 = FormulaSize(BuildConnectivity(&vocab, 8, Term::Variable(u),
                                               Term::Variable(v), edge));
  size_t size64 = FormulaSize(BuildConnectivity(&vocab, 64, Term::Variable(u),
                                                Term::Variable(v), edge));
  // Doubling levels: 3 vs 6 — each level adds a constant number of nodes.
  size_t per_level = (size64 - size8) / 3;
  EXPECT_GT(per_level, 0u);
  EXPECT_LT(size64, size8 + 4 * per_level);
}

TEST(AlphaTest, DisagreeDetectsForcedConflicts) {
  CwDatabase lb;
  ConstId a = lb.AddKnownConstant("A");
  ConstId b = lb.AddKnownConstant("B");
  ConstId u = lb.AddUnknownConstant("U");
  ConstId w = lb.AddUnknownConstant("W");

  // Directly conflicting positions.
  EXPECT_TRUE(Disagree(lb, {a}, {b}));
  EXPECT_FALSE(Disagree(lb, {a}, {a}));
  EXPECT_FALSE(Disagree(lb, {u}, {a}));

  // Conflict through a chain: merging (u,u) with (a,b) forces a ~ u ~ b.
  EXPECT_TRUE(Disagree(lb, {u, u}, {a, b}));
  // No conflict: merging (u,w) with (a,b) keeps a, b apart.
  EXPECT_FALSE(Disagree(lb, {u, w}, {a, b}));
  // Empty tuples never disagree.
  EXPECT_FALSE(Disagree(lb, {}, {}));
}

TEST(AlphaTest, AlphaHoldsIffDisagreesWithEveryFact) {
  CwDatabase lb;
  ConstId a = lb.AddKnownConstant("A");
  ConstId b = lb.AddKnownConstant("B");
  ConstId c = lb.AddKnownConstant("C");
  ConstId u = lb.AddUnknownConstant("U");
  PredId p = lb.AddPredicate("P", 1).value();
  ASSERT_OK(lb.AddFact(p, {a}));
  ASSERT_OK(lb.AddFact(p, {b}));

  EXPECT_TRUE(AlphaHolds(lb, p, {c}));   // c differs from both facts
  EXPECT_FALSE(AlphaHolds(lb, p, {a}));  // a agrees with the first fact
  EXPECT_FALSE(AlphaHolds(lb, p, {u}));  // u might be a or b
  ASSERT_OK(lb.AddDistinct(u, a));
  EXPECT_FALSE(AlphaHolds(lb, p, {u}));  // u might still be b
  ASSERT_OK(lb.AddDistinct(u, b));
  EXPECT_TRUE(AlphaHolds(lb, p, {u}));
}

TEST(AlphaTest, FactlessPredicateAlphaIsUniversallyTrue) {
  CwDatabase lb;
  lb.AddKnownConstant("A");
  PredId p = lb.AddPredicate("P", 1).value();
  EXPECT_TRUE(AlphaHolds(lb, p, {0}));
}

/// Lemma 10: the syntactic α_P formula evaluated over Ph₂ agrees with the
/// semantic disagreement predicate on every argument tuple.
TEST(AlphaTest, SyntacticMatchesSemanticOnRandomDatabases) {
  for (uint64_t seed = 0; seed < 12; ++seed) {
    RandomDbParams params;
    params.num_known = 3;
    params.num_unknown = 2;
    auto lb = RandomCwDatabase(seed, params);
    ASSERT_OK_AND_ASSIGN(Ph2 ph2, MakePh2(lb.get(), Ph2Options{}));

    for (PredId p : lb->vocab().SchemaPredicates()) {
      const int arity = lb->vocab().PredicateArity(p);
      std::vector<VarId> xs;
      for (int i = 0; i < arity; ++i) {
        xs.push_back(
            lb->mutable_vocab()->FreshVariable("tx" + std::to_string(i)));
      }
      FormulaPtr alpha = BuildAlpha(lb->mutable_vocab(), p, ph2.ne, xs);
      Evaluator eval(&ph2.db);

      // Sweep every argument tuple over C.
      const ConstId n = static_cast<ConstId>(lb->num_constants());
      Tuple t(arity, 0);
      while (true) {
        std::map<VarId, Value> binding;
        for (int i = 0; i < arity; ++i) binding[xs[i]] = t[i];
        ASSERT_OK_AND_ASSIGN(bool syntactic,
                             eval.SatisfiesWith(alpha, binding));
        EXPECT_EQ(syntactic, AlphaHolds(*lb, p, t))
            << "seed " << seed << " pred "
            << lb->vocab().PredicateName(p) << " args "
            << TupleToString(t, [&](Value v) {
                 return lb->vocab().ConstantName(v);
               });
        size_t pos = 0;
        while (pos < t.size() && ++t[pos] == n) {
          t[pos] = 0;
          ++pos;
        }
        if (pos == t.size()) break;
      }
    }
  }
}

TEST(TransformTest, RewritesNegatedLeaves) {
  CwDatabase lb;
  ASSERT_OK(lb.AddFact("P", {"A"}));
  ASSERT_OK_AND_ASSIGN(Ph2 ph2, MakePh2(&lb, Ph2Options{}));
  QueryTransformer transformer(lb.mutable_vocab(), ph2.ne);

  ASSERT_OK_AND_ASSIGN(
      Query q, ParseQuery(lb.mutable_vocab(),
                          "(x, y) . !(P(x) & x = y)"));
  ASSERT_OK_AND_ASSIGN(TransformedQuery tq, transformer.Transform(q));
  // NNF turns the body into !P(x) | x != y, then the leaves rewrite.
  std::string printed = PrintFormula(lb.vocab(), tq.query.body());
  EXPECT_EQ(printed, "__alpha_P(x) | NE(x, y)");
  EXPECT_EQ(tq.alpha_preds.size(), 1u);
}

TEST(TransformTest, PositiveQueriesPassThrough) {
  CwDatabase lb;
  ASSERT_OK(lb.AddFact("P", {"A"}));
  ASSERT_OK_AND_ASSIGN(Ph2 ph2, MakePh2(&lb, Ph2Options{}));
  QueryTransformer transformer(lb.mutable_vocab(), ph2.ne);
  ASSERT_OK_AND_ASSIGN(
      Query q,
      ParseQuery(lb.mutable_vocab(), "(x) . exists y. P(x) & P(y)"));
  ASSERT_OK_AND_ASSIGN(TransformedQuery tq, transformer.Transform(q));
  EXPECT_TRUE(tq.alpha_preds.empty());
  EXPECT_TRUE(IsPositive(tq.query.body()));
}

TEST(TransformTest, FirstOrderQueriesStayFirstOrder) {
  CwDatabase lb;
  ASSERT_OK(lb.AddFact("R", {"A", "B"}));
  ASSERT_OK_AND_ASSIGN(Ph2 ph2, MakePh2(&lb, Ph2Options{}));
  QueryTransformer transformer(lb.mutable_vocab(), ph2.ne);
  ASSERT_OK_AND_ASSIGN(
      Query q, ParseQuery(lb.mutable_vocab(),
                          "(x) . forall y. !R(x, y)"));
  TransformOptions syntactic;
  syntactic.alpha_mode = AlphaMode::kSyntactic;
  ASSERT_OK_AND_ASSIGN(TransformedQuery tq,
                       transformer.Transform(q, syntactic));
  EXPECT_TRUE(IsFirstOrder(tq.query.body()));  // Lemma 10 promise
  EXPECT_TRUE(tq.alpha_preds.empty());
}

TEST(TransformTest, RejectsQueriesMentioningNe) {
  CwDatabase lb;
  ASSERT_OK(lb.AddFact("P", {"A"}));
  ASSERT_OK_AND_ASSIGN(Ph2 ph2, MakePh2(&lb, Ph2Options{}));
  QueryTransformer transformer(lb.mutable_vocab(), ph2.ne);
  ASSERT_OK_AND_ASSIGN(Query q,
                       ParseQuery(lb.mutable_vocab(), "(x, y) . NE(x, y)"));
  EXPECT_FALSE(transformer.Transform(q).ok());
}

TEST(TransformTest, VirtualModeRejectsNegatedSoVariables) {
  CwDatabase lb;
  ASSERT_OK(lb.AddFact("P", {"A"}));
  ASSERT_OK_AND_ASSIGN(Ph2 ph2, MakePh2(&lb, Ph2Options{}));
  QueryTransformer transformer(lb.mutable_vocab(), ph2.ne);
  ASSERT_OK_AND_ASSIGN(
      Query q, ParseQuery(lb.mutable_vocab(),
                          "exists2 S/1. exists x. P(x) & !S(x)"));
  EXPECT_EQ(transformer.Transform(q).status().code(),
            StatusCode::kUnimplemented);
  TransformOptions syntactic;
  syntactic.alpha_mode = AlphaMode::kSyntactic;
  EXPECT_OK(transformer.Transform(q, syntactic).status());
}

/// Theorem 11 (soundness): A(Q, LB) ⊆ Q(LB) on random instances, in every
/// engine/mode combination.
TEST(Theorem11Test, ApproximationIsSound) {
  struct Config {
    AlphaMode alpha;
    ApproxEngine engine;
    bool materialize_ne;
  };
  const Config configs[] = {
      {AlphaMode::kVirtual, ApproxEngine::kEvaluator, false},
      {AlphaMode::kVirtual, ApproxEngine::kEvaluator, true},
      {AlphaMode::kSyntactic, ApproxEngine::kEvaluator, true},
      {AlphaMode::kVirtual, ApproxEngine::kRelationalAlgebra, false},
  };
  for (uint64_t seed = 0; seed < 16; ++seed) {
    for (const Config& config : configs) {
      RandomDbParams params;
      params.num_known = 3;
      params.num_unknown = 2;
      auto lb = RandomCwDatabase(seed, params);

      RandomFormulaParams fparams;
      fparams.free_vars = {"hx"};
      fparams.max_depth = 3;
      Query q = RandomQuery(seed * 31 + 7, lb->mutable_vocab(), fparams);

      ApproxOptions options;
      options.alpha_mode = config.alpha;
      options.engine = config.engine;
      options.materialize_ne = config.materialize_ne;
      ASSERT_OK_AND_ASSIGN(std::unique_ptr<ApproxEvaluator> approx,
                           ApproxEvaluator::Make(lb.get(), options));
      ASSERT_OK_AND_ASSIGN(Relation approx_answer, approx->Answer(q));

      ExactEvaluator exact(lb.get());
      ASSERT_OK_AND_ASSIGN(Relation exact_answer, exact.Answer(q));

      EXPECT_TRUE(approx_answer.IsSubsetOf(exact_answer))
          << "seed " << seed << " query " << PrintQuery(lb->vocab(), q);
    }
  }
}

/// Theorem 12 (completeness for fully specified databases).
TEST(Theorem12Test, FullySpecifiedIsExact) {
  for (uint64_t seed = 0; seed < 18; ++seed) {
    RandomDbParams params;
    params.num_known = 4;
    params.num_unknown = 0;
    auto lb = RandomCwDatabase(seed, params);
    ASSERT_TRUE(lb->IsFullySpecified());

    RandomFormulaParams fparams;
    fparams.free_vars = {"hx"};
    fparams.max_depth = 3;
    Query q = RandomQuery(seed * 11 + 3, lb->mutable_vocab(), fparams);

    ASSERT_OK_AND_ASSIGN(std::unique_ptr<ApproxEvaluator> approx,
                         ApproxEvaluator::Make(lb.get(), ApproxOptions{}));
    ASSERT_OK_AND_ASSIGN(Relation approx_answer, approx->Answer(q));

    ExactEvaluator exact(lb.get());
    ASSERT_OK_AND_ASSIGN(Relation exact_answer, exact.Answer(q));

    EXPECT_EQ(approx_answer, exact_answer)
        << "seed " << seed << " query " << PrintQuery(lb->vocab(), q);
  }
}

/// Theorem 13 (completeness for positive queries), with unknowns present.
TEST(Theorem13Test, PositiveQueriesAreExact) {
  for (uint64_t seed = 0; seed < 18; ++seed) {
    RandomDbParams params;
    params.num_known = 3;
    params.num_unknown = 2;
    auto lb = RandomCwDatabase(seed, params);

    RandomFormulaParams fparams;
    fparams.free_vars = {"hx"};
    fparams.max_depth = 3;
    fparams.allow_negation = false;  // positive queries only
    Query q = RandomQuery(seed * 17 + 9, lb->mutable_vocab(), fparams);
    ASSERT_TRUE(IsPositive(q.body()));

    ASSERT_OK_AND_ASSIGN(std::unique_ptr<ApproxEvaluator> approx,
                         ApproxEvaluator::Make(lb.get(), ApproxOptions{}));
    ASSERT_OK_AND_ASSIGN(Relation approx_answer, approx->Answer(q));

    ExactEvaluator exact(lb.get());
    ASSERT_OK_AND_ASSIGN(Relation exact_answer, exact.Answer(q));

    EXPECT_EQ(approx_answer, exact_answer)
        << "seed " << seed << " query " << PrintQuery(lb->vocab(), q);
  }
}

/// The two α implementations and both engines agree with each other on the
/// final answers (not just pointwise on α).
TEST(ApproxConsistencyTest, ModesAgree) {
  for (uint64_t seed = 40; seed < 48; ++seed) {
    RandomDbParams params;
    params.num_known = 3;
    params.num_unknown = 2;
    auto lb = RandomCwDatabase(seed, params);

    RandomFormulaParams fparams;
    fparams.free_vars = {"hx"};
    fparams.max_depth = 3;
    Query q = RandomQuery(seed + 1000, lb->mutable_vocab(), fparams);

    std::vector<Relation> answers;
    for (int mode = 0; mode < 3; ++mode) {
      ApproxOptions options;
      options.alpha_mode =
          mode == 1 ? AlphaMode::kSyntactic : AlphaMode::kVirtual;
      options.engine = mode == 2 ? ApproxEngine::kRelationalAlgebra
                                 : ApproxEngine::kEvaluator;
      ASSERT_OK_AND_ASSIGN(std::unique_ptr<ApproxEvaluator> approx,
                           ApproxEvaluator::Make(lb.get(), options));
      ASSERT_OK_AND_ASSIGN(Relation answer, approx->Answer(q));
      answers.push_back(std::move(answer));
    }
    EXPECT_EQ(answers[0], answers[1]) << "seed " << seed;
    EXPECT_EQ(answers[0], answers[2]) << "seed " << seed;
  }
}

/// The paper's flagship soundness example: negative information about
/// unknown values is only claimed when provable.
TEST(ApproxStoryTest, JackTheRipper) {
  // Jack's identity must be declared unknown *before* facts mention him
  // (facts intern their constants as known).
  CwDatabase lb2;
  ConstId jack = lb2.AddUnknownConstant("JackTheRipper");
  ConstId disraeli = lb2.AddKnownConstant("Disraeli");
  ConstId victoria = lb2.AddKnownConstant("Victoria");
  PredId murderer = lb2.AddPredicate("MURDERER", 1).value();
  ASSERT_OK(lb2.AddFact(murderer, {jack}));
  // We do know the Queen is not the Ripper.
  ASSERT_OK(lb2.AddDistinct(jack, victoria));

  ASSERT_OK_AND_ASSIGN(std::unique_ptr<ApproxEvaluator> approx,
                       ApproxEvaluator::Make(&lb2, ApproxOptions{}));
  ASSERT_OK_AND_ASSIGN(
      Query q,
      ParseQuery(lb2.mutable_vocab(), "(x) . !MURDERER(x)"));
  ASSERT_OK_AND_ASSIGN(Relation answer, approx->Answer(q));
  // Victoria is provably innocent; Disraeli might be Jack.
  EXPECT_TRUE(answer.Contains({victoria}));
  EXPECT_FALSE(answer.Contains({disraeli}));
  EXPECT_FALSE(answer.Contains({jack}));

  // And the approximation matches the exact semantics here.
  ExactEvaluator exact(&lb2);
  ASSERT_OK_AND_ASSIGN(Relation exact_answer, exact.Answer(q));
  EXPECT_EQ(answer, exact_answer);
}

TEST(ApproxSecondOrderTest, SyntacticModeHandlesSoQueries) {
  CwDatabase lb;
  ASSERT_OK(lb.AddFact("P", {"A"}));
  lb.AddKnownConstant("B");
  ApproxOptions options;
  options.alpha_mode = AlphaMode::kSyntactic;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<ApproxEvaluator> approx,
                       ApproxEvaluator::Make(&lb, options));
  // ∃S ∀x (S(x) ↔ P(x)) — certainly true, and positive pieces only after
  // NNF turn into a mix including ¬S and ¬P.
  ASSERT_OK_AND_ASSIGN(
      Query q, ParseQuery(lb.mutable_vocab(),
                          "exists2 S/1. forall x. S(x) <-> P(x)"));
  ASSERT_OK_AND_ASSIGN(Relation answer, approx->Answer(q));
  EXPECT_TRUE(BooleanAnswer(answer));

  ExactEvaluator exact(&lb);
  ASSERT_OK_AND_ASSIGN(bool exact_in, exact.Contains(q, {}));
  EXPECT_TRUE(exact_in);
}

}  // namespace
}  // namespace lqdb
