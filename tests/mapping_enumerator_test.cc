/// Exhaustive equivalence tests for the splittable restricted-growth-string
/// enumerator: over *all* databases with |C| ≤ 6 (every known/unknown split)
/// and assorted explicit uniqueness-axiom sets, the union of the split
/// ranges must visit exactly the canonical representatives of the
/// sequential walk — set-equal and count-equal, with pairwise-disjoint
/// ranges. This is the invariant the parallel exact engine rests on.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "lqdb/cwdb/cw_database.h"
#include "lqdb/cwdb/mapping.h"
#include "lqdb/util/rng.h"
#include "tests/testing.h"

namespace lqdb {
namespace {

/// A database with `known` known and `unknown` unknown constants plus a
/// seeded random set of explicit uniqueness axioms (seed 0 = none).
std::unique_ptr<CwDatabase> MakeDb(int known, int unknown, uint64_t seed) {
  auto lb = std::make_unique<CwDatabase>();
  for (int i = 0; i < unknown; ++i) {
    lb->AddUnknownConstant("U" + std::to_string(i));
  }
  for (int i = 0; i < known; ++i) {
    lb->AddKnownConstant("K" + std::to_string(i));
  }
  if (seed != 0) {
    Rng rng(seed);
    const ConstId n = static_cast<ConstId>(lb->num_constants());
    for (ConstId a = 0; a < n; ++a) {
      for (ConstId b = a + 1; b < n; ++b) {
        if (lb->IsKnown(a) && lb->IsKnown(b)) continue;  // already implicit
        if (rng.Chance(0.35)) {
          Status s = lb->AddDistinct(a, b);
          (void)s;
        }
      }
    }
  }
  return lb;
}

std::set<ConstMapping> CollectSequential(const CwDatabase& lb,
                                         uint64_t* count) {
  std::set<ConstMapping> seen;
  *count = ForEachCanonicalMapping(lb, [&](const ConstMapping& h) {
    EXPECT_TRUE(seen.insert(h).second) << "sequential walk repeated a "
                                          "canonical representative";
    return true;
  });
  return seen;
}

/// Core check: for every requested split granularity, the ranges jointly
/// visit the sequential set exactly once.
void CheckSplitsCoverSequential(const CwDatabase& lb) {
  uint64_t sequential_count = 0;
  const std::set<ConstMapping> sequential =
      CollectSequential(lb, &sequential_count);
  EXPECT_EQ(sequential.size(), sequential_count);
  EXPECT_EQ(sequential_count, CountCanonicalMappings(lb));

  for (size_t min_ranges : {size_t{1}, size_t{2}, size_t{3}, size_t{5},
                            size_t{8}, size_t{16}, size_t{64}}) {
    const std::vector<MappingRange> ranges =
        SplitCanonicalMappingSpace(lb, min_ranges);
    ASSERT_FALSE(ranges.empty());
    if (min_ranges == 1) EXPECT_EQ(ranges.size(), 1u);

    std::set<ConstMapping> visited;
    uint64_t total = 0;
    for (const MappingRange& range : ranges) {
      total += ForEachCanonicalMappingInRange(
          lb, range, [&](const ConstMapping& h) {
            EXPECT_TRUE(RespectsUniqueness(lb, h));
            EXPECT_TRUE(visited.insert(h).second)
                << "ranges overlap (min_ranges=" << min_ranges << ")";
            return true;
          });
    }
    EXPECT_EQ(total, sequential_count) << "min_ranges=" << min_ranges;
    EXPECT_EQ(visited, sequential) << "min_ranges=" << min_ranges;
  }
}

TEST(MappingEnumeratorTest, SplitsCoverAllDatabasesUpTo6Constants) {
  for (int n = 1; n <= 6; ++n) {
    for (int unknown = 0; unknown <= n; ++unknown) {
      for (uint64_t seed : {uint64_t{0}, uint64_t{7}, uint64_t{41}}) {
        auto lb = MakeDb(n - unknown, unknown, seed);
        SCOPED_TRACE("n=" + std::to_string(n) +
                     " unknown=" + std::to_string(unknown) +
                     " seed=" + std::to_string(seed));
        CheckSplitsCoverSequential(*lb);
      }
    }
  }
}

TEST(MappingEnumeratorTest, AllUnknownCountsAreBellNumbers) {
  // With no uniqueness axioms the NE-avoiding partitions are all set
  // partitions: B(1..6) = 1, 2, 5, 15, 52, 203.
  const uint64_t bell[] = {1, 2, 5, 15, 52, 203};
  for (int n = 1; n <= 6; ++n) {
    auto lb = MakeDb(0, n, /*seed=*/0);
    EXPECT_EQ(CountCanonicalMappings(*lb), bell[n - 1]) << "n=" << n;
  }
}

TEST(MappingEnumeratorTest, FullySpecifiedHasOnlyIdentity) {
  // All-known constants are pairwise distinct: the identity partition is
  // the only NE-avoiding one, and no split can manufacture more ranges
  // than partitions.
  auto lb = MakeDb(5, 0, /*seed=*/0);
  EXPECT_EQ(CountCanonicalMappings(*lb), 1u);
  const std::vector<MappingRange> ranges =
      SplitCanonicalMappingSpace(*lb, 16);
  uint64_t total = 0;
  for (const MappingRange& range : ranges) {
    total += ForEachCanonicalMappingInRange(
        *lb, range, [&](const ConstMapping& h) {
          EXPECT_EQ(h, IdentityMapping(lb->num_constants()));
          return true;
        });
  }
  EXPECT_EQ(total, 1u);
}

TEST(MappingEnumeratorTest, RangeWalkHonorsVisitorStop) {
  auto lb = MakeDb(0, 5, /*seed=*/0);  // 52 partitions
  const std::vector<MappingRange> ranges =
      SplitCanonicalMappingSpace(*lb, 4);
  ASSERT_GE(ranges.size(), 4u);
  // Stop after the first visit of the first range: the returned count is
  // the number visited, not the range size.
  uint64_t visited = ForEachCanonicalMappingInRange(
      *lb, ranges[0], [&](const ConstMapping&) { return false; });
  EXPECT_EQ(visited, 1u);
}

TEST(MappingEnumeratorTest, SplitIsDeterministic) {
  auto lb = MakeDb(2, 3, /*seed=*/7);
  const auto a = SplitCanonicalMappingSpace(*lb, 8);
  const auto b = SplitCanonicalMappingSpace(*lb, 8);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].rgs, b[i].rgs);
}

TEST(MappingEnumeratorTest, ChunkedWalkCoversSpaceForAnyBudget) {
  // Repeatedly walking a work-list of ranges with a tiny budget and pushing
  // the donated remainders back must reconstruct the full space exactly
  // once — the invariant the parallel engine's work-stealing queue rests
  // on, for every budget and every database shape.
  for (int n = 1; n <= 6; ++n) {
    for (int unknown : {n / 2, n}) {
      for (uint64_t seed : {uint64_t{0}, uint64_t{7}}) {
        auto lb = MakeDb(n - unknown, unknown, seed);
        SCOPED_TRACE("n=" + std::to_string(n) +
                     " unknown=" + std::to_string(unknown) +
                     " seed=" + std::to_string(seed));
        uint64_t sequential_count = 0;
        const std::set<ConstMapping> sequential =
            CollectSequential(*lb, &sequential_count);
        for (uint64_t budget : {uint64_t{1}, uint64_t{2}, uint64_t{3},
                                uint64_t{7}, uint64_t{1000}}) {
          std::vector<MappingRange> work = {MappingRange{}};
          std::set<ConstMapping> visited;
          uint64_t total = 0;
          while (!work.empty()) {
            MappingRange range = std::move(work.back());
            work.pop_back();
            std::vector<MappingRange> remainder;
            total += ForEachCanonicalMappingChunk(
                *lb, range, budget,
                [&](const ConstMapping& h) {
                  EXPECT_TRUE(visited.insert(h).second)
                      << "chunked walk repeated a representative (budget="
                      << budget << ")";
                  return true;
                },
                &remainder);
            for (MappingRange& r : remainder) work.push_back(std::move(r));
          }
          EXPECT_EQ(total, sequential_count) << "budget=" << budget;
          EXPECT_EQ(visited, sequential) << "budget=" << budget;
        }
      }
    }
  }
}

TEST(MappingEnumeratorTest, ChunkBudgetBoundsTheVisitCount) {
  auto lb = MakeDb(0, 5, /*seed=*/0);  // 52 partitions
  std::vector<MappingRange> remainder;
  uint64_t visited = ForEachCanonicalMappingChunk(
      *lb, MappingRange{}, /*budget=*/10,
      [](const ConstMapping&) { return true; }, &remainder);
  EXPECT_EQ(visited, 10u);
  ASSERT_FALSE(remainder.empty());
  // The donated remainder covers exactly the other 42.
  uint64_t rest = 0;
  for (const MappingRange& range : remainder) {
    rest += ForEachCanonicalMappingInRange(
        *lb, range, [](const ConstMapping&) { return true; });
  }
  EXPECT_EQ(rest, 42u);
}

TEST(MappingEnumeratorTest, ChunkVisitorStopDiscardsRemainder) {
  // An early exit abandons the whole enumeration: nothing may be donated.
  auto lb = MakeDb(0, 4, /*seed=*/0);
  std::vector<MappingRange> remainder;
  uint64_t visited = ForEachCanonicalMappingChunk(
      *lb, MappingRange{}, /*budget=*/0,
      [](const ConstMapping&) { return false; }, &remainder);
  EXPECT_EQ(visited, 1u);
  EXPECT_TRUE(remainder.empty());
}

TEST(MappingEnumeratorTest, ApplyMappingIntoMatchesApplyMapping) {
  // Scratch reuse must produce byte-identical image databases even when
  // the scratch previously held a *different* mapping's image (stale
  // relations/domain must not leak through).
  auto lb = MakeDb(2, 3, /*seed=*/41);
  PredId p = lb->AddPredicate("P", 1).value();
  PredId r = lb->AddPredicate("R", 2).value();
  ASSERT_OK(lb->AddFact(p, {0}));
  ASSERT_OK(lb->AddFact(r, {1, 3}));
  ASSERT_OK(lb->AddFact(r, {2, 2}));

  PhysicalDatabase scratch(&lb->vocab());
  ForEachCanonicalMapping(*lb, [&](const ConstMapping& h) {
    PhysicalDatabase fresh = ApplyMapping(*lb, h);
    ApplyMappingInto(*lb, h, &scratch);
    EXPECT_EQ(fresh.domain(), scratch.domain());
    for (ConstId c = 0; c < lb->num_constants(); ++c) {
      EXPECT_EQ(fresh.ConstantValue(c), scratch.ConstantValue(c));
    }
    for (PredId pred : {p, r}) {
      EXPECT_EQ(fresh.relation(pred), scratch.relation(pred))
          << "pred " << pred;
    }
    return true;
  });
}

}  // namespace
}  // namespace lqdb
