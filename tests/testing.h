#ifndef LQDB_TESTS_TESTING_H_
#define LQDB_TESTS_TESTING_H_

#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "lqdb/cwdb/cw_database.h"
#include "lqdb/logic/builder.h"
#include "lqdb/logic/formula.h"
#include "lqdb/logic/query.h"
#include "lqdb/relational/database.h"
#include "lqdb/util/rng.h"

namespace lqdb {
namespace testing {

/// Asserts a Result and unwraps it.
#define LQDB_TEST_CONCAT_INNER(a, b) a##b
#define LQDB_TEST_CONCAT(a, b) LQDB_TEST_CONCAT_INNER(a, b)
#define ASSERT_OK_AND_ASSIGN(lhs, expr) \
  ASSERT_OK_AND_ASSIGN_IMPL(LQDB_TEST_CONCAT(_result_, __LINE__), lhs, expr)
#define ASSERT_OK_AND_ASSIGN_IMPL(tmp, lhs, expr)  \
  auto tmp = (expr);                               \
  ASSERT_TRUE(tmp.ok()) << tmp.status();           \
  lhs = std::move(tmp).value()

#define EXPECT_OK(expr)                              \
  do {                                               \
    auto _s = (expr);                                \
    EXPECT_TRUE(_s.ok()) << _s.ToString();           \
  } while (false)

#define ASSERT_OK(expr)                              \
  do {                                               \
    auto _s = (expr);                                \
    ASSERT_TRUE(_s.ok()) << _s.ToString();           \
  } while (false)

/// Parameters for random CW database generation.
struct RandomDbParams {
  int num_known = 4;
  int num_unknown = 2;
  int num_unary_preds = 1;
  int num_binary_preds = 1;
  int num_facts = 6;
  /// Probability that an (unknown, other) pair gets an explicit axiom.
  double explicit_distinct_p = 0.3;
};

/// Builds a random CW logical database. Deterministic in `seed`.
inline std::unique_ptr<CwDatabase> RandomCwDatabase(uint64_t seed,
                                                    const RandomDbParams& p) {
  Rng rng(seed);
  auto lb = std::make_unique<CwDatabase>();
  std::vector<ConstId> consts;
  for (int i = 0; i < p.num_known; ++i) {
    consts.push_back(lb->AddKnownConstant("K" + std::to_string(i)));
  }
  for (int i = 0; i < p.num_unknown; ++i) {
    consts.push_back(lb->AddUnknownConstant("U" + std::to_string(i)));
  }
  std::vector<PredId> preds;
  for (int i = 0; i < p.num_unary_preds; ++i) {
    preds.push_back(lb->AddPredicate("P" + std::to_string(i), 1).value());
  }
  for (int i = 0; i < p.num_binary_preds; ++i) {
    preds.push_back(lb->AddPredicate("R" + std::to_string(i), 2).value());
  }
  for (int i = 0; i < p.num_facts && !preds.empty(); ++i) {
    PredId pred = preds[rng.Below(preds.size())];
    Tuple t;
    for (int j = 0; j < lb->vocab().PredicateArity(pred); ++j) {
      t.push_back(consts[rng.Below(consts.size())]);
    }
    Status s = lb->AddFact(pred, std::move(t));
    (void)s;
  }
  // Random explicit uniqueness axioms touching unknown constants.
  for (ConstId a = 0; a < consts.size(); ++a) {
    for (ConstId b = a + 1; b < consts.size(); ++b) {
      if (lb->IsKnown(a) && lb->IsKnown(b)) continue;
      if (rng.Chance(p.explicit_distinct_p)) {
        Status s = lb->AddDistinct(a, b);
        (void)s;
      }
    }
  }
  return lb;
}

/// Parameters for random first-order formula generation.
struct RandomFormulaParams {
  int max_depth = 4;
  /// Variables the formula may use freely (they become the query head).
  std::vector<std::string> free_vars = {"hx", "hy"};
  bool allow_negation = true;
};

/// Builds a random first-order formula over the schema predicates of
/// `vocab` with free variables drawn from `p.free_vars`.
inline FormulaPtr RandomFormula(Rng* rng, Vocabulary* vocab,
                                const RandomFormulaParams& p, int depth = 0,
                                std::vector<std::string>* scope = nullptr) {
  FormulaBuilder b(vocab);
  std::vector<std::string> local_scope;
  if (scope == nullptr) {
    local_scope = p.free_vars;
    scope = &local_scope;
  }
  auto random_term = [&]() -> Term {
    // Prefer variables in scope, sometimes a constant.
    if (!scope->empty() && rng->Chance(0.7)) {
      return b.V((*scope)[rng->Below(scope->size())]);
    }
    size_t n = vocab->num_constants();
    if (n == 0) return b.V((*scope)[rng->Below(scope->size())]);
    return Term::Constant(static_cast<ConstId>(rng->Below(n)));
  };
  auto random_atom = [&]() -> FormulaPtr {
    std::vector<PredId> preds = vocab->SchemaPredicates();
    if (preds.empty() || rng->Chance(0.25)) {
      return b.Eq(random_term(), random_term());
    }
    PredId pred = preds[rng->Below(preds.size())];
    TermList args;
    for (int i = 0; i < vocab->PredicateArity(pred); ++i) {
      args.push_back(random_term());
    }
    return Formula::Atom(pred, std::move(args));
  };
  if (depth >= p.max_depth) return random_atom();
  // Negation, implication and iff all introduce negative polarity, so they
  // are only generated when negation is allowed (positive-query tests rely
  // on this).
  switch (rng->Below(p.allow_negation ? 8 : 5)) {
    case 0:
      return random_atom();
    case 1:
      return Formula::And(RandomFormula(rng, vocab, p, depth + 1, scope),
                          RandomFormula(rng, vocab, p, depth + 1, scope));
    case 2:
      return Formula::Or(RandomFormula(rng, vocab, p, depth + 1, scope),
                         RandomFormula(rng, vocab, p, depth + 1, scope));
    case 3: {
      std::string v = "q" + std::to_string(depth) + "_" +
                      std::to_string(rng->Below(1000));
      scope->push_back(v);
      FormulaPtr body = RandomFormula(rng, vocab, p, depth + 1, scope);
      scope->pop_back();
      return b.Exists(v, std::move(body));
    }
    case 4: {
      std::string v = "q" + std::to_string(depth) + "_" +
                      std::to_string(rng->Below(1000));
      scope->push_back(v);
      FormulaPtr body = RandomFormula(rng, vocab, p, depth + 1, scope);
      scope->pop_back();
      return b.Forall(v, std::move(body));
    }
    case 5:
      return Formula::Implies(RandomFormula(rng, vocab, p, depth + 1, scope),
                              RandomFormula(rng, vocab, p, depth + 1, scope));
    case 6:
      return Formula::Iff(RandomFormula(rng, vocab, p, depth + 1, scope),
                          RandomFormula(rng, vocab, p, depth + 1, scope));
    default:
      return Formula::Not(RandomFormula(rng, vocab, p, depth + 1, scope));
  }
}

/// Slurps a file into a string (for the examples/data and tests/data
/// fixtures).
inline std::string ReadFileToString(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Extracts the `# query: ...` comment lines of a `.lqdb` data file — the
/// convention shared by tests/io_roundtrip_test.cc and tests/shell_test.cc
/// for embedding a world's interesting queries next to its facts.
inline std::vector<std::string> EmbeddedQueries(const std::string& text) {
  std::vector<std::string> queries;
  std::istringstream in(text);
  std::string line;
  const std::string prefix = "# query:";
  while (std::getline(in, line)) {
    if (line.rfind(prefix, 0) != 0) continue;
    size_t start = line.find_first_not_of(' ', prefix.size());
    if (start != std::string::npos) queries.push_back(line.substr(start));
  }
  return queries;
}

/// Builds a random query whose head is `p.free_vars`.
inline Query RandomQuery(uint64_t seed, Vocabulary* vocab,
                         const RandomFormulaParams& p) {
  Rng rng(seed);
  FormulaPtr body = RandomFormula(&rng, vocab, p);
  std::vector<VarId> head;
  for (const std::string& v : p.free_vars) {
    head.push_back(vocab->AddVariable(v));
  }
  return Query::Make(head, std::move(body)).value();
}

}  // namespace testing
}  // namespace lqdb

#endif  // LQDB_TESTS_TESTING_H_
